#include "src/anns/tuner.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"

namespace fpgadp::anns {

std::string DesignPoint::ToString() const {
  std::ostringstream os;
  os << "nlist=" << nlist << " m=" << m << " nprobe=" << nprobe
     << " lanes=" << scan_lanes << " recall=" << recall << " qps=" << qps
     << (fits ? "" : " (infeasible)");
  return os.str();
}

Result<TunerResult> ExploreDesignSpace(const TunerRequest& request) {
  if (request.data == nullptr) {
    return Status::InvalidArgument("tuner needs a dataset");
  }
  const Dataset& data = *request.data;
  if (data.num_queries() == 0 || data.ground_truth.empty()) {
    return Status::InvalidArgument("dataset must carry queries+ground truth");
  }

  TunerResult result;
  for (size_t nlist : request.nlist_choices) {
    for (size_t m : request.m_choices) {
      if (data.dim % m != 0) continue;
      IvfPqIndex::Options opts;
      opts.nlist = nlist;
      opts.pq.m = m;
      opts.pq.ksub = request.ksub;
      opts.pq.train_iters = request.pq_train_iters;
      opts.seed = request.seed;
      auto index_r = IvfPqIndex::Build(data.base, data.dim, opts);
      if (!index_r.ok()) continue;  // e.g. nlist > corpus
      const IvfPqIndex& index = index_r.value();

      // Sweep nprobe (doubling) and record recall + work for each.
      for (size_t nprobe = 1; nprobe <= nlist; nprobe *= 2) {
        IvfPqIndex::SearchParams params;
        params.nprobe = nprobe;
        params.k = request.k;
        double recall_sum = 0;
        uint64_t codes_sum = 0;
        for (size_t q = 0; q < data.num_queries(); ++q) {
          const float* query = data.QueryVector(q);
          const auto found = index.Search(query, params);
          std::vector<uint32_t> ids;
          ids.reserve(found.size());
          for (const Neighbor& nb : found) ids.push_back(nb.id);
          recall_sum += RecallAtK(ids, data.ground_truth[q], request.k);
          codes_sum += index.CodesScanned(query, nprobe);
        }
        const double recall = recall_sum / double(data.num_queries());
        const double avg_codes = double(codes_sum) / double(data.num_queries());

        for (uint32_t lanes : request.scan_lane_choices) {
          AccelConfig accel = request.base_accel;
          accel.scan_lanes = lanes;
          FannsAccelerator hw(&index, accel);
          const auto costs = hw.CostModel(params, avg_codes);
          auto res = hw.EstimateResources(request.device);
          if (!res.ok()) return res.status();

          DesignPoint p;
          p.nlist = nlist;
          p.m = m;
          p.nprobe = nprobe;
          p.scan_lanes = lanes;
          p.recall = recall;
          p.avg_codes = avg_codes;
          p.fits = request.device.resources.Fits(res.value());
          p.qps = accel.clock_hz / double(costs.Bottleneck());
          p.latency_us = double(costs.Latency()) / accel.clock_hz * 1e6;
          result.explored.push_back(p);

          if (p.fits && p.recall >= request.recall_target &&
              (!result.found || p.qps > result.best.qps)) {
            result.best = p;
            result.found = true;
          }
        }
        if (recall >= 0.999) break;  // more probes cannot help
      }
    }
  }
  return result;
}

}  // namespace fpgadp::anns
