#ifndef FPGADP_ANNS_TOPK_H_
#define FPGADP_ANNS_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "src/anns/ivf.h"
#include "src/common/check.h"

namespace fpgadp::anns {

/// Systolic priority queue: K compare-swap cells in a line, one candidate
/// accepted per cycle regardless of K — the K-selection design FANNS uses
/// so top-K never becomes the pipeline bottleneck. Functionally it keeps
/// the K smallest distances seen; in hardware every Insert is one cycle
/// (II=1), so `inserts()` is also the cycle count of the selection stage.
class SystolicTopK {
 public:
  explicit SystolicTopK(size_t k) : k_(k) {
    FPGADP_CHECK(k > 0);
    cells_.reserve(k);
  }

  /// Offers a candidate; the array keeps it iff it beats the current max.
  /// Models one systolic step (II=1 in hardware; the shift itself pipelines
  /// through the cell line).
  void Insert(float distance, uint32_t id) {
    ++inserts_;
    if (cells_.size() < k_) {
      cells_.push_back({id, distance});
      // Bubble the new entry into place (the hardware shift).
      for (size_t i = cells_.size() - 1; i > 0; --i) {
        if (cells_[i - 1].distance <= cells_[i].distance) break;
        std::swap(cells_[i - 1], cells_[i]);
      }
      return;
    }
    if (distance >= cells_.back().distance) return;
    cells_.back() = {id, distance};
    for (size_t i = cells_.size() - 1; i > 0; --i) {
      if (cells_[i - 1].distance <= cells_[i].distance) break;
      std::swap(cells_[i - 1], cells_[i]);
    }
  }

  /// Contents, closest first.
  const std::vector<Neighbor>& Results() const { return cells_; }

  /// Candidates offered so far == hardware cycles spent.
  uint64_t inserts() const { return inserts_; }
  size_t k() const { return k_; }

  /// Hardware drain latency: results exit the cell line in k cycles.
  uint64_t DrainCycles() const { return k_; }

 private:
  size_t k_;
  std::vector<Neighbor> cells_;  // sorted ascending by distance
  uint64_t inserts_ = 0;
};

/// Software binary-heap top-K baseline with an operation counter that
/// models the CPU cost: every candidate costs one compare; candidates that
/// displace the current max additionally pay a log2(K) sift.
class HeapTopK {
 public:
  explicit HeapTopK(size_t k) : k_(k) { FPGADP_CHECK(k > 0); }

  void Insert(float distance, uint32_t id) {
    ++compares_;
    if (heap_.size() < k_) {
      heap_.emplace(distance, id);
      compares_ += Log2K();
      return;
    }
    if (distance < heap_.top().first) {
      heap_.pop();
      heap_.emplace(distance, id);
      compares_ += 2 * Log2K();
    }
  }

  /// Contents, closest first.
  std::vector<Neighbor> Results() const {
    auto copy = heap_;
    std::vector<Neighbor> out;
    while (!copy.empty()) {
      out.push_back({copy.top().second, copy.top().first});
      copy.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  /// Comparison operations executed (the CPU cost measure).
  uint64_t compares() const { return compares_; }

 private:
  uint64_t Log2K() const {
    uint64_t l = 0;
    for (size_t v = k_; v > 1; v >>= 1) ++l;
    return l;
  }

  size_t k_;
  std::priority_queue<std::pair<float, uint32_t>> heap_;
  uint64_t compares_ = 0;
};

}  // namespace fpgadp::anns

#endif  // FPGADP_ANNS_TOPK_H_
