#include "src/anns/dataset.h"

#include <algorithm>
#include <queue>

#include "src/common/check.h"
#include "src/common/random.h"

namespace fpgadp::anns {

float SquaredL2(const float* a, const float* b, size_t dim) {
  float sum = 0;
  for (size_t i = 0; i < dim; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

std::vector<uint32_t> BruteForceKnn(const Dataset& data, const float* query,
                                    size_t k) {
  using Entry = std::pair<float, uint32_t>;  // (distance, id)
  std::priority_queue<Entry> heap;           // max-heap keeps k smallest
  const size_t n = data.num_base();
  for (size_t i = 0; i < n; ++i) {
    const float d = SquaredL2(data.BaseVector(i), query, data.dim);
    if (heap.size() < k) {
      heap.emplace(d, static_cast<uint32_t>(i));
    } else if (d < heap.top().first) {
      heap.pop();
      heap.emplace(d, static_cast<uint32_t>(i));
    }
  }
  std::vector<Entry> sorted;
  while (!heap.empty()) {
    sorted.push_back(heap.top());
    heap.pop();
  }
  std::sort(sorted.begin(), sorted.end());
  std::vector<uint32_t> ids;
  ids.reserve(sorted.size());
  for (const Entry& e : sorted) ids.push_back(e.second);
  return ids;
}

Dataset MakeDataset(const DatasetSpec& spec) {
  FPGADP_CHECK(spec.dim > 0 && spec.num_base > 0);
  Dataset data;
  data.dim = spec.dim;
  // One pool split into base and queries: identical distribution (same
  // latent clusters) but disjoint vectors.
  std::vector<float> pool = GenerateClusteredVectors(
      spec.num_base + spec.num_queries, spec.dim, spec.num_clusters, spec.seed,
      spec.cluster_stddev);
  data.base.assign(pool.begin(), pool.begin() + spec.num_base * spec.dim);
  data.queries.assign(pool.begin() + spec.num_base * spec.dim, pool.end());
  data.ground_truth.reserve(spec.num_queries);
  for (size_t q = 0; q < spec.num_queries; ++q) {
    data.ground_truth.push_back(
        BruteForceKnn(data, data.QueryVector(q), spec.ground_truth_k));
  }
  return data;
}

double RecallAtK(const std::vector<uint32_t>& result,
                 const std::vector<uint32_t>& truth, size_t k) {
  FPGADP_CHECK(k > 0);
  const size_t kk = std::min(k, truth.size());
  size_t hits = 0;
  for (size_t i = 0; i < kk; ++i) {
    const uint32_t want = truth[i];
    for (size_t j = 0; j < std::min(k, result.size()); ++j) {
      if (result[j] == want) {
        ++hits;
        break;
      }
    }
  }
  return kk == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(kk);
}

}  // namespace fpgadp::anns
