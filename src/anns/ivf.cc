#include "src/anns/ivf.h"

#include <algorithm>
#include <queue>

#include "src/anns/dataset.h"
#include "src/anns/kmeans.h"
#include "src/common/check.h"

namespace fpgadp::anns {

Result<IvfPqIndex> IvfPqIndex::Build(const std::vector<float>& vectors,
                                     size_t dim, const Options& options) {
  if (dim == 0 || vectors.size() % dim != 0) {
    return Status::InvalidArgument("vectors size not a multiple of dim");
  }
  const size_t n = vectors.size() / dim;
  if (n < options.nlist) {
    return Status::InvalidArgument("need at least nlist vectors");
  }

  // Coarse quantizer.
  KMeansOptions km;
  km.k = options.nlist;
  km.max_iters = options.coarse_iters;
  km.seed = options.seed;
  auto coarse = KMeans(vectors, dim, km);
  if (!coarse.ok()) return coarse.status();

  // Residuals for PQ training.
  std::vector<float> residuals(vectors.size());
  for (size_t i = 0; i < n; ++i) {
    const float* v = vectors.data() + i * dim;
    const float* c = coarse->centroids.data() + coarse->assignment[i] * dim;
    for (size_t d = 0; d < dim; ++d) residuals[i * dim + d] = v[d] - c[d];
  }
  ProductQuantizer::Options pq_opts = options.pq;
  pq_opts.seed = options.seed + 100;
  auto pq = ProductQuantizer::Train(residuals, dim, pq_opts);
  if (!pq.ok()) return pq.status();

  IvfPqIndex index(dim, std::move(pq).value());
  index.coarse_ = std::move(coarse->centroids);
  index.lists_.resize(options.nlist);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t c = coarse->assignment[i];
    List& list = index.lists_[c];
    list.ids.push_back(static_cast<uint32_t>(i));
    const std::vector<uint8_t> codes =
        index.pq_.Encode(residuals.data() + i * dim);
    list.codes.insert(list.codes.end(), codes.begin(), codes.end());
  }
  if (options.store_vectors) index.stored_vectors_ = vectors;
  index.total_codes_ = n;
  return index;
}

std::vector<uint32_t> IvfPqIndex::SelectProbes(const float* query,
                                               size_t nprobe) const {
  using Entry = std::pair<float, uint32_t>;
  std::vector<Entry> dists;
  dists.reserve(lists_.size());
  for (size_t c = 0; c < lists_.size(); ++c) {
    dists.emplace_back(SquaredL2(coarse_.data() + c * dim_, query, dim_),
                       static_cast<uint32_t>(c));
  }
  const size_t np = std::min(nprobe, dists.size());
  std::partial_sort(dists.begin(), dists.begin() + np, dists.end());
  std::vector<uint32_t> probes;
  probes.reserve(np);
  for (size_t i = 0; i < np; ++i) probes.push_back(dists[i].second);
  return probes;
}

std::vector<Neighbor> IvfPqIndex::SearchLists(
    const float* query, const std::vector<uint32_t>& lists, size_t k) const {
  FPGADP_CHECK(k > 0);
  using Entry = std::pair<float, uint32_t>;
  std::priority_queue<Entry> heap;  // max-heap of the best k
  std::vector<float> residual_query(dim_);
  for (uint32_t c : lists) {
    const List& list = lists_[c];
    if (list.ids.empty()) continue;
    // Residual of the query against this list's centroid.
    const float* ctr = coarse_.data() + c * dim_;
    for (size_t d = 0; d < dim_; ++d) residual_query[d] = query[d] - ctr[d];
    const std::vector<float> lut = pq_.BuildLut(residual_query.data());
    const size_t m = pq_.m();
    for (size_t i = 0; i < list.ids.size(); ++i) {
      const float d = pq_.AdcDistance(lut, list.codes.data() + i * m);
      if (heap.size() < k) {
        heap.emplace(d, list.ids[i]);
      } else if (d < heap.top().first) {
        heap.pop();
        heap.emplace(d, list.ids[i]);
      }
    }
  }
  std::vector<Neighbor> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back({heap.top().second, heap.top().first});
    heap.pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<Neighbor> IvfPqIndex::Search(const float* query,
                                         const SearchParams& params) const {
  FPGADP_CHECK(params.k > 0);
  FPGADP_CHECK(params.rerank == 0 || has_stored_vectors());
  // With refinement, the ADC stage gathers a larger candidate pool.
  const size_t pool_k =
      params.rerank > 0 ? params.rerank * params.k : params.k;
  std::vector<Neighbor> out =
      SearchLists(query, SelectProbes(query, params.nprobe), pool_k);
  if (params.rerank > 0) {
    // Refinement: exact distances over the ADC candidate pool.
    for (Neighbor& nb : out) {
      nb.distance =
          SquaredL2(stored_vectors_.data() + size_t(nb.id) * dim_, query, dim_);
    }
    std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
      return a.distance < b.distance ||
             (a.distance == b.distance && a.id < b.id);
    });
    if (out.size() > params.k) out.resize(params.k);
  }
  return out;
}

uint64_t IvfPqIndex::CodesScanned(const float* query, size_t nprobe) const {
  uint64_t total = 0;
  for (uint32_t c : SelectProbes(query, nprobe)) {
    total += lists_[c].ids.size();
  }
  return total;
}

uint64_t IvfPqIndex::index_bytes() const {
  uint64_t bytes = coarse_.size() * sizeof(float);
  for (const List& l : lists_) {
    bytes += l.ids.size() * sizeof(uint32_t) + l.codes.size();
  }
  bytes += stored_vectors_.size() * sizeof(float);
  return bytes;
}

}  // namespace fpgadp::anns
