#ifndef FPGADP_ANNS_ACCEL_H_
#define FPGADP_ANNS_ACCEL_H_

#include <cstdint>
#include <vector>

#include "src/anns/dataset.h"
#include "src/anns/ivf.h"
#include "src/common/result.h"
#include "src/device/device.h"
#include "src/hls/estimator.h"

namespace fpgadp::anns {

/// Hardware shape of the FANNS accelerator (Figure 3): how many parallel
/// units each pipeline stage instantiates. These are the co-design knobs
/// the tuner explores together with the index parameters.
struct AccelConfig {
  double clock_hz = 200e6;
  uint32_t coarse_lanes = 64;   ///< MACs in the cluster-distance stage.
  uint32_t lut_lanes = 128;     ///< MACs in the LUT-construction stage
                                ///< (FANNS replicates this stage heavily —
                                ///< it would otherwise dominate at high
                                ///< nprobe).
  uint32_t scan_lanes = 8;      ///< PQ codes evaluated per cycle.
  double hbm_bytes_per_cycle = 64;  ///< Code-stream bandwidth cap.
};

/// Timing breakdown of a batch search on the accelerator.
struct AccelStats {
  std::vector<std::vector<Neighbor>> results;  ///< Per query.
  uint64_t cycles = 0;
  double seconds = 0;
  double qps = 0;
  double latency_us_per_query = 0;  ///< Single-query latency (unpipelined).
  uint64_t codes_scanned = 0;
  // Per-stage busy cycles (bottleneck analysis).
  uint64_t coarse_cycles = 0;
  uint64_t lut_cycles = 0;
  uint64_t scan_cycles = 0;
};

/// Cycle-level model of the FANNS IVF-PQ accelerator. Queries stream
/// through four stages — cluster select, LUT construction, PQ code scan,
/// systolic top-K — each a simulated module; different queries occupy
/// different stages simultaneously, so batch throughput is set by the
/// slowest stage, exactly as in the real spatial design. Results are
/// bit-identical to IvfPqIndex::Search.
class FannsAccelerator {
 public:
  /// `index` must outlive the accelerator.
  FannsAccelerator(const IvfPqIndex* index, const AccelConfig& config);

  /// Runs all queries in `queries` (num_queries x dim, row-major).
  Result<AccelStats> SearchBatch(const std::vector<float>& queries,
                                 const IvfPqIndex::SearchParams& params) const;

  /// Analytic per-query stage costs in cycles — the tuner's inner model.
  struct StageCosts {
    uint64_t coarse = 0;
    uint64_t lut = 0;
    uint64_t scan = 0;
    uint64_t topk = 0;
    uint64_t rerank = 0;  ///< Exact-refinement stage (0 when disabled).
    uint64_t Bottleneck() const;
    uint64_t Latency() const { return coarse + lut + scan + topk + rerank; }
  };
  StageCosts CostModel(const IvfPqIndex::SearchParams& params,
                       double avg_codes_per_query) const;

  /// Fabric resources the configured design would consume (for the tuner's
  /// feasibility check), via the HLS estimator.
  Result<device::Resources> EstimateResources(
      const device::DeviceSpec& device) const;

  const AccelConfig& config() const { return config_; }

 private:
  const IvfPqIndex* index_;
  AccelConfig config_;
};

}  // namespace fpgadp::anns

#endif  // FPGADP_ANNS_ACCEL_H_
