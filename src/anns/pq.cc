#include "src/anns/pq.h"

#include <algorithm>
#include <limits>

#include "src/anns/dataset.h"
#include "src/anns/kmeans.h"
#include "src/common/check.h"

namespace fpgadp::anns {

Result<ProductQuantizer> ProductQuantizer::Train(
    const std::vector<float>& vectors, size_t dim, const Options& options) {
  if (options.m == 0 || dim % options.m != 0) {
    return Status::InvalidArgument("dim must be divisible by m");
  }
  if (options.ksub == 0 || options.ksub > 256) {
    return Status::InvalidArgument("ksub must be in [1, 256]");
  }
  const size_t n = dim == 0 ? 0 : vectors.size() / dim;
  if (n < options.ksub) {
    return Status::InvalidArgument("need at least ksub training vectors");
  }

  ProductQuantizer pq(dim, options.m, options.ksub);
  const size_t dsub = pq.dsub();
  pq.centroids_.resize(options.m * options.ksub * dsub);

  std::vector<float> sub(n * dsub);
  for (size_t j = 0; j < options.m; ++j) {
    // Slice out the j-th sub-vector of every training point.
    for (size_t i = 0; i < n; ++i) {
      const float* src = vectors.data() + i * dim + j * dsub;
      std::copy_n(src, dsub, sub.data() + i * dsub);
    }
    KMeansOptions km;
    km.k = options.ksub;
    km.max_iters = options.train_iters;
    km.seed = options.seed + j;
    auto res = KMeans(sub, dsub, km);
    if (!res.ok()) return res.status();
    std::copy(res->centroids.begin(), res->centroids.end(),
              pq.centroids_.begin() + j * options.ksub * dsub);
  }
  return pq;
}

std::vector<uint8_t> ProductQuantizer::Encode(const float* v) const {
  std::vector<uint8_t> codes(m_);
  const size_t dsub = this->dsub();
  for (size_t j = 0; j < m_; ++j) {
    const float* subspace = centroids_.data() + j * ksub_ * dsub;
    uint32_t best = 0;
    float best_d = std::numeric_limits<float>::infinity();
    for (size_t c = 0; c < ksub_; ++c) {
      const float d = SquaredL2(subspace + c * dsub, v + j * dsub, dsub);
      if (d < best_d) {
        best_d = d;
        best = static_cast<uint32_t>(c);
      }
    }
    codes[j] = static_cast<uint8_t>(best);
  }
  return codes;
}

std::vector<float> ProductQuantizer::Decode(const uint8_t* codes) const {
  std::vector<float> v(dim_);
  const size_t dsub = this->dsub();
  for (size_t j = 0; j < m_; ++j) {
    const float* c = centroids_.data() + (j * ksub_ + codes[j]) * dsub;
    std::copy_n(c, dsub, v.data() + j * dsub);
  }
  return v;
}

std::vector<float> ProductQuantizer::BuildLut(const float* query) const {
  std::vector<float> lut(m_ * ksub_);
  const size_t dsub = this->dsub();
  for (size_t j = 0; j < m_; ++j) {
    const float* subspace = centroids_.data() + j * ksub_ * dsub;
    for (size_t c = 0; c < ksub_; ++c) {
      lut[j * ksub_ + c] = SquaredL2(subspace + c * dsub, query + j * dsub, dsub);
    }
  }
  return lut;
}

}  // namespace fpgadp::anns
