#ifndef FPGADP_ANNS_IVF_H_
#define FPGADP_ANNS_IVF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/anns/pq.h"
#include "src/common/result.h"

namespace fpgadp::anns {

/// Candidate returned by a search, closest first.
struct Neighbor {
  uint32_t id = 0;
  float distance = 0;
};

/// IVF-PQ index: a coarse k-means quantizer partitions the corpus into
/// `nlist` inverted lists; within each list, residual vectors (v - centroid)
/// are PQ-compressed to m bytes. This is the index family FANNS accelerates.
class IvfPqIndex {
 public:
  struct Options {
    size_t nlist = 64;
    size_t coarse_iters = 10;
    ProductQuantizer::Options pq;
    uint64_t seed = 3;
    /// Keep the raw vectors (needed for exact re-ranking). Costs n x dim x
    /// 4 bytes of index memory, as in FANNS deployments that refine.
    bool store_vectors = false;
  };

  struct SearchParams {
    size_t nprobe = 8;
    size_t k = 10;
    /// Refinement factor: when > 0, gather rerank*k candidates by ADC
    /// distance and re-score them with exact distances against the stored
    /// raw vectors (requires Options::store_vectors). Lifts the PQ recall
    /// ceiling at the cost of rerank*k vector fetches per query.
    size_t rerank = 0;
  };

  /// Builds the index over `vectors` (n x dim).
  static Result<IvfPqIndex> Build(const std::vector<float>& vectors,
                                  size_t dim, const Options& options);

  /// Exact-layout accessor for the accelerator model.
  struct List {
    std::vector<uint32_t> ids;
    std::vector<uint8_t> codes;  ///< ids.size() * m bytes.
  };

  /// CPU IVF-PQ search: coarse scan, probe `nprobe` lists with per-list ADC
  /// LUTs over residuals, heap-select top-k. Returns neighbors sorted by
  /// estimated distance.
  std::vector<Neighbor> Search(const float* query,
                               const SearchParams& params) const;

  /// ADC scan restricted to the given inverted lists: per-list residual
  /// LUTs, heap-select the `k` closest codes, sorted by (distance, id).
  /// Search() is SearchLists() over SelectProbes(); a sharded deployment
  /// calls it per shard and merges, since each candidate's distance depends
  /// only on its own list's LUT.
  std::vector<Neighbor> SearchLists(const float* query,
                                    const std::vector<uint32_t>& lists,
                                    size_t k) const;

  /// Number of PQ codes that `Search` with `nprobe` would scan for `query`
  /// (the accelerator's work measure).
  uint64_t CodesScanned(const float* query, size_t nprobe) const;

  size_t nlist() const { return lists_.size(); }
  size_t dim() const { return dim_; }
  const ProductQuantizer& pq() const { return pq_; }
  const std::vector<float>& coarse_centroids() const { return coarse_; }
  const List& list(size_t i) const { return lists_[i]; }
  uint64_t total_codes() const { return total_codes_; }
  /// Average inverted-list length.
  double avg_list_len() const {
    return lists_.empty() ? 0 : double(total_codes_) / double(lists_.size());
  }
  /// Index memory footprint: codes + ids + centroids, in bytes.
  uint64_t index_bytes() const;

  /// The `nprobe` coarse centroids nearest to `query`, closest first.
  std::vector<uint32_t> SelectProbes(const float* query, size_t nprobe) const;

  /// True iff raw vectors were stored (re-ranking available).
  bool has_stored_vectors() const { return !stored_vectors_.empty(); }

 private:
  IvfPqIndex(size_t dim, ProductQuantizer pq) : dim_(dim), pq_(std::move(pq)) {}

  size_t dim_;
  ProductQuantizer pq_;
  std::vector<float> coarse_;  ///< nlist x dim.
  std::vector<List> lists_;
  std::vector<float> stored_vectors_;  ///< n x dim when store_vectors.
  uint64_t total_codes_ = 0;
};

}  // namespace fpgadp::anns

#endif  // FPGADP_ANNS_IVF_H_
