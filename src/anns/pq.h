#ifndef FPGADP_ANNS_PQ_H_
#define FPGADP_ANNS_PQ_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/result.h"

namespace fpgadp::anns {

/// Product quantizer: splits a `dim`-vector into `m` sub-vectors of
/// dim/m components and quantizes each against `ksub` trained centroids,
/// compressing a vector to m bytes. Distances are evaluated with the
/// asymmetric distance computation (ADC) lookup table — the operation the
/// FANNS accelerator unrolls into parallel LUT lanes.
class ProductQuantizer {
 public:
  struct Options {
    size_t m = 8;          ///< Sub-quantizers (bytes per code).
    size_t ksub = 256;     ///< Centroids per sub-quantizer (<= 256).
    size_t train_iters = 8;
    uint64_t seed = 11;
  };

  /// Trains on `vectors` (n x dim). Requires dim % m == 0, ksub <= 256,
  /// and at least ksub training vectors.
  static Result<ProductQuantizer> Train(const std::vector<float>& vectors,
                                        size_t dim, const Options& options);

  /// Encodes one vector into m codes.
  std::vector<uint8_t> Encode(const float* v) const;

  /// Reconstructs the quantized vector from codes.
  std::vector<float> Decode(const uint8_t* codes) const;

  /// Builds the ADC lookup table for `query`: m x ksub squared-distance
  /// partials, row-major.
  std::vector<float> BuildLut(const float* query) const;

  /// ADC distance: sum over sub-quantizers of lut[j][codes[j]].
  float AdcDistance(const std::vector<float>& lut, const uint8_t* codes) const {
    float d = 0;
    for (size_t j = 0; j < m_; ++j) d += lut[j * ksub_ + codes[j]];
    return d;
  }

  size_t dim() const { return dim_; }
  size_t m() const { return m_; }
  size_t ksub() const { return ksub_; }
  size_t dsub() const { return dim_ / m_; }
  /// Bytes of the on-chip LUT per query (what the accelerator partitions).
  size_t lut_bytes() const { return m_ * ksub_ * sizeof(float); }

 private:
  ProductQuantizer(size_t dim, size_t m, size_t ksub)
      : dim_(dim), m_(m), ksub_(ksub) {}

  size_t dim_;
  size_t m_;
  size_t ksub_;
  std::vector<float> centroids_;  ///< m x ksub x dsub.
};

}  // namespace fpgadp::anns

#endif  // FPGADP_ANNS_PQ_H_
