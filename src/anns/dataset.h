#ifndef FPGADP_ANNS_DATASET_H_
#define FPGADP_ANNS_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fpgadp::anns {

/// A dense-vector workload: base corpus, query set, and exact ground truth
/// (computed by brute force) — the synthetic stand-in for SIFT/Deep-style
/// ANN benchmarks.
struct Dataset {
  size_t dim = 0;
  std::vector<float> base;       ///< num_base x dim, row-major.
  std::vector<float> queries;    ///< num_queries x dim, row-major.
  std::vector<std::vector<uint32_t>> ground_truth;  ///< Per query, ids by distance.

  size_t num_base() const { return dim == 0 ? 0 : base.size() / dim; }
  size_t num_queries() const { return dim == 0 ? 0 : queries.size() / dim; }
  const float* BaseVector(size_t i) const { return base.data() + i * dim; }
  const float* QueryVector(size_t i) const { return queries.data() + i * dim; }
};

/// Squared L2 distance between two `dim`-vectors.
float SquaredL2(const float* a, const float* b, size_t dim);

/// Exact K nearest base ids for `query` by brute force, closest first.
std::vector<uint32_t> BruteForceKnn(const Dataset& data, const float* query,
                                    size_t k);

struct DatasetSpec {
  size_t num_base = 10000;
  size_t num_queries = 100;
  size_t dim = 64;
  size_t num_clusters = 64;  ///< Latent clusters in the generator.
  /// Spread of each latent cluster. Small values give well-separated
  /// clusters (easy for IVF: one probe finds everything); values around
  /// 0.3 blur neighborhoods across coarse cells, the regime where the
  /// recall-vs-nprobe trade-off of real corpora appears.
  float cluster_stddev = 0.15f;
  size_t ground_truth_k = 10;
  uint64_t seed = 123;
};

/// Generates a clustered dataset and its exact ground truth. Deterministic
/// in `spec.seed`. Queries are drawn from the same distribution as the base.
Dataset MakeDataset(const DatasetSpec& spec);

/// Recall@K: fraction of the true K nearest that appear in `result`
/// (averaged over queries by the caller).
double RecallAtK(const std::vector<uint32_t>& result,
                 const std::vector<uint32_t>& truth, size_t k);

}  // namespace fpgadp::anns

#endif  // FPGADP_ANNS_DATASET_H_
