#ifndef FPGADP_ANNS_KMEANS_H_
#define FPGADP_ANNS_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/result.h"

namespace fpgadp::anns {

struct KMeansOptions {
  size_t k = 16;
  size_t max_iters = 10;
  uint64_t seed = 1;
};

struct KMeansResult {
  std::vector<float> centroids;     ///< k x dim, row-major.
  std::vector<uint32_t> assignment; ///< Per input point, centroid index.
  size_t iters_run = 0;
  double inertia = 0;               ///< Sum of squared distances to centroids.
};

/// Lloyd's k-means with random-point initialization and empty-cluster
/// re-seeding (to the farthest point). Deterministic in `options.seed`.
/// Used for IVF coarse quantizer and PQ sub-quantizer training.
/// Returns InvalidArgument if there are fewer points than clusters.
Result<KMeansResult> KMeans(const std::vector<float>& points, size_t dim,
                            const KMeansOptions& options);

/// Index of the centroid nearest to `v` (squared L2).
uint32_t NearestCentroid(const std::vector<float>& centroids, size_t dim,
                         const float* v);

}  // namespace fpgadp::anns

#endif  // FPGADP_ANNS_KMEANS_H_
