#ifndef FPGADP_ANNS_CPU_COST_H_
#define FPGADP_ANNS_CPU_COST_H_

#include "src/anns/ivf.h"
#include "src/device/device.h"

namespace fpgadp::anns {

/// Calibrated analytic model of single-core CPU IVF-PQ search time per
/// query, so CPU-vs-FPGA comparisons are deterministic on any host:
///
///  * coarse scan + LUT build: dense FMA work at `flops_per_ns`
///    (8 ≈ one AVX2 FMA port sustained),
///  * code scan: m dependent table lookups per code from an L1/L2-resident
///    LUT plus heap maintenance, at `ns_per_code_byte`.
struct CpuSearchModel {
  double flops_per_ns = 8.0;
  double ns_per_code_byte = 0.25;  ///< Per byte of PQ code scanned.
  double heap_ns_per_candidate = 0.5;
  double vector_fetch_ns = 80;     ///< DRAM miss per re-ranked raw vector.

  /// Seconds per query for the given index/search shape.
  double SecondsPerQuery(const IvfPqIndex& index,
                         const IvfPqIndex::SearchParams& params,
                         double avg_codes_per_query) const {
    const double dim = static_cast<double>(index.dim());
    const double coarse_flops = 2.0 * double(index.nlist()) * dim;
    const double lut_flops =
        2.0 * double(params.nprobe) * double(index.pq().ksub()) * dim;
    const double compute_ns = (coarse_flops + lut_flops) / flops_per_ns;
    const double scan_ns =
        avg_codes_per_query * double(index.pq().m()) * ns_per_code_byte +
        avg_codes_per_query * heap_ns_per_candidate;
    double rerank_ns = 0;
    if (params.rerank > 0) {
      const double candidates = double(params.rerank) * double(params.k);
      rerank_ns = candidates * (vector_fetch_ns + 2.0 * dim / flops_per_ns);
    }
    return (compute_ns + scan_ns + rerank_ns) * 1e-9;
  }
};

}  // namespace fpgadp::anns

#endif  // FPGADP_ANNS_CPU_COST_H_
