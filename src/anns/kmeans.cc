#include "src/anns/kmeans.h"

#include <algorithm>
#include <limits>

#include "src/anns/dataset.h"
#include "src/common/check.h"
#include "src/common/random.h"

namespace fpgadp::anns {

uint32_t NearestCentroid(const std::vector<float>& centroids, size_t dim,
                         const float* v) {
  FPGADP_CHECK(!centroids.empty());
  const size_t k = centroids.size() / dim;
  uint32_t best = 0;
  float best_d = std::numeric_limits<float>::infinity();
  for (size_t c = 0; c < k; ++c) {
    const float d = SquaredL2(centroids.data() + c * dim, v, dim);
    if (d < best_d) {
      best_d = d;
      best = static_cast<uint32_t>(c);
    }
  }
  return best;
}

Result<KMeansResult> KMeans(const std::vector<float>& points, size_t dim,
                            const KMeansOptions& options) {
  if (dim == 0 || points.size() % dim != 0) {
    return Status::InvalidArgument("points size not a multiple of dim");
  }
  const size_t n = points.size() / dim;
  if (n < options.k || options.k == 0) {
    return Status::InvalidArgument("need at least k points");
  }

  KMeansResult res;
  res.centroids.resize(options.k * dim);
  res.assignment.assign(n, 0);

  // Init: k distinct random points.
  Rng rng(options.seed);
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t i = 0; i < options.k; ++i) {
    std::swap(perm[i], perm[i + rng.NextBounded(n - i)]);
    std::copy_n(points.data() + perm[i] * dim, dim,
                res.centroids.data() + i * dim);
  }

  std::vector<float> sums(options.k * dim);
  std::vector<uint64_t> counts(options.k);
  std::vector<float> point_dist(n);

  for (size_t iter = 0; iter < options.max_iters; ++iter) {
    // Assign.
    bool changed = false;
    double inertia = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint32_t c =
          NearestCentroid(res.centroids, dim, points.data() + i * dim);
      point_dist[i] =
          SquaredL2(res.centroids.data() + c * dim, points.data() + i * dim, dim);
      inertia += point_dist[i];
      if (c != res.assignment[i]) {
        res.assignment[i] = c;
        changed = true;
      }
    }
    res.inertia = inertia;
    res.iters_run = iter + 1;
    if (!changed && iter > 0) break;

    // Update.
    std::fill(sums.begin(), sums.end(), 0.0f);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t c = res.assignment[i];
      ++counts[c];
      float* s = sums.data() + c * dim;
      const float* p = points.data() + i * dim;
      for (size_t d = 0; d < dim; ++d) s[d] += p[d];
    }
    for (size_t c = 0; c < options.k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at the current farthest point.
        size_t far = 0;
        for (size_t i = 1; i < n; ++i) {
          if (point_dist[i] > point_dist[far]) far = i;
        }
        std::copy_n(points.data() + far * dim, dim,
                    res.centroids.data() + c * dim);
        point_dist[far] = 0;
        continue;
      }
      float* ctr = res.centroids.data() + c * dim;
      for (size_t d = 0; d < dim; ++d) {
        ctr[d] = sums[c * dim + d] / static_cast<float>(counts[c]);
      }
    }
  }
  // Final assignment against the last centroid update.
  for (size_t i = 0; i < n; ++i) {
    res.assignment[i] =
        NearestCentroid(res.centroids, dim, points.data() + i * dim);
  }
  return res;
}

}  // namespace fpgadp::anns
