#include "src/anns/accel.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/units.h"
#include "src/sim/engine.h"
#include "src/sim/kernels.h"
#include "src/sim/var_stage.h"

namespace fpgadp::anns {

namespace {

/// Tokens flowing between the accelerator's pipeline stages.
struct QueryTok {
  uint32_t qid = 0;
};
struct ProbeTok {
  uint32_t qid = 0;
  uint64_t codes = 0;
};
struct LutTok {
  uint32_t qid = 0;
  uint64_t codes = 0;
};
struct ResultTok {
  uint32_t qid = 0;
  uint64_t codes = 0;
};

uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

}  // namespace

FannsAccelerator::FannsAccelerator(const IvfPqIndex* index,
                                   const AccelConfig& config)
    : index_(index), config_(config) {
  FPGADP_CHECK(index_ != nullptr);
  FPGADP_CHECK(config_.coarse_lanes > 0 && config_.lut_lanes > 0 &&
               config_.scan_lanes > 0);
}

uint64_t FannsAccelerator::StageCosts::Bottleneck() const {
  return std::max({coarse, lut, scan, topk, rerank});
}

FannsAccelerator::StageCosts FannsAccelerator::CostModel(
    const IvfPqIndex::SearchParams& params, double avg_codes) const {
  const size_t dim = index_->dim();
  const size_t nlist = index_->nlist();
  const size_t ksub = index_->pq().ksub();
  StageCosts c;
  // Stage 1: nlist x dim MACs across `coarse_lanes`, plus the selection
  // network drain (~nprobe).
  c.coarse = CeilDiv(uint64_t(nlist) * dim, config_.coarse_lanes) + params.nprobe;
  // Stage 2: per probed list, an m x ksub x dsub = ksub x dim MAC LUT.
  c.lut = CeilDiv(uint64_t(params.nprobe) * ksub * dim, config_.lut_lanes);
  // Stage 3: one code per cycle per scan lane, capped by the HBM stream.
  const auto codes = static_cast<uint64_t>(avg_codes);
  const uint64_t compute = CeilDiv(codes, config_.scan_lanes);
  const uint64_t memory = static_cast<uint64_t>(
      std::ceil(double(codes) * double(index_->pq().m()) /
                config_.hbm_bytes_per_cycle));
  c.scan = std::max<uint64_t>(1, std::max(compute, memory));
  // Stage 4: systolic queue ingests at line rate; only the drain shows up.
  c.topk = params.k + config_.scan_lanes;
  // Stage 5 (optional): exact refinement fetches rerank*k raw vectors and
  // re-scores them — memory-bound fetch vs MAC-bound rescoring, whichever
  // is slower.
  if (params.rerank > 0) {
    const uint64_t candidates = uint64_t(params.rerank) * params.k;
    const uint64_t fetch = static_cast<uint64_t>(
        std::ceil(double(candidates) * double(dim) * sizeof(float) /
                  config_.hbm_bytes_per_cycle));
    const uint64_t compute = CeilDiv(candidates * dim, config_.lut_lanes);
    c.rerank = std::max(fetch, compute);
  }
  return c;
}

Result<AccelStats> FannsAccelerator::SearchBatch(
    const std::vector<float>& queries,
    const IvfPqIndex::SearchParams& params) const {
  const size_t dim = index_->dim();
  if (dim == 0 || queries.size() % dim != 0) {
    return Status::InvalidArgument("queries size not a multiple of dim");
  }
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  if (params.rerank > 0 && !index_->has_stored_vectors()) {
    return Status::FailedPrecondition(
        "re-ranking requires an index built with store_vectors");
  }
  const size_t nq = queries.size() / dim;
  if (nq == 0) return Status::InvalidArgument("no queries");

  AccelStats stats;
  stats.results.resize(nq);

  // Pre-compute functional results and per-query work (the simulation
  // charges the cycles; the math is identical to the CPU path).
  std::vector<uint64_t> codes_per_query(nq);
  for (size_t q = 0; q < nq; ++q) {
    const float* query = queries.data() + q * dim;
    stats.results[q] = index_->Search(query, params);
    codes_per_query[q] = index_->CodesScanned(query, params.nprobe);
    stats.codes_scanned += codes_per_query[q];
  }

  // Assemble the four-stage pipeline.
  std::vector<QueryTok> toks(nq);
  for (size_t q = 0; q < nq; ++q) toks[q].qid = static_cast<uint32_t>(q);

  sim::Stream<QueryTok> s0("q", 4);
  sim::Stream<ProbeTok> s1("probe", 4);
  sim::Stream<LutTok> s2("lut", 4);
  sim::Stream<ResultTok> s3("res", 4);

  const StageCosts unit = CostModel(params, /*avg_codes=*/0);
  sim::VectorSource<QueryTok> source("queries", toks, &s0);
  sim::VarStage<QueryTok, ProbeTok> coarse(
      "coarse", &s0, &s1,
      [&](const QueryTok& t) {
        return ProbeTok{t.qid, codes_per_query[t.qid]};
      },
      [&](const QueryTok&) { return unit.coarse; });
  sim::VarStage<ProbeTok, LutTok> lut(
      "lut", &s1, &s2,
      [](const ProbeTok& t) { return LutTok{t.qid, t.codes}; },
      [&](const ProbeTok&) { return unit.lut; });
  sim::VarStage<LutTok, ResultTok> scan(
      "scan", &s2, &s3,
      [](const LutTok& t) { return ResultTok{t.qid, t.codes}; },
      [&](const LutTok& t) {
        StageCosts c = CostModel(params, double(t.codes));
        // The systolic queue and the optional refinement drain in-line.
        return c.scan + c.topk + c.rerank;
      });
  sim::VectorSink<ResultTok> sink("sink", &s3);

  sim::Engine engine(config_.clock_hz);
  engine.AddModule(&source);
  engine.AddModule(&coarse);
  engine.AddModule(&lut);
  engine.AddModule(&scan);
  engine.AddModule(&sink);
  engine.AddStream(&s0);
  engine.AddStream(&s1);
  engine.AddStream(&s2);
  engine.AddStream(&s3);

  auto run = engine.Run(1ull << 40);
  if (!run.ok()) return run.status();
  FPGADP_CHECK(sink.collected().size() == nq);

  stats.cycles = run.value();
  stats.seconds = CyclesToSeconds(stats.cycles, config_.clock_hz);
  stats.qps = double(nq) / stats.seconds;
  const double avg_codes = double(stats.codes_scanned) / double(nq);
  stats.latency_us_per_query =
      CyclesToSeconds(CostModel(params, avg_codes).Latency(),
                      config_.clock_hz) * 1e6;
  stats.coarse_cycles = coarse.busy_cycles();
  stats.lut_cycles = lut.busy_cycles();
  stats.scan_cycles = scan.busy_cycles();
  return stats;
}

Result<device::Resources> FannsAccelerator::EstimateResources(
    const device::DeviceSpec& device) const {
  using hls::KernelProfile;
  using hls::Pragmas;
  device::Resources total;

  // Stage 1 & 2: fused multiply-add distance lanes.
  KernelProfile mac;
  mac.name = "distance_mac";
  mac.fp_adds = 2;  // subtract + accumulate
  mac.fp_mults = 1;
  {
    Pragmas p;
    p.unroll = config_.coarse_lanes;
    FPGADP_ASSIGN_OR_RETURN(auto rep, hls::Synthesize(mac, p, device));
    total = total + rep.resources;
  }
  {
    Pragmas p;
    p.unroll = config_.lut_lanes;
    FPGADP_ASSIGN_OR_RETURN(auto rep, hls::Synthesize(mac, p, device));
    total = total + rep.resources;
  }
  // Stage 3: per scan lane, m LUT lookups + adds against an on-chip LUT
  // partitioned for single-cycle access.
  KernelProfile scan;
  scan.name = "pq_scan";
  scan.fp_adds = static_cast<uint32_t>(index_->pq().m());
  scan.local_bytes = index_->pq().lut_bytes();
  scan.local_mem_accesses = static_cast<uint32_t>(index_->pq().m());
  {
    Pragmas p;
    p.unroll = config_.scan_lanes;
    p.array_partition =
        static_cast<uint32_t>(index_->pq().m()) * config_.scan_lanes;
    FPGADP_ASSIGN_OR_RETURN(auto rep, hls::Synthesize(scan, p, device));
    total = total + rep.resources;
  }
  // Stage 4: systolic compare-swap cells (sized for k=100 worst case).
  KernelProfile topk;
  topk.name = "systolic_topk";
  topk.comparisons = 100;
  {
    Pragmas p;
    p.unroll = config_.scan_lanes;
    FPGADP_ASSIGN_OR_RETURN(auto rep, hls::Synthesize(topk, p, device));
    total = total + rep.resources;
  }
  return total;
}

}  // namespace fpgadp::anns
