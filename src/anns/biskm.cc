#include "src/anns/biskm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/anns/dataset.h"
#include "src/common/check.h"

namespace fpgadp::anns {

std::vector<float> QuantizeToBits(const std::vector<float>& points,
                                  size_t dim, uint32_t bits) {
  FPGADP_CHECK(bits >= 1 && bits <= 32);
  FPGADP_CHECK(dim > 0 && points.size() % dim == 0);
  if (bits == 32) return points;  // full precision
  const size_t n = points.size() / dim;
  // Per-dimension min/max scaling.
  std::vector<float> lo(dim, std::numeric_limits<float>::infinity());
  std::vector<float> hi(dim, -std::numeric_limits<float>::infinity());
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      const float v = points[i * dim + d];
      lo[d] = std::min(lo[d], v);
      hi[d] = std::max(hi[d], v);
    }
  }
  const double levels = std::ldexp(1.0, int(bits)) - 1.0;
  std::vector<float> out(points.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      const double range = double(hi[d]) - double(lo[d]);
      if (range <= 0) {
        out[i * dim + d] = lo[d];
        continue;
      }
      const double unit = (points[i * dim + d] - lo[d]) / range;
      const double q = std::round(unit * levels) / levels;
      out[i * dim + d] = float(lo[d] + q * range);
    }
  }
  return out;
}

Result<BisKmResult> KMeansAnyPrecision(const std::vector<float>& points,
                                       size_t dim,
                                       const BisKmOptions& options) {
  if (options.bits < 1 || options.bits > 32) {
    return Status::InvalidArgument("bits must be in [1, 32]");
  }
  if (dim == 0 || points.size() % dim != 0) {
    return Status::InvalidArgument("points size not a multiple of dim");
  }
  const std::vector<float> quantized = QuantizeToBits(points, dim,
                                                      options.bits);
  KMeansOptions km;
  km.k = options.k;
  km.max_iters = options.max_iters;
  km.seed = options.seed;
  FPGADP_ASSIGN_OR_RETURN(KMeansResult clustering, KMeans(quantized, dim, km));

  // Quality metric: centroids scored against the original points.
  BisKmResult result;
  const size_t n = points.size() / dim;
  double inertia = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t c =
        NearestCentroid(clustering.centroids, dim, points.data() + i * dim);
    inertia += SquaredL2(clustering.centroids.data() + c * dim,
                         points.data() + i * dim, dim);
  }
  result.full_inertia = inertia;
  result.bits = options.bits;
  result.clustering = std::move(clustering);
  return result;
}

double BisKmPointsPerSecond(size_t dim, uint32_t bits,
                            double memory_bits_per_cycle, double clock_hz) {
  FPGADP_CHECK(dim > 0 && bits >= 1);
  const double bits_per_point = double(dim) * double(bits);
  return clock_hz * memory_bits_per_cycle / bits_per_point;
}

}  // namespace fpgadp::anns
