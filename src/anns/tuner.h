#ifndef FPGADP_ANNS_TUNER_H_
#define FPGADP_ANNS_TUNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/anns/accel.h"
#include "src/anns/dataset.h"
#include "src/anns/ivf.h"
#include "src/common/result.h"
#include "src/device/device.h"

namespace fpgadp::anns {

/// One explored design point: index parameters + hardware shape, with its
/// measured recall and modeled throughput.
struct DesignPoint {
  size_t nlist = 0;
  size_t m = 0;
  size_t nprobe = 0;
  uint32_t scan_lanes = 0;
  double recall = 0;
  double qps = 0;
  double latency_us = 0;
  bool fits = false;
  double avg_codes = 0;

  std::string ToString() const;
};

/// The hardware/algorithm co-design search of FANNS: because the optimal
/// (nlist, nprobe, m, #lanes) combination shifts with the recall target,
/// no single accelerator design wins everywhere — the tuner finds the best
/// feasible point per target.
struct TunerRequest {
  const Dataset* data = nullptr;
  size_t k = 10;
  double recall_target = 0.9;
  std::vector<size_t> nlist_choices = {16, 64, 256};
  std::vector<size_t> m_choices = {4, 8};
  std::vector<uint32_t> scan_lane_choices = {4, 8, 16, 32};
  size_t ksub = 256;
  size_t pq_train_iters = 6;
  uint64_t seed = 9;
  device::DeviceSpec device;
  AccelConfig base_accel;  ///< scan_lanes overwritten per candidate.
};

struct TunerResult {
  std::vector<DesignPoint> explored;  ///< All points (feasible or not).
  DesignPoint best;                   ///< Highest-QPS feasible point.
  bool found = false;
};

/// Explores the cross-product of index and hardware parameters. For each
/// (nlist, m): builds the index, measures recall@k per nprobe (doubling
/// sweep), then for each hardware shape computes modeled QPS and checks
/// the design fits the device. O(#nlist x #m) index builds — size the
/// dataset accordingly.
Result<TunerResult> ExploreDesignSpace(const TunerRequest& request);

}  // namespace fpgadp::anns

#endif  // FPGADP_ANNS_TUNER_H_
