#ifndef FPGADP_ANNS_BISKM_H_
#define FPGADP_ANNS_BISKM_H_

#include <cstdint>
#include <vector>

#include "src/anns/kmeans.h"
#include "src/common/result.h"

namespace fpgadp::anns {

/// BiS-KM (FPGA'20, tutorial ref [14]): any-precision K-means. The data is
/// stored bit-serially so the accelerator can train on the first `bits`
/// bits of every value — throughput scales with 1/bits because the kernel
/// is memory-bound, while clustering quality degrades only gradually.
struct BisKmOptions {
  size_t k = 16;
  size_t max_iters = 10;
  uint32_t bits = 8;  ///< Precision per dimension, in [1, 32].
  uint64_t seed = 1;
};

struct BisKmResult {
  KMeansResult clustering;   ///< Trained on the quantized data.
  double full_inertia = 0;   ///< The quantized centroids scored on the
                             ///< original full-precision points.
  uint32_t bits = 0;
};

/// Quantizes `points` to a `bits`-bit per-dimension uniform grid
/// (min/max scaled) and returns the dequantized values — exactly what the
/// bit-serial memory layout presents to the compute units.
std::vector<float> QuantizeToBits(const std::vector<float>& points,
                                  size_t dim, uint32_t bits);

/// Runs Lloyd's on the `bits`-bit view of the data, then scores the
/// resulting centroids against the original full-precision points (the
/// quality metric BiS-KM reports). bits == 32 is exact full precision.
Result<BisKmResult> KMeansAnyPrecision(const std::vector<float>& points,
                                       size_t dim,
                                       const BisKmOptions& options);

/// Modeled accelerator throughput in points/second: the distance pipeline
/// streams `memory_bits_per_cycle` of bit-serial data per cycle, and each
/// point costs dim x bits bits — BiS-KM's core speed/precision trade.
double BisKmPointsPerSecond(size_t dim, uint32_t bits,
                            double memory_bits_per_cycle = 512,
                            double clock_hz = 200e6);

}  // namespace fpgadp::anns

#endif  // FPGADP_ANNS_BISKM_H_
