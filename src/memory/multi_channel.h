#ifndef FPGADP_MEMORY_MULTI_CHANNEL_H_
#define FPGADP_MEMORY_MULTI_CHANNEL_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/device/device.h"
#include "src/memory/channel.h"
#include "src/memory/mem_types.h"
#include "src/sim/engine.h"
#include "src/sim/stream.h"

namespace fpgadp::mem {

/// A bank of independent memory channels — a DDR4 subsystem (few wide
/// channels) or an HBM2 stack (32 narrow pseudo-channels). Owns the
/// channels and their request/response streams; kernels talk to
/// `request(c)` / `response(c)` directly, which is exactly how HLS kernels
/// attach one AXI master per HBM pseudo-channel.
class MultiChannelMemory {
 public:
  /// Builds `num_channels` channels with identical per-channel config.
  MultiChannelMemory(std::string name, uint32_t num_channels,
                     const MemoryChannel::Config& config,
                     size_t stream_depth = 16);

  /// Convenience factories pulling per-channel parameters from the catalog.
  static MultiChannelMemory MakeHbm(const device::DeviceSpec& spec,
                                    double clock_hz);
  static MultiChannelMemory MakeDdr(const device::DeviceSpec& spec,
                                    double clock_hz);

  /// Registers all channels and streams with `engine`.
  void RegisterWith(sim::Engine& engine);

  uint32_t num_channels() const { return static_cast<uint32_t>(channels_.size()); }
  sim::Stream<MemRequest>& request(uint32_t c) { return *req_[c]; }
  sim::Stream<MemResponse>& response(uint32_t c) { return *resp_[c]; }
  const MemoryChannel& channel(uint32_t c) const { return *channels_[c]; }

  /// Channel that owns byte address `addr` under granule-interleaving.
  uint32_t ChannelOf(uint64_t addr, uint32_t granule = 256) const {
    return static_cast<uint32_t>((addr / granule) % channels_.size());
  }

  /// Sum of bytes moved across all channels.
  uint64_t TotalBytesTransferred() const;
  /// Sum of requests completed across all channels.
  uint64_t TotalCompleted() const;

 private:
  std::vector<std::unique_ptr<sim::Stream<MemRequest>>> req_;
  std::vector<std::unique_ptr<sim::Stream<MemResponse>>> resp_;
  std::vector<std::unique_ptr<MemoryChannel>> channels_;
};

/// Flat byte-addressable storage holding the *contents* behind the timing
/// models. Functional and timing concerns are split, as in most
/// architecture simulators: kernels consult the store for values and the
/// channels for cycles.
class BackingStore {
 public:
  explicit BackingStore(uint64_t bytes) : data_(bytes, 0) {}

  uint64_t size() const { return data_.size(); }

  /// Reads a trivially-copyable T at byte offset `addr`.
  template <typename T>
  T Read(uint64_t addr) const {
    FPGADP_CHECK(addr + sizeof(T) <= data_.size());
    T v;
    std::memcpy(&v, data_.data() + addr, sizeof(T));
    return v;
  }

  /// Writes a trivially-copyable T at byte offset `addr`.
  template <typename T>
  void Write(uint64_t addr, const T& v) {
    FPGADP_CHECK(addr + sizeof(T) <= data_.size());
    std::memcpy(data_.data() + addr, &v, sizeof(T));
  }

  /// Raw span accessors for bulk loads.
  const uint8_t* data() const { return data_.data(); }
  uint8_t* data() { return data_.data(); }

 private:
  std::vector<uint8_t> data_;
};

}  // namespace fpgadp::mem

#endif  // FPGADP_MEMORY_MULTI_CHANNEL_H_
