#include "src/memory/channel.h"

#include <algorithm>
#include <span>

#include "src/common/check.h"
#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace fpgadp::mem {

MemoryChannel::MemoryChannel(std::string name, sim::Stream<MemRequest>* req,
                             sim::Stream<MemResponse>* resp,
                             const Config& config)
    : sim::Module(std::move(name)), req_(req), resp_(resp), config_(config) {
  FPGADP_CHECK(req_ != nullptr && resp_ != nullptr);
  FPGADP_CHECK(config_.bytes_per_sec > 0 && config_.clock_hz > 0);
  latency_cycles_ = NanosToCycles(config_.latency_ns, config_.clock_hz);
  bytes_per_cycle_ = config_.bytes_per_sec / config_.clock_hz;
  req_->BindConsumer(this);
  resp_->BindProducer(this);
  SetParallelSafe();
  SetEventSafe();
}

void MemoryChannel::AttributeSkip(sim::Cycle from, sim::Cycle to) {
  const uint64_t n = to - from;
  if (pending_.empty()) return;  // quiet channel: backfilled as idle
  // Closed form of the per-tick accounting: the bus streams until
  // bus_free_, the remainder of the gap is latency shadow, and every
  // cycle with requests in flight counts busy.
  const uint64_t bus =
      bus_free_ > from ? std::min<uint64_t>(n, bus_free_ - from) : 0;
  bus_busy_cycles_ += bus;
  latency_wait_cycles_ += n - bus;
  MarkBusyN(n);
}

void MemoryChannel::Tick(sim::Cycle cycle) {
  last_tick_ = cycle;
  // Attribute this cycle of channel activity: the bus is streaming a burst,
  // or in-flight requests are waiting out the fixed access latency.
  if (cycle < bus_free_) {
    ++bus_busy_cycles_;
  } else if (!pending_.empty()) {
    ++latency_wait_cycles_;
  }
  bool progressed = false;
  // Deliver completions whose time has come, burst-written per contiguous
  // free run of the response FIFO.
  while (!pending_.empty() && pending_.front().done <= cycle) {
    std::span<MemResponse> dst = resp_->WritableSpan();
    if (dst.empty()) break;  // response FIFO full
    size_t n = 0;
    while (n < dst.size() && !pending_.empty() &&
           pending_.front().done <= cycle) {
      dst[n++] = pending_.front().resp;
      pending_.pop_front();
    }
    resp_->CommitWrite(n);
    completed_ += n;
    progressed = progressed || n > 0;
  }
  // Accept new requests while the controller queue has room, burst-read
  // from the request FIFO (the per-request bus math is unchanged).
  while (pending_.size() < config_.max_outstanding) {
    std::span<const MemRequest> src = req_->ReadableSpan();
    if (src.empty()) break;  // no requests waiting
    const size_t n =
        std::min<size_t>(src.size(), config_.max_outstanding - pending_.size());
    for (size_t i = 0; i < n; ++i) {
      const MemRequest& r = src[i];
      const uint64_t eff_bytes =
          std::max<uint64_t>(r.bytes, config_.access_granularity);
      const auto transfer_cycles = static_cast<uint64_t>(
          (static_cast<double>(eff_bytes) + bytes_per_cycle_ - 1) /
          bytes_per_cycle_);
      // Row access latency overlaps with other transfers (the controller
      // pipelines), but the data bus itself is serialized.
      const sim::Cycle start = std::max<sim::Cycle>(cycle + 1, bus_free_);
      const sim::Cycle done = start + latency_cycles_ + transfer_cycles;
      bus_free_ = start + transfer_cycles;
      bytes_transferred_ += eff_bytes;
      pending_.push_back(
          {done, MemResponse{r.id, r.addr, r.bytes, r.is_write}});
    }
    req_->ConsumeRead(n);
    progressed = true;
  }
  // Completion order must stay monotone for the front-pop above; the
  // fixed-latency + serialized-bus model guarantees it, assert in debug.
  if (progressed) {
    MarkBusy();
  } else if (!pending_.empty() && pending_.front().done <= cycle) {
    MarkStall(sim::StallKind::kOutputBlocked);  // response FIFO is full
  } else if (!pending_.empty()) {
    MarkBusy();  // serving in-flight requests (bus or latency shadow)
  } else {
    MarkStall(sim::StallKind::kIdle);  // no requests queued or in flight
  }
}

void MemoryChannel::SampleTraceCounters(obs::TraceCounterSink& sink) {
  // Emit only on change so a 32-pseudo-channel HBM stack stays tractable.
  const auto queue = static_cast<double>(pending_.size());
  if (queue != last_queue_emitted_) {
    sink.Counter(name() + ".queue", queue);
    last_queue_emitted_ = queue;
  }
  const double bus_busy = bus_free_ > last_tick_ ? 1 : 0;
  if (bus_busy != last_bus_emitted_) {
    sink.Counter(name() + ".bus_busy", bus_busy);
    last_bus_emitted_ = bus_busy;
  }
}

void MemoryChannel::ExportCustomMetrics(obs::MetricsRegistry& registry) const {
  // Gauges (idempotent Set) because this hook runs once per Run() and the
  // underlying counters are cumulative.
  const std::string base = "mem." + name();
  registry.GetGauge(base + ".bus_busy_cycles")
      ->Set(static_cast<double>(bus_busy_cycles_));
  registry.GetGauge(base + ".latency_wait_cycles")
      ->Set(static_cast<double>(latency_wait_cycles_));
  registry.GetGauge(base + ".bytes_transferred")
      ->Set(static_cast<double>(bytes_transferred_));
  registry.GetGauge(base + ".completed")->Set(static_cast<double>(completed_));
}

}  // namespace fpgadp::mem
