#include "src/memory/channel.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/units.h"

namespace fpgadp::mem {

MemoryChannel::MemoryChannel(std::string name, sim::Stream<MemRequest>* req,
                             sim::Stream<MemResponse>* resp,
                             const Config& config)
    : sim::Module(std::move(name)), req_(req), resp_(resp), config_(config) {
  FPGADP_CHECK(req_ != nullptr && resp_ != nullptr);
  FPGADP_CHECK(config_.bytes_per_sec > 0 && config_.clock_hz > 0);
  latency_cycles_ = NanosToCycles(config_.latency_ns, config_.clock_hz);
  bytes_per_cycle_ = config_.bytes_per_sec / config_.clock_hz;
}

void MemoryChannel::Tick(sim::Cycle cycle) {
  bool progressed = false;
  // Deliver completions whose time has come.
  while (!pending_.empty() && pending_.front().done <= cycle &&
         resp_->CanWrite()) {
    resp_->Write(pending_.front().resp);
    pending_.pop_front();
    ++completed_;
    progressed = true;
  }
  // Accept new requests while the controller queue has room.
  while (req_->CanRead() && pending_.size() < config_.max_outstanding) {
    MemRequest r = req_->Read();
    const uint64_t eff_bytes =
        std::max<uint64_t>(r.bytes, config_.access_granularity);
    const auto transfer_cycles = static_cast<uint64_t>(
        (static_cast<double>(eff_bytes) + bytes_per_cycle_ - 1) /
        bytes_per_cycle_);
    // Row access latency overlaps with other transfers (the controller
    // pipelines), but the data bus itself is serialized.
    const sim::Cycle start = std::max<sim::Cycle>(cycle + 1, bus_free_);
    const sim::Cycle done = start + latency_cycles_ + transfer_cycles;
    bus_free_ = start + transfer_cycles;
    bytes_transferred_ += eff_bytes;
    pending_.push_back({done, MemResponse{r.id, r.addr, r.bytes, r.is_write}});
    progressed = true;
  }
  // Completion order must stay monotone for the front-pop above; the
  // fixed-latency + serialized-bus model guarantees it, assert in debug.
  if (progressed) MarkBusy();
}

}  // namespace fpgadp::mem
