#include "src/memory/multi_channel.h"

#include <cstring>

#include "src/common/check.h"

namespace fpgadp::mem {

MultiChannelMemory::MultiChannelMemory(std::string name, uint32_t num_channels,
                                       const MemoryChannel::Config& config,
                                       size_t stream_depth) {
  FPGADP_CHECK(num_channels > 0);
  for (uint32_t c = 0; c < num_channels; ++c) {
    const std::string suffix = name + ".ch" + std::to_string(c);
    req_.push_back(std::make_unique<sim::Stream<MemRequest>>(
        suffix + ".req", stream_depth));
    resp_.push_back(std::make_unique<sim::Stream<MemResponse>>(
        suffix + ".resp", stream_depth));
    channels_.push_back(std::make_unique<MemoryChannel>(
        suffix, req_.back().get(), resp_.back().get(), config));
  }
}

MultiChannelMemory MultiChannelMemory::MakeHbm(const device::DeviceSpec& spec,
                                               double clock_hz) {
  FPGADP_CHECK(spec.memory.hbm_channels > 0);
  MemoryChannel::Config cfg;
  cfg.latency_ns = spec.memory.hbm_latency_ns;
  cfg.bytes_per_sec = spec.memory.hbm_bytes_per_sec;
  cfg.clock_hz = clock_hz;
  cfg.access_granularity = 32;  // HBM pseudo-channel granule
  return MultiChannelMemory("hbm", spec.memory.hbm_channels, cfg);
}

MultiChannelMemory MultiChannelMemory::MakeDdr(const device::DeviceSpec& spec,
                                               double clock_hz) {
  FPGADP_CHECK(spec.memory.ddr_channels > 0);
  MemoryChannel::Config cfg;
  cfg.latency_ns = spec.memory.ddr_latency_ns;
  cfg.bytes_per_sec = spec.memory.ddr_bytes_per_sec;
  cfg.clock_hz = clock_hz;
  cfg.access_granularity = 64;
  return MultiChannelMemory("ddr", spec.memory.ddr_channels, cfg);
}

void MultiChannelMemory::RegisterWith(sim::Engine& engine) {
  for (auto& ch : channels_) engine.AddModule(ch.get());
  for (auto& s : req_) engine.AddStream(s.get());
  for (auto& s : resp_) engine.AddStream(s.get());
}

uint64_t MultiChannelMemory::TotalBytesTransferred() const {
  uint64_t total = 0;
  for (const auto& ch : channels_) total += ch->bytes_transferred();
  return total;
}

uint64_t MultiChannelMemory::TotalCompleted() const {
  uint64_t total = 0;
  for (const auto& ch : channels_) total += ch->completed();
  return total;
}

}  // namespace fpgadp::mem
