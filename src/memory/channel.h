#ifndef FPGADP_MEMORY_CHANNEL_H_
#define FPGADP_MEMORY_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/sim/module.h"
#include "src/sim/stream.h"
#include "src/memory/mem_types.h"

namespace fpgadp::mem {

/// Timing model of one memory channel (a DDR4 channel or one HBM2
/// pseudo-channel): fixed access latency plus a serialized data bus with a
/// finite bytes/cycle budget. Requests smaller than the access granularity
/// still occupy a full granule on the bus (the HBM 32-byte-granule effect
/// that MicroRec exploits).
class MemoryChannel : public sim::Module {
 public:
  struct Config {
    double latency_ns = 90;
    double bytes_per_sec = 19.2e9;
    double clock_hz = 200e6;          ///< Kernel clock the channel is viewed at.
    uint32_t access_granularity = 64; ///< Minimum burst on the bus, bytes.
    uint32_t max_outstanding = 64;    ///< Controller queue depth.
  };

  MemoryChannel(std::string name, sim::Stream<MemRequest>* req,
                sim::Stream<MemResponse>* resp, const Config& config);

  void Tick(sim::Cycle cycle) override;
  bool Idle() const override { return pending_.empty(); }

  /// With no requests queued the channel is reactive; otherwise the oldest
  /// in-flight access completes at its precomputed `done` cycle.
  sim::Cycle NextEventCycle(sim::Cycle now) const override {
    if (pending_.empty()) return sim::kNoEventCycle;
    return pending_.front().done > now ? pending_.front().done : now;
  }

  void SampleTraceCounters(obs::TraceCounterSink& sink) override;
  void ExportCustomMetrics(obs::MetricsRegistry& registry) const override;

  /// Total bytes moved over the bus (after granularity rounding).
  uint64_t bytes_transferred() const { return bytes_transferred_; }
  /// Requests completed.
  uint64_t completed() const { return completed_; }

  /// Cycles the data bus spent streaming a burst — the bandwidth-bound share
  /// of channel activity.
  uint64_t bus_busy_cycles() const { return bus_busy_cycles_; }
  /// Cycles with requests in flight but the bus quiet — time hidden inside
  /// the fixed access latency (the latency-bound share).
  uint64_t latency_wait_cycles() const { return latency_wait_cycles_; }

  const Config& config() const { return config_; }

 protected:
  void AttributeSkip(sim::Cycle from, sim::Cycle to) override;

 private:
  struct Pending {
    sim::Cycle done;
    MemResponse resp;
  };

  sim::Stream<MemRequest>* req_;
  sim::Stream<MemResponse>* resp_;
  Config config_;
  uint64_t latency_cycles_;
  double bytes_per_cycle_;
  sim::Cycle bus_free_ = 0;
  std::deque<Pending> pending_;  // completion times are monotone
  uint64_t bytes_transferred_ = 0;
  uint64_t completed_ = 0;
  uint64_t bus_busy_cycles_ = 0;
  uint64_t latency_wait_cycles_ = 0;
  sim::Cycle last_tick_ = 0;
  // Trace counter dedup: last emitted values (-1 = never emitted).
  double last_queue_emitted_ = -1;
  double last_bus_emitted_ = -1;
};

}  // namespace fpgadp::mem

#endif  // FPGADP_MEMORY_CHANNEL_H_
