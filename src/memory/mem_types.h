#ifndef FPGADP_MEMORY_MEM_TYPES_H_
#define FPGADP_MEMORY_MEM_TYPES_H_

#include <cstdint>

namespace fpgadp::mem {

/// A memory transaction presented to a channel. Channels model *timing*
/// only; data contents live in a BackingStore and are accessed functionally
/// by the requester (the standard split in architecture simulators).
struct MemRequest {
  uint64_t id = 0;      ///< Requester-chosen tag, echoed in the response.
  uint64_t addr = 0;    ///< Byte address within the channel/stack.
  uint32_t bytes = 0;   ///< Transfer size.
  bool is_write = false;
};

/// Completion of a MemRequest, delivered after modeled latency + transfer.
struct MemResponse {
  uint64_t id = 0;
  uint64_t addr = 0;
  uint32_t bytes = 0;
  bool is_write = false;
};

}  // namespace fpgadp::mem

#endif  // FPGADP_MEMORY_MEM_TYPES_H_
