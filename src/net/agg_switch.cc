#include "src/net/agg_switch.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace fpgadp::net {

AggregatingSwitch::AggregatingSwitch(const Config& config, MergeSizer sizer)
    : config_(config), sizer_(std::move(sizer)) {
  FPGADP_CHECK(sizer_ != nullptr);
}

void AggregatingSwitch::Arm(uint64_t request_id, uint32_t port,
                            uint64_t member_mask) {
  FPGADP_CHECK(member_mask != 0);
  const auto key = std::make_pair(request_id, port);
  FPGADP_CHECK(groups_.find(key) == groups_.end());
  Group g;
  g.member_mask = member_mask;
  groups_.emplace(key, g);
}

void AggregatingSwitch::Disarm(uint64_t request_id) {
  for (auto it = groups_.lower_bound({request_id, 0});
       it != groups_.end() && it->first.first == request_id;) {
    held_ -= it->second.absorbed;
    it = groups_.erase(it);
  }
}

void AggregatingSwitch::KillPort(uint32_t port) {
  dead_ports_.insert(port);
  for (auto it = groups_.begin(); it != groups_.end();) {
    if (it->first.second == port) {
      held_ -= it->second.absorbed;
      dropped_dead_port_ += it->second.absorbed;
      it->second.absorbed = 0;
      // The group stays armed (Wants keeps matching) so straggler
      // responses are consumed and dropped, not misdelivered to the dead
      // port; Disarm cleans it up when the gather finalizes.
    }
    ++it;
  }
}

bool AggregatingSwitch::Wants(const Packet& p) const {
  if (p.kind != OpKind::kOffloadResp) return false;
  return groups_.find({p.user, p.dst}) != groups_.end();
}

std::optional<AggregatingSwitch::Released> AggregatingSwitch::Offer(
    sim::Cycle at, const Packet& p) {
  const auto it = groups_.find({p.user, p.dst});
  FPGADP_CHECK(it != groups_.end());
  if (dead_ports_.count(p.dst) > 0) {
    ++dropped_dead_port_;
    return std::nullopt;
  }
  Group& g = it->second;
  const uint64_t contrib = (p.addr | p.user2) & g.member_mask;
  if (contrib == 0 ||
      (contrib & (g.done_mask | g.rejected_mask)) == contrib) {
    ++duplicates_ignored_;  // lossy retransmit already folded in
    return std::nullopt;
  }
  g.done_mask |= p.addr & g.member_mask;
  g.rejected_mask |= p.user2 & g.member_mask;
  g.concat_bytes += p.bytes;
  ++g.absorbed;
  ++held_;
  ++combines_;
  // The combiner is a serialized pipeline: each response occupies it for
  // combine_cycles_per_resp once the response is inside the switch.
  g.combine_free =
      std::max(g.combine_free, at) + config_.combine_cycles_per_resp;
  if ((g.done_mask | g.rejected_mask) != g.member_mask) return std::nullopt;
  Released rel;
  rel.ready_at = g.combine_free;
  rel.packet.src = p.src;  // the last contributor; upper layers ignore it
  rel.packet.dst = p.dst;
  rel.packet.kind = OpKind::kOffloadResp;
  rel.packet.user = it->first.first;
  rel.packet.addr = g.done_mask;
  rel.packet.user2 = g.rejected_mask;
  rel.packet.bytes = sizer_(it->first.first, g.done_mask, g.concat_bytes);
  // seq stays 0: the merged packet is switch-originated and unsequenced.
  FPGADP_CHECK(rel.packet.bytes <= g.concat_bytes);
  bytes_elided_ += g.concat_bytes - rel.packet.bytes;
  held_ -= g.absorbed;
  ++releases_;
  groups_.erase(it);
  return rel;
}

}  // namespace fpgadp::net
