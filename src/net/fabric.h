#ifndef FPGADP_NET_FABRIC_H_
#define FPGADP_NET_FABRIC_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/module.h"
#include "src/sim/stream.h"

namespace fpgadp::net {

/// RDMA-style operation kinds carried on the wire.
enum class OpKind : uint8_t {
  kSend = 0,      ///< Two-sided send (consumed by a matching receive).
  kReadReq = 1,   ///< One-sided read request (header-only).
  kReadResp = 2,  ///< Read response carrying the requested payload.
  kWrite = 3,     ///< One-sided write carrying payload.
  kWriteAck = 4,  ///< Hardware ACK completing a write.
  kOffloadReq = 5,  ///< Farview: read-with-offloaded-operator request.
  kOffloadResp = 6, ///< Farview: filtered/aggregated result payload.
  kTcpSyn = 7,      ///< TCP session layer: connection request.
  kTcpSynAck = 8,   ///< TCP session layer: connection accept.
  kTcpData = 9,     ///< TCP session layer: data segment.
  kTcpAck = 10,     ///< TCP session layer: cumulative ACK (header-only).
};

/// A message on the fabric. `bytes` is payload size; the fabric adds the
/// configured header overhead when computing serialization time. Payload
/// contents travel functionally (the endpoint that created the packet and
/// the one consuming it share process memory), the fabric models time.
struct Packet {
  uint32_t src = 0;
  uint32_t dst = 0;
  OpKind kind = OpKind::kSend;
  uint64_t tag = 0;
  uint64_t addr = 0;   ///< Remote address for READ/WRITE.
  uint64_t bytes = 0;  ///< Payload bytes.
  uint64_t user = 0;   ///< Opaque field for upper layers (e.g. descriptor id).
  uint64_t user2 = 0;  ///< Second opaque field (e.g. a KV value).
};

/// A single-switch 100 Gbps fabric connecting `num_nodes` endpoints — the
/// shape of the HACC cluster the tutorial describes. Models, per packet:
/// sender NIC serialization, propagation + switching latency, and receiver
/// NIC serialization; each NIC port is a serialized resource, so incasts
/// queue at the receiver exactly as they would on real hardware.
class Fabric : public sim::Module {
 public:
  struct Config {
    double bits_per_sec = 100e9;   ///< Port line rate.
    double clock_hz = 200e6;       ///< Kernel clock domain of the simulation.
    double wire_latency_ns = 1000; ///< One-way wire + switch latency.
    uint32_t header_bytes = 64;    ///< Per-packet framing overhead.
  };

  Fabric(std::string name, uint32_t num_nodes, const Config& config);

  /// Stream a node writes its outgoing packets to.
  sim::Stream<Packet>& egress(uint32_t node) { return *egress_[node]; }
  /// Stream a node reads its incoming packets from.
  sim::Stream<Packet>& ingress(uint32_t node) { return *ingress_[node]; }

  /// Registers the fabric module and all port streams with `engine`.
  void RegisterWith(sim::Engine& engine);

  void Tick(sim::Cycle cycle) override;
  bool Idle() const override { return in_flight_ == 0; }

  void SampleTraceCounters(obs::TraceCounterSink& sink) override;
  void ExportCustomMetrics(obs::MetricsRegistry& registry) const override;

  uint32_t num_nodes() const { return static_cast<uint32_t>(egress_.size()); }
  uint64_t packets_delivered() const { return packets_delivered_; }
  uint64_t payload_bytes_delivered() const { return payload_bytes_delivered_; }

  /// Cycles port `node` spent serializing onto / off the wire — the
  /// per-port share of line-rate occupancy.
  uint64_t tx_busy_cycles(uint32_t node) const { return tx_busy_cycles_[node]; }
  uint64_t rx_busy_cycles(uint32_t node) const { return rx_busy_cycles_[node]; }
  /// Packets currently queued for receive at `node` — the incast depth.
  size_t incast_depth(uint32_t node) const { return arriving_[node].size(); }

  const Config& config() const { return config_; }

 private:
  struct InFlight {
    sim::Cycle deliver_at;
    Packet packet;
    bool operator>(const InFlight& o) const { return deliver_at > o.deliver_at; }
  };

  uint64_t SerializationCycles(uint64_t payload_bytes) const;

  Config config_;
  double bytes_per_cycle_;
  uint64_t wire_latency_cycles_;
  std::vector<std::unique_ptr<sim::Stream<Packet>>> egress_;
  std::vector<std::unique_ptr<sim::Stream<Packet>>> ingress_;
  std::vector<sim::Cycle> tx_free_;
  std::vector<sim::Cycle> rx_free_;
  std::vector<uint64_t> tx_busy_cycles_;
  std::vector<uint64_t> rx_busy_cycles_;
  // Trace counter dedup: last emitted values (-1 = never emitted).
  std::vector<double> last_incast_emitted_;
  double last_inflight_emitted_ = -1;
  std::vector<std::priority_queue<InFlight, std::vector<InFlight>,
                                  std::greater<InFlight>>>
      arriving_;  // per destination
  uint64_t in_flight_ = 0;
  uint64_t packets_delivered_ = 0;
  uint64_t payload_bytes_delivered_ = 0;
};

}  // namespace fpgadp::net

#endif  // FPGADP_NET_FABRIC_H_
