#ifndef FPGADP_NET_FABRIC_H_
#define FPGADP_NET_FABRIC_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/sim/engine.h"
#include "src/sim/module.h"
#include "src/sim/stream.h"

namespace fpgadp::net {

class AggregatingSwitch;

/// RDMA-style operation kinds carried on the wire.
enum class OpKind : uint8_t {
  kSend = 0,      ///< Two-sided send (consumed by a matching receive).
  kReadReq = 1,   ///< One-sided read request (header-only).
  kReadResp = 2,  ///< Read response carrying the requested payload.
  kWrite = 3,     ///< One-sided write carrying payload.
  kWriteAck = 4,  ///< Hardware ACK completing a write.
  kOffloadReq = 5,  ///< Farview: read-with-offloaded-operator request.
  kOffloadResp = 6, ///< Farview: filtered/aggregated result payload.
  kTcpSyn = 7,      ///< TCP session layer: connection request.
  kTcpSynAck = 8,   ///< TCP session layer: connection accept.
  kTcpData = 9,     ///< TCP session layer: data segment.
  kTcpAck = 10,     ///< TCP session layer: cumulative ACK (header-only).
  kRdmaAck = 11,    ///< Link-level ACK for a sequenced packet (lossy mode).
  kRdmaNack = 12,   ///< Link-level NACK: payload CRC failed, resend now.
  kHealthBeacon = 13,  ///< Shard liveness beacon (replica -> coordinator port).
  kMigrateStart = 14,  ///< Coordinator -> source shard: begin streaming a range.
  kMigrateChunk = 15,  ///< Source -> target shard: one chunk of migrated state.
  kMigrateDone = 16,   ///< Target -> coordinator: all chunk bytes received.
};

/// A message on the fabric. `bytes` is payload size; the fabric adds the
/// configured header overhead when computing serialization time. Payload
/// contents travel functionally (the endpoint that created the packet and
/// the one consuming it share process memory), the fabric models time.
struct Packet {
  uint32_t src = 0;
  uint32_t dst = 0;
  OpKind kind = OpKind::kSend;
  uint64_t tag = 0;
  uint64_t addr = 0;   ///< Remote address for READ/WRITE.
  uint64_t bytes = 0;  ///< Payload bytes.
  uint64_t user = 0;   ///< Opaque field for upper layers (e.g. descriptor id).
  uint64_t user2 = 0;  ///< Second opaque field (e.g. a KV value).
  uint64_t seq = 0;    ///< Link-level sequence number (0 = unsequenced). For
                       ///< kRdmaAck/kRdmaNack/kTcpAck it names the acked seq /
                       ///< cumulative byte offset instead.
  bool corrupt = false;  ///< Payload failed its CRC (set by the FaultInjector);
                         ///< receivers must discard or NACK, never consume.
};

/// The kinds of link fault the injector can produce.
enum class FaultKind : uint8_t {
  kDrop = 0,       ///< Packet vanishes in the switch after tx serialization.
  kCorrupt = 1,    ///< Packet arrives with `corrupt` set (payload CRC fail).
  kDuplicate = 2,  ///< Switch emits the packet twice.
  kDelay = 3,      ///< Delivery pays an extra latency spike.
  kLinkFlap = 4,   ///< The (src,dst) link goes down for a window of cycles.
};
inline constexpr int kNumFaultKinds = 5;

/// Returns a stable lowercase name for `kind` ("drop", "corrupt", ...).
const char* FaultKindName(FaultKind kind);

/// A seeded, deterministic per-link fault model the Fabric consults once per
/// packet pickup. Two sources of faults compose:
///
///  * probabilistic: per-packet Bernoulli draws for drop / corrupt /
///    duplicate / delay-spike, from one seeded xoshiro stream — the same
///    seed and offered traffic always yield the same fault pattern, so every
///    recovery path is exactly reproducible;
///  * scheduled: explicit `(cycle, src, dst, kind)` entries, each firing on
///    the first matching packet at or after `cycle` (one-shot), which lets
///    tests script "drop exactly the 3rd segment" scenarios.
///
/// A kLinkFlap fault takes the (src,dst) link down for `flap_down_cycles`;
/// every packet offered to a down link is dropped. Attach to a Fabric with
/// Fabric::set_fault_injector(); endpoints detect the attachment
/// (Fabric::lossy()) and switch on their reliability protocols.
class FaultInjector {
 public:
  static constexpr uint32_t kAnyNode = 0xffffffffu;

  struct Config {
    uint64_t seed = 1;
    double drop_rate = 0;       ///< P(drop) per packet.
    double corrupt_rate = 0;    ///< P(payload corruption) per packet.
    double duplicate_rate = 0;  ///< P(switch duplicates) per packet.
    double delay_rate = 0;      ///< P(delay spike) per packet.
    uint64_t delay_spike_cycles = 2000;  ///< Extra latency of one spike.
    uint64_t flap_down_cycles = 4000;    ///< Outage length of one link flap.
  };

  /// One scheduled fault: fires on the first packet matching (src, dst) —
  /// kAnyNode matches everything — picked up at or after `cycle`. When
  /// `op_filter` is set, only packets of that OpKind match, so a fault can
  /// target e.g. an offload response without hitting the RDMA ACKs sharing
  /// the link.
  struct Entry {
    sim::Cycle cycle = 0;
    uint32_t src = kAnyNode;
    uint32_t dst = kAnyNode;
    FaultKind kind = FaultKind::kDrop;
    int op_filter = -1;  ///< -1 = any; else an OpKind value.
  };

  /// What the fabric should do with one packet.
  struct Decision {
    bool drop = false;
    bool corrupt = false;
    bool duplicate = false;
    uint64_t extra_delay_cycles = 0;
  };

  explicit FaultInjector(const Config& config) : config_(config),
                                                 rng_(config.seed) {}

  /// Queues a scheduled fault.
  void Schedule(const Entry& entry) {
    schedule_.push_back(entry);
    fired_.push_back(false);
  }

  /// Consulted by the Fabric once per packet pickup; draws faults and
  /// advances the deterministic stream. Not idempotent — only the fabric
  /// should call this.
  Decision OnPacket(sim::Cycle cycle, const Packet& packet);

  /// True while the (src,dst) link is inside a flap outage.
  bool LinkDown(sim::Cycle cycle, uint32_t src, uint32_t dst) const;

  /// Earliest cycle strictly after `now` at which an unfired scheduled
  /// entry arms, or sim::kNoEventCycle if none. Entries latch on packet
  /// pickup, so this only bounds fast-forwarding (the fabric must be awake
  /// at the arming cycle); it never fires anything by itself.
  sim::Cycle NextScheduledCycle(sim::Cycle now) const;

  uint64_t fault_count(FaultKind kind) const {
    return counts_[static_cast<size_t>(kind)];
  }
  uint64_t total_faults() const;
  const Config& config() const { return config_; }

 private:
  struct Flap {
    uint32_t src, dst;
    sim::Cycle until;
  };

  void Count(FaultKind kind) { ++counts_[static_cast<size_t>(kind)]; }

  Config config_;
  Rng rng_;
  std::vector<Entry> schedule_;
  std::vector<bool> fired_;  // parallel to schedule_
  std::vector<Flap> flaps_;
  uint64_t counts_[kNumFaultKinds] = {};
};

/// A single-switch 100 Gbps fabric connecting `num_nodes` endpoints — the
/// shape of the HACC cluster the tutorial describes. Models, per packet:
/// sender NIC serialization, propagation + switching latency, and receiver
/// NIC serialization; each NIC port is a serialized resource, so incasts
/// queue at the receiver exactly as they would on real hardware.
///
/// By default the fabric is loss-free and order-preserving per (src,dst)
/// pair. Attaching a FaultInjector makes it lossy: packets may be dropped,
/// corrupted, duplicated, delayed, or lost to link flaps, each fault counted
/// in the metrics registry and emitted as a trace instant. Endpoints check
/// lossy() and enable their reliability protocols (see rdma.h / tcp.h).
class Fabric : public sim::Module {
 public:
  struct Config {
    double bits_per_sec = 100e9;   ///< Port line rate.
    double clock_hz = 200e6;       ///< Kernel clock domain of the simulation.
    double wire_latency_ns = 1000; ///< One-way wire + switch latency.
    uint32_t header_bytes = 64;    ///< Per-packet framing overhead.
  };

  Fabric(std::string name, uint32_t num_nodes, const Config& config);

  /// Stream a node writes its outgoing packets to.
  sim::Stream<Packet>& egress(uint32_t node) { return *egress_[node]; }
  /// Stream a node reads its incoming packets from.
  sim::Stream<Packet>& ingress(uint32_t node) { return *ingress_[node]; }

  /// Registers the fabric module and all port streams with `engine`.
  void RegisterWith(sim::Engine& engine);

  /// Attaches (or detaches, with nullptr) a fault injector. Must be done
  /// before traffic is offered: endpoints key their reliability protocols
  /// off lossy(), and switching mid-flight would strand unsequenced
  /// packets. When no injector is attached the fabric is loss-free and
  /// byte-identical to the pre-fault-model behaviour.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }
  /// True iff a fault injector is attached, i.e. packets may be dropped,
  /// corrupted, duplicated, delayed, or lost to link flaps.
  bool lossy() const { return injector_ != nullptr; }

  /// Attaches (or detaches, with nullptr) an in-network aggregation engine
  /// (see agg_switch.h). Armed responses are consumed inside the switch —
  /// they never occupy the destination's receive port — and the combined
  /// packet is released through it instead. Attach before traffic is
  /// offered, for the same reason as set_fault_injector.
  void set_agg_switch(AggregatingSwitch* agg) { agg_switch_ = agg; }
  AggregatingSwitch* agg_switch() const { return agg_switch_; }

  void Tick(sim::Cycle cycle) override;
  bool Idle() const override;

  /// With the ports quiet (all streams empty is the caller's precondition)
  /// the fabric next acts when the earliest queued arrival finishes its
  /// receive serialization; a scheduled fault entry arming is also an
  /// event, so scripted "drop at cycle N" scenarios stay exact.
  sim::Cycle NextEventCycle(sim::Cycle now) const override;

  void SampleTraceCounters(obs::TraceCounterSink& sink) override;
  void ExportCustomMetrics(obs::MetricsRegistry& registry) const override;

  uint32_t num_nodes() const { return static_cast<uint32_t>(egress_.size()); }
  uint64_t packets_delivered() const { return packets_delivered_; }
  uint64_t payload_bytes_delivered() const { return payload_bytes_delivered_; }
  /// Packets the injector removed from the wire (drops + flap casualties).
  uint64_t packets_dropped() const { return packets_dropped_; }

  /// Cycles port `node` spent serializing onto / off the wire — the
  /// per-port share of line-rate occupancy.
  uint64_t tx_busy_cycles(uint32_t node) const { return tx_busy_cycles_[node]; }
  uint64_t rx_busy_cycles(uint32_t node) const { return rx_busy_cycles_[node]; }
  /// Packets currently queued for receive at `node` — the incast depth.
  size_t incast_depth(uint32_t node) const { return arriving_[node].size(); }

  /// One-way wire + switch latency in cycles. Periodic background traffic
  /// (health beacons) must be spaced further apart than this, or the wire
  /// never drains and the engine cannot quiesce.
  uint64_t wire_latency_cycles() const { return wire_latency_cycles_; }

  const Config& config() const { return config_; }

  /// Cycles one packet of `payload_bytes` occupies a port (payload + header
  /// at line rate). Public so endpoints can size retransmission timeouts.
  uint64_t SerializationCycles(uint64_t payload_bytes) const;

 protected:
  void AttributeSkip(sim::Cycle from, sim::Cycle to) override;

 private:
  struct InFlight {
    sim::Cycle deliver_at;
    Packet packet;
    bool operator>(const InFlight& o) const { return deliver_at > o.deliver_at; }
  };

  /// Emits a fault marker on this module's trace track, if tracing.
  void TraceFault(sim::Cycle cycle, FaultKind kind, const Packet& packet);

  /// Injects a switch-originated link-level control packet (ack/nack on
  /// behalf of the aggregation engine) on the prioritized control lane.
  void InjectControl(sim::Cycle cycle, OpKind kind, uint32_t src,
                     uint32_t dst, uint64_t seq);

  Config config_;
  FaultInjector* injector_ = nullptr;
  AggregatingSwitch* agg_switch_ = nullptr;
  double bytes_per_cycle_;
  uint64_t wire_latency_cycles_;
  std::vector<std::unique_ptr<sim::Stream<Packet>>> egress_;
  std::vector<std::unique_ptr<sim::Stream<Packet>>> ingress_;
  std::vector<sim::Cycle> tx_free_;
  std::vector<sim::Cycle> rx_free_;
  std::vector<uint64_t> tx_busy_cycles_;
  std::vector<uint64_t> rx_busy_cycles_;
  // Trace counter dedup: last emitted values (-1 = never emitted).
  std::vector<double> last_incast_emitted_;
  double last_inflight_emitted_ = -1;
  std::vector<std::priority_queue<InFlight, std::vector<InFlight>,
                                  std::greater<InFlight>>>
      arriving_;  // per destination
  uint64_t in_flight_ = 0;
  uint64_t packets_delivered_ = 0;
  uint64_t payload_bytes_delivered_ = 0;
  uint64_t packets_dropped_ = 0;
};

}  // namespace fpgadp::net

#endif  // FPGADP_NET_FABRIC_H_
