#include "src/net/tcp.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/obs/metrics.h"

namespace fpgadp::net {

TcpStack::TcpStack(std::string name, uint32_t node_id, Fabric* fabric,
                   const Config& config, const Reliability& reliability)
    : sim::Module(std::move(name)), node_id_(node_id), fabric_(fabric),
      config_(config), reliability_(reliability) {
  FPGADP_CHECK(fabric_ != nullptr);
  FPGADP_CHECK(node_id_ < fabric_->num_nodes());
  FPGADP_CHECK(config_.mss_bytes > 0 && config_.window_bytes > 0);
  FPGADP_CHECK(reliability_.backoff >= 1.0);
  // The Tick touches exactly this node's port pair; declaring the
  // endpoints certifies the module for parallel ticking.
  fabric_->egress(node_id_).BindProducer(this);
  fabric_->ingress(node_id_).BindConsumer(this);
  SetParallelSafe();
}

sim::Cycle TcpStack::NextEventCycle(sim::Cycle now) const {
  if (!pending_acks_.empty() || !retransmit_q_.empty()) return now;
  const bool rel = fabric_->lossy();
  sim::Cycle earliest = sim::kNoEventCycle;
  for (const auto& [peer, c] : conns_) {
    if (c.failed) continue;
    if (c.syn_sent && !c.established) {
      // An unemitted SYN leaves next tick; an emitted one waits for the
      // SYN-ACK, with a retransmission deadline only in lossy mode.
      if (syn_emitted_.count(peer) == 0) return now;
      if (rel && c.syn_next_retry < earliest) earliest = c.syn_next_retry;
      continue;
    }
    if (c.established && c.tx_pending > 0 &&
        c.in_flight + config_.mss_bytes <= config_.window_bytes) {
      return now;  // a data segment can leave next tick
    }
    for (const auto& [off, seg] : c.unacked) {
      if (seg.next_retry < earliest) earliest = seg.next_retry;
    }
  }
  return earliest > now ? earliest : now;
}

TcpStack::TcpStack(std::string name, uint32_t node_id, Fabric* fabric,
                   const Config& config)
    : TcpStack(std::move(name), node_id, fabric, config, Reliability()) {}

TcpStack::TcpStack(std::string name, uint32_t node_id, Fabric* fabric)
    : TcpStack(std::move(name), node_id, fabric, Config()) {}

void TcpStack::Connect(uint32_t peer) {
  Connection& c = Conn(peer);
  if (c.established || c.syn_sent || c.failed) return;
  c.syn_sent = true;  // SYN goes out on the next Tick
}

bool TcpStack::Connected(uint32_t peer) const {
  auto it = conns_.find(peer);
  return it != conns_.end() && it->second.established;
}

void TcpStack::Send(uint32_t peer, uint64_t bytes) {
  Connect(peer);
  Conn(peer).tx_pending += bytes;
}

uint64_t TcpStack::Readable(uint32_t peer) const {
  auto it = conns_.find(peer);
  return it == conns_.end() ? 0 : it->second.rx_available;
}

uint64_t TcpStack::Read(uint32_t peer, uint64_t max_bytes) {
  Connection& c = Conn(peer);
  const uint64_t take = std::min(max_bytes, c.rx_available);
  c.rx_available -= take;
  return take;
}

uint64_t TcpStack::SegmentRto(uint64_t bytes) const {
  return reliability_.rto_cycles + 2 * fabric_->SerializationCycles(bytes);
}

void TcpStack::FailConnection(uint32_t peer, Connection& c, const char* what) {
  if (status_.ok()) {
    status_ = Status::Unavailable(name() + ": connection to " +
                                  std::to_string(peer) + " abandoned (" +
                                  what + " exceeded " +
                                  std::to_string(reliability_.max_retries) +
                                  " retries)");
  }
  c.failed = true;
  c.syn_sent = false;
  c.tx_pending = 0;
  c.in_flight = 0;
  c.unacked.clear();
  c.dup_acks = 0;
}

void TcpStack::SendAck(uint32_t peer, uint64_t cumulative) {
  Packet ack;
  ack.src = node_id_;
  ack.dst = peer;
  ack.kind = OpKind::kTcpAck;
  ack.seq = cumulative;  // next expected byte offset
  auto& eg = fabric_->egress(node_id_);
  if (eg.CanWrite()) {
    eg.Write(ack);
  } else {
    pending_acks_.push_back(ack);
  }
}

void TcpStack::HandleData(sim::Cycle, const Packet& p, Connection& c) {
  if (p.corrupt) {
    // Checksum failure: discard; the duplicate cumulative ACK below tells
    // the sender where the stream actually stands.
    ++corrupt_discarded_;
    SendAck(p.src, c.rx_next);
    return;
  }
  c.established = true;  // data implies the peer saw our SYN-ACK
  if (p.seq + p.bytes <= c.rx_next) {
    // Entirely old data (a retransmit that crossed our ACK): re-ACK.
    SendAck(p.src, c.rx_next);
    return;
  }
  if (p.seq == c.rx_next) {
    c.rx_next += p.bytes;
    c.rx_available += p.bytes;
    // Drain out-of-order segments that are now contiguous (or stale).
    auto it = c.ooo.begin();
    while (it != c.ooo.end() && it->first <= c.rx_next) {
      if (it->first == c.rx_next) {
        c.rx_next += it->second;
        c.rx_available += it->second;
      }
      it = c.ooo.erase(it);
    }
  } else {
    // A gap precedes this segment: buffer it for later.
    if (c.ooo.emplace(p.seq, p.bytes).second) ++ooo_buffered_;
  }
  SendAck(p.src, c.rx_next);
}

void TcpStack::HandleAck(sim::Cycle cycle, const Packet& p, Connection& c) {
  if (p.corrupt) return;  // a later cumulative ACK supersedes it anyway
  const uint64_t ackno = p.seq;
  if (ackno > c.snd_una) {
    uint64_t newly = 0;
    auto it = c.unacked.begin();
    while (it != c.unacked.end() &&
           it->first + it->second.bytes <= ackno) {
      newly += it->second.bytes;
      it = c.unacked.erase(it);
    }
    c.snd_una = ackno;
    FPGADP_CHECK(c.in_flight >= newly);
    c.in_flight -= newly;
    bytes_acked_ += newly;
    c.dup_acks = 0;
    // Progress restarts the connection's timers (TCP's RTO-restart rule):
    // segments behind the acked one are queued, not lost.
    for (auto& [off, s] : c.unacked) s.next_retry = cycle + s.rto;
    return;
  }
  if (ackno == c.snd_una && !c.unacked.empty() && ++c.dup_acks == 3) {
    // Fast retransmit — exactly once per hole (on the 3rd duplicate, as
    // Reno does): a long flight behind one lost segment produces dozens of
    // duplicate ACKs, and re-firing on every 3rd would burn through the
    // retry cap on a single loss. Further recovery is the RTO's job.
    auto it = c.unacked.begin();
    SentSegment& s = it->second;
    if (s.retries >= reliability_.max_retries) {
      FailConnection(p.src, c, "fast retransmit");
      return;
    }
    ++s.retries;
    ++retransmits_;
    ++fast_retransmits_;
    s.next_retry = cycle + s.rto;
    Packet data;
    data.src = node_id_;
    data.dst = p.src;
    data.kind = OpKind::kTcpData;
    data.seq = it->first;
    data.bytes = s.bytes;
    retransmit_q_.push_back(data);
  }
}

void TcpStack::CheckRetransmits(sim::Cycle cycle, bool* progressed) {
  for (auto& [peer, c] : conns_) {
    if (c.failed) continue;
    // SYN timer.
    if (c.syn_sent && !c.established && syn_emitted_.count(peer) > 0 &&
        cycle >= c.syn_next_retry) {
      if (c.syn_retries >= reliability_.max_retries) {
        FailConnection(peer, c, "SYN");
        *progressed = true;
        continue;
      }
      ++c.syn_retries;
      ++retransmits_;
      c.syn_rto = static_cast<uint64_t>(double(c.syn_rto) *
                                        reliability_.backoff);
      c.syn_next_retry = cycle + c.syn_rto;
      Packet syn;
      syn.src = node_id_;
      syn.dst = peer;
      syn.kind = OpKind::kTcpSyn;
      retransmit_q_.push_back(syn);
      *progressed = true;
    }
    // Segment timers.
    for (auto it = c.unacked.begin(); it != c.unacked.end();) {
      SentSegment& s = it->second;
      if (cycle < s.next_retry) {
        ++it;
        continue;
      }
      if (s.retries >= reliability_.max_retries) {
        FailConnection(peer, c, "retransmission");
        *progressed = true;
        break;  // FailConnection cleared c.unacked; iterator is dead
      }
      ++s.retries;
      ++retransmits_;
      s.rto = static_cast<uint64_t>(double(s.rto) * reliability_.backoff);
      s.next_retry = cycle + s.rto;
      Packet data;
      data.src = node_id_;
      data.dst = peer;
      data.kind = OpKind::kTcpData;
      data.seq = it->first;
      data.bytes = s.bytes;
      retransmit_q_.push_back(data);
      *progressed = true;
      ++it;
    }
  }
}

void TcpStack::Tick(sim::Cycle cycle) {
  bool progressed = false;
  auto& eg = fabric_->egress(node_id_);
  auto& ig = fabric_->ingress(node_id_);
  const bool rel = reliable();

  // Service arrivals.
  while (ig.CanRead()) {
    Packet p = ig.Read();
    progressed = true;
    Connection& c = Conn(p.src);
    switch (p.kind) {
      case OpKind::kTcpSyn: {
        if (rel && p.corrupt) break;  // sender's SYN timer recovers
        // Passive open: accept and reply (deferred if the port is busy).
        // A duplicate SYN (our SYN-ACK was lost) gets a fresh SYN-ACK.
        Packet ack;
        ack.src = node_id_;
        ack.dst = p.src;
        ack.kind = OpKind::kTcpSynAck;
        c.established = true;
        if (eg.CanWrite()) {
          eg.Write(ack);
        } else {
          pending_acks_.push_back(ack);
        }
        break;
      }
      case OpKind::kTcpSynAck:
        if (rel && p.corrupt) break;
        c.established = true;
        c.syn_sent = false;
        break;
      case OpKind::kTcpData: {
        if (rel) {
          HandleData(cycle, p, c);
          break;
        }
        c.established = true;  // data implies the peer saw our SYN-ACK
        c.rx_available += p.bytes;
        Packet ack;
        ack.src = node_id_;
        ack.dst = p.src;
        ack.kind = OpKind::kTcpAck;
        ack.user = p.bytes;  // bytes being acknowledged
        if (eg.CanWrite()) {
          eg.Write(ack);
        } else {
          // Defer the ACK by crediting it back next cycle.
          pending_acks_.push_back(ack);
        }
        break;
      }
      case OpKind::kTcpAck:
        if (rel) {
          HandleAck(cycle, p, c);
          break;
        }
        FPGADP_CHECK(c.in_flight >= p.user);
        c.in_flight -= p.user;
        bytes_acked_ += p.user;
        break;
      default:
        // Non-TCP traffic on a TCP-owned port is a wiring bug.
        FPGADP_CHECK(false);
    }
  }

  // Flush deferred ACKs.
  while (!pending_acks_.empty() && eg.CanWrite()) {
    eg.Write(pending_acks_.front());
    pending_acks_.pop_front();
    progressed = true;
  }

  // Expired timers queue retransmissions, drained ahead of new data.
  if (rel) {
    CheckRetransmits(cycle, &progressed);
    while (!retransmit_q_.empty() && eg.CanWrite()) {
      eg.Write(retransmit_q_.front());
      retransmit_q_.pop_front();
      progressed = true;
    }
  }

  // Transmit: handshakes first, then window-limited data segments.
  for (auto& [peer, c] : conns_) {
    if (c.failed) continue;
    if (c.syn_sent && !c.established) {
      if (!syn_emitted_.count(peer) && eg.CanWrite()) {
        Packet syn;
        syn.src = node_id_;
        syn.dst = peer;
        syn.kind = OpKind::kTcpSyn;
        eg.Write(syn);
        syn_emitted_.insert(peer);
        if (rel) {
          c.syn_rto = SegmentRto(0);
          c.syn_next_retry = cycle + c.syn_rto;
        }
        progressed = true;
      }
      continue;
    }
    while (c.established && c.tx_pending > 0 &&
           c.in_flight + config_.mss_bytes <= config_.window_bytes &&
           eg.CanWrite()) {
      const uint64_t seg =
          std::min<uint64_t>(config_.mss_bytes, c.tx_pending);
      Packet data;
      data.src = node_id_;
      data.dst = peer;
      data.kind = OpKind::kTcpData;
      data.bytes = seg;
      if (rel) {
        data.seq = c.snd_nxt;
        const uint64_t rto = SegmentRto(seg);
        c.unacked[c.snd_nxt] = {seg, cycle + rto, rto, 0};
        c.snd_nxt += seg;
      }
      eg.Write(data);
      c.tx_pending -= seg;
      c.in_flight += seg;
      ++segments_sent_;
      progressed = true;
    }
  }
  if (progressed) MarkBusy();
}

bool TcpStack::Idle() const {
  if (!pending_acks_.empty() || !retransmit_q_.empty()) return false;
  for (const auto& [peer, c] : conns_) {
    if (c.tx_pending > 0 || c.in_flight > 0) return false;
    if (c.syn_sent && !c.established) return false;
  }
  return true;
}

void TcpStack::ExportCustomMetrics(obs::MetricsRegistry& registry) const {
  if (retransmits_ == 0 && ooo_buffered_ == 0 && corrupt_discarded_ == 0) {
    return;  // loss-free stacks stay out of the registry
  }
  const std::string base = "net." + name();
  registry.GetGauge(base + ".retransmits")
      ->Set(static_cast<double>(retransmits_));
  registry.GetGauge(base + ".fast_retransmits")
      ->Set(static_cast<double>(fast_retransmits_));
  registry.GetGauge(base + ".ooo_buffered")
      ->Set(static_cast<double>(ooo_buffered_));
  registry.GetGauge(base + ".corrupt_discarded")
      ->Set(static_cast<double>(corrupt_discarded_));
}

}  // namespace fpgadp::net
