#include "src/net/tcp.h"

#include <algorithm>

#include "src/common/check.h"

namespace fpgadp::net {

TcpStack::TcpStack(std::string name, uint32_t node_id, Fabric* fabric,
                   const Config& config)
    : sim::Module(std::move(name)), node_id_(node_id), fabric_(fabric),
      config_(config) {
  FPGADP_CHECK(fabric_ != nullptr);
  FPGADP_CHECK(node_id_ < fabric_->num_nodes());
  FPGADP_CHECK(config_.mss_bytes > 0 && config_.window_bytes > 0);
}

TcpStack::TcpStack(std::string name, uint32_t node_id, Fabric* fabric)
    : TcpStack(std::move(name), node_id, fabric, Config()) {}

void TcpStack::Connect(uint32_t peer) {
  Connection& c = Conn(peer);
  if (c.established || c.syn_sent) return;
  c.syn_sent = true;  // SYN goes out on the next Tick
}

bool TcpStack::Connected(uint32_t peer) const {
  auto it = conns_.find(peer);
  return it != conns_.end() && it->second.established;
}

void TcpStack::Send(uint32_t peer, uint64_t bytes) {
  Connect(peer);
  Conn(peer).tx_pending += bytes;
}

uint64_t TcpStack::Readable(uint32_t peer) const {
  auto it = conns_.find(peer);
  return it == conns_.end() ? 0 : it->second.rx_available;
}

uint64_t TcpStack::Read(uint32_t peer, uint64_t max_bytes) {
  Connection& c = Conn(peer);
  const uint64_t take = std::min(max_bytes, c.rx_available);
  c.rx_available -= take;
  return take;
}

void TcpStack::Tick(sim::Cycle) {
  bool progressed = false;
  auto& eg = fabric_->egress(node_id_);
  auto& ig = fabric_->ingress(node_id_);

  // Service arrivals.
  while (ig.CanRead()) {
    Packet p = ig.Read();
    progressed = true;
    Connection& c = Conn(p.src);
    switch (p.kind) {
      case OpKind::kTcpSyn: {
        // Passive open: accept and reply (deferred if the port is busy).
        Packet ack;
        ack.src = node_id_;
        ack.dst = p.src;
        ack.kind = OpKind::kTcpSynAck;
        c.established = true;
        if (eg.CanWrite()) {
          eg.Write(ack);
        } else {
          pending_acks_.push_back(ack);
        }
        break;
      }
      case OpKind::kTcpSynAck:
        c.established = true;
        c.syn_sent = false;
        break;
      case OpKind::kTcpData: {
        c.established = true;  // data implies the peer saw our SYN-ACK
        c.rx_available += p.bytes;
        Packet ack;
        ack.src = node_id_;
        ack.dst = p.src;
        ack.kind = OpKind::kTcpAck;
        ack.user = p.bytes;  // bytes being acknowledged
        if (eg.CanWrite()) {
          eg.Write(ack);
        } else {
          // Defer the ACK by crediting it back next cycle.
          pending_acks_.push_back(ack);
        }
        break;
      }
      case OpKind::kTcpAck:
        FPGADP_CHECK(c.in_flight >= p.user);
        c.in_flight -= p.user;
        bytes_acked_ += p.user;
        break;
      default:
        // Non-TCP traffic on a TCP-owned port is a wiring bug.
        FPGADP_CHECK(false);
    }
  }

  // Flush deferred ACKs.
  while (!pending_acks_.empty() && eg.CanWrite()) {
    eg.Write(pending_acks_.front());
    pending_acks_.pop_front();
    progressed = true;
  }

  // Transmit: handshakes first, then window-limited data segments.
  for (auto& [peer, c] : conns_) {
    if (c.syn_sent && !c.established) {
      if (!syn_emitted_.count(peer) && eg.CanWrite()) {
        Packet syn;
        syn.src = node_id_;
        syn.dst = peer;
        syn.kind = OpKind::kTcpSyn;
        eg.Write(syn);
        syn_emitted_.insert(peer);
        progressed = true;
      }
      continue;
    }
    while (c.established && c.tx_pending > 0 &&
           c.in_flight + config_.mss_bytes <= config_.window_bytes &&
           eg.CanWrite()) {
      const uint64_t seg =
          std::min<uint64_t>(config_.mss_bytes, c.tx_pending);
      Packet data;
      data.src = node_id_;
      data.dst = peer;
      data.kind = OpKind::kTcpData;
      data.bytes = seg;
      eg.Write(data);
      c.tx_pending -= seg;
      c.in_flight += seg;
      ++segments_sent_;
      progressed = true;
    }
  }
  if (progressed) MarkBusy();
}

bool TcpStack::Idle() const {
  if (!pending_acks_.empty()) return false;
  for (const auto& [peer, c] : conns_) {
    if (c.tx_pending > 0 || c.in_flight > 0) return false;
    if (c.syn_sent && !c.established) return false;
  }
  return true;
}

}  // namespace fpgadp::net
