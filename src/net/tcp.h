#ifndef FPGADP_NET_TCP_H_
#define FPGADP_NET_TCP_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/net/fabric.h"
#include "src/sim/module.h"

namespace fpgadp::net {

/// An EasyNet/Limago-style hardware TCP session layer (the 100 Gbps
/// TCP/IP stacks the tutorial cites, over which ACCL runs its
/// collectives). One stack per node; one connection per peer. Provides
/// reliable, in-order byte streams with:
///
///  * a 3-way-ish handshake (SYN / SYN-ACK) paying one RTT,
///  * MSS-sized segments, each with per-packet header overhead,
///  * a fixed receive window limiting unacknowledged bytes in flight
///    (throughput = min(line rate, window/RTT) — why the FPGA stacks ship
///    large on-chip buffers),
///  * per-segment cumulative ACKs (header-only packets).
///
/// Loss model. On a loss-free fabric (no FaultInjector attached) delivery
/// is in order per (src,dst) pair and nothing is ever lost, so the stack
/// runs a minimal fast path: incremental ACKs, no sequence numbers, no
/// timers — byte-identical to the pre-fault-model behaviour. On a lossy
/// fabric (Fabric::lossy()) the stack switches to real TCP-style
/// retransmission:
///
///  * each kTcpData segment carries its byte offset in Packet::seq, and
///    ACKs are cumulative (Packet::seq = next expected byte offset);
///  * the receiver buffers out-of-order segments, discards duplicates and
///    corrupted segments (which elicit a duplicate cumulative ACK), and
///    releases bytes to Read() strictly in order;
///  * unacked segments retransmit on a per-segment timeout with
///    exponential backoff; three duplicate ACKs trigger a fast retransmit
///    of the lowest unacked segment;
///  * SYNs retransmit on the same timer scheme until the SYN-ACK arrives;
///  * a segment (or SYN) exceeding `Reliability::max_retries` abandons the
///    connection: tx state is cleared, failed() latches, and status()
///    carries Status::Unavailable.
class TcpStack : public sim::Module {
 public:
  struct Config {
    uint32_t mss_bytes = 4096;        ///< Segment payload size.
    uint64_t window_bytes = 256 * 1024;  ///< Receive window / in-flight cap.
  };

  /// Retransmission knobs, active only on a lossy fabric.
  struct Reliability {
    /// Base retransmission timeout; per segment, twice the segment's
    /// serialization time is added on top.
    uint64_t rto_cycles = 2000;
    double backoff = 2.0;     ///< RTO multiplier per retry.
    uint32_t max_retries = 8; ///< Retransmissions before giving up.
  };

  TcpStack(std::string name, uint32_t node_id, Fabric* fabric,
           const Config& config, const Reliability& reliability);

  /// Convenience overload with default retransmission knobs.
  TcpStack(std::string name, uint32_t node_id, Fabric* fabric,
           const Config& config);

  /// Convenience overload with default session parameters.
  TcpStack(std::string name, uint32_t node_id, Fabric* fabric);

  /// Opens (or returns) the connection to `peer`. Actively sends SYN; the
  /// peer's stack accepts passively. Data queued before establishment is
  /// held until the handshake completes.
  void Connect(uint32_t peer);

  /// True once the handshake with `peer` finished.
  bool Connected(uint32_t peer) const;

  /// Queues `bytes` for transmission to `peer` (auto-connects).
  void Send(uint32_t peer, uint64_t bytes);

  /// Bytes received in order from `peer` and not yet consumed.
  uint64_t Readable(uint32_t peer) const;

  /// Consumes up to `max_bytes` from `peer`'s stream; returns the amount.
  uint64_t Read(uint32_t peer, uint64_t max_bytes);

  void Tick(sim::Cycle cycle) override;
  bool Idle() const override;

  /// Deferred ACKs/retransmits and sendable data ship next tick; armed
  /// SYN/segment timers (lossy mode) report their earliest deadline;
  /// everything else is reactive (waiting on arrivals).
  sim::Cycle NextEventCycle(sim::Cycle now) const override;

  uint32_t node_id() const { return node_id_; }
  uint64_t segments_sent() const { return segments_sent_; }
  uint64_t bytes_acked() const { return bytes_acked_; }

  /// True once any connection exhausted its retry cap; status() then
  /// carries Status::Unavailable for the first such connection.
  bool failed() const { return !status_.ok(); }
  const Status& status() const { return status_; }

  /// Lossy-mode protocol counters (all zero on a loss-free fabric).
  uint64_t retransmits() const { return retransmits_; }
  uint64_t fast_retransmits() const { return fast_retransmits_; }
  uint64_t ooo_buffered() const { return ooo_buffered_; }
  uint64_t corrupt_discarded() const { return corrupt_discarded_; }

  void ExportCustomMetrics(obs::MetricsRegistry& registry) const override;

 private:
  /// One in-flight segment awaiting its cumulative ACK (lossy mode only).
  struct SentSegment {
    uint64_t bytes = 0;
    sim::Cycle next_retry = 0;
    uint64_t rto = 0;
    uint32_t retries = 0;
  };

  struct Connection {
    bool established = false;
    bool syn_sent = false;
    bool failed = false;       ///< Retry cap hit; tx side is abandoned.
    uint64_t tx_pending = 0;   ///< Bytes queued, not yet segmented.
    uint64_t in_flight = 0;    ///< Sent but unacked bytes.
    uint64_t rx_available = 0; ///< In-order bytes awaiting Read().
    // Lossy-mode state. Sender side:
    uint64_t snd_nxt = 0;  ///< Next byte offset to segment.
    uint64_t snd_una = 0;  ///< Lowest unacknowledged byte offset.
    uint32_t dup_acks = 0; ///< Consecutive duplicate-ACK count.
    std::map<uint64_t, SentSegment> unacked;  ///< Keyed by start offset.
    // Receiver side:
    uint64_t rx_next = 0;  ///< Next expected byte offset.
    std::map<uint64_t, uint64_t> ooo;  ///< Out-of-order: offset -> bytes.
    // SYN retransmission:
    sim::Cycle syn_next_retry = 0;
    uint64_t syn_rto = 0;
    uint32_t syn_retries = 0;
  };

  Connection& Conn(uint32_t peer) { return conns_[peer]; }
  bool reliable() const { return fabric_->lossy(); }
  uint64_t SegmentRto(uint64_t bytes) const;
  void FailConnection(uint32_t peer, Connection& c, const char* what);
  void HandleData(sim::Cycle cycle, const Packet& p, Connection& c);
  void HandleAck(sim::Cycle cycle, const Packet& p, Connection& c);
  void CheckRetransmits(sim::Cycle cycle, bool* progressed);
  void SendAck(uint32_t peer, uint64_t cumulative);

  uint32_t node_id_;
  Fabric* fabric_;
  Config config_;
  Reliability reliability_;
  std::map<uint32_t, Connection> conns_;
  std::deque<Packet> pending_acks_;  ///< ACK/SYN-ACK deferred by port pressure.
  std::deque<Packet> retransmit_q_;  ///< Retransmits deferred by port pressure.
  std::set<uint32_t> syn_emitted_;   ///< Peers whose SYN already left.
  Status status_;
  uint64_t segments_sent_ = 0;
  uint64_t bytes_acked_ = 0;
  uint64_t retransmits_ = 0;
  uint64_t fast_retransmits_ = 0;
  uint64_t ooo_buffered_ = 0;
  uint64_t corrupt_discarded_ = 0;
};

}  // namespace fpgadp::net

#endif  // FPGADP_NET_TCP_H_
