#ifndef FPGADP_NET_TCP_H_
#define FPGADP_NET_TCP_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>

#include "src/common/result.h"
#include "src/net/fabric.h"
#include "src/sim/module.h"

namespace fpgadp::net {

/// An EasyNet/Limago-style hardware TCP session layer (the 100 Gbps
/// TCP/IP stacks the tutorial cites, over which ACCL runs its
/// collectives). One stack per node; one connection per peer. Provides
/// reliable, in-order byte streams with:
///
///  * a 3-way-ish handshake (SYN / SYN-ACK) paying one RTT,
///  * MSS-sized segments, each with per-packet header overhead,
///  * a fixed receive window limiting unacknowledged bytes in flight
///    (throughput = min(line rate, window/RTT) — why the FPGA stacks ship
///    large on-chip buffers),
///  * per-segment cumulative ACKs (header-only packets).
///
/// The loss-free fabric never reorders within a (src,dst) pair, so
/// retransmission logic is not modeled.
class TcpStack : public sim::Module {
 public:
  struct Config {
    uint32_t mss_bytes = 4096;        ///< Segment payload size.
    uint64_t window_bytes = 256 * 1024;  ///< Receive window / in-flight cap.
  };

  TcpStack(std::string name, uint32_t node_id, Fabric* fabric,
           const Config& config);

  /// Convenience overload with default session parameters.
  TcpStack(std::string name, uint32_t node_id, Fabric* fabric);

  /// Opens (or returns) the connection to `peer`. Actively sends SYN; the
  /// peer's stack accepts passively. Data queued before establishment is
  /// held until the handshake completes.
  void Connect(uint32_t peer);

  /// True once the handshake with `peer` finished.
  bool Connected(uint32_t peer) const;

  /// Queues `bytes` for transmission to `peer` (auto-connects).
  void Send(uint32_t peer, uint64_t bytes);

  /// Bytes received in order from `peer` and not yet consumed.
  uint64_t Readable(uint32_t peer) const;

  /// Consumes up to `max_bytes` from `peer`'s stream; returns the amount.
  uint64_t Read(uint32_t peer, uint64_t max_bytes);

  void Tick(sim::Cycle cycle) override;
  bool Idle() const override;

  uint32_t node_id() const { return node_id_; }
  uint64_t segments_sent() const { return segments_sent_; }
  uint64_t bytes_acked() const { return bytes_acked_; }

 private:
  struct Connection {
    bool established = false;
    bool syn_sent = false;
    uint64_t tx_pending = 0;   ///< Bytes queued, not yet segmented.
    uint64_t in_flight = 0;    ///< Sent but unacked bytes.
    uint64_t rx_available = 0; ///< In-order bytes awaiting Read().
  };

  Connection& Conn(uint32_t peer) { return conns_[peer]; }

  uint32_t node_id_;
  Fabric* fabric_;
  Config config_;
  std::map<uint32_t, Connection> conns_;
  std::deque<Packet> pending_acks_;  ///< ACK/SYN-ACK deferred by port pressure.
  std::set<uint32_t> syn_emitted_;   ///< Peers whose SYN already left.
  uint64_t segments_sent_ = 0;
  uint64_t bytes_acked_ = 0;
};

}  // namespace fpgadp::net

#endif  // FPGADP_NET_TCP_H_
