#include "src/net/fabric.h"

#include <algorithm>
#include <span>

#include "src/common/check.h"
#include "src/net/agg_switch.h"
#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace fpgadp::net {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kLinkFlap: return "link_flap";
  }
  return "unknown";
}

bool FaultInjector::LinkDown(sim::Cycle cycle, uint32_t src,
                             uint32_t dst) const {
  for (const Flap& f : flaps_) {
    if (cycle >= f.until) continue;
    if ((f.src == kAnyNode || f.src == src) &&
        (f.dst == kAnyNode || f.dst == dst)) {
      return true;
    }
  }
  return false;
}

FaultInjector::Decision FaultInjector::OnPacket(sim::Cycle cycle,
                                                const Packet& packet) {
  Decision d;
  // Scheduled faults first: the earliest unfired matching entry fires.
  for (size_t i = 0; i < schedule_.size(); ++i) {
    const Entry& e = schedule_[i];
    if (fired_[i] || cycle < e.cycle) continue;
    if ((e.src != kAnyNode && e.src != packet.src) ||
        (e.dst != kAnyNode && e.dst != packet.dst) ||
        (e.op_filter >= 0 && e.op_filter != int(packet.kind))) {
      continue;
    }
    fired_[i] = true;
    Count(e.kind);
    switch (e.kind) {
      case FaultKind::kDrop: d.drop = true; break;
      case FaultKind::kCorrupt: d.corrupt = true; break;
      case FaultKind::kDuplicate: d.duplicate = true; break;
      case FaultKind::kDelay:
        d.extra_delay_cycles += config_.delay_spike_cycles;
        break;
      case FaultKind::kLinkFlap:
        flaps_.push_back({e.src, e.dst, cycle + config_.flap_down_cycles});
        d.drop = true;  // the triggering packet is the first casualty
        break;
    }
  }
  // A down link loses everything offered to it.
  if (!d.drop && LinkDown(cycle, packet.src, packet.dst)) {
    Count(FaultKind::kLinkFlap);
    d.drop = true;
  }
  // Probabilistic faults, drawn in a fixed order from the seeded stream so
  // the same seed and offered traffic reproduce the same pattern.
  if (!d.drop && config_.drop_rate > 0 &&
      rng_.NextDouble() < config_.drop_rate) {
    Count(FaultKind::kDrop);
    d.drop = true;
  }
  if (!d.drop) {
    if (config_.corrupt_rate > 0 && rng_.NextDouble() < config_.corrupt_rate) {
      Count(FaultKind::kCorrupt);
      d.corrupt = true;
    }
    if (config_.duplicate_rate > 0 &&
        rng_.NextDouble() < config_.duplicate_rate) {
      Count(FaultKind::kDuplicate);
      d.duplicate = true;
    }
    if (config_.delay_rate > 0 && rng_.NextDouble() < config_.delay_rate) {
      Count(FaultKind::kDelay);
      d.extra_delay_cycles += config_.delay_spike_cycles;
    }
  }
  return d;
}

uint64_t FaultInjector::total_faults() const {
  uint64_t total = 0;
  for (uint64_t c : counts_) total += c;
  return total;
}

sim::Cycle FaultInjector::NextScheduledCycle(sim::Cycle now) const {
  sim::Cycle earliest = sim::kNoEventCycle;
  for (size_t i = 0; i < schedule_.size(); ++i) {
    if (fired_[i]) continue;
    if (schedule_[i].cycle > now && schedule_[i].cycle < earliest) {
      earliest = schedule_[i].cycle;
    }
  }
  return earliest;
}

Fabric::Fabric(std::string name, uint32_t num_nodes, const Config& config)
    : sim::Module(std::move(name)), config_(config) {
  FPGADP_CHECK(num_nodes > 0);
  bytes_per_cycle_ = config_.bits_per_sec / 8.0 / config_.clock_hz;
  wire_latency_cycles_ = NanosToCycles(config_.wire_latency_ns, config_.clock_hz);
  tx_free_.assign(num_nodes, 0);
  rx_free_.assign(num_nodes, 0);
  tx_busy_cycles_.assign(num_nodes, 0);
  rx_busy_cycles_.assign(num_nodes, 0);
  arriving_.resize(num_nodes);
  for (uint32_t n = 0; n < num_nodes; ++n) {
    egress_.push_back(std::make_unique<sim::Stream<Packet>>(
        this->name() + ".eg" + std::to_string(n), 64));
    ingress_.push_back(std::make_unique<sim::Stream<Packet>>(
        this->name() + ".ig" + std::to_string(n), 64));
    egress_.back()->BindConsumer(this);
    ingress_.back()->BindProducer(this);
  }
  SetParallelSafe();
  SetEventSafe();
}

sim::Cycle Fabric::NextEventCycle(sim::Cycle now) const {
  sim::Cycle earliest = sim::kNoEventCycle;
  if (injector_ != nullptr) earliest = injector_->NextScheduledCycle(now);
  for (const auto& pq : arriving_) {
    if (pq.empty()) continue;
    const sim::Cycle at = pq.top().deliver_at > now ? pq.top().deliver_at : now;
    if (at < earliest) earliest = at;
  }
  return earliest;
}

void Fabric::AttributeSkip(sim::Cycle from, sim::Cycle to) {
  const uint64_t n = to - from;
  // Closed form of the per-tick port accounting: port p serializes until
  // tx_free_[p]/rx_free_[p].
  for (uint32_t p = 0; p < tx_free_.size(); ++p) {
    if (tx_free_[p] > from) {
      tx_busy_cycles_[p] += std::min<uint64_t>(n, tx_free_[p] - from);
    }
    if (rx_free_[p] > from) {
      rx_busy_cycles_[p] += std::min<uint64_t>(n, rx_free_[p] - from);
    }
  }
  // The serial ticks mark busy while anything is in flight (on the wire,
  // in receive serialization, or held in a switch combiner) and idle
  // otherwise.
  if (!Idle()) MarkBusyN(n);
}

void Fabric::RegisterWith(sim::Engine& engine) {
  engine.AddModule(this);
  for (auto& s : egress_) engine.AddStream(s.get());
  for (auto& s : ingress_) engine.AddStream(s.get());
}

uint64_t Fabric::SerializationCycles(uint64_t payload_bytes) const {
  const double wire_bytes =
      static_cast<double>(payload_bytes + config_.header_bytes);
  return static_cast<uint64_t>(
      (wire_bytes + bytes_per_cycle_ - 1.0) / bytes_per_cycle_);
}

void Fabric::Tick(sim::Cycle cycle) {
  // Per-port serialization accounting: a port is busy while a packet is
  // still streaming through it.
  for (uint32_t n = 0; n < tx_free_.size(); ++n) {
    if (cycle < tx_free_[n]) ++tx_busy_cycles_[n];
    if (cycle < rx_free_[n]) ++rx_busy_cycles_[n];
  }
  bool progressed = false;
  // Pick up newly posted packets from every egress port, burst-read per
  // contiguous run; the per-packet switching/fault logic is unchanged.
  for (uint32_t n = 0; n < egress_.size(); ++n) {
    while (true) {
      std::span<const Packet> posted = egress_[n]->ReadableSpan();
      if (posted.empty()) break;
      for (size_t pi = 0; pi < posted.size(); ++pi) {
        Packet p = posted[pi];
        FPGADP_CHECK(p.dst < ingress_.size());
        // Link-level control packets (which only exist on a lossy fabric)
        // ride a prioritized control lane, as RC hardware acks do: they skip
        // the port's data backlog instead of queueing behind megabytes of
        // payload, so they cannot starve the very timers they feed.
        // Health beacons share the lane: a liveness probe queued behind a
        // data backlog would time out its own sender.
        const bool control = p.kind == OpKind::kRdmaAck ||
                             p.kind == OpKind::kRdmaNack ||
                             p.kind == OpKind::kHealthBeacon;
        const uint64_t ser = SerializationCycles(p.bytes);
        const sim::Cycle tx_start =
            control ? cycle + 1 : std::max<sim::Cycle>(cycle + 1, tx_free_[n]);
        if (!control) tx_free_[n] = tx_start + ser;
        // Fault injection point: the packet has left the sender NIC (tx
        // serialization is already paid) and is inside the switch.
        uint64_t extra_delay = 0;
        bool duplicate = false;
        if (injector_ != nullptr) {
          const FaultInjector::Decision d = injector_->OnPacket(cycle, p);
          if (d.drop) {
            TraceFault(cycle, FaultKind::kDrop, p);
            ++packets_dropped_;
            progressed = true;
            continue;
          }
          if (d.corrupt) {
            p.corrupt = true;
            TraceFault(cycle, FaultKind::kCorrupt, p);
          }
          if (d.duplicate) {
            duplicate = true;
            TraceFault(cycle, FaultKind::kDuplicate, p);
          }
          if (d.extra_delay_cycles > 0) {
            extra_delay = d.extra_delay_cycles;
            TraceFault(cycle, FaultKind::kDelay, p);
          }
        }
        // In-network aggregation: an armed response is consumed by the
        // switch's per-port combiner right here — it pays no receive-port
        // serialization. Only the combined packet (released when the group
        // completes) goes through the port. The switch terminates the
        // reliability protocol for absorbed packets: the fabric acks (or
        // nacks, for corrupted payloads) on the combiner's behalf, and the
        // merged packet travels unsequenced.
        if (agg_switch_ != nullptr && agg_switch_->Wants(p)) {
          progressed = true;
          if (p.corrupt) {
            if (p.seq != 0) {
              InjectControl(cycle, OpKind::kRdmaNack, p.dst, p.src, p.seq);
            }
            continue;
          }
          if (p.seq != 0) {
            InjectControl(cycle, OpKind::kRdmaAck, p.dst, p.src, p.seq);
          }
          const sim::Cycle at_switch =
              tx_start + wire_latency_cycles_ + extra_delay;
          for (int copy = 0; copy < (duplicate ? 2 : 1); ++copy) {
            if (!agg_switch_->Wants(p)) break;  // first copy closed the group
            auto released = agg_switch_->Offer(at_switch, p);
            if (!released.has_value()) continue;
            const Packet& m = released->packet;
            const uint64_t mser = SerializationCycles(m.bytes);
            const sim::Cycle mrx_start =
                std::max<sim::Cycle>(released->ready_at, rx_free_[m.dst]);
            rx_free_[m.dst] = mrx_start + mser;
            arriving_[m.dst].push({mrx_start + mser, m});
            ++in_flight_;
          }
          continue;
        }
        // Cut-through switching: the receive port streams the packet while
        // the sender is still serializing it, so an uncontended transfer
        // costs ser + wire, not 2x ser. The rx port is still a serialized
        // resource (incast queues here).
        const sim::Cycle rx_start =
            control ? tx_start + wire_latency_cycles_
                    : std::max<sim::Cycle>(tx_start + wire_latency_cycles_,
                                           rx_free_[p.dst]);
        const sim::Cycle rx_end = rx_start + ser;
        if (!control) rx_free_[p.dst] = rx_end;
        // A delay spike holds the packet in switch buffering after the port:
        // it does not occupy the receive port meanwhile, so later packets
        // overtake it — delay faults genuinely reorder delivery.
        arriving_[p.dst].push({rx_end + extra_delay, p});
        ++in_flight_;
        if (duplicate) {
          // The switch emits a second copy right behind the first; it pays
          // its own receive-port serialization.
          const sim::Cycle rx2_end = rx_free_[p.dst] + ser;
          rx_free_[p.dst] = rx2_end;
          arriving_[p.dst].push({rx2_end + extra_delay, p});
          ++in_flight_;
        }
        progressed = true;
      }
      egress_[n]->ConsumeRead(posted.size());
    }
  }
  // Deliver packets whose receive serialization has completed, burst-written
  // per contiguous free run of each ingress FIFO.
  for (uint32_t n = 0; n < ingress_.size(); ++n) {
    auto& pq = arriving_[n];
    while (!pq.empty() && pq.top().deliver_at <= cycle) {
      std::span<Packet> dst = ingress_[n]->WritableSpan();
      if (dst.empty()) break;  // ingress FIFO full
      size_t k = 0;
      while (k < dst.size() && !pq.empty() && pq.top().deliver_at <= cycle) {
        dst[k] = pq.top().packet;
        payload_bytes_delivered_ += pq.top().packet.bytes;
        pq.pop();
        ++k;
      }
      ingress_[n]->CommitWrite(k);
      in_flight_ -= k;
      packets_delivered_ += k;
      progressed = progressed || k > 0;
    }
  }
  if (progressed) {
    MarkBusy();
  } else if (!Idle()) {
    MarkBusy();  // packets on the wire / held in the switch combiners
  } else {
    MarkStall(sim::StallKind::kIdle);  // no traffic offered
  }
}

bool Fabric::Idle() const {
  return in_flight_ == 0 &&
         (agg_switch_ == nullptr || agg_switch_->held_responses() == 0);
}

void Fabric::InjectControl(sim::Cycle cycle, OpKind kind, uint32_t src,
                           uint32_t dst, uint64_t seq) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.kind = kind;
  p.seq = seq;
  // Same timing as an endpoint-originated control packet: one cycle of
  // pickup, the wire, header-only serialization on the control lane.
  arriving_[dst].push(
      {cycle + 1 + wire_latency_cycles_ + SerializationCycles(0), p});
  ++in_flight_;
}

void Fabric::SampleTraceCounters(obs::TraceCounterSink& sink) {
  // Emit only on change so a quiet 8-node fabric does not flood the trace.
  const auto in_flight = static_cast<double>(in_flight_);
  if (in_flight != last_inflight_emitted_) {
    sink.Counter(name() + ".in_flight", in_flight);
    last_inflight_emitted_ = in_flight;
  }
  last_incast_emitted_.resize(arriving_.size(), -1);
  for (uint32_t n = 0; n < arriving_.size(); ++n) {
    // Incast pressure is per receive port; one counter track per node.
    const auto depth = static_cast<double>(arriving_[n].size());
    if (depth != last_incast_emitted_[n]) {
      sink.Counter(name() + ".incast_q" + std::to_string(n), depth);
      last_incast_emitted_[n] = depth;
    }
  }
}

void Fabric::TraceFault(sim::Cycle cycle, FaultKind kind, const Packet& packet) {
  if (trace_writer() == nullptr) return;
  trace_writer()->Instant(trace_pid(), trace_tid(),
                          std::string("fault.") + FaultKindName(kind) + " " +
                              std::to_string(packet.src) + "->" +
                              std::to_string(packet.dst),
                          cycle);
}

void Fabric::ExportCustomMetrics(obs::MetricsRegistry& registry) const {
  const std::string base = "net." + name();
  registry.GetGauge(base + ".packets_delivered")
      ->Set(static_cast<double>(packets_delivered_));
  registry.GetGauge(base + ".payload_bytes")
      ->Set(static_cast<double>(payload_bytes_delivered_));
  if (injector_ != nullptr) {
    for (int k = 0; k < kNumFaultKinds; ++k) {
      const auto kind = static_cast<FaultKind>(k);
      registry.GetGauge(base + ".faults." + FaultKindName(kind))
          ->Set(static_cast<double>(injector_->fault_count(kind)));
    }
    registry.GetGauge(base + ".packets_dropped")
        ->Set(static_cast<double>(packets_dropped_));
  }
  for (uint32_t n = 0; n < tx_busy_cycles_.size(); ++n) {
    const std::string port = base + ".port" + std::to_string(n);
    registry.GetGauge(port + ".tx_busy_cycles")
        ->Set(static_cast<double>(tx_busy_cycles_[n]));
    registry.GetGauge(port + ".rx_busy_cycles")
        ->Set(static_cast<double>(rx_busy_cycles_[n]));
  }
}

}  // namespace fpgadp::net
