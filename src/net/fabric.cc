#include "src/net/fabric.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace fpgadp::net {

Fabric::Fabric(std::string name, uint32_t num_nodes, const Config& config)
    : sim::Module(std::move(name)), config_(config) {
  FPGADP_CHECK(num_nodes > 0);
  bytes_per_cycle_ = config_.bits_per_sec / 8.0 / config_.clock_hz;
  wire_latency_cycles_ = NanosToCycles(config_.wire_latency_ns, config_.clock_hz);
  tx_free_.assign(num_nodes, 0);
  rx_free_.assign(num_nodes, 0);
  tx_busy_cycles_.assign(num_nodes, 0);
  rx_busy_cycles_.assign(num_nodes, 0);
  arriving_.resize(num_nodes);
  for (uint32_t n = 0; n < num_nodes; ++n) {
    egress_.push_back(std::make_unique<sim::Stream<Packet>>(
        this->name() + ".eg" + std::to_string(n), 64));
    ingress_.push_back(std::make_unique<sim::Stream<Packet>>(
        this->name() + ".ig" + std::to_string(n), 64));
  }
}

void Fabric::RegisterWith(sim::Engine& engine) {
  engine.AddModule(this);
  for (auto& s : egress_) engine.AddStream(s.get());
  for (auto& s : ingress_) engine.AddStream(s.get());
}

uint64_t Fabric::SerializationCycles(uint64_t payload_bytes) const {
  const double wire_bytes =
      static_cast<double>(payload_bytes + config_.header_bytes);
  return static_cast<uint64_t>(
      (wire_bytes + bytes_per_cycle_ - 1.0) / bytes_per_cycle_);
}

void Fabric::Tick(sim::Cycle cycle) {
  // Per-port serialization accounting: a port is busy while a packet is
  // still streaming through it.
  for (uint32_t n = 0; n < tx_free_.size(); ++n) {
    if (cycle < tx_free_[n]) ++tx_busy_cycles_[n];
    if (cycle < rx_free_[n]) ++rx_busy_cycles_[n];
  }
  bool progressed = false;
  // Pick up newly posted packets from every egress port.
  for (uint32_t n = 0; n < egress_.size(); ++n) {
    while (egress_[n]->CanRead()) {
      Packet p = egress_[n]->Read();
      FPGADP_CHECK(p.dst < ingress_.size());
      const uint64_t ser = SerializationCycles(p.bytes);
      const sim::Cycle tx_start = std::max<sim::Cycle>(cycle + 1, tx_free_[n]);
      const sim::Cycle tx_end = tx_start + ser;
      tx_free_[n] = tx_end;
      // Cut-through switching: the receive port streams the packet while
      // the sender is still serializing it, so an uncontended transfer
      // costs ser + wire, not 2x ser. The rx port is still a serialized
      // resource (incast queues here).
      const sim::Cycle rx_start = std::max<sim::Cycle>(
          tx_start + wire_latency_cycles_, rx_free_[p.dst]);
      const sim::Cycle rx_end = rx_start + ser;
      rx_free_[p.dst] = rx_end;
      arriving_[p.dst].push({rx_end, p});
      ++in_flight_;
      progressed = true;
    }
  }
  // Deliver packets whose receive serialization has completed.
  for (uint32_t n = 0; n < ingress_.size(); ++n) {
    auto& pq = arriving_[n];
    while (!pq.empty() && pq.top().deliver_at <= cycle &&
           ingress_[n]->CanWrite()) {
      ingress_[n]->Write(pq.top().packet);
      payload_bytes_delivered_ += pq.top().packet.bytes;
      pq.pop();
      --in_flight_;
      ++packets_delivered_;
      progressed = true;
    }
  }
  if (progressed) {
    MarkBusy();
  } else if (in_flight_ > 0) {
    MarkBusy();  // packets still serializing or on the wire
  } else {
    MarkStall(sim::StallKind::kIdle);  // no traffic offered
  }
}

void Fabric::SampleTraceCounters(obs::TraceCounterSink& sink) {
  // Emit only on change so a quiet 8-node fabric does not flood the trace.
  const auto in_flight = static_cast<double>(in_flight_);
  if (in_flight != last_inflight_emitted_) {
    sink.Counter(name() + ".in_flight", in_flight);
    last_inflight_emitted_ = in_flight;
  }
  last_incast_emitted_.resize(arriving_.size(), -1);
  for (uint32_t n = 0; n < arriving_.size(); ++n) {
    // Incast pressure is per receive port; one counter track per node.
    const auto depth = static_cast<double>(arriving_[n].size());
    if (depth != last_incast_emitted_[n]) {
      sink.Counter(name() + ".incast_q" + std::to_string(n), depth);
      last_incast_emitted_[n] = depth;
    }
  }
}

void Fabric::ExportCustomMetrics(obs::MetricsRegistry& registry) const {
  const std::string base = "net." + name();
  registry.GetGauge(base + ".packets_delivered")
      ->Set(static_cast<double>(packets_delivered_));
  registry.GetGauge(base + ".payload_bytes")
      ->Set(static_cast<double>(payload_bytes_delivered_));
  for (uint32_t n = 0; n < tx_busy_cycles_.size(); ++n) {
    const std::string port = base + ".port" + std::to_string(n);
    registry.GetGauge(port + ".tx_busy_cycles")
        ->Set(static_cast<double>(tx_busy_cycles_[n]));
    registry.GetGauge(port + ".rx_busy_cycles")
        ->Set(static_cast<double>(rx_busy_cycles_[n]));
  }
}

}  // namespace fpgadp::net
