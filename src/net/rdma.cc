#include "src/net/rdma.h"

#include "src/common/check.h"

namespace fpgadp::net {

RdmaEndpoint::RdmaEndpoint(std::string name, uint32_t node_id, Fabric* fabric)
    : sim::Module(std::move(name)), node_id_(node_id), fabric_(fabric) {
  FPGADP_CHECK(fabric_ != nullptr);
  FPGADP_CHECK(node_id_ < fabric_->num_nodes());
}

void RdmaEndpoint::PostSend(uint32_t dst, uint64_t bytes, uint64_t tag,
                            uint64_t user) {
  Packet p;
  p.src = node_id_;
  p.dst = dst;
  p.kind = OpKind::kSend;
  p.bytes = bytes;
  p.tag = tag;
  p.user = user;
  outbox_.push_back(p);
}

void RdmaEndpoint::PostRead(uint32_t dst, uint64_t addr, uint64_t bytes,
                            uint64_t tag) {
  Packet p;
  p.src = node_id_;
  p.dst = dst;
  p.kind = OpKind::kReadReq;
  p.addr = addr;
  p.bytes = 0;  // header-only on the wire; `user` remembers requested size
  p.user = bytes;
  p.tag = tag;
  outbox_.push_back(p);
}

void RdmaEndpoint::PostWrite(uint32_t dst, uint64_t addr, uint64_t bytes,
                             uint64_t tag) {
  Packet p;
  p.src = node_id_;
  p.dst = dst;
  p.kind = OpKind::kWrite;
  p.addr = addr;
  p.bytes = bytes;
  p.tag = tag;
  outbox_.push_back(p);
}

void RdmaEndpoint::PostPacket(Packet p) {
  p.src = node_id_;
  outbox_.push_back(p);
}

bool RdmaEndpoint::PollCompletion(Completion* out) {
  if (cq_.empty()) return false;
  *out = cq_.front();
  cq_.pop_front();
  return true;
}

bool RdmaEndpoint::PollRecv(Packet* out) {
  if (rq_.empty()) return false;
  *out = rq_.front();
  rq_.pop_front();
  return true;
}

void RdmaEndpoint::Tick(sim::Cycle cycle) {
  bool progressed = false;
  auto& eg = fabric_->egress(node_id_);
  // Ship posted work requests to the NIC.
  while (!outbox_.empty() && eg.CanWrite()) {
    Packet p = outbox_.front();
    outbox_.pop_front();
    eg.Write(p);
    if (p.kind == OpKind::kSend) {
      // Local send completion: the message left the NIC.
      cq_.push_back({p.tag, OpKind::kSend, p.dst, p.bytes, cycle});
    }
    progressed = true;
  }
  // Service arrivals.
  auto& ig = fabric_->ingress(node_id_);
  while (ig.CanRead()) {
    Packet p = ig.Read();
    progressed = true;
    switch (p.kind) {
      case OpKind::kReadReq: {
        // NIC answers autonomously with the payload.
        Packet resp;
        resp.src = node_id_;
        resp.dst = p.src;
        resp.kind = OpKind::kReadResp;
        resp.addr = p.addr;
        resp.bytes = p.user;  // requested size
        resp.tag = p.tag;
        outbox_.push_back(resp);
        break;
      }
      case OpKind::kReadResp:
        cq_.push_back({p.tag, OpKind::kReadResp, p.src, p.bytes, cycle});
        break;
      case OpKind::kWrite: {
        Packet ack;
        ack.src = node_id_;
        ack.dst = p.src;
        ack.kind = OpKind::kWriteAck;
        ack.bytes = 0;
        ack.tag = p.tag;
        outbox_.push_back(ack);
        break;
      }
      case OpKind::kWriteAck:
        cq_.push_back({p.tag, OpKind::kWriteAck, p.src, p.bytes, cycle});
        break;
      case OpKind::kSend:
      case OpKind::kOffloadReq:
      case OpKind::kOffloadResp:
      case OpKind::kTcpSyn:
      case OpKind::kTcpSynAck:
      case OpKind::kTcpData:
      case OpKind::kTcpAck:
        // TCP kinds only appear when a TcpStack owns the port; surfacing
        // them in the receive queue keeps misconfigurations observable.
        rq_.push_back(p);
        break;
    }
  }
  if (progressed) MarkBusy();
}

}  // namespace fpgadp::net
