#include "src/net/rdma.h"

#include "src/common/check.h"
#include "src/obs/metrics.h"

namespace fpgadp::net {

namespace {

/// Link-level control packets are never sequenced (acking an ack would
/// recurse forever); everything else carries a per-destination seq.
bool IsSequenced(OpKind kind) {
  // Health beacons ride unreliable-datagram semantics: no sequence number,
  // no retransmission. Losing one is the signal — the receiver's timeout
  // detects silence; retrying would mask exactly the failure it reports.
  return kind != OpKind::kRdmaAck && kind != OpKind::kRdmaNack &&
         kind != OpKind::kHealthBeacon;
}

}  // namespace

RdmaEndpoint::RdmaEndpoint(std::string name, uint32_t node_id, Fabric* fabric,
                           const Reliability& reliability)
    : sim::Module(std::move(name)), node_id_(node_id), fabric_(fabric),
      reliability_(reliability) {
  FPGADP_CHECK(fabric_ != nullptr);
  FPGADP_CHECK(node_id_ < fabric_->num_nodes());
  FPGADP_CHECK(reliability_.backoff >= 1.0);
  // The Tick touches exactly this node's port pair; declaring the
  // endpoints certifies the module for parallel ticking.
  fabric_->egress(node_id_).BindProducer(this);
  fabric_->ingress(node_id_).BindConsumer(this);
  SetParallelSafe();
  // Event-safe: NextEventCycle covers posted work and retransmission
  // timers, the ingress bind covers arrivals, and Post* self-wakes. A
  // skipped endpoint has an empty outbox, no pending arrivals, and no
  // timer due — cycles the serial tick would have spent idle.
  SetEventSafe();
}

RdmaEndpoint::RdmaEndpoint(std::string name, uint32_t node_id, Fabric* fabric)
    : RdmaEndpoint(std::move(name), node_id, fabric, Reliability()) {}

void RdmaEndpoint::NotifyDelivery() {
  // Called immediately BEFORE a completion or received message is queued,
  // so an event-driven settle of the listener attributes its skipped
  // cycles against the pre-delivery queue state (the state every serial
  // tick in that gap would have observed).
  if (listener_ != nullptr) listener_->WakeUp();
}

void RdmaEndpoint::PostSend(uint32_t dst, uint64_t bytes, uint64_t tag,
                            uint64_t user) {
  WakeUp();  // posted work ships next tick; arm a sleeping endpoint
  Packet p;
  p.src = node_id_;
  p.dst = dst;
  p.kind = OpKind::kSend;
  p.bytes = bytes;
  p.tag = tag;
  p.user = user;
  outbox_.push_back(p);
}

void RdmaEndpoint::PostRead(uint32_t dst, uint64_t addr, uint64_t bytes,
                            uint64_t tag) {
  WakeUp();
  Packet p;
  p.src = node_id_;
  p.dst = dst;
  p.kind = OpKind::kReadReq;
  p.addr = addr;
  p.bytes = 0;  // header-only on the wire; `user` remembers requested size
  p.user = bytes;
  p.tag = tag;
  outbox_.push_back(p);
}

void RdmaEndpoint::PostWrite(uint32_t dst, uint64_t addr, uint64_t bytes,
                             uint64_t tag) {
  WakeUp();
  Packet p;
  p.src = node_id_;
  p.dst = dst;
  p.kind = OpKind::kWrite;
  p.addr = addr;
  p.bytes = bytes;
  p.tag = tag;
  outbox_.push_back(p);
}

void RdmaEndpoint::PostPacket(Packet p) {
  WakeUp();
  p.src = node_id_;
  outbox_.push_back(p);
}

bool RdmaEndpoint::PollCompletion(Completion* out) {
  if (cq_.empty()) return false;
  *out = cq_.front();
  cq_.pop_front();
  return true;
}

bool RdmaEndpoint::PollRecv(Packet* out) {
  if (rq_.empty()) return false;
  *out = rq_.front();
  rq_.pop_front();
  return true;
}

uint64_t RdmaEndpoint::InitialRto(const Packet& p) const {
  // Base timeout plus the round trip's share of payload serialization, so
  // a 1 MiB write is not declared lost while it is still on the wire.
  return reliability_.rto_cycles + 2 * fabric_->SerializationCycles(p.bytes);
}

void RdmaEndpoint::FailOp(sim::Cycle cycle, const Packet& p) {
  if (status_.ok()) {
    status_ = Status::Unavailable(
        name() + ": gave up on " + std::to_string(p.dst) + " seq " +
        std::to_string(p.seq) + " after " +
        std::to_string(reliability_.max_retries) + " retries");
  }
  NotifyDelivery();
  cq_.push_back(
      {p.tag, p.kind, p.dst, p.bytes, cycle, StatusCode::kUnavailable});
}

void RdmaEndpoint::CheckRetransmits(sim::Cycle cycle) {
  for (auto it = unacked_.begin(); it != unacked_.end();) {
    Unacked& u = it->second;
    if (cycle < u.next_retry) {
      ++it;
      continue;
    }
    if (u.retries >= reliability_.max_retries) {
      FailOp(cycle, u.packet);
      it = unacked_.erase(it);
      continue;
    }
    ++u.retries;
    ++retransmits_;
    u.rto = static_cast<uint64_t>(double(u.rto) * reliability_.backoff);
    u.next_retry = cycle + u.rto;
    outbox_.push_back(u.packet);
    ++it;
  }
}

void RdmaEndpoint::Dispatch(sim::Cycle cycle, const Packet& p) {
  switch (p.kind) {
    case OpKind::kReadReq: {
      // NIC answers autonomously with the payload.
      Packet resp;
      resp.src = node_id_;
      resp.dst = p.src;
      resp.kind = OpKind::kReadResp;
      resp.addr = p.addr;
      resp.bytes = p.user;  // requested size
      resp.tag = p.tag;
      outbox_.push_back(resp);
      break;
    }
    case OpKind::kReadResp:
      NotifyDelivery();
      cq_.push_back({p.tag, OpKind::kReadResp, p.src, p.bytes, cycle});
      break;
    case OpKind::kWrite: {
      Packet ack;
      ack.src = node_id_;
      ack.dst = p.src;
      ack.kind = OpKind::kWriteAck;
      ack.bytes = 0;
      ack.tag = p.tag;
      outbox_.push_back(ack);
      break;
    }
    case OpKind::kWriteAck:
      NotifyDelivery();
      cq_.push_back({p.tag, OpKind::kWriteAck, p.src, p.bytes, cycle});
      break;
    case OpKind::kSend:
    case OpKind::kOffloadReq:
    case OpKind::kOffloadResp:
    case OpKind::kTcpSyn:
    case OpKind::kTcpSynAck:
    case OpKind::kTcpData:
    case OpKind::kTcpAck:
    case OpKind::kRdmaAck:
    case OpKind::kRdmaNack:
    case OpKind::kHealthBeacon:
    case OpKind::kMigrateStart:
    case OpKind::kMigrateChunk:
    case OpKind::kMigrateDone:
      // TCP kinds only appear when a TcpStack owns the port; surfacing
      // them in the receive queue keeps misconfigurations observable.
      // (kRdmaAck/kRdmaNack are consumed before Dispatch in lossy mode.)
      // Beacon and migration kinds are consumed by the shard layer.
      NotifyDelivery();
      rq_.push_back(p);
      break;
  }
}

void RdmaEndpoint::HandleArrival(sim::Cycle cycle, Packet p) {
  if (!reliable()) {
    Dispatch(cycle, p);
    return;
  }
  if (p.kind == OpKind::kRdmaAck) {
    if (p.corrupt) return;  // a corrupted ack is useless; timers recover
    auto it = unacked_.find({p.src, p.seq});
    if (it != unacked_.end()) {
      const Packet& original = it->second.packet;
      if (original.kind == OpKind::kSend) {
        // RC send semantics on a lossy link: the message is known delivered.
        NotifyDelivery();
        cq_.push_back(
            {original.tag, OpKind::kSend, original.dst, original.bytes, cycle});
      }
      unacked_.erase(it);
    }
    // Progress restarts the peer's timers: acks are flowing, so packets
    // still waiting are queued (behind our own tx serialization or the
    // peer's incast), not lost. Prevents spurious retransmits of deeply
    // pipelined transfers.
    for (auto& [key, u] : unacked_) {
      if (key.first == p.src) u.next_retry = cycle + u.rto;
    }
    return;
  }
  if (p.kind == OpKind::kRdmaNack) {
    if (p.corrupt) return;
    auto it = unacked_.find({p.src, p.seq});
    if (it != unacked_.end()) {
      Unacked& u = it->second;
      if (u.retries >= reliability_.max_retries) {
        FailOp(cycle, u.packet);
        unacked_.erase(it);
      } else {
        // The link works (the NACK made it back): resend immediately
        // without touching the backoff.
        ++u.retries;
        ++retransmits_;
        u.next_retry = cycle + u.rto;
        outbox_.push_back(u.packet);
      }
    }
    return;
  }
  if (p.seq == 0) {
    // Unsequenced datagram: switch-originated packets (an AggregatingSwitch
    // releases its combined responses with seq 0) bypass the ack/window
    // machinery — the switch already terminated the protocol for the
    // responses it absorbed. Endpoint-originated data always carries a seq
    // on a lossy fabric, so this lane never captures peer traffic.
    if (!p.corrupt) Dispatch(cycle, p);
    return;
  }
  // Sequenced data packet.
  if (p.corrupt) {
    Packet nack;
    nack.src = node_id_;
    nack.dst = p.src;
    nack.kind = OpKind::kRdmaNack;
    nack.seq = p.seq;
    outbox_.push_back(nack);
    ++nacks_sent_;
    return;
  }
  Packet ack;
  ack.src = node_id_;
  ack.dst = p.src;
  ack.kind = OpKind::kRdmaAck;
  ack.seq = p.seq;
  outbox_.push_back(ack);
  ++acks_sent_;
  RecvWindow& w = recv_window_[p.src];
  if (p.seq < w.next_expected || w.seen_ahead.count(p.seq) > 0) {
    ++duplicates_discarded_;  // already consumed; the re-ACK covers a lost ack
    return;
  }
  if (p.seq == w.next_expected) {
    ++w.next_expected;
    while (w.seen_ahead.erase(w.next_expected) > 0) ++w.next_expected;
  } else {
    w.seen_ahead.insert(p.seq);
  }
  Dispatch(cycle, p);
}

void RdmaEndpoint::Tick(sim::Cycle cycle) {
  bool progressed = false;
  auto& eg = fabric_->egress(node_id_);
  const bool rel = reliable();
  // Ship posted work requests to the NIC.
  while (!outbox_.empty() && eg.CanWrite()) {
    Packet p = outbox_.front();
    outbox_.pop_front();
    if (rel && IsSequenced(p.kind) && p.seq == 0) {
      // First transmission: stamp the per-destination sequence number and
      // arm the retransmission timer.
      p.seq = ++next_seq_[p.dst];
      const uint64_t rto = InitialRto(p);
      unacked_[{p.dst, p.seq}] = {p, cycle + rto, rto, 0};
    }
    eg.Write(p);
    if (!rel && p.kind == OpKind::kSend) {
      // Local send completion: the message left the NIC.
      NotifyDelivery();
      cq_.push_back({p.tag, OpKind::kSend, p.dst, p.bytes, cycle});
    }
    progressed = true;
  }
  // Service arrivals.
  auto& ig = fabric_->ingress(node_id_);
  while (ig.CanRead()) {
    HandleArrival(cycle, ig.Read());
    progressed = true;
  }
  if (rel) CheckRetransmits(cycle);
  if (progressed) MarkBusy();
}

void RdmaEndpoint::ExportCustomMetrics(obs::MetricsRegistry& registry) const {
  if (retransmits_ == 0 && acks_sent_ == 0 && nacks_sent_ == 0 &&
      duplicates_discarded_ == 0) {
    return;  // loss-free endpoints stay out of the registry
  }
  const std::string base = "net." + name();
  registry.GetGauge(base + ".retransmits")
      ->Set(static_cast<double>(retransmits_));
  registry.GetGauge(base + ".acks_sent")->Set(static_cast<double>(acks_sent_));
  registry.GetGauge(base + ".nacks_sent")
      ->Set(static_cast<double>(nacks_sent_));
  registry.GetGauge(base + ".duplicates_discarded")
      ->Set(static_cast<double>(duplicates_discarded_));
}

}  // namespace fpgadp::net
