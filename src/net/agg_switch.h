#ifndef FPGADP_NET_AGG_SWITCH_H_
#define FPGADP_NET_AGG_SWITCH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "src/net/fabric.h"
#include "src/sim/module.h"

namespace fpgadp::net {

/// In-network aggregation engine for mergeable gather responses — the
/// switch-resident combining the source paper motivates (and ACCL-style
/// collectives implement): instead of N response packets serializing
/// one after another through the destination's receive port, a per-port
/// combiner inside the switch folds them together at a modeled per-response
/// cost and releases ONE merged packet through the port. The incast wall
/// becomes a single serialization, and for shrinking merges (top-k) the
/// merged payload is smaller than the concatenation.
///
/// Not a sim::Module: the combiners live inside the switch, so the Fabric
/// drives them from its own Tick at the exact point a packet "is inside the
/// switch" (after the sender's tx serialization and the fault injector).
/// Attach with Fabric::set_agg_switch(). The control plane (Arm / Disarm /
/// KillPort) belongs to whoever owns the gather — the ShardCoordinator arms
/// a group per (request, port) at scatter and disarms it at finalize, so a
/// degraded gather can never strand held responses. Mutating it from a
/// coordinator Tick is safe because any engine containing a coordinator
/// ticks serially (the coordinator is not parallel-certified; see
/// sim::Engine).
///
/// Wire protocol: the switch combines kOffloadResp packets in merged form —
/// `user` = request id, `addr` = done-shard mask, `user2` = rejected-shard
/// mask, `bytes` = payload. A group completes when the union of its
/// contributions' masks covers the armed member mask; duplicates (lossy
/// retransmits) are mask-idempotent. On a lossy fabric the fabric
/// acknowledges absorbed sequenced packets on the combiner's behalf and the
/// merged packet travels unsequenced (seq 0) — the protocol terminates at
/// the switch, exactly like a real SmartSwitch offload.
class AggregatingSwitch {
 public:
  struct Config {
    /// Cycles the per-port combiner spends folding in one response.
    uint64_t combine_cycles_per_resp = 8;
  };

  /// Computes the merged payload size: (request_id, done_mask,
  /// concatenated_bytes) -> wire bytes. Runs inside Fabric::Tick, so it
  /// must be functional-only (shard::Workload::MergedBytes qualifies).
  using MergeSizer = std::function<uint64_t(uint64_t, uint64_t, uint64_t)>;

  AggregatingSwitch(const Config& config, MergeSizer sizer);

  // --- control plane (the gather owner) ---

  /// Opens the combine group for `request_id`'s responses arriving at
  /// fabric node `port`; the group completes when the contributions' masks
  /// cover `member_mask`.
  void Arm(uint64_t request_id, uint32_t port, uint64_t member_mask);
  /// Closes every group of `request_id` (gather finalized); held partial
  /// contributions are discarded.
  void Disarm(uint64_t request_id);
  /// Fault injection: the combiner on `port` dies. Held contributions are
  /// lost and every further response offered to the port's groups is
  /// consumed and dropped — the gather deadline is the caller's recovery.
  void KillPort(uint32_t port);

  // --- data plane (the Fabric) ---

  /// True when an armed group wants `p` (it never reaches the rx port).
  bool Wants(const Packet& p) const;

  /// The combined packet the switch releases when a group completes.
  struct Released {
    Packet packet;
    /// Cycle the combiner output is ready to start rx serialization.
    sim::Cycle ready_at = 0;
  };

  /// Folds one response into its group at switch-arrival cycle `at`.
  /// Returns the merged packet when this contribution completes the group.
  /// Precondition: Wants(p).
  std::optional<Released> Offer(sim::Cycle at, const Packet& p);

  /// Responses absorbed into groups that have not completed — the fabric
  /// counts these as in flight so the engine cannot quiesce around them.
  size_t held_responses() const { return held_; }

  uint64_t combines() const { return combines_; }
  uint64_t releases() const { return releases_; }
  /// Payload bytes the merge elided vs. forwarding every response.
  uint64_t bytes_elided() const { return bytes_elided_; }
  uint64_t dropped_dead_port() const { return dropped_dead_port_; }
  uint64_t duplicates_ignored() const { return duplicates_ignored_; }

 private:
  struct Group {
    uint64_t member_mask = 0;
    uint64_t done_mask = 0;
    uint64_t rejected_mask = 0;
    uint64_t concat_bytes = 0;
    uint32_t absorbed = 0;
    sim::Cycle combine_free = 0;  ///< The combiner pipeline's busy horizon.
  };

  Config config_;
  MergeSizer sizer_;
  std::map<std::pair<uint64_t, uint32_t>, Group> groups_;  ///< (req, port).
  std::set<uint32_t> dead_ports_;
  size_t held_ = 0;
  uint64_t combines_ = 0;
  uint64_t releases_ = 0;
  uint64_t bytes_elided_ = 0;
  uint64_t dropped_dead_port_ = 0;
  uint64_t duplicates_ignored_ = 0;
};

}  // namespace fpgadp::net

#endif  // FPGADP_NET_AGG_SWITCH_H_
