#ifndef FPGADP_NET_RDMA_H_
#define FPGADP_NET_RDMA_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/net/fabric.h"
#include "src/sim/module.h"

namespace fpgadp::net {

/// A completed verb, polled from the endpoint's completion queue.
struct Completion {
  uint64_t tag = 0;
  OpKind kind = OpKind::kSend;
  uint32_t peer = 0;
  uint64_t bytes = 0;
  sim::Cycle at = 0;  ///< Cycle at which the completion was generated.
};

/// Verbs-style RDMA endpoint ("one queue pair per peer" collapsed into a
/// single QP, which is what the open-source FPGA RDMA stacks the tutorial
/// cites expose to HLS kernels). Reliable-connection semantics:
///
///  * PostSend   — two-sided; remote side receives a Packet, local side
///                 completes when the NIC serializes the message.
///  * PostRead   — one-sided; header-only request travels to the target,
///                 whose NIC answers with the payload autonomously (no
///                 remote CPU/kernel involvement); completes on data arrival.
///  * PostWrite  — one-sided; payload travels out, hardware ACK completes it.
///
/// Packets of kind kOffloadReq/kOffloadResp are *not* auto-answered; they
/// surface in the receive queue for an upper layer (Farview) to serve.
class RdmaEndpoint : public sim::Module {
 public:
  RdmaEndpoint(std::string name, uint32_t node_id, Fabric* fabric);

  /// Posts verbs; safe to call before Run() or from another module's Tick().
  void PostSend(uint32_t dst, uint64_t bytes, uint64_t tag, uint64_t user = 0);
  void PostRead(uint32_t dst, uint64_t addr, uint64_t bytes, uint64_t tag);
  void PostWrite(uint32_t dst, uint64_t addr, uint64_t bytes, uint64_t tag);
  /// Posts a raw packet (used by upper layers for offload protocols).
  void PostPacket(Packet p);

  /// Pops one completion if available.
  bool PollCompletion(Completion* out);
  /// Pops one received message (kSend / kOffloadReq / kOffloadResp).
  bool PollRecv(Packet* out);

  size_t completions_available() const { return cq_.size(); }
  size_t recv_available() const { return rq_.size(); }
  uint32_t node_id() const { return node_id_; }

  void Tick(sim::Cycle cycle) override;
  bool Idle() const override { return outbox_.empty(); }

 private:
  uint32_t node_id_;
  Fabric* fabric_;
  std::deque<Packet> outbox_;
  std::deque<Completion> cq_;
  std::deque<Packet> rq_;
};

}  // namespace fpgadp::net

#endif  // FPGADP_NET_RDMA_H_
