#ifndef FPGADP_NET_RDMA_H_
#define FPGADP_NET_RDMA_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>

#include "src/common/status.h"
#include "src/net/fabric.h"
#include "src/sim/module.h"

namespace fpgadp::net {

/// A completed verb, polled from the endpoint's completion queue.
struct Completion {
  uint64_t tag = 0;
  OpKind kind = OpKind::kSend;
  uint32_t peer = 0;
  uint64_t bytes = 0;
  sim::Cycle at = 0;  ///< Cycle at which the completion was generated.
  /// kOk on success; kUnavailable when the op was abandoned after the
  /// retransmission retry cap (kind then names the original request).
  StatusCode status = StatusCode::kOk;
};

/// Verbs-style RDMA endpoint ("one queue pair per peer" collapsed into a
/// single QP, which is what the open-source FPGA RDMA stacks the tutorial
/// cites expose to HLS kernels). Reliable-connection semantics:
///
///  * PostSend   — two-sided; remote side receives a Packet, local side
///                 completes when the NIC serializes the message (loss-free
///                 fabric) or when the link-level ACK returns (lossy fabric).
///  * PostRead   — one-sided; header-only request travels to the target,
///                 whose NIC answers with the payload autonomously (no
///                 remote CPU/kernel involvement); completes on data arrival.
///  * PostWrite  — one-sided; payload travels out, hardware ACK completes it.
///
/// Packets of kind kOffloadReq/kOffloadResp are *not* auto-answered; they
/// surface in the receive queue for an upper layer (Farview) to serve.
///
/// On a lossy fabric (Fabric::lossy(), i.e. a FaultInjector is attached)
/// the endpoint adds a go-back-N-free link-level reliability layer, the
/// shape real RC queue pairs implement in NIC hardware:
///
///  * every outbound packet carries a per-destination sequence number;
///  * the receiver ACKs each sequenced packet (header-only kRdmaAck),
///    NACKs corrupted ones (kRdmaNack), and drops duplicates by seq;
///  * the sender retransmits unacked packets on a timeout that doubles per
///    retry (exponential backoff); a NACK retransmits immediately;
///  * after `Reliability::max_retries` retransmissions the op is abandoned:
///    a Completion with status kUnavailable is queued, failed() latches,
///    and status() surfaces Status::Unavailable.
///
/// On a loss-free fabric none of this machinery runs — wire traffic and
/// cycle counts are bit-identical to the no-injector behaviour.
class RdmaEndpoint : public sim::Module {
 public:
  /// Retransmission knobs for the lossy-fabric reliability layer.
  struct Reliability {
    /// Base retransmission timeout; per packet, twice the payload
    /// serialization time is added on top (big packets get longer timers).
    uint64_t rto_cycles = 2000;
    double backoff = 2.0;     ///< RTO multiplier per retry.
    uint32_t max_retries = 8; ///< Retransmissions before giving up.
  };

  RdmaEndpoint(std::string name, uint32_t node_id, Fabric* fabric,
               const Reliability& reliability);
  /// Convenience overload with default retransmission knobs.
  RdmaEndpoint(std::string name, uint32_t node_id, Fabric* fabric);

  /// Posts verbs; safe to call before Run() or from another module's Tick().
  void PostSend(uint32_t dst, uint64_t bytes, uint64_t tag, uint64_t user = 0);
  void PostRead(uint32_t dst, uint64_t addr, uint64_t bytes, uint64_t tag);
  void PostWrite(uint32_t dst, uint64_t addr, uint64_t bytes, uint64_t tag);
  /// Posts a raw packet (used by upper layers for offload protocols).
  void PostPacket(Packet p);

  /// Pops one completion if available.
  bool PollCompletion(Completion* out);
  /// Pops one received message (kSend / kOffloadReq / kOffloadResp).
  bool PollRecv(Packet* out);

  size_t completions_available() const { return cq_.size(); }
  size_t recv_available() const { return rq_.size(); }
  uint32_t node_id() const { return node_id_; }

  /// Registers the module that polls this endpoint's completion/receive
  /// queues. Under event-driven scheduling the endpoint wakes it whenever a
  /// tick is about to deliver a new completion or received message, so the
  /// poller may sleep between deliveries. Optional: pollers that never
  /// sleep (always-active modules) need no listener.
  void SetWakeListener(sim::Module* listener) { listener_ = listener; }

  /// True once any op exhausted its retry cap; status() then carries
  /// Status::Unavailable for the first such op.
  bool failed() const { return !status_.ok(); }
  const Status& status() const { return status_; }

  /// Lossy-mode protocol counters (all zero on a loss-free fabric).
  uint64_t retransmits() const { return retransmits_; }
  uint64_t acks_sent() const { return acks_sent_; }
  uint64_t nacks_sent() const { return nacks_sent_; }
  uint64_t duplicates_discarded() const { return duplicates_discarded_; }

  void Tick(sim::Cycle cycle) override;
  bool Idle() const override { return outbox_.empty() && unacked_.empty(); }

  /// Posted work ships next tick; otherwise the endpoint sleeps until its
  /// earliest retransmission timer (lossy mode) or an arrival (reactive).
  sim::Cycle NextEventCycle(sim::Cycle now) const override {
    if (!outbox_.empty()) return now;
    sim::Cycle earliest = sim::kNoEventCycle;
    for (const auto& [key, u] : unacked_) {
      if (u.next_retry < earliest) earliest = u.next_retry;
    }
    return earliest > now ? earliest : now;
  }

  void ExportCustomMetrics(obs::MetricsRegistry& registry) const override;

 private:
  /// A sequenced packet awaiting its link-level ACK.
  struct Unacked {
    Packet packet;
    sim::Cycle next_retry = 0;
    uint64_t rto = 0;
    uint32_t retries = 0;
  };
  /// Per-peer receive-side dedup window.
  struct RecvWindow {
    uint64_t next_expected = 1;
    std::set<uint64_t> seen_ahead;  // out-of-order seqs already consumed
  };

  bool reliable() const { return fabric_->lossy(); }
  void NotifyDelivery();
  void HandleArrival(sim::Cycle cycle, Packet p);
  void Dispatch(sim::Cycle cycle, const Packet& p);
  void CheckRetransmits(sim::Cycle cycle);
  void FailOp(sim::Cycle cycle, const Packet& p);
  uint64_t InitialRto(const Packet& p) const;

  uint32_t node_id_;
  Fabric* fabric_;
  Reliability reliability_;
  std::deque<Packet> outbox_;
  std::deque<Completion> cq_;
  std::deque<Packet> rq_;
  std::map<uint32_t, uint64_t> next_seq_;  ///< Per-destination tx sequence.
  std::map<std::pair<uint32_t, uint64_t>, Unacked> unacked_;  ///< (dst, seq).
  std::map<uint32_t, RecvWindow> recv_window_;  ///< Per-source dedup.
  sim::Module* listener_ = nullptr;  ///< Woken before cq_/rq_ deliveries.
  Status status_;
  uint64_t retransmits_ = 0;
  uint64_t acks_sent_ = 0;
  uint64_t nacks_sent_ = 0;
  uint64_t duplicates_discarded_ = 0;
};

}  // namespace fpgadp::net

#endif  // FPGADP_NET_RDMA_H_
