#include "src/kvs/smart_kvs.h"

#include "src/common/check.h"
#include "src/common/units.h"
#include "src/relational/sketches.h"
#include "src/sim/engine.h"

namespace fpgadp::kvs {

uint64_t SmartNicKvs::DramLatencyCycles(const Config& config) {
  return NanosToCycles(config.dram_latency_ns, config.clock_hz);
}

double SmartNicKvs::DramCyclesPerOp(const Config& config) {
  // One 64-byte bucket line per op at the channel's bus bandwidth — the
  // same access_granularity the internal MemoryChannel is configured with.
  return 64.0 * config.clock_hz / config.dram_bytes_per_sec;
}

SmartNicKvs::SmartNicKvs(std::string name, uint32_t node_id,
                         net::Fabric* fabric, const Config& config)
    : sim::Module(std::move(name)), node_id_(node_id), fabric_(fabric),
      config_(config),
      dram_req_(this->name() + ".dreq", 16),
      dram_resp_(this->name() + ".dresp", 16),
      dram_(this->name() + ".dram", &dram_req_, &dram_resp_,
            [&] {
              mem::MemoryChannel::Config mc;
              mc.latency_ns = config.dram_latency_ns;
              mc.bytes_per_sec = config.dram_bytes_per_sec;
              mc.clock_hz = config.clock_hz;
              mc.access_granularity = 64;  // one bucket line
              mc.max_outstanding = config.max_outstanding;
              return mc;
            }()) {
  FPGADP_CHECK(fabric_ != nullptr);
}

void SmartNicKvs::RegisterWith(sim::Engine& engine) {
  engine.AddModule(this);
  engine.AddModule(&dram_);
  engine.AddStream(&dram_req_);
  engine.AddStream(&dram_resp_);
}

void SmartNicKvs::Tick(sim::Cycle) {
  bool progressed = false;
  auto& ig = fabric_->ingress(node_id_);
  auto& eg = fabric_->egress(node_id_);

  // Admit arriving requests into the pipeline: every op costs one bucket
  // access in NIC DRAM (hash computed combinationally).
  while (ig.CanRead() && in_flight_.size() < config_.max_outstanding &&
         dram_req_.CanWrite()) {
    net::Packet req = ig.Read();
    if (req.corrupt) {
      // Failed CRC: the request's key/value cannot be trusted. Drop it;
      // the client's retry timer re-issues the (idempotent) op.
      ++corrupt_discarded_;
      progressed = true;
      continue;
    }
    const uint64_t tag = next_dram_tag_++;
    const uint64_t bucket_addr = rel::Hash64(req.addr) % (1ull << 30);
    const bool is_put = req.user == uint64_t(KvOp::kPutReq);
    dram_req_.Write({tag, bucket_addr, 64, is_put});
    in_flight_.emplace(tag, Pending{req});
    progressed = true;
  }
  // Completed bucket accesses: run the functional op and answer.
  while (dram_resp_.CanRead() && eg.CanWrite()) {
    const auto done = dram_resp_.Read();
    auto it = in_flight_.find(done.id);
    FPGADP_CHECK(it != in_flight_.end());
    const net::Packet& req = it->second.request;
    net::Packet resp;
    resp.src = node_id_;
    resp.dst = req.src;
    resp.tag = req.tag;
    resp.addr = req.addr;  // echo the key
    if (req.user == uint64_t(KvOp::kGetReq)) {
      ++gets_;
      auto hit = store_.find(req.addr);
      resp.user = uint64_t(KvOp::kGetResp);
      if (hit != store_.end()) {
        ++hits_;
        resp.bytes = config_.value_bytes;
        resp.user2 = hit->second;  // the stored value
      } else {
        resp.bytes = 0;
      }
    } else {
      ++puts_;
      store_[req.addr] = req.user2;
      resp.user = uint64_t(KvOp::kPutResp);
      resp.bytes = 0;
    }
    eg.Write(resp);
    in_flight_.erase(it);
    progressed = true;
  }
  if (progressed) MarkBusy();
}

KvClient::KvClient(std::string name, uint32_t node_id, uint32_t server,
                   net::Fabric* fabric, const Retry& retry)
    : sim::Module(std::move(name)), node_id_(node_id), server_(server),
      fabric_(fabric), retry_(retry) {
  FPGADP_CHECK(fabric_ != nullptr);
  FPGADP_CHECK(retry_.backoff >= 1.0);
}

KvClient::KvClient(std::string name, uint32_t node_id, uint32_t server,
                   net::Fabric* fabric)
    : KvClient(std::move(name), node_id, server, fabric, Retry()) {}

bool KvClient::reliable() const { return fabric_->lossy(); }

void KvClient::Get(uint64_t key, uint64_t tag) {
  net::Packet p;
  p.src = node_id_;
  p.dst = server_;
  p.user = uint64_t(KvOp::kGetReq);
  p.addr = key;
  p.bytes = 0;
  p.tag = tag;
  queue_.push_back(p);
}

void KvClient::Put(uint64_t key, uint64_t value, uint64_t tag) {
  net::Packet p;
  p.src = node_id_;
  p.dst = server_;
  p.user = uint64_t(KvOp::kPutReq);
  p.user2 = value;
  p.addr = key;
  p.bytes = 64;  // value payload travels with the request
  p.tag = tag;
  queue_.push_back(p);
}

bool KvClient::PollResponse(net::Packet* out) {
  if (responses_q_.empty()) return false;
  *out = responses_q_.front();
  responses_q_.pop_front();
  return true;
}

void KvClient::Tick(sim::Cycle cycle) {
  bool progressed = false;
  const bool rel = reliable();
  auto& eg = fabric_->egress(node_id_);
  while (!queue_.empty() && eg.CanWrite()) {
    const net::Packet& p = queue_.front();
    if (rel && outstanding_.find(p.tag) == outstanding_.end()) {
      // First transmission: arm the at-least-once retry timer.
      const uint64_t rto =
          retry_.rto_cycles + 2 * fabric_->SerializationCycles(p.bytes);
      outstanding_[p.tag] = {p, cycle + rto, rto, 0};
    }
    eg.Write(p);
    queue_.pop_front();
    progressed = true;
  }
  auto& ig = fabric_->ingress(node_id_);
  while (ig.CanRead()) {
    net::Packet p = ig.Read();
    progressed = true;
    if (rel) {
      if (p.corrupt) {
        ++corrupt_discarded_;  // the retry timer covers the lost response
        continue;
      }
      auto it = outstanding_.find(p.tag);
      if (it == outstanding_.end()) {
        ++duplicates_discarded_;  // a late response for a retried request
        continue;
      }
      outstanding_.erase(it);
      // Progress restarts the timers of requests still queued behind the
      // server's pipeline, preventing spurious retries under deep load.
      for (auto& [tag, o] : outstanding_) o.next_retry = cycle + o.rto;
    }
    responses_q_.push_back(p);
    ++responses_;
  }
  if (rel) {
    for (auto it = outstanding_.begin(); it != outstanding_.end();) {
      Outstanding& o = it->second;
      if (cycle < o.next_retry) {
        ++it;
        continue;
      }
      if (o.retries_done >= retry_.max_retries) {
        if (status_.ok()) {
          status_ = Status::Unavailable(
              name() + ": request tag " + std::to_string(it->first) +
              " gave up after " + std::to_string(retry_.max_retries) +
              " retries");
        }
        it = outstanding_.erase(it);
        progressed = true;
        continue;
      }
      ++o.retries_done;
      ++retries_;
      o.rto = static_cast<uint64_t>(double(o.rto) * retry_.backoff);
      o.next_retry = cycle + o.rto;
      queue_.push_back(o.request);
      progressed = true;
      ++it;
    }
  }
  if (progressed) MarkBusy();
}

}  // namespace fpgadp::kvs
