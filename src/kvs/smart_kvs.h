#ifndef FPGADP_KVS_SMART_KVS_H_
#define FPGADP_KVS_SMART_KVS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/memory/channel.h"
#include "src/net/fabric.h"
#include "src/sim/module.h"
#include "src/sim/stream.h"

namespace fpgadp::kvs {

/// Wire encoding for KV operations, carried in Packet::user.
enum class KvOp : uint64_t {
  kGetReq = 1,
  kPutReq = 2,
  kGetResp = 3,
  kPutResp = 4,
};

/// KV-Direct (SOSP'17, tutorial §1 ref [26]): a key-value store served
/// entirely by an FPGA smart NIC — requests arrive over the network, the
/// NIC pipeline hashes, reads/writes NIC-attached DRAM, and answers
/// without ever waking the host CPU. Throughput is bounded by the NIC's
/// DRAM random-access pipeline and the line rate, not by a software stack.
///
/// Functional contents live in a hash map; timing is modeled per request:
/// a one-cycle pipeline slot plus a (pipelined) DRAM access per bucket.
class SmartNicKvs : public sim::Module {
 public:
  struct Config {
    uint32_t value_bytes = 64;     ///< Payload size of a stored value.
    double dram_latency_ns = 90;   ///< NIC-attached DRAM.
    double dram_bytes_per_sec = 19.2e9;
    double clock_hz = 200e6;
    uint32_t max_outstanding = 64; ///< Requests in the NIC pipeline.
  };

  SmartNicKvs(std::string name, uint32_t node_id, net::Fabric* fabric,
              const Config& config);

  /// Fill latency of the NIC DRAM pipeline, in kernel cycles — what the
  /// first bucket access of a batch waits.
  static uint64_t DramLatencyCycles(const Config& config);
  /// Pipelined bus occupancy of one 64-byte bucket access, in kernel
  /// cycles (fractional: the bus retires more than one line per cycle).
  static double DramCyclesPerOp(const Config& config);

  /// Registers the NIC and its internal DRAM channel with `engine`.
  void RegisterWith(sim::Engine& engine);

  void Tick(sim::Cycle cycle) override;
  bool Idle() const override { return in_flight_.empty(); }

  uint64_t gets() const { return gets_; }
  uint64_t puts() const { return puts_; }
  uint64_t hits() const { return hits_; }
  size_t size() const { return store_.size(); }
  /// Requests dropped because their payload failed its CRC (lossy fabric
  /// only); the client's retry timer re-issues them.
  uint64_t corrupt_discarded() const { return corrupt_discarded_; }

 private:
  struct Pending {
    net::Packet request;
  };

  uint32_t node_id_;
  net::Fabric* fabric_;
  Config config_;
  sim::Stream<mem::MemRequest> dram_req_;
  sim::Stream<mem::MemResponse> dram_resp_;
  mem::MemoryChannel dram_;
  std::unordered_map<uint64_t, uint64_t> store_;
  std::unordered_map<uint64_t, Pending> in_flight_;  // by dram tag
  uint64_t next_dram_tag_ = 0;
  uint64_t gets_ = 0, puts_ = 0, hits_ = 0;
  uint64_t corrupt_discarded_ = 0;
};

/// A client issuing GET/PUT requests over the fabric and collecting
/// responses. Keeps a configurable number of requests outstanding so the
/// NIC pipeline stays full (the closed-loop load generator KV-Direct uses).
///
/// On a lossy fabric (Fabric::lossy()) the client adds at-least-once
/// request/response retry, which is all an idempotent KV protocol needs:
/// each request is tracked by its tag and re-issued on a timeout with
/// exponential backoff; responses for unknown tags (late duplicates) and
/// corrupted packets are discarded. A request exceeding the retry cap
/// latches failed() and surfaces Status::Unavailable. Tags must be unique
/// among in-flight requests for the dedup to work.
class KvClient : public sim::Module {
 public:
  /// Retry knobs for the lossy-fabric at-least-once protocol.
  struct Retry {
    uint64_t rto_cycles = 2000;
    double backoff = 2.0;
    uint32_t max_retries = 8;
  };

  KvClient(std::string name, uint32_t node_id, uint32_t server,
           net::Fabric* fabric, const Retry& retry);
  /// Convenience overload with default retry knobs.
  KvClient(std::string name, uint32_t node_id, uint32_t server,
           net::Fabric* fabric);

  /// Queues a request (sent as pipeline slots free up).
  void Get(uint64_t key, uint64_t tag);
  void Put(uint64_t key, uint64_t value, uint64_t tag);

  /// Pops one response: kind is kGetResp/kPutResp; addr echoes the key,
  /// bytes carries the value payload size (GET hits only).
  bool PollResponse(net::Packet* out);

  void Tick(sim::Cycle cycle) override;
  bool Idle() const override {
    return queue_.empty() && outstanding_.empty();
  }

  uint64_t responses_received() const { return responses_; }

  /// True once any request exhausted its retry cap (lossy fabric only).
  bool failed() const { return !status_.ok(); }
  const Status& status() const { return status_; }

  /// Lossy-mode protocol counters (all zero on a loss-free fabric).
  uint64_t retries() const { return retries_; }
  uint64_t duplicates_discarded() const { return duplicates_discarded_; }
  uint64_t corrupt_discarded() const { return corrupt_discarded_; }

 private:
  /// A request awaiting its response (lossy mode only).
  struct Outstanding {
    net::Packet request;
    sim::Cycle next_retry = 0;
    uint64_t rto = 0;
    uint32_t retries_done = 0;
  };

  bool reliable() const;

  uint32_t node_id_;
  uint32_t server_;
  net::Fabric* fabric_;
  Retry retry_;
  std::deque<net::Packet> queue_;
  std::deque<net::Packet> responses_q_;
  std::map<uint64_t, Outstanding> outstanding_;  ///< Keyed by request tag.
  Status status_;
  uint64_t responses_ = 0;
  uint64_t retries_ = 0;
  uint64_t duplicates_discarded_ = 0;
  uint64_t corrupt_discarded_ = 0;
};

/// Deterministic software-KVS baseline: a kernel-bypass server still pays
/// a per-op software cost (hash, allocation, batching) per core.
struct CpuKvsModel {
  double ns_per_op = 500;
  uint32_t cores = 16;

  double OpsPerSec() const { return double(cores) * 1e9 / ns_per_op; }
};

}  // namespace fpgadp::kvs

#endif  // FPGADP_KVS_SMART_KVS_H_
