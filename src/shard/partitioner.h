#ifndef FPGADP_SHARD_PARTITIONER_H_
#define FPGADP_SHARD_PARTITIONER_H_

#include <cstdint>
#include <vector>

namespace fpgadp::shard {

/// How a Partitioner maps keys to shards.
enum class PartitionScheme : uint8_t {
  kHash = 0,        ///< Hash64(key) % n — balanced for arbitrary key sets.
  kModulo = 1,      ///< key % n — balanced ONLY for dense id spaces.
  kRange = 2,       ///< Upper-bound table — ordered key ranges per shard.
  kRoundRobin = 3,  ///< Stateful cursor over call order; ignores the key.
};

/// Maps a 64-bit key (a KV key, a join key, an IVF list id) to one of N
/// shards — the split a scale-out deployment applies before any packet
/// leaves the coordinator. Hash/modulo/range are deterministic and
/// stateless, so the coordinator, the shard servers, and a test oracle all
/// agree on ownership without exchanging metadata.
///
/// Round-robin is the one stateful scheme: ShardOf advances an internal
/// cursor and returns shards 0, 1, ..., n-1, 0, ... in call order,
/// regardless of the key. That balances within ±1 on ANY key distribution
/// (modulo skews catastrophically on strided keys: all-even keys on two
/// shards all land on shard 0), but ownership cannot be re-derived from the
/// key alone — use it for load spreading (scatter order), not for
/// ownership-partitioned state.
class Partitioner {
 public:
  /// Hash partitioning over Hash64(key); the default for KVS keys and join
  /// keys, where the key distribution is arbitrary.
  static Partitioner Hash(uint32_t num_shards);

  /// Modulo partitioning over the raw key value (key % n); only safe for
  /// dense id spaces such as IVF list ids, where hashing would merely
  /// shuffle an already-uniform assignment. Strided key sets skew badly.
  static Partitioner Modulo(uint32_t num_shards);

  /// True round-robin: a stateful cursor that cycles the shards in call
  /// order and ignores the key entirely. Balanced within ±1 on any input.
  static Partitioner RoundRobin(uint32_t num_shards);

  /// Range partitioning: shard i owns keys <= upper_bounds[i] (and shard
  /// n-1 additionally owns everything above the last bound). Bounds must be
  /// strictly increasing and non-empty.
  static Partitioner Range(std::vector<uint64_t> upper_bounds);

  /// Maps `key` to a shard. Non-const because kRoundRobin advances its
  /// cursor; the stateless schemes never mutate.
  uint32_t ShardOf(uint64_t key);

  uint32_t num_shards() const { return num_shards_; }
  PartitionScheme scheme() const { return scheme_; }

 private:
  Partitioner(PartitionScheme scheme, uint32_t num_shards,
              std::vector<uint64_t> bounds)
      : scheme_(scheme), num_shards_(num_shards), bounds_(std::move(bounds)) {}

  PartitionScheme scheme_;
  uint32_t num_shards_;
  uint64_t cursor_ = 0;           ///< kRoundRobin only.
  std::vector<uint64_t> bounds_;  ///< kRange only.
};

}  // namespace fpgadp::shard

#endif  // FPGADP_SHARD_PARTITIONER_H_
