#ifndef FPGADP_SHARD_PARTITIONER_H_
#define FPGADP_SHARD_PARTITIONER_H_

#include <cstdint>
#include <vector>

namespace fpgadp::shard {

/// How a Partitioner maps keys to shards.
enum class PartitionScheme : uint8_t {
  kHash = 0,        ///< Hash64(key) % n — balanced for arbitrary key sets.
  kRoundRobin = 1,  ///< key % n — balanced for dense id spaces (IVF lists).
  kRange = 2,       ///< Upper-bound table — ordered key ranges per shard.
};

/// Maps a 64-bit key (a KV key, a join key, an IVF list id) to one of N
/// shards — the split a scale-out deployment applies before any packet
/// leaves the coordinator. Deterministic and stateless, so the coordinator,
/// the shard servers, and a test oracle all agree on ownership without
/// exchanging metadata.
class Partitioner {
 public:
  /// Hash partitioning over Hash64(key); the default for KVS keys and join
  /// keys, where the key distribution is arbitrary.
  static Partitioner Hash(uint32_t num_shards);

  /// Round-robin over the raw key value; the right split for dense id
  /// spaces such as IVF list ids, where hashing would only shuffle an
  /// already-uniform assignment.
  static Partitioner RoundRobin(uint32_t num_shards);

  /// Range partitioning: shard i owns keys <= upper_bounds[i] (and shard
  /// n-1 additionally owns everything above the last bound). Bounds must be
  /// strictly increasing and non-empty.
  static Partitioner Range(std::vector<uint64_t> upper_bounds);

  uint32_t ShardOf(uint64_t key) const;

  uint32_t num_shards() const { return num_shards_; }
  PartitionScheme scheme() const { return scheme_; }

 private:
  Partitioner(PartitionScheme scheme, uint32_t num_shards,
              std::vector<uint64_t> bounds)
      : scheme_(scheme), num_shards_(num_shards), bounds_(std::move(bounds)) {}

  PartitionScheme scheme_;
  uint32_t num_shards_;
  std::vector<uint64_t> bounds_;  ///< kRange only.
};

}  // namespace fpgadp::shard

#endif  // FPGADP_SHARD_PARTITIONER_H_
