#ifndef FPGADP_SHARD_PARTITIONER_H_
#define FPGADP_SHARD_PARTITIONER_H_

#include <cstdint>
#include <vector>

namespace fpgadp::shard {

/// How a Partitioner maps keys to shards.
enum class PartitionScheme : uint8_t {
  kHash = 0,        ///< Hash64(key) % n — balanced for arbitrary key sets.
  kModulo = 1,      ///< key % n — balanced ONLY for dense id spaces.
  kRange = 2,       ///< Upper-bound table — ordered key ranges per shard.
  kRoundRobin = 3,  ///< Stateful cursor over call order; ignores the key.
};

/// Maps a 64-bit key (a KV key, a join key, an IVF list id) to one of N
/// shards — the split a scale-out deployment applies before any packet
/// leaves the coordinator. Hash/modulo/range are deterministic and
/// stateless, so the coordinator, the shard servers, and a test oracle all
/// agree on ownership without exchanging metadata.
///
/// Round-robin is the one stateful scheme: ShardOf advances an internal
/// cursor and returns shards 0, 1, ..., n-1, 0, ... in call order,
/// regardless of the key. That balances within ±1 on ANY key distribution
/// (modulo skews catastrophically on strided keys: all-even keys on two
/// shards all land on shard 0), but ownership cannot be re-derived from the
/// key alone — use it for load spreading (scatter order), not for
/// ownership-partitioned state.
class Partitioner {
 public:
  /// Hash partitioning over Hash64(key); the default for KVS keys and join
  /// keys, where the key distribution is arbitrary.
  static Partitioner Hash(uint32_t num_shards);

  /// Modulo partitioning over the raw key value (key % n); only safe for
  /// dense id spaces such as IVF list ids, where hashing would merely
  /// shuffle an already-uniform assignment. Strided key sets skew badly.
  static Partitioner Modulo(uint32_t num_shards);

  /// True round-robin: a stateful cursor that cycles the shards in call
  /// order and ignores the key entirely. Balanced within ±1 on any input.
  static Partitioner RoundRobin(uint32_t num_shards);

  /// Range partitioning: shard i owns keys <= upper_bounds[i] (and shard
  /// n-1 additionally owns everything above the last bound). Bounds must be
  /// strictly increasing and non-empty.
  static Partitioner Range(std::vector<uint64_t> upper_bounds);

  /// Maps `key` to a shard. Non-const because kRoundRobin advances its
  /// cursor; the stateless schemes never mutate.
  uint32_t ShardOf(uint64_t key);

  /// Ownership lookup without side effects: identical to ShardOf for the
  /// stateless schemes, CHECK-fails for kRoundRobin (round-robin placement
  /// is call-order state, not key ownership — a second lookup would lie).
  uint32_t OwnerOf(uint64_t key) const;

  /// kRange only: reassigns every key in [lo, hi] (inclusive) to `to`.
  /// Splits the segment table at the range edges, so repeated migrations
  /// can carve arbitrary ownership maps out of the initial contiguous
  /// ranges. The original bounds are untouched until the first move, which
  /// keeps an unmigrated partitioner bit-identical to the historical one.
  void MoveRange(uint64_t lo, uint64_t hi, uint32_t to);

  /// kRange only: true when every key in [lo, hi] is currently owned by
  /// `shard` — the precondition a MigrationPlan must satisfy (state can
  /// only stream out of the shard that actually holds it).
  bool RangeOwnedBy(uint64_t lo, uint64_t hi, uint32_t shard) const;

  uint32_t num_shards() const { return num_shards_; }
  PartitionScheme scheme() const { return scheme_; }

 private:
  Partitioner(PartitionScheme scheme, uint32_t num_shards,
              std::vector<uint64_t> bounds)
      : scheme_(scheme), num_shards_(num_shards), bounds_(std::move(bounds)) {}

  /// kRange: expands the implicit bound->index ownership into explicit
  /// segments (owners_ parallel to bounds_, final bound UINT64_MAX) the
  /// first time a range moves.
  void MaterializeSegments();

  PartitionScheme scheme_;
  uint32_t num_shards_;
  uint64_t cursor_ = 0;           ///< kRoundRobin only.
  std::vector<uint64_t> bounds_;  ///< kRange: inclusive segment upper bounds.
  std::vector<uint32_t> owners_;  ///< kRange: segment owners; empty until the
                                  ///< first MoveRange (identity mapping).
};

}  // namespace fpgadp::shard

#endif  // FPGADP_SHARD_PARTITIONER_H_
