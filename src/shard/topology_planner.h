#ifndef FPGADP_SHARD_TOPOLOGY_PLANNER_H_
#define FPGADP_SHARD_TOPOLOGY_PLANNER_H_

#include <cstdint>
#include <string>

#include "src/shard/gather.h"

namespace fpgadp::shard {

class ShardCoordinator;
class Workload;

/// Everything the topology picker knows about one request class, all
/// harvestable from a short probe run (coordinator estimators + fabric
/// gauges) or from the workload's own descriptors. Integer-only so the
/// decision is bit-identical across hosts and engines.
struct PlannerInputs {
  uint32_t num_shards = 1;
  /// Coordinator ports the deployment can spend (flat-N / switch / tree
  /// all fan the shards over min(max_ports, num_shards) ports).
  uint32_t max_ports = 4;
  /// Whether a net::AggregatingSwitch is available on this fabric.
  bool switch_available = true;
  /// Average request-slice wire bytes (coordinator's observed mean).
  uint64_t request_bytes = 0;
  /// Portion of every slice that is identical across shards
  /// (Workload::ScatterSharedBytes) — what a scatter-tree bundle ships
  /// once per subtree instead of once per shard.
  uint64_t shared_request_bytes = 0;
  /// Average per-slice response wire bytes.
  uint64_t response_bytes = 0;
  /// Merged-over-concatenated response size, in percent (from
  /// Workload::MergedBytes). 100 = merging never shrinks (KVS multi-get);
  /// ANNS top-k at 8 shards sits near 13.
  uint32_t shrink_pct = 100;
  /// Slowest shard's EWMA service estimate (coordinator estimator) — the
  /// serve term every topology is stuck behind.
  uint64_t service_estimate_cycles = 0;
  /// Mean of the per-shard EWMA service estimates. A wide max/mean gap on
  /// a compute-bound cluster means the partitioner, not the fabric, is the
  /// bottleneck — the picker then recommends balanced scatter placement.
  uint64_t service_estimate_mean_cycles = 0;
  /// Observed minimum request->response wire time (coordinator estimator).
  /// Constant across candidates; folded into the reported cost.
  uint64_t wire_estimate_cycles = 0;
  /// Port-0 receive occupancy over the probe window, in percent
  /// (fabric rx_busy_cycles / elapsed). Below kComputeBoundPct the
  /// cluster is compute-bound and topology cannot matter.
  uint32_t root_uplink_occupancy_pct = 100;
  /// Fabric facts (net::Fabric defaults: 64 B header, 62.5 B/cycle).
  uint64_t header_bytes = 64;
  uint64_t bytes_per_cycle_x16 = 1000;
  /// Tree / switch engine costs (GatherConfig defaults).
  uint64_t merge_cycles_per_input = 4;
  uint64_t switch_combine_cycles = 8;
  uint32_t fanout = 2;
};

/// One picked topology plus the evidence: the modeled bottleneck cost per
/// request and a one-line human-readable rationale (surfaced in bench
/// metrics and FrontDoor logs).
struct TopologyDecision {
  GatherConfig gather;
  uint64_t cost_cycles = 0;
  /// Compute-bound and service-imbalanced: the picker recommends cost-
  /// balanced scatter placement (workloads that can re-home slices apply
  /// it, e.g. AnnsTopKWorkload::Config::balance_scatter).
  bool balance_scatter = false;
  std::string rationale;
};

/// The cost-model topology picker behind --gather=auto: ranks flat,
/// flat-N, switch and tree gather by a per-request bottleneck model and
/// returns the cheapest as a ready-to-use GatherConfig.
///
/// The model scores each candidate as the max of its serialization terms
/// (slowest-shard service, per-port response ingress, per-port request
/// egress) plus any additive latency the shape introduces (tree depth).
/// Ties break toward the simpler shape: flat < flat-N < switch < tree.
/// When the probe shows the root uplink mostly idle the cluster is
/// compute-bound and the picker short-circuits to single-port flat —
/// no response topology can buy back cycles the shards spend scanning.
///
/// A tree pick also rides the request path down the same tree
/// (ScatterMode::kTree, pipelined merge) whenever the request slices
/// share bytes worth multicasting.
class TopologyPlanner {
 public:
  /// Root-uplink occupancy (percent) below which the cluster is treated
  /// as compute-bound.
  static constexpr uint32_t kComputeBoundPct = 15;

  static TopologyDecision Choose(const PlannerInputs& in);

  /// Wire cycles for one packet of `payload_bytes` under `in`'s fabric
  /// facts (header included, cut-through, rounded up). Exposed for tests.
  static uint64_t WireCycles(const PlannerInputs& in, uint64_t payload_bytes);
};

/// Fills PlannerInputs from a drained probe cluster: the coordinator's
/// EWMA service/wire estimators and byte observations, the workload's
/// shared-bytes and merge-shrink descriptors, and the root-uplink
/// occupancy derived from observed response serialization over
/// `elapsed_cycles`. The probe should be a short single-port flat run of
/// the request class being planned — what a deployment observes before
/// reconfiguring. `probe_request` is any request id the probe served.
PlannerInputs HarvestPlannerInputs(const ShardCoordinator& coord,
                                   Workload& workload, uint32_t num_shards,
                                   uint64_t elapsed_cycles,
                                   uint64_t probe_request = 0);

}  // namespace fpgadp::shard

#endif  // FPGADP_SHARD_TOPOLOGY_PLANNER_H_
