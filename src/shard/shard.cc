#include "src/shard/shard.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/net/agg_switch.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace fpgadp::shard {

namespace {
// Forwarded kOffloadReq marker (Packet::addr): bit 63 set, low bits = the
// slice's original scatter shard. Ordinary flat-gather requests carry
// addr = 0, so the flag cannot collide.
constexpr uint64_t kForwardFlag = 1ull << 63;
// Scatter-tree bundle marker (Packet::addr): bit 62 set. Migration
// forwarding (kForwardFlag) requires unicast scatter and bundles require
// tree scatter, so the two flags never meet on one packet.
constexpr uint64_t kScatterFlag = 1ull << 62;
}  // namespace

const char* SubOutcomeName(SubOutcome outcome) {
  switch (outcome) {
    case SubOutcome::kPending: return "pending";
    case SubOutcome::kDone: return "done";
    case SubOutcome::kRejected: return "rejected";
    case SubOutcome::kFailed: return "failed";
    case SubOutcome::kTimedOut: return "timed_out";
  }
  return "unknown";
}

ShardCoordinator::ShardCoordinator(std::string name, Workload* workload,
                                   std::vector<net::RdmaEndpoint*> endpoints,
                                   GatherPlan* plan,
                                   net::AggregatingSwitch* agg_switch,
                                   uint32_t num_shards, const Config& config,
                                   ElasticState* elastic)
    : sim::Module(std::move(name)), workload_(workload),
      endpoints_(std::move(endpoints)), plan_(plan), agg_switch_(agg_switch),
      num_shards_(num_shards), config_(config), elastic_(elastic) {
  FPGADP_CHECK(workload_ != nullptr);
  FPGADP_CHECK(plan_ != nullptr);
  FPGADP_CHECK(endpoints_.size() == plan_->ports());
  for (net::RdmaEndpoint* ep : endpoints_) FPGADP_CHECK(ep != nullptr);
  FPGADP_CHECK((agg_switch_ != nullptr) ==
               (plan_->topology() == GatherTopology::kSwitch));
  FPGADP_CHECK(num_shards_ > 0);
  FPGADP_CHECK(config_.window > 0);
  FPGADP_CHECK(config_.feasibility_headroom_pct > 0 &&
               config_.feasibility_headroom_pct <= 100);
  // Event-safe: NextEventCycle covers queued slices, gather and beacon
  // deadlines; the endpoints wake the coordinator on every delivery; and
  // ingress (Submit / TrySubmit via Enqueue) self-wakes. A skipped window
  // is a run of no-progress ticks, which AttributeSkip reproduces.
  for (net::RdmaEndpoint* ep : endpoints_) ep->SetWakeListener(this);
  SetEventSafe();
  shard_queue_.resize(num_shards_);
  in_flight_.assign(num_shards_, 0);
  queue_hwm_.assign(num_shards_, 0);
  svc_est_x16_.assign(num_shards_,
                      config_.initial_service_estimate_cycles << 4);
  pending_cost_.assign(num_shards_, 0);
  wire_est_ = config_.initial_wire_estimate_cycles;
  promo_until_.assign(num_shards_, 0);
  if (elastic_ != nullptr) {
    FPGADP_CHECK(elastic_->replicas.num_shards() == num_shards_);
    FPGADP_CHECK(elastic_->replicas.replication_factor() ==
                 plan_->replicas());
  }
}

void ShardCoordinator::Submit(uint64_t request_id) {
  const std::vector<SubRequest> subs = workload_->Scatter(request_id);
  Enqueue(request_id, subs);
}

uint64_t ShardCoordinator::EstimateFor(const SubRequest& sub) const {
  return sub.est_service_cycles > 0 ? sub.est_service_cycles
                                    : svc_est_x16_[sub.shard] >> 4;
}

bool ShardCoordinator::TrySubmit(uint64_t request_id,
                                 const std::vector<SubRequest>& subs,
                                 sim::Cycle now, uint64_t deadline_budget_cycles) {
  switch (config_.admission) {
    case AdmissionPolicy::kQueueDepth:
      if (config_.max_pending > 0 && active_.size() >= config_.max_pending) {
        ++ingress_shed_;
        return false;
      }
      break;
    case AdmissionPolicy::kDeadlineFeasible: {
      const uint64_t budget =
          deadline_budget_cycles * config_.feasibility_headroom_pct / 100;
      for (const SubRequest& sr : subs) {
        FPGADP_CHECK(sr.shard < num_shards_);
        // A shard inside its promotion window is replaying in-flight
        // slices onto a cold standby; charge the remaining window so the
        // front door sheds into the recovery gap instead of piling on.
        const uint64_t eta = wire_est_ + pending_cost_[sr.shard] +
                             EstimateFor(sr) +
                             PromotionPenalty(sr.shard, now);
        if (eta > budget) {
          ++ingress_shed_;
          return false;
        }
      }
      break;
    }
  }
  Enqueue(request_id, subs);
  return true;
}

void ShardCoordinator::Enqueue(uint64_t request_id,
                               const std::vector<SubRequest>& subs) {
  // Wake BEFORE mutating: if the coordinator was sleeping, its skipped
  // cycles are attributed against the pre-enqueue state the serial loop
  // would have observed (see Module::WakeUp).
  WakeUp();
  FPGADP_CHECK(active_.find(request_id) == active_.end());
  FPGADP_CHECK(!subs.empty());
  const bool scatter_tree =
      plan_->config().scatter == ScatterMode::kTree;
  Active a;
  a.subs.reserve(subs.size());
  for (const SubRequest& sr : subs) {
    FPGADP_CHECK(sr.shard < num_shards_);
    Sub sub;
    sub.shard = sr.shard;
    sub.bytes = sr.request_bytes;
    sub.tag = next_tag_++;
    sub.est_cycles = EstimateFor(sr);
    pending_cost_[sr.shard] += sub.est_cycles;
    tag_map_[sub.tag] = {request_id, a.subs.size()};
    req_bytes_total_ += sub.bytes;
    ++req_slices_;
    a.subs.push_back(sub);
  }
  // Arm the response / scatter routes before the first slice can ship.
  if (plan_->topology() == GatherTopology::kTree || scatter_tree) {
    std::vector<GatherPlan::SliceInfo> slices;
    slices.reserve(a.subs.size());
    for (const Sub& sub : a.subs) {
      slices.push_back({sub.shard, sub.bytes, sub.tag});
    }
    std::sort(slices.begin(), slices.end(),
              [](const GatherPlan::SliceInfo& x,
                 const GatherPlan::SliceInfo& y) { return x.shard < y.shard; });
    const uint64_t shared =
        scatter_tree ? workload_->ScatterSharedBytes(request_id) : 0;
    plan_->Arm(request_id, slices, shared);
  }
  if (agg_switch_ != nullptr) {
    std::vector<uint64_t> masks(plan_->ports(), 0);
    for (const Sub& sub : a.subs) {
      masks[plan_->PortOf(sub.shard)] |= 1ull << sub.shard;
    }
    for (uint32_t port = 0; port < plan_->ports(); ++port) {
      if (masks[port] != 0) {
        agg_switch_->Arm(request_id, plan_->PortNode(port), masks[port]);
      }
    }
  }
  // Queue slices for shipping: every slice under unicast scatter; only
  // each port-group's root under tree scatter — descendants ride the
  // root's bundle and never occupy a window slot of their own.
  for (size_t i = 0; i < a.subs.size(); ++i) {
    Sub& sub = a.subs[i];
    if (scatter_tree) {
      const GatherPlan::Role* role = plan_->RoleOf(request_id, sub.shard);
      sub.windowed = role->parent == GatherPlan::kToCoordinator;
      if (!sub.windowed) continue;
    }
    shard_queue_[sub.shard].push_back({request_id, i});
    ++total_queued_;
    queue_hwm_[sub.shard] =
        std::max(queue_hwm_[sub.shard], shard_queue_[sub.shard].size());
  }
  active_.emplace(request_id, std::move(a));
}

void ShardCoordinator::ObserveService(uint32_t shard, uint64_t service_cycles,
                                      uint64_t rtt_cycles) {
  // Integer EWMA, alpha = 1/8, in 4-bit fixed point: deterministic across
  // platforms and cheap enough for the response path.
  const int64_t obs_x16 = static_cast<int64_t>(service_cycles << 4);
  int64_t est = static_cast<int64_t>(svc_est_x16_[shard]);
  est += (obs_x16 - est) / 8;
  svc_est_x16_[shard] = static_cast<uint64_t>(est < 16 ? 16 : est);
  // rtt - service still contains shard queue wait; taking the minimum over
  // responses converges on the uncongested wire round trip (the queue term
  // is costed separately via pending_cost_).
  const uint64_t wire =
      rtt_cycles > service_cycles ? rtt_cycles - service_cycles : 0;
  if (!wire_seen_ || wire < wire_est_) {
    wire_est_ = wire;
    wire_seen_ = true;
  }
}

uint64_t ShardCoordinator::PromotionPenalty(uint32_t shard,
                                            sim::Cycle now) const {
  if (elastic_ == nullptr || elastic_->config.promotion_penalty_cycles == 0) {
    return 0;
  }
  return promo_until_[shard] > now ? promo_until_[shard] - now : 0;
}

uint32_t ShardCoordinator::PrimaryNode(uint32_t shard) const {
  const uint32_t primary =
      elastic_ == nullptr ? 0 : elastic_->replicas.Primary(shard);
  return plan_->ReplicaNode(shard, primary);
}

bool ShardCoordinator::CanFailover(uint32_t shard) const {
  return elastic_ != nullptr && elastic_->replicas.CanPromote(shard);
}

void ShardCoordinator::TraceElastic(const std::string& what,
                                    sim::Cycle cycle) {
  if (trace_writer() == nullptr) return;
  trace_writer()->Instant(trace_pid(), trace_tid(), what, cycle);
}

void ShardCoordinator::FailoverShard(uint32_t shard, sim::Cycle cycle) {
  ReplicaSet& replicas = elastic_->replicas;
  const uint32_t old_primary = replicas.Primary(shard);
  FPGADP_CHECK(replicas.Promote(shard));
  ++failovers_;
  TraceElastic("failover.shard" + std::to_string(shard) + " r" +
                   std::to_string(old_primary) + "->r" +
                   std::to_string(replicas.Primary(shard)),
               cycle);
  if (elastic_->config.promotion_penalty_cycles > 0) {
    promo_until_[shard] = cycle + elastic_->config.promotion_penalty_cycles;
  }
  // Replay every sent, unresolved slice to the new primary under a fresh
  // tag. The old tags die with the old primary: late completions and
  // responses miss tag_map_ and drop, so at-least-once delivery can repeat
  // Serve (idempotent per request id) but never double-resolve a slice.
  const uint32_t node = PrimaryNode(shard);
  for (auto& [request_id, a] : active_) {
    for (size_t i = 0; i < a.subs.size(); ++i) {
      Sub& sub = a.subs[i];
      if (sub.shard != shard || !sub.sent ||
          sub.outcome != SubOutcome::kPending) {
        continue;
      }
      tag_map_.erase(sub.tag);
      sub.tag = next_tag_++;
      tag_map_[sub.tag] = {request_id, i};
      sub.sent_at = cycle;  // the RTT estimator restarts with the replay
      net::Packet p;
      p.dst = node;
      p.kind = net::OpKind::kOffloadReq;
      p.tag = sub.tag;
      p.user = request_id;
      p.bytes = sub.bytes;
      endpoints_[plan_->PortOf(shard)]->PostPacket(p);
      ++replayed_slices_;
    }
  }
}

void ShardCoordinator::CheckBeacons(sim::Cycle cycle) {
  const uint64_t timeout = elastic_->config.beacon_timeout_cycles;
  ReplicaSet& replicas = elastic_->replicas;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    for (uint32_t r = 0; r < replicas.replication_factor(); ++r) {
      if (!replicas.alive(s, r)) continue;
      if (cycle < replicas.last_beacon(s, r) + timeout) continue;
      ++beacon_timeouts_;
      if (r == replicas.Primary(s) && replicas.CanPromote(s)) {
        FailoverShard(s, cycle);
      } else {
        // A silent standby (or a primary with nothing left to promote to)
        // is just marked dead; transport retry caps cover the rest.
        replicas.MarkDead(s, r);
        TraceElastic("beacon_dead.shard" + std::to_string(s) + " r" +
                         std::to_string(r),
                     cycle);
      }
    }
  }
}

void ShardCoordinator::StartMigration(const MigrationPlan& plan,
                                      sim::Cycle now) {
  FPGADP_CHECK(elastic_ != nullptr);
  FPGADP_CHECK(plan_->topology() == GatherTopology::kFlat);
  // Migration forwarding re-routes individual slices by shard; a subtree
  // bundle has no single re-route target.
  FPGADP_CHECK(plan_->config().scatter == ScatterMode::kUnicast);
  FPGADP_CHECK(plan.source < num_shards_ && plan.target < num_shards_);
  FPGADP_CHECK(plan.source != plan.target);
  FPGADP_CHECK(plan.state_bytes > 0 && plan.chunk_bytes > 0);
  FPGADP_CHECK(plan.range_lo <= plan.range_hi);
  // One active migration per shard: overlapping copies out of / into the
  // same store would race their flips.
  FPGADP_CHECK(!elastic_->Busy(plan.source) && !elastic_->Busy(plan.target));
  Migration m;
  m.plan = plan;
  m.seq = elastic_->next_migration_seq++;
  m.started_at = now;
  m.next_chunk_at = now;
  elastic_->migrations.push_back(m);
  net::Packet p;
  p.dst = PrimaryNode(plan.source);
  p.kind = net::OpKind::kMigrateStart;
  p.user = m.seq;
  endpoints_[plan_->PortOf(plan.source)]->PostPacket(p);
  TraceElastic("migration.start seq" + std::to_string(m.seq) + " shard" +
                   std::to_string(plan.source) + "->shard" +
                   std::to_string(plan.target),
               now);
}

void ShardCoordinator::HandleMigrateDone(const net::Packet& p,
                                         sim::Cycle cycle) {
  if (elastic_ == nullptr) return;
  Migration* m = elastic_->Find(p.user);
  if (m == nullptr || m->phase != MigrationPhase::kCopy) return;
  // The flip point of the double-ownership window: from this tick on, new
  // scatters route to the target; requests scattered before it reach the
  // source, which forwards anything it no longer owns (SliceOwner).
  workload_->CommitMigration(m->plan);
  m->phase = MigrationPhase::kDrain;
  m->flipped_at = cycle;
  ++migrations_flipped_;
  TraceElastic("migration.flip seq" + std::to_string(m->seq), cycle);
  std::vector<uint64_t>& draining = migration_drain_[m->seq];
  for (const auto& [request_id, a] : active_) {
    draining.push_back(request_id);
  }
  if (draining.empty()) {
    m->phase = MigrationPhase::kDone;
    m->finished_at = cycle;
    migration_drain_.erase(m->seq);
    TraceElastic("migration.done seq" + std::to_string(m->seq), cycle);
  }
}

bool ShardCoordinator::PollOutcome(PartialOutcome* out) {
  if (outcomes_.empty()) return false;
  *out = std::move(outcomes_.front());
  outcomes_.pop_front();
  return true;
}

void ShardCoordinator::ResolveSub(uint64_t request_id, size_t sub_index,
                                  SubOutcome outcome, sim::Cycle cycle) {
  const auto it = active_.find(request_id);
  if (it == active_.end()) return;
  Active& a = it->second;
  Sub& sub = a.subs[sub_index];
  if (sub.outcome != SubOutcome::kPending) return;
  sub.outcome = outcome;
  ++a.resolved;
  tag_map_.erase(sub.tag);
  if (sub.sent && sub.windowed) --in_flight_[sub.shard];
  pending_cost_[sub.shard] -= std::min(pending_cost_[sub.shard],
                                       sub.est_cycles);
  if (a.resolved == a.subs.size()) Finalize(request_id, a, cycle);
}

void ShardCoordinator::Finalize(uint64_t request_id, Active& a,
                                sim::Cycle cycle) {
  PartialOutcome out;
  out.request_id = request_id;
  out.completed_at = cycle;
  out.slices.reserve(a.subs.size());
  uint32_t failed = 0, rejected = 0, timed_out = 0;
  for (const Sub& sub : a.subs) {
    out.slices.push_back({sub.shard, sub.outcome});
    switch (sub.outcome) {
      case SubOutcome::kDone: ++out.shards_done; break;
      case SubOutcome::kFailed: ++failed; break;
      case SubOutcome::kRejected: ++rejected; break;
      case SubOutcome::kTimedOut: ++timed_out; break;
      case SubOutcome::kPending: break;
    }
  }
  if (out.shards_done == out.shards_total()) {
    out.status = Status::OK();
  } else {
    const std::string detail =
        name() + ": request " + std::to_string(request_id) + ": " +
        std::to_string(out.shards_done) + "/" +
        std::to_string(out.shards_total()) + " slices done (" +
        std::to_string(failed) + " failed, " + std::to_string(rejected) +
        " rejected, " + std::to_string(timed_out) + " timed out)";
    // Failure ranking mirrors accl::PartialOutcome: a dead shard outranks
    // a missed deadline outranks load shedding.
    if (failed > 0) {
      out.status = Status::Unavailable(detail);
    } else if (timed_out > 0) {
      out.status = Status::Timeout(detail);
    } else {
      out.status = Status::ResourceExhausted(detail);
    }
  }
  ++gathers_completed_;
  if (out.degraded()) ++gathers_degraded_;
  workload_->Merge(request_id, out);
  // Wake the poller BEFORE the outcome lands (see Module::WakeUp).
  if (outcome_listener_ != nullptr) outcome_listener_->WakeUp();
  outcomes_.push_back(std::move(out));
  active_.erase(request_id);
  // Drain bookkeeping: a kDrain migration completes when every request
  // that was active at its flip has finalized.
  for (auto it = migration_drain_.begin(); it != migration_drain_.end();) {
    std::vector<uint64_t>& ids = it->second;
    const auto pos = std::find(ids.begin(), ids.end(), request_id);
    if (pos != ids.end()) ids.erase(pos);
    if (ids.empty()) {
      Migration* m = elastic_->Find(it->first);
      m->phase = MigrationPhase::kDone;
      m->finished_at = cycle;
      TraceElastic("migration.done seq" + std::to_string(it->first), cycle);
      it = migration_drain_.erase(it);
    } else {
      ++it;
    }
  }
  // Tear down the routes: interior shards drop orphaned merge state (and
  // scatter bundles) on their next lookup, and the switch frees any held
  // partial group.
  if (plan_->topology() == GatherTopology::kTree ||
      plan_->config().scatter == ScatterMode::kTree) {
    plan_->Release(request_id);
  }
  if (agg_switch_ != nullptr) agg_switch_->Disarm(request_id);
}

void ShardCoordinator::MarkSubtreeSent(Active& a, uint64_t request_id,
                                       const GatherPlan::Role& root_role,
                                       sim::Cycle cycle) {
  std::vector<uint32_t> stack(root_role.down.begin(), root_role.down.end());
  while (!stack.empty()) {
    const uint32_t shard = stack.back();
    stack.pop_back();
    const GatherPlan::Role* role = plan_->RoleOf(request_id, shard);
    if (role != nullptr) {
      stack.insert(stack.end(), role->down.begin(), role->down.end());
    }
    for (Sub& sub : a.subs) {
      if (sub.shard == shard && !sub.sent) {
        sub.sent = true;
        sub.sent_at = cycle;
      }
    }
  }
}

bool ShardCoordinator::PumpQueues(sim::Cycle cycle) {
  const bool scatter_tree =
      plan_->config().scatter == ScatterMode::kTree;
  bool progressed = false;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    auto& q = shard_queue_[s];
    while (!q.empty()) {
      const auto [request_id, sub_index] = q.front();
      const auto it = active_.find(request_id);
      if (it == active_.end() ||
          it->second.subs[sub_index].outcome != SubOutcome::kPending) {
        // The request finalized (deadline expiry) while this slice waited
        // for window room; there is nobody left to serve it for.
        q.pop_front();
        --total_queued_;
        progressed = true;
        continue;
      }
      if (in_flight_[s] >= config_.window) break;
      Sub& sub = it->second.subs[sub_index];
      net::Packet p;
      p.dst = PrimaryNode(s);
      p.kind = net::OpKind::kOffloadReq;
      p.tag = sub.tag;
      p.user = request_id;
      if (scatter_tree) {
        // One bundle for the whole port group: the subtree's bytes behind
        // this root, shared portion counted once. Descendants ship with it.
        const GatherPlan::Role* role = plan_->RoleOf(request_id, s);
        FPGADP_CHECK(role != nullptr);
        p.addr = kScatterFlag;
        p.bytes = role->subtree_bytes;
        MarkSubtreeSent(it->second, request_id, *role, cycle);
      } else {
        p.bytes = sub.bytes;
      }
      endpoints_[plan_->PortOf(s)]->PostPacket(p);
      sub.sent = true;
      sub.sent_at = cycle;
      ++in_flight_[s];
      q.pop_front();
      --total_queued_;
      progressed = true;
    }
  }
  return progressed;
}

void ShardCoordinator::HandleMergedResponse(const net::Packet& p,
                                            sim::Cycle cycle) {
  const uint64_t request_id = p.user;
  const auto it = active_.find(request_id);
  if (it == active_.end()) {
    ++late_responses_;  // its gather already finalized under the deadline
    return;
  }
  // Collect before resolving: the last ResolveSub may finalize the request
  // and erase the Active entry out from under an in-place iteration.
  std::vector<std::pair<size_t, SubOutcome>> resolutions;
  const Active& a = it->second;
  for (size_t i = 0; i < a.subs.size(); ++i) {
    const Sub& sub = a.subs[i];
    if (sub.outcome != SubOutcome::kPending) continue;
    const uint64_t bit = 1ull << sub.shard;
    if ((p.addr & bit) != 0) {
      resolutions.push_back({i, SubOutcome::kDone});
    } else if ((p.user2 & bit) != 0) {
      resolutions.push_back({i, SubOutcome::kRejected});
    }
  }
  if (resolutions.empty()) {
    ++late_responses_;  // straggler re-covering already-resolved slices
    return;
  }
  for (const auto& [index, outcome] : resolutions) {
    ResolveSub(request_id, index, outcome, cycle);
  }
}

void ShardCoordinator::Tick(sim::Cycle cycle) {
  bool progressed = false;

  // Arm deadlines for requests scattered since the last tick.
  if (config_.gather_deadline_cycles > 0) {
    for (auto& [id, a] : active_) {
      if (a.deadline == 0) a.deadline = cycle + config_.gather_deadline_cycles;
    }
  }

  // Transport verdicts: a slice whose request packet exhausted the retry
  // cap resolves kFailed (successful offload sends complete silently) —
  // unless the shard has a live standby, in which case the coordinator
  // promotes it and replays instead of degrading. Tags from before a
  // promotion were replaced by the replay, so a stale verdict for the old
  // primary misses tag_map_ and is ignored.
  for (net::RdmaEndpoint* ep : endpoints_) {
    net::Completion comp;
    while (ep->PollCompletion(&comp)) {
      progressed = true;
      if (comp.status == StatusCode::kOk) continue;
      const auto it = tag_map_.find(comp.tag);
      if (it == tag_map_.end()) continue;
      const auto [request_id, sub_index] = it->second;
      const auto ait = active_.find(request_id);
      if (ait == active_.end()) continue;
      const uint32_t shard = ait->second.subs[sub_index].shard;
      if (CanFailover(shard)) {
        FailoverShard(shard, cycle);  // replays this slice too
      } else {
        ResolveSub(request_id, sub_index, SubOutcome::kFailed, cycle);
      }
    }
  }

  // Beacon liveness: promote away from primaries that went silent.
  if (elastic_ != nullptr && elastic_->config.beacon_timeout_cycles > 0) {
    CheckBeacons(cycle);
  }

  // Responses. Flat gather: one tagged response per slice — bit 0 of user2
  // flags a shard-side rejection, otherwise user2 >> 1 reports the slice's
  // service cycles, which feeds the admission estimator. Tree / switch
  // gather: merged-form responses resolve every slice their masks cover.
  for (net::RdmaEndpoint* ep : endpoints_) {
    net::Packet p;
    while (ep->PollRecv(&p)) {
      progressed = true;
      if (p.kind == net::OpKind::kHealthBeacon) {
        if (elastic_ != nullptr) {
          elastic_->replicas.ObserveBeacon(
              static_cast<uint32_t>(p.user), static_cast<uint32_t>(p.user2),
              cycle);
        }
        continue;
      }
      if (p.kind == net::OpKind::kMigrateDone) {
        HandleMigrateDone(p, cycle);
        continue;
      }
      if (p.kind != net::OpKind::kOffloadResp) continue;
      if (merged_responses()) {
        HandleMergedResponse(p, cycle);
        continue;
      }
      const auto it = tag_map_.find(p.tag);
      if (it == tag_map_.end()) {
        ++late_responses_;  // its gather already finalized under the deadline
        continue;
      }
      const bool busy = (p.user2 & 1) != 0;
      if (!busy) {
        resp_bytes_total_ += p.bytes;
        ++resp_count_;
        const auto ait = active_.find(it->second.first);
        if (ait != active_.end()) {
          const Sub& sub = ait->second.subs[it->second.second];
          ObserveService(sub.shard, p.user2 >> 1, cycle - sub.sent_at);
        }
      }
      ResolveSub(it->second.first, it->second.second,
                 busy ? SubOutcome::kRejected : SubOutcome::kDone, cycle);
    }
  }

  // Expire gathers past their deadline: pending slices resolve kTimedOut
  // and the request degrades instead of stalling the cluster.
  for (auto it = active_.begin(); it != active_.end();) {
    const uint64_t request_id = it->first;
    Active& a = it->second;
    ++it;  // Finalize erases the entry
    if (a.deadline == 0 || cycle < a.deadline) continue;
    for (Sub& sub : a.subs) {
      if (sub.outcome != SubOutcome::kPending) continue;
      sub.outcome = SubOutcome::kTimedOut;
      ++a.resolved;
      tag_map_.erase(sub.tag);
      if (sub.sent && sub.windowed) --in_flight_[sub.shard];
      pending_cost_[sub.shard] -= std::min(pending_cost_[sub.shard],
                                           sub.est_cycles);
      // An unsent slice still sits in its shard queue; PumpQueues drops it.
    }
    Finalize(request_id, a, cycle);
    progressed = true;
  }

  if (PumpQueues(cycle)) progressed = true;

  if (progressed) {
    MarkBusy();
  } else if (!active_.empty()) {
    ++gather_stall_cycles_;
    MarkStall(sim::StallKind::kInputStarved);
  }
}

sim::Cycle ShardCoordinator::NextEventCycle(sim::Cycle now) const {
  for (const net::RdmaEndpoint* ep : endpoints_) {
    if (ep->completions_available() > 0 || ep->recv_available() > 0) {
      return now;
    }
  }
  for (uint32_t s = 0; s < num_shards_; ++s) {
    if (!shard_queue_[s].empty() && in_flight_[s] < config_.window) {
      return now;
    }
  }
  sim::Cycle earliest = sim::kNoEventCycle;
  for (const auto& [id, a] : active_) {
    if (a.deadline == 0) {
      // Unarmed with a deadline configured: the next tick arms it.
      if (config_.gather_deadline_cycles > 0) return now;
      continue;
    }
    earliest = std::min(earliest, a.deadline);
  }
  // Beacon deadlines: fast-forward must land exactly on the cycle a silent
  // primary would be declared dead, or serial and skipped runs diverge.
  if (elastic_ != nullptr && elastic_->config.beacon_timeout_cycles > 0) {
    const ReplicaSet& replicas = elastic_->replicas;
    for (uint32_t s = 0; s < num_shards_; ++s) {
      for (uint32_t r = 0; r < replicas.replication_factor(); ++r) {
        if (!replicas.alive(s, r)) continue;
        earliest = std::min(earliest, replicas.last_beacon(s, r) +
                                          elastic_->config.beacon_timeout_cycles);
      }
    }
  }
  return earliest > now ? earliest : now;
}

void ShardCoordinator::AttributeSkip(sim::Cycle from, sim::Cycle to) {
  if (active_.empty()) return;  // idle backfill
  const uint64_t n = to - from;
  gather_stall_cycles_ += n;
  MarkStallN(sim::StallKind::kInputStarved, n);
}

void ShardCoordinator::ExportCustomMetrics(
    obs::MetricsRegistry& registry) const {
  const std::string base = "shard." + name();
  registry.GetGauge(base + ".gathers_completed")
      ->Set(static_cast<double>(gathers_completed_));
  registry.GetGauge(base + ".gathers_degraded")
      ->Set(static_cast<double>(gathers_degraded_));
  registry.GetGauge(base + ".late_responses")
      ->Set(static_cast<double>(late_responses_));
  registry.GetGauge(base + ".gather_stall_cycles")
      ->Set(static_cast<double>(gather_stall_cycles_));
  registry.GetGauge(base + ".ingress_shed")
      ->Set(static_cast<double>(ingress_shed_));
  for (uint32_t s = 0; s < num_shards_; ++s) {
    registry.GetGauge(base + ".queue_hwm.shard" + std::to_string(s))
        ->Set(static_cast<double>(queue_hwm_[s]));
  }
  // Only an actually-elastic cluster (replicas or migrations) grows the
  // gauge set; a plain R=1 cluster exports exactly the historical metrics.
  if (elastic_ != nullptr &&
      (plan_->replicas() > 1 || !elastic_->migrations.empty())) {
    registry.GetGauge(base + ".failovers")
        ->Set(static_cast<double>(failovers_));
    registry.GetGauge(base + ".replayed_slices")
        ->Set(static_cast<double>(replayed_slices_));
    registry.GetGauge(base + ".beacon_timeouts")
        ->Set(static_cast<double>(beacon_timeouts_));
    registry.GetGauge(base + ".migrations_flipped")
        ->Set(static_cast<double>(migrations_flipped_));
    uint64_t done = 0, aborted = 0;
    for (const Migration& m : elastic_->migrations) {
      if (m.phase == MigrationPhase::kDone) ++done;
      if (m.phase == MigrationPhase::kAborted) ++aborted;
    }
    registry.GetGauge(base + ".migrations_done")
        ->Set(static_cast<double>(done));
    registry.GetGauge(base + ".migrations_aborted")
        ->Set(static_cast<double>(aborted));
  }
}

ShardServer::ShardServer(std::string name, uint32_t shard_id,
                         Workload* workload, net::RdmaEndpoint* endpoint,
                         const GatherPlan* plan, const Config& config,
                         uint32_t replica_index, ElasticState* elastic)
    : sim::Module(std::move(name)), shard_id_(shard_id), workload_(workload),
      endpoint_(endpoint), plan_(plan), config_(config),
      replica_index_(replica_index), elastic_(elastic) {
  FPGADP_CHECK(workload_ != nullptr);
  FPGADP_CHECK(endpoint_ != nullptr);
  FPGADP_CHECK(config_.max_queue > 0);
  // Event-safe: NextEventCycle covers the pipeline, merge timeouts, beacon
  // posts and chunk pacing; the endpoint wakes the server on arrivals.
  endpoint_->SetWakeListener(this);
  SetEventSafe();
  if (elastic_ != nullptr && elastic_->config.beacon_interval_cycles > 0) {
    FPGADP_CHECK(plan_ != nullptr);
    next_beacon_at_ = elastic_->config.beacon_interval_cycles;
  }
}

void ShardServer::TickBeacon(sim::Cycle cycle, bool* progressed) {
  if (next_beacon_at_ == 0 || cycle < next_beacon_at_) return;
  net::Packet b;
  b.dst = plan_->PortNode(plan_->PortOf(shard_id_));
  b.kind = net::OpKind::kHealthBeacon;
  b.user = shard_id_;
  b.user2 = replica_index_;
  endpoint_->PostPacket(b);
  ++beacons_sent_;
  next_beacon_at_ = cycle + elastic_->config.beacon_interval_cycles;
  *progressed = true;
}

void ShardServer::TickMigration(sim::Cycle cycle, bool* progressed) {
  if (streaming_seq_ == 0) return;
  Migration* m = elastic_->Find(streaming_seq_);
  if (m == nullptr || m->phase != MigrationPhase::kCopy) {
    streaming_seq_ = 0;  // flipped or aborted under us
    return;
  }
  if (cycle < m->next_chunk_at) return;
  // One paced chunk per interval: the copy pays real wire serialization,
  // so it contends with serving traffic instead of teleporting state.
  const uint64_t remaining = m->plan.state_bytes - m->bytes_streamed;
  const uint64_t n = std::min(m->plan.chunk_bytes, remaining);
  net::Packet c;
  c.dst = plan_->ReplicaNode(m->plan.target,
                             elastic_->replicas.Primary(m->plan.target));
  c.kind = net::OpKind::kMigrateChunk;
  c.user = m->seq;
  c.bytes = n;
  endpoint_->PostPacket(c);
  m->bytes_streamed += n;
  migrated_bytes_out_ += n;
  if (m->bytes_streamed >= m->plan.state_bytes) {
    streaming_seq_ = 0;
  } else {
    m->next_chunk_at = cycle + m->plan.chunk_interval_cycles;
  }
  *progressed = true;
}

void ShardServer::AbortMigration(sim::Cycle cycle) {
  for (Migration& m : elastic_->migrations) {
    if (m.phase != MigrationPhase::kCopy) continue;
    if (m.plan.source != shard_id_ && m.plan.target != shard_id_) continue;
    m.phase = MigrationPhase::kAborted;
    m.finished_at = cycle;
    if (streaming_seq_ == m.seq) streaming_seq_ = 0;
    return;
  }
}

ShardServer::MergeState& ShardServer::TouchMerge(uint64_t request_id,
                                                 sim::Cycle cycle) {
  auto it = merges_.find(request_id);
  if (it == merges_.end()) {
    MergeState m;
    const uint64_t timeout = plan_->config().merge_timeout_cycles;
    if (timeout > 0) m.timeout_at = cycle + timeout;
    it = merges_.emplace(request_id, m).first;
  }
  return it->second;
}

void ShardServer::MaybeEmit(uint64_t request_id, sim::Cycle cycle) {
  const auto it = merges_.find(request_id);
  if (it == merges_.end()) return;
  const GatherPlan::Role* role = plan_->RoleOf(request_id, shard_id_);
  if (role == nullptr) {
    // The gather finalized (deadline expiry) and released its route;
    // nobody upstream is listening anymore.
    ++stale_merges_dropped_;
    merges_.erase(it);
    return;
  }
  if (!it->second.own_resolved ||
      it->second.children_seen < role->expected_children) {
    return;
  }
  EmitMerge(request_id, it->second, cycle);
}

void ShardServer::EmitMerge(uint64_t request_id, MergeState& m,
                            sim::Cycle cycle) {
  const GatherPlan::Role* role = plan_->RoleOf(request_id, shard_id_);
  if (role == nullptr) {
    ++stale_merges_dropped_;
    merges_.erase(request_id);
    return;
  }
  net::Packet up;
  up.dst = role->parent == GatherPlan::kToCoordinator
               ? plan_->PortNode(role->port)
               : plan_->ShardNode(role->parent);
  up.kind = net::OpKind::kOffloadResp;
  up.user = request_id;
  up.addr = m.done_mask;
  up.user2 = m.rejected_mask;
  up.bytes = m.done_mask == 0 ? 0
                              : workload_->MergedBytes(request_id, m.done_mask,
                                                       m.concat_bytes);
  // The merge engine pays per child folded in; its own partial is already
  // in the pipeline, so a leaf forwards with no extra delay. Pipelined
  // merging charged each child on arrival, so only the unfinished tail of
  // the last fold delays the emit; the serial model folds all children
  // after the subtree completes.
  const sim::Cycle at =
      plan_->config().pipelined_merge
          ? std::max(cycle, m.merge_ready_at)
          : cycle + plan_->config().merge_cycles_per_input * m.children_seen;
  if (at <= cycle) {
    endpoint_->PostPacket(up);
  } else {
    emits_.push_back({at, up});
  }
  ++merges_forwarded_;
  merges_.erase(request_id);
}

void ShardServer::Tick(sim::Cycle cycle) {
  bool progressed = false;
  const GatherTopology topo = topology();

  if (elastic_ != nullptr) TickBeacon(cycle, &progressed);

  // Post merged packets whose merge-cost delay elapsed (tree gather).
  for (size_t i = 0; i < emits_.size();) {
    if (emits_[i].at <= cycle) {
      endpoint_->PostPacket(emits_[i].packet);
      emits_.erase(emits_.begin() + static_cast<ptrdiff_t>(i));
      progressed = true;
    } else {
      ++i;
    }
  }

  // Retire the slice in service: its occupancy elapsed, so the reply ships
  // (flat / switch gather) or folds into the subtree merge (tree gather).
  if (busy_ && cycle >= done_at_) {
    busy_ = false;
    progressed = true;
    if (topo == GatherTopology::kTree) {
      MergeState& m = TouchMerge(pending_resp_.user, cycle);
      m.done_mask |= 1ull << shard_id_;
      m.concat_bytes += pending_resp_.bytes;
      m.own_resolved = true;
      MaybeEmit(pending_resp_.user, cycle);
    } else {
      endpoint_->PostPacket(pending_resp_);
    }
  }

  // Admit or shed request arrivals; fold child contributions (tree gather
  // interior nodes) into their request's merge state.
  net::Packet p;
  while (endpoint_->PollRecv(&p)) {
    progressed = true;
    if (p.kind == net::OpKind::kOffloadResp) {
      // Only tree-gather interior nodes receive responses: a child
      // subtree's merged contribution.
      if (topo != GatherTopology::kTree) continue;
      MergeState& m = TouchMerge(p.user, cycle);
      m.done_mask |= p.addr;
      m.rejected_mask |= p.user2;
      m.concat_bytes += p.bytes;
      ++m.children_seen;
      if (plan_->config().pipelined_merge) {
        // The merge engine folds this child in starting now (or as soon
        // as it finishes the previous one), overlapping the wait for the
        // rest of the subtree.
        m.merge_ready_at = std::max(m.merge_ready_at, cycle) +
                           plan_->config().merge_cycles_per_input;
      }
      MaybeEmit(p.user, cycle);
      continue;
    }
    if (p.kind == net::OpKind::kMigrateStart) {
      // This node is the source primary: begin streaming the range's state.
      Migration* m = elastic_ == nullptr ? nullptr : elastic_->Find(p.user);
      if (m != nullptr && m->phase == MigrationPhase::kCopy &&
          !m->start_seen) {
        m->start_seen = true;
        m->next_chunk_at = cycle;
        streaming_seq_ = m->seq;
      }
      continue;
    }
    if (p.kind == net::OpKind::kMigrateChunk) {
      // This node is the target primary: count payload in; when the full
      // state landed, tell the coordinator so it can flip ownership.
      Migration* m = elastic_ == nullptr ? nullptr : elastic_->Find(p.user);
      if (m != nullptr && m->phase == MigrationPhase::kCopy) {
        m->bytes_received += p.bytes;
        if (m->bytes_received >= m->plan.state_bytes) {
          net::Packet done;
          done.dst = plan_->PortNode(plan_->PortOf(m->plan.source));
          done.kind = net::OpKind::kMigrateDone;
          done.user = m->seq;
          endpoint_->PostPacket(done);
        }
      }
      continue;
    }
    if (p.kind != net::OpKind::kOffloadReq) continue;
    if ((p.addr & kScatterFlag) != 0) {
      // A scatter-tree bundle: forward one smaller bundle per child
      // subtree (the NIC peels them off at a per-hop cost, no pipeline
      // occupancy), then fall through to admission with our own slice as
      // if it had arrived point-to-point.
      const GatherPlan::Role* role =
          plan_ == nullptr ? nullptr : plan_->RoleOf(p.user, shard_id_);
      if (role == nullptr) {
        // The gather finalized (deadline expiry) and released the route;
        // nothing in this subtree has anyone listening anymore.
        ++stale_bundles_dropped_;
        continue;
      }
      uint64_t hops = 0;
      for (uint32_t child : role->down) {
        const GatherPlan::Role* child_role = plan_->RoleOf(p.user, child);
        net::Packet fwd;
        fwd.dst = plan_->ShardNode(child);
        fwd.kind = net::OpKind::kOffloadReq;
        fwd.addr = kScatterFlag;
        fwd.user = p.user;
        fwd.tag = child_role->tag;
        fwd.bytes = child_role->subtree_bytes;
        const sim::Cycle at =
            cycle + ++hops * plan_->config().scatter_forward_cycles;
        if (at <= cycle) {
          endpoint_->PostPacket(fwd);
        } else {
          emits_.push_back({at, fwd});
        }
        ++bundles_forwarded_;
      }
      // Our own slice: tag and wire size come from the role, and a
      // flat/switch response must go to our coordinator port — exactly
      // what src would be had the slice arrived point-to-point.
      p.addr = 0;
      p.tag = role->tag;
      p.bytes = role->slice_bytes;
      p.src = plan_->PortNode(plan_->PortOf(shard_id_));
    }
    if (queue_.size() >= config_.max_queue) {
      ++rejected_;
      if (topo == GatherTopology::kTree) {
        // The rejection rides up the tree in the mask; the node still
        // merges and forwards its children's results.
        MergeState& m = TouchMerge(p.user, cycle);
        m.rejected_mask |= 1ull << shard_id_;
        m.own_resolved = true;
        MaybeEmit(p.user, cycle);
      } else {
        net::Packet busy_resp;
        // A forwarded slice answers the coordinator that issued it, not the
        // peer server that handed it over.
        busy_resp.dst = (p.addr & kForwardFlag) != 0
                            ? static_cast<uint32_t>(p.user2)
                            : p.src;
        busy_resp.kind = net::OpKind::kOffloadResp;
        busy_resp.tag = p.tag;
        busy_resp.user = p.user;
        if (topo == GatherTopology::kSwitch) {
          busy_resp.user2 = 1ull << shard_id_;  // merged-form rejected mask
        } else {
          busy_resp.user2 = 1;  // admission-rejected
        }
        endpoint_->PostPacket(busy_resp);
      }
    } else {
      queue_.push_back(p);
      queue_hwm_ = std::max(queue_hwm_, queue_.size());
    }
  }

  // Start the next slice.
  if (!busy_ && !queue_.empty()) {
    const net::Packet req = queue_.front();
    queue_.pop_front();
    // A forwarded slice carries its original shard in addr and the issuing
    // coordinator node in user2 (PostPacket overwrote src with the peer's).
    uint32_t slice_shard = shard_id_;
    uint32_t coord_node = req.src;
    if ((req.addr & kForwardFlag) != 0) {
      slice_shard = static_cast<uint32_t>(req.addr & ~kForwardFlag);
      coord_node = static_cast<uint32_t>(req.user2);
    }
    // Ownership is decided at serve start, not arrival: a slice that sat
    // queued across a migration flip is handed to the new owner instead of
    // served from state that just moved away.
    uint32_t owner = slice_shard;
    if (elastic_ != nullptr && topo == GatherTopology::kFlat) {
      owner = workload_->SliceOwner(slice_shard, req.user);
    }
    if (owner != shard_id_) {
      net::Packet fwd;
      fwd.dst =
          plan_->ReplicaNode(owner, elastic_->replicas.Primary(owner));
      fwd.kind = net::OpKind::kOffloadReq;
      fwd.tag = req.tag;
      fwd.user = req.user;
      fwd.addr = kForwardFlag | slice_shard;
      fwd.user2 = coord_node;
      fwd.bytes = req.bytes;
      endpoint_->PostPacket(fwd);
      ++forwarded_;
      progressed = true;
    } else {
      const Service svc = workload_->Serve(slice_shard, req.user);
      const uint64_t cycles_needed =
          std::max<uint64_t>(1, svc.compute_cycles);
      busy_ = true;
      done_at_ = cycle + cycles_needed;
      service_cycles_ += cycles_needed;
      ++served_;
      if (serve_log_ != nullptr) {
        serve_log_->push_back({cycle, req.user, slice_shard});
      }
      pending_resp_ = net::Packet{};
      pending_resp_.kind = net::OpKind::kOffloadResp;
      pending_resp_.user = req.user;
      pending_resp_.bytes = svc.response_bytes;
      if (topo == GatherTopology::kFlat) {
        pending_resp_.dst = coord_node;
        pending_resp_.tag = req.tag;
        pending_resp_.user2 = cycles_needed << 1;  // bit 0 clear = served
      } else if (topo == GatherTopology::kSwitch) {
        pending_resp_.dst = req.src;
        pending_resp_.addr = 1ull << shard_id_;  // merged-form done mask
      }
      // Tree gather: the destination (parent or port) is resolved at emit.
      progressed = true;
    }
  }

  // Force partial forwards whose merge timeout expired: a dead child costs
  // its subtree, never the ancestors (tree gather on a lossy fabric).
  for (auto it = merges_.begin(); it != merges_.end();) {
    const uint64_t request_id = it->first;
    MergeState& m = it->second;
    ++it;  // EmitMerge erases the entry
    if (m.timeout_at == 0 || cycle < m.timeout_at) continue;
    ++merge_timeouts_;
    EmitMerge(request_id, m, cycle);
    progressed = true;
  }

  // Stream the next paced migration chunk (source primary only).
  if (elastic_ != nullptr) TickMigration(cycle, &progressed);

  // Drain transport completions. A response that exhausts its retry cap
  // surfaces in the endpoint's failed() latch; the coordinator's gather
  // deadline covers the loss. A migration chunk (or the done notification)
  // that dies on the wire aborts the copy: ownership never flips, so no
  // state is lost.
  net::Completion comp;
  while (endpoint_->PollCompletion(&comp)) {
    progressed = true;
    if (elastic_ != nullptr && comp.status != StatusCode::kOk &&
        (comp.kind == net::OpKind::kMigrateChunk ||
         comp.kind == net::OpKind::kMigrateDone)) {
      AbortMigration(cycle);
    }
  }

  if (busy_ || progressed) MarkBusy();
}

sim::Cycle ShardServer::NextEventCycle(sim::Cycle now) const {
  if (endpoint_->recv_available() > 0 ||
      endpoint_->completions_available() > 0) {
    return now;
  }
  if (!busy_ && !queue_.empty()) return now;
  sim::Cycle earliest = sim::kNoEventCycle;
  if (busy_) earliest = done_at_ > now ? done_at_ : now;
  for (const PendingEmit& e : emits_) {
    earliest = std::min(earliest, e.at > now ? e.at : now);
  }
  for (const auto& [id, m] : merges_) {
    if (m.timeout_at > 0) {
      earliest = std::min(earliest, m.timeout_at > now ? m.timeout_at : now);
    }
  }
  // Fast-forward must land exactly on beacon posts and chunk pacing slots,
  // or the skipped run diverges from the serial one.
  if (next_beacon_at_ > 0) {
    earliest =
        std::min(earliest, next_beacon_at_ > now ? next_beacon_at_ : now);
  }
  if (streaming_seq_ != 0) {
    for (const Migration& m : elastic_->migrations) {
      if (m.seq == streaming_seq_ && m.phase == MigrationPhase::kCopy) {
        earliest =
            std::min(earliest, m.next_chunk_at > now ? m.next_chunk_at : now);
      }
    }
  }
  return earliest;
}

void ShardServer::AttributeSkip(sim::Cycle from, sim::Cycle to) {
  if (busy_) MarkBusyN(to - from);
}

void ShardServer::ExportCustomMetrics(obs::MetricsRegistry& registry) const {
  const std::string base = "shard." + name();
  registry.GetGauge(base + ".served")->Set(static_cast<double>(served_));
  registry.GetGauge(base + ".rejected")->Set(static_cast<double>(rejected_));
  registry.GetGauge(base + ".service_cycles")
      ->Set(static_cast<double>(service_cycles_));
  registry.GetGauge(base + ".queue_hwm")
      ->Set(static_cast<double>(queue_hwm_));
  if (plan_ != nullptr && plan_->topology() == GatherTopology::kTree) {
    registry.GetGauge(base + ".merges_forwarded")
        ->Set(static_cast<double>(merges_forwarded_));
    registry.GetGauge(base + ".merge_timeouts")
        ->Set(static_cast<double>(merge_timeouts_));
    registry.GetGauge(base + ".stale_merges_dropped")
        ->Set(static_cast<double>(stale_merges_dropped_));
  }
  if (plan_ != nullptr && plan_->config().scatter == ScatterMode::kTree) {
    registry.GetGauge(base + ".bundles_forwarded")
        ->Set(static_cast<double>(bundles_forwarded_));
    registry.GetGauge(base + ".stale_bundles_dropped")
        ->Set(static_cast<double>(stale_bundles_dropped_));
  }
  // Only an actually-elastic cluster grows the gauge set (same gate as the
  // coordinator): a plain R=1 cluster exports exactly the historical keys.
  if (elastic_ != nullptr &&
      (plan_->replicas() > 1 || !elastic_->migrations.empty())) {
    registry.GetGauge(base + ".forwarded")
        ->Set(static_cast<double>(forwarded_));
    registry.GetGauge(base + ".beacons_sent")
        ->Set(static_cast<double>(beacons_sent_));
    registry.GetGauge(base + ".migrated_bytes_out")
        ->Set(static_cast<double>(migrated_bytes_out_));
  }
}

ShardCluster::ShardCluster(Workload* workload, const Config& config)
    : config_(config),
      plan_(config.gather, config.num_shards,
            config.replica.replication_factor),
      elastic_(config.replica, config.num_shards),
      engine_(config.fabric.clock_hz),
      fabric_("fabric", plan_.num_nodes(), config.fabric) {
  FPGADP_CHECK(workload != nullptr);
  FPGADP_CHECK(config_.num_shards > 0);
  // A beacon wave must land before the next one launches, or the wire
  // never drains and the engine cannot quiesce. Control packets fly for
  // wire latency plus header serialization plus the tx-injection cycle.
  FPGADP_CHECK(config_.replica.beacon_interval_cycles == 0 ||
               config_.replica.beacon_interval_cycles >
                   fabric_.wire_latency_cycles() +
                       fabric_.SerializationCycles(0) + 1);
  if (plan_.topology() == GatherTopology::kSwitch) {
    net::AggregatingSwitch::Config sc;
    sc.combine_cycles_per_resp = config_.gather.switch_combine_cycles;
    agg_switch_ = std::make_unique<net::AggregatingSwitch>(
        sc, [workload](uint64_t request_id, uint64_t done_mask,
                       uint64_t concat_bytes) {
          return workload->MergedBytes(request_id, done_mask, concat_bytes);
        });
    fabric_.set_agg_switch(agg_switch_.get());
  }
  fabric_.RegisterWith(engine_);
  for (uint32_t port = 0; port < plan_.ports(); ++port) {
    coordinator_eps_.push_back(std::make_unique<net::RdmaEndpoint>(
        port == 0 ? "coord.ep" : "coord.ep" + std::to_string(port),
        plan_.PortNode(port), &fabric_, config_.reliability));
    engine_.AddModule(coordinator_eps_.back().get());
  }
  // Replica-major to match servers_[r * num_shards + s] and the fabric
  // node numbering; replica 0 keeps the historical "shardN" names so every
  // existing metric key and trace row survives R=1 unchanged.
  for (uint32_t r = 0; r < plan_.replicas(); ++r) {
    for (uint32_t s = 0; s < config_.num_shards; ++s) {
      const std::string suffix =
          r == 0 ? std::to_string(s) : std::to_string(s) + ".r" +
                                           std::to_string(r);
      server_eps_.push_back(std::make_unique<net::RdmaEndpoint>(
          "shard" + suffix + ".ep", plan_.ReplicaNode(s, r), &fabric_,
          config_.reliability));
      engine_.AddModule(server_eps_.back().get());
    }
  }
  std::vector<net::RdmaEndpoint*> eps;
  eps.reserve(coordinator_eps_.size());
  for (auto& ep : coordinator_eps_) eps.push_back(ep.get());
  coordinator_ = std::make_unique<ShardCoordinator>(
      "coord", workload, std::move(eps), &plan_, agg_switch_.get(),
      config_.num_shards, config_.coordinator, &elastic_);
  engine_.AddModule(coordinator_.get());
  for (uint32_t r = 0; r < plan_.replicas(); ++r) {
    for (uint32_t s = 0; s < config_.num_shards; ++s) {
      const std::string suffix =
          r == 0 ? std::to_string(s) : std::to_string(s) + ".r" +
                                           std::to_string(r);
      servers_.push_back(std::make_unique<ShardServer>(
          "shard" + suffix, s, workload,
          server_eps_[size_t{r} * config_.num_shards + s].get(), &plan_,
          config_.server, r, &elastic_));
      engine_.AddModule(servers_.back().get());
    }
  }
}

Autoscaler::Decision ShardCluster::EvaluateAutoscaler(
    const Autoscaler& autoscaler) const {
  obs::MetricsRegistry registry;
  coordinator_->ExportCustomMetrics(registry);
  for (const auto& server : servers_) server->ExportCustomMetrics(registry);
  fabric_.ExportCustomMetrics(registry);
  return autoscaler.Evaluate(registry, coordinator_->name(), fabric_.name(),
                             config_.num_shards, plan_.ports(),
                             engine_.now());
}

ShardCluster::~ShardCluster() = default;

void ShardCluster::set_fault_injector(net::FaultInjector* injector) {
  if (injector != nullptr && plan_.topology() == GatherTopology::kTree) {
    // A lost child contribution would otherwise wedge its ancestors'
    // merges forever.
    FPGADP_CHECK(config_.gather.merge_timeout_cycles > 0);
  }
  if (injector != nullptr &&
      config_.gather.scatter == ScatterMode::kTree) {
    // A lost bundle silently strands its whole subtree's slices; only the
    // gather deadline can resolve them.
    FPGADP_CHECK(config_.coordinator.gather_deadline_cycles > 0);
  }
  fabric_.set_fault_injector(injector);
}

}  // namespace fpgadp::shard
