#include "src/shard/shard.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/net/agg_switch.h"
#include "src/obs/metrics.h"

namespace fpgadp::shard {

const char* SubOutcomeName(SubOutcome outcome) {
  switch (outcome) {
    case SubOutcome::kPending: return "pending";
    case SubOutcome::kDone: return "done";
    case SubOutcome::kRejected: return "rejected";
    case SubOutcome::kFailed: return "failed";
    case SubOutcome::kTimedOut: return "timed_out";
  }
  return "unknown";
}

ShardCoordinator::ShardCoordinator(std::string name, Workload* workload,
                                   std::vector<net::RdmaEndpoint*> endpoints,
                                   GatherPlan* plan,
                                   net::AggregatingSwitch* agg_switch,
                                   uint32_t num_shards, const Config& config)
    : sim::Module(std::move(name)), workload_(workload),
      endpoints_(std::move(endpoints)), plan_(plan), agg_switch_(agg_switch),
      num_shards_(num_shards), config_(config) {
  FPGADP_CHECK(workload_ != nullptr);
  FPGADP_CHECK(plan_ != nullptr);
  FPGADP_CHECK(endpoints_.size() == plan_->ports());
  for (net::RdmaEndpoint* ep : endpoints_) FPGADP_CHECK(ep != nullptr);
  FPGADP_CHECK((agg_switch_ != nullptr) ==
               (plan_->topology() == GatherTopology::kSwitch));
  FPGADP_CHECK(num_shards_ > 0);
  FPGADP_CHECK(config_.window > 0);
  FPGADP_CHECK(config_.feasibility_headroom_pct > 0 &&
               config_.feasibility_headroom_pct <= 100);
  shard_queue_.resize(num_shards_);
  in_flight_.assign(num_shards_, 0);
  queue_hwm_.assign(num_shards_, 0);
  svc_est_x16_.assign(num_shards_,
                      config_.initial_service_estimate_cycles << 4);
  pending_cost_.assign(num_shards_, 0);
  wire_est_ = config_.initial_wire_estimate_cycles;
}

void ShardCoordinator::Submit(uint64_t request_id) {
  const std::vector<SubRequest> subs = workload_->Scatter(request_id);
  Enqueue(request_id, subs);
}

uint64_t ShardCoordinator::EstimateFor(const SubRequest& sub) const {
  return sub.est_service_cycles > 0 ? sub.est_service_cycles
                                    : svc_est_x16_[sub.shard] >> 4;
}

bool ShardCoordinator::TrySubmit(uint64_t request_id,
                                 const std::vector<SubRequest>& subs,
                                 sim::Cycle now, uint64_t deadline_budget_cycles) {
  (void)now;  // budgets are relative; `now` documents the caller's clock
  switch (config_.admission) {
    case AdmissionPolicy::kQueueDepth:
      if (config_.max_pending > 0 && active_.size() >= config_.max_pending) {
        ++ingress_shed_;
        return false;
      }
      break;
    case AdmissionPolicy::kDeadlineFeasible: {
      const uint64_t budget =
          deadline_budget_cycles * config_.feasibility_headroom_pct / 100;
      for (const SubRequest& sr : subs) {
        FPGADP_CHECK(sr.shard < num_shards_);
        const uint64_t eta =
            wire_est_ + pending_cost_[sr.shard] + EstimateFor(sr);
        if (eta > budget) {
          ++ingress_shed_;
          return false;
        }
      }
      break;
    }
  }
  Enqueue(request_id, subs);
  return true;
}

void ShardCoordinator::Enqueue(uint64_t request_id,
                               const std::vector<SubRequest>& subs) {
  FPGADP_CHECK(active_.find(request_id) == active_.end());
  FPGADP_CHECK(!subs.empty());
  Active a;
  a.subs.reserve(subs.size());
  for (const SubRequest& sr : subs) {
    FPGADP_CHECK(sr.shard < num_shards_);
    Sub sub;
    sub.shard = sr.shard;
    sub.bytes = sr.request_bytes;
    sub.tag = next_tag_++;
    sub.est_cycles = EstimateFor(sr);
    pending_cost_[sr.shard] += sub.est_cycles;
    tag_map_[sub.tag] = {request_id, a.subs.size()};
    shard_queue_[sr.shard].push_back({request_id, a.subs.size()});
    ++total_queued_;
    queue_hwm_[sr.shard] =
        std::max(queue_hwm_[sr.shard], shard_queue_[sr.shard].size());
    a.subs.push_back(sub);
  }
  // Arm the response path before the first slice can ship.
  if (plan_->topology() == GatherTopology::kTree) {
    std::vector<uint32_t> shards;
    shards.reserve(a.subs.size());
    for (const Sub& sub : a.subs) shards.push_back(sub.shard);
    std::sort(shards.begin(), shards.end());
    plan_->Arm(request_id, shards);
  } else if (agg_switch_ != nullptr) {
    std::vector<uint64_t> masks(plan_->ports(), 0);
    for (const Sub& sub : a.subs) {
      masks[plan_->PortOf(sub.shard)] |= 1ull << sub.shard;
    }
    for (uint32_t port = 0; port < plan_->ports(); ++port) {
      if (masks[port] != 0) {
        agg_switch_->Arm(request_id, plan_->PortNode(port), masks[port]);
      }
    }
  }
  active_.emplace(request_id, std::move(a));
}

void ShardCoordinator::ObserveService(uint32_t shard, uint64_t service_cycles,
                                      uint64_t rtt_cycles) {
  // Integer EWMA, alpha = 1/8, in 4-bit fixed point: deterministic across
  // platforms and cheap enough for the response path.
  const int64_t obs_x16 = static_cast<int64_t>(service_cycles << 4);
  int64_t est = static_cast<int64_t>(svc_est_x16_[shard]);
  est += (obs_x16 - est) / 8;
  svc_est_x16_[shard] = static_cast<uint64_t>(est < 16 ? 16 : est);
  // rtt - service still contains shard queue wait; taking the minimum over
  // responses converges on the uncongested wire round trip (the queue term
  // is costed separately via pending_cost_).
  const uint64_t wire =
      rtt_cycles > service_cycles ? rtt_cycles - service_cycles : 0;
  if (!wire_seen_ || wire < wire_est_) {
    wire_est_ = wire;
    wire_seen_ = true;
  }
}

bool ShardCoordinator::PollOutcome(PartialOutcome* out) {
  if (outcomes_.empty()) return false;
  *out = std::move(outcomes_.front());
  outcomes_.pop_front();
  return true;
}

void ShardCoordinator::ResolveSub(uint64_t request_id, size_t sub_index,
                                  SubOutcome outcome, sim::Cycle cycle) {
  const auto it = active_.find(request_id);
  if (it == active_.end()) return;
  Active& a = it->second;
  Sub& sub = a.subs[sub_index];
  if (sub.outcome != SubOutcome::kPending) return;
  sub.outcome = outcome;
  ++a.resolved;
  tag_map_.erase(sub.tag);
  if (sub.sent) --in_flight_[sub.shard];
  pending_cost_[sub.shard] -= std::min(pending_cost_[sub.shard],
                                       sub.est_cycles);
  if (a.resolved == a.subs.size()) Finalize(request_id, a, cycle);
}

void ShardCoordinator::Finalize(uint64_t request_id, Active& a,
                                sim::Cycle cycle) {
  PartialOutcome out;
  out.request_id = request_id;
  out.completed_at = cycle;
  out.slices.reserve(a.subs.size());
  uint32_t failed = 0, rejected = 0, timed_out = 0;
  for (const Sub& sub : a.subs) {
    out.slices.push_back({sub.shard, sub.outcome});
    switch (sub.outcome) {
      case SubOutcome::kDone: ++out.shards_done; break;
      case SubOutcome::kFailed: ++failed; break;
      case SubOutcome::kRejected: ++rejected; break;
      case SubOutcome::kTimedOut: ++timed_out; break;
      case SubOutcome::kPending: break;
    }
  }
  if (out.shards_done == out.shards_total()) {
    out.status = Status::OK();
  } else {
    const std::string detail =
        name() + ": request " + std::to_string(request_id) + ": " +
        std::to_string(out.shards_done) + "/" +
        std::to_string(out.shards_total()) + " slices done (" +
        std::to_string(failed) + " failed, " + std::to_string(rejected) +
        " rejected, " + std::to_string(timed_out) + " timed out)";
    // Failure ranking mirrors accl::PartialOutcome: a dead shard outranks
    // a missed deadline outranks load shedding.
    if (failed > 0) {
      out.status = Status::Unavailable(detail);
    } else if (timed_out > 0) {
      out.status = Status::Timeout(detail);
    } else {
      out.status = Status::ResourceExhausted(detail);
    }
  }
  ++gathers_completed_;
  if (out.degraded()) ++gathers_degraded_;
  workload_->Merge(request_id, out);
  outcomes_.push_back(std::move(out));
  active_.erase(request_id);
  // Tear down the response path: interior shards drop orphaned merge state
  // on their next lookup, and the switch frees any held partial group.
  if (plan_->topology() == GatherTopology::kTree) plan_->Release(request_id);
  if (agg_switch_ != nullptr) agg_switch_->Disarm(request_id);
}

bool ShardCoordinator::PumpQueues(sim::Cycle cycle) {
  bool progressed = false;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    auto& q = shard_queue_[s];
    while (!q.empty()) {
      const auto [request_id, sub_index] = q.front();
      const auto it = active_.find(request_id);
      if (it == active_.end() ||
          it->second.subs[sub_index].outcome != SubOutcome::kPending) {
        // The request finalized (deadline expiry) while this slice waited
        // for window room; there is nobody left to serve it for.
        q.pop_front();
        --total_queued_;
        progressed = true;
        continue;
      }
      if (in_flight_[s] >= config_.window) break;
      Sub& sub = it->second.subs[sub_index];
      net::Packet p;
      p.dst = plan_->ShardNode(s);
      p.kind = net::OpKind::kOffloadReq;
      p.tag = sub.tag;
      p.user = request_id;
      p.bytes = sub.bytes;
      endpoints_[plan_->PortOf(s)]->PostPacket(p);
      sub.sent = true;
      sub.sent_at = cycle;
      ++in_flight_[s];
      q.pop_front();
      --total_queued_;
      progressed = true;
    }
  }
  return progressed;
}

void ShardCoordinator::HandleMergedResponse(const net::Packet& p,
                                            sim::Cycle cycle) {
  const uint64_t request_id = p.user;
  const auto it = active_.find(request_id);
  if (it == active_.end()) {
    ++late_responses_;  // its gather already finalized under the deadline
    return;
  }
  // Collect before resolving: the last ResolveSub may finalize the request
  // and erase the Active entry out from under an in-place iteration.
  std::vector<std::pair<size_t, SubOutcome>> resolutions;
  const Active& a = it->second;
  for (size_t i = 0; i < a.subs.size(); ++i) {
    const Sub& sub = a.subs[i];
    if (sub.outcome != SubOutcome::kPending) continue;
    const uint64_t bit = 1ull << sub.shard;
    if ((p.addr & bit) != 0) {
      resolutions.push_back({i, SubOutcome::kDone});
    } else if ((p.user2 & bit) != 0) {
      resolutions.push_back({i, SubOutcome::kRejected});
    }
  }
  if (resolutions.empty()) {
    ++late_responses_;  // straggler re-covering already-resolved slices
    return;
  }
  for (const auto& [index, outcome] : resolutions) {
    ResolveSub(request_id, index, outcome, cycle);
  }
}

void ShardCoordinator::Tick(sim::Cycle cycle) {
  bool progressed = false;

  // Arm deadlines for requests scattered since the last tick.
  if (config_.gather_deadline_cycles > 0) {
    for (auto& [id, a] : active_) {
      if (a.deadline == 0) a.deadline = cycle + config_.gather_deadline_cycles;
    }
  }

  // Transport verdicts: a slice whose request packet exhausted the retry
  // cap resolves kFailed (successful offload sends complete silently).
  for (net::RdmaEndpoint* ep : endpoints_) {
    net::Completion comp;
    while (ep->PollCompletion(&comp)) {
      progressed = true;
      if (comp.status == StatusCode::kOk) continue;
      const auto it = tag_map_.find(comp.tag);
      if (it == tag_map_.end()) continue;
      ResolveSub(it->second.first, it->second.second, SubOutcome::kFailed,
                 cycle);
    }
  }

  // Responses. Flat gather: one tagged response per slice — bit 0 of user2
  // flags a shard-side rejection, otherwise user2 >> 1 reports the slice's
  // service cycles, which feeds the admission estimator. Tree / switch
  // gather: merged-form responses resolve every slice their masks cover.
  for (net::RdmaEndpoint* ep : endpoints_) {
    net::Packet p;
    while (ep->PollRecv(&p)) {
      progressed = true;
      if (p.kind != net::OpKind::kOffloadResp) continue;
      if (merged_responses()) {
        HandleMergedResponse(p, cycle);
        continue;
      }
      const auto it = tag_map_.find(p.tag);
      if (it == tag_map_.end()) {
        ++late_responses_;  // its gather already finalized under the deadline
        continue;
      }
      const bool busy = (p.user2 & 1) != 0;
      if (!busy) {
        const auto ait = active_.find(it->second.first);
        if (ait != active_.end()) {
          const Sub& sub = ait->second.subs[it->second.second];
          ObserveService(sub.shard, p.user2 >> 1, cycle - sub.sent_at);
        }
      }
      ResolveSub(it->second.first, it->second.second,
                 busy ? SubOutcome::kRejected : SubOutcome::kDone, cycle);
    }
  }

  // Expire gathers past their deadline: pending slices resolve kTimedOut
  // and the request degrades instead of stalling the cluster.
  for (auto it = active_.begin(); it != active_.end();) {
    const uint64_t request_id = it->first;
    Active& a = it->second;
    ++it;  // Finalize erases the entry
    if (a.deadline == 0 || cycle < a.deadline) continue;
    for (Sub& sub : a.subs) {
      if (sub.outcome != SubOutcome::kPending) continue;
      sub.outcome = SubOutcome::kTimedOut;
      ++a.resolved;
      tag_map_.erase(sub.tag);
      if (sub.sent) --in_flight_[sub.shard];
      pending_cost_[sub.shard] -= std::min(pending_cost_[sub.shard],
                                           sub.est_cycles);
      // An unsent slice still sits in its shard queue; PumpQueues drops it.
    }
    Finalize(request_id, a, cycle);
    progressed = true;
  }

  if (PumpQueues(cycle)) progressed = true;

  if (progressed) {
    MarkBusy();
  } else if (!active_.empty()) {
    ++gather_stall_cycles_;
    MarkStall(sim::StallKind::kInputStarved);
  }
}

sim::Cycle ShardCoordinator::NextEventCycle(sim::Cycle now) const {
  for (const net::RdmaEndpoint* ep : endpoints_) {
    if (ep->completions_available() > 0 || ep->recv_available() > 0) {
      return now;
    }
  }
  for (uint32_t s = 0; s < num_shards_; ++s) {
    if (!shard_queue_[s].empty() && in_flight_[s] < config_.window) {
      return now;
    }
  }
  sim::Cycle earliest = sim::kNoEventCycle;
  for (const auto& [id, a] : active_) {
    if (a.deadline == 0) {
      // Unarmed with a deadline configured: the next tick arms it.
      if (config_.gather_deadline_cycles > 0) return now;
      continue;
    }
    earliest = std::min(earliest, a.deadline);
  }
  return earliest > now ? earliest : now;
}

void ShardCoordinator::AttributeSkip(sim::Cycle from, sim::Cycle to) {
  if (active_.empty()) return;  // idle backfill
  const uint64_t n = to - from;
  gather_stall_cycles_ += n;
  MarkStallN(sim::StallKind::kInputStarved, n);
}

void ShardCoordinator::ExportCustomMetrics(
    obs::MetricsRegistry& registry) const {
  const std::string base = "shard." + name();
  registry.GetGauge(base + ".gathers_completed")
      ->Set(static_cast<double>(gathers_completed_));
  registry.GetGauge(base + ".gathers_degraded")
      ->Set(static_cast<double>(gathers_degraded_));
  registry.GetGauge(base + ".late_responses")
      ->Set(static_cast<double>(late_responses_));
  registry.GetGauge(base + ".gather_stall_cycles")
      ->Set(static_cast<double>(gather_stall_cycles_));
  registry.GetGauge(base + ".ingress_shed")
      ->Set(static_cast<double>(ingress_shed_));
  for (uint32_t s = 0; s < num_shards_; ++s) {
    registry.GetGauge(base + ".queue_hwm.shard" + std::to_string(s))
        ->Set(static_cast<double>(queue_hwm_[s]));
  }
}

ShardServer::ShardServer(std::string name, uint32_t shard_id,
                         Workload* workload, net::RdmaEndpoint* endpoint,
                         const GatherPlan* plan, const Config& config)
    : sim::Module(std::move(name)), shard_id_(shard_id), workload_(workload),
      endpoint_(endpoint), plan_(plan), config_(config) {
  FPGADP_CHECK(workload_ != nullptr);
  FPGADP_CHECK(endpoint_ != nullptr);
  FPGADP_CHECK(config_.max_queue > 0);
}

ShardServer::MergeState& ShardServer::TouchMerge(uint64_t request_id,
                                                 sim::Cycle cycle) {
  auto it = merges_.find(request_id);
  if (it == merges_.end()) {
    MergeState m;
    const uint64_t timeout = plan_->config().merge_timeout_cycles;
    if (timeout > 0) m.timeout_at = cycle + timeout;
    it = merges_.emplace(request_id, m).first;
  }
  return it->second;
}

void ShardServer::MaybeEmit(uint64_t request_id, sim::Cycle cycle) {
  const auto it = merges_.find(request_id);
  if (it == merges_.end()) return;
  const GatherPlan::Role* role = plan_->RoleOf(request_id, shard_id_);
  if (role == nullptr) {
    // The gather finalized (deadline expiry) and released its route;
    // nobody upstream is listening anymore.
    ++stale_merges_dropped_;
    merges_.erase(it);
    return;
  }
  if (!it->second.own_resolved ||
      it->second.children_seen < role->expected_children) {
    return;
  }
  EmitMerge(request_id, it->second, cycle);
}

void ShardServer::EmitMerge(uint64_t request_id, MergeState& m,
                            sim::Cycle cycle) {
  const GatherPlan::Role* role = plan_->RoleOf(request_id, shard_id_);
  if (role == nullptr) {
    ++stale_merges_dropped_;
    merges_.erase(request_id);
    return;
  }
  net::Packet up;
  up.dst = role->parent == GatherPlan::kToCoordinator
               ? plan_->PortNode(role->port)
               : plan_->ShardNode(role->parent);
  up.kind = net::OpKind::kOffloadResp;
  up.user = request_id;
  up.addr = m.done_mask;
  up.user2 = m.rejected_mask;
  up.bytes = m.done_mask == 0 ? 0
                              : workload_->MergedBytes(request_id, m.done_mask,
                                                       m.concat_bytes);
  // The merge engine pays per child folded in; its own partial is already
  // in the pipeline, so a leaf forwards with no extra delay.
  const sim::Cycle at =
      cycle + plan_->config().merge_cycles_per_input * m.children_seen;
  if (at <= cycle) {
    endpoint_->PostPacket(up);
  } else {
    emits_.push_back({at, up});
  }
  ++merges_forwarded_;
  merges_.erase(request_id);
}

void ShardServer::Tick(sim::Cycle cycle) {
  bool progressed = false;
  const GatherTopology topo = topology();

  // Post merged packets whose merge-cost delay elapsed (tree gather).
  for (size_t i = 0; i < emits_.size();) {
    if (emits_[i].at <= cycle) {
      endpoint_->PostPacket(emits_[i].packet);
      emits_.erase(emits_.begin() + static_cast<ptrdiff_t>(i));
      progressed = true;
    } else {
      ++i;
    }
  }

  // Retire the slice in service: its occupancy elapsed, so the reply ships
  // (flat / switch gather) or folds into the subtree merge (tree gather).
  if (busy_ && cycle >= done_at_) {
    busy_ = false;
    progressed = true;
    if (topo == GatherTopology::kTree) {
      MergeState& m = TouchMerge(pending_resp_.user, cycle);
      m.done_mask |= 1ull << shard_id_;
      m.concat_bytes += pending_resp_.bytes;
      m.own_resolved = true;
      MaybeEmit(pending_resp_.user, cycle);
    } else {
      endpoint_->PostPacket(pending_resp_);
    }
  }

  // Admit or shed request arrivals; fold child contributions (tree gather
  // interior nodes) into their request's merge state.
  net::Packet p;
  while (endpoint_->PollRecv(&p)) {
    progressed = true;
    if (p.kind == net::OpKind::kOffloadResp) {
      // Only tree-gather interior nodes receive responses: a child
      // subtree's merged contribution.
      if (topo != GatherTopology::kTree) continue;
      MergeState& m = TouchMerge(p.user, cycle);
      m.done_mask |= p.addr;
      m.rejected_mask |= p.user2;
      m.concat_bytes += p.bytes;
      ++m.children_seen;
      MaybeEmit(p.user, cycle);
      continue;
    }
    if (p.kind != net::OpKind::kOffloadReq) continue;
    if (queue_.size() >= config_.max_queue) {
      ++rejected_;
      if (topo == GatherTopology::kTree) {
        // The rejection rides up the tree in the mask; the node still
        // merges and forwards its children's results.
        MergeState& m = TouchMerge(p.user, cycle);
        m.rejected_mask |= 1ull << shard_id_;
        m.own_resolved = true;
        MaybeEmit(p.user, cycle);
      } else {
        net::Packet busy_resp;
        busy_resp.dst = p.src;
        busy_resp.kind = net::OpKind::kOffloadResp;
        busy_resp.tag = p.tag;
        busy_resp.user = p.user;
        if (topo == GatherTopology::kSwitch) {
          busy_resp.user2 = 1ull << shard_id_;  // merged-form rejected mask
        } else {
          busy_resp.user2 = 1;  // admission-rejected
        }
        endpoint_->PostPacket(busy_resp);
      }
    } else {
      queue_.push_back(p);
      queue_hwm_ = std::max(queue_hwm_, queue_.size());
    }
  }

  // Start the next slice.
  if (!busy_ && !queue_.empty()) {
    const net::Packet req = queue_.front();
    queue_.pop_front();
    const Service svc = workload_->Serve(shard_id_, req.user);
    const uint64_t cycles_needed = std::max<uint64_t>(1, svc.compute_cycles);
    busy_ = true;
    done_at_ = cycle + cycles_needed;
    service_cycles_ += cycles_needed;
    ++served_;
    pending_resp_ = net::Packet{};
    pending_resp_.kind = net::OpKind::kOffloadResp;
    pending_resp_.user = req.user;
    pending_resp_.bytes = svc.response_bytes;
    if (topo == GatherTopology::kFlat) {
      pending_resp_.dst = req.src;
      pending_resp_.tag = req.tag;
      pending_resp_.user2 = cycles_needed << 1;  // bit 0 clear = served
    } else if (topo == GatherTopology::kSwitch) {
      pending_resp_.dst = req.src;
      pending_resp_.addr = 1ull << shard_id_;  // merged-form done mask
    }
    // Tree gather: the destination (parent or port) is resolved at emit.
    progressed = true;
  }

  // Force partial forwards whose merge timeout expired: a dead child costs
  // its subtree, never the ancestors (tree gather on a lossy fabric).
  for (auto it = merges_.begin(); it != merges_.end();) {
    const uint64_t request_id = it->first;
    MergeState& m = it->second;
    ++it;  // EmitMerge erases the entry
    if (m.timeout_at == 0 || cycle < m.timeout_at) continue;
    ++merge_timeouts_;
    EmitMerge(request_id, m, cycle);
    progressed = true;
  }

  // Drain transport completions. A response that exhausts its retry cap
  // surfaces in the endpoint's failed() latch; the coordinator's gather
  // deadline covers the loss.
  net::Completion comp;
  while (endpoint_->PollCompletion(&comp)) progressed = true;

  if (busy_ || progressed) MarkBusy();
}

sim::Cycle ShardServer::NextEventCycle(sim::Cycle now) const {
  if (endpoint_->recv_available() > 0 ||
      endpoint_->completions_available() > 0) {
    return now;
  }
  if (!busy_ && !queue_.empty()) return now;
  sim::Cycle earliest = sim::kNoEventCycle;
  if (busy_) earliest = done_at_ > now ? done_at_ : now;
  for (const PendingEmit& e : emits_) {
    earliest = std::min(earliest, e.at > now ? e.at : now);
  }
  for (const auto& [id, m] : merges_) {
    if (m.timeout_at > 0) {
      earliest = std::min(earliest, m.timeout_at > now ? m.timeout_at : now);
    }
  }
  return earliest;
}

void ShardServer::AttributeSkip(sim::Cycle from, sim::Cycle to) {
  if (busy_) MarkBusyN(to - from);
}

void ShardServer::ExportCustomMetrics(obs::MetricsRegistry& registry) const {
  const std::string base = "shard." + name();
  registry.GetGauge(base + ".served")->Set(static_cast<double>(served_));
  registry.GetGauge(base + ".rejected")->Set(static_cast<double>(rejected_));
  registry.GetGauge(base + ".service_cycles")
      ->Set(static_cast<double>(service_cycles_));
  registry.GetGauge(base + ".queue_hwm")
      ->Set(static_cast<double>(queue_hwm_));
  if (plan_ != nullptr && plan_->topology() == GatherTopology::kTree) {
    registry.GetGauge(base + ".merges_forwarded")
        ->Set(static_cast<double>(merges_forwarded_));
    registry.GetGauge(base + ".merge_timeouts")
        ->Set(static_cast<double>(merge_timeouts_));
    registry.GetGauge(base + ".stale_merges_dropped")
        ->Set(static_cast<double>(stale_merges_dropped_));
  }
}

ShardCluster::ShardCluster(Workload* workload, const Config& config)
    : config_(config), plan_(config.gather, config.num_shards),
      engine_(config.fabric.clock_hz),
      fabric_("fabric", plan_.num_nodes(), config.fabric) {
  FPGADP_CHECK(workload != nullptr);
  FPGADP_CHECK(config_.num_shards > 0);
  if (plan_.topology() == GatherTopology::kSwitch) {
    net::AggregatingSwitch::Config sc;
    sc.combine_cycles_per_resp = config_.gather.switch_combine_cycles;
    agg_switch_ = std::make_unique<net::AggregatingSwitch>(
        sc, [workload](uint64_t request_id, uint64_t done_mask,
                       uint64_t concat_bytes) {
          return workload->MergedBytes(request_id, done_mask, concat_bytes);
        });
    fabric_.set_agg_switch(agg_switch_.get());
  }
  fabric_.RegisterWith(engine_);
  for (uint32_t port = 0; port < plan_.ports(); ++port) {
    coordinator_eps_.push_back(std::make_unique<net::RdmaEndpoint>(
        port == 0 ? "coord.ep" : "coord.ep" + std::to_string(port),
        plan_.PortNode(port), &fabric_, config_.reliability));
    engine_.AddModule(coordinator_eps_.back().get());
  }
  for (uint32_t s = 0; s < config_.num_shards; ++s) {
    server_eps_.push_back(std::make_unique<net::RdmaEndpoint>(
        "shard" + std::to_string(s) + ".ep", plan_.ShardNode(s), &fabric_,
        config_.reliability));
    engine_.AddModule(server_eps_.back().get());
  }
  std::vector<net::RdmaEndpoint*> eps;
  eps.reserve(coordinator_eps_.size());
  for (auto& ep : coordinator_eps_) eps.push_back(ep.get());
  coordinator_ = std::make_unique<ShardCoordinator>(
      "coord", workload, std::move(eps), &plan_, agg_switch_.get(),
      config_.num_shards, config_.coordinator);
  engine_.AddModule(coordinator_.get());
  for (uint32_t s = 0; s < config_.num_shards; ++s) {
    servers_.push_back(std::make_unique<ShardServer>(
        "shard" + std::to_string(s), s, workload, server_eps_[s].get(),
        &plan_, config_.server));
    engine_.AddModule(servers_.back().get());
  }
}

ShardCluster::~ShardCluster() = default;

void ShardCluster::set_fault_injector(net::FaultInjector* injector) {
  if (injector != nullptr && plan_.topology() == GatherTopology::kTree) {
    // A lost child contribution would otherwise wedge its ancestors'
    // merges forever.
    FPGADP_CHECK(config_.gather.merge_timeout_cycles > 0);
  }
  fabric_.set_fault_injector(injector);
}

}  // namespace fpgadp::shard
