#include "src/shard/shard.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/obs/metrics.h"

namespace fpgadp::shard {

namespace {

/// Shard `s` lives at fabric node 1 + s; the coordinator owns node 0.
constexpr uint32_t kCoordinatorNode = 0;

uint32_t ShardNode(uint32_t shard) { return 1 + shard; }

}  // namespace

const char* SubOutcomeName(SubOutcome outcome) {
  switch (outcome) {
    case SubOutcome::kPending: return "pending";
    case SubOutcome::kDone: return "done";
    case SubOutcome::kRejected: return "rejected";
    case SubOutcome::kFailed: return "failed";
    case SubOutcome::kTimedOut: return "timed_out";
  }
  return "unknown";
}

ShardCoordinator::ShardCoordinator(std::string name, Workload* workload,
                                   net::RdmaEndpoint* endpoint,
                                   uint32_t num_shards, const Config& config)
    : sim::Module(std::move(name)), workload_(workload), endpoint_(endpoint),
      num_shards_(num_shards), config_(config) {
  FPGADP_CHECK(workload_ != nullptr);
  FPGADP_CHECK(endpoint_ != nullptr);
  FPGADP_CHECK(num_shards_ > 0);
  FPGADP_CHECK(config_.window > 0);
  FPGADP_CHECK(config_.feasibility_headroom_pct > 0 &&
               config_.feasibility_headroom_pct <= 100);
  shard_queue_.resize(num_shards_);
  in_flight_.assign(num_shards_, 0);
  queue_hwm_.assign(num_shards_, 0);
  svc_est_x16_.assign(num_shards_,
                      config_.initial_service_estimate_cycles << 4);
  pending_cost_.assign(num_shards_, 0);
  wire_est_ = config_.initial_wire_estimate_cycles;
}

void ShardCoordinator::Submit(uint64_t request_id) {
  const std::vector<SubRequest> subs = workload_->Scatter(request_id);
  Enqueue(request_id, subs);
}

uint64_t ShardCoordinator::EstimateFor(const SubRequest& sub) const {
  return sub.est_service_cycles > 0 ? sub.est_service_cycles
                                    : svc_est_x16_[sub.shard] >> 4;
}

bool ShardCoordinator::TrySubmit(uint64_t request_id,
                                 const std::vector<SubRequest>& subs,
                                 sim::Cycle now, uint64_t deadline_budget_cycles) {
  (void)now;  // budgets are relative; `now` documents the caller's clock
  switch (config_.admission) {
    case AdmissionPolicy::kQueueDepth:
      if (config_.max_pending > 0 && active_.size() >= config_.max_pending) {
        ++ingress_shed_;
        return false;
      }
      break;
    case AdmissionPolicy::kDeadlineFeasible: {
      const uint64_t budget =
          deadline_budget_cycles * config_.feasibility_headroom_pct / 100;
      for (const SubRequest& sr : subs) {
        FPGADP_CHECK(sr.shard < num_shards_);
        const uint64_t eta =
            wire_est_ + pending_cost_[sr.shard] + EstimateFor(sr);
        if (eta > budget) {
          ++ingress_shed_;
          return false;
        }
      }
      break;
    }
  }
  Enqueue(request_id, subs);
  return true;
}

void ShardCoordinator::Enqueue(uint64_t request_id,
                               const std::vector<SubRequest>& subs) {
  FPGADP_CHECK(active_.find(request_id) == active_.end());
  FPGADP_CHECK(!subs.empty());
  Active a;
  a.subs.reserve(subs.size());
  for (const SubRequest& sr : subs) {
    FPGADP_CHECK(sr.shard < num_shards_);
    Sub sub;
    sub.shard = sr.shard;
    sub.bytes = sr.request_bytes;
    sub.tag = next_tag_++;
    sub.est_cycles = EstimateFor(sr);
    pending_cost_[sr.shard] += sub.est_cycles;
    tag_map_[sub.tag] = {request_id, a.subs.size()};
    shard_queue_[sr.shard].push_back({request_id, a.subs.size()});
    ++total_queued_;
    queue_hwm_[sr.shard] =
        std::max(queue_hwm_[sr.shard], shard_queue_[sr.shard].size());
    a.subs.push_back(sub);
  }
  active_.emplace(request_id, std::move(a));
}

void ShardCoordinator::ObserveService(uint32_t shard, uint64_t service_cycles,
                                      uint64_t rtt_cycles) {
  // Integer EWMA, alpha = 1/8, in 4-bit fixed point: deterministic across
  // platforms and cheap enough for the response path.
  const int64_t obs_x16 = static_cast<int64_t>(service_cycles << 4);
  int64_t est = static_cast<int64_t>(svc_est_x16_[shard]);
  est += (obs_x16 - est) / 8;
  svc_est_x16_[shard] = static_cast<uint64_t>(est < 16 ? 16 : est);
  // rtt - service still contains shard queue wait; taking the minimum over
  // responses converges on the uncongested wire round trip (the queue term
  // is costed separately via pending_cost_).
  const uint64_t wire =
      rtt_cycles > service_cycles ? rtt_cycles - service_cycles : 0;
  if (!wire_seen_ || wire < wire_est_) {
    wire_est_ = wire;
    wire_seen_ = true;
  }
}

bool ShardCoordinator::PollOutcome(PartialOutcome* out) {
  if (outcomes_.empty()) return false;
  *out = std::move(outcomes_.front());
  outcomes_.pop_front();
  return true;
}

void ShardCoordinator::ResolveSub(uint64_t request_id, size_t sub_index,
                                  SubOutcome outcome, sim::Cycle cycle) {
  const auto it = active_.find(request_id);
  if (it == active_.end()) return;
  Active& a = it->second;
  Sub& sub = a.subs[sub_index];
  if (sub.outcome != SubOutcome::kPending) return;
  sub.outcome = outcome;
  ++a.resolved;
  tag_map_.erase(sub.tag);
  if (sub.sent) --in_flight_[sub.shard];
  pending_cost_[sub.shard] -= std::min(pending_cost_[sub.shard],
                                       sub.est_cycles);
  if (a.resolved == a.subs.size()) Finalize(request_id, a, cycle);
}

void ShardCoordinator::Finalize(uint64_t request_id, Active& a,
                                sim::Cycle cycle) {
  PartialOutcome out;
  out.request_id = request_id;
  out.completed_at = cycle;
  out.slices.reserve(a.subs.size());
  uint32_t failed = 0, rejected = 0, timed_out = 0;
  for (const Sub& sub : a.subs) {
    out.slices.push_back({sub.shard, sub.outcome});
    switch (sub.outcome) {
      case SubOutcome::kDone: ++out.shards_done; break;
      case SubOutcome::kFailed: ++failed; break;
      case SubOutcome::kRejected: ++rejected; break;
      case SubOutcome::kTimedOut: ++timed_out; break;
      case SubOutcome::kPending: break;
    }
  }
  if (out.shards_done == out.shards_total()) {
    out.status = Status::OK();
  } else {
    const std::string detail =
        name() + ": request " + std::to_string(request_id) + ": " +
        std::to_string(out.shards_done) + "/" +
        std::to_string(out.shards_total()) + " slices done (" +
        std::to_string(failed) + " failed, " + std::to_string(rejected) +
        " rejected, " + std::to_string(timed_out) + " timed out)";
    // Failure ranking mirrors accl::PartialOutcome: a dead shard outranks
    // a missed deadline outranks load shedding.
    if (failed > 0) {
      out.status = Status::Unavailable(detail);
    } else if (timed_out > 0) {
      out.status = Status::Timeout(detail);
    } else {
      out.status = Status::ResourceExhausted(detail);
    }
  }
  ++gathers_completed_;
  if (out.degraded()) ++gathers_degraded_;
  workload_->Merge(request_id, out);
  outcomes_.push_back(std::move(out));
  active_.erase(request_id);
}

bool ShardCoordinator::PumpQueues(sim::Cycle cycle) {
  bool progressed = false;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    auto& q = shard_queue_[s];
    while (!q.empty()) {
      const auto [request_id, sub_index] = q.front();
      const auto it = active_.find(request_id);
      if (it == active_.end() ||
          it->second.subs[sub_index].outcome != SubOutcome::kPending) {
        // The request finalized (deadline expiry) while this slice waited
        // for window room; there is nobody left to serve it for.
        q.pop_front();
        --total_queued_;
        progressed = true;
        continue;
      }
      if (in_flight_[s] >= config_.window) break;
      Sub& sub = it->second.subs[sub_index];
      net::Packet p;
      p.dst = ShardNode(s);
      p.kind = net::OpKind::kOffloadReq;
      p.tag = sub.tag;
      p.user = request_id;
      p.bytes = sub.bytes;
      endpoint_->PostPacket(p);
      sub.sent = true;
      sub.sent_at = cycle;
      ++in_flight_[s];
      q.pop_front();
      --total_queued_;
      progressed = true;
    }
  }
  return progressed;
}

void ShardCoordinator::Tick(sim::Cycle cycle) {
  bool progressed = false;

  // Arm deadlines for requests scattered since the last tick.
  if (config_.gather_deadline_cycles > 0) {
    for (auto& [id, a] : active_) {
      if (a.deadline == 0) a.deadline = cycle + config_.gather_deadline_cycles;
    }
  }

  // Transport verdicts: a slice whose request packet exhausted the retry
  // cap resolves kFailed (successful offload sends complete silently).
  net::Completion comp;
  while (endpoint_->PollCompletion(&comp)) {
    progressed = true;
    if (comp.status == StatusCode::kOk) continue;
    const auto it = tag_map_.find(comp.tag);
    if (it == tag_map_.end()) continue;
    ResolveSub(it->second.first, it->second.second, SubOutcome::kFailed,
               cycle);
  }

  // Responses: merged slices and admission rejections. Bit 0 of user2
  // flags a shard-side rejection; otherwise user2 >> 1 reports the slice's
  // service cycles, which feeds the admission estimator.
  net::Packet p;
  while (endpoint_->PollRecv(&p)) {
    progressed = true;
    if (p.kind != net::OpKind::kOffloadResp) continue;
    const auto it = tag_map_.find(p.tag);
    if (it == tag_map_.end()) {
      ++late_responses_;  // its gather already finalized under the deadline
      continue;
    }
    const bool busy = (p.user2 & 1) != 0;
    if (!busy) {
      const auto ait = active_.find(it->second.first);
      if (ait != active_.end()) {
        const Sub& sub = ait->second.subs[it->second.second];
        ObserveService(sub.shard, p.user2 >> 1, cycle - sub.sent_at);
      }
    }
    ResolveSub(it->second.first, it->second.second,
               busy ? SubOutcome::kRejected : SubOutcome::kDone, cycle);
  }

  // Expire gathers past their deadline: pending slices resolve kTimedOut
  // and the request degrades instead of stalling the cluster.
  for (auto it = active_.begin(); it != active_.end();) {
    const uint64_t request_id = it->first;
    Active& a = it->second;
    ++it;  // Finalize erases the entry
    if (a.deadline == 0 || cycle < a.deadline) continue;
    for (Sub& sub : a.subs) {
      if (sub.outcome != SubOutcome::kPending) continue;
      sub.outcome = SubOutcome::kTimedOut;
      ++a.resolved;
      tag_map_.erase(sub.tag);
      if (sub.sent) --in_flight_[sub.shard];
      pending_cost_[sub.shard] -= std::min(pending_cost_[sub.shard],
                                           sub.est_cycles);
      // An unsent slice still sits in its shard queue; PumpQueues drops it.
    }
    Finalize(request_id, a, cycle);
    progressed = true;
  }

  if (PumpQueues(cycle)) progressed = true;

  if (progressed) {
    MarkBusy();
  } else if (!active_.empty()) {
    ++gather_stall_cycles_;
    MarkStall(sim::StallKind::kInputStarved);
  }
}

sim::Cycle ShardCoordinator::NextEventCycle(sim::Cycle now) const {
  if (endpoint_->completions_available() > 0 ||
      endpoint_->recv_available() > 0) {
    return now;
  }
  for (uint32_t s = 0; s < num_shards_; ++s) {
    if (!shard_queue_[s].empty() && in_flight_[s] < config_.window) {
      return now;
    }
  }
  sim::Cycle earliest = sim::kNoEventCycle;
  for (const auto& [id, a] : active_) {
    if (a.deadline == 0) {
      // Unarmed with a deadline configured: the next tick arms it.
      if (config_.gather_deadline_cycles > 0) return now;
      continue;
    }
    earliest = std::min(earliest, a.deadline);
  }
  return earliest > now ? earliest : now;
}

void ShardCoordinator::AttributeSkip(sim::Cycle from, sim::Cycle to) {
  if (active_.empty()) return;  // idle backfill
  const uint64_t n = to - from;
  gather_stall_cycles_ += n;
  MarkStallN(sim::StallKind::kInputStarved, n);
}

void ShardCoordinator::ExportCustomMetrics(
    obs::MetricsRegistry& registry) const {
  const std::string base = "shard." + name();
  registry.GetGauge(base + ".gathers_completed")
      ->Set(static_cast<double>(gathers_completed_));
  registry.GetGauge(base + ".gathers_degraded")
      ->Set(static_cast<double>(gathers_degraded_));
  registry.GetGauge(base + ".late_responses")
      ->Set(static_cast<double>(late_responses_));
  registry.GetGauge(base + ".gather_stall_cycles")
      ->Set(static_cast<double>(gather_stall_cycles_));
  registry.GetGauge(base + ".ingress_shed")
      ->Set(static_cast<double>(ingress_shed_));
  for (uint32_t s = 0; s < num_shards_; ++s) {
    registry.GetGauge(base + ".queue_hwm.shard" + std::to_string(s))
        ->Set(static_cast<double>(queue_hwm_[s]));
  }
}

ShardServer::ShardServer(std::string name, uint32_t shard_id,
                         Workload* workload, net::RdmaEndpoint* endpoint,
                         const Config& config)
    : sim::Module(std::move(name)), shard_id_(shard_id), workload_(workload),
      endpoint_(endpoint), config_(config) {
  FPGADP_CHECK(workload_ != nullptr);
  FPGADP_CHECK(endpoint_ != nullptr);
  FPGADP_CHECK(config_.max_queue > 0);
}

void ShardServer::Tick(sim::Cycle cycle) {
  bool progressed = false;

  // Retire the slice in service: its occupancy elapsed, the reply ships.
  if (busy_ && cycle >= done_at_) {
    endpoint_->PostPacket(pending_resp_);
    busy_ = false;
    progressed = true;
  }

  // Admit or shed arrivals.
  net::Packet p;
  while (endpoint_->PollRecv(&p)) {
    progressed = true;
    if (p.kind != net::OpKind::kOffloadReq) continue;
    if (queue_.size() >= config_.max_queue) {
      ++rejected_;
      net::Packet busy_resp;
      busy_resp.dst = p.src;
      busy_resp.kind = net::OpKind::kOffloadResp;
      busy_resp.tag = p.tag;
      busy_resp.user = p.user;
      busy_resp.user2 = 1;  // admission-rejected
      endpoint_->PostPacket(busy_resp);
    } else {
      queue_.push_back(p);
      queue_hwm_ = std::max(queue_hwm_, queue_.size());
    }
  }

  // Start the next slice.
  if (!busy_ && !queue_.empty()) {
    const net::Packet req = queue_.front();
    queue_.pop_front();
    const Service svc = workload_->Serve(shard_id_, req.user);
    const uint64_t cycles = std::max<uint64_t>(1, svc.compute_cycles);
    busy_ = true;
    done_at_ = cycle + cycles;
    service_cycles_ += cycles;
    ++served_;
    pending_resp_ = net::Packet{};
    pending_resp_.dst = req.src;
    pending_resp_.kind = net::OpKind::kOffloadResp;
    pending_resp_.tag = req.tag;
    pending_resp_.user = req.user;
    pending_resp_.user2 = cycles << 1;  // bit 0 clear = served; see shard.h
    pending_resp_.bytes = svc.response_bytes;
    progressed = true;
  }

  // Drain transport completions. A response that exhausts its retry cap
  // surfaces in the endpoint's failed() latch; the coordinator's gather
  // deadline covers the loss.
  net::Completion comp;
  while (endpoint_->PollCompletion(&comp)) progressed = true;

  if (busy_ || progressed) MarkBusy();
}

sim::Cycle ShardServer::NextEventCycle(sim::Cycle now) const {
  if (endpoint_->recv_available() > 0 ||
      endpoint_->completions_available() > 0) {
    return now;
  }
  if (busy_) return done_at_ > now ? done_at_ : now;
  if (!queue_.empty()) return now;
  return sim::kNoEventCycle;
}

void ShardServer::AttributeSkip(sim::Cycle from, sim::Cycle to) {
  if (busy_) MarkBusyN(to - from);
}

void ShardServer::ExportCustomMetrics(obs::MetricsRegistry& registry) const {
  const std::string base = "shard." + name();
  registry.GetGauge(base + ".served")->Set(static_cast<double>(served_));
  registry.GetGauge(base + ".rejected")->Set(static_cast<double>(rejected_));
  registry.GetGauge(base + ".service_cycles")
      ->Set(static_cast<double>(service_cycles_));
  registry.GetGauge(base + ".queue_hwm")
      ->Set(static_cast<double>(queue_hwm_));
}

ShardCluster::ShardCluster(Workload* workload, const Config& config)
    : config_(config), engine_(config.fabric.clock_hz),
      fabric_("fabric", 1 + config.num_shards, config.fabric) {
  FPGADP_CHECK(workload != nullptr);
  FPGADP_CHECK(config_.num_shards > 0);
  fabric_.RegisterWith(engine_);
  coordinator_ep_ = std::make_unique<net::RdmaEndpoint>(
      "coord.ep", kCoordinatorNode, &fabric_, config_.reliability);
  engine_.AddModule(coordinator_ep_.get());
  for (uint32_t s = 0; s < config_.num_shards; ++s) {
    server_eps_.push_back(std::make_unique<net::RdmaEndpoint>(
        "shard" + std::to_string(s) + ".ep", ShardNode(s), &fabric_,
        config_.reliability));
    engine_.AddModule(server_eps_.back().get());
  }
  coordinator_ = std::make_unique<ShardCoordinator>(
      "coord", workload, coordinator_ep_.get(), config_.num_shards,
      config_.coordinator);
  engine_.AddModule(coordinator_.get());
  for (uint32_t s = 0; s < config_.num_shards; ++s) {
    servers_.push_back(std::make_unique<ShardServer>(
        "shard" + std::to_string(s), s, workload, server_eps_[s].get(),
        config_.server));
    engine_.AddModule(servers_.back().get());
  }
}

void ShardCluster::set_fault_injector(net::FaultInjector* injector) {
  fabric_.set_fault_injector(injector);
}

}  // namespace fpgadp::shard
