#ifndef FPGADP_SHARD_GATHER_H_
#define FPGADP_SHARD_GATHER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fpgadp::shard {

/// How shard responses travel back to the coordinator.
enum class GatherTopology : uint8_t {
  /// Every shard replies straight to the coordinator port its request came
  /// from. The E22 incumbent: all response bytes serialize through the
  /// coordinator's ingress port(s) — the fan-in wall.
  kFlat = 0,
  /// Responses climb a k-ary tree rooted at each coordinator port: interior
  /// shards partial-merge their children's responses with their own before
  /// forwarding (top-k of top-k's, multi-get concat), so the coordinator
  /// receives one merged packet per subtree instead of one per shard.
  kTree = 1,
  /// Responses are combined inside the switch by a per-port aggregation
  /// engine (net::AggregatingSwitch): shards reply as in flat gather, but
  /// the packets never occupy the coordinator's receive port — only the
  /// single combined response per port does.
  kSwitch = 2,
};

/// Returns a stable lowercase name for `topology` ("flat", "tree", "switch").
const char* GatherTopologyName(GatherTopology topology);

/// Parses "flat" / "tree" / "switch" (as spelled by GatherTopologyName);
/// returns false on anything else.
bool ParseGatherTopology(const std::string& text, GatherTopology* out);

/// How request slices travel from the coordinator to the shards.
enum class ScatterMode : uint8_t {
  /// One point-to-point kOffloadReq per slice through the shard's
  /// coordinator port — the historical request path, whose egress
  /// serializes every slice (and re-sends the shared portion of the
  /// request once per shard).
  kUnicast = 0,
  /// Request slices ride the same per-port k-ary tree the gather uses, as
  /// subtree bundles: the coordinator ships one bundle per group root
  /// carrying the request's shared bytes once plus every member's distinct
  /// bytes; interior shards peel off their own slice and forward one
  /// smaller bundle per child. Multicast on the wire: shared bytes cross
  /// the coordinator egress exactly once per group instead of once per
  /// shard, and a dead interior node degrades exactly its subtree.
  kTree = 1,
};

/// Gather-path shape of one ShardCluster. Also owns the cluster's node
/// numbering, because the coordinator's port count determines it.
struct GatherConfig {
  GatherTopology topology = GatherTopology::kFlat;
  /// Coordinator ingress ports (one RdmaEndpoint / QP each). Port p owns
  /// fabric node p; shard s talks to port s % coordinator_ports. More ports
  /// multiply the coordinator's aggregate line rate — the strengthened flat
  /// baseline of E24.
  uint32_t coordinator_ports = 1;
  /// kTree: children per interior node.
  uint32_t fanout = 2;
  /// kTree: cycles an interior shard's merge engine spends folding in one
  /// child response (its own partial is already in the pipeline).
  uint64_t merge_cycles_per_input = 4;
  /// kTree: cycles after which an interior node forwards whatever subset of
  /// its children has arrived, so a dead child degrades its own subtree
  /// instead of wedging every ancestor. 0 waits forever — only safe on a
  /// loss-free fabric, where every child contribution always arrives.
  uint64_t merge_timeout_cycles = 0;
  /// kSwitch: cycles the switch's per-port combiner spends folding in one
  /// response.
  uint64_t switch_combine_cycles = 8;
  /// Request-path routing (independent of the response topology; any
  /// combination is legal except scatter trees with replication).
  ScatterMode scatter = ScatterMode::kUnicast;
  /// scatter == kTree: cycles an interior shard's NIC spends peeling one
  /// child bundle out of an arriving bundle before forwarding it.
  uint64_t scatter_forward_cycles = 4;
  /// kTree responses: fold each child contribution into the partial merge
  /// the cycle it arrives (the merge engine overlaps the gather window)
  /// instead of folding all children serially after the last one lands.
  /// Off by default to preserve the historical tree-gather cycle counts.
  bool pipelined_merge = false;
};

/// The routing half of hierarchical gather: which fabric node each shard's
/// response goes to, and how many child contributions an interior shard
/// must fold in before forwarding. Shared by the coordinator (which arms a
/// route per request at scatter and releases it at finalize) and every
/// ShardServer (which looks its role up when a slice completes).
///
/// Routes are per request because a request may touch any subset of shards
/// (a multi-get's keys rarely cover all of them). Participants are grouped
/// by their coordinator port (shard % ports); each group forms one
/// array-heap-shaped `fanout`-ary tree over its members in ascending shard
/// order — child i's parent is member (i-1)/fanout — whose root forwards
/// the group's merged response to the group's port.
///
/// Thread-safety: none needed. ShardCoordinator is not parallel-safe, so
/// any engine containing one ticks serially (see sim::Engine); the plan is
/// only touched from coordinator and server Tick()s.
class GatherPlan {
 public:
  /// Sentinel parent: forward to the coordinator port, not a shard.
  static constexpr uint32_t kToCoordinator = 0xffffffffu;

  /// A shard's place in one request's gather tree.
  struct Role {
    uint32_t parent = kToCoordinator;  ///< Shard id, or kToCoordinator.
    uint32_t port = 0;  ///< Destination port when parent == kToCoordinator.
    uint32_t expected_children = 0;  ///< Contributions to fold in.
    /// Child shards in tree order (scatter == kTree: the bundles this node
    /// peels off and forwards).
    std::vector<uint32_t> down;
    /// This shard's own request slice, on the wire (shared + distinct).
    uint64_t slice_bytes = 0;
    /// Bundle bytes for this node's whole subtree: the request's shared
    /// bytes once, plus every subtree member's distinct bytes.
    uint64_t subtree_bytes = 0;
    /// Coordinator tag of this shard's slice, so a scatter-tree recipient
    /// can address its flat-gather response without a per-slice request
    /// packet having carried the tag to it.
    uint64_t tag = 0;
  };

  /// Everything Arm needs to know about one slice of a request.
  struct SliceInfo {
    uint32_t shard = 0;
    uint64_t request_bytes = 0;  ///< Wire bytes incl. the shared portion.
    uint64_t tag = 0;
  };

  /// `replicas` is the per-shard replication factor R: every shard gets R
  /// fabric nodes, one per replica. R > 1 requires flat topology (tree and
  /// switch gather route by shard id, not by replica).
  GatherPlan(const GatherConfig& config, uint32_t num_shards,
             uint32_t replicas = 1);

  GatherTopology topology() const { return config_.topology; }
  uint32_t ports() const { return config_.coordinator_ports; }
  uint32_t num_shards() const { return num_shards_; }
  uint32_t replicas() const { return replicas_; }
  const GatherConfig& config() const { return config_; }

  // Node numbering: coordinator ports occupy fabric nodes [0, ports);
  // replica r of shard s lives at ports + r * num_shards + s, so the R=1
  // layout is the historical one (coordinator at node 0, shard s at 1 + s)
  // and growing R appends whole replica tiers without renumbering anything.
  uint32_t num_nodes() const { return ports() + replicas_ * num_shards_; }
  uint32_t ReplicaNode(uint32_t shard, uint32_t replica) const {
    return ports() + replica * num_shards_ + shard;
  }
  uint32_t ShardNode(uint32_t shard) const { return ReplicaNode(shard, 0); }
  uint32_t PortNode(uint32_t port) const { return port; }
  /// Coordinator port serving `shard` (request egress and, in flat and
  /// switch gather, response ingress).
  uint32_t PortOf(uint32_t shard) const {
    return shard % config_.coordinator_ports;
  }

  /// Tree gather and/or tree scatter: builds the request's per-port trees
  /// over `shards` (sorted, unique). Must run before the first slice ships.
  void Arm(uint64_t request_id, const std::vector<uint32_t>& shards);
  /// Full form: per-slice wire sizes and tags let the routes double as the
  /// scatter plan. `shared_bytes` is the portion of every slice that is
  /// identical across shards (e.g. the query vector): a subtree bundle
  /// carries it once, plus each member's distinct remainder. Slices must be
  /// sorted by shard and each slice's request_bytes must be
  /// >= shared_bytes.
  void Arm(uint64_t request_id, const std::vector<SliceInfo>& slices,
           uint64_t shared_bytes);
  /// Drops a finalized request's route; stale lookups return nullptr and
  /// the holder discards its orphaned merge state.
  void Release(uint64_t request_id);
  /// The shard's role in `request_id`'s tree, or nullptr when the request
  /// is unarmed / released / does not involve the shard.
  const Role* RoleOf(uint64_t request_id, uint32_t shard) const;

  size_t armed_requests() const { return routes_.size(); }

 private:
  GatherConfig config_;
  uint32_t num_shards_;
  uint32_t replicas_;
  std::map<uint64_t, std::map<uint32_t, Role>> routes_;
};

}  // namespace fpgadp::shard

#endif  // FPGADP_SHARD_GATHER_H_
