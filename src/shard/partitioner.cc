#include "src/shard/partitioner.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/relational/sketches.h"

namespace fpgadp::shard {

Partitioner Partitioner::Hash(uint32_t num_shards) {
  FPGADP_CHECK(num_shards > 0);
  return Partitioner(PartitionScheme::kHash, num_shards, {});
}

Partitioner Partitioner::Modulo(uint32_t num_shards) {
  FPGADP_CHECK(num_shards > 0);
  return Partitioner(PartitionScheme::kModulo, num_shards, {});
}

Partitioner Partitioner::RoundRobin(uint32_t num_shards) {
  FPGADP_CHECK(num_shards > 0);
  return Partitioner(PartitionScheme::kRoundRobin, num_shards, {});
}

Partitioner Partitioner::Range(std::vector<uint64_t> upper_bounds) {
  FPGADP_CHECK(!upper_bounds.empty());
  for (size_t i = 1; i < upper_bounds.size(); ++i) {
    FPGADP_CHECK(upper_bounds[i - 1] < upper_bounds[i]);
  }
  const uint32_t n = static_cast<uint32_t>(upper_bounds.size());
  return Partitioner(PartitionScheme::kRange, n, std::move(upper_bounds));
}

uint32_t Partitioner::ShardOf(uint64_t key) {
  switch (scheme_) {
    case PartitionScheme::kHash:
      return static_cast<uint32_t>(rel::Hash64(key) % num_shards_);
    case PartitionScheme::kModulo:
      return static_cast<uint32_t>(key % num_shards_);
    case PartitionScheme::kRoundRobin:
      return static_cast<uint32_t>(cursor_++ % num_shards_);
    case PartitionScheme::kRange: {
      const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), key);
      if (it == bounds_.end()) return num_shards_ - 1;
      return static_cast<uint32_t>(it - bounds_.begin());
    }
  }
  return 0;
}

}  // namespace fpgadp::shard
