#include "src/shard/partitioner.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/relational/sketches.h"

namespace fpgadp::shard {

Partitioner Partitioner::Hash(uint32_t num_shards) {
  FPGADP_CHECK(num_shards > 0);
  return Partitioner(PartitionScheme::kHash, num_shards, {});
}

Partitioner Partitioner::Modulo(uint32_t num_shards) {
  FPGADP_CHECK(num_shards > 0);
  return Partitioner(PartitionScheme::kModulo, num_shards, {});
}

Partitioner Partitioner::RoundRobin(uint32_t num_shards) {
  FPGADP_CHECK(num_shards > 0);
  return Partitioner(PartitionScheme::kRoundRobin, num_shards, {});
}

Partitioner Partitioner::Range(std::vector<uint64_t> upper_bounds) {
  FPGADP_CHECK(!upper_bounds.empty());
  for (size_t i = 1; i < upper_bounds.size(); ++i) {
    FPGADP_CHECK(upper_bounds[i - 1] < upper_bounds[i]);
  }
  const uint32_t n = static_cast<uint32_t>(upper_bounds.size());
  return Partitioner(PartitionScheme::kRange, n, std::move(upper_bounds));
}

uint32_t Partitioner::ShardOf(uint64_t key) {
  if (scheme_ == PartitionScheme::kRoundRobin) {
    return static_cast<uint32_t>(cursor_++ % num_shards_);
  }
  return OwnerOf(key);
}

uint32_t Partitioner::OwnerOf(uint64_t key) const {
  switch (scheme_) {
    case PartitionScheme::kHash:
      return static_cast<uint32_t>(rel::Hash64(key) % num_shards_);
    case PartitionScheme::kModulo:
      return static_cast<uint32_t>(key % num_shards_);
    case PartitionScheme::kRoundRobin:
      // Round-robin placement is call-order state; there is no key
      // ownership to re-derive.
      FPGADP_CHECK(false);
      return 0;
    case PartitionScheme::kRange: {
      const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), key);
      const size_t idx = it == bounds_.end()
                             ? bounds_.size() - 1
                             : static_cast<size_t>(it - bounds_.begin());
      if (owners_.empty()) return static_cast<uint32_t>(idx);
      return owners_[idx];
    }
  }
  return 0;
}

void Partitioner::MaterializeSegments() {
  if (!owners_.empty()) return;
  owners_.resize(bounds_.size());
  for (size_t i = 0; i < bounds_.size(); ++i) {
    owners_[i] = static_cast<uint32_t>(i);
  }
  // The historical table leaves keys above the last bound with the last
  // shard; make that segment explicit so splits below never change it.
  if (bounds_.back() != UINT64_MAX) {
    bounds_.push_back(UINT64_MAX);
    owners_.push_back(static_cast<uint32_t>(num_shards_ - 1));
  }
}

void Partitioner::MoveRange(uint64_t lo, uint64_t hi, uint32_t to) {
  FPGADP_CHECK(scheme_ == PartitionScheme::kRange);
  FPGADP_CHECK(lo <= hi);
  FPGADP_CHECK(to < num_shards_);
  MaterializeSegments();
  std::vector<uint64_t> nb;
  std::vector<uint32_t> no;
  // Coalesces adjacent same-owner segments as they are emitted.
  const auto emit = [&](uint64_t up, uint32_t owner) {
    if (!no.empty() && no.back() == owner) {
      nb.back() = up;
    } else {
      nb.push_back(up);
      no.push_back(owner);
    }
  };
  uint64_t seg_lo = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    const uint64_t seg_hi = bounds_[i];
    const uint32_t owner = owners_[i];
    uint64_t cur = seg_lo;
    seg_lo = seg_hi + 1;  // may wrap on the final MAX segment; unused then
    // Part of this segment below `lo` keeps its owner.
    if (cur < lo) {
      emit(std::min(seg_hi, lo - 1), owner);
      if (seg_hi < lo) continue;
      cur = lo;
    }
    // Part inside [lo, hi] moves to `to`.
    if (cur <= hi) {
      emit(std::min(seg_hi, hi), to);
      if (seg_hi <= hi) continue;
    }
    // Part above `hi` keeps its owner.
    emit(seg_hi, owner);
  }
  bounds_ = std::move(nb);
  owners_ = std::move(no);
  FPGADP_CHECK(bounds_.back() == UINT64_MAX);
}

bool Partitioner::RangeOwnedBy(uint64_t lo, uint64_t hi,
                               uint32_t shard) const {
  FPGADP_CHECK(scheme_ == PartitionScheme::kRange);
  FPGADP_CHECK(lo <= hi);
  uint64_t seg_lo = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    const uint64_t seg_hi = bounds_[i];
    if (seg_hi >= lo && seg_lo <= hi) {
      const uint32_t owner =
          owners_.empty() ? static_cast<uint32_t>(i) : owners_[i];
      if (owner != shard) return false;
    }
    if (seg_hi == UINT64_MAX) break;
    seg_lo = seg_hi + 1;
  }
  // Keys above the last bound belong to the last shard in the unmaterialized
  // table; include them when the probe range reaches past it.
  if (owners_.empty() && hi > bounds_.back() &&
      shard != num_shards_ - 1) {
    return false;
  }
  return true;
}

}  // namespace fpgadp::shard
