#include "src/shard/workloads.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace fpgadp::shard {

namespace {

/// (distance, id) ascending — the exact order IvfPqIndex::Search returns,
/// so a sharded merge is indistinguishable from a single-node scan.
bool NeighborLess(const anns::Neighbor& a, const anns::Neighbor& b) {
  return a.distance < b.distance ||
         (a.distance == b.distance && a.id < b.id);
}

}  // namespace

AnnsTopKWorkload::AnnsTopKWorkload(const anns::IvfPqIndex* index,
                                   Partitioner partitioner,
                                   const Config& config)
    : index_(index), partitioner_(std::move(partitioner)), config_(config) {
  FPGADP_CHECK(index_ != nullptr);
  FPGADP_CHECK(config_.k > 0);
  FPGADP_CHECK(config_.nprobe > 0);
  FPGADP_CHECK(config_.scan_lanes > 0);
  // Balanced placement ignores the ownership map, which live resharding
  // (range scheme) depends on to re-route slices mid-flight.
  FPGADP_CHECK(!(config_.balance_scatter &&
                 partitioner_.scheme() == PartitionScheme::kRange));
}

uint64_t AnnsTopKWorkload::AddQuery(const float* query) {
  queries_.insert(queries_.end(), query, query + index_->dim());
  return queries_.size() / index_->dim() - 1;
}

const float* AnnsTopKWorkload::Query(uint64_t request_id) const {
  return queries_.data() + request_id * index_->dim();
}

const std::vector<anns::Neighbor>& AnnsTopKWorkload::result(
    uint64_t request_id) const {
  return results_.at(request_id);
}

std::vector<SubRequest> AnnsTopKWorkload::Scatter(uint64_t request_id) {
  const std::vector<uint32_t> probes =
      index_->SelectProbes(Query(request_id), config_.nprobe);
  std::map<uint32_t, std::vector<uint32_t>> by_shard;
  if (config_.balance_scatter) {
    // Greedy LPT over the same per-list cost Serve charges: heaviest list
    // first, each to the least-loaded shard. The ledger persists across
    // requests, so a hot list probed every query rotates rather than
    // pinning one shard.
    struct ListCost {
      uint64_t cost = 0;
      uint32_t list = 0;
    };
    std::vector<ListCost> costs;
    costs.reserve(probes.size());
    for (uint32_t list : probes) {
      const uint64_t codes = index_->list(list).ids.size();
      costs.push_back(
          {config_.lut_cycles_per_list +
               (codes + config_.scan_lanes - 1) / config_.scan_lanes,
           list});
    }
    std::sort(costs.begin(), costs.end(),
              [](const ListCost& a, const ListCost& b) {
                return a.cost > b.cost ||
                       (a.cost == b.cost && a.list < b.list);
              });
    if (shard_load_.size() != partitioner_.num_shards()) {
      shard_load_.assign(partitioner_.num_shards(), 0);
    }
    for (const ListCost& lc : costs) {
      uint32_t best = 0;
      for (uint32_t s = 1; s < shard_load_.size(); ++s) {
        if (shard_load_[s] < shard_load_[best]) best = s;
      }
      by_shard[best].push_back(lc.list);
      shard_load_[best] += lc.cost;
    }
    for (auto& [shard, lists] : by_shard) {
      std::sort(lists.begin(), lists.end());
    }
  } else {
    for (uint32_t list : probes) {
      by_shard[partitioner_.ShardOf(list)].push_back(list);
    }
  }
  std::vector<SubRequest> subs;
  subs.reserve(by_shard.size());
  for (auto& [shard, lists] : by_shard) {
    SubRequest sr;
    sr.shard = shard;
    // The query vector plus the probed list ids travel to the shard.
    sr.request_bytes = index_->dim() * sizeof(float) +
                       lists.size() * sizeof(uint32_t);
    plan_[{request_id, shard}] = std::move(lists);
    subs.push_back(sr);
  }
  return subs;
}

Service AnnsTopKWorkload::Serve(uint32_t shard, uint64_t request_id) {
  const auto plan_it = plan_.find({request_id, shard});
  if (plan_it == plan_.end()) {
    // Stale serve: the gather already finalized (deadline or failover
    // replay raced a late response) and Merge released the plan. Nothing
    // is listening; charge the minimum occupancy and move on.
    return Service{1, 0};
  }
  const std::vector<uint32_t>& lists = plan_it->second;
  std::vector<anns::Neighbor> partial =
      index_->SearchLists(Query(request_id), lists, config_.k);
  uint64_t codes = 0;
  for (uint32_t list : lists) codes += index_->list(list).ids.size();
  Service svc;
  // FANNS-shaped shard cost: one LUT build per probed list, then the ADC
  // scan retires scan_lanes codes per cycle.
  svc.compute_cycles =
      uint64_t(config_.lut_cycles_per_list) * lists.size() +
      (codes + config_.scan_lanes - 1) / config_.scan_lanes;
  svc.response_bytes = partial.size() * sizeof(anns::Neighbor);
  partials_[{request_id, shard}] = std::move(partial);
  return svc;
}

uint64_t AnnsTopKWorkload::ScatterSharedBytes(uint64_t request_id) {
  (void)request_id;
  return index_->dim() * sizeof(float);
}

uint64_t AnnsTopKWorkload::MergedBytes(uint64_t request_id,
                                       uint64_t done_mask,
                                       uint64_t concat_bytes) {
  (void)request_id;
  (void)done_mask;
  return std::min<uint64_t>(concat_bytes,
                            config_.k * sizeof(anns::Neighbor));
}

void AnnsTopKWorkload::Merge(uint64_t request_id,
                             const PartialOutcome& outcome) {
  std::vector<anns::Neighbor> merged;
  for (const PartialOutcome::Slice& slice : outcome.slices) {
    const auto key = std::make_pair(request_id, slice.shard);
    if (slice.outcome == SubOutcome::kDone) {
      const auto it = partials_.find(key);
      if (it != partials_.end()) {
        merged.insert(merged.end(), it->second.begin(), it->second.end());
      }
    }
    partials_.erase(key);
    plan_.erase(key);
  }
  std::sort(merged.begin(), merged.end(), NeighborLess);
  if (merged.size() > config_.k) merged.resize(config_.k);
  results_[request_id] = std::move(merged);
}

uint32_t AnnsTopKWorkload::SliceOwner(uint32_t shard, uint64_t request_id) {
  if (partitioner_.scheme() != PartitionScheme::kRange) return shard;
  const auto it = plan_.find({request_id, shard});
  if (it == plan_.end() || it->second.empty()) return shard;
  const uint32_t owner = partitioner_.OwnerOf(it->second.front());
  for (uint32_t list : it->second) {
    if (partitioner_.OwnerOf(list) != owner) return shard;  // split slice
  }
  return owner;
}

void AnnsTopKWorkload::CommitMigration(const MigrationPlan& plan) {
  FPGADP_CHECK(partitioner_.scheme() == PartitionScheme::kRange);
  FPGADP_CHECK(
      partitioner_.RangeOwnedBy(plan.range_lo, plan.range_hi, plan.source));
  partitioner_.MoveRange(plan.range_lo, plan.range_hi, plan.target);
}

KvsMultiGetWorkload::KvsMultiGetWorkload(Partitioner partitioner,
                                         const Config& config)
    : partitioner_(std::move(partitioner)), config_(config) {
  stores_.resize(partitioner_.num_shards());
}

void KvsMultiGetWorkload::Load(uint64_t key, uint64_t value) {
  stores_[partitioner_.ShardOf(key)][key] = value;
}

uint64_t KvsMultiGetWorkload::AddMultiGet(std::vector<uint64_t> keys) {
  FPGADP_CHECK(!keys.empty());
  requests_.push_back(std::move(keys));
  return requests_.size() - 1;
}

const std::vector<KvsMultiGetWorkload::GetResult>&
KvsMultiGetWorkload::result(uint64_t request_id) const {
  return results_.at(request_id);
}

std::vector<SubRequest> KvsMultiGetWorkload::Scatter(uint64_t request_id) {
  std::map<uint32_t, std::vector<uint64_t>> by_shard;
  for (uint64_t key : requests_[request_id]) {
    by_shard[partitioner_.ShardOf(key)].push_back(key);
  }
  std::vector<SubRequest> subs;
  subs.reserve(by_shard.size());
  for (auto& [shard, keys] : by_shard) {
    SubRequest sr;
    sr.shard = shard;
    sr.request_bytes = keys.size() * uint64_t(config_.key_bytes);
    plan_[{request_id, shard}] = std::move(keys);
    subs.push_back(sr);
  }
  return subs;
}

uint32_t KvsMultiGetWorkload::StoreOf(uint32_t shard, uint64_t key) const {
  if (partitioner_.scheme() == PartitionScheme::kRoundRobin) return shard;
  return partitioner_.OwnerOf(key);
}

Service KvsMultiGetWorkload::Serve(uint32_t shard, uint64_t request_id) {
  const auto plan_it = plan_.find({request_id, shard});
  if (plan_it == plan_.end()) {
    // Stale serve after the gather finalized and released its plan (see
    // AnnsTopKWorkload::Serve).
    return Service{1, 0};
  }
  const std::vector<uint64_t>& keys = plan_it->second;
  auto& hits = partials_[{request_id, shard}];
  for (uint64_t key : keys) {
    // Each key reads from the store that owns it under the current routing
    // table — after a migration flip that may no longer be `shard`'s.
    const auto& store = stores_[StoreOf(shard, key)];
    const auto it = store.find(key);
    if (it != store.end()) hits.emplace(key, it->second);
  }
  Service svc;
  // The NIC DRAM pipeline fills once, then retires one bucket line per op
  // at bus occupancy — the same facts SmartNicKvs charges per request.
  svc.compute_cycles =
      kvs::SmartNicKvs::DramLatencyCycles(config_.nic) +
      uint64_t(std::ceil(double(keys.size()) *
                         kvs::SmartNicKvs::DramCyclesPerOp(config_.nic)));
  svc.response_bytes = keys.size() * 8 +
                       uint64_t(hits.size()) * config_.nic.value_bytes;
  return svc;
}

void KvsMultiGetWorkload::Merge(uint64_t request_id,
                                const PartialOutcome& outcome) {
  std::map<uint32_t, SubOutcome> shard_outcome;
  for (const PartialOutcome::Slice& slice : outcome.slices) {
    shard_outcome[slice.shard] = slice.outcome;
  }
  // Each key's slice is the one Scatter put it in — recorded in the plan,
  // NOT re-derived from the live partitioner, which may have flipped
  // ownership mid-request during a migration.
  std::unordered_map<uint64_t, uint32_t> key_slice;
  for (const PartialOutcome::Slice& slice : outcome.slices) {
    const auto it = plan_.find({request_id, slice.shard});
    if (it == plan_.end()) continue;
    for (uint64_t key : it->second) key_slice[key] = slice.shard;
  }
  std::vector<GetResult> merged;
  merged.reserve(requests_[request_id].size());
  for (uint64_t key : requests_[request_id]) {
    const uint32_t shard = key_slice.at(key);
    GetResult r;
    r.key = key;
    const auto oc = shard_outcome.find(shard);
    r.served = oc != shard_outcome.end() && oc->second == SubOutcome::kDone;
    if (r.served) {
      const auto& hits = partials_[{request_id, shard}];
      const auto hit = hits.find(key);
      if (hit != hits.end()) {
        r.hit = true;
        r.value = hit->second;
      }
    }
    merged.push_back(r);
  }
  for (const PartialOutcome::Slice& slice : outcome.slices) {
    partials_.erase({request_id, slice.shard});
    plan_.erase({request_id, slice.shard});
  }
  results_[request_id] = std::move(merged);
}

uint32_t KvsMultiGetWorkload::SliceOwner(uint32_t shard,
                                         uint64_t request_id) {
  if (partitioner_.scheme() != PartitionScheme::kRange) return shard;
  const auto it = plan_.find({request_id, shard});
  if (it == plan_.end() || it->second.empty()) return shard;
  const uint32_t owner = partitioner_.OwnerOf(it->second.front());
  for (uint64_t key : it->second) {
    if (partitioner_.OwnerOf(key) != owner) return shard;  // split slice
  }
  return owner;
}

void KvsMultiGetWorkload::CommitMigration(const MigrationPlan& plan) {
  FPGADP_CHECK(partitioner_.scheme() == PartitionScheme::kRange);
  FPGADP_CHECK(
      partitioner_.RangeOwnedBy(plan.range_lo, plan.range_hi, plan.source));
  auto& src = stores_[plan.source];
  auto& dst = stores_[plan.target];
  for (auto it = src.begin(); it != src.end();) {
    if (it->first >= plan.range_lo && it->first <= plan.range_hi) {
      dst[it->first] = it->second;
      it = src.erase(it);
    } else {
      ++it;
    }
  }
  partitioner_.MoveRange(plan.range_lo, plan.range_hi, plan.target);
}

HashJoinWorkload::HashJoinWorkload(const rel::Table* build,
                                   const rel::Table* probe,
                                   const rel::JoinSpec& spec,
                                   Partitioner partitioner,
                                   const Config& config)
    : build_(build), probe_(probe), spec_(spec),
      partitioner_(std::move(partitioner)), config_(config) {
  FPGADP_CHECK(build_ != nullptr);
  FPGADP_CHECK(probe_ != nullptr);
}

std::vector<SubRequest> HashJoinWorkload::Scatter(uint64_t request_id) {
  FPGADP_CHECK(request_id == 0);
  const uint32_t n = partitioner_.num_shards();
  build_parts_.assign(n, rel::Table(build_->schema()));
  probe_parts_.assign(n, rel::Table(probe_->schema()));
  for (const rel::Row& r : build_->rows()) {
    build_parts_[partitioner_.ShardOf(uint64_t(r.Get(spec_.left_key)))]
        .Append(r);
  }
  for (const rel::Row& r : probe_->rows()) {
    probe_parts_[partitioner_.ShardOf(uint64_t(r.Get(spec_.right_key)))]
        .Append(r);
  }

  // The joined schema: left's fields then right's, truncated the way
  // HashJoinCpu/HashJoinFpga truncate (kMaxColumns-wide tuples).
  std::vector<rel::Field> fields = build_->schema().fields();
  for (const rel::Field& f : probe_->schema().fields()) {
    if (fields.size() >= rel::kMaxColumns) break;
    fields.push_back(f);
  }
  const rel::Schema out_schema{fields};
  result_ = rel::Table(out_schema);

  // Each shard's local build+probe runs here as a nested pipeline
  // simulation (Scatter executes outside any engine tick), so Serve only
  // replays the precomputed cost from inside the cluster.
  outputs_.assign(n, rel::Table(out_schema));
  services_.assign(n, Service{});
  std::vector<SubRequest> subs;
  subs.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    if (build_parts_[s].num_rows() == 0 || probe_parts_[s].num_rows() == 0) {
      services_[s] = Service{1, 0};  // no matches possible, pipeline no-op
    } else {
      auto stats = rel::HashJoinFpga(build_parts_[s], probe_parts_[s], spec_,
                                     config_.fpga);
      FPGADP_CHECK(stats.ok());
      services_[s] = Service{stats->cycles, stats->output.total_bytes()};
      outputs_[s] = std::move(stats->output);
    }
    SubRequest sr;
    sr.shard = s;
    sr.request_bytes =
        build_parts_[s].total_bytes() + probe_parts_[s].total_bytes();
    subs.push_back(sr);
  }
  return subs;
}

Service HashJoinWorkload::Serve(uint32_t shard, uint64_t) {
  return services_[shard];
}

void HashJoinWorkload::Merge(uint64_t, const PartialOutcome& outcome) {
  for (const PartialOutcome::Slice& slice : outcome.slices) {
    if (slice.outcome != SubOutcome::kDone) continue;
    for (const rel::Row& r : outputs_[slice.shard].rows()) result_.Append(r);
  }
}

}  // namespace fpgadp::shard
