#ifndef FPGADP_SHARD_REPLICA_H_
#define FPGADP_SHARD_REPLICA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/module.h"

namespace fpgadp::obs {
class MetricsRegistry;
}  // namespace fpgadp::obs

namespace fpgadp::shard {

/// Elastic-operations knobs for one ShardCluster. Every default leaves the
/// cluster exactly as it was before replication existed: one replica per
/// shard, no beacons on the wire, no admission penalty — the R=1 path stays
/// bit-identical to the pre-replication goldens.
struct ReplicaConfig {
  /// Replicas per shard (R). R > 1 requires flat gather topology; replica r
  /// of shard s occupies fabric node GatherPlan::ReplicaNode(s, r).
  uint32_t replication_factor = 1;
  /// Every replica server posts a kHealthBeacon to its coordinator port
  /// each interval. 0 disables beacons entirely (failover then relies on
  /// the RC transport's retry cap alone).
  uint64_t beacon_interval_cycles = 0;
  /// Coordinator-side liveness deadline: a replica whose last beacon is
  /// older than this is declared dead; a dead primary is promoted away
  /// from. Must be comfortably larger than the interval plus wire time —
  /// the constructor CHECKs a 2x floor. 0 disables beacon-driven failover.
  uint64_t beacon_timeout_cycles = 0;
  /// Deadline-feasibility admission adds the remaining window to every
  /// slice ETA targeting a shard that promoted less than this many cycles
  /// ago, so the front door sheds into the recovery gap instead of blowing
  /// the SLO. 0 disables the penalty.
  uint64_t promotion_penalty_cycles = 0;
};

/// Per-shard replica bookkeeping: which replica is primary, which are
/// still alive, and when each was last heard from. Owned by ElasticState;
/// mutated only from coordinator/server Tick()s, which the engine runs
/// serially (ShardCoordinator is not parallel-certified).
class ReplicaSet {
 public:
  ReplicaSet(uint32_t num_shards, uint32_t replication_factor);

  uint32_t num_shards() const { return num_shards_; }
  uint32_t replication_factor() const { return replication_factor_; }

  /// The replica index currently serving `shard`.
  uint32_t Primary(uint32_t shard) const;
  bool alive(uint32_t shard, uint32_t replica) const;
  uint32_t alive_count(uint32_t shard) const;

  /// True when the shard still has a live standby to promote to.
  bool CanPromote(uint32_t shard) const;

  /// Declares the current primary dead and advances to the next live
  /// replica (cyclic scan from primary+1). Returns false — and leaves the
  /// primary in place — when no live standby remains.
  bool Promote(uint32_t shard);

  /// Declares one replica dead without promoting (a standby that missed
  /// its beacon deadline). Killing the primary this way is allowed; the
  /// caller decides whether to promote.
  void MarkDead(uint32_t shard, uint32_t replica);

  void ObserveBeacon(uint32_t shard, uint32_t replica, sim::Cycle cycle);
  sim::Cycle last_beacon(uint32_t shard, uint32_t replica) const;

  uint64_t promotions() const { return promotions_; }

 private:
  size_t Index(uint32_t shard, uint32_t replica) const;

  uint32_t num_shards_;
  uint32_t replication_factor_;
  std::vector<uint32_t> primary_;     ///< Per shard.
  std::vector<uint8_t> alive_;        ///< shard-major [shard][replica].
  std::vector<sim::Cycle> last_beacon_;
  uint64_t promotions_ = 0;
};

/// One live key-range migration: stream `state_bytes` of shard `source`'s
/// state for [range_lo, range_hi] to `target` over the fabric, then flip
/// ownership. The stream pays real wire serialization, so copying contends
/// with serving — that contention is the cost the E25 tables measure.
struct MigrationPlan {
  uint32_t source = 0;
  uint32_t target = 0;
  uint64_t range_lo = 0;
  uint64_t range_hi = 0;  ///< Inclusive.
  /// Total bytes of state to stream before ownership can flip.
  uint64_t state_bytes = 0;
  /// Bytes per kMigrateChunk packet.
  uint64_t chunk_bytes = 4096;
  /// Source-side pacing: cycles between consecutive chunk posts. Spreads
  /// the copy out so serving traffic interleaves instead of queueing behind
  /// a megabyte burst.
  uint64_t chunk_interval_cycles = 32;
};

enum class MigrationPhase : uint8_t {
  kCopy = 0,   ///< Chunks streaming source -> target; source still owns.
  kDrain = 1,  ///< Ownership flipped; requests scattered pre-flip drain out.
  kDone = 2,   ///< Drained: no in-flight request predates the flip.
  kAborted = 3,  ///< A chunk or the done notification hit the retry cap;
                 ///< ownership never flipped, no state was lost.
};

const char* MigrationPhaseName(MigrationPhase phase);

/// Runtime state of one migration. Shared (via ElasticState) between the
/// coordinator, which starts it and commits the flip, and the source /
/// target servers, which stream and count the chunks. All writes happen in
/// serially-ticked modules.
struct Migration {
  MigrationPlan plan;
  MigrationPhase phase = MigrationPhase::kCopy;
  uint64_t seq = 0;  ///< Cluster-unique id; carried in Packet::user.
  sim::Cycle started_at = 0;
  sim::Cycle flipped_at = 0;
  sim::Cycle finished_at = 0;
  uint64_t bytes_streamed = 0;   ///< Source-side: posted to the fabric.
  uint64_t bytes_received = 0;   ///< Target-side: chunk payload landed.
  bool start_seen = false;       ///< Source observed kMigrateStart.
  sim::Cycle next_chunk_at = 0;  ///< Source-side pacing cursor.
};

/// The shared elastic-operations state of one ShardCluster: replica
/// liveness plus active/finished migrations. The cluster owns one instance
/// and hands a pointer to the coordinator and every server; a null pointer
/// (standalone construction) means "no elastic operations", which all
/// consumers treat as R=1 with every feature off.
struct ElasticState {
  ElasticState(const ReplicaConfig& config, uint32_t num_shards);

  /// The migration carrying `seq`, or nullptr.
  Migration* Find(uint64_t seq);
  /// The copy-phase migration streaming out of `shard`, or nullptr.
  Migration* ActiveCopyFrom(uint32_t shard);
  /// True while `shard` is source or target of a kCopy/kDrain migration.
  bool Busy(uint32_t shard) const;

  ReplicaConfig config;
  ReplicaSet replicas;
  std::vector<Migration> migrations;
  uint64_t next_migration_seq = 1;
};

/// A policy hook, not a control loop: reads the gauges a ShardCluster
/// exports into a MetricsRegistry (coordinator queue high-watermarks,
/// `ingress_shed`, fabric port utilization) and recommends adding or
/// draining a shard. The driver (a bench sweep, an operator script)
/// applies the decision between runs — shard count is construction-time
/// state, so the hook deliberately returns intent instead of mutating the
/// cluster mid-tick.
class Autoscaler {
 public:
  struct Config {
    /// Recommend kAdd when any shard's queue high-watermark reaches this.
    double queue_hwm_high = 12.0;
    /// Recommend kAdd when the coordinator shed this many requests.
    double ingress_shed_high = 1.0;
    /// Recommend kAdd when any coordinator port's receive utilization
    /// (rx_busy_cycles / elapsed) reaches this fraction.
    double port_util_high = 0.80;
    /// Recommend kDrain when every signal is below this fraction of its
    /// high threshold (ports below port_util_low, no sheds, queues under
    /// low-fraction of queue_hwm_high).
    double port_util_low = 0.10;
    uint32_t min_shards = 1;
    uint32_t max_shards = 64;
  };

  enum class Action : uint8_t { kHold = 0, kAdd = 1, kDrain = 2 };

  struct Decision {
    Action action = Action::kHold;
    /// kDrain: the coldest shard (lowest served count) to migrate off.
    uint32_t shard = 0;
    std::string reason;
  };

  explicit Autoscaler(const Config& config) : config_(config) {}

  /// Evaluates the gauges `ShardCluster::ExportMetrics`-style exports left
  /// in `registry`. `coord_name`/`fabric_name` are the module names the
  /// gauge keys embed; `elapsed_cycles` normalizes port busy-cycles into
  /// utilization. Safe to call any time outside a tick phase.
  Decision Evaluate(const obs::MetricsRegistry& registry,
                    const std::string& coord_name,
                    const std::string& fabric_name, uint32_t num_shards,
                    uint32_t coordinator_ports,
                    uint64_t elapsed_cycles) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace fpgadp::shard

#endif  // FPGADP_SHARD_REPLICA_H_
