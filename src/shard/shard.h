#ifndef FPGADP_SHARD_SHARD_H_
#define FPGADP_SHARD_SHARD_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/net/fabric.h"
#include "src/net/rdma.h"
#include "src/shard/gather.h"
#include "src/shard/replica.h"
#include "src/sim/engine.h"
#include "src/sim/module.h"

namespace fpgadp::net {
class AggregatingSwitch;
}  // namespace fpgadp::net

namespace fpgadp::shard {

/// One slice of a scattered request: the work one shard serves. The
/// workload names the shard and the wire size of the slice (query vector,
/// key batch, partition payload); functional contents stay in process
/// memory, as everywhere else in the repo.
struct SubRequest {
  uint32_t shard = 0;
  uint64_t request_bytes = 0;
  /// The workload's own estimate of Serve()'s compute_cycles for this
  /// slice, used by deadline-feasibility admission to cost the queue ahead
  /// of a candidate request. 0 = unknown; the coordinator falls back to its
  /// per-shard EWMA of observed service times.
  uint64_t est_service_cycles = 0;
};

/// Shard-side service facts for one slice: how long the shard's pipeline is
/// occupied and how many payload bytes the reply carries back.
struct Service {
  uint64_t compute_cycles = 1;
  uint64_t response_bytes = 0;
};

/// How one slice of a gather ended.
enum class SubOutcome : uint8_t {
  kPending = 0,   ///< Not resolved yet (never appears in a finalized gather).
  kDone = 1,      ///< Response received and merged.
  kRejected = 2,  ///< Shard admission queue full; shard answered "busy".
  kFailed = 3,    ///< RDMA retry cap exhausted (dead shard / dead link).
  kTimedOut = 4,  ///< Gather deadline expired before the response.
};

/// Returns a stable lowercase name for `outcome` ("done", "rejected", ...).
const char* SubOutcomeName(SubOutcome outcome);

/// How ShardCoordinator::TrySubmit decides to shed a request at ingress
/// (Submit() bypasses admission entirely and always enqueues).
enum class AdmissionPolicy : uint8_t {
  /// Shed when the number of in-flight gathers reaches `max_pending` — the
  /// classic bounded-queue front door. Blind to deadlines: under sustained
  /// overload every admitted request still waits the full queue, so tail
  /// latency is max_pending * service, SLO or not.
  kQueueDepth = 0,
  /// Shed when the request cannot finish inside its deadline budget given
  /// the current per-shard backlog and service/wire estimates: for each
  /// slice, ETA = wire_estimate + queued_cost(shard) + est(slice); any
  /// slice with ETA > headroom% * deadline sheds the whole request. Admits
  /// everything a deadline could tolerate and nothing it couldn't, so the
  /// latency of *served* requests stays bounded near the SLO while excess
  /// load turns into fast-fail sheds instead of queue time.
  kDeadlineFeasible = 1,
};

/// Degradation report for one gathered request — the serving-layer analogue
/// of accl::PartialOutcome: which shards contributed and why the others did
/// not. `status` is OK only when every slice merged; a degraded gather
/// still carries the merged partial result in the workload.
struct PartialOutcome {
  /// One slice, in scatter order.
  struct Slice {
    uint32_t shard = 0;
    SubOutcome outcome = SubOutcome::kPending;
  };

  uint64_t request_id = 0;
  std::vector<Slice> slices;
  uint32_t shards_done = 0;      ///< Slices that resolved kDone.
  sim::Cycle completed_at = 0;   ///< Cycle the gather finalized.
  Status status;                 ///< OK, Unavailable, ResourceExhausted, Timeout.

  uint32_t shards_total() const {
    return static_cast<uint32_t>(slices.size());
  }
  bool degraded() const { return shards_done != shards_total(); }
};

/// The application half of the serving layer. The coordinator and servers
/// own everything workload-agnostic — scatter windows, wire timing,
/// admission, failure detection, gather deadlines — and call back here for
/// the three things only the workload knows: how a request splits across
/// shards, what serving one slice costs, and how the partials merge.
///
/// Scatter() runs on the submitting thread, outside any engine tick, so it
/// may do heavy precomputation (HashJoinWorkload runs nested pipeline
/// simulations there). Serve() and Merge() run inside module Tick()s: they
/// must be functional-only — no nested engines, no metrics lookups.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Splits `request_id` into per-shard slices. At most one slice per
  /// shard; must not be empty.
  virtual std::vector<SubRequest> Scatter(uint64_t request_id) = 0;

  /// Serves the slice of `request_id` owned by `shard`: computes the
  /// functional partial result and returns its cost.
  virtual Service Serve(uint32_t shard, uint64_t request_id) = 0;

  /// Combines the partial results of the slices that resolved kDone (see
  /// `outcome.slices`) into the request's final result.
  virtual void Merge(uint64_t request_id, const PartialOutcome& outcome) = 0;

  /// Wire bytes of one partial-merged response covering the kDone shards in
  /// `done_mask` (bit s = shard s), given the concatenated size of its
  /// inputs. Hierarchical and in-network gather call this wherever partial
  /// merges happen (interior shards, switch combiners); the default —
  /// concatenation conserves bytes — is exact for multi-get and join, while
  /// shrinking merges (top-k keeps k of everything) override it. Runs
  /// inside module Tick()s: functional-only, like Serve and Merge.
  virtual uint64_t MergedBytes(uint64_t request_id, uint64_t done_mask,
                               uint64_t concat_bytes) {
    (void)request_id;
    (void)done_mask;
    return concat_bytes;
  }

  /// Bytes of the scattered request that are identical across every slice
  /// (e.g. the query vector of an ANNS request, which each shard needs in
  /// full). A scatter-tree bundle carries them once per subtree instead of
  /// once per shard — the multicast saving. Must not exceed the
  /// request_bytes of any slice. Runs inside module Tick()s:
  /// functional-only, like Serve and Merge. Default: nothing is shared.
  virtual uint64_t ScatterSharedBytes(uint64_t request_id) {
    (void)request_id;
    return 0;
  }

  /// Live resharding: which shard currently owns the slice that was
  /// scattered to `shard` for `request_id`. A server about to serve a slice
  /// consults this; when the answer is another shard (the slice's key range
  /// migrated after scatter), the server forwards the request there instead
  /// of serving stale ownership. The default — nothing ever migrates —
  /// returns `shard`, which keeps non-elastic workloads bit-identical.
  /// Runs inside module Tick()s: functional-only, like Serve and Merge.
  virtual uint32_t SliceOwner(uint32_t shard, uint64_t request_id) {
    (void)request_id;
    return shard;
  }

  /// Live resharding: atomically transfer ownership (partitioner ranges +
  /// whatever per-shard state the workload keeps) for `plan`'s key range
  /// from source to target. Called by the coordinator the moment the last
  /// migrated byte lands — the flip point of the double-ownership window.
  /// Runs inside the coordinator's Tick: functional-only, and must leave
  /// every key owned by exactly one shard. Default: no per-shard state.
  virtual void CommitMigration(const MigrationPlan& plan) { (void)plan; }
};

/// Scatter-gather front end, one per cluster, owning fabric nodes
/// [0, ports) — one RdmaEndpoint (QP) per ingress port. Submit() splits a
/// request via Workload::Scatter and queues one sub-request per shard; the
/// tick loop ships them through the shard's port under a per-shard
/// admission window, collects responses and transport failures, enforces
/// the gather deadline, and finalizes each request into a PartialOutcome
/// (merging via Workload::Merge).
///
/// The GatherPlan names the response path. Flat gather keeps the historical
/// per-slice protocol (one tagged response per shard). Tree and switch
/// gather receive merged-form responses — `user` = request id, `addr` =
/// done-shard mask, `user2` = rejected-shard mask — one per subtree root or
/// switch combine group; rejections ride up in the mask instead of as
/// separate busy replies, and the per-shard service EWMA is not updated
/// (per-slice timing is aggregated away; configure the initial estimates
/// when combining merged gather with deadline-feasibility admission).
///
/// Failure semantics: a slice resolves kFailed when the endpoint's retry
/// cap expires (dead shard or dead link — lossy fabric only), kRejected
/// when the shard sheds it at admission, and kTimedOut when the gather
/// deadline fires first (the only defense against responses lost after the
/// shard served them). A degraded gather never stalls the others: it
/// finalizes with whatever slices completed. Under tree gather a dead
/// interior shard degrades exactly its subtree: the coordinator's send
/// retry cap fails the dead slice, its descendants time out (their merged
/// contributions died with the parent), and its ancestors forward partial
/// merges after the plan's merge timeout.
class ShardCoordinator : public sim::Module {
 public:
  struct Config {
    /// Sub-requests in flight per shard before further ones queue at the
    /// coordinator (the admission window).
    uint32_t window = 4;
    /// Cycles after scatter at which an incomplete gather degrades into a
    /// PartialOutcome. 0 waits forever — only safe on a loss-free fabric.
    uint64_t gather_deadline_cycles = 0;
    /// Ingress admission for TrySubmit() (Submit() never sheds).
    AdmissionPolicy admission = AdmissionPolicy::kQueueDepth;
    /// kQueueDepth: shed when this many gathers are already in flight.
    /// 0 = unbounded (TrySubmit admits everything).
    uint32_t max_pending = 0;
    /// kDeadlineFeasible: seed for the per-shard service-time EWMA until
    /// the first response reports a real measurement.
    uint64_t initial_service_estimate_cycles = 64;
    /// kDeadlineFeasible: assumed request+response wire time until the
    /// first response pins it (thereafter the minimum observed
    /// round-trip-minus-service, i.e. the uncongested wire estimate).
    uint64_t initial_wire_estimate_cycles = 256;
    /// kDeadlineFeasible: percentage of the deadline budget admission may
    /// plan into. 100 fills the budget exactly; lower values keep headroom
    /// for estimate error (service jitter, fabric contention).
    uint32_t feasibility_headroom_pct = 100;
  };

  /// `endpoints[p]` is the QP on fabric node p — one per coordinator port
  /// (plan->ports() of them). `plan` routes responses (never null; a
  /// default-constructed GatherPlan is flat single-port). `agg_switch` is
  /// only set for switch gather: the coordinator arms a combine group per
  /// (request, port) at scatter and disarms it at finalize. `elastic` is
  /// the cluster's shared replica/migration state; null (the default)
  /// disables every elastic feature and preserves the R=1 path bit-for-bit.
  ShardCoordinator(std::string name, Workload* workload,
                   std::vector<net::RdmaEndpoint*> endpoints,
                   GatherPlan* plan, net::AggregatingSwitch* agg_switch,
                   uint32_t num_shards, const Config& config,
                   ElasticState* elastic = nullptr);

  /// Scatters one request. Call before Run() or between runs, never from a
  /// module Tick (Workload::Scatter may run nested simulations).
  void Submit(uint64_t request_id);

  /// Serving-path ingress: offers one request whose scatter plan was
  /// precomputed outside any tick (so this IS tick-safe — the serving
  /// front door calls it at arrival time from its own Tick). Runs the
  /// configured AdmissionPolicy against `deadline_budget_cycles` (the
  /// request's SLO, counted from `now`) and either enqueues every slice
  /// (true) or sheds the whole request without touching coordinator state
  /// (false; the caller owns shed accounting — no PartialOutcome is made).
  bool TrySubmit(uint64_t request_id, const std::vector<SubRequest>& subs,
                 sim::Cycle now, uint64_t deadline_budget_cycles);

  /// Pops one finalized gather, oldest first.
  bool PollOutcome(PartialOutcome* out);

  /// Live resharding: kicks off one key-range migration. Sends
  /// kMigrateStart to the source's primary; the source streams
  /// kMigrateChunk packets to the target while both keep serving, and when
  /// the last byte lands the coordinator flips ownership
  /// (Workload::CommitMigration) and drains requests scattered pre-flip.
  /// Requires elastic state and flat gather. `now` stamps started_at
  /// (pass engine.now() when calling between runs).
  void StartMigration(const MigrationPlan& plan, sim::Cycle now = 0);

  /// Admission's view of a recovering shard: the cycles left in `shard`'s
  /// promotion window at `now` (0 once it closed, or when the penalty /
  /// replication is off). Deadline-feasibility adds this to the slice ETA.
  uint64_t PromotionPenalty(uint32_t shard, sim::Cycle now) const;

  /// Finalized gathers waiting in PollOutcome order. Front-door modules
  /// consult this from NextEventCycle so fast-forward never skips past an
  /// unpolled outcome.
  size_t outcomes_available() const { return outcomes_.size(); }

  /// Registers the module that polls finalized gathers (PollOutcome).
  /// Under event-driven scheduling the coordinator wakes it whenever a
  /// gather is about to finalize, so the poller may sleep in between.
  void SetOutcomeListener(sim::Module* listener) {
    outcome_listener_ = listener;
  }

  void Tick(sim::Cycle cycle) override;
  bool Idle() const override { return active_.empty() && total_queued_ == 0; }
  sim::Cycle NextEventCycle(sim::Cycle now) const override;
  void ExportCustomMetrics(obs::MetricsRegistry& registry) const override;

  uint64_t gathers_completed() const { return gathers_completed_; }
  uint64_t gathers_degraded() const { return gathers_degraded_; }
  /// Requests TrySubmit refused at ingress under the admission policy.
  uint64_t ingress_shed() const { return ingress_shed_; }
  /// Current admission-relevant view of one shard: EWMA of reported
  /// service cycles and the sum of estimated cycles queued or in flight.
  uint64_t service_estimate(uint32_t shard) const {
    return svc_est_x16_[shard] >> 4;
  }
  uint64_t queued_cost(uint32_t shard) const { return pending_cost_[shard]; }
  /// Uncongested wire round-trip estimate (min observed rtt - service).
  uint64_t wire_estimate() const { return wire_est_; }
  /// Mean request-slice wire bytes over everything enqueued so far, and
  /// mean per-slice response payload over flat-gather responses observed
  /// so far (0 before the first observation). The topology planner reads
  /// these after a flat probe run to size its wire-cost terms.
  uint64_t avg_request_bytes() const {
    return req_slices_ == 0 ? 0 : req_bytes_total_ / req_slices_;
  }
  uint64_t avg_response_bytes() const {
    return resp_count_ == 0 ? 0 : resp_bytes_total_ / resp_count_;
  }
  uint64_t responses_observed() const { return resp_count_; }
  /// Responses that arrived after their gather finalized (deadline races).
  uint64_t late_responses() const { return late_responses_; }
  /// Cycles spent with gathers outstanding and nothing arriving — the
  /// fan-in stall the obs layer attributes as input starvation.
  uint64_t gather_stall_cycles() const { return gather_stall_cycles_; }
  /// Deepest coordinator-side send queue ever observed for `shard`.
  size_t queue_high_watermark(uint32_t shard) const {
    return queue_hwm_[shard];
  }
  /// Primary promotions performed (transport-triggered + beacon-triggered).
  uint64_t failovers() const { return failovers_; }
  /// In-flight slices re-posted to a freshly promoted primary.
  uint64_t replayed_slices() const { return replayed_slices_; }
  /// Replicas declared dead because their health beacon went silent.
  uint64_t beacon_timeouts() const { return beacon_timeouts_; }
  /// Migrations whose ownership flip committed.
  uint64_t migrations_flipped() const { return migrations_flipped_; }

 protected:
  /// A skipped window is exactly a run of no-progress ticks: gathers
  /// outstanding wait on fan-in (starved), otherwise the module is idle
  /// (backfilled). Mirrors the serial Tick classification bit-for-bit.
  void AttributeSkip(sim::Cycle from, sim::Cycle to) override;

 private:
  /// One slice of an active request.
  struct Sub {
    uint32_t shard = 0;
    uint64_t bytes = 0;
    uint64_t tag = 0;  ///< Assigned at Submit; keys tag_map_.
    /// Service estimate charged to pending_cost_ at enqueue; the same
    /// amount is released on resolve (the EWMA may have moved meanwhile).
    uint64_t est_cycles = 0;
    sim::Cycle sent_at = 0;  ///< Cycle the slice shipped (valid iff sent).
    bool sent = false;
    /// Counted against in_flight_[shard] while sent and unresolved. Under
    /// tree scatter only each port-group's root slice is windowed — its
    /// descendants ride the root's bundle and never occupy the window.
    bool windowed = true;
    SubOutcome outcome = SubOutcome::kPending;
  };

  /// One scattered request awaiting its gather.
  struct Active {
    std::vector<Sub> subs;
    uint32_t resolved = 0;
    sim::Cycle deadline = 0;  ///< 0 = unarmed (armed on the next tick).
  };

  void ResolveSub(uint64_t request_id, size_t sub_index, SubOutcome outcome,
                  sim::Cycle cycle);
  void Finalize(uint64_t request_id, Active& active, sim::Cycle cycle);
  /// True when `shard` still has a live standby to promote.
  bool CanFailover(uint32_t shard) const;
  /// Promotes `shard`'s next live replica and replays every sent,
  /// unresolved slice to it under a fresh tag (the old tags die with the
  /// old primary: late completions and responses miss tag_map_ and are
  /// dropped, so at-least-once delivery never produces a second result).
  void FailoverShard(uint32_t shard, sim::Cycle cycle);
  /// Beacon liveness sweep: promotes away from a primary whose beacon
  /// missed its deadline; marks silent standbys dead.
  void CheckBeacons(sim::Cycle cycle);
  /// kMigrateDone landed: commit the ownership flip and start the drain.
  void HandleMigrateDone(const net::Packet& p, sim::Cycle cycle);
  /// Emits a named trace instant when tracing is attached.
  void TraceElastic(const std::string& what, sim::Cycle cycle);
  /// The fabric node currently serving `shard` (its primary replica).
  uint32_t PrimaryNode(uint32_t shard) const;
  /// Shared Submit/TrySubmit tail: registers the request and queues every
  /// slice (charging pending_cost_). Tick-safe; never runs Scatter (under
  /// tree scatter it consults the functional-only ScatterSharedBytes).
  void Enqueue(uint64_t request_id, const std::vector<SubRequest>& subs);
  /// The service estimate admission charges for one slice: the workload's
  /// own figure when present, else the shard's EWMA.
  uint64_t EstimateFor(const SubRequest& sub) const;
  /// Folds a served slice's reported service time and observed round trip
  /// into the per-shard EWMA and the wire floor.
  void ObserveService(uint32_t shard, uint64_t service_cycles,
                      uint64_t rtt_cycles);
  /// Ships queued slices while windows have room; lazily drops entries
  /// whose request finalized (deadline expiry) in the meantime.
  bool PumpQueues(sim::Cycle cycle);
  /// Tree scatter: a root bundle just shipped — stamp every descendant
  /// slice of `root_role`'s subtree as sent at `cycle` (they ride the
  /// bundle; none of them is windowed).
  void MarkSubtreeSent(Active& a, uint64_t request_id,
                       const GatherPlan::Role& root_role, sim::Cycle cycle);
  /// Resolves the slices a merged-form response's masks cover (tree and
  /// switch gather).
  void HandleMergedResponse(const net::Packet& p, sim::Cycle cycle);
  bool merged_responses() const {
    return plan_->topology() != GatherTopology::kFlat;
  }

  Workload* workload_;
  std::vector<net::RdmaEndpoint*> endpoints_;
  GatherPlan* plan_;
  net::AggregatingSwitch* agg_switch_;
  uint32_t num_shards_;
  Config config_;

  std::map<uint64_t, Active> active_;
  std::vector<std::deque<std::pair<uint64_t, size_t>>> shard_queue_;
  std::vector<uint32_t> in_flight_;  ///< Sent, unresolved slices per shard.
  size_t total_queued_ = 0;
  std::map<uint64_t, std::pair<uint64_t, size_t>> tag_map_;  ///< tag -> slice.
  uint64_t next_tag_ = 1;
  std::deque<PartialOutcome> outcomes_;
  sim::Module* outcome_listener_ = nullptr;  ///< Woken before finalizes.

  uint64_t gathers_completed_ = 0;
  uint64_t gathers_degraded_ = 0;
  uint64_t late_responses_ = 0;
  uint64_t gather_stall_cycles_ = 0;
  uint64_t ingress_shed_ = 0;
  std::vector<size_t> queue_hwm_;

  // Admission state (kDeadlineFeasible): per-shard service EWMA in 4-bit
  // fixed point (est = svc_est_x16_ >> 4), the estimated cycles sitting in
  // each shard's queue + flight, and the min observed wire round trip. All
  // integer arithmetic, so admission decisions are bit-deterministic.
  std::vector<uint64_t> svc_est_x16_;
  std::vector<uint64_t> pending_cost_;
  uint64_t wire_est_ = 0;
  bool wire_seen_ = false;

  // Observed wire sizes, for the topology planner (see avg_*_bytes()).
  uint64_t req_bytes_total_ = 0;
  uint64_t req_slices_ = 0;
  uint64_t resp_bytes_total_ = 0;
  uint64_t resp_count_ = 0;

  // Elastic operations (all inert when elastic_ is null).
  ElasticState* elastic_ = nullptr;
  std::vector<sim::Cycle> promo_until_;  ///< Per-shard promotion window end.
  /// Requests active at each migration's flip; the migration is kDone when
  /// its set drains. Keyed by migration seq.
  std::map<uint64_t, std::vector<uint64_t>> migration_drain_;
  uint64_t failovers_ = 0;
  uint64_t replayed_slices_ = 0;
  uint64_t beacon_timeouts_ = 0;
  uint64_t migrations_flipped_ = 0;
};

/// One simulated FPGA instance serving its shard of the workload, at fabric
/// node ports + shard_id. Sub-requests arrive as kOffloadReq packets; each
/// is either admitted into a bounded queue or immediately answered "busy",
/// so an overloaded shard sheds load instead of stalling the cluster. The
/// pipeline serves one slice at a time: Workload::Serve names the
/// occupancy, and the response ships when it elapses.
///
/// Flat-gather response wire encoding (user2): bit 0 set =
/// admission-rejected ("busy"); otherwise user2 >> 1 carries the slice's
/// service cycles, which the coordinator folds into its per-shard service
/// estimate for deadline-feasibility admission.
///
/// Under tree gather the server doubles as an interior merge node: its own
/// result and its children's merged contributions (arriving as merged-form
/// kOffloadResp packets) fold into one upstream packet per request, emitted
/// after the plan's per-input merge cost — and, on a lossy fabric, after at
/// most the merge timeout, so a silent child costs its subtree but not the
/// ancestors. Under switch gather the server just replies in merged form
/// (single-shard masks); the combining happens in-fabric.
class ShardServer : public sim::Module {
 public:
  struct Config {
    /// Admitted sub-requests waiting behind the pipeline; arrivals beyond
    /// this are rejected.
    uint32_t max_queue = 16;
  };

  /// `plan` may be null for standalone use: flat gather, coordinator at
  /// node 0. `replica_index` places this server as replica r of its shard
  /// (fabric node plan->ReplicaNode(shard_id, r)); `elastic` is the
  /// cluster's shared replica/migration state — null disables beacons,
  /// forwarding, and migration streaming (the historical server).
  ShardServer(std::string name, uint32_t shard_id, Workload* workload,
              net::RdmaEndpoint* endpoint, const GatherPlan* plan,
              const Config& config, uint32_t replica_index = 0,
              ElasticState* elastic = nullptr);

  void Tick(sim::Cycle cycle) override;
  bool Idle() const override {
    return !busy_ && queue_.empty() && merges_.empty() && emits_.empty() &&
           streaming_seq_ == 0;
  }
  sim::Cycle NextEventCycle(sim::Cycle now) const override;
  void ExportCustomMetrics(obs::MetricsRegistry& registry) const override;

  uint64_t served() const { return served_; }
  uint64_t rejected() const { return rejected_; }
  /// Cycles the serving pipeline was occupied.
  uint64_t service_cycles() const { return service_cycles_; }
  size_t queue_high_watermark() const { return queue_hwm_; }
  uint32_t shard_id() const { return shard_id_; }
  /// Tree gather: merged packets forwarded upstream, partial forwards
  /// forced by the merge timeout, and orphaned merge states dropped
  /// because the gather had already finalized.
  uint64_t merges_forwarded() const { return merges_forwarded_; }
  uint64_t merge_timeouts() const { return merge_timeouts_; }
  uint64_t stale_merges_dropped() const { return stale_merges_dropped_; }
  /// Tree scatter: child bundles this node peeled off and forwarded down
  /// its subtree, and bundles dropped because their gather had already
  /// finalized and released the route.
  uint64_t bundles_forwarded() const { return bundles_forwarded_; }
  uint64_t stale_bundles_dropped() const { return stale_bundles_dropped_; }
  uint32_t replica_index() const { return replica_index_; }
  /// Slices re-routed to their post-migration owner at serve time (the
  /// double-ownership window's forward path).
  uint64_t forwarded() const { return forwarded_; }
  uint64_t beacons_sent() const { return beacons_sent_; }
  /// Migrated state bytes this server streamed out as the source.
  uint64_t migrated_bytes_out() const { return migrated_bytes_out_; }

  /// Test hook: every slice this server executes is appended to `log` as
  /// {serve-start cycle, request id, slice shard}. Null (default) disables
  /// recording; the property tier uses it to prove exactly-once execution
  /// across a migration's double-ownership window.
  struct ServedRecord {
    sim::Cycle cycle = 0;
    uint64_t request_id = 0;
    uint32_t slice_shard = 0;
  };
  void set_serve_log(std::vector<ServedRecord>* log) { serve_log_ = log; }

 protected:
  /// A skipped window while the pipeline crunches is busy time; an empty
  /// server is idle (backfilled). Mirrors the serial Tick classification.
  void AttributeSkip(sim::Cycle from, sim::Cycle to) override;

 private:
  /// Accumulating merge state for one request's subtree (tree gather).
  struct MergeState {
    uint64_t done_mask = 0;
    uint64_t rejected_mask = 0;
    uint64_t concat_bytes = 0;
    uint32_t children_seen = 0;
    bool own_resolved = false;
    sim::Cycle timeout_at = 0;  ///< 0 = no timeout armed.
    /// pipelined_merge: cycle the merge engine finishes folding every
    /// contribution accepted so far (each child charged on arrival).
    sim::Cycle merge_ready_at = 0;
  };
  /// A merged packet waiting out its merge-cost delay before posting.
  struct PendingEmit {
    sim::Cycle at = 0;
    net::Packet packet;
  };

  GatherTopology topology() const {
    return plan_ == nullptr ? GatherTopology::kFlat : plan_->topology();
  }
  /// Folds one contribution into the request's merge state (creating it,
  /// and arming its timeout, on first touch).
  MergeState& TouchMerge(uint64_t request_id, sim::Cycle cycle);
  /// Emits the merged packet if the subtree is complete.
  void MaybeEmit(uint64_t request_id, sim::Cycle cycle);
  /// Builds and schedules the upstream merged packet, then drops the state.
  void EmitMerge(uint64_t request_id, MergeState& m, sim::Cycle cycle);
  /// Posts the periodic liveness beacon when elastic beacons are on.
  void TickBeacon(sim::Cycle cycle, bool* progressed);
  /// Streams the next paced migration chunk when this server is a source.
  void TickMigration(sim::Cycle cycle, bool* progressed);
  /// Aborts the active migration this server participates in (chunk or
  /// done-notification hit the transport retry cap).
  void AbortMigration(sim::Cycle cycle);

  uint32_t shard_id_;
  Workload* workload_;
  net::RdmaEndpoint* endpoint_;
  const GatherPlan* plan_;
  Config config_;
  uint32_t replica_index_ = 0;
  ElasticState* elastic_ = nullptr;

  std::deque<net::Packet> queue_;
  bool busy_ = false;
  sim::Cycle done_at_ = 0;
  net::Packet pending_resp_;
  std::map<uint64_t, MergeState> merges_;  ///< By request id (tree gather).
  std::vector<PendingEmit> emits_;

  uint64_t served_ = 0;
  uint64_t rejected_ = 0;
  uint64_t service_cycles_ = 0;
  size_t queue_hwm_ = 0;
  uint64_t merges_forwarded_ = 0;
  uint64_t merge_timeouts_ = 0;
  uint64_t stale_merges_dropped_ = 0;
  uint64_t bundles_forwarded_ = 0;
  uint64_t stale_bundles_dropped_ = 0;

  // Elastic operations (all inert when elastic_ is null).
  sim::Cycle next_beacon_at_ = 0;  ///< 0 = beacons off.
  uint64_t streaming_seq_ = 0;     ///< Migration this node is streaming out.
  uint64_t forwarded_ = 0;
  uint64_t beacons_sent_ = 0;
  uint64_t migrated_bytes_out_ = 0;
  std::vector<ServedRecord>* serve_log_ = nullptr;
};

/// Wires a whole scale-out deployment together: a fabric of ports +
/// num_shards nodes, an RdmaEndpoint per node, the coordinator on nodes
/// [0, ports) and one ShardServer per shard — everything registered on one
/// engine, ready to Submit() and Run(). The workload outlives the cluster.
/// The default GatherConfig (flat, one port) reproduces the historical
/// topology bit-for-bit; `gather` selects tree or switch aggregation and
/// the coordinator's ingress port count (see gather.h).
///
///   shard::AnnsTopKWorkload wl(&index, partitioner, wl_config);
///   shard::ShardCluster cluster(&wl, {.num_shards = 4});
///   cluster.Submit(wl.AddQuery(q));
///   auto cycles = cluster.Run();
///   while (cluster.PollOutcome(&outcome)) ...
class ShardCluster {
 public:
  struct Config {
    uint32_t num_shards = 4;
    net::Fabric::Config fabric;
    GatherConfig gather;
    ShardCoordinator::Config coordinator;
    ShardServer::Config server;
    net::RdmaEndpoint::Reliability reliability;
    /// Elastic operations: replication factor, health beacons, promotion
    /// penalty. The defaults (R=1, no beacons) reproduce the historical
    /// cluster bit-for-bit. R > 1 or migrations require flat gather.
    ReplicaConfig replica;
  };

  ShardCluster(Workload* workload, const Config& config);
  ~ShardCluster();

  /// Attaches a fault injector to the fabric (lossy mode). Must be called
  /// before any request is submitted. Tree gather on a lossy fabric
  /// requires a merge timeout (a lost child contribution would otherwise
  /// wedge its ancestors forever).
  void set_fault_injector(net::FaultInjector* injector);

  void Submit(uint64_t request_id) { coordinator_->Submit(request_id); }
  Result<sim::Cycle> Run(uint64_t max_cycles = 1ull << 32) {
    return engine_.Run(max_cycles);
  }
  bool PollOutcome(PartialOutcome* out) {
    return coordinator_->PollOutcome(out);
  }

  /// Live resharding entry point: validates and launches `plan` (stamped
  /// with the engine's current cycle). Serving continues; Run() to let the
  /// copy stream, flip, and drain.
  void StartMigration(const MigrationPlan& plan) {
    coordinator_->StartMigration(plan, engine_.now());
  }

  /// Exports every module's gauges into a fresh registry and asks the
  /// autoscaler for a verdict. Call between runs (never mid-tick).
  Autoscaler::Decision EvaluateAutoscaler(const Autoscaler& autoscaler) const;

  sim::Engine& engine() { return engine_; }
  net::Fabric& fabric() { return fabric_; }
  ShardCoordinator& coordinator() { return *coordinator_; }
  /// Replica r of `shard` (servers_[r * num_shards + shard], mirroring the
  /// fabric node numbering); the single-argument form is replica 0.
  ShardServer& server(uint32_t shard) { return *servers_[shard]; }
  ShardServer& server(uint32_t shard, uint32_t replica) {
    return *servers_[size_t{replica} * config_.num_shards + shard];
  }
  uint32_t num_shards() const { return config_.num_shards; }
  const GatherPlan& gather_plan() const { return plan_; }
  ElasticState& elastic() { return elastic_; }
  const ElasticState& elastic() const { return elastic_; }
  /// The in-fabric combiner; null unless gather.topology == kSwitch.
  net::AggregatingSwitch* agg_switch() { return agg_switch_.get(); }

 private:
  Config config_;
  GatherPlan plan_;
  ElasticState elastic_;
  sim::Engine engine_;
  net::Fabric fabric_;
  std::unique_ptr<net::AggregatingSwitch> agg_switch_;
  std::vector<std::unique_ptr<net::RdmaEndpoint>> coordinator_eps_;
  std::vector<std::unique_ptr<net::RdmaEndpoint>> server_eps_;
  std::unique_ptr<ShardCoordinator> coordinator_;
  std::vector<std::unique_ptr<ShardServer>> servers_;
};

}  // namespace fpgadp::shard

#endif  // FPGADP_SHARD_SHARD_H_
