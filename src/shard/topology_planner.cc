#include "src/shard/topology_planner.h"

#include <algorithm>
#include <vector>

#include "src/common/check.h"
#include "src/shard/shard.h"

namespace fpgadp::shard {

namespace {

uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Forwarding levels below the root of a `members`-node array-heap tree
/// with `fanout` children per node (0 when the root is alone).
uint64_t TreeDepth(uint64_t members, uint64_t fanout) {
  uint64_t depth = 0;
  uint64_t covered = 1;
  uint64_t level = 1;
  while (covered < members) {
    level *= fanout;
    covered += level;
    ++depth;
  }
  return depth;
}

}  // namespace

uint64_t TopologyPlanner::WireCycles(const PlannerInputs& in,
                                     uint64_t payload_bytes) {
  return CeilDiv((payload_bytes + in.header_bytes) * 16,
                 in.bytes_per_cycle_x16);
}

TopologyDecision TopologyPlanner::Choose(const PlannerInputs& in) {
  FPGADP_CHECK(in.num_shards > 0);
  FPGADP_CHECK(in.max_ports > 0);
  FPGADP_CHECK(in.fanout > 0);
  FPGADP_CHECK(in.bytes_per_cycle_x16 > 0);
  FPGADP_CHECK(in.shrink_pct <= 100);

  const uint64_t s = in.num_shards;
  const uint32_t ports = std::min(in.max_ports, in.num_shards);
  const uint64_t group = CeilDiv(s, ports);  // shards per coordinator port

  auto make = [&](GatherTopology topo, uint32_t nports) {
    GatherConfig g;
    g.topology = topo;
    g.coordinator_ports = nports;
    g.fanout = in.fanout;
    g.merge_cycles_per_input = in.merge_cycles_per_input;
    g.switch_combine_cycles = in.switch_combine_cycles;
    return g;
  };

  const uint64_t serve = in.service_estimate_cycles;

  // Compute-bound short-circuit: the root uplink is mostly idle, so no
  // amount of response-path engineering moves the finish line. What can:
  // balancing the scatter, when the per-shard service estimates say the
  // partitioner left some shards far hotter than the mean.
  if (in.root_uplink_occupancy_pct < kComputeBoundPct) {
    TopologyDecision d;
    d.gather = make(GatherTopology::kFlat, 1);
    d.cost_cycles = serve + in.wire_estimate_cycles;
    d.balance_scatter = in.service_estimate_mean_cycles > 0 &&
                        serve * 100 > in.service_estimate_mean_cycles * 110;
    d.rationale = "flat: root uplink " +
                  std::to_string(in.root_uplink_occupancy_pct) +
                  "% busy, compute-bound" +
                  (d.balance_scatter ? ", balance scatter (slowest shard >1.1x mean)"
                                     : "");
    return d;
  }

  const uint64_t req_wire = WireCycles(in, in.request_bytes);
  const uint64_t resp_wire = WireCycles(in, in.response_bytes);
  // Merged subtree/port response: `group` concatenated slices, shrunk by
  // the workload's merge (top-k caps ANNS; multi-get concatenates).
  const uint64_t merged_bytes =
      group * in.response_bytes * in.shrink_pct / 100;
  const uint64_t merged_wire = WireCycles(in, merged_bytes);
  const uint64_t depth = TreeDepth(group, in.fanout);

  struct Candidate {
    GatherConfig gather;
    uint64_t cost = 0;
    const char* why = nullptr;
  };
  std::vector<Candidate> ranked;

  // Flat, one port: every request and response serializes through a
  // single endpoint pair.
  ranked.push_back({make(GatherTopology::kFlat, 1),
                    std::max({serve, s * resp_wire, s * req_wire}),
                    "single endpoint"});
  // Flat-N: same shape, `ports` times the line rate on both directions.
  if (ports > 1) {
    ranked.push_back({make(GatherTopology::kFlat, ports),
                      std::max({serve, group * resp_wire, group * req_wire}),
                      "per-port fan-in"});
  }
  // Switch: responses combine in-network; the port receives one merged
  // packet after the combiner folds the group's contributions.
  if (in.switch_available) {
    ranked.push_back(
        {make(GatherTopology::kSwitch, ports),
         std::max({serve, group * in.switch_combine_cycles + merged_wire,
                   group * req_wire}),
         "in-switch combine"});
  }
  // Tree: one merged packet per port too, but interior shards pay the
  // merge and each level adds a forwarding hop. Requests can ride the
  // same tree as multicast bundles when slices share bytes.
  {
    const uint64_t distinct =
        in.request_bytes - std::min(in.shared_request_bytes, in.request_bytes);
    const uint64_t bundle_wire =
        WireCycles(in, in.shared_request_bytes + group * distinct);
    const bool multicast = in.shared_request_bytes > 0 && group > 1 &&
                           bundle_wire < group * req_wire;
    const uint64_t req_egress = multicast ? bundle_wire : group * req_wire;
    Candidate tree{make(GatherTopology::kTree, ports),
                   std::max({serve, merged_wire, req_egress}) +
                       depth * (in.fanout * in.merge_cycles_per_input +
                                merged_wire),
                   multicast ? "tree merge + multicast scatter"
                             : "tree merge"};
    if (multicast) {
      tree.gather.scatter = ScatterMode::kTree;
      tree.gather.pipelined_merge = true;
    }
    ranked.push_back(tree);
  }

  // Stable ranking: candidates were pushed simplest-first, and min_element
  // keeps the earliest of equals — the flat < flat-N < switch < tree
  // tie-break.
  const Candidate& best = *std::min_element(
      ranked.begin(), ranked.end(),
      [](const Candidate& a, const Candidate& b) { return a.cost < b.cost; });

  TopologyDecision d;
  d.gather = best.gather;
  d.cost_cycles = best.cost + in.wire_estimate_cycles;
  d.rationale = std::string(GatherTopologyName(best.gather.topology)) + "x" +
                std::to_string(best.gather.coordinator_ports) + ": " +
                best.why + ", modeled " + std::to_string(best.cost) +
                " cycles/request";
  return d;
}

PlannerInputs HarvestPlannerInputs(const ShardCoordinator& coord,
                                   Workload& workload, uint32_t num_shards,
                                   uint64_t elapsed_cycles,
                                   uint64_t probe_request) {
  PlannerInputs in;
  in.num_shards = num_shards;
  in.request_bytes = coord.avg_request_bytes();
  in.shared_request_bytes = workload.ScatterSharedBytes(probe_request);
  in.response_bytes = coord.avg_response_bytes();
  uint64_t max_est = 0, sum_est = 0;
  for (uint32_t s = 0; s < num_shards; ++s) {
    const uint64_t est = coord.service_estimate(s);
    max_est = std::max(max_est, est);
    sum_est += est;
  }
  in.service_estimate_cycles = max_est;
  in.service_estimate_mean_cycles = sum_est / num_shards;
  in.wire_estimate_cycles = coord.wire_estimate();
  const uint64_t concat = uint64_t(num_shards) * in.response_bytes;
  const uint64_t full_mask =
      num_shards >= 64 ? ~0ull : (1ull << num_shards) - 1;
  const uint64_t merged =
      concat == 0 ? 0
                  : workload.MergedBytes(probe_request, full_mask, concat);
  in.shrink_pct =
      concat == 0
          ? 100
          : uint32_t(std::min<uint64_t>(100, merged * 100 / concat));
  // Root-uplink occupancy: serialization cycles over elapsed, counting
  // BOTH directions — each served slice crossed the egress once (request)
  // and the ingress once (response); a request-heavy mix (fat multi-get
  // slices) is just as wire-bound as a response-heavy one. NOT the
  // fabric's rx-busy gauge, which counts propagation latency and
  // saturates even when the port's line rate is mostly idle.
  const uint64_t ser =
      coord.responses_observed() *
      (TopologyPlanner::WireCycles(in, in.response_bytes) +
       TopologyPlanner::WireCycles(in, in.request_bytes));
  in.root_uplink_occupancy_pct =
      elapsed_cycles == 0
          ? 100
          : uint32_t(std::min<uint64_t>(100, ser * 100 / elapsed_cycles));
  return in;
}

}  // namespace fpgadp::shard
