#ifndef FPGADP_SHARD_WORKLOADS_H_
#define FPGADP_SHARD_WORKLOADS_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/anns/ivf.h"
#include "src/kvs/smart_kvs.h"
#include "src/relational/cpu_executor.h"
#include "src/relational/fpga_executor.h"
#include "src/relational/table.h"
#include "src/shard/partitioner.h"
#include "src/shard/shard.h"

namespace fpgadp::shard {

/// Sharded ANNS top-k over one IvfPqIndex (the FANNS scale-out story): the
/// coordinator runs coarse probe selection, the partitioner splits the
/// probed list ids across shards, each shard scans only its lists
/// (IvfPqIndex::SearchLists), and the gather merges the per-shard top-k by
/// (distance, id) — exactly the single-node Search result, because every
/// candidate's ADC distance depends only on its own list's LUT.
///
/// A degraded gather merges the slices that completed: recall drops, the
/// query still answers.
class AnnsTopKWorkload : public Workload {
 public:
  struct Config {
    size_t nprobe = 8;
    size_t k = 10;
    /// PQ codes the shard's scan pipeline retires per cycle (FANNS scan
    /// lanes).
    uint32_t scan_lanes = 8;
    /// Cycles to build one probed list's residual LUT.
    uint32_t lut_cycles_per_list = 32;
    /// Assign probed lists to shards by modeled scan cost (greedy
    /// longest-processing-time with cumulative per-shard load carried
    /// across requests) instead of the partitioner's static list->shard
    /// map. The paper's disaggregation argument: once lists live in
    /// network-attached memory, any shard can scan any list, so placement
    /// can chase load balance. Merged results are bit-identical either way
    /// (top-k of the same candidate set); only per-shard occupancy moves.
    /// Incompatible with range partitioning (live resharding re-routes by
    /// the partitioner's ownership map, which balancing ignores).
    bool balance_scatter = false;
  };

  AnnsTopKWorkload(const anns::IvfPqIndex* index, Partitioner partitioner,
                   const Config& config);

  /// Registers a query (copies dim floats) and returns its request id.
  uint64_t AddQuery(const float* query);

  /// Merged neighbors of a finalized request, closest first.
  const std::vector<anns::Neighbor>& result(uint64_t request_id) const;

  std::vector<SubRequest> Scatter(uint64_t request_id) override;
  Service Serve(uint32_t shard, uint64_t request_id) override;
  void Merge(uint64_t request_id, const PartialOutcome& outcome) override;
  /// Top-k is a shrinking merge: however many shard partials fold together,
  /// the merged response never carries more than k neighbors — hierarchical
  /// gather shrinks ANNS bytes at every interior node.
  uint64_t MergedBytes(uint64_t request_id, uint64_t done_mask,
                       uint64_t concat_bytes) override;
  /// Every slice carries the same query vector (dim floats); only the
  /// probed list ids differ per shard. That vector is what a scatter-tree
  /// bundle ships once per subtree instead of once per shard.
  uint64_t ScatterSharedBytes(uint64_t request_id) override;
  /// Range-partitioned list ids support live resharding: a slice whose
  /// probed lists all moved reports the new owner; mixed or non-range
  /// slices stay put.
  uint32_t SliceOwner(uint32_t shard, uint64_t request_id) override;
  /// Re-homes [range_lo, range_hi] of the list-id space (range scheme
  /// only). The index itself is immutable and shared; only the routing
  /// table flips.
  void CommitMigration(const MigrationPlan& plan) override;

 private:
  const float* Query(uint64_t request_id) const;

  const anns::IvfPqIndex* index_;
  Partitioner partitioner_;
  Config config_;
  std::vector<float> queries_;  ///< Flat, dim floats per request.
  /// balance_scatter: cumulative modeled scan cycles assigned to each
  /// shard so far — the LPT ledger that later requests balance against.
  std::vector<uint64_t> shard_load_;
  /// Probed list ids per (request, shard), fixed at Scatter.
  std::map<std::pair<uint64_t, uint32_t>, std::vector<uint32_t>> plan_;
  std::map<std::pair<uint64_t, uint32_t>, std::vector<anns::Neighbor>>
      partials_;
  std::map<uint64_t, std::vector<anns::Neighbor>> results_;
};

/// Sharded smart-KVS multi-get (the KV-Direct model scaled out): keys are
/// hash-partitioned across shards, each shard serves its batch from its own
/// store at the NIC DRAM pipeline's cost (SmartNicKvs timing statics), and
/// the gather reassembles values in request key order. Keys of a slice that
/// failed or timed out come back with served = false — the union merge
/// degrades per shard, never all-or-nothing.
class KvsMultiGetWorkload : public Workload {
 public:
  struct Config {
    /// Timing source: the NIC pipeline each shard runs.
    kvs::SmartNicKvs::Config nic;
    /// Wire bytes per key in a multi-get request.
    uint32_t key_bytes = 16;
  };

  struct GetResult {
    uint64_t key = 0;
    bool served = false;  ///< False when the owning slice did not resolve.
    bool hit = false;
    uint64_t value = 0;
  };

  KvsMultiGetWorkload(Partitioner partitioner, const Config& config);

  /// Preloads a key into its owning shard's store (no simulated time, like
  /// farview::MemoryNode::LoadTable).
  void Load(uint64_t key, uint64_t value);

  /// Registers a multi-get and returns its request id.
  uint64_t AddMultiGet(std::vector<uint64_t> keys);

  /// Per-key results of a finalized request, in the submitted key order.
  const std::vector<GetResult>& result(uint64_t request_id) const;

  size_t store_size(uint32_t shard) const { return stores_[shard].size(); }

  std::vector<SubRequest> Scatter(uint64_t request_id) override;
  Service Serve(uint32_t shard, uint64_t request_id) override;
  void Merge(uint64_t request_id, const PartialOutcome& outcome) override;
  /// Range-partitioned keys support live resharding (see AnnsTopKWorkload).
  uint32_t SliceOwner(uint32_t shard, uint64_t request_id) override;
  /// Moves the stored entries of [range_lo, range_hi] from the source
  /// store to the target store and flips the routing table — the commit
  /// half of a migration whose state already streamed over the fabric.
  void CommitMigration(const MigrationPlan& plan) override;

 private:
  /// The store actually holding `key` under the current routing table
  /// (kRoundRobin has no key ownership; callers pass the serving shard).
  uint32_t StoreOf(uint32_t shard, uint64_t key) const;

  Partitioner partitioner_;
  Config config_;
  std::vector<std::unordered_map<uint64_t, uint64_t>> stores_;  ///< Per shard.
  std::vector<std::vector<uint64_t>> requests_;  ///< Request id -> keys.
  std::map<std::pair<uint64_t, uint32_t>, std::vector<uint64_t>> plan_;
  std::map<std::pair<uint64_t, uint32_t>,
           std::unordered_map<uint64_t, uint64_t>>
      partials_;  ///< Hits per (request, shard).
  std::map<uint64_t, std::vector<GetResult>> results_;
};

/// Partitioned hash join (the classic scale-out build+probe): both sides
/// are hash-partitioned on their join keys, each shard runs its partition
/// pair through the repo's pipelined HashJoinFpga — as nested simulations
/// at Scatter time, outside any engine tick — and the gather unions the
/// per-shard match sets. Co-partitioning makes the union exactly the
/// single-node join. One workload instance models one join request.
class HashJoinWorkload : public Workload {
 public:
  struct Config {
    rel::FpgaOptions fpga;
  };

  HashJoinWorkload(const rel::Table* build, const rel::Table* probe,
                   const rel::JoinSpec& spec, Partitioner partitioner,
                   const Config& config);

  /// The single request this workload serves; pass to ShardCluster::Submit.
  uint64_t request_id() const { return 0; }

  /// The unioned join output (populated by Merge; partial under
  /// degradation). Row order is shard-major and deterministic.
  const rel::Table& result() const { return result_; }

  /// Build/probe rows routed to `shard`.
  size_t build_rows(uint32_t shard) const {
    return build_parts_[shard].num_rows();
  }
  size_t probe_rows(uint32_t shard) const {
    return probe_parts_[shard].num_rows();
  }

  std::vector<SubRequest> Scatter(uint64_t request_id) override;
  Service Serve(uint32_t shard, uint64_t request_id) override;
  void Merge(uint64_t request_id, const PartialOutcome& outcome) override;

 private:
  const rel::Table* build_;
  const rel::Table* probe_;
  rel::JoinSpec spec_;
  Partitioner partitioner_;
  Config config_;
  std::vector<rel::Table> build_parts_;
  std::vector<rel::Table> probe_parts_;
  std::vector<rel::Table> outputs_;   ///< Per-shard local join results.
  std::vector<Service> services_;     ///< Per-shard precomputed costs.
  rel::Table result_;
};

}  // namespace fpgadp::shard

#endif  // FPGADP_SHARD_WORKLOADS_H_
