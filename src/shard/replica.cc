#include "src/shard/replica.h"

#include <algorithm>
#include <string>

#include "src/common/check.h"
#include "src/obs/metrics.h"

namespace fpgadp::shard {

const char* MigrationPhaseName(MigrationPhase phase) {
  switch (phase) {
    case MigrationPhase::kCopy: return "copy";
    case MigrationPhase::kDrain: return "drain";
    case MigrationPhase::kDone: return "done";
    case MigrationPhase::kAborted: return "aborted";
  }
  return "unknown";
}

ReplicaSet::ReplicaSet(uint32_t num_shards, uint32_t replication_factor)
    : num_shards_(num_shards), replication_factor_(replication_factor) {
  FPGADP_CHECK(num_shards_ > 0);
  FPGADP_CHECK(replication_factor_ > 0);
  primary_.assign(num_shards_, 0);
  alive_.assign(size_t{num_shards_} * replication_factor_, 1);
  last_beacon_.assign(size_t{num_shards_} * replication_factor_, 0);
}

size_t ReplicaSet::Index(uint32_t shard, uint32_t replica) const {
  FPGADP_CHECK(shard < num_shards_);
  FPGADP_CHECK(replica < replication_factor_);
  return size_t{shard} * replication_factor_ + replica;
}

uint32_t ReplicaSet::Primary(uint32_t shard) const {
  FPGADP_CHECK(shard < num_shards_);
  return primary_[shard];
}

bool ReplicaSet::alive(uint32_t shard, uint32_t replica) const {
  return alive_[Index(shard, replica)] != 0;
}

uint32_t ReplicaSet::alive_count(uint32_t shard) const {
  uint32_t n = 0;
  for (uint32_t r = 0; r < replication_factor_; ++r) {
    if (alive(shard, r)) ++n;
  }
  return n;
}

bool ReplicaSet::CanPromote(uint32_t shard) const {
  for (uint32_t r = 0; r < replication_factor_; ++r) {
    if (r != primary_[shard] && alive(shard, r)) return true;
  }
  return false;
}

bool ReplicaSet::Promote(uint32_t shard) {
  const uint32_t old = primary_[shard];
  for (uint32_t step = 1; step < replication_factor_; ++step) {
    const uint32_t r = (old + step) % replication_factor_;
    if (!alive(shard, r)) continue;
    alive_[Index(shard, old)] = 0;
    primary_[shard] = r;
    ++promotions_;
    return true;
  }
  return false;
}

void ReplicaSet::MarkDead(uint32_t shard, uint32_t replica) {
  alive_[Index(shard, replica)] = 0;
}

void ReplicaSet::ObserveBeacon(uint32_t shard, uint32_t replica,
                               sim::Cycle cycle) {
  last_beacon_[Index(shard, replica)] =
      std::max(last_beacon_[Index(shard, replica)], cycle);
}

sim::Cycle ReplicaSet::last_beacon(uint32_t shard, uint32_t replica) const {
  return last_beacon_[Index(shard, replica)];
}

ElasticState::ElasticState(const ReplicaConfig& cfg, uint32_t num_shards)
    : config(cfg), replicas(num_shards, cfg.replication_factor) {
  if (config.beacon_timeout_cycles > 0) {
    FPGADP_CHECK(config.beacon_interval_cycles > 0);
    // A timeout inside two intervals would declare a healthy replica dead
    // the moment one beacon queues behind a data burst.
    FPGADP_CHECK(config.beacon_timeout_cycles >=
                 2 * config.beacon_interval_cycles);
  }
}

Migration* ElasticState::Find(uint64_t seq) {
  for (Migration& m : migrations) {
    if (m.seq == seq) return &m;
  }
  return nullptr;
}

Migration* ElasticState::ActiveCopyFrom(uint32_t shard) {
  for (Migration& m : migrations) {
    if (m.phase == MigrationPhase::kCopy && m.plan.source == shard) {
      return &m;
    }
  }
  return nullptr;
}

bool ElasticState::Busy(uint32_t shard) const {
  for (const Migration& m : migrations) {
    if (m.phase != MigrationPhase::kCopy &&
        m.phase != MigrationPhase::kDrain) {
      continue;
    }
    if (m.plan.source == shard || m.plan.target == shard) return true;
  }
  return false;
}

Autoscaler::Decision Autoscaler::Evaluate(
    const obs::MetricsRegistry& registry, const std::string& coord_name,
    const std::string& fabric_name, uint32_t num_shards,
    uint32_t coordinator_ports, uint64_t elapsed_cycles) const {
  Decision d;
  const std::string coord_base = "shard." + coord_name;
  const auto gauge = [&](const std::string& key) -> double {
    const obs::Gauge* g = registry.FindGauge(key);
    return g == nullptr ? 0.0 : g->value();
  };

  double max_queue_hwm = 0.0;
  for (uint32_t s = 0; s < num_shards; ++s) {
    max_queue_hwm = std::max(
        max_queue_hwm,
        gauge(coord_base + ".queue_hwm.shard" + std::to_string(s)));
  }
  const double shed = gauge(coord_base + ".ingress_shed");
  double max_port_util = 0.0;
  if (elapsed_cycles > 0) {
    for (uint32_t p = 0; p < coordinator_ports; ++p) {
      const double busy = gauge("net." + fabric_name + ".port" +
                                std::to_string(p) + ".rx_busy_cycles");
      max_port_util =
          std::max(max_port_util, busy / static_cast<double>(elapsed_cycles));
    }
  }

  if (num_shards < config_.max_shards) {
    if (shed >= config_.ingress_shed_high) {
      d.action = Action::kAdd;
      d.reason = "ingress_shed=" + std::to_string(shed);
      return d;
    }
    if (max_queue_hwm >= config_.queue_hwm_high) {
      d.action = Action::kAdd;
      d.reason = "queue_hwm=" + std::to_string(max_queue_hwm);
      return d;
    }
    if (max_port_util >= config_.port_util_high) {
      d.action = Action::kAdd;
      d.reason = "port_util=" + std::to_string(max_port_util);
      return d;
    }
  }

  if (num_shards > config_.min_shards && shed < 1.0 &&
      max_port_util <= config_.port_util_low &&
      max_queue_hwm <= config_.port_util_low * config_.queue_hwm_high) {
    d.action = Action::kDrain;
    d.reason = "idle: port_util=" + std::to_string(max_port_util);
    // Drain the coldest shard: fewest slices served across its servers.
    double coldest = -1.0;
    for (uint32_t s = 0; s < num_shards; ++s) {
      const double served =
          gauge("shard.shard" + std::to_string(s) + ".served");
      if (coldest < 0.0 || served < coldest) {
        coldest = served;
        d.shard = s;
      }
    }
    return d;
  }
  return d;
}

}  // namespace fpgadp::shard
