#include "src/shard/gather.h"

#include <algorithm>

#include "src/common/check.h"

namespace fpgadp::shard {

const char* GatherTopologyName(GatherTopology topology) {
  switch (topology) {
    case GatherTopology::kFlat: return "flat";
    case GatherTopology::kTree: return "tree";
    case GatherTopology::kSwitch: return "switch";
  }
  return "unknown";
}

bool ParseGatherTopology(const std::string& text, GatherTopology* out) {
  if (text == "flat") { *out = GatherTopology::kFlat; return true; }
  if (text == "tree") { *out = GatherTopology::kTree; return true; }
  if (text == "switch") { *out = GatherTopology::kSwitch; return true; }
  return false;
}

GatherPlan::GatherPlan(const GatherConfig& config, uint32_t num_shards,
                       uint32_t replicas)
    : config_(config), num_shards_(num_shards), replicas_(replicas) {
  FPGADP_CHECK(num_shards_ > 0);
  FPGADP_CHECK(config_.coordinator_ports > 0);
  FPGADP_CHECK(replicas_ > 0);
  if (replicas_ > 1) {
    // Tree and switch gather address peers by shard id; replica routing is
    // only defined for the flat response path.
    FPGADP_CHECK(config_.topology == GatherTopology::kFlat);
    // Scatter bundles address subtree members by shard id too, and the
    // replay-after-failover protocol re-posts individual slices.
    FPGADP_CHECK(config_.scatter == ScatterMode::kUnicast);
  }
  if (config_.topology != GatherTopology::kFlat) {
    // Merged responses carry per-shard coverage as 64-bit masks on the wire
    // (Packet::addr / Packet::user2).
    FPGADP_CHECK(num_shards_ <= 64);
  }
  if (config_.topology == GatherTopology::kTree ||
      config_.scatter == ScatterMode::kTree) {
    FPGADP_CHECK(config_.fanout > 0);
  }
}

void GatherPlan::Arm(uint64_t request_id,
                     const std::vector<uint32_t>& shards) {
  std::vector<SliceInfo> slices;
  slices.reserve(shards.size());
  for (uint32_t s : shards) slices.push_back({s, 0, 0});
  Arm(request_id, slices, 0);
}

void GatherPlan::Arm(uint64_t request_id,
                     const std::vector<SliceInfo>& slices,
                     uint64_t shared_bytes) {
  FPGADP_CHECK(config_.topology == GatherTopology::kTree ||
               config_.scatter == ScatterMode::kTree);
  FPGADP_CHECK(!slices.empty());
  FPGADP_CHECK(routes_.find(request_id) == routes_.end());
  std::map<uint32_t, Role>& route = routes_[request_id];
  // One heap-shaped fanout-ary tree per coordinator port, over the port's
  // members in ascending shard order.
  for (uint32_t port = 0; port < ports(); ++port) {
    std::vector<const SliceInfo*> group;
    for (size_t i = 0; i < slices.size(); ++i) {
      FPGADP_CHECK(i == 0 || slices[i - 1].shard < slices[i].shard);
      FPGADP_CHECK(slices[i].request_bytes >= shared_bytes);
      if (PortOf(slices[i].shard) == port) group.push_back(&slices[i]);
    }
    for (size_t i = 0; i < group.size(); ++i) {
      Role role;
      if (i == 0) {
        role.parent = kToCoordinator;
        role.port = port;
      } else {
        role.parent = group[(i - 1) / config_.fanout]->shard;
      }
      const size_t first_child = i * config_.fanout + 1;
      for (size_t c = first_child;
           c < first_child + config_.fanout && c < group.size(); ++c) {
        ++role.expected_children;
        role.down.push_back(group[c]->shard);
      }
      role.slice_bytes = group[i]->request_bytes;
      role.tag = group[i]->tag;
      // Seeded with the member's distinct bytes; the bottom-up pass below
      // folds in descendants, and the shared portion is added once per
      // bundle at the end.
      role.subtree_bytes = group[i]->request_bytes - shared_bytes;
      route[group[i]->shard] = role;
    }
    // Heap order guarantees parent index < child index, so one reverse
    // sweep accumulates subtree distinct bytes bottom-up.
    for (size_t i = group.size(); i-- > 1;) {
      route[group[(i - 1) / config_.fanout]->shard].subtree_bytes +=
          route[group[i]->shard].subtree_bytes;
    }
    for (const SliceInfo* s : group) {
      route[s->shard].subtree_bytes += shared_bytes;
    }
  }
}

void GatherPlan::Release(uint64_t request_id) { routes_.erase(request_id); }

const GatherPlan::Role* GatherPlan::RoleOf(uint64_t request_id,
                                           uint32_t shard) const {
  const auto it = routes_.find(request_id);
  if (it == routes_.end()) return nullptr;
  const auto rit = it->second.find(shard);
  return rit == it->second.end() ? nullptr : &rit->second;
}

}  // namespace fpgadp::shard
