#include "src/shard/gather.h"

#include <algorithm>

#include "src/common/check.h"

namespace fpgadp::shard {

const char* GatherTopologyName(GatherTopology topology) {
  switch (topology) {
    case GatherTopology::kFlat: return "flat";
    case GatherTopology::kTree: return "tree";
    case GatherTopology::kSwitch: return "switch";
  }
  return "unknown";
}

bool ParseGatherTopology(const std::string& text, GatherTopology* out) {
  if (text == "flat") { *out = GatherTopology::kFlat; return true; }
  if (text == "tree") { *out = GatherTopology::kTree; return true; }
  if (text == "switch") { *out = GatherTopology::kSwitch; return true; }
  return false;
}

GatherPlan::GatherPlan(const GatherConfig& config, uint32_t num_shards,
                       uint32_t replicas)
    : config_(config), num_shards_(num_shards), replicas_(replicas) {
  FPGADP_CHECK(num_shards_ > 0);
  FPGADP_CHECK(config_.coordinator_ports > 0);
  FPGADP_CHECK(replicas_ > 0);
  if (replicas_ > 1) {
    // Tree and switch gather address peers by shard id; replica routing is
    // only defined for the flat response path.
    FPGADP_CHECK(config_.topology == GatherTopology::kFlat);
  }
  if (config_.topology != GatherTopology::kFlat) {
    // Merged responses carry per-shard coverage as 64-bit masks on the wire
    // (Packet::addr / Packet::user2).
    FPGADP_CHECK(num_shards_ <= 64);
  }
  if (config_.topology == GatherTopology::kTree) {
    FPGADP_CHECK(config_.fanout > 0);
  }
}

void GatherPlan::Arm(uint64_t request_id,
                     const std::vector<uint32_t>& shards) {
  FPGADP_CHECK(config_.topology == GatherTopology::kTree);
  FPGADP_CHECK(!shards.empty());
  FPGADP_CHECK(routes_.find(request_id) == routes_.end());
  FPGADP_CHECK(std::is_sorted(shards.begin(), shards.end()));
  std::map<uint32_t, Role>& route = routes_[request_id];
  // One heap-shaped fanout-ary tree per coordinator port, over the port's
  // members in ascending shard order.
  for (uint32_t port = 0; port < ports(); ++port) {
    std::vector<uint32_t> group;
    for (uint32_t s : shards) {
      if (PortOf(s) == port) group.push_back(s);
    }
    for (size_t i = 0; i < group.size(); ++i) {
      Role role;
      if (i == 0) {
        role.parent = kToCoordinator;
        role.port = port;
      } else {
        role.parent = group[(i - 1) / config_.fanout];
      }
      const size_t first_child = i * config_.fanout + 1;
      for (size_t c = first_child;
           c < first_child + config_.fanout && c < group.size(); ++c) {
        ++role.expected_children;
      }
      route[group[i]] = role;
    }
  }
}

void GatherPlan::Release(uint64_t request_id) { routes_.erase(request_id); }

const GatherPlan::Role* GatherPlan::RoleOf(uint64_t request_id,
                                           uint32_t shard) const {
  const auto it = routes_.find(request_id);
  if (it == routes_.end()) return nullptr;
  const auto rit = it->second.find(shard);
  return rit == it->second.end() ? nullptr : &rit->second;
}

}  // namespace fpgadp::shard
