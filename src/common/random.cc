#include "src/common/random.h"

#include <cmath>

#include "src/common/check.h"

namespace fpgadp {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  FPGADP_CHECK(bound > 0);
  // Lemire's multiply-shift rejection-free approximation is fine for
  // simulation workloads; bias is < 2^-32 for bounds below 2^32.
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(Next()) * bound) >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = r * std::sin(theta);
  have_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextExponential(double mean) {
  FPGADP_CHECK(mean > 0.0);
  // 1 - NextDouble() is in (0, 1], so the log is finite and <= 0.
  return -mean * std::log(1.0 - NextDouble());
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  FPGADP_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  FPGADP_CHECK(n > 0);
  FPGADP_CHECK(theta >= 0.0 && theta < 1.0);
  zetan_ = 0.0;
  for (uint64_t i = 1; i <= n_; ++i) zetan_ += 1.0 / std::pow(double(i), theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  double zeta2 = 1.0 + std::pow(0.5, theta_);
  eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) / (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

std::vector<float> GenerateClusteredVectors(size_t count, size_t dim,
                                            size_t num_clusters, uint64_t seed,
                                            float cluster_stddev) {
  FPGADP_CHECK(num_clusters > 0);
  Rng rng(seed);
  // Cluster centers uniform in [0, 1)^dim.
  std::vector<float> centers(num_clusters * dim);
  for (auto& c : centers) c = static_cast<float>(rng.NextDouble());
  std::vector<float> data(count * dim);
  for (size_t i = 0; i < count; ++i) {
    const size_t c = rng.NextBounded(num_clusters);
    for (size_t d = 0; d < dim; ++d) {
      data[i * dim + d] =
          centers[c * dim + d] +
          cluster_stddev * static_cast<float>(rng.NextGaussian());
    }
  }
  return data;
}

}  // namespace fpgadp
