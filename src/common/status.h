#ifndef FPGADP_COMMON_STATUS_H_
#define FPGADP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace fpgadp {

/// Canonical error codes, modeled after the Arrow/RocksDB convention.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kIoError = 9,
  kTimeout = 10,
  kUnavailable = 11,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation. The library never throws; every API that
/// can fail returns a Status (or a Result<T>, see result.h).
///
/// Usage:
///   Status s = engine.Run();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with `code` and a diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers for each canonical code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the status carries no error.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status to the caller. Mirrors Arrow's ARROW_RETURN_NOT_OK.
#define FPGADP_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::fpgadp::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (false)

}  // namespace fpgadp

#endif  // FPGADP_COMMON_STATUS_H_
