#ifndef FPGADP_COMMON_UNITS_H_
#define FPGADP_COMMON_UNITS_H_

#include <cstdint>

namespace fpgadp {

/// Byte-size literals.
constexpr uint64_t kKiB = 1024ull;
constexpr uint64_t kMiB = 1024ull * kKiB;
constexpr uint64_t kGiB = 1024ull * kMiB;

/// Decimal rate units (networking and memory vendors quote decimal).
constexpr double kKB = 1e3;
constexpr double kMB = 1e6;
constexpr double kGB = 1e9;

constexpr double kMHz = 1e6;
constexpr double kGHz = 1e9;

constexpr double kGbps = 1e9;  // bits per second

/// Converts a link rate in bits/s and a clock in Hz into the whole number of
/// bytes the link can move per clock cycle (floor).
constexpr uint32_t BytesPerCycle(double bits_per_second, double clock_hz) {
  return static_cast<uint32_t>(bits_per_second / 8.0 / clock_hz);
}

/// Converts a cycle count at `clock_hz` into seconds.
constexpr double CyclesToSeconds(uint64_t cycles, double clock_hz) {
  return static_cast<double>(cycles) / clock_hz;
}

/// Converts nanoseconds into (rounded-up) cycles at `clock_hz`.
constexpr uint64_t NanosToCycles(double nanos, double clock_hz) {
  const double cycles = nanos * 1e-9 * clock_hz;
  const auto floor = static_cast<uint64_t>(cycles);
  return (cycles > static_cast<double>(floor)) ? floor + 1 : floor;
}

}  // namespace fpgadp

#endif  // FPGADP_COMMON_UNITS_H_
