#ifndef FPGADP_COMMON_CHECK_H_
#define FPGADP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace fpgadp::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "FPGADP_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace fpgadp::internal

/// Aborts on programmer error. Use for invariants that indicate a bug in the
/// library or its caller, never for recoverable conditions (those return
/// Status). Enabled in all build types.
#define FPGADP_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) ::fpgadp::internal::CheckFailed(__FILE__, __LINE__, #expr); \
  } while (false)

#define FPGADP_CHECK_OK(expr)                                                \
  do {                                                                       \
    ::fpgadp::Status _st = (expr);                                           \
    if (!_st.ok())                                                           \
      ::fpgadp::internal::CheckFailed(__FILE__, __LINE__, _st.ToString().c_str()); \
  } while (false)

/// Debug-only variant for assertions too costly (or too paranoid) for the
/// simulator's per-cycle hot paths. Compiled out in optimized builds unless
/// FPGADP_ENABLE_DCHECKS is defined — the sanitizer preset defines it, so
/// CI still exercises every DCHECK. Note both CMake presets build
/// RelWithDebInfo (NDEBUG set); without the explicit opt-in these would
/// never fire.
#if !defined(NDEBUG) || defined(FPGADP_ENABLE_DCHECKS)
#define FPGADP_DCHECK(expr) FPGADP_CHECK(expr)
#else
#define FPGADP_DCHECK(expr)      \
  do {                           \
    (void)sizeof(!(expr));       \
  } while (false)
#endif

#endif  // FPGADP_COMMON_CHECK_H_
