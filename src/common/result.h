#ifndef FPGADP_COMMON_RESULT_H_
#define FPGADP_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/common/status.h"

namespace fpgadp {

/// Either a value of type T or an error Status. Modeled after arrow::Result.
///
/// Usage:
///   Result<Index> r = Index::Build(params);
///   if (!r.ok()) return r.status();
///   Index index = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs a Result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs a Result holding an error. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    FPGADP_CHECK(!status_.ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The error (OK if a value is present).
  const Status& status() const { return status_; }

  /// The held value; the Result must be ok().
  const T& value() const& {
    FPGADP_CHECK(ok());
    return *value_;
  }
  T& value() & {
    FPGADP_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    FPGADP_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Evaluates `expr` (a Result<T>), propagating errors; on success assigns the
/// value to `lhs`. Mirrors ARROW_ASSIGN_OR_RAISE.
#define FPGADP_ASSIGN_OR_RETURN(lhs, expr)            \
  FPGADP_ASSIGN_OR_RETURN_IMPL(                       \
      FPGADP_CONCAT_(_result_, __LINE__), lhs, expr)

#define FPGADP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define FPGADP_CONCAT_(a, b) FPGADP_CONCAT_IMPL_(a, b)
#define FPGADP_CONCAT_IMPL_(a, b) a##b

}  // namespace fpgadp

#endif  // FPGADP_COMMON_RESULT_H_
