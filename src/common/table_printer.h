#ifndef FPGADP_COMMON_TABLE_PRINTER_H_
#define FPGADP_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace fpgadp {

/// Prints aligned plain-text result tables, the output format of every bench
/// binary (mirrors the rows a paper table would report).
///
///   TablePrinter t({"selectivity", "CPU (ms)", "FPGA (ms)", "speedup"});
///   t.AddRow({"0.01", "12.3", "0.9", "13.7x"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a separator line under the header.
  void Print(std::ostream& os) const;

  /// Renders the table as CSV (for downstream plotting).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

  /// Formats a double with `digits` significant decimal places.
  static std::string Fmt(double v, int digits = 2);
  /// Formats an integer with thousands separators: 1234567 -> "1,234,567".
  static std::string FmtCount(uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fpgadp

#endif  // FPGADP_COMMON_TABLE_PRINTER_H_
