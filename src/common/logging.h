#ifndef FPGADP_COMMON_LOGGING_H_
#define FPGADP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace fpgadp {

/// Log severities, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum severity; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Use via FPGADP_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fpgadp

/// Usage: FPGADP_LOG(kInfo) << "built index with " << n << " vectors";
#define FPGADP_LOG(severity)                              \
  ::fpgadp::internal::LogMessage(                         \
      ::fpgadp::LogLevel::severity, __FILE__, __LINE__)

#endif  // FPGADP_COMMON_LOGGING_H_
