#include "src/common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"

namespace fpgadp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FPGADP_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  FPGADP_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  for (size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string TablePrinter::Fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::FmtCount(uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  const size_t n = raw.size();
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += raw[i];
  }
  return out;
}

}  // namespace fpgadp
