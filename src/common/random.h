#ifndef FPGADP_COMMON_RANDOM_H_
#define FPGADP_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fpgadp {

/// Deterministic, fast PRNG (xoshiro256**). All workload generators in the
/// library take an explicit seed so every experiment is reproducible.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal sequences on all platforms.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Exponential with the given mean (inverse-CDF). The building block for
  /// Poisson arrival processes: successive draws are i.i.d. inter-arrival
  /// gaps. `mean` must be > 0; the result is in [0, inf).
  double NextExponential(double mean);

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

 private:
  uint64_t s_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Samples from a Zipf(n, theta) distribution over {0, ..., n-1} using the
/// standard rejection-inversion-free incremental method (Gray et al.).
/// theta = 0 is uniform; theta ~ 0.99 matches typical cache/embedding skew.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  /// Next sample in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

/// Generates `count` vectors of dimension `dim` drawn from a mixture of
/// `num_clusters` Gaussians — the standard stand-in for SIFT-like ANN corpora.
/// Returns row-major data of size count*dim.
std::vector<float> GenerateClusteredVectors(size_t count, size_t dim,
                                            size_t num_clusters, uint64_t seed,
                                            float cluster_stddev = 0.15f);

}  // namespace fpgadp

#endif  // FPGADP_COMMON_RANDOM_H_
