#ifndef FPGADP_SERVE_ARRIVAL_H_
#define FPGADP_SERVE_ARRIVAL_H_

#include <cstdint>
#include <vector>

#include "src/sim/module.h"

namespace fpgadp::serve {

/// The traffic shapes the serving front door can offer to a cluster.
enum class ArrivalKind : uint8_t {
  /// Open loop, Poisson: i.i.d. exponential inter-arrival gaps with the
  /// configured mean. The memoryless baseline every queueing model assumes.
  kPoisson = 0,
  /// Open loop, bursty: a two-state Markov-modulated Poisson process
  /// (MMPP-2). The source alternates between a burst state, where the
  /// arrival rate is multiplied by burst_rate_multiplier, and a quiet gap
  /// state at the base rate; state dwell times are exponential with means
  /// mean_burst_cycles / mean_gap_cycles. Same long-run average rate knobs
  /// as Poisson but with the correlated clumps real front ends see.
  kBursty = 1,
  /// Open loop, diurnal: a Poisson process whose instantaneous rate follows
  /// a sinusoid, rate(t) = base_rate * (1 + amplitude * sin(2*pi*t /
  /// period_cycles)) — a compressed day/night cycle for ramp studies.
  /// Sampled by thinning, so it degrades to exact Poisson at amplitude 0.
  kDiurnal = 2,
  /// Closed loop: `concurrency` clients that each submit, wait for their
  /// response, then immediately submit again. The arrival schedule here
  /// only staggers the initial submissions one cycle apart; subsequent
  /// arrivals are response-driven (the front door spawns them at
  /// completion, so the offered load self-limits — the classic reason
  /// closed-loop benchmarks hide tail-latency cliffs).
  kClosedLoop = 3,
};

/// Returns a stable lowercase name for `kind` ("poisson", "bursty", ...).
const char* ArrivalKindName(ArrivalKind kind);

/// Parameters for one traffic source. Rates are expressed through the mean
/// inter-arrival gap in sim cycles (mean_interarrival_cycles = 1/rate), the
/// natural unit for a cycle-stepped simulator.
struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Mean gap between arrivals at the base rate. Must be > 0 for the open
  /// loop kinds.
  double mean_interarrival_cycles = 1000.0;

  // kBursty (MMPP-2):
  double burst_rate_multiplier = 4.0;  ///< Rate gain inside a burst.
  double mean_burst_cycles = 5000.0;   ///< Mean dwell in the burst state.
  double mean_gap_cycles = 20000.0;    ///< Mean dwell in the quiet state.

  // kDiurnal:
  double period_cycles = 100000.0;  ///< Length of one rate cycle.
  double amplitude = 0.5;           ///< Peak rate swing, in [0, 1).

  // kClosedLoop:
  uint32_t concurrency = 8;  ///< Always-on clients.
};

/// Generates the first `count` arrival cycles of the configured process,
/// ascending (ties allowed — two requests may land on one cycle), seeded and
/// bit-deterministic: equal (config, count, seed) always yields the equal
/// schedule, which is what keeps serving runs replayable across engine
/// modes. For kClosedLoop only the initial `concurrency` submissions are
/// scheduled (cycles 0, 1, ..., concurrency-1, clamped to count).
std::vector<sim::Cycle> GenerateArrivals(const ArrivalConfig& config,
                                         size_t count, uint64_t seed);

}  // namespace fpgadp::serve

#endif  // FPGADP_SERVE_ARRIVAL_H_
