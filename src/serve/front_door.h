#ifndef FPGADP_SERVE_FRONT_DOOR_H_
#define FPGADP_SERVE_FRONT_DOOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/obs/latency_histogram.h"
#include "src/serve/arrival.h"
#include "src/shard/shard.h"
#include "src/sim/module.h"

namespace fpgadp::serve {

/// One class of traffic a serving deployment distinguishes: a name for
/// reporting, a latency SLO (which doubles as the deadline budget handed to
/// admission), and a relative share of the offered load.
struct RequestClass {
  std::string name = "default";
  /// The class's tail-latency target in cycles, measured arrival-to-merge.
  /// Deadline-feasibility admission plans against exactly this budget.
  uint64_t slo_cycles = 10000;
  /// Relative arrival weight; class draws are weight-proportional.
  double weight = 1.0;
};

/// Everything measured about one request class over a run. Latency is
/// recorded arrival-to-finalize in sim cycles for completed requests only;
/// shed requests never enter the histogram (they are counted, not timed —
/// the shed/served split is the experiment's other axis).
struct ClassStats {
  obs::LatencyHistogram latency;
  uint64_t offered = 0;         ///< Arrivals presented to admission.
  uint64_t admitted = 0;        ///< Accepted by TrySubmit.
  uint64_t shed = 0;            ///< Refused at ingress.
  uint64_t completed = 0;       ///< Gathers finalized (incl. degraded).
  uint64_t degraded = 0;        ///< Completed with missing slices.
  uint64_t slo_violations = 0;  ///< Completed with latency > slo_cycles.
};

/// The serving front door: a load-generator-plus-client module that offers
/// a configured traffic mix to a ShardCoordinator and measures what comes
/// back. It closes the loop the shard layer left open — PR5's benches
/// submitted a fixed batch and drained it; this module injects requests on
/// an arrival schedule *while the cluster runs*, which is what makes
/// latency-vs-load and admission experiments possible at all.
///
/// Determinism: every source of randomness is consumed in the constructor —
/// the arrival schedule, the per-request class draws, and every
/// Workload::Scatter plan are precomputed before the engine starts. Tick()
/// only moves cursors over that precomputed state and calls the tick-safe
/// ShardCoordinator::TrySubmit, so a run's every latency sample is
/// bit-identical across the serial, fast-forward, and threaded engine
/// modes (the module is not parallel-certified, so threaded mode serializes
/// it — same guarantee the shard modules give).
///
/// Closed-loop traffic is response-driven, so only the initial window is
/// scheduled up front; each completion (or ingress shed) schedules the next
/// precomputed request at the current cycle. The request *contents* are
/// still precomputed — only the timing is dynamic, and it derives from
/// deterministic completions.
class FrontDoor : public sim::Module {
 public:
  /// Registers one request of class `class_index` with the workload (e.g.
  /// SyntheticWorkload::AddRequest) and returns its request id. Called from
  /// the FrontDoor constructor, once per request, in arrival order —
  /// outside any tick, so it may be arbitrarily heavy.
  using RequestFactory = std::function<uint64_t(uint32_t class_index,
                                                size_t sequence)>;

  struct Config {
    ArrivalConfig arrivals;
    std::vector<RequestClass> classes = {RequestClass{}};
    /// Total requests the run offers (across all classes).
    size_t num_requests = 100;
    /// Seeds the arrival schedule and the class draws.
    uint64_t seed = 1;
  };

  FrontDoor(std::string name, shard::ShardCoordinator* coordinator,
            shard::Workload* workload, RequestFactory factory,
            const Config& config);

  void Tick(sim::Cycle cycle) override;
  bool Idle() const override;
  sim::Cycle NextEventCycle(sim::Cycle now) const override;
  void ExportCustomMetrics(obs::MetricsRegistry& registry) const override;

  const ClassStats& class_stats(size_t class_index) const {
    return stats_[class_index];
  }
  size_t num_classes() const { return stats_.size(); }
  /// All classes rolled into one histogram (LatencyHistogram::Merge).
  obs::LatencyHistogram MergedLatency() const;

  uint64_t total_offered() const { return total_offered_; }
  uint64_t total_admitted() const { return total_admitted_; }
  uint64_t total_shed() const { return total_shed_; }
  uint64_t total_completed() const { return total_completed_; }

  /// Test hook: every completion is appended to `log` in finalize order.
  /// Histograms aggregate time away; the chaos tier needs the time series
  /// to assert that p99 *returns* under the SLO within a recovery budget
  /// after a fault, not just that the run-wide tail looks healthy. Null
  /// (default) disables recording.
  struct CompletionRecord {
    sim::Cycle completed_at = 0;
    uint64_t latency_cycles = 0;
    uint32_t class_index = 0;
    bool degraded = false;
  };
  void set_completion_log(std::vector<CompletionRecord>* log) {
    completion_log_ = log;
  }

 private:
  /// One precomputed request: identity, class, scatter plan, and (once
  /// known) its arrival cycle.
  struct Request {
    uint64_t id = 0;
    uint32_t class_index = 0;
    sim::Cycle arrival = 0;
    std::vector<shard::SubRequest> subs;
  };

  /// Appends request `index` to the injection order at cycle `at` (used at
  /// construction for open-loop schedules and at completion time for
  /// closed-loop spawns).
  void ScheduleArrival(size_t index, sim::Cycle at);

  shard::ShardCoordinator* coordinator_;
  Config config_;

  std::vector<Request> requests_;
  std::map<uint64_t, size_t> id_to_index_;
  /// Request indices in injection order; cycles are non-decreasing.
  std::vector<size_t> inject_order_;
  size_t next_inject_ = 0;
  /// First request not yet given an arrival cycle (closed loop only; open
  /// loop schedules everything at construction).
  size_t next_unscheduled_ = 0;

  std::vector<ClassStats> stats_;
  std::vector<CompletionRecord>* completion_log_ = nullptr;
  uint64_t total_offered_ = 0;
  uint64_t total_admitted_ = 0;
  uint64_t total_shed_ = 0;
  uint64_t total_completed_ = 0;
};

}  // namespace fpgadp::serve

#endif  // FPGADP_SERVE_FRONT_DOOR_H_
