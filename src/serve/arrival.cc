#include "src/serve/arrival.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/random.h"

namespace fpgadp::serve {

const char* ArrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kDiurnal: return "diurnal";
    case ArrivalKind::kClosedLoop: return "closed_loop";
  }
  return "unknown";
}

namespace {

std::vector<sim::Cycle> PoissonArrivals(const ArrivalConfig& config,
                                        size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<sim::Cycle> out;
  out.reserve(count);
  double t = 0.0;
  for (size_t i = 0; i < count; ++i) {
    t += rng.NextExponential(config.mean_interarrival_cycles);
    out.push_back(static_cast<sim::Cycle>(t));
  }
  return out;
}

std::vector<sim::Cycle> BurstyArrivals(const ArrivalConfig& config,
                                       size_t count, uint64_t seed) {
  FPGADP_CHECK(config.burst_rate_multiplier >= 1.0);
  FPGADP_CHECK(config.mean_burst_cycles > 0.0);
  FPGADP_CHECK(config.mean_gap_cycles > 0.0);
  Rng rng(seed);
  std::vector<sim::Cycle> out;
  out.reserve(count);
  double t = 0.0;
  bool in_burst = false;
  // End of the current modulation state; arrivals that would overshoot it
  // are re-drawn from the new state's rate starting at the boundary.
  double state_end = rng.NextExponential(config.mean_gap_cycles);
  while (out.size() < count) {
    const double mean = in_burst ? config.mean_interarrival_cycles /
                                       config.burst_rate_multiplier
                                 : config.mean_interarrival_cycles;
    const double next = t + rng.NextExponential(mean);
    if (next > state_end) {
      // Memorylessness lets us discard the partial gap and restart the
      // exponential clock at the state boundary.
      t = state_end;
      in_burst = !in_burst;
      state_end = t + rng.NextExponential(in_burst ? config.mean_burst_cycles
                                                   : config.mean_gap_cycles);
      continue;
    }
    t = next;
    out.push_back(static_cast<sim::Cycle>(t));
  }
  return out;
}

std::vector<sim::Cycle> DiurnalArrivals(const ArrivalConfig& config,
                                        size_t count, uint64_t seed) {
  FPGADP_CHECK(config.period_cycles > 0.0);
  FPGADP_CHECK(config.amplitude >= 0.0 && config.amplitude < 1.0);
  Rng rng(seed);
  std::vector<sim::Cycle> out;
  out.reserve(count);
  // Thinning (Lewis & Shedler): draw from the peak rate, keep each arrival
  // with probability rate(t) / peak_rate. Exact for any bounded rate.
  const double peak_mean =
      config.mean_interarrival_cycles / (1.0 + config.amplitude);
  double t = 0.0;
  while (out.size() < count) {
    t += rng.NextExponential(peak_mean);
    const double phase = 2.0 * M_PI * t / config.period_cycles;
    const double relative_rate = (1.0 + config.amplitude * std::sin(phase)) /
                                 (1.0 + config.amplitude);
    if (rng.NextDouble() < relative_rate) {
      out.push_back(static_cast<sim::Cycle>(t));
    }
  }
  return out;
}

}  // namespace

std::vector<sim::Cycle> GenerateArrivals(const ArrivalConfig& config,
                                         size_t count, uint64_t seed) {
  if (count == 0) return {};
  if (config.kind == ArrivalKind::kClosedLoop) {
    FPGADP_CHECK(config.concurrency > 0);
    const size_t initial =
        std::min<size_t>(count, static_cast<size_t>(config.concurrency));
    std::vector<sim::Cycle> out;
    out.reserve(initial);
    for (size_t i = 0; i < initial; ++i) out.push_back(i);
    return out;
  }
  FPGADP_CHECK(config.mean_interarrival_cycles > 0.0);
  switch (config.kind) {
    case ArrivalKind::kPoisson: return PoissonArrivals(config, count, seed);
    case ArrivalKind::kBursty: return BurstyArrivals(config, count, seed);
    case ArrivalKind::kDiurnal: return DiurnalArrivals(config, count, seed);
    case ArrivalKind::kClosedLoop: break;  // Handled above.
  }
  return {};
}

}  // namespace fpgadp::serve
