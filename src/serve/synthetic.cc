#include "src/serve/synthetic.h"

#include "src/common/check.h"
#include "src/relational/sketches.h"

namespace fpgadp::serve {

SyntheticWorkload::SyntheticWorkload(const Config& config)
    : config_(config),
      spread_(shard::Partitioner::RoundRobin(config.num_shards)) {
  FPGADP_CHECK(config_.num_shards > 0);
  FPGADP_CHECK(config_.fanout >= 1 && config_.fanout <= config_.num_shards);
}

uint64_t SyntheticWorkload::AddRequest(uint64_t base_service_cycles) {
  FPGADP_CHECK(base_service_cycles > 0);
  base_cycles_.push_back(base_service_cycles);
  return base_cycles_.size() - 1;
}

uint64_t SyntheticWorkload::ServiceCyclesFor(uint64_t request_id,
                                             uint32_t shard) const {
  FPGADP_CHECK(request_id < base_cycles_.size());
  const uint64_t base = base_cycles_[request_id];
  if (config_.jitter_pct == 0) return base;
  const uint64_t h = rel::Hash64(request_id * 0x100000001b3ull + shard);
  const uint64_t span = 2 * config_.jitter_pct + 1;
  const uint64_t pct = 100 - config_.jitter_pct + (h % span);
  const uint64_t cycles = base * pct / 100;
  return cycles == 0 ? 1 : cycles;
}

std::vector<shard::SubRequest> SyntheticWorkload::Scatter(uint64_t request_id) {
  FPGADP_CHECK(request_id < base_cycles_.size());
  // Round-robin the fanout window's start so that single-slice requests
  // cycle the shards ±1-balanced and multi-slice requests rotate which
  // shards co-serve — no shard is systematically first (and thus hottest).
  const uint32_t start = spread_.ShardOf(request_id);
  std::vector<shard::SubRequest> subs;
  subs.reserve(config_.fanout);
  for (uint32_t i = 0; i < config_.fanout; ++i) {
    shard::SubRequest sub;
    sub.shard = (start + i) % config_.num_shards;
    sub.request_bytes = config_.request_bytes;
    if (config_.publish_estimates) {
      sub.est_service_cycles = ServiceCyclesFor(request_id, sub.shard);
    }
    subs.push_back(sub);
  }
  return subs;
}

shard::Service SyntheticWorkload::Serve(uint32_t shard, uint64_t request_id) {
  shard::Service svc;
  svc.compute_cycles = ServiceCyclesFor(request_id, shard);
  svc.response_bytes = config_.response_bytes;
  return svc;
}

void SyntheticWorkload::Merge(uint64_t request_id,
                              const shard::PartialOutcome& outcome) {
  (void)request_id;
  ++merged_;
  if (outcome.degraded()) ++merged_degraded_;
}

}  // namespace fpgadp::serve
