#include "src/serve/front_door.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/random.h"
#include "src/obs/metrics.h"

namespace fpgadp::serve {

FrontDoor::FrontDoor(std::string name, shard::ShardCoordinator* coordinator,
                     shard::Workload* workload, RequestFactory factory,
                     const Config& config)
    : sim::Module(std::move(name)), coordinator_(coordinator), config_(config) {
  FPGADP_CHECK(coordinator_ != nullptr);
  FPGADP_CHECK(workload != nullptr);
  FPGADP_CHECK(!config_.classes.empty());
  FPGADP_CHECK(config_.num_requests > 0);
  // Event-safe: NextEventCycle covers the arrival schedule and unpolled
  // outcomes, and the coordinator wakes this module at every finalize.
  coordinator_->SetOutcomeListener(this);
  SetEventSafe();
  stats_.resize(config_.classes.size());

  double total_weight = 0.0;
  for (const RequestClass& c : config_.classes) {
    FPGADP_CHECK(c.weight > 0.0);
    FPGADP_CHECK(c.slo_cycles > 0);
    total_weight += c.weight;
  }

  // All randomness is spent here, before the engine's first tick: the class
  // mix, the request registrations (and through them the workload's scatter
  // plans), and the arrival schedule. Tick() is a pure cursor walk.
  Rng class_rng(config_.seed ^ 0xC1A55D7A0ull);
  requests_.reserve(config_.num_requests);
  for (size_t i = 0; i < config_.num_requests; ++i) {
    uint32_t cls = 0;
    double pick = class_rng.NextDouble() * total_weight;
    for (; cls + 1 < config_.classes.size(); ++cls) {
      pick -= config_.classes[cls].weight;
      if (pick < 0.0) break;
    }
    Request req;
    req.class_index = cls;
    req.id = factory(cls, i);
    req.subs = workload->Scatter(req.id);
    FPGADP_CHECK(!req.subs.empty());
    const bool inserted =
        id_to_index_.emplace(req.id, requests_.size()).second;
    FPGADP_CHECK(inserted);  // Factory must mint unique request ids.
    requests_.push_back(std::move(req));
  }

  const std::vector<sim::Cycle> schedule =
      GenerateArrivals(config_.arrivals, config_.num_requests, config_.seed);
  inject_order_.reserve(config_.num_requests);
  for (size_t i = 0; i < schedule.size(); ++i) ScheduleArrival(i, schedule[i]);
  next_unscheduled_ = schedule.size();  // < num_requests only closed-loop.
}

void FrontDoor::ScheduleArrival(size_t index, sim::Cycle at) {
  FPGADP_CHECK(inject_order_.empty() ||
               requests_[inject_order_.back()].arrival <= at);
  requests_[index].arrival = at;
  inject_order_.push_back(index);
}

void FrontDoor::Tick(sim::Cycle cycle) {
  bool progressed = false;

  // Harvest finished gathers first so a closed-loop spawn triggered by a
  // completion can still inject this cycle.
  shard::PartialOutcome outcome;
  while (coordinator_->PollOutcome(&outcome)) {
    progressed = true;
    const auto it = id_to_index_.find(outcome.request_id);
    FPGADP_CHECK(it != id_to_index_.end());
    Request& req = requests_[it->second];
    ClassStats& cs = stats_[req.class_index];
    const uint64_t latency = outcome.completed_at - req.arrival;
    cs.latency.Record(latency);
    ++cs.completed;
    ++total_completed_;
    if (outcome.degraded()) ++cs.degraded;
    if (latency > config_.classes[req.class_index].slo_cycles) {
      ++cs.slo_violations;
    }
    if (completion_log_ != nullptr) {
      completion_log_->push_back(
          {outcome.completed_at, latency, req.class_index,
           outcome.degraded()});
    }
    if (next_unscheduled_ < requests_.size()) {
      ScheduleArrival(next_unscheduled_++, cycle);  // Closed-loop client.
    }
  }

  // Inject every arrival due by now, in schedule order. An ingress shed in
  // closed-loop mode frees its client immediately (fast-fail), so the next
  // request lands at this same cycle and is picked up by this loop.
  while (next_inject_ < inject_order_.size() &&
         requests_[inject_order_[next_inject_]].arrival <= cycle) {
    Request& req = requests_[inject_order_[next_inject_]];
    ++next_inject_;
    progressed = true;
    ClassStats& cs = stats_[req.class_index];
    ++cs.offered;
    ++total_offered_;
    const uint64_t budget = config_.classes[req.class_index].slo_cycles;
    if (coordinator_->TrySubmit(req.id, req.subs, cycle, budget)) {
      ++cs.admitted;
      ++total_admitted_;
      req.arrival = cycle;  // Latency counts from actual injection.
    } else {
      ++cs.shed;
      ++total_shed_;
      if (next_unscheduled_ < requests_.size()) {
        ScheduleArrival(next_unscheduled_++, cycle);
      }
    }
  }

  if (progressed) MarkBusy();
  // No-progress ticks stay unclassified (idle backfill), matching the
  // default AttributeSkip under fast-forward bit-for-bit.
}

bool FrontDoor::Idle() const {
  return next_inject_ >= inject_order_.size() &&
         next_unscheduled_ >= requests_.size() &&
         coordinator_->outcomes_available() == 0;
}

sim::Cycle FrontDoor::NextEventCycle(sim::Cycle now) const {
  // Unpolled outcomes must be harvested before any skip: they can spawn
  // closed-loop arrivals and they gate Idle().
  if (coordinator_->outcomes_available() > 0) return now;
  if (next_inject_ < inject_order_.size()) {
    const sim::Cycle due = requests_[inject_order_[next_inject_]].arrival;
    return due < now ? now : due;
  }
  // Waiting on responses (closed loop) or fully drained: reactive only.
  return sim::kNoEventCycle;
}

void FrontDoor::ExportCustomMetrics(obs::MetricsRegistry& registry) const {
  const std::string base = "serve." + this->name();
  registry.GetGauge(base + ".offered")
      ->Set(static_cast<double>(total_offered_));
  registry.GetGauge(base + ".admitted")
      ->Set(static_cast<double>(total_admitted_));
  registry.GetGauge(base + ".shed")->Set(static_cast<double>(total_shed_));
  registry.GetGauge(base + ".completed")
      ->Set(static_cast<double>(total_completed_));
  for (size_t c = 0; c < stats_.size(); ++c) {
    const std::string cls = base + "." + config_.classes[c].name;
    registry.GetGauge(cls + ".p99")
        ->Set(static_cast<double>(stats_[c].latency.p99()));
    registry.GetGauge(cls + ".slo_violations")
        ->Set(static_cast<double>(stats_[c].slo_violations));
  }
}

obs::LatencyHistogram FrontDoor::MergedLatency() const {
  obs::LatencyHistogram merged(stats_.empty()
                                   ? 4
                                   : stats_[0].latency.sub_bucket_bits());
  for (const ClassStats& cs : stats_) merged.Merge(cs.latency);
  return merged;
}

}  // namespace fpgadp::serve
