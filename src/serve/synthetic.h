#ifndef FPGADP_SERVE_SYNTHETIC_H_
#define FPGADP_SERVE_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "src/shard/partitioner.h"
#include "src/shard/shard.h"

namespace fpgadp::serve {

/// A parametric shard::Workload for serving experiments: every request
/// fans out to `fanout` distinct shards (spread by a round-robin
/// partitioner so load balances within ±1 regardless of request ids), and
/// each slice occupies its shard for a caller-chosen base service time
/// plus bounded deterministic jitter. No functional payload — the point is
/// the queueing, not the answer — which keeps latency experiments free of
/// compute noise from a real kernel.
///
/// Requests are registered up front via AddRequest() (outside any tick,
/// like every Scatter caller); Serve() and Merge() only read state, so the
/// workload is safe inside module ticks per the Workload contract.
class SyntheticWorkload : public shard::Workload {
 public:
  struct Config {
    uint32_t num_shards = 4;
    /// Distinct shards each request scatters to, in [1, num_shards].
    uint32_t fanout = 1;
    uint64_t request_bytes = 256;
    uint64_t response_bytes = 512;
    /// Service-time jitter: each slice's cycles are drawn uniformly from
    /// base * [100 - pct, 100 + pct] / 100, keyed by (request, shard) so
    /// replays are bit-identical. 0 disables jitter.
    uint32_t jitter_pct = 25;
    /// When true, Scatter publishes each slice's exact service cycles in
    /// SubRequest::est_service_cycles (an oracle estimator — isolates the
    /// admission policy from estimation error). When false the field stays
    /// 0 and the coordinator leans on its per-shard EWMA.
    bool publish_estimates = true;
  };

  explicit SyntheticWorkload(const Config& config);

  /// Registers a request whose slices each cost ~base_service_cycles and
  /// returns its id. Call outside engine ticks.
  uint64_t AddRequest(uint64_t base_service_cycles);

  std::vector<shard::SubRequest> Scatter(uint64_t request_id) override;
  shard::Service Serve(uint32_t shard, uint64_t request_id) override;
  void Merge(uint64_t request_id, const shard::PartialOutcome& outcome) override;

  /// Exact cycles Serve() reports for this (request, shard) pair.
  uint64_t ServiceCyclesFor(uint64_t request_id, uint32_t shard) const;

  uint64_t merged() const { return merged_; }
  uint64_t merged_degraded() const { return merged_degraded_; }

 private:
  Config config_;
  shard::Partitioner spread_;  ///< Round-robin start shard per scatter.
  std::vector<uint64_t> base_cycles_;  ///< Indexed by request id.
  uint64_t merged_ = 0;
  uint64_t merged_degraded_ = 0;
};

}  // namespace fpgadp::serve

#endif  // FPGADP_SERVE_SYNTHETIC_H_
