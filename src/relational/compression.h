#ifndef FPGADP_RELATIONAL_COMPRESSION_H_
#define FPGADP_RELATIONAL_COMPRESSION_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"

namespace fpgadp::rel {

/// Byte-level run-length encoding: (count, value) pairs with count in
/// [1, 255]. The simplest line-rate codec — one byte in, amortized <1 byte
/// out per cycle on hardware.
std::vector<uint8_t> RleEncode(const std::vector<uint8_t>& input);

/// Inverse of RleEncode. Returns InvalidArgument on truncated input.
Result<std::vector<uint8_t>> RleDecode(const std::vector<uint8_t>& encoded);

/// Dictionary encoding of an int64 column: distinct values (in first-seen
/// order) plus per-row codes. The layout HANA-style column stores ship to
/// the accelerator [6].
struct DictEncoded {
  std::vector<int64_t> dictionary;
  std::vector<uint32_t> codes;
};
DictEncoded DictEncode(const std::vector<int64_t>& column);

/// Inverse of DictEncode. Returns InvalidArgument on out-of-range codes.
Result<std::vector<int64_t>> DictDecode(const DictEncoded& encoded);

/// LZ-style (LZSS) byte compressor with a 4 KiB sliding window and 3..18
/// byte matches — the shape of the FPGA-friendly LZ77 variants used in
/// database compression offload. Format: a flag byte announcing 8 tokens
/// (bit=1: literal byte; bit=0: 2-byte match of (offset:12, len-3:4)).
std::vector<uint8_t> LzCompress(const std::vector<uint8_t>& input);

/// Inverse of LzCompress. Returns InvalidArgument on malformed input.
Result<std::vector<uint8_t>> LzDecompress(const std::vector<uint8_t>& encoded);

}  // namespace fpgadp::rel

#endif  // FPGADP_RELATIONAL_COMPRESSION_H_
