#ifndef FPGADP_RELATIONAL_SCHEMA_H_
#define FPGADP_RELATIONAL_SCHEMA_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/check.h"

namespace fpgadp::rel {

/// Column value types. Doubles are stored bit-cast into the 64-bit slots of
/// a Row, the way a 512-bit AXI beat carries a packed tuple on the wire.
enum class ColumnType { kInt64, kDouble };

/// One column of a schema.
struct Field {
  std::string name;
  ColumnType type = ColumnType::kInt64;
};

/// Maximum columns per tuple; a 512-bit bus beat carries 8x64-bit slots,
/// which is the natural tuple width for the line-rate designs discussed in
/// the tutorial.
inline constexpr size_t kMaxColumns = 8;

/// A fixed-width tuple as it travels through FPGA kernels: up to kMaxColumns
/// 64-bit slots. Unused slots are zero.
struct Row {
  std::array<int64_t, kMaxColumns> slots{};

  int64_t Get(size_t col) const { return slots[col]; }
  void Set(size_t col, int64_t v) { slots[col] = v; }

  double GetDouble(size_t col) const {
    double d;
    std::memcpy(&d, &slots[col], sizeof(d));
    return d;
  }
  void SetDouble(size_t col, double v) {
    std::memcpy(&slots[col], &v, sizeof(v));
  }

  friend bool operator==(const Row& a, const Row& b) {
    return a.slots == b.slots;
  }
};

/// An ordered list of fields describing a relation.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
    FPGADP_CHECK(fields_.size() <= kMaxColumns);
  }

  size_t num_columns() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Bytes per tuple on the wire (8 bytes per column, packed).
  uint64_t row_bytes() const { return fields_.size() * 8; }

  /// Index of the column named `name`, or -1.
  int FindColumn(const std::string& name) const {
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  friend bool operator==(const Schema& a, const Schema& b) {
    if (a.fields_.size() != b.fields_.size()) return false;
    for (size_t i = 0; i < a.fields_.size(); ++i) {
      if (a.fields_[i].name != b.fields_[i].name ||
          a.fields_[i].type != b.fields_[i].type) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace fpgadp::rel

#endif  // FPGADP_RELATIONAL_SCHEMA_H_
