#ifndef FPGADP_RELATIONAL_AGG_STATE_H_
#define FPGADP_RELATIONAL_AGG_STATE_H_

#include <algorithm>
#include <cstdint>
#include <limits>

#include "src/relational/program.h"

namespace fpgadp::rel {

/// Running aggregate state shared by the CPU executor and the FPGA
/// aggregation kernels (identical math guarantees bit-identical results,
/// which the integration tests assert).
struct AggState {
  int64_t isum = 0;
  double dsum = 0;
  int64_t imin = std::numeric_limits<int64_t>::max();
  int64_t imax = std::numeric_limits<int64_t>::min();
  double dmin = std::numeric_limits<double>::infinity();
  double dmax = -std::numeric_limits<double>::infinity();
  uint64_t count = 0;

  void Add(const Row& row, const AggregateOp& op) {
    ++count;
    if (op.kind == AggKind::kCount) return;
    if (op.is_double) {
      const double v = row.GetDouble(op.column);
      dsum += v;
      dmin = std::min(dmin, v);
      dmax = std::max(dmax, v);
    } else {
      const int64_t v = row.Get(op.column);
      isum += v;
      imin = std::min(imin, v);
      imax = std::max(imax, v);
    }
  }

  /// Writes the final aggregate into slot `slot` of `out`.
  void Finish(const AggregateOp& op, Row& out, size_t slot) const {
    switch (op.kind) {
      case AggKind::kSum:
        if (op.is_double) out.SetDouble(slot, dsum);
        else out.Set(slot, isum);
        break;
      case AggKind::kMin:
        if (op.is_double) out.SetDouble(slot, dmin);
        else out.Set(slot, imin);
        break;
      case AggKind::kMax:
        if (op.is_double) out.SetDouble(slot, dmax);
        else out.Set(slot, imax);
        break;
      case AggKind::kCount:
        out.Set(slot, static_cast<int64_t>(count));
        break;
      case AggKind::kAvg: {
        const double total = op.is_double ? dsum : static_cast<double>(isum);
        out.SetDouble(slot, count == 0 ? 0.0 : total / double(count));
        break;
      }
    }
  }
};

}  // namespace fpgadp::rel

#endif  // FPGADP_RELATIONAL_AGG_STATE_H_
