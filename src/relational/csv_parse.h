#ifndef FPGADP_RELATIONAL_CSV_PARSE_H_
#define FPGADP_RELATIONAL_CSV_PARSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/relational/table.h"

namespace fpgadp::rel {

/// Raw-data analysis (ACCORDA, tutorial §1 ref [8]): loading text data is
/// parse-bound on CPUs, while an FPGA front-end tokenizes and converts at
/// stream rate before the query pipeline. This module provides the real
/// parser (used functionally by both sides) plus the accelerator's
/// throughput model.

/// Renders `table` as CSV text (integers as decimal, doubles with '.'
/// notation round-trippable via %.17g).
std::string TableToCsv(const Table& table);

/// Parses CSV text against `schema` (no header row, no quoting — the
/// machine-generated logs ACCORDA targets). Returns InvalidArgument with
/// the line number on malformed input.
Result<Table> ParseCsv(const Schema& schema, const std::string& text);

/// Parse throughput models for E8-style comparisons: the CPU walks bytes
/// with branchy per-character logic (~0.6 GB/s for numeric CSV); the FPGA
/// tokenizer processes a full bus word per cycle (64 B @ 200 MHz = 12.8
/// GB/s) with field conversion pipelined behind it.
struct ParseCostModel {
  double cpu_bytes_per_sec = 0.6e9;
  double fpga_bytes_per_cycle = 64;
  double fpga_clock_hz = 200e6;

  double CpuSeconds(uint64_t bytes) const {
    return double(bytes) / cpu_bytes_per_sec;
  }
  double FpgaSeconds(uint64_t bytes) const {
    return double(bytes) / (fpga_bytes_per_cycle * fpga_clock_hz);
  }
};

}  // namespace fpgadp::rel

#endif  // FPGADP_RELATIONAL_CSV_PARSE_H_
