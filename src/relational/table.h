#ifndef FPGADP_RELATIONAL_TABLE_H_
#define FPGADP_RELATIONAL_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/relational/schema.h"

namespace fpgadp::rel {

/// A materialized relation stored row-wise in fixed-width Rows — the layout
/// in which tuples stream through the simulated kernels. Small and simple on
/// purpose; this is the substrate the operator experiments run on, not a
/// full storage engine.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  uint64_t total_bytes() const { return num_rows() * schema_.row_bytes(); }

  const Row& row(size_t i) const { return rows_[i]; }
  Row& row(size_t i) { return rows_[i]; }
  void Append(Row r) { rows_.push_back(r); }
  void Reserve(size_t n) { rows_.reserve(n); }

  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& rows() { return rows_; }

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

/// Parameters for the synthetic "lineitem-flavoured" relation used across
/// the operator and Farview experiments: an id column, a uniformly random
/// key, a skewed category, and numeric measure columns.
struct SyntheticTableSpec {
  uint64_t num_rows = 1 << 16;
  uint64_t key_cardinality = 1 << 20;  ///< Range of the `key` column.
  uint64_t num_categories = 64;        ///< Range of the `cat` column.
  double zipf_theta = 0.0;             ///< Skew of the `cat` column.
  uint64_t seed = 42;
};

/// Builds a table with schema (id:int64, key:int64, cat:int64, price:double,
/// qty:int64). Deterministic in `spec.seed`.
Table MakeSyntheticTable(const SyntheticTableSpec& spec);

/// Serializes the rows to packed little-endian bytes (row-major, 8 bytes
/// per column) — the wire/DRAM image of the relation.
std::vector<uint8_t> SerializeRows(const Table& table);

/// Inverse of SerializeRows for the given schema. Returns InvalidArgument
/// if `bytes` is not a whole number of rows.
Result<Table> DeserializeRows(const Schema& schema,
                              const std::vector<uint8_t>& bytes);

}  // namespace fpgadp::rel

#endif  // FPGADP_RELATIONAL_TABLE_H_
