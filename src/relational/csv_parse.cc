#include "src/relational/csv_parse.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fpgadp::rel {

std::string TableToCsv(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  char buf[64];
  for (const Row& r : table.rows()) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c) out += ',';
      if (schema.field(c).type == ColumnType::kDouble) {
        std::snprintf(buf, sizeof(buf), "%.17g", r.GetDouble(c));
      } else {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(r.Get(c)));
      }
      out += buf;
    }
    out += '\n';
  }
  return out;
}

Result<Table> ParseCsv(const Schema& schema, const std::string& text) {
  Table table(schema);
  const size_t cols = schema.num_columns();
  size_t pos = 0;
  size_t line_no = 1;
  while (pos < text.size()) {
    // One record per line.
    const size_t eol = text.find('\n', pos);
    const size_t end = eol == std::string::npos ? text.size() : eol;
    if (end == pos) {  // empty line: skip (trailing newline case)
      pos = end + 1;
      ++line_no;
      continue;
    }
    Row row;
    size_t field_start = pos;
    size_t col = 0;
    for (size_t i = pos; i <= end; ++i) {
      if (i != end && text[i] != ',') continue;
      if (col >= cols) {
        return Status::InvalidArgument("too many fields on line " +
                                       std::to_string(line_no));
      }
      const std::string field(text, field_start, i - field_start);
      char* parse_end = nullptr;
      errno = 0;
      if (schema.field(col).type == ColumnType::kDouble) {
        const double v = std::strtod(field.c_str(), &parse_end);
        if (parse_end == field.c_str() || *parse_end != '\0' || errno != 0) {
          return Status::InvalidArgument("bad double on line " +
                                         std::to_string(line_no));
        }
        row.SetDouble(col, v);
      } else {
        const long long v = std::strtoll(field.c_str(), &parse_end, 10);
        if (parse_end == field.c_str() || *parse_end != '\0' || errno != 0) {
          return Status::InvalidArgument("bad integer on line " +
                                         std::to_string(line_no));
        }
        row.Set(col, v);
      }
      ++col;
      field_start = i + 1;
    }
    if (col != cols) {
      return Status::InvalidArgument("expected " + std::to_string(cols) +
                                     " fields on line " +
                                     std::to_string(line_no));
    }
    table.Append(row);
    pos = end + 1;
    ++line_no;
  }
  return table;
}

}  // namespace fpgadp::rel
