#ifndef FPGADP_RELATIONAL_CPU_EXECUTOR_H_
#define FPGADP_RELATIONAL_CPU_EXECUTOR_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/relational/program.h"
#include "src/relational/table.h"

namespace fpgadp::rel {

/// Runs `program` over `input` with straightforward single-threaded C++
/// operators — the software baseline every FPGA experiment compares against.
/// Group-by output rows are sorted by group key so results are canonical.
Result<Table> ExecuteCpu(const Program& program, const Table& input);

/// Individual operators (used directly by tests and by ExecuteCpu).
Table FilterCpu(const FilterOp& op, const Table& input);
Table ProjectCpu(const ProjectOp& op, const Table& input);
Table AggregateCpu(const AggregateOp& op, const Table& input);
Table GroupByCpu(const GroupByOp& op, const Table& input);
Table TopNCpu(const TopNOp& op, const Table& input);

/// Equi-join specification: `left.columns[left_key] == right.columns[right_key]`.
struct JoinSpec {
  uint32_t left_key = 0;
  uint32_t right_key = 0;
};

/// Classic build-probe hash join (build on `left`). Output schema is left's
/// fields followed by right's fields (truncated to kMaxColumns). Left keys
/// are expected unique (PK-FK join); duplicate build keys keep the last row,
/// mirroring the single-slot-per-key FPGA probe pipeline it is compared to.
Result<Table> HashJoinCpu(const Table& left, const Table& right,
                          const JoinSpec& spec);

}  // namespace fpgadp::rel

#endif  // FPGADP_RELATIONAL_CPU_EXECUTOR_H_
