#include "src/relational/compression.h"

#include <algorithm>
#include <unordered_map>

namespace fpgadp::rel {

std::vector<uint8_t> RleEncode(const std::vector<uint8_t>& input) {
  std::vector<uint8_t> out;
  size_t i = 0;
  while (i < input.size()) {
    const uint8_t v = input[i];
    size_t run = 1;
    while (i + run < input.size() && input[i + run] == v && run < 255) ++run;
    out.push_back(static_cast<uint8_t>(run));
    out.push_back(v);
    i += run;
  }
  return out;
}

Result<std::vector<uint8_t>> RleDecode(const std::vector<uint8_t>& encoded) {
  if (encoded.size() % 2 != 0) {
    return Status::InvalidArgument("RLE stream truncated");
  }
  std::vector<uint8_t> out;
  for (size_t i = 0; i < encoded.size(); i += 2) {
    const uint8_t run = encoded[i];
    if (run == 0) return Status::InvalidArgument("RLE run of length 0");
    out.insert(out.end(), run, encoded[i + 1]);
  }
  return out;
}

DictEncoded DictEncode(const std::vector<int64_t>& column) {
  DictEncoded out;
  std::unordered_map<int64_t, uint32_t> index;
  out.codes.reserve(column.size());
  for (int64_t v : column) {
    auto [it, inserted] =
        index.emplace(v, static_cast<uint32_t>(out.dictionary.size()));
    if (inserted) out.dictionary.push_back(v);
    out.codes.push_back(it->second);
  }
  return out;
}

Result<std::vector<int64_t>> DictDecode(const DictEncoded& encoded) {
  std::vector<int64_t> out;
  out.reserve(encoded.codes.size());
  for (uint32_t code : encoded.codes) {
    if (code >= encoded.dictionary.size()) {
      return Status::InvalidArgument("dictionary code out of range");
    }
    out.push_back(encoded.dictionary[code]);
  }
  return out;
}

namespace {
constexpr size_t kWindow = 4096;
constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = 18;
constexpr int kMaxChainProbes = 32;

uint32_t Prefix3(const uint8_t* p) {
  return (uint32_t(p[0]) << 16) | (uint32_t(p[1]) << 8) | p[2];
}
}  // namespace

std::vector<uint8_t> LzCompress(const std::vector<uint8_t>& input) {
  std::vector<uint8_t> out;
  const size_t n = input.size();
  // Hash-chain match finder over 3-byte prefixes.
  std::unordered_map<uint32_t, int64_t> head;
  std::vector<int64_t> prev(n, -1);

  size_t pos = 0;
  std::vector<uint8_t> tokens;  // staged token bytes for the current flag
  uint8_t flags = 0;
  int flag_bits = 0;

  auto flush = [&]() {
    if (flag_bits == 0) return;
    out.push_back(flags);
    out.insert(out.end(), tokens.begin(), tokens.end());
    tokens.clear();
    flags = 0;
    flag_bits = 0;
  };

  auto insert_pos = [&](size_t p) {
    if (p + kMinMatch > n) return;
    const uint32_t h = Prefix3(input.data() + p);
    auto it = head.find(h);
    prev[p] = (it == head.end()) ? -1 : it->second;
    head[h] = static_cast<int64_t>(p);
  };

  while (pos < n) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (pos + kMinMatch <= n) {
      const uint32_t h = Prefix3(input.data() + pos);
      auto it = head.find(h);
      int64_t cand = (it == head.end()) ? -1 : it->second;
      int probes = 0;
      while (cand >= 0 && probes < kMaxChainProbes) {
        const size_t dist = pos - static_cast<size_t>(cand);
        if (dist >= kWindow) break;  // chain is ordered by position
        const size_t limit = std::min(kMaxMatch, n - pos);
        size_t len = 0;
        while (len < limit && input[cand + len] == input[pos + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = dist;
          if (len == kMaxMatch) break;
        }
        cand = prev[cand];
        ++probes;
      }
    }
    if (best_len >= kMinMatch) {
      // Match token: bit 0.
      tokens.push_back(static_cast<uint8_t>(best_dist & 0xFF));
      tokens.push_back(static_cast<uint8_t>(((best_dist >> 8) & 0x0F) << 4 |
                                            (best_len - kMinMatch)));
      ++flag_bits;
      for (size_t k = 0; k < best_len; ++k) insert_pos(pos + k);
      pos += best_len;
    } else {
      // Literal token: bit 1.
      flags |= uint8_t(1u << flag_bits);
      tokens.push_back(input[pos]);
      ++flag_bits;
      insert_pos(pos);
      ++pos;
    }
    if (flag_bits == 8) flush();
  }
  flush();
  return out;
}

Result<std::vector<uint8_t>> LzDecompress(const std::vector<uint8_t>& encoded) {
  std::vector<uint8_t> out;
  size_t pos = 0;
  while (pos < encoded.size()) {
    const uint8_t flags = encoded[pos++];
    for (int bit = 0; bit < 8 && pos < encoded.size(); ++bit) {
      if (flags & (1u << bit)) {
        out.push_back(encoded[pos++]);
      } else {
        if (pos + 2 > encoded.size()) {
          return Status::InvalidArgument("LZ match token truncated");
        }
        const uint8_t b0 = encoded[pos++];
        const uint8_t b1 = encoded[pos++];
        const size_t dist = (size_t(b1 >> 4) << 8) | b0;
        const size_t len = (b1 & 0x0F) + kMinMatch;
        if (dist == 0 || dist > out.size()) {
          return Status::InvalidArgument("LZ match distance out of range");
        }
        for (size_t k = 0; k < len; ++k) {
          out.push_back(out[out.size() - dist]);
        }
      }
    }
  }
  return out;
}

}  // namespace fpgadp::rel
