#include "src/relational/cpu_executor.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "src/relational/agg_state.h"

namespace fpgadp::rel {

Table FilterCpu(const FilterOp& op, const Table& input) {
  Table out(input.schema());
  for (const Row& r : input.rows()) {
    bool keep = true;
    for (const Predicate& p : op.conjuncts) {
      if (!p.Eval(r)) {
        keep = false;
        break;
      }
    }
    if (keep) out.Append(r);
  }
  return out;
}

Table ProjectCpu(const ProjectOp& op, const Table& input) {
  std::vector<Field> fields;
  for (uint32_t c : op.columns) fields.push_back(input.schema().field(c));
  Table out(Schema(std::move(fields)));
  out.Reserve(input.num_rows());
  for (const Row& r : input.rows()) {
    Row projected;
    for (size_t i = 0; i < op.columns.size(); ++i) {
      projected.Set(i, r.Get(op.columns[i]));
    }
    out.Append(projected);
  }
  return out;
}

Table AggregateCpu(const AggregateOp& op, const Table& input) {
  AggState state;
  for (const Row& r : input.rows()) state.Add(r, op);
  Program helper;
  helper.ops.push_back(op);
  Table out(helper.OutputSchema(input.schema()));
  Row result;
  state.Finish(op, result, 0);
  out.Append(result);
  return out;
}

Table GroupByCpu(const GroupByOp& op, const Table& input) {
  std::map<int64_t, AggState> groups;  // ordered => canonical output
  for (const Row& r : input.rows()) {
    groups[r.Get(op.group_column)].Add(r, op.agg);
  }
  Program helper;
  helper.ops.push_back(op);
  Table out(helper.OutputSchema(input.schema()));
  for (const auto& [key, state] : groups) {
    Row r;
    r.Set(0, key);
    state.Finish(op.agg, r, 1);
    out.Append(r);
  }
  return out;
}

Table TopNCpu(const TopNOp& op, const Table& input) {
  // Stable sort keeps arrival order on ties, matching the systolic queue.
  std::vector<size_t> order(input.num_rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto key_less = [&](size_t a, size_t b) {
    if (op.is_double) {
      const double ka = input.row(a).GetDouble(op.order_column);
      const double kb = input.row(b).GetDouble(op.order_column);
      return op.ascending ? ka < kb : ka > kb;
    }
    const int64_t ka = input.row(a).Get(op.order_column);
    const int64_t kb = input.row(b).Get(op.order_column);
    return op.ascending ? ka < kb : ka > kb;
  };
  std::stable_sort(order.begin(), order.end(), key_less);
  Table out(input.schema());
  const size_t n = std::min<size_t>(op.n, order.size());
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) out.Append(input.row(order[i]));
  return out;
}

Result<Table> ExecuteCpu(const Program& program, const Table& input) {
  // Validate the program (OutputSchema checks column ranges).
  program.OutputSchema(input.schema());
  Table current = input;
  for (const OpDesc& op : program.ops) {
    if (const auto* f = std::get_if<FilterOp>(&op)) {
      current = FilterCpu(*f, current);
    } else if (const auto* p = std::get_if<ProjectOp>(&op)) {
      current = ProjectCpu(*p, current);
    } else if (const auto* a = std::get_if<AggregateOp>(&op)) {
      current = AggregateCpu(*a, current);
    } else if (const auto* g = std::get_if<GroupByOp>(&op)) {
      current = GroupByCpu(*g, current);
    } else if (const auto* t = std::get_if<TopNOp>(&op)) {
      current = TopNCpu(*t, current);
    }
  }
  return current;
}

Result<Table> HashJoinCpu(const Table& left, const Table& right,
                          const JoinSpec& spec) {
  if (spec.left_key >= left.schema().num_columns()) {
    return Status::InvalidArgument("left join key out of range");
  }
  if (spec.right_key >= right.schema().num_columns()) {
    return Status::InvalidArgument("right join key out of range");
  }
  std::vector<Field> fields = left.schema().fields();
  for (const Field& f : right.schema().fields()) {
    if (fields.size() == kMaxColumns) break;
    fields.push_back(f);
  }
  Table out(Schema(std::move(fields)));

  std::unordered_map<int64_t, Row> build;
  build.reserve(left.num_rows());
  for (const Row& r : left.rows()) build[r.Get(spec.left_key)] = r;

  const size_t left_cols = left.schema().num_columns();
  for (const Row& probe : right.rows()) {
    auto it = build.find(probe.Get(spec.right_key));
    if (it == build.end()) continue;
    Row joined = it->second;
    size_t slot = left_cols;
    for (size_t c = 0; c < right.schema().num_columns() && slot < kMaxColumns;
         ++c, ++slot) {
      joined.Set(slot, probe.Get(c));
    }
    out.Append(joined);
  }
  return out;
}

}  // namespace fpgadp::rel
