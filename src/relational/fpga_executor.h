#ifndef FPGADP_RELATIONAL_FPGA_EXECUTOR_H_
#define FPGADP_RELATIONAL_FPGA_EXECUTOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/relational/cpu_executor.h"
#include "src/relational/program.h"
#include "src/relational/table.h"
#include "src/sim/module.h"
#include "src/sim/stream.h"

namespace fpgadp::rel {

/// A tuple beat on the datapath: one Row plus the `last` sideband an RTL
/// design carries to signal end-of-stream (what lets aggregation kernels
/// flush without knowing the input cardinality up front).
struct Beat {
  Row row;
  bool eos = false;
};

/// Options for building a simulated operator pipeline.
struct FpgaOptions {
  double clock_hz = 200e6;    ///< Kernel clock.
  uint32_t lanes = 1;         ///< Tuples per cycle on the datapath.
  uint32_t kernel_latency = 4;///< Pipeline depth of each operator stage.
  size_t stream_depth = 8;    ///< FIFO depth between stages.
  uint64_t max_cycles = 1ull << 32;  ///< Simulation watchdog.
};

/// Result of running a pipeline: the output relation plus the timing facts
/// every experiment reports.
struct FpgaRunStats {
  Table output;
  uint64_t cycles = 0;
  double seconds = 0;
  double input_tuples_per_sec = 0;
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;
};

/// A generic streaming operator stage: consumes up to `lanes` beats per
/// cycle (II=1 per lane), hands each to `fn` which appends zero or more
/// output beats, and retires results into the output stream after
/// `latency` cycles at up to `lanes` beats/cycle. Stateful operators
/// (aggregation, group-by, join probe) capture their state in `fn`.
class OpKernel : public sim::Module {
 public:
  using ProcessFn = std::function<void(const Beat&, std::vector<Beat>&)>;

  OpKernel(std::string name, sim::Stream<Beat>* in, sim::Stream<Beat>* out,
           ProcessFn fn, uint32_t lanes = 1, uint32_t latency = 4);

  void Tick(sim::Cycle cycle) override;
  bool Idle() const override { return emit_.empty(); }

  /// Empty emit queue: reactive. Otherwise the front beat retires when its
  /// pipeline latency elapses.
  sim::Cycle NextEventCycle(sim::Cycle now) const override {
    if (emit_.empty()) return sim::kNoEventCycle;
    return emit_.front().first > now ? emit_.front().first : now;
  }

  uint64_t consumed() const { return consumed_; }

 protected:
  void AttributeSkip(sim::Cycle from, sim::Cycle to) override {
    // Serial waiting branches: no input and nothing in flight is
    // starvation; beats in the latency shadow are idle (backfilled).
    if (emit_.empty()) {
      MarkStallN(sim::StallKind::kInputStarved, to - from);
    }
  }

 private:
  sim::Stream<Beat>* in_;
  sim::Stream<Beat>* out_;
  ProcessFn fn_;
  uint32_t lanes_;
  uint32_t latency_;
  std::deque<std::pair<sim::Cycle, Beat>> emit_;
  std::vector<Beat> scratch_;
  uint64_t consumed_ = 0;
};

/// Builds the ProcessFn implementing one operator descriptor. Exposed so
/// Farview can assemble the same kernels inside its memory-node pipeline.
OpKernel::ProcessFn MakeOpProcessFn(const OpDesc& op);

/// Runs `program` over `input` as a simulated dataflow pipeline: one
/// OpKernel per operator, connected by depth-`stream_depth` FIFOs, fed by a
/// source at `lanes` tuples/cycle. Returns output (identical to ExecuteCpu)
/// plus cycle-accurate timing.
Result<FpgaRunStats> ExecuteFpga(const Program& program, const Table& input,
                                 const FpgaOptions& options = {});

/// Pipelined hash join: the build side is loaded at one tuple/cycle, then
/// the probe side streams through a probe kernel at `lanes` tuples/cycle.
/// Build cycles are included in the reported total.
Result<FpgaRunStats> HashJoinFpga(const Table& left, const Table& right,
                                  const JoinSpec& spec,
                                  const FpgaOptions& options = {});

}  // namespace fpgadp::rel

#endif  // FPGADP_RELATIONAL_FPGA_EXECUTOR_H_
