#include "src/relational/cipher.h"

#include <bit>
#include <cstring>

namespace fpgadp::rel {

namespace {
void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

uint32_t Load32Le(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;  // x86 is little-endian; fine for this codebase's targets
}
}  // namespace

ChaCha20::ChaCha20(const std::array<uint8_t, 32>& key,
                   const std::array<uint8_t, 12>& nonce,
                   uint32_t initial_counter)
    : initial_counter_(initial_counter) {
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = Load32Le(key.data() + 4 * i);
  state_[12] = 0;  // counter, set per block
  for (int i = 0; i < 3; ++i) state_[13 + i] = Load32Le(nonce.data() + 4 * i);
}

std::array<uint8_t, 64> ChaCha20::KeystreamBlock(uint32_t counter) const {
  std::array<uint32_t, 16> x = state_;
  x[12] = counter;
  std::array<uint32_t, 16> w = x;
  for (int round = 0; round < 10; ++round) {
    QuarterRound(w[0], w[4], w[8], w[12]);
    QuarterRound(w[1], w[5], w[9], w[13]);
    QuarterRound(w[2], w[6], w[10], w[14]);
    QuarterRound(w[3], w[7], w[11], w[15]);
    QuarterRound(w[0], w[5], w[10], w[15]);
    QuarterRound(w[1], w[6], w[11], w[12]);
    QuarterRound(w[2], w[7], w[8], w[13]);
    QuarterRound(w[3], w[4], w[9], w[14]);
  }
  std::array<uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) {
    const uint32_t v = w[i] + x[i];
    std::memcpy(out.data() + 4 * i, &v, 4);
  }
  return out;
}

void ChaCha20::Apply(std::vector<uint8_t>& data) {
  size_t pos = 0;
  while (pos < data.size()) {
    const uint32_t block =
        initial_counter_ + static_cast<uint32_t>(stream_pos_ / 64);
    const size_t in_block = stream_pos_ % 64;
    const std::array<uint8_t, 64> ks = KeystreamBlock(block);
    const size_t chunk = std::min<size_t>(64 - in_block, data.size() - pos);
    for (size_t i = 0; i < chunk; ++i) data[pos + i] ^= ks[in_block + i];
    pos += chunk;
    stream_pos_ += chunk;
  }
}

}  // namespace fpgadp::rel
