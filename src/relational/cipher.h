#ifndef FPGADP_RELATIONAL_CIPHER_H_
#define FPGADP_RELATIONAL_CIPHER_H_

#include <array>
#include <cstdint>
#include <vector>

namespace fpgadp::rel {

/// ChaCha20 stream cipher (RFC 8439 block function), the stand-in for the
/// AES-CTR engines database accelerators ship [6]: a keystream generator
/// XORed over the data, trivially pipelined on an FPGA because consecutive
/// blocks are independent. Encryption and decryption are the same
/// operation.
class ChaCha20 {
 public:
  /// 256-bit key, 96-bit nonce.
  ChaCha20(const std::array<uint8_t, 32>& key,
           const std::array<uint8_t, 12>& nonce, uint32_t initial_counter = 0);

  /// XORs the keystream over `data` in place, continuing from the current
  /// stream position (byte-exact: chunked calls produce the same stream as
  /// one call over the concatenation).
  void Apply(std::vector<uint8_t>& data);

  /// Convenience: returns the transformed copy.
  std::vector<uint8_t> Transform(std::vector<uint8_t> data) {
    Apply(data);
    return data;
  }

  /// Raw 64-byte keystream block for `counter` (exposed for tests against
  /// the RFC 8439 vectors).
  std::array<uint8_t, 64> KeystreamBlock(uint32_t counter) const;

 private:
  std::array<uint32_t, 16> state_;
  uint32_t initial_counter_;
  uint64_t stream_pos_ = 0;  ///< Bytes of keystream consumed so far.
};

}  // namespace fpgadp::rel

#endif  // FPGADP_RELATIONAL_CIPHER_H_
