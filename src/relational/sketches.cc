#include "src/relational/sketches.h"

#include <bit>
#include <cmath>

namespace fpgadp::rel {

uint64_t Hash64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

HyperLogLog::HyperLogLog(uint32_t precision_bits)
    : precision_bits_(precision_bits),
      registers_(1ull << precision_bits, 0) {}

Result<HyperLogLog> HyperLogLog::Create(uint32_t precision_bits) {
  if (precision_bits < 4 || precision_bits > 16) {
    return Status::InvalidArgument("HLL precision must be in [4, 16]");
  }
  return HyperLogLog(precision_bits);
}

void HyperLogLog::Add(uint64_t value) {
  const uint64_t h = Hash64(value);
  const uint64_t idx = h >> (64 - precision_bits_);
  const uint64_t rest = h << precision_bits_;
  // Rank = position of leftmost 1 in the remaining bits, 1-based; all-zero
  // remainder gets the maximum rank.
  const int rank =
      rest == 0 ? int(64 - precision_bits_ + 1) : std::countl_zero(rest) + 1;
  if (registers_[idx] < rank) registers_[idx] = static_cast<uint8_t>(rank);
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  if (registers_.size() == 16) alpha = 0.673;
  else if (registers_.size() == 32) alpha = 0.697;
  else if (registers_.size() == 64) alpha = 0.709;
  else alpha = 0.7213 / (1.0 + 1.079 / m);

  double sum = 0;
  uint64_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -r);
    if (r == 0) ++zeros;
  }
  double estimate = alpha * m * m / sum;
  if (estimate <= 2.5 * m && zeros > 0) {
    // Small-range correction: linear counting.
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

Status HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.precision_bits_ != precision_bits_) {
    return Status::InvalidArgument("HLL precision mismatch");
  }
  for (size_t i = 0; i < registers_.size(); ++i) {
    if (other.registers_[i] > registers_[i]) registers_[i] = other.registers_[i];
  }
  return Status::OK();
}

CountMinSketch::CountMinSketch(uint32_t width, uint32_t depth, uint64_t seed)
    : width_(width), depth_(depth), seed_(seed),
      counters_(static_cast<size_t>(width) * depth, 0) {}

Result<CountMinSketch> CountMinSketch::Create(uint32_t width, uint32_t depth,
                                              uint64_t seed) {
  if (width == 0 || depth == 0) {
    return Status::InvalidArgument("count-min width and depth must be > 0");
  }
  return CountMinSketch(width, depth, seed);
}

uint64_t CountMinSketch::RowHash(uint32_t row, uint64_t key) const {
  return Hash64(key ^ Hash64(seed_ + row)) % width_;
}

void CountMinSketch::Add(uint64_t key, uint64_t count) {
  for (uint32_t r = 0; r < depth_; ++r) {
    counters_[static_cast<size_t>(r) * width_ + RowHash(r, key)] += count;
  }
  total_added_ += count;
}

uint64_t CountMinSketch::EstimateCount(uint64_t key) const {
  uint64_t best = ~0ull;
  for (uint32_t r = 0; r < depth_; ++r) {
    const uint64_t c =
        counters_[static_cast<size_t>(r) * width_ + RowHash(r, key)];
    if (c < best) best = c;
  }
  return best;
}

Status CountMinSketch::Merge(const CountMinSketch& other) {
  if (other.width_ != width_ || other.depth_ != depth_ ||
      other.seed_ != seed_) {
    return Status::InvalidArgument("count-min sketch shape/seed mismatch");
  }
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  total_added_ += other.total_added_;
  return Status::OK();
}

}  // namespace fpgadp::rel
