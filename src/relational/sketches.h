#ifndef FPGADP_RELATIONAL_SKETCHES_H_
#define FPGADP_RELATIONAL_SKETCHES_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"

namespace fpgadp::rel {

/// 64-bit finalizer-style hash (splitmix64 mixing), the hash the sketch
/// kernels instantiate in LUTs — cheap, stateless, single-cycle.
uint64_t Hash64(uint64_t x);

/// HyperLogLog cardinality sketch (Flajolet et al.) — the FPL'20 "HLL on
/// FPGA" example [24]: one register update per input item, trivially
/// pipelined at line rate.
class HyperLogLog {
 public:
  /// `precision_bits` in [4, 16]: 2^p registers, error ~ 1.04/sqrt(2^p).
  static Result<HyperLogLog> Create(uint32_t precision_bits);

  /// Adds one item.
  void Add(uint64_t value);

  /// Estimated distinct count, with the standard small/large range
  /// corrections.
  double Estimate() const;

  /// Merges another sketch with identical precision (register-wise max).
  Status Merge(const HyperLogLog& other);

  uint32_t precision_bits() const { return precision_bits_; }
  const std::vector<uint8_t>& registers() const { return registers_; }

 private:
  explicit HyperLogLog(uint32_t precision_bits);

  uint32_t precision_bits_;
  std::vector<uint8_t> registers_;
};

/// Count-Min sketch (Cormode & Muthukrishnan) for per-key frequency
/// estimation at line rate — the Scotch-style sketching example [20].
class CountMinSketch {
 public:
  /// `width` counters per row, `depth` independent rows.
  static Result<CountMinSketch> Create(uint32_t width, uint32_t depth,
                                       uint64_t seed = 7);

  /// Adds `count` occurrences of `key`.
  void Add(uint64_t key, uint64_t count = 1);

  /// Point query: an overestimate of the true count (never an underestimate).
  uint64_t EstimateCount(uint64_t key) const;

  /// Merges a sketch with identical dimensions and seed.
  Status Merge(const CountMinSketch& other);

  uint32_t width() const { return width_; }
  uint32_t depth() const { return depth_; }
  uint64_t total_added() const { return total_added_; }

 private:
  CountMinSketch(uint32_t width, uint32_t depth, uint64_t seed);

  uint64_t RowHash(uint32_t row, uint64_t key) const;

  uint32_t width_;
  uint32_t depth_;
  uint64_t seed_;
  std::vector<uint64_t> counters_;  // depth x width, row-major
  uint64_t total_added_ = 0;
};

}  // namespace fpgadp::rel

#endif  // FPGADP_RELATIONAL_SKETCHES_H_
