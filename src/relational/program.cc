#include "src/relational/program.h"

namespace fpgadp::rel {

namespace {
const char* AggName(AggKind k) {
  switch (k) {
    case AggKind::kSum: return "sum";
    case AggKind::kMin: return "min";
    case AggKind::kMax: return "max";
    case AggKind::kCount: return "count";
    case AggKind::kAvg: return "avg";
  }
  return "?";
}
}  // namespace

std::string Program::ToString() const {
  std::string out;
  for (const OpDesc& op : ops) {
    if (!out.empty()) out += "|";
    if (std::holds_alternative<FilterOp>(op)) {
      out += "filter";
    } else if (std::holds_alternative<ProjectOp>(op)) {
      out += "project";
    } else if (std::holds_alternative<AggregateOp>(op)) {
      out += std::string("agg(") + AggName(std::get<AggregateOp>(op).kind) + ")";
    } else if (std::holds_alternative<GroupByOp>(op)) {
      out += std::string("groupby(") + AggName(std::get<GroupByOp>(op).agg.kind) + ")";
    } else {
      out += "topn(" + std::to_string(std::get<TopNOp>(op).n) + ")";
    }
  }
  return out.empty() ? "identity" : out;
}

Schema Program::OutputSchema(const Schema& input) const {
  Schema current = input;
  for (const OpDesc& op : ops) {
    if (const auto* f = std::get_if<FilterOp>(&op)) {
      for (const Predicate& p : f->conjuncts) {
        FPGADP_CHECK(p.column < current.num_columns());
      }
      // Filter preserves schema.
    } else if (const auto* pr = std::get_if<ProjectOp>(&op)) {
      std::vector<Field> fields;
      for (uint32_t c : pr->columns) {
        FPGADP_CHECK(c < current.num_columns());
        fields.push_back(current.field(c));
      }
      current = Schema(std::move(fields));
    } else if (const auto* a = std::get_if<AggregateOp>(&op)) {
      FPGADP_CHECK(a->column < current.num_columns() ||
                   a->kind == AggKind::kCount);
      const ColumnType out_type =
          (a->kind == AggKind::kCount)
              ? ColumnType::kInt64
              : (a->kind == AggKind::kAvg
                     ? ColumnType::kDouble
                     : current.field(a->column).type);
      current = Schema({{std::string(AggName(a->kind)), out_type}});
    } else if (const auto* g = std::get_if<GroupByOp>(&op)) {
      FPGADP_CHECK(g->group_column < current.num_columns());
      FPGADP_CHECK(g->agg.column < current.num_columns() ||
                   g->agg.kind == AggKind::kCount);
      const ColumnType agg_type =
          (g->agg.kind == AggKind::kCount)
              ? ColumnType::kInt64
              : (g->agg.kind == AggKind::kAvg
                     ? ColumnType::kDouble
                     : current.field(g->agg.column).type);
      current = Schema({current.field(g->group_column),
                        {std::string(AggName(g->agg.kind)), agg_type}});
    } else if (const auto* t = std::get_if<TopNOp>(&op)) {
      FPGADP_CHECK(t->order_column < current.num_columns());
      FPGADP_CHECK(t->n > 0);
      // Top-N preserves the schema.
    }
  }
  return current;
}

}  // namespace fpgadp::rel
