#ifndef FPGADP_RELATIONAL_PROGRAM_H_
#define FPGADP_RELATIONAL_PROGRAM_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/relational/schema.h"

namespace fpgadp::rel {

/// Comparison operators for predicates.
enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// A single column-vs-constant comparison. Double columns compare against
/// the bit pattern re-interpreted as double.
struct Predicate {
  uint32_t column = 0;
  CmpOp op = CmpOp::kEq;
  int64_t value = 0;       ///< For int64 columns.
  double dvalue = 0.0;     ///< For double columns.
  bool is_double = false;

  /// Evaluates the predicate on `row`.
  bool Eval(const Row& row) const {
    if (is_double) {
      const double v = row.GetDouble(column);
      switch (op) {
        case CmpOp::kLt: return v < dvalue;
        case CmpOp::kLe: return v <= dvalue;
        case CmpOp::kGt: return v > dvalue;
        case CmpOp::kGe: return v >= dvalue;
        case CmpOp::kEq: return v == dvalue;
        case CmpOp::kNe: return v != dvalue;
      }
    } else {
      const int64_t v = row.Get(column);
      switch (op) {
        case CmpOp::kLt: return v < value;
        case CmpOp::kLe: return v <= value;
        case CmpOp::kGt: return v > value;
        case CmpOp::kGe: return v >= value;
        case CmpOp::kEq: return v == value;
        case CmpOp::kNe: return v != value;
      }
    }
    return false;
  }
};

/// Aggregation functions.
enum class AggKind { kSum, kMin, kMax, kCount, kAvg };

/// SELECT-style filter: keep rows satisfying the conjunction of predicates.
struct FilterOp {
  std::vector<Predicate> conjuncts;
};

/// Projection: keep the listed columns, in order.
struct ProjectOp {
  std::vector<uint32_t> columns;
};

/// Scalar aggregate over one column. Produces a single-row relation.
struct AggregateOp {
  AggKind kind = AggKind::kSum;
  uint32_t column = 0;
  bool is_double = false;
};

/// Group-by aggregate: group on `group_column`, aggregate `agg` per group.
struct GroupByOp {
  uint32_t group_column = 0;
  AggregateOp agg;
};

/// ORDER BY <column> LIMIT <n>: keeps the n smallest (ascending) or largest
/// (descending) rows by the order column, output sorted. Ties keep arrival
/// order (stable). On the FPGA this is the systolic K-selection queue run
/// as a relational operator.
struct TopNOp {
  uint32_t order_column = 0;
  bool is_double = false;
  bool ascending = true;
  uint32_t n = 10;
};

/// One step of an operator program.
using OpDesc =
    std::variant<FilterOp, ProjectOp, AggregateOp, GroupByOp, TopNOp>;

/// A chain of operators — both the CPU executor and the FPGA pipeline
/// builder consume this, and it doubles as Farview's offload descriptor
/// ("push this program to the memory node").
struct Program {
  std::vector<OpDesc> ops;

  /// Short textual form, e.g. "filter|project|agg(sum)".
  std::string ToString() const;

  /// Schema of the program's output given `input` schema; also validates
  /// column indices (FPGADP_CHECKs on out-of-range).
  Schema OutputSchema(const Schema& input) const;
};

}  // namespace fpgadp::rel

#endif  // FPGADP_RELATIONAL_PROGRAM_H_
