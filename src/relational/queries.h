#ifndef FPGADP_RELATIONAL_QUERIES_H_
#define FPGADP_RELATIONAL_QUERIES_H_

#include "src/relational/program.h"

namespace fpgadp::rel {

/// Canned operator programs over the synthetic table's schema
/// (id, key, cat, price:double, qty) — TPC-H-flavoured shapes used across
/// the Farview and line-rate experiments so the workloads are recognizable.

/// Q1-lite: "pricing summary" — GROUP BY cat, SUM(qty). The classic
/// full-scan aggregation query.
Program MakeQ1Lite();

/// Q6-lite: "forecasting revenue change" — a 3-predicate filter
/// (price in [lo, hi] and qty < max_qty) feeding SUM(price). The classic
/// selective scan-aggregate.
Program MakeQ6Lite(double price_lo = 100.0, double price_hi = 500.0,
                   int64_t max_qty = 24);

/// Top-10 most expensive qualifying rows: filter qty >= min_qty, then
/// ORDER BY price DESC LIMIT 10 — the Top-N pushdown shape.
Program MakeTopExpensive(int64_t min_qty = 25, uint32_t n = 10);

}  // namespace fpgadp::rel

#endif  // FPGADP_RELATIONAL_QUERIES_H_
