#include "src/relational/fpga_executor.h"

#include <algorithm>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>

#include "src/common/units.h"
#include "src/relational/agg_state.h"
#include "src/sim/engine.h"
#include "src/sim/kernels.h"

namespace fpgadp::rel {

OpKernel::OpKernel(std::string name, sim::Stream<Beat>* in,
                   sim::Stream<Beat>* out, ProcessFn fn, uint32_t lanes,
                   uint32_t latency)
    : sim::Module(std::move(name)), in_(in), out_(out), fn_(std::move(fn)),
      lanes_(lanes), latency_(latency) {
  FPGADP_CHECK(in_ != nullptr && out_ != nullptr);
  FPGADP_CHECK(lanes_ > 0);
  in_->BindConsumer(this);
  out_->BindProducer(this);
  SetParallelSafe();
  SetEventSafe();
}

void OpKernel::Tick(sim::Cycle cycle) {
  bool progressed = false;
  // Retire ready beats, burst-written per contiguous free run.
  uint32_t retired = 0;
  while (retired < lanes_ && !emit_.empty() && emit_.front().first <= cycle) {
    std::span<Beat> dst = out_->WritableSpan();
    if (dst.empty()) break;  // out FIFO full
    size_t n = 0;
    while (n < dst.size() && retired + n < lanes_ && !emit_.empty() &&
           emit_.front().first <= cycle) {
      dst[n++] = std::move(emit_.front().second);
      emit_.pop_front();
    }
    out_->CommitWrite(n);
    retired += static_cast<uint32_t>(n);
    progressed = progressed || n > 0;
  }
  // Issue new beats, burst-read from the in FIFO. The emit queue is only
  // gated for ordinary traffic; flush bursts (group-by on EOS) may exceed
  // the bound and simply take multiple cycles to drain, which is the honest
  // hardware behaviour. The gate is re-checked per beat because one input
  // beat can emit many (or zero) output beats.
  const size_t gate = static_cast<size_t>(latency_ + 4) * lanes_;
  uint32_t issued = 0;
  while (issued < lanes_ && emit_.size() < gate) {
    std::span<const Beat> src = in_->ReadableSpan();
    if (src.empty()) break;  // starved
    const size_t limit = std::min<size_t>(lanes_ - issued, src.size());
    size_t taken = 0;
    while (taken < limit && emit_.size() < gate) {
      scratch_.clear();
      fn_(src[taken], scratch_);
      ++taken;
      for (Beat& out_beat : scratch_) {
        emit_.emplace_back(cycle + latency_, out_beat);
      }
    }
    in_->ConsumeRead(taken);
    consumed_ += taken;
    issued += static_cast<uint32_t>(taken);
    progressed = progressed || taken > 0;
    if (taken < limit) break;  // emit gate closed mid-burst
  }
  if (progressed) {
    MarkBusy();
  } else if (!emit_.empty() && emit_.front().first <= cycle &&
             !out_->CanWrite()) {
    MarkStall(sim::StallKind::kOutputBlocked);
  } else if (!in_->CanRead() && emit_.empty()) {
    MarkStall(sim::StallKind::kInputStarved);
  } else {
    MarkStall(sim::StallKind::kIdle);  // beats still in the latency shadow
  }
}

OpKernel::ProcessFn MakeOpProcessFn(const OpDesc& op) {
  if (const auto* f = std::get_if<FilterOp>(&op)) {
    FilterOp filter = *f;
    return [filter](const Beat& b, std::vector<Beat>& out) {
      if (b.eos) {
        out.push_back(b);
        return;
      }
      for (const Predicate& p : filter.conjuncts) {
        if (!p.Eval(b.row)) return;
      }
      out.push_back(b);
    };
  }
  if (const auto* p = std::get_if<ProjectOp>(&op)) {
    ProjectOp project = *p;
    return [project](const Beat& b, std::vector<Beat>& out) {
      if (b.eos) {
        out.push_back(b);
        return;
      }
      Beat o;
      for (size_t i = 0; i < project.columns.size(); ++i) {
        o.row.Set(i, b.row.Get(project.columns[i]));
      }
      out.push_back(o);
    };
  }
  if (const auto* a = std::get_if<AggregateOp>(&op)) {
    AggregateOp agg = *a;
    auto state = std::make_shared<AggState>();
    return [agg, state](const Beat& b, std::vector<Beat>& out) {
      if (!b.eos) {
        state->Add(b.row, agg);
        return;
      }
      Beat result;
      state->Finish(agg, result.row, 0);
      out.push_back(result);
      out.push_back(Beat{{}, /*eos=*/true});
    };
  }
  if (const auto* g = std::get_if<GroupByOp>(&op)) {
    auto groups = std::make_shared<std::map<int64_t, AggState>>();
    GroupByOp groupby = *g;
    return [groupby, groups](const Beat& b, std::vector<Beat>& out) {
      if (!b.eos) {
        (*groups)[b.row.Get(groupby.group_column)].Add(b.row, groupby.agg);
        return;
      }
      for (const auto& [key, state] : *groups) {
        Beat r;
        r.row.Set(0, key);
        state.Finish(groupby.agg, r.row, 1);
        out.push_back(r);
      }
      out.push_back(Beat{{}, /*eos=*/true});
    };
  }
  // Top-N: the systolic K-selection queue as a relational operator. One
  // insertion per beat (II=1); the sorted cell line flushes on EOS.
  const auto& t = std::get<TopNOp>(op);
  TopNOp topn = t;
  auto cells = std::make_shared<std::vector<Row>>();
  cells->reserve(topn.n);
  return [topn, cells](const Beat& b, std::vector<Beat>& out) {
    auto key_less = [&topn](const Row& a, const Row& b2) {
      if (topn.is_double) {
        const double ka = a.GetDouble(topn.order_column);
        const double kb = b2.GetDouble(topn.order_column);
        return topn.ascending ? ka < kb : ka > kb;
      }
      const int64_t ka = a.Get(topn.order_column);
      const int64_t kb = b2.Get(topn.order_column);
      return topn.ascending ? ka < kb : ka > kb;
    };
    if (!b.eos) {
      std::vector<Row>& c = *cells;
      if (c.size() < topn.n) {
        c.push_back(b.row);
      } else if (key_less(b.row, c.back())) {
        c.back() = b.row;
      } else {
        return;  // rejected at the tail cell
      }
      // Bubble into place; equal keys never swap => stable.
      for (size_t i = c.size() - 1; i > 0; --i) {
        if (!key_less(c[i], c[i - 1])) break;
        std::swap(c[i], c[i - 1]);
      }
      return;
    }
    for (const Row& r : *cells) out.push_back(Beat{r, false});
    out.push_back(Beat{{}, /*eos=*/true});
  };
}

namespace {

/// Converts a table into the beat sequence fed to a pipeline (rows + EOS).
std::vector<Beat> TableToBeats(const Table& t) {
  std::vector<Beat> beats;
  beats.reserve(t.num_rows() + 1);
  for (const Row& r : t.rows()) beats.push_back(Beat{r, false});
  beats.push_back(Beat{{}, true});
  return beats;
}

/// Runs source -> kernels -> sink and assembles stats.
Result<FpgaRunStats> RunPipeline(
    const Table& input, const Schema& out_schema,
    const std::vector<OpKernel::ProcessFn>& fns, const FpgaOptions& options,
    uint64_t extra_cycles) {
  const size_t n_stages = fns.size();
  std::vector<std::unique_ptr<sim::Stream<Beat>>> streams;
  for (size_t i = 0; i <= n_stages; ++i) {
    streams.push_back(std::make_unique<sim::Stream<Beat>>(
        "s" + std::to_string(i), options.stream_depth));
  }
  sim::VectorSource<Beat> source("source", TableToBeats(input),
                                 streams.front().get(), options.lanes);
  std::vector<std::unique_ptr<OpKernel>> kernels;
  for (size_t i = 0; i < n_stages; ++i) {
    kernels.push_back(std::make_unique<OpKernel>(
        "op" + std::to_string(i), streams[i].get(), streams[i + 1].get(),
        fns[i], options.lanes, options.kernel_latency));
  }
  sim::VectorSink<Beat> sink("sink", streams.back().get(), options.lanes);

  sim::Engine engine(options.clock_hz);
  engine.AddModule(&source);
  for (auto& k : kernels) engine.AddModule(k.get());
  engine.AddModule(&sink);
  for (auto& s : streams) engine.AddStream(s.get());

  auto run = engine.Run(options.max_cycles);
  if (!run.ok()) return run.status();

  FpgaRunStats stats;
  stats.output = Table(out_schema);
  for (const Beat& b : sink.collected()) {
    if (!b.eos) stats.output.Append(b.row);
  }
  stats.cycles = run.value() + extra_cycles;
  stats.seconds = CyclesToSeconds(stats.cycles, options.clock_hz);
  stats.input_tuples_per_sec =
      stats.seconds > 0 ? double(input.num_rows()) / stats.seconds : 0;
  stats.input_bytes = input.total_bytes();
  stats.output_bytes = stats.output.total_bytes();
  return stats;
}

}  // namespace

Result<FpgaRunStats> ExecuteFpga(const Program& program, const Table& input,
                                 const FpgaOptions& options) {
  if (options.lanes == 0) {
    return Status::InvalidArgument("lanes must be >= 1");
  }
  const Schema out_schema = program.OutputSchema(input.schema());
  std::vector<OpKernel::ProcessFn> fns;
  for (const OpDesc& op : program.ops) fns.push_back(MakeOpProcessFn(op));
  if (fns.empty()) {
    // Identity program: a single pass-through stage keeps the plumbing
    // uniform.
    fns.push_back([](const Beat& b, std::vector<Beat>& out) {
      out.push_back(b);
    });
  }
  return RunPipeline(input, out_schema, fns, options, /*extra_cycles=*/0);
}

Result<FpgaRunStats> HashJoinFpga(const Table& left, const Table& right,
                                  const JoinSpec& spec,
                                  const FpgaOptions& options) {
  if (spec.left_key >= left.schema().num_columns()) {
    return Status::InvalidArgument("left join key out of range");
  }
  if (spec.right_key >= right.schema().num_columns()) {
    return Status::InvalidArgument("right join key out of range");
  }
  // Build phase: the BRAM hash table fills at one tuple per cycle.
  auto build = std::make_shared<std::unordered_map<int64_t, Row>>();
  build->reserve(left.num_rows());
  for (const Row& r : left.rows()) (*build)[r.Get(spec.left_key)] = r;
  const uint64_t build_cycles = left.num_rows();

  std::vector<Field> fields = left.schema().fields();
  for (const Field& f : right.schema().fields()) {
    if (fields.size() == kMaxColumns) break;
    fields.push_back(f);
  }
  const Schema out_schema{std::vector<Field>(fields)};
  const size_t left_cols = left.schema().num_columns();
  const size_t right_cols = right.schema().num_columns();
  const JoinSpec s = spec;

  OpKernel::ProcessFn probe = [build, s, left_cols, right_cols](
                                  const Beat& b, std::vector<Beat>& out) {
    if (b.eos) {
      out.push_back(b);
      return;
    }
    auto it = build->find(b.row.Get(s.right_key));
    if (it == build->end()) return;
    Beat joined;
    joined.row = it->second;
    size_t slot = left_cols;
    for (size_t c = 0; c < right_cols && slot < kMaxColumns; ++c, ++slot) {
      joined.row.Set(slot, b.row.Get(c));
    }
    out.push_back(joined);
  };

  return RunPipeline(right, out_schema, {probe}, options, build_cycles);
}

}  // namespace fpgadp::rel
