#include "src/relational/queries.h"

namespace fpgadp::rel {

Program MakeQ1Lite() {
  Program prog;
  GroupByOp g;
  g.group_column = 2;  // cat
  g.agg = AggregateOp{AggKind::kSum, 4, false};  // sum(qty)
  prog.ops.push_back(g);
  return prog;
}

Program MakeQ6Lite(double price_lo, double price_hi, int64_t max_qty) {
  Program prog;
  FilterOp f;
  Predicate lo;
  lo.column = 3;
  lo.op = CmpOp::kGe;
  lo.dvalue = price_lo;
  lo.is_double = true;
  Predicate hi;
  hi.column = 3;
  hi.op = CmpOp::kLt;
  hi.dvalue = price_hi;
  hi.is_double = true;
  f.conjuncts.push_back(lo);
  f.conjuncts.push_back(hi);
  f.conjuncts.push_back(Predicate{4, CmpOp::kLt, max_qty});
  prog.ops.push_back(f);
  prog.ops.push_back(AggregateOp{AggKind::kSum, 3, true});  // sum(price)
  return prog;
}

Program MakeTopExpensive(int64_t min_qty, uint32_t n) {
  Program prog;
  FilterOp f;
  f.conjuncts.push_back(Predicate{4, CmpOp::kGe, min_qty});
  prog.ops.push_back(f);
  TopNOp top;
  top.order_column = 3;
  top.is_double = true;
  top.ascending = false;
  top.n = n;
  prog.ops.push_back(top);
  return prog;
}

}  // namespace fpgadp::rel
