#include "src/relational/table.h"

#include <cstring>

namespace fpgadp::rel {

Table MakeSyntheticTable(const SyntheticTableSpec& spec) {
  Schema schema({{"id", ColumnType::kInt64},
                 {"key", ColumnType::kInt64},
                 {"cat", ColumnType::kInt64},
                 {"price", ColumnType::kDouble},
                 {"qty", ColumnType::kInt64}});
  Table t(schema);
  t.Reserve(spec.num_rows);
  Rng rng(spec.seed);
  ZipfGenerator zipf(spec.num_categories, spec.zipf_theta, spec.seed ^ 0x5bd1);
  for (uint64_t i = 0; i < spec.num_rows; ++i) {
    Row r;
    r.Set(0, static_cast<int64_t>(i));
    r.Set(1, static_cast<int64_t>(rng.NextBounded(spec.key_cardinality)));
    r.Set(2, static_cast<int64_t>(zipf.Next()));
    r.SetDouble(3, 1.0 + rng.NextDouble() * 999.0);
    r.Set(4, rng.NextInt(1, 50));
    t.Append(r);
  }
  return t;
}

std::vector<uint8_t> SerializeRows(const Table& table) {
  const size_t cols = table.schema().num_columns();
  std::vector<uint8_t> out(table.num_rows() * cols * 8);
  size_t pos = 0;
  for (const Row& r : table.rows()) {
    for (size_t c = 0; c < cols; ++c) {
      const int64_t v = r.Get(c);
      std::memcpy(out.data() + pos, &v, 8);
      pos += 8;
    }
  }
  return out;
}

Result<Table> DeserializeRows(const Schema& schema,
                              const std::vector<uint8_t>& bytes) {
  const size_t row_bytes = schema.row_bytes();
  if (row_bytes == 0 || bytes.size() % row_bytes != 0) {
    return Status::InvalidArgument("byte stream is not a whole row count");
  }
  Table t(schema);
  t.Reserve(bytes.size() / row_bytes);
  const size_t cols = schema.num_columns();
  for (size_t pos = 0; pos < bytes.size(); pos += row_bytes) {
    Row r;
    for (size_t c = 0; c < cols; ++c) {
      int64_t v;
      std::memcpy(&v, bytes.data() + pos + c * 8, 8);
      r.Set(c, v);
    }
    t.Append(r);
  }
  return t;
}

}  // namespace fpgadp::rel
