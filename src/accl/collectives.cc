#include "src/accl/collectives.h"

#include <algorithm>
#include <deque>
#include <memory>

#include "src/common/check.h"
#include "src/common/units.h"
#include "src/net/rdma.h"
#include "src/sim/engine.h"

namespace fpgadp::accl {

namespace {

/// Executes one rank's ordered send/recv schedule against its endpoint.
/// Sends post as soon as the program counter reaches them (the NIC
/// serializes); receives block the program until a message with matching
/// (peer, tag) arrives.
class RankProgram : public sim::Module {
 public:
  struct S {
    bool is_send;
    uint32_t peer;
    uint64_t bytes;
    uint64_t tag;
  };

  RankProgram(std::string name, net::RdmaEndpoint* ep, std::vector<S> steps)
      : sim::Module(std::move(name)), ep_(ep), steps_(std::move(steps)) {}

  void Tick(sim::Cycle) override {
    bool progressed = false;
    net::Packet p;
    while (ep_->PollRecv(&p)) {
      inbox_.push_back(p);
      progressed = true;
    }
    while (pc_ < steps_.size()) {
      const S& s = steps_[pc_];
      if (s.is_send) {
        ep_->PostSend(s.peer, s.bytes, s.tag);
        ++pc_;
        progressed = true;
        continue;
      }
      // Match a buffered receive on (peer, tag).
      bool matched = false;
      for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
        if (it->src == s.peer && it->tag == s.tag) {
          inbox_.erase(it);
          matched = true;
          break;
        }
      }
      if (!matched) break;
      ++pc_;
      progressed = true;
    }
    if (progressed) MarkBusy();
  }

  bool Idle() const override { return pc_ == steps_.size(); }
  bool Done() const { return pc_ == steps_.size(); }

 private:
  net::RdmaEndpoint* ep_;
  std::vector<S> steps_;
  size_t pc_ = 0;
  std::deque<net::Packet> inbox_;
};

/// Executes a rank's schedule over a TCP session per peer. TCP carries
/// byte streams, not messages; per-peer FIFO ordering of the schedule
/// makes byte counting equivalent to tag matching (zero-byte barrier
/// messages are promoted to one byte so they exist on the wire).
class TcpRankProgram : public sim::Module {
 public:
  struct S {
    bool is_send;
    uint32_t peer;
    uint64_t bytes;
  };

  TcpRankProgram(std::string name, net::TcpStack* stack, std::vector<S> steps)
      : sim::Module(std::move(name)), stack_(stack), steps_(std::move(steps)) {}

  void Tick(sim::Cycle) override {
    bool progressed = false;
    while (pc_ < steps_.size()) {
      const S& s = steps_[pc_];
      const uint64_t bytes = std::max<uint64_t>(s.bytes, 1);
      if (s.is_send) {
        stack_->Send(s.peer, bytes);
        ++pc_;
        progressed = true;
        continue;
      }
      if (recv_remaining_ == 0) recv_remaining_ = bytes;
      recv_remaining_ -= stack_->Read(s.peer, recv_remaining_);
      if (recv_remaining_ > 0) break;
      ++pc_;
      progressed = true;
    }
    if (progressed) MarkBusy();
  }

  bool Idle() const override { return pc_ == steps_.size(); }
  bool Done() const { return pc_ == steps_.size(); }

 private:
  net::TcpStack* stack_;
  std::vector<S> steps_;
  size_t pc_ = 0;
  uint64_t recv_remaining_ = 0;
};

}  // namespace

Communicator::Communicator(uint32_t world_size, net::Fabric::Config fabric,
                           double clock_hz, Transport transport)
    : world_size_(world_size), fabric_config_(fabric), clock_hz_(clock_hz),
      transport_(transport) {
  FPGADP_CHECK(world_size_ > 0);
  fabric_config_.clock_hz = clock_hz_;
}

Result<CollectiveStats> Communicator::RunSchedule(
    const std::vector<std::vector<Step>>& schedule, uint64_t payload_bytes) {
  last_outcome_ = PartialOutcome{};
  Status last_error;
  for (uint32_t attempt = 1; attempt <= max_attempts_; ++attempt) {
    ++last_outcome_.attempts;
    Result<CollectiveStats> r = RunScheduleOnce(schedule, payload_bytes);
    if (r.ok()) {
      last_outcome_.status = Status::OK();
      CollectiveStats stats = std::move(r).value();
      stats.attempts = attempt;
      return stats;
    }
    last_error = r.status();
  }
  last_outcome_.status = last_error;
  return last_error;
}

Result<CollectiveStats> Communicator::RunScheduleOnce(
    const std::vector<std::vector<Step>>& schedule, uint64_t payload_bytes) {
  FPGADP_CHECK(schedule.size() == world_size_);
  net::Fabric fabric("fabric", world_size_, fabric_config_);
  fabric.set_fault_injector(fault_injector_);
  std::vector<std::unique_ptr<net::RdmaEndpoint>> eps;
  std::vector<std::unique_ptr<RankProgram>> programs;
  std::vector<std::unique_ptr<net::TcpStack>> stacks;
  std::vector<std::unique_ptr<TcpRankProgram>> tcp_programs;
  sim::Engine engine(clock_hz_);
  fabric.RegisterWith(engine);
  for (uint32_t r = 0; r < world_size_; ++r) {
    if (transport_ == Transport::kRdma) {
      eps.push_back(std::make_unique<net::RdmaEndpoint>(
          "ep" + std::to_string(r), r, &fabric, rdma_reliability_));
      std::vector<RankProgram::S> steps;
      steps.reserve(schedule[r].size());
      for (const Step& s : schedule[r]) {
        steps.push_back({s.is_send, s.peer, s.bytes, s.tag});
      }
      programs.push_back(std::make_unique<RankProgram>(
          "rank" + std::to_string(r), eps.back().get(), std::move(steps)));
      engine.AddModule(eps.back().get());
      engine.AddModule(programs.back().get());
    } else {
      stacks.push_back(std::make_unique<net::TcpStack>(
          "tcp" + std::to_string(r), r, &fabric, tcp_config_,
          tcp_reliability_));
      std::vector<TcpRankProgram::S> steps;
      steps.reserve(schedule[r].size());
      for (const Step& s : schedule[r]) {
        steps.push_back({s.is_send, s.peer, s.bytes});
      }
      tcp_programs.push_back(std::make_unique<TcpRankProgram>(
          "rank" + std::to_string(r), stacks.back().get(), std::move(steps)));
      engine.AddModule(stacks.back().get());
      engine.AddModule(tcp_programs.back().get());
    }
  }

  uint64_t cycles = 0;
  auto all_done = [&] {
    for (const auto& p : programs) {
      if (!p->Done()) return false;
    }
    for (const auto& p : tcp_programs) {
      if (!p->Done()) return false;
    }
    return true;
  };
  // A transport that exhausted its retry cap can never finish its
  // schedule; stop stepping as soon as one gives up.
  auto transport_failure = [&]() -> Status {
    for (const auto& ep : eps) {
      if (ep->failed()) return ep->status();
    }
    for (const auto& st : stacks) {
      if (st->failed()) return st->status();
    }
    return Status::OK();
  };
  Status failure;
  while (!all_done() && cycles < max_cycles_) {
    engine.Step();
    ++cycles;
    failure = transport_failure();
    if (!failure.ok()) break;
  }
  // Record per-rank completion for graceful degradation before failing.
  last_outcome_.rank_done.assign(world_size_, false);
  last_outcome_.ranks_completed = 0;
  for (uint32_t r = 0; r < world_size_; ++r) {
    const bool done = transport_ == Transport::kRdma
                          ? programs[r]->Done()
                          : tcp_programs[r]->Done();
    last_outcome_.rank_done[r] = done;
    if (done) ++last_outcome_.ranks_completed;
  }
  if (!failure.ok()) return failure;
  if (!all_done()) return Status::Timeout("collective did not complete");
  // Drain in-flight completions so the fabric's byte counter is final.
  while (!engine.QuiescedNow() && cycles < max_cycles_) {
    engine.Step();
    ++cycles;
    failure = transport_failure();
    if (!failure.ok()) return failure;
  }

  CollectiveStats stats;
  stats.cycles = cycles;
  stats.seconds = CyclesToSeconds(cycles, clock_hz_);
  stats.wire_bytes = fabric.payload_bytes_delivered();
  stats.bus_bw =
      stats.seconds > 0 ? double(payload_bytes) / stats.seconds : 0;
  return stats;
}

std::vector<std::vector<Communicator::Step>> Communicator::TreeSchedule(
    uint32_t root, uint64_t bytes, bool down) const {
  const uint32_t p = world_size_;
  std::vector<std::vector<Step>> schedule(p);
  // Relative ranks: rel = (rank - root) mod p; rel 0 is the root.
  auto abs_rank = [&](uint32_t rel) { return (rel + root) % p; };
  // Binomial tree: in round r (down) rel < 2^r sends to rel + 2^r.
  uint32_t rounds = 0;
  while ((1u << rounds) < p) ++rounds;
  if (down) {
    for (uint32_t r = 0; r < rounds; ++r) {
      const uint32_t span = 1u << r;
      for (uint32_t rel = 0; rel < span; ++rel) {
        const uint32_t child = rel + span;
        if (child >= p) continue;
        schedule[abs_rank(rel)].push_back(
            {true, abs_rank(child), bytes, /*tag=*/r});
        schedule[abs_rank(child)].push_back(
            {false, abs_rank(rel), bytes, /*tag=*/r});
      }
    }
  } else {
    // Reduce: mirror image, leaves send first.
    for (uint32_t r = rounds; r-- > 0;) {
      const uint32_t span = 1u << r;
      for (uint32_t rel = 0; rel < span; ++rel) {
        const uint32_t child = rel + span;
        if (child >= p) continue;
        schedule[abs_rank(child)].push_back(
            {true, abs_rank(rel), bytes, /*tag=*/r});
        schedule[abs_rank(rel)].push_back(
            {false, abs_rank(child), bytes, /*tag=*/r});
      }
    }
  }
  return schedule;
}

Result<CollectiveStats> Communicator::Broadcast(
    uint32_t root, std::vector<std::vector<float>>& buffers, Algo algo) {
  if (root >= world_size_ || buffers.size() != world_size_) {
    return Status::InvalidArgument("bad root or buffer count");
  }
  const uint64_t bytes = buffers[root].size() * sizeof(float);
  std::vector<std::vector<Step>> schedule(world_size_);
  if (algo == Algo::kLinear) {
    for (uint32_t r = 0; r < world_size_; ++r) {
      if (r == root) continue;
      schedule[root].push_back({true, r, bytes, 0});
      schedule[r].push_back({false, root, bytes, 0});
    }
  } else if (algo == Algo::kTree) {
    schedule = TreeSchedule(root, bytes, /*down=*/true);
  } else {
    return Status::InvalidArgument("broadcast supports linear or tree");
  }
  // Functional semantics.
  for (uint32_t r = 0; r < world_size_; ++r) {
    if (r != root) buffers[r] = buffers[root];
  }
  return RunSchedule(schedule, bytes);
}

Result<CollectiveStats> Communicator::Scatter(
    uint32_t root, const std::vector<float>& input,
    std::vector<std::vector<float>>& out) {
  if (root >= world_size_ || input.size() % world_size_ != 0) {
    return Status::InvalidArgument("input not divisible by world size");
  }
  const size_t chunk = input.size() / world_size_;
  const uint64_t bytes = chunk * sizeof(float);
  out.assign(world_size_, {});
  std::vector<std::vector<Step>> schedule(world_size_);
  for (uint32_t r = 0; r < world_size_; ++r) {
    out[r].assign(input.begin() + r * chunk, input.begin() + (r + 1) * chunk);
    if (r == root) continue;
    schedule[root].push_back({true, r, bytes, 0});
    schedule[r].push_back({false, root, bytes, 0});
  }
  return RunSchedule(schedule, bytes * world_size_);
}

Result<CollectiveStats> Communicator::Gather(
    uint32_t root, const std::vector<std::vector<float>>& buffers,
    std::vector<float>* out) {
  if (root >= world_size_ || buffers.size() != world_size_ || out == nullptr) {
    return Status::InvalidArgument("bad gather arguments");
  }
  const uint64_t bytes = buffers[0].size() * sizeof(float);
  out->clear();
  std::vector<std::vector<Step>> schedule(world_size_);
  for (uint32_t r = 0; r < world_size_; ++r) {
    if (buffers[r].size() != buffers[0].size()) {
      return Status::InvalidArgument("gather buffers must be equal-sized");
    }
    out->insert(out->end(), buffers[r].begin(), buffers[r].end());
    if (r == root) continue;
    schedule[r].push_back({true, root, bytes, 0});
    schedule[root].push_back({false, r, bytes, 0});
  }
  return RunSchedule(schedule, bytes * world_size_);
}

Result<CollectiveStats> Communicator::Reduce(
    uint32_t root, std::vector<std::vector<float>>& buffers, Algo algo) {
  if (root >= world_size_ || buffers.size() != world_size_) {
    return Status::InvalidArgument("bad root or buffer count");
  }
  const uint64_t bytes = buffers[root].size() * sizeof(float);
  std::vector<std::vector<Step>> schedule(world_size_);
  if (algo == Algo::kLinear) {
    for (uint32_t r = 0; r < world_size_; ++r) {
      if (r == root) continue;
      schedule[r].push_back({true, root, bytes, 0});
      schedule[root].push_back({false, r, bytes, 0});
    }
  } else if (algo == Algo::kTree) {
    schedule = TreeSchedule(root, bytes, /*down=*/false);
  } else {
    return Status::InvalidArgument("reduce supports linear or tree");
  }
  // Functional sum at root.
  std::vector<float> sum = buffers[0];
  for (uint32_t r = 1; r < world_size_; ++r) {
    if (buffers[r].size() != sum.size()) {
      return Status::InvalidArgument("reduce buffers must be equal-sized");
    }
    for (size_t i = 0; i < sum.size(); ++i) sum[i] += buffers[r][i];
  }
  buffers[root] = std::move(sum);
  return RunSchedule(schedule, bytes);
}

Result<CollectiveStats> Communicator::AllReduce(
    std::vector<std::vector<float>>& buffers, Algo algo) {
  if (buffers.size() != world_size_) {
    return Status::InvalidArgument("need one buffer per rank");
  }
  const size_t n = buffers[0].size();
  for (const auto& b : buffers) {
    if (b.size() != n) {
      return Status::InvalidArgument("all-reduce buffers must be equal-sized");
    }
  }
  const uint64_t bytes = n * sizeof(float);
  const uint32_t p = world_size_;

  std::vector<std::vector<Step>> schedule(p);
  if (algo == Algo::kRing && p > 1) {
    // Ring: buffer in p chunks; 2(p-1) steps of chunk-sized messages.
    const uint64_t chunk_bytes = (bytes + p - 1) / p;
    for (uint32_t r = 0; r < p; ++r) {
      const uint32_t next = (r + 1) % p;
      const uint32_t prev = (r + p - 1) % p;
      for (uint32_t s = 0; s < 2 * (p - 1); ++s) {
        // Each step: send current chunk to next, then wait for prev's.
        schedule[r].push_back({true, next, chunk_bytes, s});
        schedule[r].push_back({false, prev, chunk_bytes, s});
      }
    }
  } else if (algo == Algo::kTree || p == 1) {
    // Reduce to rank 0, then broadcast.
    auto up = TreeSchedule(0, bytes, /*down=*/false);
    auto down = TreeSchedule(0, bytes, /*down=*/true);
    for (uint32_t r = 0; r < p; ++r) {
      schedule[r] = up[r];
      for (Step s : down[r]) {
        s.tag += 1000;  // disambiguate the phases
        schedule[r].push_back(s);
      }
    }
  } else {
    return Status::InvalidArgument("all-reduce supports ring or tree");
  }

  // Functional sum everywhere.
  std::vector<float> sum = buffers[0];
  for (uint32_t r = 1; r < p; ++r) {
    for (size_t i = 0; i < n; ++i) sum[i] += buffers[r][i];
  }
  for (auto& b : buffers) b = sum;
  return RunSchedule(schedule, bytes);
}

Result<CollectiveStats> Communicator::AllGather(
    const std::vector<std::vector<float>>& buffers,
    std::vector<std::vector<float>>* out) {
  if (buffers.size() != world_size_ || out == nullptr) {
    return Status::InvalidArgument("need one buffer per rank");
  }
  const size_t chunk = buffers[0].size();
  for (const auto& b : buffers) {
    if (b.size() != chunk) {
      return Status::InvalidArgument("all-gather chunks must be equal-sized");
    }
  }
  const uint32_t p = world_size_;
  const uint64_t chunk_bytes = chunk * sizeof(float);
  // Ring: in step s, rank r forwards the chunk it received in step s-1
  // (originating at rank (r - s) mod p) to its successor.
  std::vector<std::vector<Step>> schedule(p);
  if (p > 1) {
    for (uint32_t r = 0; r < p; ++r) {
      const uint32_t next = (r + 1) % p;
      const uint32_t prev = (r + p - 1) % p;
      for (uint32_t s = 0; s + 1 < p; ++s) {
        schedule[r].push_back({true, next, chunk_bytes, s});
        schedule[r].push_back({false, prev, chunk_bytes, s});
      }
    }
  }
  // Functional concatenation.
  std::vector<float> all;
  for (const auto& b : buffers) all.insert(all.end(), b.begin(), b.end());
  out->assign(p, all);
  return RunSchedule(schedule, chunk_bytes * p);
}

Result<CollectiveStats> Communicator::ReduceScatter(
    const std::vector<std::vector<float>>& buffers,
    std::vector<std::vector<float>>* out) {
  if (buffers.size() != world_size_ || out == nullptr) {
    return Status::InvalidArgument("need one buffer per rank");
  }
  const size_t n = buffers[0].size();
  if (n % world_size_ != 0) {
    return Status::InvalidArgument("buffer not divisible by world size");
  }
  for (const auto& b : buffers) {
    if (b.size() != n) {
      return Status::InvalidArgument("reduce-scatter buffers must match");
    }
  }
  const uint32_t p = world_size_;
  const size_t chunk = n / p;
  const uint64_t chunk_bytes = chunk * sizeof(float);
  // Ring: the reduce-scatter half of ring all-reduce (p-1 steps).
  std::vector<std::vector<Step>> schedule(p);
  if (p > 1) {
    for (uint32_t r = 0; r < p; ++r) {
      const uint32_t next = (r + 1) % p;
      const uint32_t prev = (r + p - 1) % p;
      for (uint32_t s = 0; s + 1 < p; ++s) {
        schedule[r].push_back({true, next, chunk_bytes, s});
        schedule[r].push_back({false, prev, chunk_bytes, s});
      }
    }
  }
  // Functional: rank r gets the summed chunk r.
  out->assign(p, {});
  for (uint32_t r = 0; r < p; ++r) {
    std::vector<float> sum(buffers[0].begin() + r * chunk,
                           buffers[0].begin() + (r + 1) * chunk);
    for (uint32_t o = 1; o < p; ++o) {
      for (size_t i = 0; i < chunk; ++i) sum[i] += buffers[o][r * chunk + i];
    }
    (*out)[r] = std::move(sum);
  }
  return RunSchedule(schedule, chunk_bytes * p);
}

Result<CollectiveStats> Communicator::BroadcastSegmented(
    uint32_t root, std::vector<std::vector<float>>& buffers,
    uint64_t segment_bytes) {
  if (root >= world_size_ || buffers.size() != world_size_) {
    return Status::InvalidArgument("bad root or buffer count");
  }
  if (segment_bytes == 0) {
    return Status::InvalidArgument("segment_bytes must be > 0");
  }
  const uint64_t total = buffers[root].size() * sizeof(float);
  const uint64_t segments =
      total == 0 ? 1 : (total + segment_bytes - 1) / segment_bytes;
  const uint32_t p = world_size_;
  // Chain in relative-rank space: root -> root+1 -> ... -> root+p-1.
  auto abs_rank = [&](uint32_t rel) { return (rel + root) % p; };
  std::vector<std::vector<Step>> schedule(p);
  // Per rank, per segment: receive from the predecessor (non-root), then
  // forward to the successor (non-tail). Segment loops outermost so every
  // rank pipelines: it forwards segment i while segment i+1 is inbound.
  for (uint64_t seg = 0; seg < segments; ++seg) {
    const uint64_t bytes =
        std::min<uint64_t>(segment_bytes, total - seg * segment_bytes);
    for (uint32_t rel = 0; rel < p; ++rel) {
      if (rel > 0) {
        schedule[abs_rank(rel)].push_back(
            {false, abs_rank(rel - 1), bytes, seg});
      }
      if (rel + 1 < p) {
        schedule[abs_rank(rel)].push_back(
            {true, abs_rank(rel + 1), bytes, seg});
      }
    }
  }
  for (uint32_t r = 0; r < p; ++r) {
    if (r != root) buffers[r] = buffers[root];
  }
  return RunSchedule(schedule, total);
}

Result<CollectiveStats> Communicator::Barrier() {
  auto up = TreeSchedule(0, 0, /*down=*/false);
  auto down = TreeSchedule(0, 0, /*down=*/true);
  std::vector<std::vector<Step>> schedule(world_size_);
  for (uint32_t r = 0; r < world_size_; ++r) {
    schedule[r] = up[r];
    for (Step s : down[r]) {
      s.tag += 1000;
      schedule[r].push_back(s);
    }
  }
  return RunSchedule(schedule, 0);
}

}  // namespace fpgadp::accl
