#ifndef FPGADP_ACCL_COLLECTIVES_H_
#define FPGADP_ACCL_COLLECTIVES_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/net/fabric.h"
#include "src/net/rdma.h"
#include "src/net/tcp.h"

namespace fpgadp::accl {

/// Algorithm choice for rooted/unrooted collectives.
enum class Algo {
  kLinear,  ///< Root talks to every rank directly.
  kTree,    ///< Binomial tree (log2 p rounds).
  kRing,    ///< Ring (all-reduce only): 2(p-1) bandwidth-optimal steps.
};

/// Wire protocol carrying the collective's messages. ACCL's published
/// implementation runs over the EasyNet 100 Gbps TCP stack; the RDMA
/// transport is the Coyote-style alternative.
enum class Transport {
  kRdma,  ///< Verbs sends; messages fly unsegmented.
  kTcp,   ///< TCP sessions: handshake, MSS segmentation, windowed ACKs.
};

/// Timing of one collective operation.
struct CollectiveStats {
  uint64_t cycles = 0;
  double seconds = 0;
  uint64_t wire_bytes = 0;   ///< Payload bytes that crossed the fabric.
  double bus_bw = 0;         ///< bytes / seconds of the caller's buffer.
  uint32_t attempts = 1;     ///< Schedule executions (>1 after fault retries).
};

/// Graceful-degradation report for the most recent collective: which ranks
/// finished their schedules on the final attempt, even when the operation
/// as a whole failed. Lets callers salvage partial results (e.g. a gather
/// root that received most contributions) instead of all-or-nothing.
struct PartialOutcome {
  uint32_t attempts = 0;         ///< Schedule executions performed.
  uint32_t ranks_completed = 0;  ///< Ranks that ran to completion last try.
  std::vector<bool> rank_done;   ///< Per-rank completion, last attempt.
  Status status;                 ///< Final status (OK on success).
};

/// An ACCL-style collectives library for a cluster of FPGAs on a 100 Gbps
/// fabric: each rank is an FPGA whose NIC executes the communication
/// schedule without host involvement. Data semantics are computed
/// functionally on the caller's buffers; timing comes from simulating the
/// exact message schedule (every send/recv, with NIC serialization and
/// wire latency) on the fabric model.
class Communicator {
 public:
  /// `world_size` ranks on one switch.
  explicit Communicator(uint32_t world_size,
                        net::Fabric::Config fabric = {},
                        double clock_hz = 200e6,
                        Transport transport = Transport::kRdma);

  uint32_t world_size() const { return world_size_; }
  Transport transport() const { return transport_; }

  /// TCP session parameters (ignored on the RDMA transport).
  void set_tcp_config(const net::TcpStack::Config& config) {
    tcp_config_ = config;
  }

  /// Attaches a fault injector to every fabric the communicator builds.
  /// The injector's seeded stream persists across collectives and retry
  /// attempts, so a retried schedule sees fresh (but still deterministic)
  /// fault draws. Endpoints detect the lossy fabric and switch on their
  /// reliability protocols automatically.
  void set_fault_injector(net::FaultInjector* injector) {
    fault_injector_ = injector;
  }

  /// Per-endpoint retransmission knobs used on a lossy fabric.
  void set_rdma_reliability(const net::RdmaEndpoint::Reliability& r) {
    rdma_reliability_ = r;
  }
  void set_tcp_reliability(const net::TcpStack::Reliability& r) {
    tcp_reliability_ = r;
  }

  /// Caps one schedule execution; exceeding it yields Status::Timeout
  /// (see RunSchedule). Tests shrink this to exercise the timeout path.
  void set_max_cycles(uint64_t max_cycles) { max_cycles_ = max_cycles; }

  /// Whole-schedule retry bound: a collective that fails (timeout or a
  /// transport giving up) is re-executed from scratch up to this many
  /// times before the error is surfaced. Default 1 = no retry.
  void set_max_attempts(uint32_t max_attempts) {
    max_attempts_ = max_attempts == 0 ? 1 : max_attempts;
  }

  /// Degradation report for the most recent collective (valid after any
  /// Broadcast/Reduce/... call, success or failure).
  const PartialOutcome& last_outcome() const { return last_outcome_; }

  /// buffers[rank] is rank's local buffer; all must equal buffers[root] in
  /// size. After the call every rank holds root's data.
  Result<CollectiveStats> Broadcast(uint32_t root,
                                    std::vector<std::vector<float>>& buffers,
                                    Algo algo = Algo::kTree);

  /// Root's `input` (world_size * chunk) is split; rank r receives chunk r
  /// into out[r].
  Result<CollectiveStats> Scatter(uint32_t root,
                                  const std::vector<float>& input,
                                  std::vector<std::vector<float>>& out);

  /// Rank r contributes buffers[r]; root receives the concatenation.
  Result<CollectiveStats> Gather(uint32_t root,
                                 const std::vector<std::vector<float>>& buffers,
                                 std::vector<float>* out);

  /// Element-wise sum of all buffers lands at root (others unchanged).
  Result<CollectiveStats> Reduce(uint32_t root,
                                 std::vector<std::vector<float>>& buffers,
                                 Algo algo = Algo::kTree);

  /// Element-wise sum lands at every rank. kRing is the bandwidth-optimal
  /// 2(p-1)-step schedule; kTree is reduce-to-0 + broadcast.
  Result<CollectiveStats> AllReduce(std::vector<std::vector<float>>& buffers,
                                    Algo algo = Algo::kRing);

  /// Ring all-gather: rank r contributes buffers[r]; every rank ends with
  /// the concatenation (p-1 chunk-forwarding steps per rank).
  Result<CollectiveStats> AllGather(
      const std::vector<std::vector<float>>& buffers,
      std::vector<std::vector<float>>* out);

  /// Ring reduce-scatter: buffers are equal-sized and conceptually split
  /// into p chunks; rank r ends with the element-wise sum of chunk r.
  Result<CollectiveStats> ReduceScatter(
      const std::vector<std::vector<float>>& buffers,
      std::vector<std::vector<float>>* out);

  /// Pipelined chain broadcast: ranks form a chain from the root and the
  /// payload is cut into `segment_bytes` pieces, so every rank forwards
  /// segment i while receiving segment i+1. Bandwidth-optimal for large
  /// payloads (each NIC sends the buffer once: time ~ ser(total) +
  /// (p-2) x ser(segment)), unlike the binomial tree whose root sends
  /// log2(p) full copies.
  Result<CollectiveStats> BroadcastSegmented(
      uint32_t root, std::vector<std::vector<float>>& buffers,
      uint64_t segment_bytes);

  /// Synchronization only (header-only messages, tree up + tree down).
  Result<CollectiveStats> Barrier();

 private:
  /// One step of a rank's schedule.
  struct Step {
    bool is_send = true;
    uint32_t peer = 0;
    uint64_t bytes = 0;
    uint64_t tag = 0;
  };

  /// Simulates the per-rank schedules to completion, retrying failed
  /// attempts up to max_attempts_ and recording last_outcome_.
  Result<CollectiveStats> RunSchedule(
      const std::vector<std::vector<Step>>& schedule, uint64_t payload_bytes);

  /// One schedule execution on a fresh fabric; fills last_outcome_'s
  /// per-rank completion state.
  Result<CollectiveStats> RunScheduleOnce(
      const std::vector<std::vector<Step>>& schedule, uint64_t payload_bytes);

  /// Builds the binomial-tree schedule rooted at `root`; `down` = true for
  /// broadcast (root to leaves), false for reduce (leaves to root).
  std::vector<std::vector<Step>> TreeSchedule(uint32_t root, uint64_t bytes,
                                              bool down) const;

  uint32_t world_size_;
  net::Fabric::Config fabric_config_;
  double clock_hz_;
  Transport transport_;
  net::TcpStack::Config tcp_config_;
  net::FaultInjector* fault_injector_ = nullptr;
  net::RdmaEndpoint::Reliability rdma_reliability_;
  net::TcpStack::Reliability tcp_reliability_;
  uint64_t max_cycles_ = 1ull << 34;
  uint32_t max_attempts_ = 1;
  PartialOutcome last_outcome_;
};

}  // namespace fpgadp::accl

#endif  // FPGADP_ACCL_COLLECTIVES_H_
