#ifndef FPGADP_LSM_SSTABLE_H_
#define FPGADP_LSM_SSTABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/check.h"

namespace fpgadp::lsm {

/// One record of a sorted run. Tombstones mark deletions until compaction
/// into the bottom level discards them.
struct KvEntry {
  uint64_t key = 0;
  uint64_t value = 0;
  bool tombstone = false;
};

/// An immutable sorted run (SSTable), the unit LSM compaction merges. The
/// 16-byte entry layout is what streams through the FPGA merge network.
class SsTable {
 public:
  SsTable() = default;

  /// Takes entries that must already be sorted by key, unique keys.
  static SsTable FromSorted(std::vector<KvEntry> entries);

  /// Binary-searches for `key`. A tombstone hit returns an engaged optional
  /// holding the tombstone (callers distinguish deletion from absence).
  std::optional<KvEntry> Find(uint64_t key) const;

  size_t num_entries() const { return entries_.size(); }
  uint64_t bytes() const { return entries_.size() * sizeof(KvEntry); }
  bool empty() const { return entries_.empty(); }
  const std::vector<KvEntry>& entries() const { return entries_; }
  uint64_t min_key() const { return entries_.front().key; }
  uint64_t max_key() const { return entries_.back().key; }

 private:
  std::vector<KvEntry> entries_;
};

/// K-way merge of sorted runs, `newest_first[0]` having the highest
/// priority for duplicate keys (the LSM freshness rule). Tombstones are
/// retained unless `drop_tombstones` (bottom-level compaction).
SsTable MergeTables(const std::vector<const SsTable*>& newest_first,
                    bool drop_tombstones);

}  // namespace fpgadp::lsm

#endif  // FPGADP_LSM_SSTABLE_H_
