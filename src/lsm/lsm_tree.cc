#include "src/lsm/lsm_tree.h"

#include <algorithm>

#include "src/common/check.h"

namespace fpgadp::lsm {

double LsmStats::SustainedPutsPerSec(CompactionEngine engine,
                                     const CompactionCostModel& /*cost*/,
                                     double put_ns) const {
  if (puts == 0) return 0;
  const double foreground = double(puts) * put_ns * 1e-9;
  if (engine == CompactionEngine::kCpu) {
    // Compaction and serving share the cores: both are on the critical path.
    return double(puts) / (foreground + compaction_seconds);
  }
  // Offloaded: ingest continues while the FPGA merges in the background;
  // sustained rate is min(ingest rate, merge keep-up rate).
  const double ingest = double(puts) / foreground;
  const double merge_keepup =
      compaction_seconds == 0
          ? ingest
          : double(puts) / compaction_seconds;  // merge bandwidth in
                                                 // user-put units
  return std::min(ingest, merge_keepup);
}

LsmTree::LsmTree(const LsmOptions& options) : options_(options) {
  FPGADP_CHECK(options_.memtable_limit > 0);
  FPGADP_CHECK(options_.tables_per_level > 1);
  levels_.resize(options_.max_levels);
}

void LsmTree::Put(uint64_t key, uint64_t value) {
  memtable_[key] = KvEntry{key, value, false};
  ++stats_.puts;
  stats_.put_seconds += options_.put_ns * 1e-9;
  if (memtable_.size() >= options_.memtable_limit) Flush();
}

void LsmTree::Delete(uint64_t key) {
  memtable_[key] = KvEntry{key, 0, true};
  ++stats_.puts;
  stats_.put_seconds += options_.put_ns * 1e-9;
  if (memtable_.size() >= options_.memtable_limit) Flush();
}

std::optional<uint64_t> LsmTree::Get(uint64_t key) const {
  auto mt = memtable_.find(key);
  if (mt != memtable_.end()) {
    if (mt->second.tombstone) return std::nullopt;
    return mt->second.value;
  }
  // Levels newest-first; within a level, newest table last.
  for (const auto& level : levels_) {
    for (auto it = level.rbegin(); it != level.rend(); ++it) {
      const auto hit = it->Find(key);
      if (hit.has_value()) {
        if (hit->tombstone) return std::nullopt;
        return hit->value;
      }
    }
  }
  return std::nullopt;
}

void LsmTree::Flush() {
  if (memtable_.empty()) return;
  std::vector<KvEntry> sorted;
  sorted.reserve(memtable_.size());
  for (const auto& [key, entry] : memtable_) sorted.push_back(entry);
  memtable_.clear();
  levels_[0].push_back(SsTable::FromSorted(std::move(sorted)));
  ++stats_.flushes;
  MaybeCompact();
}

void LsmTree::MaybeCompact() {
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    if (levels_[level].size() < options_.tables_per_level) continue;
    // Tiered compaction: merge the whole level into one run a level down.
    std::vector<const SsTable*> newest_first;
    for (auto it = levels_[level].rbegin(); it != levels_[level].rend();
         ++it) {
      newest_first.push_back(&*it);
    }
    // Records in the destination level are older than everything above.
    for (auto it = levels_[level + 1].rbegin();
         it != levels_[level + 1].rend(); ++it) {
      newest_first.push_back(&*it);
    }
    uint64_t inputs = 0;
    for (const SsTable* t : newest_first) inputs += t->num_entries();
    const bool bottom = level + 2 == levels_.size();
    SsTable merged = MergeTables(newest_first, /*drop_tombstones=*/bottom);
    levels_[level].clear();
    levels_[level + 1].clear();
    if (!merged.empty()) levels_[level + 1].push_back(std::move(merged));
    ++stats_.compactions;
    stats_.entries_compacted += inputs;
    stats_.compaction_seconds +=
        options_.cost.Seconds(options_.engine, inputs);
  }
}

uint64_t LsmTree::total_entries() const {
  uint64_t n = memtable_.size();
  for (const auto& level : levels_) {
    for (const SsTable& t : level) n += t.num_entries();
  }
  return n;
}

}  // namespace fpgadp::lsm
