#include "src/lsm/sstable.h"

#include <algorithm>
#include <queue>

namespace fpgadp::lsm {

SsTable SsTable::FromSorted(std::vector<KvEntry> entries) {
  for (size_t i = 1; i < entries.size(); ++i) {
    FPGADP_CHECK(entries[i - 1].key < entries[i].key);
  }
  SsTable t;
  t.entries_ = std::move(entries);
  return t;
}

std::optional<KvEntry> SsTable::Find(uint64_t key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const KvEntry& e, uint64_t k) { return e.key < k; });
  if (it == entries_.end() || it->key != key) return std::nullopt;
  return *it;
}

SsTable MergeTables(const std::vector<const SsTable*>& newest_first,
                    bool drop_tombstones) {
  // Heap of (key, priority, cursor); lower priority index = fresher table.
  struct Cursor {
    uint64_t key;
    size_t priority;
    size_t index;
    bool operator>(const Cursor& o) const {
      return key != o.key ? key > o.key : priority > o.priority;
    }
  };
  std::priority_queue<Cursor, std::vector<Cursor>, std::greater<Cursor>> heap;
  for (size_t t = 0; t < newest_first.size(); ++t) {
    if (!newest_first[t]->empty()) {
      heap.push({newest_first[t]->entries()[0].key, t, 0});
    }
  }
  std::vector<KvEntry> out;
  bool have_current = false;
  uint64_t current_key = 0;
  while (!heap.empty()) {
    const Cursor c = heap.top();
    heap.pop();
    const KvEntry& e = newest_first[c.priority]->entries()[c.index];
    // The freshest record for each key pops first (priority tiebreak);
    // later records for the same key are shadowed.
    if (!have_current || e.key != current_key) {
      have_current = true;
      current_key = e.key;
      if (!(e.tombstone && drop_tombstones)) out.push_back(e);
    }
    const size_t next = c.index + 1;
    if (next < newest_first[c.priority]->num_entries()) {
      heap.push({newest_first[c.priority]->entries()[next].key, c.priority,
                 next});
    }
  }
  return SsTable::FromSorted(std::move(out));
}

}  // namespace fpgadp::lsm
