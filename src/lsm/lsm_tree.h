#ifndef FPGADP_LSM_LSM_TREE_H_
#define FPGADP_LSM_LSM_TREE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/lsm/sstable.h"

namespace fpgadp::lsm {

/// Who executes compaction merges — the X-Engine / FAST'20 question.
enum class CompactionEngine {
  kCpu,   ///< Host cores run the k-way merge (and are stolen from serving).
  kFpga,  ///< A streaming merge network on the FPGA at memory bandwidth.
};

/// Cost model for the two compaction engines, calibrated to the cited
/// systems: a software merge runs tens of ns per entry (branchy heap);
/// the FPGA merge network streams 16-byte entries at the data-path rate.
struct CompactionCostModel {
  double cpu_ns_per_entry = 25;
  double fpga_bytes_per_cycle = 64;
  double fpga_clock_hz = 200e6;

  /// Seconds to merge `entries` input records.
  double Seconds(CompactionEngine engine, uint64_t entries) const {
    if (engine == CompactionEngine::kCpu) {
      return double(entries) * cpu_ns_per_entry * 1e-9;
    }
    const double bytes = double(entries) * sizeof(KvEntry);
    return bytes / (fpga_bytes_per_cycle * fpga_clock_hz);
  }
};

struct LsmOptions {
  size_t memtable_limit = 1024;   ///< Entries before a flush.
  size_t tables_per_level = 4;    ///< Tiered: merge when a level fills.
  size_t max_levels = 5;
  CompactionEngine engine = CompactionEngine::kCpu;
  CompactionCostModel cost;
  double put_ns = 100;            ///< CPU cost per Put (memtable insert).
};

/// Accounting of where the time went — the FAST'20 "compaction steals the
/// CPU" argument in numbers.
struct LsmStats {
  uint64_t puts = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t entries_compacted = 0;   ///< Total merge input records.
  double compaction_seconds = 0;    ///< Time spent merging.
  double put_seconds = 0;           ///< Foreground insert time.
  /// Write amplification: merge inputs / user puts.
  double WriteAmplification() const {
    return puts == 0 ? 0 : double(entries_compacted) / double(puts);
  }
  /// Sustained user throughput with compaction on the CPU's critical path
  /// (kCpu) or fully offloaded (kFpga, where only the slower of ingest and
  /// merge bandwidth matters).
  double SustainedPutsPerSec(CompactionEngine engine,
                             const CompactionCostModel& cost,
                             double put_ns) const;
};

/// A tiered-compaction LSM tree with pluggable compaction engines — the
/// storage substrate of the tutorial's X-Engine motivation. Functionally a
/// complete KV store (put/get/delete across memtable + levels); timing is
/// accounted through the cost model rather than wall clock so experiments
/// are deterministic.
class LsmTree {
 public:
  explicit LsmTree(const LsmOptions& options = LsmOptions());

  void Put(uint64_t key, uint64_t value);
  void Delete(uint64_t key);

  /// Freshest visible value, honoring tombstones.
  std::optional<uint64_t> Get(uint64_t key) const;

  /// Forces the memtable into level 0 (also triggered automatically).
  void Flush();

  const LsmStats& stats() const { return stats_; }
  size_t num_levels() const { return levels_.size(); }
  size_t level_tables(size_t level) const { return levels_[level].size(); }
  uint64_t total_entries() const;

 private:
  void MaybeCompact();

  LsmOptions options_;
  std::map<uint64_t, KvEntry> memtable_;
  /// levels_[0] newest; within a level, later tables are newer.
  std::vector<std::vector<SsTable>> levels_;
  LsmStats stats_;
};

}  // namespace fpgadp::lsm

#endif  // FPGADP_LSM_LSM_TREE_H_
