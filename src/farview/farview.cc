#include "src/farview/farview.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/units.h"
#include "src/relational/compression.h"

namespace fpgadp::farview {

namespace {
mem::MemoryChannel::Config DdrConfig(const FarviewConfig& c) {
  mem::MemoryChannel::Config cfg;
  cfg.latency_ns = c.ddr_latency_ns;
  cfg.bytes_per_sec = c.ddr_bytes_per_sec;
  cfg.clock_hz = c.clock_hz;
  cfg.access_granularity = 64;
  return cfg;
}

/// Calibrated per-tuple CPU cost of predicate/aggregate evaluation on the
/// compute node (branchy scalar code), on top of the streaming bandwidth.
constexpr double kCpuPerTupleNs = 1.0;
}  // namespace

MemoryNode::MemoryNode(std::string name, uint32_t node_id, net::Fabric* fabric,
                       const FarviewConfig& config)
    : sim::Module(std::move(name)), config_(config),
      endpoint_(this->name() + ".ep", node_id, fabric, config.reliability),
      dram_(this->name() + ".dram", config.ddr_channels, DdrConfig(config)) {}

uint64_t MemoryNode::StoreTable(rel::Table table, uint64_t stored_bytes,
                                bool compressed) {
  const uint64_t id = tables_.size();
  table_addr_[id] = next_addr_;
  next_addr_ += (stored_bytes + config_.page_bytes - 1) / config_.page_bytes *
                config_.page_bytes;
  tables_.emplace(id, StoredTable{std::move(table), stored_bytes, compressed});
  return id;
}

uint64_t MemoryNode::LoadTable(rel::Table table) {
  const uint64_t bytes = table.total_bytes();
  return StoreTable(std::move(table), bytes, /*compressed=*/false);
}

uint64_t MemoryNode::LoadTableCompressed(rel::Table table) {
  const std::vector<uint8_t> raw = rel::SerializeRows(table);
  const uint64_t compressed_bytes = rel::LzCompress(raw).size();
  return StoreTable(std::move(table), compressed_bytes, /*compressed=*/true);
}

void MemoryNode::RegisterProgram(uint64_t program_id, rel::Program program) {
  programs_[program_id] = std::move(program);
}

void MemoryNode::RegisterWith(sim::Engine& engine) {
  engine.AddModule(this);
  engine.AddModule(&endpoint_);
  dram_.RegisterWith(engine);
}

void MemoryNode::StartJob(const Job& job) {
  current_ = job;
  job_active_ = true;
  const StoredTable& st = tables_.at(job.table_id);
  const rel::Table& t = st.table;
  row_bytes_ = t.schema().row_bytes();
  tuples_total_ = t.num_rows();
  tuples_arrived_ = 0;
  tuples_processed_ = 0;
  // The scan touches the *stored* image: compressed tables read fewer
  // pages and the line-rate decompressor re-inflates the tuple stream.
  scan_bytes_ = st.stored_bytes;
  pages_total_ = (scan_bytes_ + config_.page_bytes - 1) / config_.page_bytes;
  pages_issued_ = 0;
  pages_arrived_ = 0;
  // Materialize the surviving tuples up front (functional); the simulation
  // streams their bytes out in proportion to scan progress, which is what
  // the line-rate pipeline does on hardware.
  const rel::Program& prog = programs_.at(job.program_id);
  auto result = rel::ExecuteCpu(prog, t);
  FPGADP_CHECK(result.ok());
  pending_result_ = std::move(result).value();
  result_bytes_ = pending_result_.total_bytes();
  result_sent_ = 0;
}

void MemoryNode::Tick(sim::Cycle) {
  bool progressed = false;
  // Accept offload requests.
  net::Packet req;
  while (endpoint_.PollRecv(&req)) {
    if (req.kind == net::OpKind::kOffloadReq) {
      jobs_.push_back(Job{req.src, req.tag, req.addr, req.user});
      progressed = true;
    }
  }
  if (!job_active_ && !jobs_.empty()) {
    StartJob(jobs_.front());
    jobs_.pop_front();
    progressed = true;
  }
  if (!job_active_) return;

  // Issue page scans round-robin over the DRAM channels.
  const uint64_t base = table_addr_.at(current_.table_id);
  while (pages_issued_ < pages_total_) {
    const uint32_t ch =
        static_cast<uint32_t>(pages_issued_ % dram_.num_channels());
    if (!dram_.request(ch).CanWrite()) break;
    dram_.request(ch).Write(
        {pages_issued_, base + pages_issued_ * config_.page_bytes,
         config_.page_bytes, false});
    ++pages_issued_;
    progressed = true;
  }
  // Collect arrived pages.
  for (uint32_t ch = 0; ch < dram_.num_channels(); ++ch) {
    while (dram_.response(ch).CanRead()) {
      (void)dram_.response(ch).Read();
      ++pages_arrived_;
      progressed = true;
    }
  }
  // Tuples become available in proportion to the scanned fraction of the
  // stored image (exact for raw storage, amortized for compressed).
  const uint64_t arrived_bytes = pages_arrived_ * config_.page_bytes;
  tuples_arrived_ = std::min<uint64_t>(
      tuples_total_,
      scan_bytes_ == 0
          ? tuples_total_
          : static_cast<uint64_t>(double(tuples_total_) *
                                  double(arrived_bytes) / double(scan_bytes_)));

  // Stream arrived tuples through the operator pipeline at line rate.
  if (tuples_processed_ < tuples_arrived_) {
    tuples_processed_ = std::min<uint64_t>(
        tuples_arrived_, tuples_processed_ + config_.pipeline_lanes);
    progressed = true;
  }

  // Stream surviving bytes back in chunks proportional to scan progress —
  // the pipeline's output port runs concurrently with the scan, so network
  // serialization overlaps DRAM time. (Aggregates produce ~all of their
  // tiny output at end-of-stream; proportionality handles both shapes.)
  const bool done =
      tuples_processed_ == tuples_total_ && pages_arrived_ == pages_total_;
  const uint64_t target =
      done ? result_bytes_
           : (tuples_total_ == 0
                  ? result_bytes_
                  : result_bytes_ * tuples_processed_ / tuples_total_);
  while (result_sent_ < target ||
         (done && result_sent_ == result_bytes_ && job_active_)) {
    net::Packet resp;
    resp.dst = current_.requester;
    resp.kind = net::OpKind::kOffloadResp;
    resp.tag = current_.tag;
    resp.bytes = std::min<uint64_t>(config_.result_chunk_bytes,
                                    target - result_sent_);
    result_sent_ += resp.bytes;
    const bool last = done && result_sent_ == result_bytes_;
    resp.user = last ? 1 : 0;
    endpoint_.PostPacket(resp);
    progressed = true;
    if (last) {
      results_.emplace(current_.tag, std::move(pending_result_));
      pending_result_ = rel::Table();
      job_active_ = false;
      break;
    }
  }
  if (progressed) MarkBusy();
}

namespace {
std::vector<std::unique_ptr<net::RdmaEndpoint>> MakeClients(
    uint32_t num_clients, net::Fabric* fabric,
    const net::RdmaEndpoint::Reliability& reliability) {
  FPGADP_CHECK(num_clients >= 1);
  std::vector<std::unique_ptr<net::RdmaEndpoint>> clients;
  for (uint32_t c = 0; c < num_clients; ++c) {
    clients.push_back(std::make_unique<net::RdmaEndpoint>(
        "client" + std::to_string(c) + ".ep", c, fabric, reliability));
  }
  return clients;
}
}  // namespace

FarviewSystem::FarviewSystem(const FarviewConfig& config, uint32_t num_clients)
    : config_(config), engine_(config.clock_hz),
      fabric_("fabric", num_clients + 1,
              [&] {
                net::Fabric::Config f = config.fabric;
                f.clock_hz = config.clock_hz;
                return f;
              }()),
      clients_(MakeClients(num_clients, &fabric_, config.reliability)),
      client_(*clients_[0]) {
  node_ = std::make_unique<MemoryNode>("memnode", num_clients, &fabric_,
                                       config_);
  fabric_.RegisterWith(engine_);
  for (auto& c : clients_) engine_.AddModule(c.get());
  node_->RegisterWith(engine_);
}

Status FarviewSystem::TransportFailure() const {
  for (const auto& c : clients_) {
    if (c->failed()) return c->status();
  }
  if (node_->endpoint().failed()) return node_->endpoint().status();
  return Status::OK();
}

Result<std::vector<QueryStats>> FarviewSystem::RunOffloadedConcurrently(
    const std::vector<ConcurrentRequest>& requests, double* makespan_seconds) {
  if (requests.empty()) {
    return Status::InvalidArgument("no requests");
  }
  struct InFlight {
    uint64_t tag;
    uint32_t client;
    uint64_t payload = 0;
    bool done = false;
    sim::Cycle done_at = 0;
  };
  std::vector<InFlight> flight;
  const sim::Cycle start = engine_.now();
  const uint32_t server = static_cast<uint32_t>(clients_.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const ConcurrentRequest& r = requests[i];
    if (programs_.find(r.program_id) == programs_.end()) {
      return Status::NotFound("unknown program id");
    }
    const uint64_t tag = next_tag_++;
    const auto client = static_cast<uint32_t>(i % clients_.size());
    net::Packet req;
    req.dst = server;
    req.kind = net::OpKind::kOffloadReq;
    req.tag = tag;
    req.addr = r.table_id;
    req.user = r.program_id;
    clients_[client]->PostPacket(req);
    flight.push_back({tag, client});
  }
  size_t remaining = flight.size();
  const uint64_t kMaxCycles = 1ull << 30;
  net::Packet resp;
  for (uint64_t i = 0; i < kMaxCycles && remaining > 0; ++i) {
    engine_.Step();
    if (Status failure = TransportFailure(); !failure.ok()) return failure;
    for (auto& f : flight) {
      if (f.done) continue;
      while (clients_[f.client]->PollRecv(&resp)) {
        // Responses on one client endpoint may interleave across tags.
        for (auto& g : flight) {
          if (!g.done && g.client == f.client && resp.tag == g.tag) {
            g.payload += resp.bytes;
            if (resp.user == 1) {
              g.done = true;
              g.done_at = engine_.now();
              --remaining;
            }
            break;
          }
        }
        if (f.done) break;
      }
    }
  }
  if (remaining > 0) {
    return Status::Timeout("concurrent offload batch did not complete");
  }
  std::vector<QueryStats> out;
  out.reserve(flight.size());
  for (const InFlight& f : flight) {
    QueryStats s;
    s.result = node_->TakeResult(f.tag);
    s.cycles = f.done_at - start;
    s.seconds = CyclesToSeconds(s.cycles, config_.clock_hz);
    s.wire_bytes = f.payload;
    out.push_back(std::move(s));
  }
  if (makespan_seconds != nullptr) {
    *makespan_seconds = CyclesToSeconds(engine_.now() - start,
                                        config_.clock_hz);
  }
  return out;
}

uint64_t FarviewSystem::LoadTable(rel::Table table) {
  return node_->LoadTable(std::move(table));
}

uint64_t FarviewSystem::LoadTableCompressed(rel::Table table) {
  return node_->LoadTableCompressed(std::move(table));
}

uint64_t FarviewSystem::RegisterProgram(rel::Program program) {
  const uint64_t id = next_program_id_++;
  programs_[id] = program;
  node_->RegisterProgram(id, std::move(program));
  return id;
}

Result<QueryStats> FarviewSystem::RunOffloaded(uint64_t table_id,
                                               uint64_t program_id) {
  if (programs_.find(program_id) == programs_.end()) {
    return Status::NotFound("unknown program id");
  }
  const uint64_t tag = next_tag_++;
  const sim::Cycle start = engine_.now();
  const uint64_t dram_before = node_->dram_bytes_read();

  net::Packet req;
  req.dst = static_cast<uint32_t>(clients_.size());  // the memory node
  req.kind = net::OpKind::kOffloadReq;
  req.tag = tag;
  req.addr = table_id;
  req.user = program_id;
  client_.PostPacket(req);

  net::Packet resp;
  bool got = false;
  uint64_t payload = 0;
  const uint64_t kMaxCycles = 1ull << 28;
  for (uint64_t i = 0; i < kMaxCycles && !got; ++i) {
    engine_.Step();
    if (Status failure = TransportFailure(); !failure.ok()) return failure;
    while (client_.PollRecv(&resp)) {
      if (resp.kind != net::OpKind::kOffloadResp || resp.tag != tag) continue;
      payload += resp.bytes;
      if (resp.user == 1) {  // final chunk
        got = true;
        break;
      }
    }
  }
  if (!got) return Status::Timeout("offloaded query did not complete");

  QueryStats stats;
  stats.result = node_->TakeResult(tag);
  stats.cycles = engine_.now() - start;
  stats.seconds = CyclesToSeconds(stats.cycles, config_.clock_hz);
  stats.wire_bytes = payload;  // request is header-only
  stats.dram_bytes = node_->dram_bytes_read() - dram_before;
  return stats;
}

Result<QueryStats> FarviewSystem::RunFetchAll(uint64_t table_id,
                                              uint64_t program_id) {
  auto prog_it = programs_.find(program_id);
  if (prog_it == programs_.end()) {
    return Status::NotFound("unknown program id");
  }
  const rel::Table& table = node_->table(table_id);
  // The compute node fetches the stored image (compressed tables travel
  // compressed and are inflated in software on arrival).
  const uint64_t total = node_->table_stored_bytes(table_id);
  const bool compressed = node_->table_is_compressed(table_id);
  const sim::Cycle start = engine_.now();

  // RDMA-read the table in 1 MiB chunks; reads pipeline, so the transfer is
  // bandwidth-bound. (The memory node's NIC DMAs from DRAM at memory
  // bandwidth, which exceeds line rate, so the network is the bottleneck.)
  const uint64_t kChunk = 1ull << 20;
  const auto server = static_cast<uint32_t>(clients_.size());
  uint64_t issued_tags = 0;
  for (uint64_t off = 0; off < total; off += kChunk) {
    client_.PostRead(server, off, std::min(kChunk, total - off),
                     issued_tags++);
  }
  if (total == 0) issued_tags = 0;
  uint64_t completed = 0;
  const uint64_t kMaxCycles = 1ull << 30;
  net::Completion c;
  for (uint64_t i = 0; i < kMaxCycles && completed < issued_tags; ++i) {
    engine_.Step();
    while (client_.PollCompletion(&c)) {
      if (c.status != StatusCode::kOk) return client_.status();
      if (c.kind == net::OpKind::kReadResp) ++completed;
    }
    if (Status failure = TransportFailure(); !failure.ok()) return failure;
  }
  if (completed < issued_tags) {
    return Status::Timeout("fetch-all transfer did not complete");
  }

  QueryStats stats;
  auto result = rel::ExecuteCpu(prog_it->second, table);
  if (!result.ok()) return result.status();
  stats.result = std::move(result).value();
  stats.cycles = engine_.now() - start;
  stats.wire_bytes = total;
  stats.dram_bytes = total;
  // Compute-node CPU processes the fetched pages: streaming bandwidth plus
  // a per-tuple evaluation cost, plus software decompression when the
  // table traveled compressed.
  stats.cpu_seconds = config_.cpu.StreamSeconds(total) +
                      double(table.num_rows()) * kCpuPerTupleNs * 1e-9;
  if (compressed) {
    constexpr double kCpuLzNsPerByte = 4.0;  // software LZ inflate
    stats.cpu_seconds += double(table.total_bytes()) * kCpuLzNsPerByte * 1e-9;
  }
  stats.seconds =
      CyclesToSeconds(stats.cycles, config_.clock_hz) + stats.cpu_seconds;
  return stats;
}

}  // namespace fpgadp::farview
