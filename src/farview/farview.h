#ifndef FPGADP_FARVIEW_FARVIEW_H_
#define FPGADP_FARVIEW_FARVIEW_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "src/common/result.h"
#include "src/device/device.h"
#include "src/memory/multi_channel.h"
#include "src/net/fabric.h"
#include "src/net/rdma.h"
#include "src/relational/cpu_executor.h"
#include "src/relational/program.h"
#include "src/relational/table.h"
#include "src/sim/engine.h"

namespace fpgadp::farview {

/// Configuration of a Farview deployment: one compute node (the database
/// engine) and one smart-memory node (FPGA-attached DRAM on the network),
/// as in Figure 2 of the tutorial.
struct FarviewConfig {
  double clock_hz = 200e6;
  net::Fabric::Config fabric;        ///< clock_hz is overwritten.
  uint32_t ddr_channels = 2;         ///< Channels on the memory node.
  double ddr_bytes_per_sec = 19.2e9; ///< Per channel.
  double ddr_latency_ns = 90;
  uint32_t page_bytes = 4096;        ///< Scan granularity.
  uint32_t result_chunk_bytes = 16384;  ///< Result packets stream out in
                                        ///< chunks as the scan progresses
                                        ///< (scan/network overlap).
  uint32_t pipeline_lanes = 8;       ///< Tuples/cycle through the operator
                                     ///< pipeline on the memory node (8 x
                                     ///< 40 B = a 512-bit-bus-class datapath,
                                     ///< so DRAM stays the bottleneck).
  device::CpuModel cpu;              ///< Compute-node CPU for the baseline.
  /// Endpoint retransmission knobs, active only when a FaultInjector is
  /// attached to the system's fabric (see FarviewSystem::set_fault_injector).
  net::RdmaEndpoint::Reliability reliability;
};

/// Result of one query execution, offloaded or baseline.
struct QueryStats {
  rel::Table result;
  uint64_t cycles = 0;          ///< End-to-end simulated cycles.
  double seconds = 0;
  uint64_t wire_bytes = 0;      ///< Payload bytes that crossed the network.
  uint64_t dram_bytes = 0;      ///< Bytes read from memory-node DRAM.
  double cpu_seconds = 0;       ///< Compute-node CPU time (baseline only).
};

/// The smart-memory node: FPGA-attached DRAM serving RDMA reads, plus an
/// operator pipeline that can run a rel::Program over a stored table at
/// line rate while it streams out of DRAM — returning only the surviving
/// bytes to the compute node.
class MemoryNode : public sim::Module {
 public:
  MemoryNode(std::string name, uint32_t node_id, net::Fabric* fabric,
             const FarviewConfig& config);

  /// Stores `table` in the node's DRAM. Returns the table id used in
  /// offload requests.
  uint64_t LoadTable(rel::Table table);

  /// Stores `table` LZ-compressed (the HANA/AQUA pattern): the scan reads
  /// only the compressed bytes from DRAM and the line-rate decompressor
  /// feeds the operator pipeline, so scans of compressible data speed up
  /// by the compression ratio.
  uint64_t LoadTableCompressed(rel::Table table);

  /// Registers an operator program under `program_id` (the control-plane
  /// step a real deployment does once per prepared statement).
  void RegisterProgram(uint64_t program_id, rel::Program program);

  /// Registers this module plus its endpoint and DRAM with `engine`.
  void RegisterWith(sim::Engine& engine);

  void Tick(sim::Cycle cycle) override;
  bool Idle() const override { return !job_active_ && jobs_.empty(); }

  const rel::Table& table(uint64_t id) const { return tables_.at(id).table; }
  uint64_t table_bytes(uint64_t id) const {
    return tables_.at(id).table.total_bytes();
  }
  /// Bytes the table occupies in DRAM (compressed size when compressed).
  uint64_t table_stored_bytes(uint64_t id) const {
    return tables_.at(id).stored_bytes;
  }
  bool table_is_compressed(uint64_t id) const {
    return tables_.at(id).compressed;
  }
  uint64_t dram_bytes_read() const { return dram_.TotalBytesTransferred(); }
  net::RdmaEndpoint& endpoint() { return endpoint_; }

  /// Retrieves (and removes) the materialized result of a completed offload
  /// job. Result payloads travel functionally; the wire carried their size.
  rel::Table TakeResult(uint64_t tag) {
    auto it = results_.find(tag);
    FPGADP_CHECK(it != results_.end());
    rel::Table t = std::move(it->second);
    results_.erase(it);
    return t;
  }

 private:
  struct Job {
    uint32_t requester = 0;
    uint64_t tag = 0;
    uint64_t table_id = 0;
    uint64_t program_id = 0;
  };

  void StartJob(const Job& job);

  struct StoredTable {
    rel::Table table;
    uint64_t stored_bytes = 0;  ///< DRAM footprint (== raw unless compressed).
    bool compressed = false;
  };

  uint64_t StoreTable(rel::Table table, uint64_t stored_bytes,
                      bool compressed);

  FarviewConfig config_;
  net::RdmaEndpoint endpoint_;
  mem::MultiChannelMemory dram_;
  std::map<uint64_t, StoredTable> tables_;
  std::map<uint64_t, rel::Program> programs_;
  uint64_t next_addr_ = 0;
  std::map<uint64_t, uint64_t> table_addr_;
  std::map<uint64_t, rel::Table> results_;

  // Scan/pipeline state for the in-flight job.
  std::deque<Job> jobs_;
  bool job_active_ = false;
  Job current_;
  uint64_t pages_total_ = 0;
  uint64_t pages_issued_ = 0;
  uint64_t pages_arrived_ = 0;
  uint64_t tuples_total_ = 0;
  uint64_t tuples_arrived_ = 0;   // delivered by DRAM so far
  uint64_t tuples_processed_ = 0; // pushed through the operator pipeline
  uint64_t row_bytes_ = 0;
  uint64_t scan_bytes_ = 0;       // DRAM bytes this job scans (stored size)
  uint64_t result_bytes_ = 0;     // total result payload for this job
  uint64_t result_sent_ = 0;      // payload already streamed to the client
  rel::Table pending_result_;     // materialized at job start
};

/// The full deployment — `num_clients` compute nodes and one smart-memory
/// node — plus a client API: load a table, then compare RunOffloaded()
/// against RunFetchAll() (experiment E1), or drive several clients at once
/// to observe queueing at the shared node (multi-tenancy).
class FarviewSystem {
 public:
  explicit FarviewSystem(const FarviewConfig& config = {},
                         uint32_t num_clients = 1);

  /// One offloaded query per entry of `requests` (client i posts request
  /// i % num_clients), all in flight together. Returns per-query stats in
  /// order; `makespan_seconds` (over all queries) lands in every entry's
  /// `seconds` field being individual, with the batch wall time returned
  /// through the out-parameter.
  struct ConcurrentRequest {
    uint64_t table_id = 0;
    uint64_t program_id = 0;
  };
  Result<std::vector<QueryStats>> RunOffloadedConcurrently(
      const std::vector<ConcurrentRequest>& requests,
      double* makespan_seconds);

  /// Loads `table` into the memory node; returns its table id.
  uint64_t LoadTable(rel::Table table);

  /// Loads `table` LZ-compressed on the memory node (see
  /// MemoryNode::LoadTableCompressed).
  uint64_t LoadTableCompressed(rel::Table table);

  /// Registers `program` for offloaded execution; returns its program id.
  uint64_t RegisterProgram(rel::Program program);

  /// Executes `program_id` on the memory node (operators run where the
  /// data lives); only result bytes cross the wire.
  Result<QueryStats> RunOffloaded(uint64_t table_id, uint64_t program_id);

  /// Baseline: RDMA-read the whole table to the compute node, then run the
  /// program on the compute node's CPU (modeled analytically so results are
  /// deterministic).
  Result<QueryStats> RunFetchAll(uint64_t table_id, uint64_t program_id);

  sim::Engine& engine() { return engine_; }
  MemoryNode& memory_node() { return *node_; }

  /// Makes the deployment's fabric lossy. Must be called before queries
  /// run; every RdmaEndpoint (clients and the memory node's) switches on
  /// its reliable-connection protocol, so queries survive drops/corruption
  /// up to the retry cap, after which Run* surfaces Status::Unavailable.
  void set_fault_injector(net::FaultInjector* injector) {
    fabric_.set_fault_injector(injector);
  }

 private:
  /// First transport failure across all endpoints, or OK.
  Status TransportFailure() const;

 private:
  FarviewConfig config_;
  sim::Engine engine_;
  net::Fabric fabric_;
  std::vector<std::unique_ptr<net::RdmaEndpoint>> clients_;
  net::RdmaEndpoint& client_;  ///< Alias of clients_[0] (single-client API).
  std::unique_ptr<MemoryNode> node_;
  std::map<uint64_t, rel::Program> programs_;
  uint64_t next_program_id_ = 1;
  uint64_t next_tag_ = 1;
};

}  // namespace fpgadp::farview

#endif  // FPGADP_FARVIEW_FARVIEW_H_
