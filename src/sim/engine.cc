#include "src/sim/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "src/common/check.h"
#include "src/common/units.h"
#include "src/sim/thread_pool.h"

namespace fpgadp::sim {

namespace {
uint32_t g_default_threads = 1;
bool g_default_fast_forward = true;

/// The scheduling default starts from the FPGADP_ENGINE environment variable
/// so whole test tiers can sweep the scheduler (tools/check.sh runs the
/// golden and chaos tiers under FPGADP_ENGINE=event) without a rebuild.
Scheduling InitialScheduling() {
  const char* env = std::getenv("FPGADP_ENGINE");
  if (env != nullptr && std::strcmp(env, "event") == 0) {
    return Scheduling::kEventDriven;
  }
  return Scheduling::kLevelTick;
}
Scheduling g_default_scheduling = InitialScheduling();

/// Dependency levels (and event-mode armed sets) at or below this size tick
/// inline on the coordinating thread: a ThreadPool dispatch plus its barrier
/// costs far more than a handful of Tick() calls, which is exactly the
/// incast.thr4 collapse E21 measured (~211k cycles/s vs 23M serial on a
/// topology whose levels are almost all singletons).
constexpr size_t kInlineTickThreshold = 4;

/// Consecutive full-run-list event cycles before the event loop drops into
/// its saturated (legacy-body) inner loop; see RunEventDriven.
constexpr uint32_t kDenseStreakCycles = 8;

/// Busy-probe window inside the saturated loop: every this-many cycles the
/// loop samples the busy-cycle sum and exits back to per-module scheduling
/// when the whole window accrued fewer busy-marks than one fully-busy cycle
/// would; see RunEventDriven.
constexpr uint32_t kSaturationLullCycles = 16;

/// Min-heap order for the (cycle, module index) calendar entries.
bool HeapLater(const std::pair<Cycle, size_t>& a,
               const std::pair<Cycle, size_t>& b) {
  return a.first > b.first;
}

constexpr size_t kNone = ~size_t{0};
}  // namespace

void SetDefaultEngineThreads(uint32_t n) {
  g_default_threads = n == 0 ? 1 : n;
}
uint32_t DefaultEngineThreads() { return g_default_threads; }
void SetDefaultFastForward(bool on) { g_default_fast_forward = on; }
bool DefaultFastForward() { return g_default_fast_forward; }
void SetDefaultScheduling(Scheduling s) { g_default_scheduling = s; }
Scheduling DefaultScheduling() { return g_default_scheduling; }

void Module::WakeUp() {
  if (engine_ != nullptr) engine_->WakeModule(engine_index_);
}

Engine::Engine(double clock_hz)
    : clock_hz_(clock_hz),
      fast_forward_(g_default_fast_forward),
      threads_(g_default_threads),
      scheduling_(g_default_scheduling) {}

Engine::~Engine() {
  // Safety net for manually stepped harnesses that forget the final flush;
  // a Run()-driven engine has already flushed, so this stays a no-op (and
  // never touches modules that might not outlive an oddly-ordered scope).
  // Streams attached to the commit queue need no detach here: the queue is
  // shared-owned, so it outlives whichever of engine/stream dies last.
  if (!flushed_) FlushObservers();
}

void Engine::AddModule(Module* module) {
  FPGADP_CHECK(module != nullptr);
  // WakeUp() routes through this backpointer. Last registration wins: a
  // module may be re-registered with a fresh engine after its previous one
  // died (the dead engine cannot clear the pointer — modules routinely
  // outlive engines and vice versa), but must never be live in two engines
  // at once.
  module->engine_ = this;
  module->engine_index_ = modules_.size();
  modules_.push_back(module);
  schedule_dirty_ = true;
}

void Engine::AddStream(StreamBase* stream) {
  FPGADP_CHECK(stream != nullptr);
  streams_.push_back(stream);
  schedule_dirty_ = true;
}

void Engine::SetThreads(uint32_t n) {
  threads_ = n == 0 ? 1 : n;
  pool_.reset();
  schedule_dirty_ = true;
}

void Engine::RebuildSchedule() {
  // The module/stream set changed: settle any lazily-deferred event-mode
  // attribution against the OLD set before the indices shift under it.
  InvalidateEventState();
  schedule_dirty_ = false;
  levels_.clear();
  module_level_.assign(modules_.size(), 0);
  parallel_tick_ = false;
  if (threads_ <= 1) {
    pool_.reset();
  } else {
    if (!pool_ || pool_->num_threads() != threads_) {
      pool_ = std::make_unique<ThreadPool>(threads_);
    }
    parallel_tick_ = TryBuildLevels();
  }
  // Wire the commit-skip plumbing for the chosen mode: serial commits drain
  // the dirty-stream list writers push onto; parallel commits must not (a
  // push from a worker thread would race), so streams are detached and the
  // commit shard checks the per-stream staged flag instead. Streams already
  // dirty (e.g. preloaded by a harness before the first Step) are re-seeded
  // from their flags.
  commit_queue_->clear();
  for (StreamBase* s : streams_) {
    if (parallel_tick_) {
      s->commit_queue_.reset();
    } else {
      s->commit_queue_ = commit_queue_;
      if (s->has_staged()) commit_queue_->push_back(s);
    }
  }
  // Cache each stream's endpoint registration indices so event-mode commit
  // and drain edges arm the neighbour with one array write instead of a
  // pointer lookup. A conflicted stream has an ambiguous endpoint set and
  // gets none (RebuildEventState then demotes the engine to always-active).
  std::unordered_map<const Module*, size_t> index;
  index.reserve(modules_.size());
  for (size_t i = 0; i < modules_.size(); ++i) index[modules_[i]] = i;
  for (StreamBase* s : streams_) {
    s->producer_index_ = StreamBase::kNoEndpoint;
    s->consumer_index_ = StreamBase::kNoEndpoint;
    if (s->bind_conflict()) continue;
    const auto ip = index.find(s->producer());
    const auto ic = index.find(s->consumer());
    if (ip != index.end()) s->producer_index_ = ip->second;
    if (ic != index.end()) s->consumer_index_ = ic->second;
  }
}

bool Engine::TryBuildLevels() {
  // Certification gate: every module must have declared its stream
  // endpoints and promised a self-contained Tick; any stream with an
  // ambiguous writer/reader set vetoes the whole engine.
  for (const Module* m : modules_) {
    if (!m->parallel_safe()) return false;
  }
  for (const StreamBase* s : streams_) {
    if (s->bind_conflict()) return false;
  }
  // Build the dependency levels. Each stream connecting two registered
  // modules is an edge from the lower registration index to the higher —
  // the direction serial ticking makes same-cycle mutations visible in —
  // and the level of a module is the longest such path reaching it. Edges
  // always point from a lower to a higher index, so one pass over edges
  // sorted by target computes longest paths exactly.
  std::unordered_map<const Module*, size_t> index;
  index.reserve(modules_.size());
  for (size_t i = 0; i < modules_.size(); ++i) index[modules_[i]] = i;
  std::vector<std::pair<size_t, size_t>> edges;
  for (const StreamBase* s : streams_) {
    const auto ip = index.find(s->producer());
    const auto ic = index.find(s->consumer());
    if (ip == index.end() || ic == index.end()) continue;
    size_t a = ip->second, b = ic->second;
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    edges.emplace_back(b, a);  // (target, source), for sort-by-target
  }
  std::sort(edges.begin(), edges.end());
  std::vector<uint32_t> level(modules_.size(), 0);
  uint32_t max_level = 0;
  for (const auto& [b, a] : edges) {
    level[b] = std::max(level[b], level[a] + 1);
    max_level = std::max(max_level, level[b]);
  }
  levels_.resize(max_level + 1);
  for (size_t i = 0; i < modules_.size(); ++i) {
    levels_[level[i]].push_back(modules_[i]);
  }
  // Keep the per-module level index so the event dispatcher can bucket an
  // armed subset by level in O(armed).
  module_level_ = std::move(level);
  return true;
}

void Engine::EnableTracing(obs::TraceWriter* writer, TraceOptions options) {
  FPGADP_CHECK(writer != nullptr);
  FPGADP_CHECK(options.sample_period > 0);
  trace_ = std::make_unique<TraceState>();
  trace_->writer = writer;
  trace_->options = std::move(options);
  trace_->pid = writer->NewProcess(trace_->options.label);
  observability_checked_ = true;
  if (!metrics_ && obs::GlobalMetrics() != nullptr) {
    EnableMetrics(obs::GlobalMetrics());
  }
}

void Engine::EnableMetrics(obs::MetricsRegistry* registry) {
  FPGADP_CHECK(registry != nullptr);
  metrics_ = std::make_unique<MetricsState>();
  metrics_->registry = registry;
}

void Engine::SetupObservability() {
  observability_checked_ = true;
  if (!trace_ && obs::GlobalTraceWriter() != nullptr) {
    EnableTracing(obs::GlobalTraceWriter());
  }
  if (!metrics_ && obs::GlobalMetrics() != nullptr) {
    EnableMetrics(obs::GlobalMetrics());
  }
}

void Engine::EnsureProbeSlots() {
  if (trace_) {
    TraceState& t = *trace_;
    while (t.tids.size() < modules_.size()) {
      const size_t i = t.tids.size();
      const int tid = t.writer->NewThread(t.pid, modules_[i]->name());
      t.tids.push_back(tid);
      t.prev_busy.push_back(modules_[i]->busy_cycles());
      t.span_start.push_back(0);
      t.span_open.push_back(false);
      modules_[i]->AttachTrace(t.writer, t.pid, tid);
    }
    while (t.last_depth.size() < streams_.size()) t.last_depth.push_back(-1);
  }
  if (metrics_) {
    MetricsState& m = *metrics_;
    obs::MetricsRegistry& reg = *m.registry;
    // Resolve instrument handles by name once per module/stream; exports
    // and depth samples afterwards touch only cached pointers.
    while (m.module_cursor.size() < modules_.size()) {
      const std::string base =
          "module." + modules_[m.module_cursor.size()]->name();
      MetricsState::ModuleCursor cur;
      cur.busy_c = reg.GetCounter(base + ".busy_cycles");
      cur.starved_c = reg.GetCounter(base + ".starved_cycles");
      cur.blocked_c = reg.GetCounter(base + ".blocked_cycles");
      cur.idle_c = reg.GetCounter(base + ".idle_cycles");
      m.module_cursor.push_back(cur);
    }
    while (m.stream_cursor.size() < streams_.size()) {
      const std::string base =
          "stream." + streams_[m.stream_cursor.size()]->name();
      MetricsState::StreamCursor cur;
      cur.pushed_c = reg.GetCounter(base + ".pushed");
      cur.popped_c = reg.GetCounter(base + ".popped");
      m.stream_cursor.push_back(cur);
    }
    while (m.depth_hist.size() < streams_.size()) {
      m.depth_hist.push_back(reg.GetHistogram(
          "stream." + streams_[m.depth_hist.size()]->name() + ".depth"));
    }
    if (m.cycles_c == nullptr) m.cycles_c = reg.GetCounter("engine.cycles");
  }
}

void Engine::Step() {
  if (!observability_checked_) SetupObservability();
  if (schedule_dirty_) RebuildSchedule();
  // Manual stepping always runs the legacy every-module path; settle any
  // event-mode attribution first so AccountSkip never double-counts a cycle
  // the legacy loop is about to FinalizeTick.
  InvalidateEventState();
  TickAndCommit();
  if (trace_ || metrics_) ProbeStep();
  flushed_ = false;
  ++now_;
}

void Engine::TickAndCommit() {
  // Tick() runs once per module per cycle; by-name metrics lookups (hash +
  // registry mutex) do not belong there. The guard turns any such lookup
  // into an FPGADP_DCHECK failure for the duration of this function;
  // modules cache instrument handles at construction instead. Probes run
  // after the guard is gone — they are allowed (and sampled) lookups.
  [[maybe_unused]] const obs::internal::TickPhaseGuard tick_guard;
  if (parallel_tick_) {
    // Tick phase, one barrier per dependency level. Modules within a level
    // share no stream, so their Ticks are independent; the barrier between
    // levels reproduces serial registration-order visibility exactly.
    for (const auto& lvl : levels_) {
      if (lvl.size() <= kInlineTickThreshold) {
        for (Module* m : lvl) {
          m->Tick(now_);
          m->FinalizeTick();
        }
      } else {
        pool_->ParallelFor(lvl.size(), [&](size_t i) {
          lvl[i]->Tick(now_);
          lvl[i]->FinalizeTick();
        });
      }
    }
    // Commit phase: per-stream state only, embarrassingly parallel. The
    // serial dirty list is detached in this mode (worker pushes would
    // race), so the coordinating thread scans the staged flags — and only
    // dispatches the pool when enough streams actually staged a write. A
    // commit is a handful of pointer updates; paying a pool barrier per
    // cycle for one or two staged streams is the same tiny-level collapse
    // the inline tick threshold above exists to avoid.
    staged_streams_.clear();
    for (StreamBase* s : streams_) {
      if (s->has_staged()) staged_streams_.push_back(s);
    }
    if (staged_streams_.size() > 2 * kInlineTickThreshold) {
      pool_->ParallelFor(staged_streams_.size(),
                         [&](size_t i) { staged_streams_[i]->Commit(); });
    } else {
      for (StreamBase* s : staged_streams_) s->Commit();
    }
  } else {
    for (Module* m : modules_) {
      m->Tick(now_);
      m->FinalizeTick();
    }
    // Commit only the streams that staged a write this cycle — they queued
    // themselves via StreamBase::NoteStaged. Idle streams cost nothing.
    if (!commit_queue_->empty()) {
      for (StreamBase* s : *commit_queue_) s->Commit();
      commit_queue_->clear();
    }
  }
}

void Engine::ProbeStep() {
  EnsureProbeSlots();
  if (trace_) {
    TraceState& t = *trace_;
    for (size_t i = 0; i < modules_.size(); ++i) {
      const uint64_t busy = modules_[i]->busy_cycles();
      if (busy != t.prev_busy[i]) {
        if (!t.span_open[i]) {
          t.span_open[i] = true;
          t.span_start[i] = now_;
        }
      } else if (t.span_open[i]) {
        t.writer->CompleteSpan(t.pid, t.tids[i], "busy", t.span_start[i],
                               now_ - t.span_start[i]);
        t.span_open[i] = false;
      }
      t.prev_busy[i] = busy;
    }
    if (now_ % t.options.sample_period == 0) {
      for (size_t i = 0; i < streams_.size(); ++i) {
        const double depth = static_cast<double>(streams_[i]->Depth());
        if (depth != t.last_depth[i]) {
          t.writer->Counter(t.pid, streams_[i]->name() + ".depth", now_,
                            depth);
          t.last_depth[i] = depth;
        }
      }
      obs::TraceCounterSink sink(t.writer, t.pid, now_);
      for (Module* m : modules_) m->SampleTraceCounters(sink);
    }
  }
  if (metrics_ && now_ % metrics_->sample_period == 0) {
    for (size_t i = 0; i < streams_.size(); ++i) {
      metrics_->depth_hist[i]->Observe(
          static_cast<double>(streams_[i]->Depth()));
    }
  }
}

void Engine::FlushObservers() {
  flushed_ = true;
  if (!trace_ && !metrics_) return;
  EnsureProbeSlots();
  if (trace_) {
    TraceState& t = *trace_;
    for (size_t i = 0; i < modules_.size(); ++i) {
      if (t.span_open[i]) {
        t.writer->CompleteSpan(t.pid, t.tids[i], "busy", t.span_start[i],
                               now_ - t.span_start[i]);
        t.span_open[i] = false;
      }
    }
  }
  if (metrics_) ExportMetrics();
}

void Engine::ExportMetrics() {
  MetricsState& ms = *metrics_;
  obs::MetricsRegistry& reg = *ms.registry;
  for (size_t i = 0; i < modules_.size(); ++i) {
    const Module& m = *modules_[i];
    auto& cur = ms.module_cursor[i];
    cur.busy_c->Inc(m.busy_cycles() - cur.busy);
    cur.starved_c->Inc(m.starved_cycles() - cur.starved);
    cur.blocked_c->Inc(m.blocked_cycles() - cur.blocked);
    cur.idle_c->Inc(m.idle_cycles() - cur.idle);
    cur.busy = m.busy_cycles();
    cur.starved = m.starved_cycles();
    cur.blocked = m.blocked_cycles();
    cur.idle = m.idle_cycles();
    m.ExportCustomMetrics(reg);
  }
  for (size_t i = 0; i < streams_.size(); ++i) {
    const StreamBase& s = *streams_[i];
    auto& cur = ms.stream_cursor[i];
    cur.pushed_c->Inc(s.TotalPushed() - cur.pushed);
    cur.popped_c->Inc(s.TotalPopped() - cur.popped);
    cur.pushed = s.TotalPushed();
    cur.popped = s.TotalPopped();
  }
  ms.cycles_c->Inc(now_ - ms.cycles_cursor);
  ms.cycles_cursor = now_;
}

bool Engine::QuiescedNow() const {
  for (const Module* m : modules_) {
    if (!m->Idle()) return false;
  }
  for (const StreamBase* s : streams_) {
    if (s->InFlight()) return false;
  }
  return true;
}

Cycle Engine::GlobalNextEventCycle() const {
  Cycle earliest = kNoEventCycle;
  for (const Module* m : modules_) {
    const Cycle hint = m->NextEventCycle(now_);
    FPGADP_DCHECK(hint == kNoEventCycle || hint == kAlwaysActive ||
                  hint >= now_);
    // An always-active module must be ticked every cycle: no skip at all.
    if (hint == kAlwaysActive) return now_;
    if (hint < earliest) earliest = hint;
    if (earliest <= now_ + 1) break;  // no skip possible; stop scanning
  }
  return earliest;
}

Result<Cycle> Engine::Run(uint64_t max_cycles) {
  if (!observability_checked_) SetupObservability();
  if (schedule_dirty_) RebuildSchedule();
  // Observers force the legacy path: per-cycle span tracking and periodic
  // sampling need every cycle visited, exactly like the fast-forward gate
  // below. Everything else routes through the event scheduler when selected.
  if (scheduling_ == Scheduling::kEventDriven && !trace_ && !metrics_) {
    return RunEventDriven(max_cycles);
  }
  InvalidateEventState();
  const Cycle limit = now_ + max_cycles;
  // Fast-forward only when observers are off: per-cycle span tracking and
  // periodic sampling need every cycle, and observers must never perturb
  // what they measure — so the skip is what yields, not the probes.
  const bool can_skip = fast_forward_ && !trace_ && !metrics_;
  // Setup and schedule state cannot change while Run is stepping (module
  // registration and SetThreads happen between runs, never inside a Tick),
  // so the loop below inlines Step() minus its per-cycle re-checks.
  const bool observing = trace_ != nullptr || metrics_ != nullptr;
  while (now_ < limit) {
    bool streams_empty = true;
    for (const StreamBase* s : streams_) {
      if (s->InFlight()) {
        streams_empty = false;
        break;
      }
    }
    if (streams_empty) {
      bool all_idle = true;
      for (const Module* m : modules_) {
        if (!m->Idle()) {
          all_idle = false;
          break;
        }
      }
      if (all_idle) {
        FlushObservers();
        return now_;
      }
      if (can_skip) {
        // Nothing moves on the wires and no module can act before the
        // earliest event hint: jump there (clamped to the cycle budget;
        // kNoEventCycle everywhere means a genuine deadlock, which runs
        // the budget out exactly as per-cycle ticking would).
        const Cycle target = std::min(GlobalNextEventCycle(), limit);
        if (target > now_ + 1) {
          for (Module* m : modules_) m->AccountSkip(now_, target);
          now_ = target;
          continue;
        }
      }
    }
    TickAndCommit();
    if (observing) ProbeStep();
    flushed_ = false;
    ++now_;
  }
  FlushObservers();
  if (QuiescedNow()) return now_;
  return Status::Timeout("engine did not quiesce within " +
                         std::to_string(max_cycles) + " cycles");
}

// --- Event-driven core ------------------------------------------------------
//
// Correctness frame: the legacy loop ticks EVERY module EVERY visited cycle,
// so extra ticks are always safe — the only dangerous direction is skipping
// one. A module's tick may be skipped at cycle c only when it is certified
// (SetEventSafe: an unarmed tick is a no-op except for stall attribution,
// which AttributeSkip reproduces in closed form) AND nothing armed it for c.
// Arming is over-approximate everywhere: residual committed items on a bound
// input, any commit on a bound input, a drain of a full bound output, an
// explicit WakeUp, or the module's own NextEventCycle hint each force a tick.

void Engine::RebuildEventState() {
  const size_t n = modules_.size();
  next_run_.assign(n, kNoEventCycle);
  accounted_.assign(n, now_);
  heap_.clear();
  heap_pops_.clear();
  run_now_.clear();
  run_next_.clear();
  run_next_sorted_ = true;
  qc_module_ = kNone;
  qc_stream_ = kNone;
  // A bind-conflicted stream has an ambiguous writer set, so its commit edge
  // cannot be attributed to one endpoint pair; rather than risk a missed
  // wake, demote every module to always-active (exact legacy behavior, just
  // driven from the event loop).
  bool edges_ok = true;
  for (const StreamBase* s : streams_) {
    if (s->bind_conflict()) {
      edges_ok = false;
      break;
    }
  }
  always_active_.clear();
  for (size_t i = 0; i < n; ++i) {
    if (!edges_ok || !modules_[i]->event_safe()) always_active_.push_back(i);
  }
  // Bound-input lists drive the post-tick residual re-arm (ReArmModule).
  bound_inputs_.assign(n, {});
  for (const StreamBase* s : streams_) {
    if (s->consumer_index_ != StreamBase::kNoEndpoint) {
      bound_inputs_[s->consumer_index_].push_back(s);
    }
  }
  // Drain-edge plumbing is serial-only: a push from a worker thread would
  // race. Parallel event mode relies on the certified-module contract that a
  // blocked producer keeps its hint <= now (it re-arms itself every cycle).
  for (StreamBase* s : streams_) {
    s->drained_pending_ = false;
    if (parallel_tick_) {
      s->drain_queue_.reset();
    } else {
      s->drain_queue_ = drain_queue_;
    }
  }
  drain_queue_->clear();
  event_state_valid_ = true;
}

void Engine::InvalidateEventState() {
  if (!event_state_valid_) return;
  // accounted_ may be shorter than modules_ (AddModule since the last
  // rebuild); new modules have no deferred event attribution to settle.
  for (size_t i = 0; i < accounted_.size(); ++i) SettleTo(i, now_);
  event_state_valid_ = false;
  for (StreamBase* s : streams_) {
    s->drain_queue_.reset();
    s->drained_pending_ = false;
  }
  drain_queue_->clear();
}

void Engine::SettleTo(size_t i, Cycle to) {
  if (accounted_[i] >= to) return;
  modules_[i]->AccountSkip(accounted_[i], to);
  accounted_[i] = to;
}

bool Engine::EventQuiesced() {
  // Re-test the cached blocker first: in a steady-state run the same stream
  // (or module) stays occupied for long stretches, making the full scan a
  // once-per-phase cost instead of a per-cycle one. The stream check leads
  // because InFlight() is a non-virtual load — the common per-cycle cost is
  // then identical to the legacy loop's first stream probe — while Idle()
  // is a virtual call.
  if (qc_stream_ != kNone) {
    if (streams_[qc_stream_]->InFlight()) return false;
    qc_stream_ = kNone;
  }
  if (qc_module_ != kNone) {
    if (!modules_[qc_module_]->Idle()) return false;
    qc_module_ = kNone;
  }
  for (size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i]->InFlight()) {
      qc_stream_ = i;
      return false;
    }
  }
  for (size_t i = 0; i < modules_.size(); ++i) {
    if (!modules_[i]->Idle()) {
      qc_module_ = i;
      return false;
    }
  }
  return true;
}

void Engine::BuildRunList(Cycle c) {
  // Pop due calendar entries. The heap is lazy-delete: an entry is live iff
  // it still matches next_run_, so re-arms never search the heap.
  heap_pops_.clear();
  while (!heap_.empty() && heap_.front().first <= c) {
    std::pop_heap(heap_.begin(), heap_.end(), HeapLater);
    const auto [cycle, idx] = heap_.back();
    heap_.pop_back();
    if (next_run_[idx] != cycle) continue;  // stale entry
    // Nothing may be overdue: jumps target the heap head, so a live entry
    // below c would mean a skipped armed tick.
    FPGADP_DCHECK(cycle == c);
    heap_pops_.push_back(idx);
  }
  // Fast path for dense flow-through phases: every armed module was armed
  // for c by the previous cycle's in-order re-arms — the list is already
  // sorted and deduped, so the run list is a pointer swap.
  if (heap_pops_.empty() && always_active_.empty() && run_next_sorted_) {
    std::swap(run_now_, run_next_);
    run_next_.clear();
    return;
  }
  run_now_.clear();
  run_now_.insert(run_now_.end(), run_next_.begin(), run_next_.end());
  run_now_.insert(run_now_.end(), heap_pops_.begin(), heap_pops_.end());
  run_now_.insert(run_now_.end(), always_active_.begin(), always_active_.end());
  std::sort(run_now_.begin(), run_now_.end());
  run_now_.erase(std::unique(run_now_.begin(), run_now_.end()),
                 run_now_.end());
  run_next_.clear();
  run_next_sorted_ = true;
}

void Engine::ArmNext(size_t i) {
  // Always-active modules join every run list; arming them would leave a
  // stale next_run_ behind (they never pass through ReArmModule to clear
  // it). Their next_run_ stays kNoEventCycle forever.
  if (!modules_[i]->event_safe()) return;
  const Cycle nc = now_ + 1;
  if (next_run_[i] == nc) return;  // already queued in run_next_
  next_run_[i] = nc;
  if (!run_next_.empty() && run_next_.back() > i) run_next_sorted_ = false;
  run_next_.push_back(i);
}

void Engine::WakeModule(size_t t) {
  // Wakes are meaningful only while event bookkeeping is live; the legacy
  // loop ticks everyone anyway.
  if (!event_state_valid_) return;
  // Same reasoning inside a saturated phase: every module ticks every
  // cycle, and the phase exit re-arms the world. (accounted_ is also stale
  // there — settling against it would double-count genuinely ticked
  // cycles.)
  if (event_saturated_) return;
  if (!modules_[t]->event_safe()) return;
  if (event_dispatching_) {
    const Cycle c = now_;
    if (next_run_[t] == c) return;  // already runs (or ran) this cycle
    if (t == current_ticking_index_) {
      // Self-wake from inside the module's own Tick: its cycle-c accounting
      // is handled by the dispatch loop; just ask for c+1.
      ArmNext(t);
      return;
    }
    if (t < current_ticking_index_) {
      // The legacy loop ticked t BEFORE the in-flight module mutated it, so
      // t's cycle c stays an unarmed no-op (settled via AttributeSkip using
      // the pre-mutation state — wakers must call WakeUp() before the
      // mutation, see Module::WakeUp) and t runs at c+1.
      SettleTo(t, c + 1);
      ArmNext(t);
      return;
    }
    // t ticks AFTER the in-flight module in registration order, so the
    // legacy loop makes the mutation visible to it this very cycle: arm it
    // for c. If a next-cycle arm is already queued in run_next_, supersede
    // it (leaving it would duplicate t once the c-tick re-arms); a c+1 arm
    // living in the calendar heap instead (a timer hint from an earlier
    // cycle) goes stale on its own when next_run_ is overwritten below.
    if (next_run_[t] == c + 1) {
      const auto it = std::find(run_next_.begin(), run_next_.end(), t);
      if (it != run_next_.end()) run_next_.erase(it);
    }
    SettleTo(t, c);
    next_run_[t] = c;
    // run_now_ is sorted and the dispatch cursor sits at a lower index than
    // t, so the insertion point is always after the cursor — the dispatch
    // loop will reach t later this cycle.
    run_now_.insert(std::lower_bound(run_now_.begin(), run_now_.end(), t), t);
    return;
  }
  // Outside dispatch (harness Submit between runs): arm at now_. Run()
  // re-seeds every certified module on entry anyway, so this is mostly
  // belt-and-braces for state mutated between Run() calls.
  if (next_run_[t] <= now_) return;  // already armed at or before now
  SettleTo(t, now_);
  next_run_[t] = now_;
  heap_.emplace_back(now_, t);
  std::push_heap(heap_.begin(), heap_.end(), HeapLater);
}

void Engine::ReArmModule(size_t i, Cycle c) {
  // Residual committed items on a bound input mean the module has readable
  // work next cycle: arm it without the virtual hint call. This is the hot
  // re-arm path on dense flow-through pipelines.
  for (const StreamBase* s : bound_inputs_[i]) {
    if (s->committed_count_ > 0) {
      ArmNext(i);
      return;
    }
  }
  const Cycle h = modules_[i]->NextEventCycle(c);
  FPGADP_DCHECK(h == kNoEventCycle || h == kAlwaysActive || h >= c);
  if (h == kNoEventCycle) return;  // sleeps until a wake edge
  if (h == kAlwaysActive || h <= c + 1) {
    ArmNext(i);
    return;
  }
  if (next_run_[i] == c + 1) return;  // a wake already armed it sooner
  next_run_[i] = h;
  heap_.emplace_back(h, i);
  std::push_heap(heap_.begin(), heap_.end(), HeapLater);
}

void Engine::SeedAllArmed() {
  heap_.clear();
  run_now_.clear();
  run_next_.clear();
  run_next_sorted_ = true;
  size_t aa = 0;
  for (size_t i = 0; i < modules_.size(); ++i) {
    if (aa < always_active_.size() && always_active_[aa] == i) {
      ++aa;
      next_run_[i] = kNoEventCycle;
      continue;
    }
    next_run_[i] = now_;
    run_next_.push_back(i);
  }
}

void Engine::DispatchCycle(Cycle c) {
  [[maybe_unused]] const obs::internal::TickPhaseGuard tick_guard;
  event_dispatching_ = true;
  if (parallel_tick_ && run_now_.size() > kInlineTickThreshold) {
    // Level-parallel dispatch of the armed set. Re-arms run serially after
    // each level barrier (the heap and run_next_ are not thread-safe);
    // parallel-certified modules never call WakeUp, so workers only touch
    // their own module plus accounted_[i].
    if (level_buckets_.size() < levels_.size()) {
      level_buckets_.resize(levels_.size());
    }
    for (auto& bucket : level_buckets_) bucket.clear();
    for (size_t i : run_now_) level_buckets_[module_level_[i]].push_back(i);
    for (auto& bucket : level_buckets_) {
      if (bucket.empty()) continue;
      if (bucket.size() <= kInlineTickThreshold) {
        for (size_t i : bucket) {
          if (accounted_[i] != c) SettleTo(i, c);
          modules_[i]->Tick(c);
          modules_[i]->FinalizeTick();
          accounted_[i] = c + 1;
        }
      } else {
        pool_->ParallelFor(bucket.size(), [&](size_t k) {
          const size_t i = bucket[k];
          if (accounted_[i] != c) SettleTo(i, c);
          modules_[i]->Tick(c);
          modules_[i]->FinalizeTick();
          accounted_[i] = c + 1;
        });
      }
      for (size_t i : bucket) {
        if (modules_[i]->event_safe()) {
          next_run_[i] = kNoEventCycle;
          ReArmModule(i, c);
        }
      }
    }
  } else {
    // Serial dispatch in registration order. run_now_ may GROW mid-loop
    // (WakeModule inserts later-index targets past the cursor), so the size
    // is re-read every iteration.
    for (size_t cursor = 0; cursor < run_now_.size(); ++cursor) {
      const size_t i = run_now_[cursor];
      current_ticking_index_ = i;
      if (accounted_[i] != c) SettleTo(i, c);
      const bool certified = modules_[i]->event_safe();
      // Clear the arm BEFORE ticking so a self-WakeUp during the tick is
      // seen as a fresh request, and so a hintless sleeper never leaves a
      // stale next_run_ that would swallow a later wake.
      if (certified) next_run_[i] = kNoEventCycle;
      modules_[i]->Tick(c);
      modules_[i]->FinalizeTick();
      accounted_[i] = c + 1;
      if (certified) ReArmModule(i, c);
    }
  }
  event_dispatching_ = false;
  // Commit phase. Committed data becomes readable at c+1, so every commit
  // arms the consumer — the stream edge that lets pure flow-through modules
  // sleep with a kNoEventCycle hint.
  if (parallel_tick_) {
    // The serial dirty list is detached in parallel mode (worker pushes
    // would race); scan the staged flags on the coordinating thread.
    for (StreamBase* s : streams_) {
      if (s->has_staged()) {
        s->Commit();
        if (s->consumer_index_ != StreamBase::kNoEndpoint) {
          ArmNext(s->consumer_index_);
        }
      }
    }
  } else {
    if (!commit_queue_->empty()) {
      for (StreamBase* s : *commit_queue_) {
        s->Commit();
        if (s->consumer_index_ != StreamBase::kNoEndpoint) {
          ArmNext(s->consumer_index_);
        }
      }
      commit_queue_->clear();
    }
    // Drain edges: a stream that went full -> non-full this cycle re-opens
    // a blocked producer's output path for c+1. Belt-and-braces on top of
    // the blocked-producer hint contract.
    if (!drain_queue_->empty()) {
      for (StreamBase* s : *drain_queue_) {
        s->drained_pending_ = false;
        if (s->producer_index_ != StreamBase::kNoEndpoint) {
          ArmNext(s->producer_index_);
        }
      }
      drain_queue_->clear();
    }
  }
}

Result<Cycle> Engine::RunEventDriven(uint64_t max_cycles) {
  const Cycle limit = now_ + max_cycles;
  if (!event_state_valid_) RebuildEventState();
  // Entry seeding: harnesses may have preloaded streams, committed them
  // manually, swapped fault injectors, or submitted work without a wake
  // since the last Run() — none of which a previous run's sleep decisions
  // can know about. Arm every certified module once at now_ and drop the
  // stale calendar; one no-op tick per module per Run() is
  // attribution-identical by the event-safe contract, and timer re-arms
  // repopulate the heap from fresh hints.
  SeedAllArmed();
  qc_module_ = kNone;
  qc_stream_ = kNone;
  dense_streak_ = 0;
  while (now_ < limit) {
    // Quiescence is checked every VISITED cycle, like the legacy loop; the
    // gaps in between are provably frozen (unarmed certified modules do not
    // tick, and Idle()/InFlight() are pure state functions), so no jump can
    // overshoot the quiesce cycle.
    if (EventQuiesced()) {
      for (size_t i = 0; i < modules_.size(); ++i) SettleTo(i, now_);
      FlushObservers();
      return now_;
    }
    BuildRunList(now_);
    if (run_now_.empty()) {
      if (commit_queue_->empty()) {
        // Nothing armed and nothing staged: state is frozen until the next
        // calendar entry. Jump there (clamped to the budget; an empty heap
        // is a genuine deadlock, which runs the budget out just as
        // per-cycle ticking would). Attribution settles lazily.
        const Cycle head = heap_.empty() ? kNoEventCycle : heap_.front().first;
        now_ = std::min(head, limit);
        dense_streak_ = 0;
        continue;
      }
      // A harness staged writes between runs: dispatch a commit-only cycle
      // so the commit edge arms the consumers.
    } else if (fast_forward_ && !always_active_.empty() &&
               run_now_.size() == always_active_.size()) {
      // The run list is exactly the always-active set (it is always a
      // subset). Those modules carry no event certification, so they can
      // only be skipped under the legacy fast-forward conditions: every
      // stream empty and every hint beyond now_+1.
      bool streams_empty = true;
      for (const StreamBase* s : streams_) {
        if (s->InFlight()) {
          streams_empty = false;
          break;
        }
      }
      if (streams_empty) {
        Cycle target = heap_.empty() ? kNoEventCycle : heap_.front().first;
        for (size_t i : always_active_) {
          const Cycle hint = modules_[i]->NextEventCycle(now_);
          FPGADP_DCHECK(hint == kNoEventCycle || hint == kAlwaysActive ||
                        hint >= now_);
          if (hint == kAlwaysActive) {
            target = now_;
            break;
          }
          if (hint < target) target = hint;
          if (target <= now_ + 1) break;
        }
        if (target > now_ + 1) {
          // The armed set re-forms at the target: always-active modules
          // join every run list and the calendar entry that defined the
          // target is still queued. (run_now_ is discarded, not consumed —
          // nothing in it was de-armed.)
          now_ = std::min(target, limit);
          dense_streak_ = 0;
          continue;
        }
      }
    }
    if (run_now_.size() == modules_.size()) {
      // A full run list means the cycle costs exactly what the legacy loop
      // charges, plus the arming bookkeeping on top — dispatching a full
      // list is never cheaper than just ticking everyone. After a streak of
      // such cycles (hysteresis: the phase exit below costs O(modules)),
      // drop into a saturated inner loop that runs the legacy tick body
      // with zero scheduling overhead. Leave it only on a sustained LULL:
      // the loop samples the busy-cycle sum once per kSaturationLullCycles
      // window and exits when a whole window accrued fewer busy-marks than
      // a single fully-busy cycle would — a phase quiet enough that
      // sleeping modules must pay. Scattered stall cycles inside a dense
      // phase (a blocked producer, a memory channel waiting out latency)
      // never trip it; exiting on the first such cycle made full-armed-
      // but-stalling topologies (incast, memory-bound pipelines) thrash
      // the O(modules) boundary every few cycles. Extra ticks are always
      // safe, so the only cost of a late exit is wall-clock, never
      // correctness.
      //
      // The streak counter resets on every jump: entry therefore follows a
      // full *dispatched* cycle, which left accounted_[i] == now_ for every
      // module — the fast loop's real per-cycle ticks keep attribution
      // exact on their own, so no settling is pending while it runs.
      if (dense_streak_ >= kDenseStreakCycles) {
        event_saturated_ = true;
        uint64_t prev_busy = 0;
        for (const Module* m : modules_) prev_busy += m->busy_cycles();
        uint32_t probe_in = kSaturationLullCycles;
        // Hoisted out of the loop: nothing inside reads flushed_, and the
        // streak that got us here already cleared it.
        flushed_ = false;
        std::vector<StreamBase*>* const cq = commit_queue_.get();
        while (now_ < limit) {
          // Inline quiesce check with the legacy loop's exact shape (first
          // in-flight stream answers in one non-virtual load); an
          // out-of-line EventQuiesced() call here measurably taxed the
          // ~tens-of-ns cycle body on saturated dense pipelines.
          bool streams_empty = true;
          for (const StreamBase* s : streams_) {
            if (s->InFlight()) {
              streams_empty = false;
              break;
            }
          }
          if (streams_empty) {
            bool all_idle = true;
            for (const Module* m : modules_) {
              if (!m->Idle()) {
                all_idle = false;
                break;
              }
            }
            if (all_idle) break;
          }
          if (parallel_tick_) {
            TickAndCommit();
          } else {
            // Serial TickAndCommit body inlined, commit queue deref
            // hoisted: the saturated loop is the one place the engine
            // spends whole phases in a ~tens-of-ns cycle body, so the
            // call + mode branch + shared_ptr chase are worth shaving.
            [[maybe_unused]] const obs::internal::TickPhaseGuard tick_guard;
            for (Module* m : modules_) {
              m->Tick(now_);
              m->FinalizeTick();
            }
            if (!cq->empty()) {
              for (StreamBase* s : *cq) s->Commit();
              cq->clear();
            }
          }
          ++now_;
          if (--probe_in == 0) {
            uint64_t busy = 0;
            for (const Module* m : modules_) busy += m->busy_cycles();
            if (busy - prev_busy < modules_.size()) break;
            prev_busy = busy;
            probe_in = kSaturationLullCycles;
          }
        }
        event_saturated_ = false;
        dense_streak_ = 0;
        // Every fast-loop cycle was genuinely ticked and attributed by
        // FinalizeTick, so attribution simply advances; arming restarts
        // from a full seed, which also supersedes any drain edges recorded
        // during the phase.
        for (size_t i = 0; i < accounted_.size(); ++i) accounted_[i] = now_;
        SeedAllArmed();
        for (StreamBase* s : *drain_queue_) s->drained_pending_ = false;
        drain_queue_->clear();
        continue;
      }
      DispatchCycle(now_);
      ++dense_streak_;
      flushed_ = false;
      ++now_;
      continue;
    }
    dense_streak_ = 0;
    DispatchCycle(now_);
    flushed_ = false;
    ++now_;
  }
  // Budget exhausted (or a jump clamped to it): settle every module through
  // the final cycle, then classify exactly like the legacy loop.
  for (size_t i = 0; i < modules_.size(); ++i) SettleTo(i, now_);
  FlushObservers();
  if (QuiescedNow()) return now_;
  return Status::Timeout("engine did not quiesce within " +
                         std::to_string(max_cycles) + " cycles");
}

double Engine::ElapsedSeconds() const {
  return CyclesToSeconds(now_, clock_hz_);
}

std::string Engine::UtilizationReport() const {
  std::ostringstream os;
  const auto pct = [this](uint64_t cycles) {
    const double p = now_ == 0 ? 0.0
                               : 100.0 * static_cast<double>(cycles) /
                                     static_cast<double>(now_);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.1f", p);
    return std::string(buf);
  };
  for (const Module* m : modules_) {
    os << m->name() << ": busy " << m->busy_cycles() << "/" << now_ << " ("
       << pct(m->busy_cycles()) << "%), starved " << pct(m->starved_cycles())
       << "%, blocked " << pct(m->blocked_cycles()) << "%, idle "
       << pct(m->idle_cycles()) << "%\n";
  }
  return os.str();
}

}  // namespace fpgadp::sim
