#include "src/sim/engine.h"

#include <cstdio>
#include <sstream>

#include "src/common/check.h"
#include "src/common/units.h"

namespace fpgadp::sim {

void Engine::AddModule(Module* module) {
  FPGADP_CHECK(module != nullptr);
  modules_.push_back(module);
}

void Engine::AddStream(StreamBase* stream) {
  FPGADP_CHECK(stream != nullptr);
  streams_.push_back(stream);
}

void Engine::EnableTracing(obs::TraceWriter* writer, TraceOptions options) {
  FPGADP_CHECK(writer != nullptr);
  FPGADP_CHECK(options.sample_period > 0);
  trace_ = std::make_unique<TraceState>();
  trace_->writer = writer;
  trace_->options = std::move(options);
  trace_->pid = writer->NewProcess(trace_->options.label);
  observability_checked_ = true;
  if (!metrics_ && obs::GlobalMetrics() != nullptr) {
    EnableMetrics(obs::GlobalMetrics());
  }
}

void Engine::EnableMetrics(obs::MetricsRegistry* registry) {
  FPGADP_CHECK(registry != nullptr);
  metrics_ = std::make_unique<MetricsState>();
  metrics_->registry = registry;
}

void Engine::SetupObservability() {
  observability_checked_ = true;
  if (!trace_ && obs::GlobalTraceWriter() != nullptr) {
    EnableTracing(obs::GlobalTraceWriter());
  }
  if (!metrics_ && obs::GlobalMetrics() != nullptr) {
    EnableMetrics(obs::GlobalMetrics());
  }
}

void Engine::EnsureProbeSlots() {
  if (trace_) {
    TraceState& t = *trace_;
    while (t.tids.size() < modules_.size()) {
      const size_t i = t.tids.size();
      const int tid = t.writer->NewThread(t.pid, modules_[i]->name());
      t.tids.push_back(tid);
      t.prev_busy.push_back(modules_[i]->busy_cycles());
      t.span_start.push_back(0);
      t.span_open.push_back(false);
      modules_[i]->AttachTrace(t.writer, t.pid, tid);
    }
    while (t.last_depth.size() < streams_.size()) t.last_depth.push_back(-1);
  }
  if (metrics_) {
    MetricsState& m = *metrics_;
    m.module_cursor.resize(modules_.size());
    m.stream_cursor.resize(streams_.size(), {0, 0});
    while (m.depth_hist.size() < streams_.size()) {
      m.depth_hist.push_back(m.registry->GetHistogram(
          "stream." + streams_[m.depth_hist.size()]->name() + ".depth"));
    }
  }
}

void Engine::Step() {
  if (!observability_checked_) SetupObservability();
  for (Module* m : modules_) {
    m->Tick(now_);
    m->FinalizeTick();
  }
  for (StreamBase* s : streams_) s->Commit();
  if (trace_ || metrics_) ProbeStep();
  ++now_;
}

void Engine::ProbeStep() {
  EnsureProbeSlots();
  if (trace_) {
    TraceState& t = *trace_;
    for (size_t i = 0; i < modules_.size(); ++i) {
      const uint64_t busy = modules_[i]->busy_cycles();
      if (busy != t.prev_busy[i]) {
        if (!t.span_open[i]) {
          t.span_open[i] = true;
          t.span_start[i] = now_;
        }
      } else if (t.span_open[i]) {
        t.writer->CompleteSpan(t.pid, t.tids[i], "busy", t.span_start[i],
                               now_ - t.span_start[i]);
        t.span_open[i] = false;
      }
      t.prev_busy[i] = busy;
    }
    if (now_ % t.options.sample_period == 0) {
      for (size_t i = 0; i < streams_.size(); ++i) {
        const double depth = static_cast<double>(streams_[i]->Depth());
        if (depth != t.last_depth[i]) {
          t.writer->Counter(t.pid, streams_[i]->name() + ".depth", now_,
                            depth);
          t.last_depth[i] = depth;
        }
      }
      obs::TraceCounterSink sink(t.writer, t.pid, now_);
      for (Module* m : modules_) m->SampleTraceCounters(sink);
    }
  }
  if (metrics_ && now_ % metrics_->sample_period == 0) {
    for (size_t i = 0; i < streams_.size(); ++i) {
      metrics_->depth_hist[i]->Observe(
          static_cast<double>(streams_[i]->Depth()));
    }
  }
}

void Engine::FlushObservers() {
  if (!trace_ && !metrics_) return;
  EnsureProbeSlots();
  if (trace_) {
    TraceState& t = *trace_;
    for (size_t i = 0; i < modules_.size(); ++i) {
      if (t.span_open[i]) {
        t.writer->CompleteSpan(t.pid, t.tids[i], "busy", t.span_start[i],
                               now_ - t.span_start[i]);
        t.span_open[i] = false;
      }
    }
  }
  if (metrics_) ExportMetrics();
}

void Engine::ExportMetrics() {
  MetricsState& ms = *metrics_;
  obs::MetricsRegistry& reg = *ms.registry;
  for (size_t i = 0; i < modules_.size(); ++i) {
    const Module& m = *modules_[i];
    auto& cur = ms.module_cursor[i];
    const std::string base = "module." + m.name();
    reg.GetCounter(base + ".busy_cycles")->Inc(m.busy_cycles() - cur.busy);
    reg.GetCounter(base + ".starved_cycles")
        ->Inc(m.starved_cycles() - cur.starved);
    reg.GetCounter(base + ".blocked_cycles")
        ->Inc(m.blocked_cycles() - cur.blocked);
    reg.GetCounter(base + ".idle_cycles")->Inc(m.idle_cycles() - cur.idle);
    cur = {m.busy_cycles(), m.starved_cycles(), m.blocked_cycles(),
           m.idle_cycles()};
    m.ExportCustomMetrics(reg);
  }
  for (size_t i = 0; i < streams_.size(); ++i) {
    const StreamBase& s = *streams_[i];
    auto& [pushed, popped] = ms.stream_cursor[i];
    const std::string base = "stream." + s.name();
    reg.GetCounter(base + ".pushed")->Inc(s.TotalPushed() - pushed);
    reg.GetCounter(base + ".popped")->Inc(s.TotalPopped() - popped);
    pushed = s.TotalPushed();
    popped = s.TotalPopped();
  }
  reg.GetCounter("engine.cycles")->Inc(now_ - ms.cycles_cursor);
  ms.cycles_cursor = now_;
}

bool Engine::QuiescedNow() const {
  for (const Module* m : modules_) {
    if (!m->Idle()) return false;
  }
  for (const StreamBase* s : streams_) {
    if (s->InFlight()) return false;
  }
  return true;
}

Result<Cycle> Engine::Run(uint64_t max_cycles) {
  for (uint64_t i = 0; i < max_cycles; ++i) {
    if (QuiescedNow()) {
      FlushObservers();
      return now_;
    }
    Step();
  }
  FlushObservers();
  if (QuiescedNow()) return now_;
  return Status::Timeout("engine did not quiesce within " +
                         std::to_string(max_cycles) + " cycles");
}

double Engine::ElapsedSeconds() const {
  return CyclesToSeconds(now_, clock_hz_);
}

std::string Engine::UtilizationReport() const {
  std::ostringstream os;
  const auto pct = [this](uint64_t cycles) {
    const double p = now_ == 0 ? 0.0
                               : 100.0 * static_cast<double>(cycles) /
                                     static_cast<double>(now_);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.1f", p);
    return std::string(buf);
  };
  for (const Module* m : modules_) {
    os << m->name() << ": busy " << m->busy_cycles() << "/" << now_ << " ("
       << pct(m->busy_cycles()) << "%), starved " << pct(m->starved_cycles())
       << "%, blocked " << pct(m->blocked_cycles()) << "%, idle "
       << pct(m->idle_cycles()) << "%\n";
  }
  return os.str();
}

}  // namespace fpgadp::sim
