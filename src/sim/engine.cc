#include "src/sim/engine.h"

#include <sstream>

#include "src/common/check.h"
#include "src/common/units.h"

namespace fpgadp::sim {

void Engine::AddModule(Module* module) {
  FPGADP_CHECK(module != nullptr);
  modules_.push_back(module);
}

void Engine::AddStream(StreamBase* stream) {
  FPGADP_CHECK(stream != nullptr);
  streams_.push_back(stream);
}

void Engine::Step() {
  for (Module* m : modules_) m->Tick(now_);
  for (StreamBase* s : streams_) s->Commit();
  ++now_;
}

bool Engine::QuiescedNow() const {
  for (const Module* m : modules_) {
    if (!m->Idle()) return false;
  }
  for (const StreamBase* s : streams_) {
    if (s->InFlight()) return false;
  }
  return true;
}

Result<Cycle> Engine::Run(uint64_t max_cycles) {
  for (uint64_t i = 0; i < max_cycles; ++i) {
    if (QuiescedNow()) return now_;
    Step();
  }
  if (QuiescedNow()) return now_;
  return Status::Timeout("engine did not quiesce within " +
                         std::to_string(max_cycles) + " cycles");
}

double Engine::ElapsedSeconds() const {
  return CyclesToSeconds(now_, clock_hz_);
}

std::string Engine::UtilizationReport() const {
  std::ostringstream os;
  for (const Module* m : modules_) {
    const double util =
        now_ == 0 ? 0.0
                  : 100.0 * static_cast<double>(m->busy_cycles()) /
                        static_cast<double>(now_);
    os << m->name() << ": busy " << m->busy_cycles() << "/" << now_ << " ("
       << static_cast<int>(util) << "%)\n";
  }
  return os.str();
}

}  // namespace fpgadp::sim
