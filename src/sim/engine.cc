#include "src/sim/engine.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "src/common/check.h"
#include "src/common/units.h"
#include "src/sim/thread_pool.h"

namespace fpgadp::sim {

namespace {
uint32_t g_default_threads = 1;
bool g_default_fast_forward = true;
}  // namespace

void SetDefaultEngineThreads(uint32_t n) {
  g_default_threads = n == 0 ? 1 : n;
}
uint32_t DefaultEngineThreads() { return g_default_threads; }
void SetDefaultFastForward(bool on) { g_default_fast_forward = on; }
bool DefaultFastForward() { return g_default_fast_forward; }

Engine::Engine(double clock_hz)
    : clock_hz_(clock_hz),
      fast_forward_(g_default_fast_forward),
      threads_(g_default_threads) {}

Engine::~Engine() {
  // Safety net for manually stepped harnesses that forget the final flush;
  // a Run()-driven engine has already flushed, so this stays a no-op (and
  // never touches modules that might not outlive an oddly-ordered scope).
  // Streams attached to the commit queue need no detach here: the queue is
  // shared-owned, so it outlives whichever of engine/stream dies last.
  if (!flushed_) FlushObservers();
}

void Engine::AddModule(Module* module) {
  FPGADP_CHECK(module != nullptr);
  modules_.push_back(module);
  schedule_dirty_ = true;
}

void Engine::AddStream(StreamBase* stream) {
  FPGADP_CHECK(stream != nullptr);
  streams_.push_back(stream);
  schedule_dirty_ = true;
}

void Engine::SetThreads(uint32_t n) {
  threads_ = n == 0 ? 1 : n;
  pool_.reset();
  schedule_dirty_ = true;
}

void Engine::RebuildSchedule() {
  schedule_dirty_ = false;
  levels_.clear();
  parallel_tick_ = false;
  if (threads_ <= 1) {
    pool_.reset();
  } else {
    if (!pool_ || pool_->num_threads() != threads_) {
      pool_ = std::make_unique<ThreadPool>(threads_);
    }
    parallel_tick_ = TryBuildLevels();
  }
  // Wire the commit-skip plumbing for the chosen mode: serial commits drain
  // the dirty-stream list writers push onto; parallel commits must not (a
  // push from a worker thread would race), so streams are detached and the
  // commit shard checks the per-stream staged flag instead. Streams already
  // dirty (e.g. preloaded by a harness before the first Step) are re-seeded
  // from their flags.
  commit_queue_->clear();
  for (StreamBase* s : streams_) {
    if (parallel_tick_) {
      s->commit_queue_.reset();
    } else {
      s->commit_queue_ = commit_queue_;
      if (s->has_staged()) commit_queue_->push_back(s);
    }
  }
}

bool Engine::TryBuildLevels() {
  // Certification gate: every module must have declared its stream
  // endpoints and promised a self-contained Tick; any stream with an
  // ambiguous writer/reader set vetoes the whole engine.
  for (const Module* m : modules_) {
    if (!m->parallel_safe()) return false;
  }
  for (const StreamBase* s : streams_) {
    if (s->bind_conflict()) return false;
  }
  // Build the dependency levels. Each stream connecting two registered
  // modules is an edge from the lower registration index to the higher —
  // the direction serial ticking makes same-cycle mutations visible in —
  // and the level of a module is the longest such path reaching it. Edges
  // always point from a lower to a higher index, so one pass over edges
  // sorted by target computes longest paths exactly.
  std::unordered_map<const Module*, size_t> index;
  index.reserve(modules_.size());
  for (size_t i = 0; i < modules_.size(); ++i) index[modules_[i]] = i;
  std::vector<std::pair<size_t, size_t>> edges;
  for (const StreamBase* s : streams_) {
    const auto ip = index.find(s->producer());
    const auto ic = index.find(s->consumer());
    if (ip == index.end() || ic == index.end()) continue;
    size_t a = ip->second, b = ic->second;
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    edges.emplace_back(b, a);  // (target, source), for sort-by-target
  }
  std::sort(edges.begin(), edges.end());
  std::vector<uint32_t> level(modules_.size(), 0);
  uint32_t max_level = 0;
  for (const auto& [b, a] : edges) {
    level[b] = std::max(level[b], level[a] + 1);
    max_level = std::max(max_level, level[b]);
  }
  levels_.resize(max_level + 1);
  for (size_t i = 0; i < modules_.size(); ++i) {
    levels_[level[i]].push_back(modules_[i]);
  }
  return true;
}

void Engine::EnableTracing(obs::TraceWriter* writer, TraceOptions options) {
  FPGADP_CHECK(writer != nullptr);
  FPGADP_CHECK(options.sample_period > 0);
  trace_ = std::make_unique<TraceState>();
  trace_->writer = writer;
  trace_->options = std::move(options);
  trace_->pid = writer->NewProcess(trace_->options.label);
  observability_checked_ = true;
  if (!metrics_ && obs::GlobalMetrics() != nullptr) {
    EnableMetrics(obs::GlobalMetrics());
  }
}

void Engine::EnableMetrics(obs::MetricsRegistry* registry) {
  FPGADP_CHECK(registry != nullptr);
  metrics_ = std::make_unique<MetricsState>();
  metrics_->registry = registry;
}

void Engine::SetupObservability() {
  observability_checked_ = true;
  if (!trace_ && obs::GlobalTraceWriter() != nullptr) {
    EnableTracing(obs::GlobalTraceWriter());
  }
  if (!metrics_ && obs::GlobalMetrics() != nullptr) {
    EnableMetrics(obs::GlobalMetrics());
  }
}

void Engine::EnsureProbeSlots() {
  if (trace_) {
    TraceState& t = *trace_;
    while (t.tids.size() < modules_.size()) {
      const size_t i = t.tids.size();
      const int tid = t.writer->NewThread(t.pid, modules_[i]->name());
      t.tids.push_back(tid);
      t.prev_busy.push_back(modules_[i]->busy_cycles());
      t.span_start.push_back(0);
      t.span_open.push_back(false);
      modules_[i]->AttachTrace(t.writer, t.pid, tid);
    }
    while (t.last_depth.size() < streams_.size()) t.last_depth.push_back(-1);
  }
  if (metrics_) {
    MetricsState& m = *metrics_;
    obs::MetricsRegistry& reg = *m.registry;
    // Resolve instrument handles by name once per module/stream; exports
    // and depth samples afterwards touch only cached pointers.
    while (m.module_cursor.size() < modules_.size()) {
      const std::string base =
          "module." + modules_[m.module_cursor.size()]->name();
      MetricsState::ModuleCursor cur;
      cur.busy_c = reg.GetCounter(base + ".busy_cycles");
      cur.starved_c = reg.GetCounter(base + ".starved_cycles");
      cur.blocked_c = reg.GetCounter(base + ".blocked_cycles");
      cur.idle_c = reg.GetCounter(base + ".idle_cycles");
      m.module_cursor.push_back(cur);
    }
    while (m.stream_cursor.size() < streams_.size()) {
      const std::string base =
          "stream." + streams_[m.stream_cursor.size()]->name();
      MetricsState::StreamCursor cur;
      cur.pushed_c = reg.GetCounter(base + ".pushed");
      cur.popped_c = reg.GetCounter(base + ".popped");
      m.stream_cursor.push_back(cur);
    }
    while (m.depth_hist.size() < streams_.size()) {
      m.depth_hist.push_back(reg.GetHistogram(
          "stream." + streams_[m.depth_hist.size()]->name() + ".depth"));
    }
    if (m.cycles_c == nullptr) m.cycles_c = reg.GetCounter("engine.cycles");
  }
}

void Engine::Step() {
  if (!observability_checked_) SetupObservability();
  if (schedule_dirty_) RebuildSchedule();
  TickAndCommit();
  if (trace_ || metrics_) ProbeStep();
  flushed_ = false;
  ++now_;
}

void Engine::TickAndCommit() {
  // Tick() runs once per module per cycle; by-name metrics lookups (hash +
  // registry mutex) do not belong there. The guard turns any such lookup
  // into an FPGADP_DCHECK failure for the duration of this function;
  // modules cache instrument handles at construction instead. Probes run
  // after the guard is gone — they are allowed (and sampled) lookups.
  [[maybe_unused]] const obs::internal::TickPhaseGuard tick_guard;
  if (parallel_tick_) {
    // Tick phase, one barrier per dependency level. Modules within a level
    // share no stream, so their Ticks are independent; the barrier between
    // levels reproduces serial registration-order visibility exactly.
    for (const auto& lvl : levels_) {
      if (lvl.size() == 1) {
        lvl[0]->Tick(now_);
        lvl[0]->FinalizeTick();
      } else {
        pool_->ParallelFor(lvl.size(), [&](size_t i) {
          lvl[i]->Tick(now_);
          lvl[i]->FinalizeTick();
        });
      }
    }
    // Commit phase: per-stream state only, embarrassingly parallel. Only
    // streams whose staged flag is set need the index fold (the serial
    // dirty list is detached in this mode — worker pushes would race).
    if (streams_.size() >= 8) {
      pool_->ParallelFor(streams_.size(), [&](size_t i) {
        if (streams_[i]->has_staged()) streams_[i]->Commit();
      });
    } else {
      for (StreamBase* s : streams_) {
        if (s->has_staged()) s->Commit();
      }
    }
  } else {
    for (Module* m : modules_) {
      m->Tick(now_);
      m->FinalizeTick();
    }
    // Commit only the streams that staged a write this cycle — they queued
    // themselves via StreamBase::NoteStaged. Idle streams cost nothing.
    if (!commit_queue_->empty()) {
      for (StreamBase* s : *commit_queue_) s->Commit();
      commit_queue_->clear();
    }
  }
}

void Engine::ProbeStep() {
  EnsureProbeSlots();
  if (trace_) {
    TraceState& t = *trace_;
    for (size_t i = 0; i < modules_.size(); ++i) {
      const uint64_t busy = modules_[i]->busy_cycles();
      if (busy != t.prev_busy[i]) {
        if (!t.span_open[i]) {
          t.span_open[i] = true;
          t.span_start[i] = now_;
        }
      } else if (t.span_open[i]) {
        t.writer->CompleteSpan(t.pid, t.tids[i], "busy", t.span_start[i],
                               now_ - t.span_start[i]);
        t.span_open[i] = false;
      }
      t.prev_busy[i] = busy;
    }
    if (now_ % t.options.sample_period == 0) {
      for (size_t i = 0; i < streams_.size(); ++i) {
        const double depth = static_cast<double>(streams_[i]->Depth());
        if (depth != t.last_depth[i]) {
          t.writer->Counter(t.pid, streams_[i]->name() + ".depth", now_,
                            depth);
          t.last_depth[i] = depth;
        }
      }
      obs::TraceCounterSink sink(t.writer, t.pid, now_);
      for (Module* m : modules_) m->SampleTraceCounters(sink);
    }
  }
  if (metrics_ && now_ % metrics_->sample_period == 0) {
    for (size_t i = 0; i < streams_.size(); ++i) {
      metrics_->depth_hist[i]->Observe(
          static_cast<double>(streams_[i]->Depth()));
    }
  }
}

void Engine::FlushObservers() {
  flushed_ = true;
  if (!trace_ && !metrics_) return;
  EnsureProbeSlots();
  if (trace_) {
    TraceState& t = *trace_;
    for (size_t i = 0; i < modules_.size(); ++i) {
      if (t.span_open[i]) {
        t.writer->CompleteSpan(t.pid, t.tids[i], "busy", t.span_start[i],
                               now_ - t.span_start[i]);
        t.span_open[i] = false;
      }
    }
  }
  if (metrics_) ExportMetrics();
}

void Engine::ExportMetrics() {
  MetricsState& ms = *metrics_;
  obs::MetricsRegistry& reg = *ms.registry;
  for (size_t i = 0; i < modules_.size(); ++i) {
    const Module& m = *modules_[i];
    auto& cur = ms.module_cursor[i];
    cur.busy_c->Inc(m.busy_cycles() - cur.busy);
    cur.starved_c->Inc(m.starved_cycles() - cur.starved);
    cur.blocked_c->Inc(m.blocked_cycles() - cur.blocked);
    cur.idle_c->Inc(m.idle_cycles() - cur.idle);
    cur.busy = m.busy_cycles();
    cur.starved = m.starved_cycles();
    cur.blocked = m.blocked_cycles();
    cur.idle = m.idle_cycles();
    m.ExportCustomMetrics(reg);
  }
  for (size_t i = 0; i < streams_.size(); ++i) {
    const StreamBase& s = *streams_[i];
    auto& cur = ms.stream_cursor[i];
    cur.pushed_c->Inc(s.TotalPushed() - cur.pushed);
    cur.popped_c->Inc(s.TotalPopped() - cur.popped);
    cur.pushed = s.TotalPushed();
    cur.popped = s.TotalPopped();
  }
  ms.cycles_c->Inc(now_ - ms.cycles_cursor);
  ms.cycles_cursor = now_;
}

bool Engine::QuiescedNow() const {
  for (const Module* m : modules_) {
    if (!m->Idle()) return false;
  }
  for (const StreamBase* s : streams_) {
    if (s->InFlight()) return false;
  }
  return true;
}

Cycle Engine::EarliestEvent() const {
  Cycle earliest = kNoEventCycle;
  for (const Module* m : modules_) {
    const Cycle hint = m->NextEventCycle(now_);
    if (hint < earliest) earliest = hint;
    if (earliest <= now_ + 1) break;  // no skip possible; stop scanning
  }
  return earliest;
}

Result<Cycle> Engine::Run(uint64_t max_cycles) {
  if (!observability_checked_) SetupObservability();
  if (schedule_dirty_) RebuildSchedule();
  const Cycle limit = now_ + max_cycles;
  // Fast-forward only when observers are off: per-cycle span tracking and
  // periodic sampling need every cycle, and observers must never perturb
  // what they measure — so the skip is what yields, not the probes.
  const bool can_skip = fast_forward_ && !trace_ && !metrics_;
  // Setup and schedule state cannot change while Run is stepping (module
  // registration and SetThreads happen between runs, never inside a Tick),
  // so the loop below inlines Step() minus its per-cycle re-checks.
  const bool observing = trace_ != nullptr || metrics_ != nullptr;
  while (now_ < limit) {
    bool streams_empty = true;
    for (const StreamBase* s : streams_) {
      if (s->InFlight()) {
        streams_empty = false;
        break;
      }
    }
    if (streams_empty) {
      bool all_idle = true;
      for (const Module* m : modules_) {
        if (!m->Idle()) {
          all_idle = false;
          break;
        }
      }
      if (all_idle) {
        FlushObservers();
        return now_;
      }
      if (can_skip) {
        // Nothing moves on the wires and no module can act before the
        // earliest event hint: jump there (clamped to the cycle budget;
        // kNoEventCycle everywhere means a genuine deadlock, which runs
        // the budget out exactly as per-cycle ticking would).
        const Cycle target = std::min(EarliestEvent(), limit);
        if (target > now_ + 1) {
          for (Module* m : modules_) m->AccountSkip(now_, target);
          now_ = target;
          continue;
        }
      }
    }
    TickAndCommit();
    if (observing) ProbeStep();
    flushed_ = false;
    ++now_;
  }
  FlushObservers();
  if (QuiescedNow()) return now_;
  return Status::Timeout("engine did not quiesce within " +
                         std::to_string(max_cycles) + " cycles");
}

double Engine::ElapsedSeconds() const {
  return CyclesToSeconds(now_, clock_hz_);
}

std::string Engine::UtilizationReport() const {
  std::ostringstream os;
  const auto pct = [this](uint64_t cycles) {
    const double p = now_ == 0 ? 0.0
                               : 100.0 * static_cast<double>(cycles) /
                                     static_cast<double>(now_);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.1f", p);
    return std::string(buf);
  };
  for (const Module* m : modules_) {
    os << m->name() << ": busy " << m->busy_cycles() << "/" << now_ << " ("
       << pct(m->busy_cycles()) << "%), starved " << pct(m->starved_cycles())
       << "%, blocked " << pct(m->blocked_cycles()) << "%, idle "
       << pct(m->idle_cycles()) << "%\n";
  }
  return os.str();
}

}  // namespace fpgadp::sim
