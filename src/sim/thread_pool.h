#ifndef FPGADP_SIM_THREAD_POOL_H_
#define FPGADP_SIM_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fpgadp::sim {

/// A persistent fork/join worker pool sized for per-cycle dispatch: the
/// calling thread participates in every ParallelFor (so a pool of size N
/// spawns N-1 workers), indices are claimed from a shared atomic so load
/// imbalance self-schedules, and workers park on a condition variable
/// between cycles rather than spinning — on an oversubscribed host (CI
/// containers often expose a single core) a sleeping pool degrades to
/// roughly serial speed instead of burning the core on barrier spins.
///
/// ParallelFor is a full barrier: it returns only after every index has
/// been processed, and the mutex hand-offs on both edges give the caller
/// release/acquire visibility of everything the workers wrote (and vice
/// versa for the next dispatch). That is the memory model the engine's
/// tick/commit phases rely on.
class ThreadPool {
 public:
  /// `num_threads` counts the caller: ThreadPool(4) spawns 3 workers.
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Invokes `body(i)` for every i in [0, n), spread across the pool plus
  /// the calling thread; returns after all n calls finished.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size()) + 1;
  }

 private:
  void WorkerMain();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here between epochs
  std::condition_variable done_cv_;   // the caller waits here for the join
  const std::function<void(size_t)>* body_ = nullptr;  // valid for one epoch
  size_t total_ = 0;
  std::atomic<size_t> next_{0};
  uint64_t epoch_ = 0;
  uint32_t working_ = 0;  // workers still inside the current epoch
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fpgadp::sim

#endif  // FPGADP_SIM_THREAD_POOL_H_
