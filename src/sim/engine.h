#ifndef FPGADP_SIM_ENGINE_H_
#define FPGADP_SIM_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/sim/module.h"
#include "src/sim/stream.h"

namespace fpgadp::sim {

/// Drives a set of modules and streams with a two-phase, cycle-stepped loop:
/// each cycle every module Tick()s (reads are visible, writes staged), then
/// every stream Commit()s staged writes. The engine neither owns modules nor
/// streams; pipelines typically hold them as members and register pointers.
///
///   Engine e(/*clock_hz=*/200e6);
///   e.AddModule(&source); e.AddModule(&kernel); e.AddModule(&sink);
///   e.AddStream(&in); e.AddStream(&out);
///   Result<Cycle> cycles = e.Run(/*max_cycles=*/1 << 24);
class Engine {
 public:
  /// `clock_hz` is the modeled kernel clock, used only by reporting helpers.
  explicit Engine(double clock_hz = 200e6) : clock_hz_(clock_hz) {}

  /// Registers a module; ticked in registration order (order never affects
  /// results thanks to two-phase streams).
  void AddModule(Module* module);

  /// Registers a stream so the engine commits it each cycle.
  void AddStream(StreamBase* stream);

  /// Advances exactly one cycle.
  void Step();

  /// Runs until every module is idle and every stream is drained, or until
  /// `max_cycles` additional cycles have elapsed (then returns Timeout).
  /// Returns the total elapsed cycle count on success.
  Result<Cycle> Run(uint64_t max_cycles);

  /// True iff all modules are idle and all streams drained.
  bool QuiescedNow() const;

  Cycle now() const { return now_; }
  double clock_hz() const { return clock_hz_; }

  /// Seconds of simulated time elapsed so far at the modeled clock.
  double ElapsedSeconds() const;

  /// One line per module: name, busy cycles, utilization %.
  std::string UtilizationReport() const;

 private:
  double clock_hz_;
  Cycle now_ = 0;
  std::vector<Module*> modules_;
  std::vector<StreamBase*> streams_;
};

}  // namespace fpgadp::sim

#endif  // FPGADP_SIM_ENGINE_H_
