#ifndef FPGADP_SIM_ENGINE_H_
#define FPGADP_SIM_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/module.h"
#include "src/sim/stream.h"

namespace fpgadp::sim {

/// Observability knobs for a traced engine run.
struct TraceOptions {
  /// Cycles between stream-depth / hardware-counter samples. Spans are
  /// tracked every cycle regardless.
  uint32_t sample_period = 16;
  /// Label for this engine's process track in the trace viewer.
  std::string label = "engine";
};

class ThreadPool;

/// How Run() decides which modules to tick each cycle.
///
///  * kLevelTick — the legacy loop: every module ticks every visited cycle
///    (fast-forward may skip whole cycles when every stream is empty).
///  * kEventDriven — per-module activation: a module ticks only when armed
///    (its own NextEventCycle hint, residual items on a bound input stream,
///    a stream commit/drain edge, or an explicit WakeUp). Idle modules cost
///    zero per cycle, fast-forward falls out naturally (the engine jumps to
///    the event-queue head), and the mode composes with parallel tick.
///    Bit-identical cycles and counters to kLevelTick by construction;
///    modules not SetEventSafe() are ticked every visited cycle exactly as
///    in the legacy loop.
enum class Scheduling : uint8_t { kLevelTick, kEventDriven };

/// Process-global defaults new engines are constructed with, so harness
/// flags (e.g. bench_common's --threads) reach engines built deep inside
/// pipeline helpers (ExecuteFpga, MicroRec, ACCL) without threading a knob
/// through every config struct. Per-engine SetThreads/SetFastForward/
/// SetScheduling override them. The scheduling default additionally reads
/// the FPGADP_ENGINE environment variable once ("event" selects
/// kEventDriven), so test tiers can sweep the scheduler without rebuilding.
void SetDefaultEngineThreads(uint32_t n);
uint32_t DefaultEngineThreads();
void SetDefaultFastForward(bool on);
bool DefaultFastForward();
void SetDefaultScheduling(Scheduling s);
Scheduling DefaultScheduling();

/// Drives a set of modules and streams with a two-phase, cycle-stepped loop:
/// each cycle every module Tick()s (reads are visible, writes staged), then
/// every stream Commit()s staged writes. The engine neither owns modules nor
/// streams; pipelines typically hold them as members and register pointers.
///
///   Engine e(/*clock_hz=*/200e6);
///   e.AddModule(&source); e.AddModule(&kernel); e.AddModule(&sink);
///   e.AddStream(&in); e.AddStream(&out);
///   Result<Cycle> cycles = e.Run(/*max_cycles=*/1 << 24);
///
/// Observability: attach a TraceWriter (or set the process-global one — see
/// obs/trace.h) and every run records per-module busy spans, stream-depth
/// counter tracks, and hardware counters published by modules, as Chrome
/// trace_event JSON. Attach a MetricsRegistry and the run exports stall
/// attribution and stream traffic totals. Both are pure observers: enabling
/// them never changes simulated cycle counts, and when disabled the cost is
/// one pointer check per cycle.
///
/// Performance modes — both preserve cycle counts and every per-module
/// counter bit-for-bit (locked down by tests/golden_cycles_test.cc and
/// tests/engine_parallel_test.cc):
///
///  * Fast-forward (on by default, SetFastForward): when every stream is
///    empty, Run() asks each module for its NextEventCycle() hint and jumps
///    straight to the earliest one, bulk-attributing the skipped cycles via
///    Module::AccountSkip. Idle tails and retransmission-timer waits
///    collapse from O(cycles) to O(events). Only Run() fast-forwards;
///    manual Step() driving always advances one real cycle. Attaching a
///    trace writer or metrics registry disables skipping for that engine
///    (per-cycle probes need every cycle).
///
///  * Parallel tick (SetThreads): module Tick()s and stream Commit()s are
///    sharded across a ThreadPool. Ticks run level-by-level over the
///    dependency order derived from stream endpoint bindings (registration
///    order between connected modules is preserved exactly — same-cycle
///    Read()s are visible to later-ticking neighbours, so order DOES
///    matter), with a barrier per level; modules inside one level share no
///    stream and are provably independent. Requires every module to be
///    parallel_safe(); one uncertified module (or a conflicting stream
///    binding) falls the engine back to the bit-identical serial path.
///    Levels with at most a handful of armed modules run inline on the
///    coordinating thread — a pool dispatch costs more than a few ticks.
///    Probes and quiesce checks stay on the coordinating thread, so all
///    observer state remains single-threaded.
///
///  * Event-driven scheduling (SetScheduling(Scheduling::kEventDriven)):
///    Run() keeps a per-module activation state plus a calendar heap and
///    ticks only armed modules; stream commit/drain edges and explicit
///    WakeUp() calls re-arm sleepers, and cycles with no armed work are
///    jumped over entirely. Composes with parallel tick (the armed set is
///    dispatched level-by-level). See DESIGN.md "Event-driven core".
class Engine {
 public:
  /// `clock_hz` is the modeled kernel clock, used only by reporting helpers.
  explicit Engine(double clock_hz = 200e6);
  ~Engine();

  /// Registers a module; ticked in registration order (order never affects
  /// results thanks to two-phase streams).
  void AddModule(Module* module);

  /// Registers a stream so the engine commits it each cycle. Commit work is
  /// skipped for streams that staged nothing: in serial mode writers enqueue
  /// themselves on a dirty-stream list the commit phase drains (streams with
  /// no traffic cost zero per cycle); in parallel mode the commit shard
  /// checks the per-stream staged flag instead (the list push would race).
  void AddStream(StreamBase* stream);

  /// Records this run into `writer` (one process track group per engine).
  /// Overrides the process-global writer for this engine.
  void EnableTracing(obs::TraceWriter* writer, TraceOptions options = {});

  /// Exports run statistics into `registry` when each Run() finishes.
  /// Overrides the process-global registry for this engine.
  void EnableMetrics(obs::MetricsRegistry* registry);

  /// Sets the tick/commit worker count; 1 restores the serial loop. The
  /// pool spins up lazily on the next Step()/Run().
  void SetThreads(uint32_t n);
  uint32_t threads() const { return threads_; }

  /// Enables/disables event-driven fast-forwarding inside Run().
  void SetFastForward(bool on) { fast_forward_ = on; }
  bool fast_forward() const { return fast_forward_; }

  /// Selects the Run() scheduler (see Scheduling). Event-driven runs are
  /// bit-identical to level-tick runs; the legacy path stays available for
  /// differential testing (`--engine=` in benches). Attaching a trace
  /// writer or metrics registry forces the legacy path for that engine —
  /// per-cycle probes need every cycle — exactly like fast-forward.
  void SetScheduling(Scheduling s) { scheduling_ = s; }
  Scheduling scheduling() const { return scheduling_; }

  /// Advances exactly one cycle. Never fast-forwards, so manually stepped
  /// harnesses observe every cycle; see FlushObservers() for the probe
  /// contract when driving the engine this way.
  void Step();

  /// Runs until every module is idle and every stream is drained, or until
  /// `max_cycles` additional cycles have elapsed (then returns Timeout).
  /// Returns the total elapsed cycle count on success.
  Result<Cycle> Run(uint64_t max_cycles);

  /// True iff all modules are idle and all streams drained.
  bool QuiescedNow() const;

  Cycle now() const { return now_; }
  double clock_hz() const { return clock_hz_; }

  /// Seconds of simulated time elapsed so far at the modeled clock.
  double ElapsedSeconds() const;

  /// One line per module: name, busy cycles, utilization % (one decimal),
  /// and the stall-attribution breakdown (starved / blocked / idle).
  std::string UtilizationReport() const;

  /// Closes open trace spans and exports metrics. Run() calls this on exit
  /// (including on timeout). Step() never calls it — a manually stepped
  /// engine that quiesces has NOT flushed, and its last busy spans and
  /// metric deltas are missing until someone flushes. Call this when a
  /// manual-stepping harness finishes; as a safety net the destructor also
  /// flushes (idempotent: spans already closed and delta cursors already
  /// advanced make a second flush a no-op), which requires the registered
  /// modules, streams, and attached observers to outlive the engine.
  void FlushObservers();

 private:
  struct TraceState {
    obs::TraceWriter* writer = nullptr;
    int pid = 0;
    TraceOptions options;
    // Per-module span tracking; grown lazily so late AddModule calls work.
    std::vector<int> tids;
    std::vector<uint64_t> prev_busy;
    std::vector<uint64_t> span_start;
    std::vector<bool> span_open;
    // Per-stream counter dedup: last emitted depth (-1 = never emitted).
    std::vector<double> last_depth;
  };

  struct MetricsState {
    obs::MetricsRegistry* registry = nullptr;
    uint32_t sample_period = 16;
    // Deltas since last export, so repeated Run() calls never double-count.
    // Counter handles are resolved by name once (EnsureProbeSlots) and
    // reused by every subsequent export.
    struct ModuleCursor {
      uint64_t busy = 0, starved = 0, blocked = 0, idle = 0;
      obs::Counter* busy_c = nullptr;
      obs::Counter* starved_c = nullptr;
      obs::Counter* blocked_c = nullptr;
      obs::Counter* idle_c = nullptr;
    };
    struct StreamCursor {
      uint64_t pushed = 0, popped = 0;
      obs::Counter* pushed_c = nullptr;
      obs::Counter* popped_c = nullptr;
    };
    std::vector<ModuleCursor> module_cursor;
    std::vector<StreamCursor> stream_cursor;
    std::vector<obs::Histogram*> depth_hist;  // parallel to streams_
    obs::Counter* cycles_c = nullptr;
    uint64_t cycles_cursor = 0;
  };

  friend class Module;  // Module::WakeUp forwards to WakeModule.

  void SetupObservability();
  void EnsureProbeSlots();
  void ProbeStep();
  void ExportMetrics();
  void RebuildSchedule();
  /// Certification + dependency-level construction for parallel ticking;
  /// false leaves the engine on the serial path.
  bool TryBuildLevels();
  /// One cycle's module ticks plus the stream commit phase, under the
  /// tick-phase metrics-lookup guard.
  void TickAndCommit();
  /// Earliest NextEventCycle() over all modules, clamped to now_ when any
  /// module reports kAlwaysActive; only meaningful when every stream is
  /// empty. DCHECKs that every hint is kNoEventCycle, kAlwaysActive, or a
  /// cycle >= now_, so a buggy hint fails loud instead of silently
  /// disabling fast-forward.
  Cycle GlobalNextEventCycle() const;

  // --- Event-driven core (Scheduling::kEventDriven) -----------------------

  /// The event-mode Run() loop: builds each cycle's armed-module run list
  /// from the calendar heap, the previous cycle's next-cycle arms, and the
  /// always-active set; dispatches it (serially or level-parallel); and
  /// jumps over cycles with no armed work.
  Result<Cycle> RunEventDriven(uint64_t max_cycles);
  /// (Re)allocates the per-module activation arrays and the per-stream
  /// wake-edge plumbing; arms every event-certified module at now_.
  void RebuildEventState();
  /// Brings every module's skipped-cycle attribution up to now_ and drops
  /// the event state. Called before any legacy-path stepping (Step, legacy
  /// Run, schedule rebuild) so bucket totals are always settled whenever
  /// event bookkeeping is not live.
  void InvalidateEventState();
  /// Lazily settles module `i`'s attribution through cycle `to` (exclusive).
  void SettleTo(size_t i, Cycle to);
  /// O(1)-amortized quiescence probe: re-tests the cached blocking
  /// module/stream before falling back to the full scan.
  bool EventQuiesced();
  /// Pops the run list for cycle `c` into run_now_ (sorted, deduped).
  void BuildRunList(Cycle c);
  /// Arms every event-certified module at now_ and drops the calendar:
  /// the event loop's entry seeding, also used to re-enter bookkeeping
  /// after a saturated phase (see RunEventDriven).
  void SeedAllArmed();
  /// Ticks the armed modules of cycle `c` (serial or level-parallel with
  /// small levels inlined), commits dirty streams, and arms stream edges.
  void DispatchCycle(Cycle c);
  /// Post-tick re-arm for a certified module: bound-input residual first
  /// (no virtual call), then the NextEventCycle hint.
  void ReArmModule(size_t i, Cycle c);
  /// Arms module `i` for the cycle after the one being dispatched.
  void ArmNext(size_t i);
  /// Event-mode wake entry point (Module::WakeUp): arms the target while
  /// preserving legacy registration-order visibility — a target whose index
  /// precedes the in-flight tick is armed for the next cycle (the legacy
  /// loop ticked it before the mutation), a later one for this cycle.
  void WakeModule(size_t i);

  double clock_hz_;
  Cycle now_ = 0;
  std::vector<Module*> modules_;
  std::vector<StreamBase*> streams_;
  bool observability_checked_ = false;
  bool flushed_ = true;  // no cycles stepped since the last observer flush
  std::unique_ptr<TraceState> trace_;
  std::unique_ptr<MetricsState> metrics_;
  bool fast_forward_ = true;
  uint32_t threads_ = 1;
  Scheduling scheduling_ = Scheduling::kLevelTick;
  std::unique_ptr<ThreadPool> pool_;
  // Parallel tick schedule, rebuilt when the module/stream set changes:
  // levels_ partitions modules so that no two modules in one level share a
  // stream, and every stream edge points from an earlier level to a later
  // one in registration order.
  bool schedule_dirty_ = true;
  bool parallel_tick_ = false;
  std::vector<std::vector<Module*>> levels_;
  // Per-module level index (parallel to modules_), kept alongside levels_
  // so the event dispatcher can bucket an armed set by level in O(armed).
  std::vector<uint32_t> module_level_;

  // --- Event-driven scheduler state (valid iff event_state_valid_) -------
  //
  // next_run_[i] is the single source of truth for module i's arming: the
  // cycle it will next tick at, or kNoEventCycle when unarmed. The calendar
  // heap_ is a lazy-delete min-heap of (cycle, index) pairs — an entry is
  // live iff it still matches next_run_; re-arms simply push a second entry
  // and the stale one is dropped (or deduped) at pop time. Arms for the
  // cycle right after the one being dispatched accumulate in run_next_
  // (sortedness tracked while building, sorted only when a wake broke the
  // order), which becomes the seed of the next cycle's run list. Modules
  // not event_safe() live in always_active_ and join every run list —
  // exact legacy behavior for them. accounted_[i] is the cycle (exclusive)
  // through which module i's stall attribution is settled; gaps settle
  // lazily at the next tick, wake, or Run() exit.
  bool event_state_valid_ = false;
  bool event_dispatching_ = false;
  // True while the event loop runs its saturated-phase inner loop (every
  // module armed and busy): ticks run through the zero-overhead legacy body
  // and wakes are dropped — everyone ticks every cycle anyway, and the
  // re-seed on phase exit re-arms the world.
  bool event_saturated_ = false;
  // Consecutive event cycles whose run list was the full module set; the
  // saturated fast path engages past a small threshold (hysteresis, so a
  // workload that oscillates near density does not thrash the O(modules)
  // phase-exit re-seed).
  uint32_t dense_streak_ = 0;
  size_t current_ticking_index_ = 0;
  std::vector<Cycle> next_run_;
  std::vector<Cycle> accounted_;
  std::vector<std::pair<Cycle, size_t>> heap_;
  std::vector<size_t> run_now_;
  std::vector<size_t> run_next_;
  bool run_next_sorted_ = true;
  std::vector<size_t> heap_pops_;
  std::vector<size_t> always_active_;
  // Bound input streams per module (consumer side), for the residual-item
  // re-arm check that avoids the virtual hint call on flow-through paths.
  std::vector<std::vector<const StreamBase*>> bound_inputs_;
  // Armed-set level buckets for event+parallel dispatch, reused per cycle.
  std::vector<std::vector<size_t>> level_buckets_;
  // Staged-stream scratch for the parallel-mode commit phase, reused per
  // cycle so the staged-count threshold costs no allocation.
  std::vector<StreamBase*> staged_streams_;
  // Cached quiescence blocker (module / stream index; ~0 = none cached).
  size_t qc_module_ = ~size_t{0};
  size_t qc_stream_ = ~size_t{0};
  // Serial-mode dirty-stream list: streams push themselves here on their
  // first staged write of a cycle (StreamBase::NoteStaged) and the commit
  // phase drains it, so idle streams cost nothing. RebuildSchedule() shares
  // this vector with registered streams in serial mode and detaches them in
  // parallel mode. Shared ownership (instead of a raw back-pointer) makes
  // stream/engine destruction order irrelevant — harnesses destroy them in
  // both orders.
  std::shared_ptr<std::vector<StreamBase*>> commit_queue_ =
      std::make_shared<std::vector<StreamBase*>>();
  // Read-edge wake list: streams that went from full to non-full this cycle
  // (StreamBase::NoteDrained) so the event scheduler can re-arm a blocked
  // producer. Attached to streams only on the serial event-driven path.
  std::shared_ptr<std::vector<StreamBase*>> drain_queue_ =
      std::make_shared<std::vector<StreamBase*>>();
};

}  // namespace fpgadp::sim

#endif  // FPGADP_SIM_ENGINE_H_
