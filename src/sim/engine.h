#ifndef FPGADP_SIM_ENGINE_H_
#define FPGADP_SIM_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/module.h"
#include "src/sim/stream.h"

namespace fpgadp::sim {

/// Observability knobs for a traced engine run.
struct TraceOptions {
  /// Cycles between stream-depth / hardware-counter samples. Spans are
  /// tracked every cycle regardless.
  uint32_t sample_period = 16;
  /// Label for this engine's process track in the trace viewer.
  std::string label = "engine";
};

/// Drives a set of modules and streams with a two-phase, cycle-stepped loop:
/// each cycle every module Tick()s (reads are visible, writes staged), then
/// every stream Commit()s staged writes. The engine neither owns modules nor
/// streams; pipelines typically hold them as members and register pointers.
///
///   Engine e(/*clock_hz=*/200e6);
///   e.AddModule(&source); e.AddModule(&kernel); e.AddModule(&sink);
///   e.AddStream(&in); e.AddStream(&out);
///   Result<Cycle> cycles = e.Run(/*max_cycles=*/1 << 24);
///
/// Observability: attach a TraceWriter (or set the process-global one — see
/// obs/trace.h) and every run records per-module busy spans, stream-depth
/// counter tracks, and hardware counters published by modules, as Chrome
/// trace_event JSON. Attach a MetricsRegistry and the run exports stall
/// attribution and stream traffic totals. Both are pure observers: enabling
/// them never changes simulated cycle counts, and when disabled the cost is
/// one pointer check per cycle.
class Engine {
 public:
  /// `clock_hz` is the modeled kernel clock, used only by reporting helpers.
  explicit Engine(double clock_hz = 200e6) : clock_hz_(clock_hz) {}

  /// Registers a module; ticked in registration order (order never affects
  /// results thanks to two-phase streams).
  void AddModule(Module* module);

  /// Registers a stream so the engine commits it each cycle.
  void AddStream(StreamBase* stream);

  /// Records this run into `writer` (one process track group per engine).
  /// Overrides the process-global writer for this engine.
  void EnableTracing(obs::TraceWriter* writer, TraceOptions options = {});

  /// Exports run statistics into `registry` when each Run() finishes.
  /// Overrides the process-global registry for this engine.
  void EnableMetrics(obs::MetricsRegistry* registry);

  /// Advances exactly one cycle.
  void Step();

  /// Runs until every module is idle and every stream is drained, or until
  /// `max_cycles` additional cycles have elapsed (then returns Timeout).
  /// Returns the total elapsed cycle count on success.
  Result<Cycle> Run(uint64_t max_cycles);

  /// True iff all modules are idle and all streams drained.
  bool QuiescedNow() const;

  Cycle now() const { return now_; }
  double clock_hz() const { return clock_hz_; }

  /// Seconds of simulated time elapsed so far at the modeled clock.
  double ElapsedSeconds() const;

  /// One line per module: name, busy cycles, utilization % (one decimal),
  /// and the stall-attribution breakdown (starved / blocked / idle).
  std::string UtilizationReport() const;

  /// Closes open trace spans and exports metrics. Run() calls this on exit;
  /// call it directly only when driving the engine with Step() manually.
  void FlushObservers();

 private:
  struct TraceState {
    obs::TraceWriter* writer = nullptr;
    int pid = 0;
    TraceOptions options;
    // Per-module span tracking; grown lazily so late AddModule calls work.
    std::vector<int> tids;
    std::vector<uint64_t> prev_busy;
    std::vector<uint64_t> span_start;
    std::vector<bool> span_open;
    // Per-stream counter dedup: last emitted depth (-1 = never emitted).
    std::vector<double> last_depth;
  };

  struct MetricsState {
    obs::MetricsRegistry* registry = nullptr;
    uint32_t sample_period = 16;
    // Deltas since last export, so repeated Run() calls never double-count.
    struct ModuleCursor {
      uint64_t busy = 0, starved = 0, blocked = 0, idle = 0;
    };
    std::vector<ModuleCursor> module_cursor;
    std::vector<std::pair<uint64_t, uint64_t>> stream_cursor;  // pushed/popped
    std::vector<obs::Histogram*> depth_hist;  // parallel to streams_
    uint64_t cycles_cursor = 0;
  };

  void SetupObservability();
  void EnsureProbeSlots();
  void ProbeStep();
  void ExportMetrics();

  double clock_hz_;
  Cycle now_ = 0;
  std::vector<Module*> modules_;
  std::vector<StreamBase*> streams_;
  bool observability_checked_ = false;
  std::unique_ptr<TraceState> trace_;
  std::unique_ptr<MetricsState> metrics_;
};

}  // namespace fpgadp::sim

#endif  // FPGADP_SIM_ENGINE_H_
