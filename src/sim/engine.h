#ifndef FPGADP_SIM_ENGINE_H_
#define FPGADP_SIM_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/module.h"
#include "src/sim/stream.h"

namespace fpgadp::sim {

/// Observability knobs for a traced engine run.
struct TraceOptions {
  /// Cycles between stream-depth / hardware-counter samples. Spans are
  /// tracked every cycle regardless.
  uint32_t sample_period = 16;
  /// Label for this engine's process track in the trace viewer.
  std::string label = "engine";
};

class ThreadPool;

/// Process-global defaults new engines are constructed with, so harness
/// flags (e.g. bench_common's --threads) reach engines built deep inside
/// pipeline helpers (ExecuteFpga, MicroRec, ACCL) without threading a knob
/// through every config struct. Per-engine SetThreads/SetFastForward
/// override them.
void SetDefaultEngineThreads(uint32_t n);
uint32_t DefaultEngineThreads();
void SetDefaultFastForward(bool on);
bool DefaultFastForward();

/// Drives a set of modules and streams with a two-phase, cycle-stepped loop:
/// each cycle every module Tick()s (reads are visible, writes staged), then
/// every stream Commit()s staged writes. The engine neither owns modules nor
/// streams; pipelines typically hold them as members and register pointers.
///
///   Engine e(/*clock_hz=*/200e6);
///   e.AddModule(&source); e.AddModule(&kernel); e.AddModule(&sink);
///   e.AddStream(&in); e.AddStream(&out);
///   Result<Cycle> cycles = e.Run(/*max_cycles=*/1 << 24);
///
/// Observability: attach a TraceWriter (or set the process-global one — see
/// obs/trace.h) and every run records per-module busy spans, stream-depth
/// counter tracks, and hardware counters published by modules, as Chrome
/// trace_event JSON. Attach a MetricsRegistry and the run exports stall
/// attribution and stream traffic totals. Both are pure observers: enabling
/// them never changes simulated cycle counts, and when disabled the cost is
/// one pointer check per cycle.
///
/// Performance modes — both preserve cycle counts and every per-module
/// counter bit-for-bit (locked down by tests/golden_cycles_test.cc and
/// tests/engine_parallel_test.cc):
///
///  * Fast-forward (on by default, SetFastForward): when every stream is
///    empty, Run() asks each module for its NextEventCycle() hint and jumps
///    straight to the earliest one, bulk-attributing the skipped cycles via
///    Module::AccountSkip. Idle tails and retransmission-timer waits
///    collapse from O(cycles) to O(events). Only Run() fast-forwards;
///    manual Step() driving always advances one real cycle. Attaching a
///    trace writer or metrics registry disables skipping for that engine
///    (per-cycle probes need every cycle).
///
///  * Parallel tick (SetThreads): module Tick()s and stream Commit()s are
///    sharded across a ThreadPool. Ticks run level-by-level over the
///    dependency order derived from stream endpoint bindings (registration
///    order between connected modules is preserved exactly — same-cycle
///    Read()s are visible to later-ticking neighbours, so order DOES
///    matter), with a barrier per level; modules inside one level share no
///    stream and are provably independent. Requires every module to be
///    parallel_safe(); one uncertified module (or a conflicting stream
///    binding) falls the engine back to the bit-identical serial path.
///    Probes and quiesce checks stay on the coordinating thread, so all
///    observer state remains single-threaded.
class Engine {
 public:
  /// `clock_hz` is the modeled kernel clock, used only by reporting helpers.
  explicit Engine(double clock_hz = 200e6);
  ~Engine();

  /// Registers a module; ticked in registration order (order never affects
  /// results thanks to two-phase streams).
  void AddModule(Module* module);

  /// Registers a stream so the engine commits it each cycle. Commit work is
  /// skipped for streams that staged nothing: in serial mode writers enqueue
  /// themselves on a dirty-stream list the commit phase drains (streams with
  /// no traffic cost zero per cycle); in parallel mode the commit shard
  /// checks the per-stream staged flag instead (the list push would race).
  void AddStream(StreamBase* stream);

  /// Records this run into `writer` (one process track group per engine).
  /// Overrides the process-global writer for this engine.
  void EnableTracing(obs::TraceWriter* writer, TraceOptions options = {});

  /// Exports run statistics into `registry` when each Run() finishes.
  /// Overrides the process-global registry for this engine.
  void EnableMetrics(obs::MetricsRegistry* registry);

  /// Sets the tick/commit worker count; 1 restores the serial loop. The
  /// pool spins up lazily on the next Step()/Run().
  void SetThreads(uint32_t n);
  uint32_t threads() const { return threads_; }

  /// Enables/disables event-driven fast-forwarding inside Run().
  void SetFastForward(bool on) { fast_forward_ = on; }
  bool fast_forward() const { return fast_forward_; }

  /// Advances exactly one cycle. Never fast-forwards, so manually stepped
  /// harnesses observe every cycle; see FlushObservers() for the probe
  /// contract when driving the engine this way.
  void Step();

  /// Runs until every module is idle and every stream is drained, or until
  /// `max_cycles` additional cycles have elapsed (then returns Timeout).
  /// Returns the total elapsed cycle count on success.
  Result<Cycle> Run(uint64_t max_cycles);

  /// True iff all modules are idle and all streams drained.
  bool QuiescedNow() const;

  Cycle now() const { return now_; }
  double clock_hz() const { return clock_hz_; }

  /// Seconds of simulated time elapsed so far at the modeled clock.
  double ElapsedSeconds() const;

  /// One line per module: name, busy cycles, utilization % (one decimal),
  /// and the stall-attribution breakdown (starved / blocked / idle).
  std::string UtilizationReport() const;

  /// Closes open trace spans and exports metrics. Run() calls this on exit
  /// (including on timeout). Step() never calls it — a manually stepped
  /// engine that quiesces has NOT flushed, and its last busy spans and
  /// metric deltas are missing until someone flushes. Call this when a
  /// manual-stepping harness finishes; as a safety net the destructor also
  /// flushes (idempotent: spans already closed and delta cursors already
  /// advanced make a second flush a no-op), which requires the registered
  /// modules, streams, and attached observers to outlive the engine.
  void FlushObservers();

 private:
  struct TraceState {
    obs::TraceWriter* writer = nullptr;
    int pid = 0;
    TraceOptions options;
    // Per-module span tracking; grown lazily so late AddModule calls work.
    std::vector<int> tids;
    std::vector<uint64_t> prev_busy;
    std::vector<uint64_t> span_start;
    std::vector<bool> span_open;
    // Per-stream counter dedup: last emitted depth (-1 = never emitted).
    std::vector<double> last_depth;
  };

  struct MetricsState {
    obs::MetricsRegistry* registry = nullptr;
    uint32_t sample_period = 16;
    // Deltas since last export, so repeated Run() calls never double-count.
    // Counter handles are resolved by name once (EnsureProbeSlots) and
    // reused by every subsequent export.
    struct ModuleCursor {
      uint64_t busy = 0, starved = 0, blocked = 0, idle = 0;
      obs::Counter* busy_c = nullptr;
      obs::Counter* starved_c = nullptr;
      obs::Counter* blocked_c = nullptr;
      obs::Counter* idle_c = nullptr;
    };
    struct StreamCursor {
      uint64_t pushed = 0, popped = 0;
      obs::Counter* pushed_c = nullptr;
      obs::Counter* popped_c = nullptr;
    };
    std::vector<ModuleCursor> module_cursor;
    std::vector<StreamCursor> stream_cursor;
    std::vector<obs::Histogram*> depth_hist;  // parallel to streams_
    obs::Counter* cycles_c = nullptr;
    uint64_t cycles_cursor = 0;
  };

  void SetupObservability();
  void EnsureProbeSlots();
  void ProbeStep();
  void ExportMetrics();
  void RebuildSchedule();
  /// Certification + dependency-level construction for parallel ticking;
  /// false leaves the engine on the serial path.
  bool TryBuildLevels();
  /// One cycle's module ticks plus the stream commit phase, under the
  /// tick-phase metrics-lookup guard.
  void TickAndCommit();
  /// Earliest NextEventCycle() over all modules; only meaningful when every
  /// stream is empty.
  Cycle EarliestEvent() const;

  double clock_hz_;
  Cycle now_ = 0;
  std::vector<Module*> modules_;
  std::vector<StreamBase*> streams_;
  bool observability_checked_ = false;
  bool flushed_ = true;  // no cycles stepped since the last observer flush
  std::unique_ptr<TraceState> trace_;
  std::unique_ptr<MetricsState> metrics_;
  bool fast_forward_ = true;
  uint32_t threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  // Parallel tick schedule, rebuilt when the module/stream set changes:
  // levels_ partitions modules so that no two modules in one level share a
  // stream, and every stream edge points from an earlier level to a later
  // one in registration order.
  bool schedule_dirty_ = true;
  bool parallel_tick_ = false;
  std::vector<std::vector<Module*>> levels_;
  // Serial-mode dirty-stream list: streams push themselves here on their
  // first staged write of a cycle (StreamBase::NoteStaged) and the commit
  // phase drains it, so idle streams cost nothing. RebuildSchedule() shares
  // this vector with registered streams in serial mode and detaches them in
  // parallel mode. Shared ownership (instead of a raw back-pointer) makes
  // stream/engine destruction order irrelevant — harnesses destroy them in
  // both orders.
  std::shared_ptr<std::vector<StreamBase*>> commit_queue_ =
      std::make_shared<std::vector<StreamBase*>>();
};

}  // namespace fpgadp::sim

#endif  // FPGADP_SIM_ENGINE_H_
