#ifndef FPGADP_SIM_KERNELS_H_
#define FPGADP_SIM_KERNELS_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/sim/module.h"
#include "src/sim/stream.h"

namespace fpgadp::sim {

/// Timing contract of a pipelined HLS kernel: it can *issue* up to `lanes`
/// items every `ii` cycles (initiation interval), and each item leaves the
/// pipeline `latency` cycles after issue. An ideal `#pragma HLS pipeline
/// II=1` kernel is {ii=1, lanes=1, latency=depth}.
struct KernelTiming {
  uint32_t ii = 1;
  uint32_t lanes = 1;
  uint32_t latency = 1;
};

/// Feeds the contents of a vector into an output stream at up to
/// `lanes` items per cycle — the simulator analog of an AXI read burst from
/// host memory feeding a kernel.
template <typename T>
class VectorSource : public Module {
 public:
  VectorSource(std::string name, std::vector<T> data, Stream<T>* out,
               uint32_t lanes = 1)
      : Module(std::move(name)), data_(std::move(data)), out_(out),
        lanes_(lanes) {
    FPGADP_CHECK(out_ != nullptr);
    FPGADP_CHECK(lanes_ > 0);
    out_->BindProducer(this);
    SetParallelSafe();
    SetEventSafe();
  }

  void Tick(Cycle) override {
    // Burst write: up to `lanes` items per cycle, one bounds check and one
    // bulk copy per contiguous run (an empty WritableSpan is exactly the
    // FIFO-full condition the per-item loop would have hit).
    size_t budget = std::min<size_t>(lanes_, data_.size() - pos_);
    size_t written = 0;
    while (written < budget) {
      std::span<T> dst = out_->WritableSpan();
      if (dst.empty()) break;
      const size_t n = std::min(budget - written, dst.size());
      std::copy_n(data_.begin() + static_cast<ptrdiff_t>(pos_), n,
                  dst.begin());
      out_->CommitWrite(n);
      pos_ += n;
      written += n;
    }
    if (written > 0) {
      MarkBusy();
    } else if (pos_ < data_.size()) {
      MarkStall(StallKind::kOutputBlocked);  // data left but FIFO is full
    } else {
      MarkStall(StallKind::kIdle);  // burst fully emitted
    }
  }

  bool Idle() const override { return pos_ >= data_.size(); }

  /// With streams empty the source either still has data (it will write
  /// next cycle) or is exhausted (it never acts again).
  Cycle NextEventCycle(Cycle now) const override {
    return pos_ < data_.size() ? now : kNoEventCycle;
  }

  /// Items emitted so far.
  size_t emitted() const { return pos_; }

 private:
  std::vector<T> data_;
  Stream<T>* out_;
  uint32_t lanes_;
  size_t pos_ = 0;
};

/// Drains a stream into a vector at up to `lanes` items per cycle.
template <typename T>
class VectorSink : public Module {
 public:
  VectorSink(std::string name, Stream<T>* in, uint32_t lanes = 1)
      : Module(std::move(name)), in_(in), lanes_(lanes) {
    FPGADP_CHECK(in_ != nullptr);
    FPGADP_CHECK(lanes_ > 0);
    in_->BindConsumer(this);
    SetParallelSafe();
    SetEventSafe();
  }

  void Tick(Cycle) override {
    // Burst read: drain up to `lanes` committed items with one bulk append
    // per contiguous run.
    size_t drained = 0;
    while (drained < lanes_) {
      std::span<const T> src = in_->ReadableSpan();
      if (src.empty()) break;
      const size_t n = std::min<size_t>(lanes_ - drained, src.size());
      collected_.insert(collected_.end(), src.begin(),
                        src.begin() + static_cast<ptrdiff_t>(n));
      in_->ConsumeRead(n);
      drained += n;
    }
    if (drained > 0) {
      MarkBusy();
      last_arrival_ = true;
    } else {
      MarkStall(StallKind::kInputStarved);  // a sink only ever waits on input
    }
  }

  bool Idle() const override { return true; }

  /// Purely reactive; a skipped sink would have counted starvation.
  Cycle NextEventCycle(Cycle) const override { return kNoEventCycle; }

  const std::vector<T>& collected() const { return collected_; }
  std::vector<T>& collected() { return collected_; }

 protected:
  void AttributeSkip(Cycle from, Cycle to) override {
    MarkStallN(StallKind::kInputStarved, to - from);
  }

 private:
  Stream<T>* in_;
  uint32_t lanes_;
  std::vector<T> collected_;
  bool last_arrival_ = false;
};

/// A pipelined map/filter kernel: applies `fn` to each input item; emitting
/// the returned value, or dropping the item when `fn` returns nullopt (the
/// line-rate filter pattern — the kernel still consumes one item per lane per
/// II, so throughput is input-bound, not selectivity-bound).
template <typename In, typename Out>
class TransformKernel : public Module {
 public:
  using Fn = std::function<std::optional<Out>(const In&)>;

  TransformKernel(std::string name, Stream<In>* in, Stream<Out>* out, Fn fn,
                  KernelTiming timing = {})
      : Module(std::move(name)), in_(in), out_(out), fn_(std::move(fn)),
        timing_(timing) {
    FPGADP_CHECK(in_ != nullptr && out_ != nullptr);
    FPGADP_CHECK(timing_.ii > 0 && timing_.lanes > 0);
    in_->BindConsumer(this);
    out_->BindProducer(this);
    SetParallelSafe();
    SetEventSafe();
  }

  void Tick(Cycle cycle) override {
    bool progressed = false;
    // Retire phase: completed items leave the pipeline into the out stream,
    // burst-written per contiguous free run.
    uint32_t retired = 0;
    while (retired < timing_.lanes && !pipe_.empty() &&
           pipe_.front().ready <= cycle) {
      std::span<Out> dst = out_->WritableSpan();
      if (dst.empty()) break;  // FIFO full — same exit CanWrite() gave
      size_t n = 0;
      while (n < dst.size() && retired + n < timing_.lanes &&
             !pipe_.empty() && pipe_.front().ready <= cycle) {
        dst[n++] = std::move(pipe_.front().value);
        pipe_.pop_front();
      }
      out_->CommitWrite(n);
      retired += static_cast<uint32_t>(n);
      progressed = progressed || n > 0;
    }
    // Issue phase: accept new inputs if the II gate is open and the pipeline
    // register file has room (bounded by latency*lanes in-flight items).
    // Inputs arrive as read bursts; the room bound is re-checked per item
    // because filtered (dropped) items occupy no pipeline slot, so a burst
    // can legally consume more items than the pipeline has free slots.
    const size_t max_in_flight =
        static_cast<size_t>(timing_.latency) * timing_.lanes + timing_.lanes;
    if (cycle >= next_issue_) {
      uint32_t issued = 0;
      while (issued < timing_.lanes &&
             pipe_.size() + drop_slots_ < max_in_flight) {
        std::span<const In> src = in_->ReadableSpan();
        if (src.empty()) break;  // starved — same exit CanRead() gave
        const size_t n = std::min<size_t>(timing_.lanes - issued, src.size());
        size_t taken = 0;
        while (taken < n && pipe_.size() + drop_slots_ < max_in_flight) {
          std::optional<Out> produced = fn_(src[taken]);
          ++taken;
          if (produced.has_value()) {
            pipe_.push_back({cycle + timing_.latency, std::move(*produced)});
          }
        }
        in_->ConsumeRead(taken);
        consumed_ += taken;
        issued += static_cast<uint32_t>(taken);
        progressed = progressed || taken > 0;
        if (taken < n) break;  // pipeline register file filled mid-burst
      }
      if (issued > 0) next_issue_ = cycle + timing_.ii;
    }
    if (progressed) {
      MarkBusy();
    } else if (!pipe_.empty() && pipe_.front().ready <= cycle &&
               !out_->CanWrite()) {
      MarkStall(StallKind::kOutputBlocked);
    } else if (!in_->CanRead() && pipe_.empty()) {
      MarkStall(StallKind::kInputStarved);
    } else {
      // Items in the latency shadow, or the II gate is closed: the kernel is
      // limited by its own timing contract, not by its neighbours.
      MarkStall(StallKind::kIdle);
    }
  }

  bool Idle() const override { return pipe_.empty(); }

  /// Empty pipeline: reactive (waiting on input). Otherwise the front
  /// in-flight item retires when its latency elapses.
  Cycle NextEventCycle(Cycle now) const override {
    if (pipe_.empty()) return kNoEventCycle;
    return pipe_.front().ready > now ? pipe_.front().ready : now;
  }

  /// Items consumed from the input stream.
  uint64_t consumed() const { return consumed_; }

 protected:
  void AttributeSkip(Cycle from, Cycle to) override {
    // Matches the serial waiting branches: no input and nothing in flight
    // counts as starvation; items in the latency shadow count as idle.
    if (pipe_.empty()) MarkStallN(StallKind::kInputStarved, to - from);
  }

 private:
  struct InFlight {
    Cycle ready;
    Out value;
  };

  Stream<In>* in_;
  Stream<Out>* out_;
  Fn fn_;
  KernelTiming timing_;
  std::deque<InFlight> pipe_;
  Cycle next_issue_ = 0;
  uint64_t consumed_ = 0;
  // Dropped (filtered) items occupy no pipeline slot in this model.
  static constexpr size_t drop_slots_ = 0;
};

/// A pipelined reduction: folds `expected_count` input items into an
/// accumulator with `fn`, then emits the single result. `expected_count`
/// plays the role of the end-of-stream signal an RTL design would carry in a
/// side channel.
template <typename In, typename Acc>
class ReduceKernel : public Module {
 public:
  using Fn = std::function<void(Acc&, const In&)>;

  ReduceKernel(std::string name, Stream<In>* in, Stream<Acc>* out, Acc init,
               Fn fn, uint64_t expected_count, KernelTiming timing = {})
      : Module(std::move(name)), in_(in), out_(out), acc_(std::move(init)),
        fn_(std::move(fn)), expected_(expected_count), timing_(timing) {
    FPGADP_CHECK(in_ != nullptr && out_ != nullptr);
    in_->BindConsumer(this);
    out_->BindProducer(this);
    SetParallelSafe();
    SetEventSafe();
  }

  void Tick(Cycle cycle) override {
    bool progressed = false;
    if (consumed_ < expected_ && cycle >= next_issue_) {
      const uint64_t budget =
          std::min<uint64_t>(timing_.lanes, expected_ - consumed_);
      uint64_t issued = 0;
      while (issued < budget) {
        std::span<const In> src = in_->ReadableSpan();
        if (src.empty()) break;
        const size_t n = static_cast<size_t>(
            std::min<uint64_t>(budget - issued, src.size()));
        for (size_t i = 0; i < n; ++i) fn_(acc_, src[i]);
        in_->ConsumeRead(n);
        consumed_ += n;
        issued += n;
        progressed = true;
      }
      if (issued > 0) next_issue_ = cycle + timing_.ii;
    }
    if (consumed_ == expected_ && !emitted_ && out_->CanWrite()) {
      out_->Write(acc_);
      emitted_ = true;
      progressed = true;
    }
    if (progressed) {
      MarkBusy();
    } else if (consumed_ == expected_ && !emitted_) {
      MarkStall(StallKind::kOutputBlocked);
    } else if (consumed_ < expected_ && !in_->CanRead()) {
      MarkStall(StallKind::kInputStarved);
    } else {
      MarkStall(StallKind::kIdle);  // II gate closed or reduction finished
    }
  }

  bool Idle() const override { return emitted_ || consumed_ < expected_; }

  /// Mid-fold the kernel is input-driven; once the count is reached the
  /// emit is self-scheduled for the very next tick; after that, done.
  Cycle NextEventCycle(Cycle now) const override {
    if (consumed_ == expected_ && !emitted_) return now;
    return kNoEventCycle;
  }

  uint64_t consumed() const { return consumed_; }

 protected:
  void AttributeSkip(Cycle from, Cycle to) override {
    if (consumed_ < expected_) {
      MarkStallN(StallKind::kInputStarved, to - from);
    } else {
      MarkStallN(StallKind::kIdle, to - from);  // reduction finished
    }
  }

 private:
  Stream<In>* in_;
  Stream<Acc>* out_;
  Acc acc_;
  Fn fn_;
  uint64_t expected_;
  KernelTiming timing_;
  Cycle next_issue_ = 0;
  uint64_t consumed_ = 0;
  bool emitted_ = false;
};

/// Fixed-latency, full-rate pass-through — models a wire, a register slice,
/// or a serialization stage (e.g. NIC MAC) between two stream endpoints.
template <typename T>
class DelayLine : public Module {
 public:
  DelayLine(std::string name, Stream<T>* in, Stream<T>* out, uint32_t latency,
            uint32_t lanes = 1)
      : Module(std::move(name)), in_(in), out_(out), latency_(latency),
        lanes_(lanes) {
    FPGADP_CHECK(in_ != nullptr && out_ != nullptr);
    in_->BindConsumer(this);
    out_->BindProducer(this);
    SetParallelSafe();
    SetEventSafe();
  }

  void Tick(Cycle cycle) override {
    bool progressed = false;
    uint32_t moved = 0;
    while (moved < lanes_ && !pending_.empty() &&
           pending_.front().first <= cycle) {
      std::span<T> dst = out_->WritableSpan();
      if (dst.empty()) break;  // FIFO full — same exit CanWrite() gave
      size_t n = 0;
      while (n < dst.size() && moved + n < lanes_ && !pending_.empty() &&
             pending_.front().first <= cycle) {
        dst[n++] = std::move(pending_.front().second);
        pending_.pop_front();
      }
      out_->CommitWrite(n);
      moved += static_cast<uint32_t>(n);
      progressed = progressed || n > 0;
    }
    const size_t bound = static_cast<size_t>(latency_ + 1) * lanes_;
    uint32_t accepted = 0;
    while (accepted < lanes_ && pending_.size() < bound) {
      std::span<const T> src = in_->ReadableSpan();
      if (src.empty()) break;  // starved — same exit CanRead() gave
      const size_t n = std::min({static_cast<size_t>(lanes_ - accepted),
                                 src.size(), bound - pending_.size()});
      for (size_t i = 0; i < n; ++i) {
        pending_.emplace_back(cycle + latency_, src[i]);
      }
      in_->ConsumeRead(n);
      accepted += static_cast<uint32_t>(n);
      progressed = true;
    }
    if (progressed) {
      MarkBusy();
    } else if (!pending_.empty() && pending_.front().first <= cycle &&
               !out_->CanWrite()) {
      MarkStall(StallKind::kOutputBlocked);
    } else if (pending_.empty() && !in_->CanRead()) {
      MarkStall(StallKind::kInputStarved);
    } else {
      MarkStall(StallKind::kIdle);  // items still inside the delay window
    }
  }

  bool Idle() const override { return pending_.empty(); }

  Cycle NextEventCycle(Cycle now) const override {
    if (pending_.empty()) return kNoEventCycle;
    return pending_.front().first > now ? pending_.front().first : now;
  }

 protected:
  void AttributeSkip(Cycle from, Cycle to) override {
    // Matches the serial branches: empty+no-input is starvation, items
    // still inside the delay window are idle.
    if (pending_.empty()) MarkStallN(StallKind::kInputStarved, to - from);
  }

 private:
  Stream<T>* in_;
  Stream<T>* out_;
  uint32_t latency_;
  uint32_t lanes_;
  std::deque<std::pair<Cycle, T>> pending_;
};

}  // namespace fpgadp::sim

#endif  // FPGADP_SIM_KERNELS_H_
