#ifndef FPGADP_SIM_VAR_STAGE_H_
#define FPGADP_SIM_VAR_STAGE_H_

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/sim/module.h"
#include "src/sim/stream.h"

namespace fpgadp::sim {

/// A pipeline stage whose occupancy varies per item: it accepts one item,
/// works on it for `cost(item)` cycles (the stage is not available to the
/// next item meanwhile — the hardware is a single shared engine, not
/// replicated per item), then emits `fn(item)`. This models the coarse
/// search / LUT build / list scan engines of accelerators like FANNS,
/// where per-query work depends on data (e.g. how long the probed lists
/// are).
template <typename In, typename Out>
class VarStage : public Module {
 public:
  using Fn = std::function<Out(const In&)>;
  using CostFn = std::function<uint64_t(const In&)>;

  VarStage(std::string name, Stream<In>* in, Stream<Out>* out, Fn fn,
           CostFn cost)
      : Module(std::move(name)), in_(in), out_(out), fn_(std::move(fn)),
        cost_(std::move(cost)) {
    FPGADP_CHECK(in_ != nullptr && out_ != nullptr);
    in_->BindConsumer(this);
    out_->BindProducer(this);
    SetParallelSafe();
    SetEventSafe();
  }

  void Tick(Cycle cycle) override {
    bool progressed = false;
    if (holding_) {
      if (cycle < ready_at_) {
        MarkBusy();  // actively computing on the held item
        return;
      }
      std::span<Out> dst = out_->WritableSpan();
      if (dst.empty()) {
        MarkStall(StallKind::kOutputBlocked);
        return;
      }
      dst[0] = std::move(*pending_);
      out_->CommitWrite(1);
      pending_.reset();
      holding_ = false;
      progressed = true;
    }
    // Length-1 burst: the stage is a single shared engine, so it accepts at
    // most one item per cycle by design.
    std::span<const In> src = in_->ReadableSpan();
    if (!src.empty()) {
      const In& item = src[0];
      const uint64_t cost = cost_(item);
      pending_ = fn_(item);
      in_->ConsumeRead(1);
      ready_at_ = cycle + (cost > 0 ? cost : 1);
      holding_ = true;
      progressed = true;
    }
    if (progressed) {
      MarkBusy();
    } else {
      MarkStall(StallKind::kInputStarved);
    }
  }

  bool Idle() const override { return !holding_; }

  /// Holding an item: the stage emits when its per-item cost elapses.
  /// Empty-handed it waits on input.
  Cycle NextEventCycle(Cycle now) const override {
    if (!holding_) return kNoEventCycle;
    return ready_at_ > now ? ready_at_ : now;
  }

  /// Items fully processed.
  uint64_t processed() const { return out_ ? out_->total_pushed() : 0; }

 protected:
  void AttributeSkip(Cycle from, Cycle to) override {
    // The serial ticks mark busy while the engine crunches the held item
    // and starved while waiting for one.
    if (holding_) {
      MarkBusyN(to - from);
    } else {
      MarkStallN(StallKind::kInputStarved, to - from);
    }
  }

 private:
  Stream<In>* in_;
  Stream<Out>* out_;
  Fn fn_;
  CostFn cost_;
  bool holding_ = false;
  Cycle ready_at_ = 0;
  std::optional<Out> pending_;
};

}  // namespace fpgadp::sim

#endif  // FPGADP_SIM_VAR_STAGE_H_
