#include "src/sim/thread_pool.h"

#include "src/common/check.h"

namespace fpgadp::sim {

ThreadPool::ThreadPool(uint32_t num_threads) {
  FPGADP_CHECK(num_threads >= 1);
  workers_.reserve(num_threads - 1);
  for (uint32_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    total_ = n;
    next_.store(0, std::memory_order_relaxed);
    working_ = static_cast<uint32_t>(workers_.size());
    ++epoch_;
  }
  work_cv_.notify_all();
  // The caller is a pool member too: claim indices until exhausted.
  for (;;) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    body(i);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return working_ == 0; });
  body_ = nullptr;
}

void ThreadPool::WorkerMain() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* body;
    size_t total;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      body = body_;
      total = total_;
    }
    for (;;) {
      const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      (*body)(i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--working_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace fpgadp::sim
