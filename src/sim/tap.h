#ifndef FPGADP_SIM_TAP_H_
#define FPGADP_SIM_TAP_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/obs/trace.h"
#include "src/sim/module.h"
#include "src/sim/stream.h"

namespace fpgadp::sim {

/// A pass-through probe between two streams: forwards every item with one
/// cycle of latency and records (cycle, item) pairs — the simulator analog
/// of dropping an ILA core onto a wire. Use it to inspect timing inside a
/// pipeline (arrival times, burst shapes, inter-arrival gaps) without
/// perturbing functional results.
template <typename T>
class StreamTap : public Module {
 public:
  struct Event {
    Cycle cycle;
    T value;
  };

  /// Records at most `max_events` (older events are kept; further traffic
  /// still flows, uncaptured).
  StreamTap(std::string name, Stream<T>* in, Stream<T>* out,
            size_t max_events = 4096)
      : Module(std::move(name)), in_(in), out_(out), max_events_(max_events) {
    FPGADP_CHECK(in_ != nullptr && out_ != nullptr);
    in_->BindConsumer(this);
    out_->BindProducer(this);
    // Event-safe but NOT parallel-safe: the tap emits trace instants through
    // a shared TraceWriter, which must stay on the coordinating thread.
    SetEventSafe();
  }

  void Tick(Cycle cycle) override {
    // Exactly one item per cycle: the tap is a register slice, not a burst
    // mover. Draining more would compress the burst shapes it exists to
    // record and let a tapped pipeline outrun an untapped one. Uses the
    // span API as a length-1 burst so the move skips the per-item checks.
    std::span<const T> src = in_->ReadableSpan();
    if (src.empty()) {
      MarkStall(StallKind::kInputStarved);
      return;
    }
    std::span<T> dst = out_->WritableSpan();
    if (dst.empty()) {
      MarkStall(StallKind::kOutputBlocked);
      return;
    }
    if (events_.size() < max_events_) events_.push_back({cycle, src[0]});
    ++forwarded_;
    if (trace_writer() != nullptr) {
      trace_writer()->Instant(trace_pid(), trace_tid(), name(), cycle);
    }
    dst[0] = src[0];
    in_->ConsumeRead(1);
    out_->CommitWrite(1);
    MarkBusy();
  }

  bool Idle() const override { return true; }

  /// Purely reactive: the tap only moves when its input has traffic, so the
  /// commit edge on `in_` is the complete wake set.
  Cycle NextEventCycle(Cycle now) const override {
    (void)now;
    return kNoEventCycle;
  }

  const std::vector<Event>& events() const { return events_; }
  uint64_t forwarded() const { return forwarded_; }

  /// Largest gap (in cycles) between consecutive captured events — a stall
  /// detector.
  Cycle MaxInterArrivalGap() const {
    Cycle worst = 0;
    for (size_t i = 1; i < events_.size(); ++i) {
      worst = std::max(worst, events_[i].cycle - events_[i - 1].cycle);
    }
    return worst;
  }

 protected:
  void AttributeSkip(Cycle from, Cycle to) override {
    // The tap is only ever skipped while its input is empty, where the
    // per-cycle Tick marks input-starved (with traffic queued it is re-armed
    // every cycle, including while output-blocked).
    MarkStallN(StallKind::kInputStarved, to - from);
  }

 private:
  Stream<T>* in_;
  Stream<T>* out_;
  size_t max_events_;
  std::vector<Event> events_;
  uint64_t forwarded_ = 0;
};

}  // namespace fpgadp::sim

#endif  // FPGADP_SIM_TAP_H_
