#ifndef FPGADP_SIM_MODULE_H_
#define FPGADP_SIM_MODULE_H_

#include <cstdint>
#include <string>
#include <utility>

namespace fpgadp::obs {
class MetricsRegistry;
class TraceCounterSink;
class TraceWriter;
}  // namespace fpgadp::obs

namespace fpgadp::sim {

/// Simulated clock cycle index.
using Cycle = uint64_t;

/// Why a module made no forward progress in a cycle. Attribution follows the
/// classic pipeline-stall taxonomy: waiting on an empty input FIFO, waiting
/// on a full output FIFO, or genuinely having no work.
enum class StallKind : uint8_t {
  kInputStarved = 0,
  kOutputBlocked = 1,
  kIdle = 2,
};

/// A hardware block in the spatial dataflow simulator. Modules communicate
/// exclusively through Stream<T> channels (see stream.h) so the composition
/// mirrors an HLS `#pragma HLS dataflow` region: every module is "running"
/// every cycle, consuming from input streams and producing to output streams
/// under backpressure.
///
/// The engine calls Tick() on every module each cycle (compute phase), then
/// commits all streams (update phase), so the order in which modules tick
/// never changes simulation results.
///
/// Each Tick classifies the cycle into exactly one bucket: MarkBusy() for
/// forward progress, or MarkStall() for the three stall kinds. The engine
/// backfills any unclassified cycle as idle (FinalizeTick), so per-module
/// bucket totals always sum to the elapsed cycle count.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Advances the module by one clock cycle. Reads from input streams are
  /// visible immediately; writes become visible to consumers next cycle.
  virtual void Tick(Cycle cycle) = 0;

  /// True iff the module holds no in-flight state (nothing buffered, no
  /// pending latencies). The engine stops when all modules are idle and all
  /// streams are drained.
  virtual bool Idle() const = 0;

  const std::string& name() const { return name_; }

  /// Cycles in which the module made forward progress; for utilization
  /// reporting. Subclasses call MarkBusy() from Tick().
  uint64_t busy_cycles() const { return busy_cycles_; }

  /// Stall-attribution counters (see StallKind).
  uint64_t starved_cycles() const { return starved_cycles_; }
  uint64_t blocked_cycles() const { return blocked_cycles_; }
  uint64_t idle_cycles() const { return idle_cycles_; }

  /// Total classified cycles: busy + starved + blocked + idle.
  uint64_t attributed_cycles() const { return attributed_; }

  /// Called by the engine after each Tick(): attributes the cycle as idle
  /// when the subclass recorded nothing, keeping the per-module invariant
  /// (one bucket per ticked cycle) without requiring every subclass to
  /// classify explicitly.
  void FinalizeTick() {
    ++ticked_;
    if (attributed_ < ticked_) {
      idle_cycles_ += ticked_ - attributed_;
      attributed_ = ticked_;
    }
  }

  /// Engine probe attach: gives the module a place to emit per-item trace
  /// events (see StreamTap). Null writer detaches.
  void AttachTrace(obs::TraceWriter* writer, int pid, int tid) {
    trace_writer_ = writer;
    trace_pid_ = pid;
    trace_tid_ = tid;
  }

  /// Periodic trace sampling hook: modules owning hardware-level resources
  /// (memory bus, NIC ports) publish counter tracks here.
  virtual void SampleTraceCounters(obs::TraceCounterSink& sink) { (void)sink; }

  /// Metrics export hook for module-specific counters beyond the stall
  /// buckets (e.g. bus-busy cycles). Called by the engine when a metrics
  /// registry is attached.
  virtual void ExportCustomMetrics(obs::MetricsRegistry& registry) const {
    (void)registry;
  }

 protected:
  void MarkBusy() {
    ++busy_cycles_;
    ++attributed_;
  }

  void MarkStall(StallKind kind) {
    switch (kind) {
      case StallKind::kInputStarved: ++starved_cycles_; break;
      case StallKind::kOutputBlocked: ++blocked_cycles_; break;
      case StallKind::kIdle: ++idle_cycles_; break;
    }
    ++attributed_;
  }

  obs::TraceWriter* trace_writer() const { return trace_writer_; }
  int trace_pid() const { return trace_pid_; }
  int trace_tid() const { return trace_tid_; }

 private:
  std::string name_;
  uint64_t busy_cycles_ = 0;
  uint64_t starved_cycles_ = 0;
  uint64_t blocked_cycles_ = 0;
  uint64_t idle_cycles_ = 0;
  uint64_t attributed_ = 0;
  uint64_t ticked_ = 0;
  obs::TraceWriter* trace_writer_ = nullptr;
  int trace_pid_ = 0;
  int trace_tid_ = 0;
};

}  // namespace fpgadp::sim

#endif  // FPGADP_SIM_MODULE_H_
