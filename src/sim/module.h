#ifndef FPGADP_SIM_MODULE_H_
#define FPGADP_SIM_MODULE_H_

#include <cstdint>
#include <string>
#include <utility>

namespace fpgadp::sim {

/// Simulated clock cycle index.
using Cycle = uint64_t;

/// A hardware block in the spatial dataflow simulator. Modules communicate
/// exclusively through Stream<T> channels (see stream.h) so the composition
/// mirrors an HLS `#pragma HLS dataflow` region: every module is "running"
/// every cycle, consuming from input streams and producing to output streams
/// under backpressure.
///
/// The engine calls Tick() on every module each cycle (compute phase), then
/// commits all streams (update phase), so the order in which modules tick
/// never changes simulation results.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Advances the module by one clock cycle. Reads from input streams are
  /// visible immediately; writes become visible to consumers next cycle.
  virtual void Tick(Cycle cycle) = 0;

  /// True iff the module holds no in-flight state (nothing buffered, no
  /// pending latencies). The engine stops when all modules are idle and all
  /// streams are drained.
  virtual bool Idle() const = 0;

  const std::string& name() const { return name_; }

  /// Cycles in which the module made forward progress; for utilization
  /// reporting. Subclasses call MarkBusy() from Tick().
  uint64_t busy_cycles() const { return busy_cycles_; }

 protected:
  void MarkBusy() { ++busy_cycles_; }

 private:
  std::string name_;
  uint64_t busy_cycles_ = 0;
};

}  // namespace fpgadp::sim

#endif  // FPGADP_SIM_MODULE_H_
