#ifndef FPGADP_SIM_MODULE_H_
#define FPGADP_SIM_MODULE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace fpgadp::obs {
class MetricsRegistry;
class TraceCounterSink;
class TraceWriter;
}  // namespace fpgadp::obs

namespace fpgadp::sim {

/// Simulated clock cycle index.
using Cycle = uint64_t;

/// Sentinel NextEventCycle() value: the module has no self-scheduled future
/// event — it only reacts to stream traffic (or is finished entirely).
inline constexpr Cycle kNoEventCycle = ~Cycle{0};

/// Sentinel NextEventCycle() value: the module declines to hint at all and
/// must be ticked every cycle. This is the base-class default, so an
/// un-audited module is *explicitly* always-active instead of silently
/// returning "now" — the engine DCHECKs that every hint is one of the two
/// sentinels or a cycle >= now, making a buggy hint fail loud.
inline constexpr Cycle kAlwaysActive = ~Cycle{0} - 1;

class Engine;

/// Why a module made no forward progress in a cycle. Attribution follows the
/// classic pipeline-stall taxonomy: waiting on an empty input FIFO, waiting
/// on a full output FIFO, or genuinely having no work.
enum class StallKind : uint8_t {
  kInputStarved = 0,
  kOutputBlocked = 1,
  kIdle = 2,
};

/// A hardware block in the spatial dataflow simulator. Modules communicate
/// exclusively through Stream<T> channels (see stream.h) so the composition
/// mirrors an HLS `#pragma HLS dataflow` region: every module is "running"
/// every cycle, consuming from input streams and producing to output streams
/// under backpressure.
///
/// The engine calls Tick() on every module each cycle (compute phase), then
/// commits all streams (update phase), so the order in which modules tick
/// never changes simulation results.
///
/// Each Tick classifies the cycle into exactly one bucket: MarkBusy() for
/// forward progress, or MarkStall() for the three stall kinds. The engine
/// backfills any unclassified cycle as idle (FinalizeTick), so per-module
/// bucket totals always sum to the elapsed cycle count.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Advances the module by one clock cycle. Reads from input streams are
  /// visible immediately; writes become visible to consumers next cycle.
  virtual void Tick(Cycle cycle) = 0;

  /// True iff the module holds no in-flight state (nothing buffered, no
  /// pending latencies). The engine stops when all modules are idle and all
  /// streams are drained.
  virtual bool Idle() const = 0;

  /// Fast-forward hint: the earliest cycle >= `now` at which this module
  /// could possibly make forward progress, given that every stream in the
  /// system is empty and stays empty until then. Timer- and latency-driven
  /// modules (memory channels, retransmission timers, delay lines) return
  /// their next deadline; purely reactive modules return kNoEventCycle. The
  /// conservative default — kAlwaysActive, "tick me every cycle" — disables
  /// skipping past an un-audited module, so subclasses opt in explicitly.
  ///
  /// Contract: if every module's hint is > c for all cycles in [now, c],
  /// then ticking the system through [now, c) is a no-op except for stall
  /// attribution, which AccountSkip() reproduces in closed form.
  ///
  /// Event-driven scheduling additionally requires (for SetEventSafe
  /// modules) that a hint <= now is returned whenever the module holds
  /// output it could not deliver (full output stream), so a drained
  /// consumer re-opens the path on the very next cycle.
  virtual Cycle NextEventCycle(Cycle now) const {
    (void)now;
    return kAlwaysActive;
  }

  /// Engine-driven bulk attribution for a fast-forwarded gap: accounts the
  /// `to - from` skipped cycles exactly as the per-cycle Tick()s would have
  /// (AttributeSkip first, then idle backfill — the bulk analogue of
  /// FinalizeTick), keeping every bucket total bit-identical to a run
  /// without fast-forward.
  void AccountSkip(Cycle from, Cycle to) {
    AttributeSkip(from, to);
    ticked_ += to - from;
    if (attributed_ < ticked_) {
      idle_cycles_ += ticked_ - attributed_;
      attributed_ = ticked_;
    }
  }

  /// True iff the module's Tick() touches only its own state and its bound
  /// streams (see StreamBase::BindProducer/BindConsumer) — the certification
  /// the engine's parallel mode requires. Modules that call into shared
  /// structures or into other modules directly must stay uncertified; one
  /// uncertified module drops the whole engine to the serial tick path.
  bool parallel_safe() const { return parallel_safe_; }

  /// True iff the module is certified for event-driven scheduling: ticking
  /// it while unarmed (no pending hint, no residual on a bound input stream,
  /// no wakeup) is a no-op except for stall attribution, which AttributeSkip
  /// reproduces. Uncertified modules are ticked every cycle even in event
  /// mode — exact legacy behavior, never an approximation.
  bool event_safe() const { return event_safe_; }

  /// Requests a tick from the event-driven scheduler: at the current cycle
  /// when called from inside another module's Tick() (the engine preserves
  /// registration-order visibility), at the engine's current cycle
  /// otherwise. No-op when the module is not registered with an engine or
  /// the engine is not running event-driven. Modules whose state can be
  /// mutated from *outside* their own Tick (completion queues filled by an
  /// endpoint, outcomes published by a coordinator) call this — directly or
  /// via a wake-listener hook — so the mutation never outruns the hint they
  /// gave when they last ran.
  void WakeUp();

  const std::string& name() const { return name_; }

  /// Cycles in which the module made forward progress; for utilization
  /// reporting. Subclasses call MarkBusy() from Tick().
  uint64_t busy_cycles() const { return busy_cycles_; }

  /// Stall-attribution counters (see StallKind).
  uint64_t starved_cycles() const { return starved_cycles_; }
  uint64_t blocked_cycles() const { return blocked_cycles_; }
  uint64_t idle_cycles() const { return idle_cycles_; }

  /// Total classified cycles: busy + starved + blocked + idle.
  uint64_t attributed_cycles() const { return attributed_; }

  /// Called by the engine after each Tick(): attributes the cycle as idle
  /// when the subclass recorded nothing, keeping the per-module invariant
  /// (one bucket per ticked cycle) without requiring every subclass to
  /// classify explicitly.
  void FinalizeTick() {
    ++ticked_;
    if (attributed_ < ticked_) {
      idle_cycles_ += ticked_ - attributed_;
      attributed_ = ticked_;
    }
  }

  /// Engine probe attach: gives the module a place to emit per-item trace
  /// events (see StreamTap). Null writer detaches.
  void AttachTrace(obs::TraceWriter* writer, int pid, int tid) {
    trace_writer_ = writer;
    trace_pid_ = pid;
    trace_tid_ = tid;
  }

  /// Periodic trace sampling hook: modules owning hardware-level resources
  /// (memory bus, NIC ports) publish counter tracks here.
  virtual void SampleTraceCounters(obs::TraceCounterSink& sink) { (void)sink; }

  /// Metrics export hook for module-specific counters beyond the stall
  /// buckets (e.g. bus-busy cycles). Called by the engine when a metrics
  /// registry is attached.
  virtual void ExportCustomMetrics(obs::MetricsRegistry& registry) const {
    (void)registry;
  }

 protected:
  void MarkBusy() {
    ++busy_cycles_;
    ++attributed_;
  }

  void MarkStall(StallKind kind) {
    switch (kind) {
      case StallKind::kInputStarved: ++starved_cycles_; break;
      case StallKind::kOutputBlocked: ++blocked_cycles_; break;
      case StallKind::kIdle: ++idle_cycles_; break;
    }
    ++attributed_;
  }

  /// Bulk attribution counterparts, for AttributeSkip implementations.
  void MarkBusyN(uint64_t n) {
    busy_cycles_ += n;
    attributed_ += n;
  }

  void MarkStallN(StallKind kind, uint64_t n) {
    switch (kind) {
      case StallKind::kInputStarved: starved_cycles_ += n; break;
      case StallKind::kOutputBlocked: blocked_cycles_ += n; break;
      case StallKind::kIdle: idle_cycles_ += n; break;
    }
    attributed_ += n;
  }

  /// Hook for AccountSkip(): classify the `to - from` skipped cycles the
  /// same way the serial Tick()s would have. The default classifies nothing,
  /// which AccountSkip backfills as idle — correct for any module whose
  /// waiting Tick marks nothing (or kIdle) while its hint is pending.
  virtual void AttributeSkip(Cycle from, Cycle to) {
    (void)from;
    (void)to;
  }

  /// Certifies this module for the engine's parallel tick mode. Call from
  /// the subclass constructor, after binding every stream the Tick touches.
  void SetParallelSafe() { parallel_safe_ = true; }

  /// Certifies this module for event-driven scheduling (see event_safe()).
  /// Call from the subclass constructor, after binding every stream the
  /// Tick touches: the engine re-arms a certified module whenever a bound
  /// input stream holds residual items, so binds double as wake edges.
  void SetEventSafe() { event_safe_ = true; }

  obs::TraceWriter* trace_writer() const { return trace_writer_; }
  int trace_pid() const { return trace_pid_; }
  int trace_tid() const { return trace_tid_; }

 private:
  friend class Engine;  // Sets the backpointer in AddModule.

  std::string name_;
  uint64_t busy_cycles_ = 0;
  uint64_t starved_cycles_ = 0;
  uint64_t blocked_cycles_ = 0;
  uint64_t idle_cycles_ = 0;
  uint64_t attributed_ = 0;
  uint64_t ticked_ = 0;
  bool parallel_safe_ = false;
  bool event_safe_ = false;
  /// Set by Engine::AddModule so WakeUp() can reach the scheduler. A module
  /// belongs to at most one engine (AddModule enforces it).
  Engine* engine_ = nullptr;
  size_t engine_index_ = 0;
  obs::TraceWriter* trace_writer_ = nullptr;
  int trace_pid_ = 0;
  int trace_tid_ = 0;
};

}  // namespace fpgadp::sim

#endif  // FPGADP_SIM_MODULE_H_
