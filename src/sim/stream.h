#ifndef FPGADP_SIM_STREAM_H_
#define FPGADP_SIM_STREAM_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace fpgadp::sim {

class Module;

/// Type-erased base so the engine can commit and inspect streams generically.
class StreamBase {
 public:
  explicit StreamBase(std::string name) : name_(std::move(name)) {}
  virtual ~StreamBase() = default;

  StreamBase(const StreamBase&) = delete;
  StreamBase& operator=(const StreamBase&) = delete;

  /// Makes writes performed during the current cycle visible to readers.
  /// Called by the engine after all modules have ticked.
  virtual void Commit() = 0;

  /// True iff any item is buffered (committed or staged).
  virtual bool InFlight() const = 0;

  /// Current occupancy, committed + staged items — what a depth probe on the
  /// physical FIFO would read. The engine samples this periodically when
  /// observability is enabled.
  virtual size_t Depth() const = 0;

  /// FIFO capacity, for occupancy-relative reporting.
  virtual size_t Capacity() const = 0;

  /// Lifetime item counts, exposed type-erased so the observability layer
  /// can export them without knowing T.
  virtual uint64_t TotalPushed() const = 0;
  virtual uint64_t TotalPopped() const = 0;

  const std::string& name() const { return name_; }

  /// Endpoint declarations for the engine's parallel scheduler: the module
  /// whose Tick writes this stream, and the one whose Tick reads it. Called
  /// from module constructors. A stream may legitimately have an unbound
  /// side (driven from outside the engine, e.g. a test harness); a side
  /// bound twice to *different* modules marks the stream conflicted, which
  /// vetoes parallel ticking for the whole engine (the scheduler cannot
  /// order an unknown set of writers).
  void BindProducer(Module* m) {
    if (producer_ != nullptr && producer_ != m) bind_conflict_ = true;
    producer_ = m;
  }
  void BindConsumer(Module* m) {
    if (consumer_ != nullptr && consumer_ != m) bind_conflict_ = true;
    consumer_ = m;
  }
  Module* producer() const { return producer_; }
  Module* consumer() const { return consumer_; }
  bool bind_conflict() const { return bind_conflict_; }

 private:
  std::string name_;
  Module* producer_ = nullptr;
  Module* consumer_ = nullptr;
  bool bind_conflict_ = false;
};

/// Bounded FIFO channel between two modules — the simulator analog of
/// `hls::stream<T>` with a `#pragma HLS stream depth=N`. Writes performed in
/// cycle c become readable in cycle c+1 (latch semantics), which makes the
/// simulation independent of module tick order and models the one-cycle
/// register between pipeline stages.
///
/// Capacity counts committed + staged items, so a full FIFO exerts
/// backpressure on the producer within the same cycle it fills up.
template <typename T>
class Stream : public StreamBase {
 public:
  Stream(std::string name, size_t capacity)
      : StreamBase(std::move(name)), capacity_(capacity) {
    FPGADP_CHECK(capacity_ > 0);
  }

  /// True iff a Write() this cycle would not overflow the FIFO.
  bool CanWrite() const { return buf_.size() + staged_.size() < capacity_; }

  /// Enqueues `v`; caller must have checked CanWrite().
  void Write(T v) {
    FPGADP_CHECK(CanWrite());
    staged_.push_back(std::move(v));
    ++total_pushed_;
    // Watermark tracks true occupancy (committed + staged), the same
    // quantity capacity/backpressure is computed from — so a full FIFO
    // reports a watermark equal to its capacity.
    high_watermark_ = std::max(high_watermark_, buf_.size() + staged_.size());
  }

  /// True iff an item is available to Read() this cycle.
  bool CanRead() const { return !buf_.empty(); }

  /// Dequeues the oldest committed item; caller must have checked CanRead().
  T Read() {
    FPGADP_CHECK(CanRead());
    T v = std::move(buf_.front());
    buf_.pop_front();
    ++total_popped_;
    return v;
  }

  /// The oldest committed item without consuming it.
  const T& Peek() const {
    FPGADP_CHECK(CanRead());
    return buf_.front();
  }

  /// Number of committed (readable) items.
  size_t Size() const { return buf_.size(); }
  size_t capacity() const { return capacity_; }

  void Commit() override {
    if (!staged_.empty()) {
      for (auto& v : staged_) buf_.push_back(std::move(v));
      staged_.clear();
    }
  }

  bool InFlight() const override { return !buf_.empty() || !staged_.empty(); }

  size_t Depth() const override { return buf_.size() + staged_.size(); }
  size_t Capacity() const override { return capacity_; }
  uint64_t TotalPushed() const override { return total_pushed_; }
  uint64_t TotalPopped() const override { return total_popped_; }

  /// Lifetime statistics, for occupancy analysis.
  uint64_t total_pushed() const { return total_pushed_; }
  uint64_t total_popped() const { return total_popped_; }
  size_t high_watermark() const { return high_watermark_; }

 private:
  size_t capacity_;
  std::deque<T> buf_;
  std::vector<T> staged_;
  uint64_t total_pushed_ = 0;
  uint64_t total_popped_ = 0;
  size_t high_watermark_ = 0;
};

}  // namespace fpgadp::sim

#endif  // FPGADP_SIM_STREAM_H_
