#ifndef FPGADP_SIM_STREAM_H_
#define FPGADP_SIM_STREAM_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace fpgadp::sim {

class Module;

/// Base of every stream. Holds the complete ring-buffer bookkeeping — all of
/// it is independent of the item type, so Commit(), occupancy queries, and
/// traffic stats are NON-virtual: the engine's per-cycle commit loop and
/// quiesce scans never pay a vtable dispatch. Only the item storage lives in
/// the typed subclass.
class StreamBase {
 public:
  StreamBase(std::string name, size_t capacity)
      : capacity_(capacity), name_(std::move(name)) {
    FPGADP_CHECK(capacity_ > 0);
  }
  virtual ~StreamBase() {
    // Deregister from the commit queue (shared with the engine, so it is
    // alive regardless of which side is destroyed first).
    if (commit_queue_ != nullptr) {
      auto& q = *commit_queue_;
      q.erase(std::remove(q.begin(), q.end(), this), q.end());
    }
    if (drain_queue_ != nullptr) {
      auto& q = *drain_queue_;
      q.erase(std::remove(q.begin(), q.end(), this), q.end());
    }
  }

  StreamBase(const StreamBase&) = delete;
  StreamBase& operator=(const StreamBase&) = delete;

  /// Makes writes performed during the current cycle visible to readers.
  /// Called by the engine after all modules have ticked. O(1): folds the
  /// staged count into the committed count, never touches items.
  void Commit() {
    committed_count_ += staged_count_;
    staged_count_ = 0;
    has_staged_ = false;
  }

  /// True iff any item is buffered (committed or staged).
  bool InFlight() const { return committed_count_ + staged_count_ > 0; }

  /// Current occupancy, committed + staged items — what a depth probe on the
  /// physical FIFO would read. The engine samples this periodically when
  /// observability is enabled.
  size_t Depth() const { return committed_count_ + staged_count_; }

  /// FIFO capacity, for occupancy-relative reporting.
  size_t Capacity() const { return capacity_; }

  /// Lifetime item counts, exposed on the base so the observability layer
  /// can export them without knowing T.
  uint64_t TotalPushed() const { return total_pushed_; }
  uint64_t TotalPopped() const { return total_popped_; }

  /// Deepest occupancy (committed + staged — the same quantity backpressure
  /// is computed from) ever observed; a full FIFO reports its capacity.
  size_t high_watermark() const { return high_watermark_; }

  /// True iff writes are staged and the next Commit() will publish them.
  /// The engine's parallel commit shard keys off this flag.
  bool has_staged() const { return has_staged_; }

  const std::string& name() const { return name_; }

  /// Endpoint declarations for the engine's parallel scheduler: the module
  /// whose Tick writes this stream, and the one whose Tick reads it. Called
  /// from module constructors. A stream may legitimately have an unbound
  /// side (driven from outside the engine, e.g. a test harness); a side
  /// bound twice to *different* modules marks the stream conflicted, which
  /// vetoes parallel ticking for the whole engine (the scheduler cannot
  /// order an unknown set of writers).
  void BindProducer(Module* m) {
    if (producer_ != nullptr && producer_ != m) bind_conflict_ = true;
    producer_ = m;
  }
  void BindConsumer(Module* m) {
    if (consumer_ != nullptr && consumer_ != m) bind_conflict_ = true;
    consumer_ = m;
  }
  Module* producer() const { return producer_; }
  Module* consumer() const { return consumer_; }
  bool bind_conflict() const { return bind_conflict_; }

 protected:
  /// Called by the typed stream on the first staged item of a cycle: flags
  /// the stream dirty and, when an engine registered its serial commit
  /// queue, enqueues the stream so the commit phase touches only streams
  /// that actually moved data. The queue pointer is nulled in parallel tick
  /// mode (worker threads may not share a push) — the engine then falls
  /// back to flag-checked iteration.
  void NoteStaged() {
    if (has_staged_) return;
    has_staged_ = true;
    if (commit_queue_ != nullptr) commit_queue_->push_back(this);
  }

  /// Called by the typed stream when a read is about to free slots in a FULL
  /// stream: the producer may be output-blocked, and the event-driven
  /// scheduler must re-arm it for the next cycle (a read edge is the mirror
  /// of the commit edge that wakes consumers). The drain queue is only
  /// attached — like the commit queue — by an engine running the serial
  /// event-driven path; the null check keeps the per-item read cost at one
  /// predictable branch everywhere else.
  void NoteDrained() {
    if (drain_queue_ == nullptr || drained_pending_) return;
    drained_pending_ = true;
    drain_queue_->push_back(this);
  }

  // Ring cursors and counts, maintained by the typed subclass. The ring
  // layout is: head_pos_ points at the oldest committed item, followed by
  // committed_count_ committed items, then staged_count_ staged items
  // ending at tail_pos_ (one past the newest staged item).
  size_t capacity_;
  size_t head_pos_ = 0;
  size_t tail_pos_ = 0;
  size_t committed_count_ = 0;
  size_t staged_count_ = 0;
  uint64_t total_pushed_ = 0;
  uint64_t total_popped_ = 0;
  size_t high_watermark_ = 0;

 private:
  friend class Engine;

  std::string name_;
  Module* producer_ = nullptr;
  Module* consumer_ = nullptr;
  bool bind_conflict_ = false;
  bool has_staged_ = false;
  /// Dirty-stream list shared with the registering engine (see
  /// Engine::AddStream). Shared ownership makes stream/engine destruction
  /// order-independent: a stream staged after its engine died pushes into a
  /// vector nobody drains (bounded at one entry by has_staged_), and the
  /// destructor above removes the stream from a queue its engine still
  /// holds.
  std::shared_ptr<std::vector<StreamBase*>> commit_queue_;
  /// Was-full read notifications for the event-driven scheduler (see
  /// NoteDrained). Same ownership story as the commit queue.
  std::shared_ptr<std::vector<StreamBase*>> drain_queue_;
  bool drained_pending_ = false;
  /// Engine indices of the bound endpoints, cached by
  /// Engine::RebuildSchedule so stream-edge wakeups are O(1) array arms
  /// instead of pointer-to-index lookups. kNoEndpoint when unbound,
  /// conflicted, or the endpoint module is registered with another engine.
  static constexpr size_t kNoEndpoint = ~size_t{0};
  size_t producer_index_ = kNoEndpoint;
  size_t consumer_index_ = kNoEndpoint;
};

/// Bounded FIFO channel between two modules — the simulator analog of
/// `hls::stream<T>` with a `#pragma HLS stream depth=N`. Writes performed in
/// cycle c become readable in cycle c+1 (latch semantics), which makes the
/// simulation independent of module tick order and models the one-cycle
/// register between pipeline stages.
///
/// Capacity counts committed + staged items, so a full FIFO exerts
/// backpressure on the producer within the same cycle it fills up.
///
/// Storage is a fixed-capacity ring buffer (see StreamBase for the cursor
/// layout). Commit() publishes the staged run in O(1); items are written
/// exactly once and never shuffled between containers.
///
/// Two data-plane APIs coexist:
///  * per-item — CanWrite()/Write(), CanRead()/Read()/Peek() — one checked
///    call per item, convenient for control-ish modules;
///  * span-based burst — WritableSpan()/CommitWrite(n) and
///    ReadableSpan()/ConsumeRead(n) — expose the contiguous run up to the
///    ring wrap point, so a wide-lane stage moves a whole burst with one
///    bounds check and one memcpy-shaped loop per cycle. A span never
///    includes staged items (readers) or overflows capacity (writers), so
///    the latch semantics above hold for bursts exactly as for items: data
///    staged this cycle is not readable until after Commit(), regardless of
///    which API staged it. Because a span ends at the wrap point, movers
///    loop "span, consume, span, consume" until the span is empty or their
///    per-cycle budget is spent (at most two iterations cover the ring).
///    An empty WritableSpan is exactly the !CanWrite() condition, and an
///    empty ReadableSpan exactly !CanRead() — the wrap clip never yields an
///    empty span while slots/items remain.
template <typename T>
class Stream : public StreamBase {
 public:
  Stream(std::string name, size_t capacity)
      : StreamBase(std::move(name), capacity), buf_(capacity) {}

  /// True iff `n` Write()s this cycle would not overflow the FIFO.
  bool CanWrite(size_t n = 1) const {
    return committed_count_ + staged_count_ + n <= capacity_;
  }

  /// Enqueues `v`; caller must have checked CanWrite().
  void Write(T v) {
    FPGADP_CHECK(CanWrite());
    buf_[tail_pos_] = std::move(v);
    if (++tail_pos_ == capacity_) tail_pos_ = 0;
    ++staged_count_;
    ++total_pushed_;
    high_watermark_ =
        std::max(high_watermark_, committed_count_ + staged_count_);
    NoteStaged();
  }

  /// True iff `n` items are available to Read() this cycle.
  bool CanRead(size_t n = 1) const { return committed_count_ >= n; }

  /// Dequeues the oldest committed item; caller must have checked CanRead().
  T Read() {
    FPGADP_CHECK(CanRead());
    if (committed_count_ + staged_count_ == capacity_) NoteDrained();
    T v = std::move(buf_[head_pos_]);
    if (++head_pos_ == capacity_) head_pos_ = 0;
    --committed_count_;
    ++total_popped_;
    return v;
  }

  /// The oldest committed item without consuming it.
  const T& Peek() const {
    FPGADP_CHECK(CanRead());
    return buf_[head_pos_];
  }

  /// Burst write: the contiguous run of free slots starting at the staging
  /// cursor, clipped at the ring wrap. Fill a prefix, then CommitWrite(n).
  /// Empty iff the FIFO is full; may be shorter than the free space when
  /// the run wraps (call again after CommitWrite for the remainder).
  std::span<T> WritableSpan() {
    const size_t free_slots = capacity_ - committed_count_ - staged_count_;
    return {buf_.data() + tail_pos_,
            std::min(free_slots, capacity_ - tail_pos_)};
  }

  /// Stages the first `n` items of the current WritableSpan(). Items become
  /// readable only after Commit(), exactly like Write().
  void CommitWrite(size_t n) {
    FPGADP_CHECK(n <= capacity_ - committed_count_ - staged_count_);
    FPGADP_CHECK(n <= capacity_ - tail_pos_);
    tail_pos_ += n;
    if (tail_pos_ == capacity_) tail_pos_ = 0;
    staged_count_ += n;
    total_pushed_ += n;
    high_watermark_ =
        std::max(high_watermark_, committed_count_ + staged_count_);
    if (n > 0) NoteStaged();
  }

  /// Burst read: the contiguous run of committed items starting at the
  /// oldest, clipped at the ring wrap. Staged items are never included.
  /// Consume a prefix with ConsumeRead(n).
  std::span<const T> ReadableSpan() const {
    return {buf_.data() + head_pos_,
            std::min(committed_count_, capacity_ - head_pos_)};
  }

  /// Retires the first `n` items of the current ReadableSpan().
  void ConsumeRead(size_t n) {
    FPGADP_CHECK(n <= committed_count_);
    FPGADP_CHECK(n <= capacity_ - head_pos_);
    if (n > 0 && committed_count_ + staged_count_ == capacity_) NoteDrained();
    head_pos_ += n;
    if (head_pos_ == capacity_) head_pos_ = 0;
    committed_count_ -= n;
    total_popped_ += n;
  }

  /// Number of committed (readable) items.
  size_t Size() const { return committed_count_; }
  size_t capacity() const { return capacity_; }

  /// Lifetime statistics, for occupancy analysis.
  uint64_t total_pushed() const { return total_pushed_; }
  uint64_t total_popped() const { return total_popped_; }

 private:
  std::vector<T> buf_;  // fixed ring storage, allocated once
};

}  // namespace fpgadp::sim

#endif  // FPGADP_SIM_STREAM_H_
