#include "src/obs/latency_histogram.h"

#include <bit>
#include <sstream>

#include "src/common/check.h"

namespace fpgadp::obs {

LatencyHistogram::LatencyHistogram(uint32_t sub_bucket_bits)
    : sub_bucket_bits_(sub_bucket_bits),
      sub_count_(uint64_t{1} << sub_bucket_bits) {
  FPGADP_CHECK(sub_bucket_bits >= 1 && sub_bucket_bits <= 16);
  // One exact range [0, sub_count) plus one sub_count-wide group per
  // possible leading-bit position above it covers all of uint64.
  counts_.assign((64 - sub_bucket_bits + 1) * sub_count_, 0);
}

size_t LatencyHistogram::BucketIndex(uint64_t value) const {
  if (value < sub_count_) return static_cast<size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - static_cast<int>(sub_bucket_bits_);
  // (value >> shift) is in [sub_count, 2*sub_count): the octave's linear
  // sub-bucket. Group 0 is the exact range; group (shift + 1) holds
  // octave msb.
  return static_cast<size_t>(shift + 1) * sub_count_ +
         static_cast<size_t>((value >> shift) - sub_count_);
}

uint64_t LatencyHistogram::BucketUpperBound(size_t index) const {
  if (index < sub_count_) return index;
  const uint64_t group = index / sub_count_;   // >= 1
  const uint64_t sub = index % sub_count_;
  const uint64_t shift = group - 1;
  return ((sub_count_ + sub + 1) << shift) - 1;
}

void LatencyHistogram::Record(uint64_t value) {
  ++counts_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  FPGADP_CHECK(sub_bucket_bits_ == other.sub_bucket_bits_);
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

uint64_t LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // The ceil(q * count)-th observation in ascending order (1-based), so
  // Quantile(1.0) is the last one and Quantile(0.5) the median's bucket.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (rank < count_ &&
      static_cast<double>(rank) < q * static_cast<double>(count_)) {
    ++rank;
  }
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      const uint64_t bound = BucketUpperBound(i);
      return bound > max_ ? max_ : bound;
    }
  }
  return max_;
}

std::string LatencyHistogram::ToString() const {
  std::ostringstream os;
  os << "count " << count_ << " mean " << mean() << " p50 " << p50()
     << " p99 " << p99() << " p999 " << p999() << " max " << max_;
  return os.str();
}

}  // namespace fpgadp::obs
