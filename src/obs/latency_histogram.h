#ifndef FPGADP_OBS_LATENCY_HISTOGRAM_H_
#define FPGADP_OBS_LATENCY_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fpgadp::obs {

/// Fixed-bucket log-scale histogram for latency distributions measured in
/// integer sim cycles, HdrHistogram-style: every power-of-two octave is
/// split into 2^sub_bucket_bits linear sub-buckets, so the bucket a value
/// lands in bounds it within a relative error of 2^-sub_bucket_bits
/// (6.25% at the default 4 bits) across the full uint64 range — no
/// configuration of an expected maximum, no overflow bucket smearing the
/// tail. Values below one full octave (v < 2^bits) are recorded exactly.
///
/// This is the serving layer's per-request-class latency record
/// (src/serve/): cheap O(1) insert, deterministic quantile extraction
/// (p50/p99/p999 report the landing bucket's inclusive upper bound, never
/// an interpolation, so equal event streams produce bit-equal summaries),
/// and mergeable — Merge() adds another histogram's counts bucket-for-
/// bucket, which is how per-class histograms roll up into a fleet-wide
/// one. Contrast obs::Histogram (metrics.h): that one takes arbitrary
/// caller-chosen bounds and serves low-resolution occupancy tracking;
/// this one owns its geometry so histograms are always merge-compatible
/// at equal sub_bucket_bits.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(uint32_t sub_bucket_bits = 4);

  /// Records one latency observation (cycles).
  void Record(uint64_t value);

  /// Adds `other`'s counts into this histogram. Both must have been built
  /// with the same sub_bucket_bits (checked).
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  /// Min/max observed values, exact (not bucket bounds); 0 when empty.
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value bounding quantile `q` in [0, 1] from above: the inclusive upper
  /// bound of the bucket holding the ceil(q * count)-th observation,
  /// clamped to the observed max. 0 when empty. Never underestimates the
  /// true quantile by more than the bucket's relative width.
  uint64_t Quantile(double q) const;

  uint64_t p50() const { return Quantile(0.50); }
  uint64_t p99() const { return Quantile(0.99); }
  uint64_t p999() const { return Quantile(0.999); }

  uint32_t sub_bucket_bits() const { return sub_bucket_bits_; }
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  /// Inclusive upper bound of bucket `index` (the value Quantile reports
  /// when the quantile lands there).
  uint64_t BucketUpperBound(size_t index) const;

  /// One-line summary: count/mean/p50/p99/p999/max.
  std::string ToString() const;

 private:
  size_t BucketIndex(uint64_t value) const;

  uint32_t sub_bucket_bits_;
  uint64_t sub_count_;  ///< 2^sub_bucket_bits, sub-buckets per octave.
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~uint64_t{0};
  uint64_t max_ = 0;
};

}  // namespace fpgadp::obs

#endif  // FPGADP_OBS_LATENCY_HISTOGRAM_H_
