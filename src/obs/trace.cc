#include "src/obs/trace.h"

#include <fstream>
#include <ostream>
#include <sstream>

namespace fpgadp::obs {

namespace {

void AppendEscaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

int TraceWriter::NewProcess(const std::string& name) {
  const int pid = ++next_pid_;
  events_.push_back({'P', pid, 0, 0, 0, 0, name});
  return pid;
}

int TraceWriter::NewThread(int pid, const std::string& name) {
  const int tid = ++next_tid_;
  events_.push_back({'T', pid, tid, 0, 0, 0, name});
  return tid;
}

void TraceWriter::CompleteSpan(int pid, int tid, const std::string& name,
                               uint64_t ts, uint64_t dur) {
  events_.push_back({'X', pid, tid, ts, dur, 0, name});
  ++span_count_;
}

void TraceWriter::Counter(int pid, const std::string& name, uint64_t ts,
                          double value) {
  events_.push_back({'C', pid, 0, ts, 0, value, name});
  ++counter_count_;
}

void TraceWriter::Instant(int pid, int tid, const std::string& name,
                          uint64_t ts) {
  events_.push_back({'i', pid, tid, ts, 0, 0, name});
  ++instant_count_;
}

void TraceWriter::WriteJson(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n{";
    switch (e.ph) {
      case 'P':
        os << "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << e.pid
           << ",\"args\":{\"name\":\"";
        AppendEscaped(os, e.name);
        os << "\"}";
        break;
      case 'T':
        os << "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << e.pid
           << ",\"tid\":" << e.tid << ",\"args\":{\"name\":\"";
        AppendEscaped(os, e.name);
        os << "\"}";
        break;
      case 'X':
        os << "\"name\":\"";
        AppendEscaped(os, e.name);
        os << "\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":" << e.pid
           << ",\"tid\":" << e.tid << ",\"ts\":" << e.ts
           << ",\"dur\":" << e.dur;
        break;
      case 'C':
        os << "\"name\":\"";
        AppendEscaped(os, e.name);
        os << "\",\"cat\":\"sim\",\"ph\":\"C\",\"pid\":" << e.pid
           << ",\"ts\":" << e.ts << ",\"args\":{\"value\":" << e.value << "}";
        break;
      case 'i':
        os << "\"name\":\"";
        AppendEscaped(os, e.name);
        os << "\",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << e.pid
           << ",\"tid\":" << e.tid << ",\"ts\":" << e.ts;
        break;
    }
    os << "}";
  }
  os << "\n]}\n";
}

Status TraceWriter::WriteFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IoError("cannot open trace file: " + path);
  WriteJson(f);
  f.flush();
  if (!f) return Status::IoError("short write to trace file: " + path);
  return Status::OK();
}

namespace {
TraceWriter* g_trace = nullptr;
}  // namespace

TraceWriter* GlobalTraceWriter() { return g_trace; }
void SetGlobalTraceWriter(TraceWriter* writer) { g_trace = writer; }

}  // namespace fpgadp::obs
