#ifndef FPGADP_OBS_TRACE_H_
#define FPGADP_OBS_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace fpgadp::obs {

/// Collects timeline events and serializes them as Chrome trace_event JSON
/// (the `{"traceEvents":[...]}` object form), loadable in chrome://tracing
/// and Perfetto. One trace "process" groups the tracks of one engine run;
/// each module gets a "thread" track for its busy spans, and streams /
/// hardware resources appear as counter tracks.
///
/// Timestamps are simulated kernel cycles mapped 1:1 onto trace
/// microseconds: 1 cycle renders as 1 us, so the viewer's time axis reads
/// directly in cycles.
class TraceWriter {
 public:
  /// Starts a new process-level track group; returns its pid.
  int NewProcess(const std::string& name);

  /// Starts a thread-level track inside `pid`; returns its tid.
  int NewThread(int pid, const std::string& name);

  /// A closed duration span [ts, ts+dur) on a thread track ("ph":"X").
  void CompleteSpan(int pid, int tid, const std::string& name, uint64_t ts,
                    uint64_t dur);

  /// A sample on a counter track ("ph":"C").
  void Counter(int pid, const std::string& name, uint64_t ts, double value);

  /// A zero-duration marker on a thread track ("ph":"i").
  void Instant(int pid, int tid, const std::string& name, uint64_t ts);

  size_t span_count() const { return span_count_; }
  size_t counter_count() const { return counter_count_; }
  size_t instant_count() const { return instant_count_; }
  size_t event_count() const { return events_.size(); }

  void WriteJson(std::ostream& os) const;
  Status WriteFile(const std::string& path) const;

 private:
  struct Event {
    char ph;  // 'X', 'C', 'i', 'P' (process meta), 'T' (thread meta)
    int pid = 0;
    int tid = 0;
    uint64_t ts = 0;
    uint64_t dur = 0;
    double value = 0;
    std::string name;
  };

  std::vector<Event> events_;
  int next_pid_ = 0;
  int next_tid_ = 0;  // tids are globally unique; simpler and legal
  size_t span_count_ = 0;
  size_t counter_count_ = 0;
  size_t instant_count_ = 0;
};

/// A counter-emission point pre-bound to (writer, pid, timestamp), handed to
/// modules so they can publish hardware-level counters (bus occupancy,
/// per-port queue depth) without knowing trace plumbing.
class TraceCounterSink {
 public:
  TraceCounterSink(TraceWriter* writer, int pid, uint64_t ts)
      : writer_(writer), pid_(pid), ts_(ts) {}

  void Counter(const std::string& name, double value) {
    writer_->Counter(pid_, name, ts_, value);
  }

 private:
  TraceWriter* writer_;
  int pid_;
  uint64_t ts_;
};

/// Process-wide trace writer benches opt into with --trace=<file>; nullptr
/// when disabled. Engines pick this up when they start running, so code that
/// builds engines internally (ExecuteFpga, benches) traces without plumbing.
TraceWriter* GlobalTraceWriter();
void SetGlobalTraceWriter(TraceWriter* writer);

}  // namespace fpgadp::obs

#endif  // FPGADP_OBS_TRACE_H_
