#include "src/obs/metrics.h"

#include <atomic>
#include <sstream>

#include "src/common/check.h"

namespace fpgadp::obs {

namespace internal {

namespace {
// Depth counter, not a flag, so manual Step() loops that nest scopes and
// multi-level parallel engines stay correct. Relaxed is enough: guards are
// entered/left by an engine's coordinator thread, and the DCHECK only needs
// to observe a value that thread published before dispatching Ticks.
std::atomic<int> g_tick_phase_depth{0};
}  // namespace

#if !defined(NDEBUG) || defined(FPGADP_ENABLE_DCHECKS)
TickPhaseGuard::TickPhaseGuard() {
  g_tick_phase_depth.fetch_add(1, std::memory_order_relaxed);
}
TickPhaseGuard::~TickPhaseGuard() {
  g_tick_phase_depth.fetch_sub(1, std::memory_order_relaxed);
}
#endif

bool InTickPhase() {
  return g_tick_phase_depth.load(std::memory_order_relaxed) > 0;
}

}  // namespace internal

// Per-cycle code must cache instrument pointers; a by-name lookup during an
// engine's tick phase is a hot-path regression the DCHECK makes loud.
#define FPGADP_ASSERT_NOT_IN_TICK() \
  FPGADP_DCHECK(!::fpgadp::obs::internal::InTickPhase())

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  FPGADP_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    FPGADP_CHECK(bounds_[i] > bounds_[i - 1]);
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
  max_ = std::max(max_, v);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  const auto target = static_cast<uint64_t>(q * static_cast<double>(count_));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) return i < bounds_.size() ? bounds_[i] : max_;
  }
  return max_;
}

std::vector<double> Pow2Bounds(uint32_t num_buckets) {
  std::vector<double> bounds;
  bounds.reserve(num_buckets);
  double b = 1;
  for (uint32_t i = 0; i < num_buckets; ++i, b *= 2) bounds.push_back(b);
  return bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  FPGADP_ASSERT_NOT_IN_TICK();
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  FPGADP_ASSERT_NOT_IN_TICK();
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  FPGADP_ASSERT_NOT_IN_TICK();
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  FPGADP_ASSERT_NOT_IN_TICK();
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  FPGADP_ASSERT_NOT_IN_TICK();
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  FPGADP_ASSERT_NOT_IN_TICK();
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << ": " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << name << ": " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << ": count " << h->count() << " mean "
       << (h->count() ? h->sum() / static_cast<double>(h->count()) : 0)
       << " p50 " << h->Quantile(0.5) << " p99 " << h->Quantile(0.99)
       << " max " << h->max() << "\n";
  }
  return os.str();
}

namespace {
MetricsRegistry* g_metrics = nullptr;
}  // namespace

MetricsRegistry* GlobalMetrics() { return g_metrics; }
void SetGlobalMetrics(MetricsRegistry* registry) { g_metrics = registry; }

}  // namespace fpgadp::obs
