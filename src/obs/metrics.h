#ifndef FPGADP_OBS_METRICS_H_
#define FPGADP_OBS_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fpgadp::obs {

/// Monotone event count (cycles, items, bytes). Pointer-stable once created
/// through a MetricsRegistry, so hot paths can cache the pointer and bump it
/// with a single increment.
class Counter {
 public:
  void Inc(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Last-written instantaneous value (queue depth, utilization %). SetMax is
/// the high-watermark idiom: keep the largest value ever reported.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void SetMax(double v) { value_ = std::max(value_, v); }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram for occupancy/latency distributions. Bucket i
/// counts observations <= bounds[i]; one extra overflow bucket counts the
/// rest. Bounds must be strictly increasing.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double max() const { return max_; }
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  /// Smallest bucket upper bound covering quantile `q` in [0,1]; the overflow
  /// bucket reports the observed max.
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;  // bounds_.size() + 1 entries
  uint64_t count_ = 0;
  double sum_ = 0;
  double max_ = 0;
};

/// Exponential bucket bounds 1, 2, 4, ... suited to FIFO depths and queue
/// lengths.
std::vector<double> Pow2Bounds(uint32_t num_buckets);

namespace internal {

/// RAII marker an engine holds across its per-cycle tick + commit phase.
/// While any guard is live, by-name registry lookups (Get*/Find*) are a
/// programmer error — hot-path code must resolve instrument handles once,
/// outside the cycle loop — and FPGADP_DCHECK-fail. Nestable (a counter,
/// not a flag) and process-global: safe because no module's Tick() runs a
/// nested engine, so a live guard always means "inside some engine's cycle
/// loop". Compiled to a no-op when FPGADP_DCHECK is compiled out (the
/// assertions that read it are gone too), so release ticking pays nothing.
class TickPhaseGuard {
 public:
#if !defined(NDEBUG) || defined(FPGADP_ENABLE_DCHECKS)
  TickPhaseGuard();
  ~TickPhaseGuard();
#else
  TickPhaseGuard() {}
  ~TickPhaseGuard() {}
#endif
  TickPhaseGuard(const TickPhaseGuard&) = delete;
  TickPhaseGuard& operator=(const TickPhaseGuard&) = delete;
};

/// True while any TickPhaseGuard is live.
bool InTickPhase();

}  // namespace internal

/// A flat namespace of named instruments. Get* creates on first use and
/// returns the same pointer thereafter, so callers register once and record
/// without lookups. Map access (lookup/creation/export) is mutex-guarded so
/// engines exporting from different threads — e.g. a sweep running one
/// engine per worker against the process-global registry — cannot corrupt
/// the name maps; the instruments themselves are still single-writer (each
/// engine's coordinator thread), like the simulator they serve.
///
/// Per-cycle simulation code must not call Get*/Find* — hash + mutex per
/// lookup is exactly the probe cost the observability layer promises to
/// avoid. Every lookup FPGADP_DCHECKs that no engine is inside its tick
/// phase (see internal::TickPhaseGuard).
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` is consulted only on first creation.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = Pow2Bounds(12));

  /// Lookup without creation; nullptr when absent.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Human-readable dump, one instrument per line, sorted by name.
  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-wide registry benches opt into with --metrics; nullptr when
/// disabled. Engines pick this up when they start running.
MetricsRegistry* GlobalMetrics();
void SetGlobalMetrics(MetricsRegistry* registry);

}  // namespace fpgadp::obs

#endif  // FPGADP_OBS_METRICS_H_
