#ifndef FPGADP_FLEETREC_FLEETREC_H_
#define FPGADP_FLEETREC_FLEETREC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/device/device.h"
#include "src/microrec/cartesian.h"
#include "src/microrec/engine.h"
#include "src/microrec/model.h"

namespace fpgadp::fleetrec {

/// FleetRec (KDD'21), the tutorial's large-scale recommendation system: a
/// heterogeneous cluster where FPGA nodes hold the embedding tables (HBM
/// lookups) and GPU nodes run the dense layers, chained over the 100 Gbps
/// network. Batches pipeline through
///
///   FPGA shard lookups  ->  network (concat vectors)  ->  GPU MLP
///
/// so steady-state throughput is the slowest of the three stages — the
/// composition argument FleetRec makes when sizing FPGA:GPU ratios per
/// model.
struct FleetRecConfig {
  uint32_t num_fpga_nodes = 2;
  uint32_t num_gpu_nodes = 1;
  size_t batch = 256;
  /// Effective dense-layer rate of one GPU node (post-efficiency).
  double gpu_flops = 20e12;
  double network_bits_per_sec = 100e9;
  double clock_hz = 200e6;
  microrec::MicroRecConfig fpga;  ///< Per-lookup-node configuration.
  device::DeviceSpec fpga_device = device::AlveoU280();
};

/// Where the steady-state bottleneck sits.
enum class Stage { kFpgaLookup, kNetwork, kGpuMlp };

struct FleetStats {
  double inferences_per_sec = 0;
  double batch_latency_us = 0;  ///< One batch end-to-end (fill latency).
  double fpga_batch_seconds = 0;
  double net_batch_seconds = 0;
  double gpu_batch_seconds = 0;
  Stage bottleneck = Stage::kFpgaLookup;
  uint64_t bytes_per_batch = 0;

  std::string BottleneckName() const;
};

/// Batch-level model of the cluster: the embedding stage is timed with the
/// cycle simulator (one MicroRec lookup engine per FPGA node over its table
/// shard), the network and GPU stages analytically; the pipeline composes
/// them. Tables are sharded round-robin by size across the FPGA nodes.
class FleetRecCluster {
 public:
  /// `model` must outlive the cluster.
  static Result<FleetRecCluster> Create(const microrec::RecModel* model,
                                        const FleetRecConfig& config);

  /// Steady-state throughput + single-batch latency (deterministic).
  Result<FleetStats> Evaluate(uint64_t seed) const;

  const FleetRecConfig& config() const { return config_; }
  /// Groups assigned to FPGA node `i`.
  const microrec::CartesianPlan& shard(uint32_t i) const { return shards_[i]; }

 private:
  FleetRecCluster(const microrec::RecModel* model, FleetRecConfig config,
                  std::vector<microrec::CartesianPlan> shards)
      : model_(model), config_(std::move(config)), shards_(std::move(shards)) {}

  const microrec::RecModel* model_;
  FleetRecConfig config_;
  std::vector<microrec::CartesianPlan> shards_;
};

}  // namespace fpgadp::fleetrec

#endif  // FPGADP_FLEETREC_FLEETREC_H_
