#include "src/fleetrec/fleetrec.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"

namespace fpgadp::fleetrec {

std::string FleetStats::BottleneckName() const {
  switch (bottleneck) {
    case Stage::kFpgaLookup:
      return "fpga-lookup";
    case Stage::kNetwork:
      return "network";
    case Stage::kGpuMlp:
      return "gpu-mlp";
  }
  return "?";
}

Result<FleetRecCluster> FleetRecCluster::Create(
    const microrec::RecModel* model, const FleetRecConfig& config) {
  if (model == nullptr) return Status::InvalidArgument("model is null");
  if (config.num_fpga_nodes == 0 || config.num_gpu_nodes == 0) {
    return Status::InvalidArgument("need at least one FPGA and one GPU node");
  }
  if (config.batch == 0) return Status::InvalidArgument("batch must be > 0");

  // Shard tables across FPGA nodes: biggest table to the least-loaded
  // shard, balancing bytes (and thus lookup traffic).
  microrec::CartesianPlan all = microrec::PlanWithoutCartesian(*model);
  std::vector<size_t> order(all.groups.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return all.groups[a].bytes() > all.groups[b].bytes();
  });
  std::vector<microrec::CartesianPlan> shards(config.num_fpga_nodes);
  std::vector<uint64_t> shard_bytes(config.num_fpga_nodes, 0);
  for (size_t g : order) {
    uint32_t best = 0;
    for (uint32_t s = 1; s < config.num_fpga_nodes; ++s) {
      if (shard_bytes[s] < shard_bytes[best]) best = s;
    }
    shards[best].groups.push_back(all.groups[g]);
    shards[best].total_bytes += all.groups[g].bytes();
    shard_bytes[best] += all.groups[g].bytes();
  }
  return FleetRecCluster(model, config, std::move(shards));
}

Result<FleetStats> FleetRecCluster::Evaluate(uint64_t seed) const {
  FleetStats stats;

  // --- FPGA stage: cycle-simulate each node's lookup engine over its
  // shard (nodes run in parallel; the slowest gates the stage).
  double worst_node_seconds = 0;
  uint64_t total_dim = 0;
  for (uint32_t n = 0; n < config_.num_fpga_nodes; ++n) {
    const microrec::CartesianPlan& shard = shards_[n];
    if (shard.groups.empty()) continue;
    microrec::RecModel node_model;
    for (const auto& g : shard.groups) {
      node_model.tables.push_back({g.rows, g.dim});
      total_dim += g.dim;
    }
    node_model.hidden_layers = {};  // lookups only; the MLP lives on GPUs
    FPGADP_ASSIGN_OR_RETURN(
        auto engine,
        microrec::MicroRecEngine::Create(&node_model,
                                         microrec::PlanWithoutCartesian(
                                             node_model),
                                         config_.fpga_device, config_.fpga));
    FPGADP_ASSIGN_OR_RETURN(auto node_stats,
                            engine.RunBatch(config_.batch, seed + n));
    worst_node_seconds = std::max(worst_node_seconds, node_stats.seconds);
  }
  stats.fpga_batch_seconds = worst_node_seconds;

  // --- Network stage: every inference's concatenated embedding vector
  // crosses to a GPU node (fp16). GPU-side ingest is the choke point.
  stats.bytes_per_batch = uint64_t(config_.batch) * total_dim * 2;
  const double ingest_bytes_per_sec =
      double(config_.num_gpu_nodes) * config_.network_bits_per_sec / 8.0;
  stats.net_batch_seconds =
      double(stats.bytes_per_batch) / ingest_bytes_per_sec;

  // --- GPU stage: batched GEMM across the GPU pool.
  const double batch_flops =
      2.0 * double(model_->MlpMacs()) * double(config_.batch);
  stats.gpu_batch_seconds =
      batch_flops / (double(config_.num_gpu_nodes) * config_.gpu_flops);

  const double slowest = std::max(
      {stats.fpga_batch_seconds, stats.net_batch_seconds,
       stats.gpu_batch_seconds});
  stats.bottleneck = slowest == stats.fpga_batch_seconds ? Stage::kFpgaLookup
                     : slowest == stats.net_batch_seconds ? Stage::kNetwork
                                                          : Stage::kGpuMlp;
  stats.inferences_per_sec = double(config_.batch) / slowest;
  stats.batch_latency_us = (stats.fpga_batch_seconds +
                            stats.net_batch_seconds +
                            stats.gpu_batch_seconds) *
                           1e6;
  return stats;
}

}  // namespace fpgadp::fleetrec
