#include "src/microrec/model.h"

#include <cmath>

#include "src/common/random.h"

namespace fpgadp::microrec {

RecModel MakeTypicalModel(size_t num_tables, uint64_t seed, uint64_t min_rows,
                          uint64_t max_rows, uint32_t dim) {
  RecModel model;
  Rng rng(seed);
  const double lo = std::log(double(min_rows));
  const double hi = std::log(double(max_rows));
  model.tables.reserve(num_tables);
  for (size_t i = 0; i < num_tables; ++i) {
    const double r = std::exp(lo + (hi - lo) * rng.NextDouble());
    model.tables.push_back({uint64_t(r), dim});
  }
  return model;
}

}  // namespace fpgadp::microrec
