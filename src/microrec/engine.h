#ifndef FPGADP_MICROREC_ENGINE_H_
#define FPGADP_MICROREC_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/device/device.h"
#include "src/microrec/cartesian.h"
#include "src/microrec/model.h"

namespace fpgadp::microrec {

/// Where a table group lives on the accelerator.
enum class Loc { kSram, kHbm };

struct Placement {
  Loc loc = Loc::kHbm;
  uint32_t channel = 0;  ///< HBM pseudo-channel (kHbm only).
  uint64_t addr = 0;     ///< Byte offset within the channel.
};

/// The result of placing all table groups onto the board's memory system.
struct MemoryLayout {
  std::vector<Placement> placements;       ///< Per group.
  uint64_t sram_bytes_used = 0;
  std::vector<uint64_t> channel_bytes;     ///< Per HBM channel.
  size_t sram_groups = 0;
  size_t hbm_groups = 0;
};

/// MicroRec's hardware-side trick #1: small tables go to on-chip SRAM
/// (single-cycle access), the rest are spread over the HBM pseudo-channels
/// so one inference's lookups proceed in parallel. Greedy: ascending by
/// size into SRAM until `sram_budget` is spent, remainder largest-first
/// onto the least-loaded channel. Fails with ResourceExhausted if a
/// channel would overflow its capacity share.
Result<MemoryLayout> PlaceTables(const CartesianPlan& plan,
                                 uint32_t hbm_channels,
                                 uint64_t sram_budget_bytes,
                                 uint64_t hbm_capacity_bytes);

struct MicroRecConfig {
  double clock_hz = 200e6;
  uint32_t mlp_macs_per_cycle = 2048;  ///< DSP array width of the FC engine.
  uint32_t jobs_in_flight = 8;         ///< Inferences overlapped in lookup.
  uint64_t sram_budget_bytes = 24ull << 20;  ///< BRAM+URAM given to tables.
  uint32_t override_hbm_channels = 0;  ///< 0 = use the device's count (E6 knob).
};

/// Timing of a simulated inference batch.
struct InferenceStats {
  uint64_t cycles = 0;
  double seconds = 0;
  double inferences_per_sec = 0;
  double latency_us = 0;        ///< Single-inference latency (own sim run).
  uint64_t hbm_lookups = 0;
  uint64_t sram_lookups = 0;
  uint64_t hbm_bytes = 0;
  uint64_t mlp_cycles_per_inference = 0;
};

/// Cycle-level model of the MicroRec accelerator (Figure 5): a lookup
/// engine that fires one inference's group-lookups at the HBM channels and
/// SRAM in parallel (several inferences in flight), feeding a pipelined
/// fully-connected engine.
class MicroRecEngine {
 public:
  /// `model` must outlive the engine. `plan` decides the lookups; the
  /// engine places it onto `device` at construction.
  static Result<MicroRecEngine> Create(const RecModel* model,
                                       CartesianPlan plan,
                                       const device::DeviceSpec& device,
                                       const MicroRecConfig& config = {});

  /// Simulates `num_inferences` with uniformly random ids (seeded).
  Result<InferenceStats> RunBatch(size_t num_inferences, uint64_t seed) const;

  const MemoryLayout& layout() const { return layout_; }
  const CartesianPlan& plan() const { return plan_; }
  const MicroRecConfig& config() const { return config_; }
  uint32_t hbm_channels() const { return hbm_channels_; }

 private:
  MicroRecEngine(const RecModel* model, CartesianPlan plan,
                 MemoryLayout layout, device::DeviceSpec device,
                 MicroRecConfig config, uint32_t hbm_channels)
      : model_(model), plan_(std::move(plan)), layout_(std::move(layout)),
        device_(std::move(device)), config_(config),
        hbm_channels_(hbm_channels) {}

  const RecModel* model_;
  CartesianPlan plan_;
  MemoryLayout layout_;
  device::DeviceSpec device_;
  MicroRecConfig config_;
  uint32_t hbm_channels_;
};

/// Deterministic analytic model of the CPU baseline: embedding gathers are
/// dependent cache-miss chains (partially overlapped by the OoO window),
/// the MLP runs as batched GEMM near peak.
struct CpuRecBaseline {
  double gemm_flops_per_sec = 200e9;
  double lookup_ns = 250;      ///< Effective per-gather cost.
  double lookup_overlap = 4;   ///< Concurrent misses the core sustains.

  double SecondsPerInference(const RecModel& model,
                             size_t lookups_per_inference) const {
    const double gather =
        double(lookups_per_inference) * lookup_ns * 1e-9 / lookup_overlap;
    const double mlp = 2.0 * double(model.MlpMacs()) / gemm_flops_per_sec;
    return gather + mlp;
  }
};

}  // namespace fpgadp::microrec

#endif  // FPGADP_MICROREC_ENGINE_H_
