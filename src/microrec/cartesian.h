#ifndef FPGADP_MICROREC_CARTESIAN_H_
#define FPGADP_MICROREC_CARTESIAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/microrec/model.h"

namespace fpgadp::microrec {

/// A (possibly combined) table the engine actually looks up: either one
/// original table, or the Cartesian product of several small ones.
struct TableGroup {
  std::vector<size_t> members;  ///< Indices into RecModel::tables.
  uint64_t rows = 0;
  uint32_t dim = 0;             ///< Sum of member dims.

  uint64_t bytes() const { return rows * dim * 2ull; }
};

/// The data-structure side of MicroRec: combining tables A and B into the
/// product table A x B replaces two memory accesses with one, at the cost
/// of |A|x|B|x(dimA+dimB) storage — profitable only for small tables.
struct CartesianPlan {
  std::vector<TableGroup> groups;
  uint64_t total_bytes = 0;

  size_t LookupsPerInference() const { return groups.size(); }
};

struct CartesianOptions {
  /// A product is only formed if its row count stays below this.
  uint64_t max_product_rows = 1ull << 20;
  /// Total extra storage allowed over the uncombined layout.
  uint64_t max_extra_bytes = 2ull << 30;
  /// Combine at most this many original tables into one group.
  size_t max_group_size = 3;
};

/// Identity plan: one group per table, no combining (the ablation baseline).
CartesianPlan PlanWithoutCartesian(const RecModel& model);

/// Greedy combining: repeatedly merge the two smallest-by-rows groups while
/// the product respects `options`. Reduces lookups/inference monotonically.
CartesianPlan PlanCartesian(const RecModel& model,
                            const CartesianOptions& options = {});

/// SRAM-aware variant — the co-design MicroRec actually ships: tables that
/// on-chip SRAM will absorb anyway are left alone (their lookups are free),
/// and combining is applied among the remaining HBM-resident tables, where
/// each merge removes one real memory access per inference. `options`
/// should allow larger products than the plain planner (HBM has room).
CartesianPlan PlanCartesianHbmAware(const RecModel& model,
                                    uint64_t sram_budget_bytes,
                                    const CartesianOptions& options = {});

}  // namespace fpgadp::microrec

#endif  // FPGADP_MICROREC_CARTESIAN_H_
