#ifndef FPGADP_MICROREC_MODEL_H_
#define FPGADP_MICROREC_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fpgadp::microrec {

/// One embedding table of a deep recommender model.
struct EmbeddingTable {
  uint64_t rows = 0;
  uint32_t dim = 0;  ///< Embedding width, fp16 entries (2 bytes).

  uint64_t bytes() const { return rows * dim * 2ull; }
};

/// A CTR-prediction model shaped like Figure 4: many embedding tables whose
/// fetched vectors are concatenated and fed through fully-connected layers.
struct RecModel {
  std::vector<EmbeddingTable> tables;
  /// Hidden layer widths of the MLP; the input width is the concatenation
  /// of all embedding dims, and a final scalar output is implied.
  std::vector<uint32_t> hidden_layers = {1024, 512, 256};

  /// Concatenated embedding width (MLP input).
  uint64_t ConcatDim() const {
    uint64_t d = 0;
    for (const auto& t : tables) d += t.dim;
    return d;
  }
  /// Lookups per inference (one per table, before Cartesian combining).
  size_t LookupsPerInference() const { return tables.size(); }
  /// Total embedding storage.
  uint64_t EmbeddingBytes() const {
    uint64_t b = 0;
    for (const auto& t : tables) b += t.bytes();
    return b;
  }
  /// Multiply-accumulates per inference through the MLP (including the
  /// final scalar output layer).
  uint64_t MlpMacs() const {
    uint64_t macs = 0;
    uint64_t in = ConcatDim();
    for (uint32_t h : hidden_layers) {
      macs += in * h;
      in = h;
    }
    macs += in;  // output neuron
    return macs;
  }
};

/// Builds a production-shaped model: `num_tables` tables with log-uniform
/// cardinalities in [min_rows, max_rows] (a few huge, many small — the
/// skew that makes SRAM caching and Cartesian products effective) and a
/// common embedding dim. Deterministic in `seed`.
RecModel MakeTypicalModel(size_t num_tables, uint64_t seed,
                          uint64_t min_rows = 100,
                          uint64_t max_rows = 2'000'000, uint32_t dim = 16);

}  // namespace fpgadp::microrec

#endif  // FPGADP_MICROREC_MODEL_H_
