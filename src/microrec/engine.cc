#include "src/microrec/engine.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "src/common/check.h"
#include "src/common/random.h"
#include "src/common/units.h"
#include "src/memory/multi_channel.h"
#include "src/sim/engine.h"
#include "src/sim/kernels.h"
#include "src/sim/var_stage.h"

namespace fpgadp::microrec {

Result<MemoryLayout> PlaceTables(const CartesianPlan& plan,
                                 uint32_t hbm_channels,
                                 uint64_t sram_budget_bytes,
                                 uint64_t hbm_capacity_bytes) {
  if (hbm_channels == 0) {
    return Status::InvalidArgument("need at least one HBM channel");
  }
  MemoryLayout layout;
  layout.placements.resize(plan.groups.size());
  layout.channel_bytes.assign(hbm_channels, 0);

  // SRAM pass: smallest groups first.
  std::vector<size_t> order(plan.groups.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return plan.groups[a].bytes() < plan.groups[b].bytes();
  });
  std::vector<bool> in_sram(plan.groups.size(), false);
  for (size_t g : order) {
    const uint64_t b = plan.groups[g].bytes();
    if (layout.sram_bytes_used + b > sram_budget_bytes) break;
    layout.sram_bytes_used += b;
    layout.placements[g] = {Loc::kSram, 0, 0};
    in_sram[g] = true;
    ++layout.sram_groups;
  }

  // HBM pass: biggest first onto the least-loaded channel.
  const uint64_t per_channel_capacity = hbm_capacity_bytes / hbm_channels;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const size_t g = *it;
    if (in_sram[g]) continue;
    uint32_t best = 0;
    for (uint32_t c = 1; c < hbm_channels; ++c) {
      if (layout.channel_bytes[c] < layout.channel_bytes[best]) best = c;
    }
    const uint64_t b = plan.groups[g].bytes();
    if (layout.channel_bytes[best] + b > per_channel_capacity) {
      return Status::ResourceExhausted(
          "embedding tables exceed HBM channel capacity");
    }
    layout.placements[g] = {Loc::kHbm, best, layout.channel_bytes[best]};
    layout.channel_bytes[best] += b;
    ++layout.hbm_groups;
  }
  return layout;
}

namespace {

struct JobTok {
  uint32_t id = 0;
};

/// One inference's memory work, precomputed.
struct Job {
  std::vector<std::pair<uint32_t, uint64_t>> hbm;  ///< (channel, addr).
  uint32_t sram_lookups = 0;
  uint32_t bytes_per_lookup = 0;  // unused placeholder for clarity
};

/// Fires each admitted inference's lookups at the HBM channels in parallel
/// (up to `jobs_in_flight` inferences overlapped to hide latency) and
/// releases the inference to the MLP stage when all vectors have arrived.
/// SRAM lookups complete at admission (single-cycle, fully banked).
class LookupDispatcher : public sim::Module {
 public:
  LookupDispatcher(std::string name, const std::vector<Job>* jobs,
                   mem::MultiChannelMemory* hbm, sim::Stream<JobTok>* out,
                   uint32_t jobs_in_flight, uint32_t vector_bytes)
      : sim::Module(std::move(name)), jobs_(jobs), hbm_(hbm), out_(out),
        jobs_in_flight_(jobs_in_flight), vector_bytes_(vector_bytes),
        issued_(jobs->size(), 0), outstanding_(jobs->size(), 0) {}

  void Tick(sim::Cycle) override {
    bool progressed = false;
    // Collect completed vector fetches.
    for (uint32_t c = 0; c < hbm_->num_channels(); ++c) {
      auto& resp = hbm_->response(c);
      while (resp.CanRead()) {
        const auto r = resp.Read();
        const auto job = static_cast<size_t>(r.id);
        FPGADP_CHECK(outstanding_[job] > 0);
        if (--outstanding_[job] == 0) ready_.push_back(job);
        progressed = true;
      }
    }
    // Admit new inferences.
    while (admitted_ < jobs_->size() &&
           admitted_ - completed_admissions() < jobs_in_flight_) {
      const size_t j = admitted_++;
      outstanding_[j] = static_cast<uint32_t>((*jobs_)[j].hbm.size());
      if (outstanding_[j] == 0) ready_.push_back(j);
      progressed = true;
    }
    // Issue pending lookups of admitted inferences, oldest first.
    for (size_t j = issue_head_; j < admitted_; ++j) {
      const Job& job = (*jobs_)[j];
      while (issued_[j] < job.hbm.size()) {
        const auto [ch, addr] = job.hbm[issued_[j]];
        if (!hbm_->request(ch).CanWrite()) break;
        hbm_->request(ch).Write({j, addr, vector_bytes_, false});
        ++issued_[j];
        progressed = true;
      }
      if (j == issue_head_ && issued_[j] == job.hbm.size()) ++issue_head_;
    }
    // Release finished inferences downstream in completion order.
    while (!ready_.empty() && out_->CanWrite()) {
      out_->Write(JobTok{static_cast<uint32_t>(ready_.front())});
      ready_.pop_front();
      ++released_;
      progressed = true;
    }
    if (progressed) MarkBusy();
  }

  bool Idle() const override {
    return released_ == jobs_->size() && ready_.empty();
  }

 private:
  size_t completed_admissions() const { return released_ + ready_.size(); }

  const std::vector<Job>* jobs_;
  mem::MultiChannelMemory* hbm_;
  sim::Stream<JobTok>* out_;
  uint32_t jobs_in_flight_;
  uint32_t vector_bytes_;
  size_t admitted_ = 0;
  size_t issue_head_ = 0;
  size_t released_ = 0;
  std::vector<size_t> issued_;
  std::vector<uint32_t> outstanding_;
  std::deque<size_t> ready_;
};

}  // namespace

Result<MicroRecEngine> MicroRecEngine::Create(const RecModel* model,
                                              CartesianPlan plan,
                                              const device::DeviceSpec& device,
                                              const MicroRecConfig& config) {
  if (model == nullptr) return Status::InvalidArgument("model is null");
  const uint32_t channels = config.override_hbm_channels
                                ? config.override_hbm_channels
                                : device.memory.hbm_channels;
  if (channels == 0) {
    return Status::InvalidArgument("device has no HBM channels");
  }
  FPGADP_ASSIGN_OR_RETURN(
      MemoryLayout layout,
      PlaceTables(plan, channels, config.sram_budget_bytes,
                  device.memory.hbm_capacity_bytes));
  return MicroRecEngine(model, std::move(plan), std::move(layout), device,
                        config, channels);
}

Result<InferenceStats> MicroRecEngine::RunBatch(size_t num_inferences,
                                                uint64_t seed) const {
  if (num_inferences == 0) {
    return Status::InvalidArgument("need at least one inference");
  }
  // Precompute each inference's lookups.
  Rng rng(seed);
  const uint32_t vector_bytes_default =
      plan_.groups.empty() ? 32 : plan_.groups[0].dim * 2;
  std::vector<Job> jobs(num_inferences);
  uint64_t hbm_lookups = 0, sram_lookups = 0;
  for (auto& job : jobs) {
    job.bytes_per_lookup = vector_bytes_default;
    for (size_t g = 0; g < plan_.groups.size(); ++g) {
      const TableGroup& grp = plan_.groups[g];
      const Placement& p = layout_.placements[g];
      if (p.loc == Loc::kSram) {
        ++job.sram_lookups;
        ++sram_lookups;
      } else {
        const uint64_t row = rng.NextBounded(std::max<uint64_t>(grp.rows, 1));
        job.hbm.emplace_back(p.channel, p.addr + row * grp.dim * 2);
        ++hbm_lookups;
      }
    }
  }

  const uint64_t mlp_cycles =
      (model_->MlpMacs() + config_.mlp_macs_per_cycle - 1) /
      config_.mlp_macs_per_cycle;

  auto simulate = [&](const std::vector<Job>& batch,
                      uint64_t* out_hbm_bytes) -> Result<uint64_t> {
    mem::MemoryChannel::Config mc;
    mc.latency_ns = device_.memory.hbm_latency_ns;
    mc.bytes_per_sec = device_.memory.hbm_bytes_per_sec;
    mc.clock_hz = config_.clock_hz;
    mc.access_granularity = 32;
    mem::MultiChannelMemory hbm("hbm", hbm_channels_, mc);

    sim::Stream<JobTok> to_mlp("to_mlp", 8);
    sim::Stream<JobTok> done("done", 8);
    LookupDispatcher dispatcher("lookup", &batch, &hbm, &to_mlp,
                                config_.jobs_in_flight, vector_bytes_default);
    sim::VarStage<JobTok, JobTok> mlp(
        "mlp", &to_mlp, &done, [](const JobTok& t) { return t; },
        [mlp_cycles](const JobTok&) { return mlp_cycles; });
    sim::VectorSink<JobTok> sink("sink", &done);

    sim::Engine engine(config_.clock_hz);
    hbm.RegisterWith(engine);
    engine.AddModule(&dispatcher);
    engine.AddModule(&mlp);
    engine.AddModule(&sink);
    engine.AddStream(&to_mlp);
    engine.AddStream(&done);
    auto run = engine.Run(1ull << 40);
    if (!run.ok()) return run.status();
    FPGADP_CHECK(sink.collected().size() == batch.size());
    if (out_hbm_bytes != nullptr) *out_hbm_bytes = hbm.TotalBytesTransferred();
    return run.value();
  };

  InferenceStats stats;
  FPGADP_ASSIGN_OR_RETURN(stats.cycles, simulate(jobs, &stats.hbm_bytes));
  stats.seconds = CyclesToSeconds(stats.cycles, config_.clock_hz);
  stats.inferences_per_sec = double(num_inferences) / stats.seconds;
  stats.hbm_lookups = hbm_lookups;
  stats.sram_lookups = sram_lookups;
  stats.mlp_cycles_per_inference = mlp_cycles;

  // Single-inference latency from its own run.
  std::vector<Job> one(jobs.begin(), jobs.begin() + 1);
  FPGADP_ASSIGN_OR_RETURN(const uint64_t lat_cycles, simulate(one, nullptr));
  stats.latency_us = CyclesToSeconds(lat_cycles, config_.clock_hz) * 1e6;
  return stats;
}

}  // namespace fpgadp::microrec
