#include "src/microrec/cartesian.h"

#include <algorithm>

namespace fpgadp::microrec {

CartesianPlan PlanWithoutCartesian(const RecModel& model) {
  CartesianPlan plan;
  plan.groups.reserve(model.tables.size());
  for (size_t i = 0; i < model.tables.size(); ++i) {
    const EmbeddingTable& t = model.tables[i];
    plan.groups.push_back({{i}, t.rows, t.dim});
    plan.total_bytes += t.bytes();
  }
  return plan;
}

namespace {

/// Greedily merges the two smallest *eligible* groups of `plan` while the
/// product respects `options`. `eligible(i)` gates which groups may merge.
template <typename Eligible>
void GreedyMerge(CartesianPlan& plan, const CartesianOptions& options,
                 uint64_t base_bytes, Eligible eligible) {
  bool merged = true;
  while (merged) {
    merged = false;
    // Find the two eligible groups with the fewest rows.
    size_t a = SIZE_MAX, b = SIZE_MAX;
    for (size_t i = 0; i < plan.groups.size(); ++i) {
      if (!eligible(plan.groups[i])) continue;
      if (a == SIZE_MAX || plan.groups[i].rows < plan.groups[a].rows) {
        b = a;
        a = i;
      } else if (b == SIZE_MAX || plan.groups[i].rows < plan.groups[b].rows) {
        b = i;
      }
    }
    if (b == SIZE_MAX) break;  // fewer than two eligible groups

    const TableGroup& ga = plan.groups[a];
    const TableGroup& gb = plan.groups[b];
    if (ga.members.size() + gb.members.size() > options.max_group_size) break;
    // Overflow-safe product check.
    if (gb.rows != 0 &&
        ga.rows > options.max_product_rows / std::max<uint64_t>(gb.rows, 1)) {
      break;
    }
    const uint64_t prod_rows = ga.rows * gb.rows;
    if (prod_rows > options.max_product_rows) break;

    TableGroup combined;
    combined.members = ga.members;
    combined.members.insert(combined.members.end(), gb.members.begin(),
                            gb.members.end());
    std::sort(combined.members.begin(), combined.members.end());
    combined.rows = prod_rows;
    combined.dim = ga.dim + gb.dim;

    const uint64_t new_total =
        plan.total_bytes - ga.bytes() - gb.bytes() + combined.bytes();
    if (new_total > base_bytes + options.max_extra_bytes) break;

    // Replace a and b with the combined group.
    if (a > b) std::swap(a, b);
    plan.groups[a] = combined;
    plan.groups.erase(plan.groups.begin() + b);
    plan.total_bytes = new_total;
    merged = true;
  }
}

}  // namespace

CartesianPlan PlanCartesian(const RecModel& model,
                            const CartesianOptions& options) {
  CartesianPlan plan = PlanWithoutCartesian(model);
  GreedyMerge(plan, options, plan.total_bytes,
              [](const TableGroup&) { return true; });
  return plan;
}

CartesianPlan PlanCartesianHbmAware(const RecModel& model,
                                    uint64_t sram_budget_bytes,
                                    const CartesianOptions& options) {
  CartesianPlan plan = PlanWithoutCartesian(model);
  // Predict which groups SRAM will absorb (same smallest-first rule as
  // PlaceTables) and exempt them from merging.
  std::vector<size_t> order(plan.groups.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return plan.groups[a].bytes() < plan.groups[b].bytes();
  });
  uint64_t sram_used = 0;
  uint64_t sram_cutoff_bytes = 0;  // groups at or below this size are SRAM
  for (size_t g : order) {
    const uint64_t b = plan.groups[g].bytes();
    if (sram_used + b > sram_budget_bytes) break;
    sram_used += b;
    sram_cutoff_bytes = b;
  }
  GreedyMerge(plan, options, plan.total_bytes,
              [sram_cutoff_bytes](const TableGroup& g) {
                return g.bytes() > sram_cutoff_bytes;
              });
  return plan;
}

}  // namespace fpgadp::microrec
