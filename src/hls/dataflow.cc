#include "src/hls/dataflow.h"

#include <algorithm>
#include <sstream>

namespace fpgadp::hls {

Result<DataflowRegion::RegionReport> DataflowRegion::Synthesize(
    const device::DeviceSpec& device) const {
  if (stages_.empty()) {
    return Status::InvalidArgument("dataflow region has no stages");
  }
  RegionReport report;
  report.clock_hz = device.max_clock_hz;
  for (const Stage& stage : stages_) {
    FPGADP_ASSIGN_OR_RETURN(SynthesisReport sr,
                            hls::Synthesize(stage.profile, stage.pragmas,
                                            device));
    report.total = report.total + sr.resources;
    report.clock_hz = std::min(report.clock_hz, sr.fmax_hz);
    report.stages.push_back({stage.profile.name, sr});
  }
  // The whole region must place together; re-check the summed footprint.
  report.utilization = device.resources.UtilizationOf(report.total);
  report.fits = report.utilization <= 1.0;

  // Steady state: every stage runs concurrently at the common clock; the
  // slowest items/cycle rate (unroll / II) gates the region.
  double worst_rate = 1e300;
  for (size_t i = 0; i < report.stages.size(); ++i) {
    const SynthesisReport& sr = report.stages[i].synthesis;
    const double rate =
        double(stages_[i].pragmas.unroll) / double(sr.achieved_ii);
    if (rate < worst_rate) {
      worst_rate = rate;
      report.bottleneck_stage = i;
    }
  }
  report.throughput_items_per_sec =
      report.fits ? worst_rate * report.clock_hz : 0.0;
  return report;
}

std::string DataflowRegion::RegionReport::ToString() const {
  std::ostringstream os;
  os << "dataflow region: " << stages.size() << " stages, clock "
     << clock_hz / 1e6 << " MHz, throughput "
     << throughput_items_per_sec / 1e6 << " Mitems/s (bottleneck: "
     << stages[bottleneck_stage].name << "), util "
     << int(utilization * 100) << "%" << (fits ? "" : " DOES NOT FIT");
  for (const auto& s : stages) {
    os << "\n  " << s.name << ": " << s.synthesis.ToString();
  }
  return os.str();
}

}  // namespace fpgadp::hls
