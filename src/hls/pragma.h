#ifndef FPGADP_HLS_PRAGMA_H_
#define FPGADP_HLS_PRAGMA_H_

#include <cstdint>

namespace fpgadp::hls {

/// The optimization directives of an HLS kernel, mirroring the pragmas the
/// tutorial's Programming section teaches:
///
///   #pragma HLS pipeline II=<pipeline_ii>
///   #pragma HLS unroll factor=<unroll>
///   #pragma HLS array_partition factor=<array_partition>
///   #pragma HLS stream depth=<stream_depth>
///   #pragma HLS dataflow            (when `dataflow` is true)
struct Pragmas {
  uint32_t pipeline_ii = 1;
  uint32_t unroll = 1;
  uint32_t array_partition = 1;
  uint32_t stream_depth = 2;
  bool dataflow = true;
};

}  // namespace fpgadp::hls

#endif  // FPGADP_HLS_PRAGMA_H_
