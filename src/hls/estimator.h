#ifndef FPGADP_HLS_ESTIMATOR_H_
#define FPGADP_HLS_ESTIMATOR_H_

#include <cstdint>
#include <string>

#include "src/common/result.h"
#include "src/device/device.h"
#include "src/hls/pragma.h"

namespace fpgadp::hls {

/// Static description of one loop iteration of a kernel body — what an HLS
/// front-end extracts before scheduling. Counts are per (pre-unroll) item.
struct KernelProfile {
  std::string name;
  uint32_t int_adds = 0;
  uint32_t int_mults = 0;
  uint32_t fp_adds = 0;
  uint32_t fp_mults = 0;
  uint32_t comparisons = 0;
  /// On-chip array bytes the body indexes (BRAM/URAM candidates).
  uint64_t local_bytes = 0;
  /// Loads+stores to those local arrays per iteration.
  uint32_t local_mem_accesses = 0;
  /// Cycles of unavoidable loop-carried dependency (e.g. an accumulation
  /// chain); lower-bounds the achievable II.
  uint32_t dependency_distance = 0;
};

/// What "synthesis" of a profile under a set of pragmas yields.
struct SynthesisReport {
  device::Resources resources;
  /// II actually achievable (>= requested when memory ports are the wall).
  uint32_t achieved_ii = 1;
  /// Post-route clock estimate; degrades as the design fills the device.
  double fmax_hz = 0;
  /// Steady-state items/second = fmax * unroll / achieved_ii.
  double throughput_items_per_sec = 0;
  /// Device utilization in [0, inf); > 1 would not place-and-route.
  double utilization = 0;
  bool fits = false;

  /// Human-readable multi-line report, in the spirit of a Vitis HLS log.
  std::string ToString() const;
};

/// A deliberately simple analytic model of HLS scheduling + resource
/// mapping. It exists to reproduce the *lessons* of the tutorial's
/// Programming section — how II, unroll, and array partitioning trade
/// resources for throughput on a spatial architecture — not to replace a
/// real scheduler. Formulas are documented inline in the implementation.
///
/// Returns InvalidArgument for zero unroll/II.
Result<SynthesisReport> Synthesize(const KernelProfile& profile,
                                   const Pragmas& pragmas,
                                   const device::DeviceSpec& device);

}  // namespace fpgadp::hls

#endif  // FPGADP_HLS_ESTIMATOR_H_
