#ifndef FPGADP_HLS_DATAFLOW_H_
#define FPGADP_HLS_DATAFLOW_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/device/device.h"
#include "src/hls/estimator.h"

namespace fpgadp::hls {

/// A `#pragma HLS dataflow` region: a chain of concurrently running
/// kernels connected by streams. The composer synthesizes each stage,
/// sums resources, and derives the region's steady-state throughput —
/// the slowest stage — plus the common clock (the slowest stage's fmax),
/// which is how a multi-kernel Vitis design actually closes timing.
class DataflowRegion {
 public:
  explicit DataflowRegion(std::string name) : name_(std::move(name)) {}

  /// Appends a pipeline stage.
  void AddStage(const KernelProfile& profile, const Pragmas& pragmas) {
    stages_.push_back({profile, pragmas});
  }

  struct StageReport {
    std::string name;
    SynthesisReport synthesis;
  };

  struct RegionReport {
    std::vector<StageReport> stages;
    device::Resources total;
    double clock_hz = 0;   ///< min over stages' fmax.
    double throughput_items_per_sec = 0;  ///< Bottleneck stage at the
                                          ///< common clock.
    size_t bottleneck_stage = 0;
    double utilization = 0;
    bool fits = false;

    std::string ToString() const;
  };

  /// Synthesizes every stage onto `device` and composes the region.
  /// Returns InvalidArgument for an empty region.
  Result<RegionReport> Synthesize(const device::DeviceSpec& device) const;

  const std::string& name() const { return name_; }
  size_t num_stages() const { return stages_.size(); }

 private:
  struct Stage {
    KernelProfile profile;
    Pragmas pragmas;
  };

  std::string name_;
  std::vector<Stage> stages_;
};

}  // namespace fpgadp::hls

#endif  // FPGADP_HLS_DATAFLOW_H_
