#include "src/hls/estimator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace fpgadp::hls {

namespace {

// Per-operator resource costs, loosely following UltraScale+ mapping:
// a 32-bit integer adder packs into carry chains (LUTs), an integer
// multiplier uses DSP48 slices, floating point cores use DSPs plus control
// logic, and comparators are LUT trees.
constexpr uint64_t kLutsPerIntAdd = 32;
constexpr uint64_t kDspsPerIntMult = 2;
constexpr uint64_t kLutsPerFpAdd = 200;
constexpr uint64_t kDspsPerFpAdd = 2;
constexpr uint64_t kLutsPerFpMult = 150;
constexpr uint64_t kDspsPerFpMult = 3;
constexpr uint64_t kLutsPerCompare = 16;
// Fixed control overhead per kernel instance (FSM, stream handshakes).
constexpr uint64_t kControlLuts = 500;
// BRAM36 stores 4.5 KiB.
constexpr uint64_t kBytesPerBram = 4608;

}  // namespace

Result<SynthesisReport> Synthesize(const KernelProfile& profile,
                                   const Pragmas& pragmas,
                                   const device::DeviceSpec& device) {
  if (pragmas.unroll == 0) {
    return Status::InvalidArgument("unroll factor must be >= 1");
  }
  if (pragmas.pipeline_ii == 0) {
    return Status::InvalidArgument("pipeline II must be >= 1");
  }
  if (pragmas.array_partition == 0) {
    return Status::InvalidArgument("array_partition factor must be >= 1");
  }

  SynthesisReport rep;

  // --- Resource mapping. Compute resources replicate with the unroll
  // factor: that is the essence of spatial parallelism.
  const uint64_t u = pragmas.unroll;
  rep.resources.luts = kControlLuts +
                       u * (profile.int_adds * kLutsPerIntAdd +
                            profile.fp_adds * kLutsPerFpAdd +
                            profile.fp_mults * kLutsPerFpMult +
                            profile.comparisons * kLutsPerCompare);
  rep.resources.dsps = u * (profile.int_mults * kDspsPerIntMult +
                            profile.fp_adds * kDspsPerFpAdd +
                            profile.fp_mults * kDspsPerFpMult);
  // Flip-flops track LUTs in pipelined designs (every stage registers).
  rep.resources.ffs = rep.resources.luts + rep.resources.luts / 2;
  // Partitioning an array into P banks replicates BRAM address/control, and
  // rounds each bank up to a whole block — the BRAM cost of bandwidth.
  const uint64_t banks = pragmas.array_partition;
  const uint64_t bytes_per_bank =
      (profile.local_bytes + banks - 1) / std::max<uint64_t>(banks, 1);
  rep.resources.bram36 =
      banks * std::max<uint64_t>(
                  1, (bytes_per_bank + kBytesPerBram - 1) / kBytesPerBram);
  if (profile.local_bytes == 0) rep.resources.bram36 = 0;

  // --- II scheduling. A true dual-port BRAM bank serves 2 accesses/cycle;
  // with `banks` partitions the body's local accesses (replicated by unroll)
  // need ceil(accesses*unroll / (2*banks)) cycles, which floors the II.
  // A loop-carried dependency of distance d also floors the II at d.
  uint32_t mem_ii = 1;
  if (profile.local_mem_accesses > 0) {
    const uint64_t accesses =
        static_cast<uint64_t>(profile.local_mem_accesses) * u;
    mem_ii = static_cast<uint32_t>((accesses + 2 * banks - 1) / (2 * banks));
  }
  rep.achieved_ii = std::max({pragmas.pipeline_ii, mem_ii,
                              std::max<uint32_t>(profile.dependency_distance, 1)});

  // --- Timing closure. Designs that fill the device route slower; model a
  // linear derate from the max clock down to 55% of it at full utilization.
  rep.utilization = device.resources.UtilizationOf(rep.resources);
  rep.fits = rep.utilization <= 1.0;
  const double derate = 1.0 - 0.45 * std::min(rep.utilization, 1.0);
  rep.fmax_hz =
      std::clamp(device.max_clock_hz * derate, 100e6, device.max_clock_hz);

  // Steady-state throughput: `unroll` items retire every `achieved_ii`
  // cycles at fmax.
  rep.throughput_items_per_sec =
      rep.fits ? rep.fmax_hz * static_cast<double>(u) / rep.achieved_ii : 0.0;
  return rep;
}

std::string SynthesisReport::ToString() const {
  std::ostringstream os;
  os << "II=" << achieved_ii << " fmax=" << fmax_hz / 1e6 << "MHz"
     << " thrpt=" << throughput_items_per_sec / 1e6 << "M items/s"
     << " LUT=" << resources.luts << " FF=" << resources.ffs
     << " BRAM=" << resources.bram36 << " DSP=" << resources.dsps
     << " util=" << static_cast<int>(utilization * 100) << "%"
     << (fits ? "" : " (DOES NOT FIT)");
  return os.str();
}

}  // namespace fpgadp::hls
