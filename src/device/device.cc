#include "src/device/device.h"

#include <algorithm>

namespace fpgadp::device {

double Resources::UtilizationOf(const Resources& need) const {
  auto ratio = [](uint64_t n, uint64_t have) {
    if (have == 0) return n == 0 ? 0.0 : 1e9;
    return static_cast<double>(n) / static_cast<double>(have);
  };
  double u = ratio(need.luts, luts);
  u = std::max(u, ratio(need.ffs, ffs));
  u = std::max(u, ratio(need.bram36, bram36));
  u = std::max(u, ratio(need.uram, uram));
  u = std::max(u, ratio(need.dsps, dsps));
  return u;
}

DeviceSpec AlveoU250() {
  DeviceSpec d;
  d.name = "Alveo U250";
  d.resources = {/*luts=*/1728000, /*ffs=*/3456000, /*bram36=*/2688,
                 /*uram=*/1280, /*dsps=*/12288};
  d.memory.ddr_channels = 4;
  d.memory.ddr_bytes_per_sec = 19.2e9;
  d.memory.ddr_latency_ns = 90;
  d.memory.ddr_capacity_bytes = 64ull * 1024 * 1024 * 1024;
  return d;
}

DeviceSpec AlveoU280() {
  DeviceSpec d;
  d.name = "Alveo U280";
  d.resources = {/*luts=*/1304000, /*ffs=*/2607000, /*bram36=*/2016,
                 /*uram=*/960, /*dsps=*/9024};
  d.memory.ddr_channels = 2;
  d.memory.ddr_bytes_per_sec = 19.2e9;
  d.memory.ddr_latency_ns = 90;
  d.memory.ddr_capacity_bytes = 32ull * 1024 * 1024 * 1024;
  d.memory.hbm_channels = 32;
  d.memory.hbm_bytes_per_sec = 14.4e9;
  d.memory.hbm_latency_ns = 110;
  d.memory.hbm_capacity_bytes = 8ull * 1024 * 1024 * 1024;
  return d;
}

DeviceSpec AlveoU55C() {
  DeviceSpec d;
  d.name = "Alveo U55C";
  d.resources = {/*luts=*/1304000, /*ffs=*/2607000, /*bram36=*/2016,
                 /*uram=*/960, /*dsps=*/9024};
  d.memory.hbm_channels = 32;
  d.memory.hbm_bytes_per_sec = 14.4e9;
  d.memory.hbm_latency_ns = 110;
  d.memory.hbm_capacity_bytes = 16ull * 1024 * 1024 * 1024;
  return d;
}

}  // namespace fpgadp::device
