#ifndef FPGADP_DEVICE_DEVICE_H_
#define FPGADP_DEVICE_DEVICE_H_

#include <cstdint>
#include <string>

namespace fpgadp::device {

/// Programmable-fabric resource vector. Counts follow AMD/Xilinx UltraScale+
/// datasheet conventions (BRAM = 36 Kb blocks, URAM = 288 Kb blocks).
struct Resources {
  uint64_t luts = 0;
  uint64_t ffs = 0;
  uint64_t bram36 = 0;
  uint64_t uram = 0;
  uint64_t dsps = 0;

  /// Component-wise sum.
  Resources operator+(const Resources& o) const {
    return {luts + o.luts, ffs + o.ffs, bram36 + o.bram36, uram + o.uram,
            dsps + o.dsps};
  }

  /// True iff every component of `need` fits within this budget.
  bool Fits(const Resources& need) const {
    return need.luts <= luts && need.ffs <= ffs && need.bram36 <= bram36 &&
           need.uram <= uram && need.dsps <= dsps;
  }

  /// Largest single-component utilization of `need` against this budget,
  /// in [0, inf); > 1 means over-subscribed.
  double UtilizationOf(const Resources& need) const;
};

/// Off-chip memory system attached to a device.
struct MemorySystem {
  uint32_t ddr_channels = 0;
  double ddr_bytes_per_sec = 0;      // per channel
  double ddr_latency_ns = 0;
  uint32_t hbm_channels = 0;         // HBM2 pseudo-channels
  double hbm_bytes_per_sec = 0;      // per pseudo-channel
  double hbm_latency_ns = 0;
  uint64_t hbm_capacity_bytes = 0;
  uint64_t ddr_capacity_bytes = 0;
};

/// A board in the catalog: the Alveo cards the tutorial's use cases target,
/// with published datasheet characteristics.
struct DeviceSpec {
  std::string name;
  Resources resources;
  MemorySystem memory;
  double default_clock_hz = 200e6;  // typical Vitis HLS timing closure
  double max_clock_hz = 300e6;
  double network_bits_per_sec = 100e9;  // QSFP28 cage(s)
  double pcie_bytes_per_sec = 16e9;     // Gen3 x16 effective
  uint64_t sram_bytes() const {
    // On-chip storage: BRAM (36 Kb) + URAM (288 Kb), in bytes.
    return resources.bram36 * (36ull * 1024 / 8) +
           resources.uram * (288ull * 1024 / 8);
  }
};

/// Alveo U250: big fabric, 4x DDR4 channels, no HBM.
DeviceSpec AlveoU250();

/// Alveo U280: 2x DDR4 + 8 GB HBM2 in 32 pseudo-channels.
DeviceSpec AlveoU280();

/// Alveo U55C: HBM-only board (16 GB HBM2, 32 pseudo-channels), the HACC
/// cluster workhorse.
DeviceSpec AlveoU55C();

/// Calibrated analytic model of the host CPU used for deterministic
/// baselines: a server-class x86 socket.
struct CpuModel {
  std::string name = "cpu-server";
  uint32_t cores = 16;
  double clock_hz = 2.6e9;
  double mem_stream_bytes_per_sec = 25e9;  // single-core streaming
  double mem_random_latency_ns = 80;       // DRAM random access
  double l2_hit_latency_ns = 4;
  uint64_t llc_bytes = 32ull * 1024 * 1024;

  /// Seconds to stream `bytes` through one core.
  double StreamSeconds(uint64_t bytes) const {
    return static_cast<double>(bytes) / mem_stream_bytes_per_sec;
  }
  /// Seconds for `count` dependent random accesses (pointer-chase model).
  double RandomAccessSeconds(uint64_t count) const {
    return static_cast<double>(count) * mem_random_latency_ns * 1e-9;
  }
};

}  // namespace fpgadp::device

#endif  // FPGADP_DEVICE_DEVICE_H_
