#include <gtest/gtest.h>

#include "src/farview/farview.h"
#include "src/relational/cpu_executor.h"
#include "src/relational/table.h"

namespace fpgadp::farview {
namespace {

/// A highly compressible table: few distinct values in every column.
rel::Table CompressibleTable(uint64_t rows) {
  rel::SyntheticTableSpec spec;
  spec.num_rows = rows;
  spec.key_cardinality = 4;   // tiny alphabets compress well
  spec.num_categories = 2;
  spec.seed = 33;
  rel::Table t = rel::MakeSyntheticTable(spec);
  // Flatten the incompressible columns (ids, random doubles).
  for (size_t i = 0; i < t.num_rows(); ++i) {
    t.row(i).Set(0, 7);
    t.row(i).SetDouble(3, 10.0);
    t.row(i).Set(4, int64_t(i % 4));
  }
  return t;
}

rel::Program CountProgram() {
  rel::Program prog;
  prog.ops.push_back(rel::AggregateOp{rel::AggKind::kCount, 0, false});
  return prog;
}

TEST(SerializeRowsTest, RoundTrips) {
  rel::Table t = CompressibleTable(100);
  const auto bytes = rel::SerializeRows(t);
  EXPECT_EQ(bytes.size(), t.total_bytes());
  auto back = rel::DeserializeRows(t.schema(), bytes);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), t.num_rows());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(back->row(i), t.row(i));
  }
}

TEST(SerializeRowsTest, RejectsPartialRows) {
  rel::Table t = CompressibleTable(3);
  auto bytes = rel::SerializeRows(t);
  bytes.pop_back();
  EXPECT_FALSE(rel::DeserializeRows(t.schema(), bytes).ok());
}

TEST(FarviewCompressedTest, StoredBytesShrink) {
  FarviewSystem sys;
  rel::Table t = CompressibleTable(20000);
  const uint64_t raw = sys.LoadTable(t);
  const uint64_t packed = sys.LoadTableCompressed(t);
  auto& node = sys.memory_node();
  EXPECT_EQ(node.table_stored_bytes(raw), t.total_bytes());
  EXPECT_LT(node.table_stored_bytes(packed), t.total_bytes() / 3)
      << "compressible data should shrink >3x";
  EXPECT_TRUE(node.table_is_compressed(packed));
  EXPECT_FALSE(node.table_is_compressed(raw));
}

TEST(FarviewCompressedTest, OffloadResultIdentical) {
  FarviewSystem sys;
  rel::Table t = CompressibleTable(5000);
  const uint64_t packed = sys.LoadTableCompressed(t);
  rel::Program prog;
  rel::FilterOp f;
  f.conjuncts.push_back(rel::Predicate{4, rel::CmpOp::kEq, 1});
  prog.ops.push_back(f);
  const uint64_t pid = sys.RegisterProgram(prog);
  auto stats = sys.RunOffloaded(packed, pid);
  ASSERT_TRUE(stats.ok()) << stats.status();
  auto expected = rel::ExecuteCpu(prog, t);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(stats->result.num_rows(), expected->num_rows());
  for (size_t i = 0; i < expected->num_rows(); ++i) {
    EXPECT_EQ(stats->result.row(i), expected->row(i));
  }
}

TEST(FarviewCompressedTest, CompressedScanIsFaster) {
  // The count query is scan-bound, so reading 5x fewer DRAM bytes should
  // show up directly in the offload time.
  FarviewSystem sys;
  rel::Table t = CompressibleTable(100000);
  const uint64_t raw = sys.LoadTable(t);
  const uint64_t packed = sys.LoadTableCompressed(t);
  const uint64_t pid = sys.RegisterProgram(CountProgram());
  auto s_raw = sys.RunOffloaded(raw, pid);
  auto s_packed = sys.RunOffloaded(packed, pid);
  ASSERT_TRUE(s_raw.ok() && s_packed.ok());
  EXPECT_EQ(s_packed->result.row(0).Get(0), 100000);
  EXPECT_LT(s_packed->dram_bytes, s_raw->dram_bytes / 2);
  EXPECT_LT(s_packed->seconds, s_raw->seconds);
}

TEST(FarviewCompressedTest, FetchAllPaysCpuDecompression) {
  FarviewSystem sys;
  rel::Table t = CompressibleTable(20000);
  const uint64_t raw = sys.LoadTable(t);
  const uint64_t packed = sys.LoadTableCompressed(t);
  const uint64_t pid = sys.RegisterProgram(CountProgram());
  auto f_raw = sys.RunFetchAll(raw, pid);
  auto f_packed = sys.RunFetchAll(packed, pid);
  ASSERT_TRUE(f_raw.ok() && f_packed.ok());
  // Compressed fetch moves fewer wire bytes but pays software inflate.
  EXPECT_LT(f_packed->wire_bytes, f_raw->wire_bytes);
  EXPECT_GT(f_packed->cpu_seconds, f_raw->cpu_seconds);
}

}  // namespace
}  // namespace fpgadp::farview
