// Ring-buffer edge cases for the span-based Stream data plane: wrap
// handling across Commit boundaries, exact-capacity bursts, interleaving
// of the bulk and per-item APIs, and the span-emptiness invariants the
// kernels' stall classification depends on.

#include "src/sim/stream.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

namespace fpgadp::sim {
namespace {

// Drains everything currently committed, in order, via the span API.
std::vector<int> DrainCommitted(Stream<int>& s) {
  std::vector<int> out;
  while (true) {
    std::span<const int> src = s.ReadableSpan();
    if (src.empty()) break;
    out.insert(out.end(), src.begin(), src.end());
    s.ConsumeRead(src.size());
  }
  return out;
}

TEST(StreamRingTest, CapacityOneBehavesAsSingleRegister) {
  Stream<int> s("s", 1);
  EXPECT_EQ(s.WritableSpan().size(), 1u);
  EXPECT_TRUE(s.ReadableSpan().empty());

  s.WritableSpan()[0] = 41;
  s.CommitWrite(1);
  EXPECT_TRUE(s.WritableSpan().empty()) << "staged item must fill capacity 1";
  EXPECT_TRUE(s.ReadableSpan().empty()) << "staged item must not be readable";

  s.Commit();
  ASSERT_EQ(s.ReadableSpan().size(), 1u);
  EXPECT_EQ(s.ReadableSpan()[0], 41);
  EXPECT_TRUE(s.WritableSpan().empty()) << "committed item still occupies it";

  s.ConsumeRead(1);
  EXPECT_EQ(s.WritableSpan().size(), 1u);
  EXPECT_TRUE(s.ReadableSpan().empty());
  EXPECT_EQ(s.high_watermark(), 1u);
}

TEST(StreamRingTest, WraparoundAcrossCommitPreservesOrder) {
  // Capacity 4; advance the cursors so a burst must split at the wrap, with
  // a Commit() landing between the two halves — the "span, consume, span"
  // pattern every converted kernel uses.
  Stream<int> s("s", 4);
  for (int i = 0; i < 3; ++i) s.Write(i);
  s.Commit();
  EXPECT_EQ(s.Read(), 0);
  EXPECT_EQ(s.Read(), 1);  // head = 2, two free slots: positions 0 and 1

  // The free run is clipped at the wrap: slots {3} then {0}.
  std::span<int> w = s.WritableSpan();
  ASSERT_EQ(w.size(), 1u) << "free run must clip at the ring wrap";
  w[0] = 10;
  s.CommitWrite(1);
  s.Commit();

  // After the wrap the staging cursor is back at slot 0, so the free run is
  // the two leading slots; stage only one of them.
  w = s.WritableSpan();
  ASSERT_EQ(w.size(), 2u);
  w[0] = 11;
  s.CommitWrite(1);
  s.Commit();

  EXPECT_EQ(DrainCommitted(s), (std::vector<int>{2, 10, 11}));
}

TEST(StreamRingTest, BulkWriteOfExactlyRemainingCapacity) {
  Stream<int> s("s", 8);
  s.Write(100);
  s.Write(101);
  s.Commit();

  std::span<int> w = s.WritableSpan();
  ASSERT_EQ(w.size(), 6u) << "exactly the remaining capacity";
  std::iota(w.begin(), w.end(), 0);
  s.CommitWrite(6);
  EXPECT_FALSE(s.CanWrite()) << "full including staged";
  EXPECT_TRUE(s.WritableSpan().empty());
  EXPECT_EQ(s.high_watermark(), 8u)
      << "watermark must report capacity when full, staged included";

  s.Commit();
  EXPECT_EQ(DrainCommitted(s), (std::vector<int>{100, 101, 0, 1, 2, 3, 4, 5}));
}

TEST(StreamRingTest, InterleavedBulkAndSingleItemCalls) {
  Stream<int> s("s", 6);
  s.Write(1);                       // per-item
  std::span<int> w = s.WritableSpan();
  ASSERT_GE(w.size(), 2u);
  w[0] = 2;
  w[1] = 3;
  s.CommitWrite(2);                 // bulk
  s.Write(4);                       // per-item again
  EXPECT_EQ(s.Depth(), 4u);
  EXPECT_FALSE(s.CanRead()) << "all four are staged";

  s.Commit();
  ASSERT_TRUE(s.CanRead(2));
  EXPECT_EQ(s.Read(), 1);           // per-item read
  std::span<const int> r = s.ReadableSpan();
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], 2);
  s.ConsumeRead(1);                 // bulk read
  EXPECT_EQ(s.Read(), 3);
  EXPECT_EQ(s.Peek(), 4);
  EXPECT_EQ(s.Read(), 4);
  EXPECT_EQ(s.total_pushed(), 4u);
  EXPECT_EQ(s.total_popped(), 4u);
}

TEST(StreamRingTest, PeekMatchesSpanHeadAfterWrap) {
  Stream<int> s("s", 3);
  s.Write(7);
  s.Write(8);
  s.Commit();
  EXPECT_EQ(s.Read(), 7);
  s.Write(9);  // staged at the wrap position
  s.Commit();
  // Oldest committed item is 8, regardless of where the ring wrapped.
  EXPECT_EQ(s.Peek(), 8);
  ASSERT_FALSE(s.ReadableSpan().empty());
  EXPECT_EQ(s.ReadableSpan()[0], 8);
  EXPECT_EQ(s.Read(), 8);
  EXPECT_EQ(s.Peek(), 9);
}

TEST(StreamRingTest, SpanEmptinessMatchesPerItemGates) {
  // The stall-classification contract: WritableSpan().empty() iff
  // !CanWrite() and ReadableSpan().empty() iff !CanRead(), at every
  // occupancy and cursor alignment a capacity-4 ring can reach.
  for (size_t preload = 0; preload < 4; ++preload) {
    Stream<int> s("s", 4);
    // Rotate the cursors to `preload` before testing.
    for (size_t i = 0; i < preload; ++i) s.Write(int(i));
    s.Commit();
    for (size_t i = 0; i < preload; ++i) (void)s.Read();

    for (size_t fill = 0; fill <= 4; ++fill) {
      EXPECT_EQ(s.WritableSpan().empty(), !s.CanWrite())
          << "preload " << preload << " fill " << fill;
      if (fill < 4) s.Write(int(fill));
    }
    s.Commit();
    for (size_t left = 4; left > 0; --left) {
      EXPECT_EQ(s.ReadableSpan().empty(), !s.CanRead())
          << "preload " << preload << " left " << left;
      (void)s.Read();
    }
    EXPECT_TRUE(s.ReadableSpan().empty());
    EXPECT_EQ(s.ReadableSpan().empty(), !s.CanRead());
  }
}

TEST(StreamRingTest, CommitWriteZeroDoesNotDirtyTheStream) {
  Stream<int> s("s", 4);
  s.CommitWrite(0);
  EXPECT_FALSE(s.has_staged()) << "empty burst must not mark the stream dirty";
  EXPECT_EQ(s.Depth(), 0u);
  EXPECT_EQ(s.high_watermark(), 0u);
  s.Write(5);
  EXPECT_TRUE(s.has_staged());
}

TEST(StreamRingTest, SustainedWrapStress) {
  // Push/pop through several full revolutions of a small ring with a mix of
  // burst sizes; contents and order must match a reference queue.
  Stream<int> s("s", 5);
  std::vector<int> expect, got;
  int next = 0;
  for (int round = 0; round < 100; ++round) {
    const size_t want = 1 + size_t(round) % 5;
    size_t written = 0;
    while (written < want) {
      std::span<int> w = s.WritableSpan();
      if (w.empty()) break;
      const size_t n = std::min(want - written, w.size());
      for (size_t i = 0; i < n; ++i) {
        w[i] = next;
        expect.push_back(next);
        ++next;
      }
      s.CommitWrite(n);
      written += n;
    }
    s.Commit();
    const size_t drain = 1 + size_t(round * 3) % 5;
    size_t drained = 0;
    while (drained < drain) {
      std::span<const int> r = s.ReadableSpan();
      if (r.empty()) break;
      const size_t n = std::min(drain - drained, r.size());
      got.insert(got.end(), r.begin(), r.begin() + ptrdiff_t(n));
      s.ConsumeRead(n);
      drained += n;
    }
  }
  const std::vector<int> tail = DrainCommitted(s);
  got.insert(got.end(), tail.begin(), tail.end());
  expect.resize(got.size());  // some writes were clipped by backpressure
  EXPECT_EQ(got, expect);
  EXPECT_EQ(s.total_popped(), got.size());
}

}  // namespace
}  // namespace fpgadp::sim
