#include "src/common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace fpgadp {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ExponentialMomentsAndDeterminism) {
  Rng rng(17);
  const int n = 200000;
  const double mean = 750.0;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextExponential(mean);
    ASSERT_GE(v, 0.0);
    sum += v;
    sq += v * v;
  }
  // Exponential(mean): E[X] = mean, Var[X] = mean^2.
  EXPECT_NEAR(sum / n, mean, mean * 0.02);
  EXPECT_NEAR(sq / n - (sum / n) * (sum / n), mean * mean, mean * mean * 0.05);
  Rng a(29), b(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextExponential(3.0), b.NextExponential(3.0));
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfGenerator zipf(10, 0.0, 17);
  std::vector<int> hist(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hist[zipf.Next()];
  for (int c : hist) {
    EXPECT_NEAR(double(c) / n, 0.1, 0.02);
  }
}

TEST(ZipfTest, SkewConcentratesMassOnHead) {
  ZipfGenerator zipf(1000, 0.99, 19);
  const int n = 100000;
  int head = 0;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next() < 10) ++head;
  }
  // With theta=0.99 the top-1% of keys should draw far more than 1% of
  // accesses (the embedding-cache effect MicroRec exploits).
  EXPECT_GT(double(head) / n, 0.3);
}

TEST(ZipfTest, SamplesAlwaysInRange) {
  ZipfGenerator zipf(37, 0.7, 23);
  for (int i = 0; i < 50000; ++i) EXPECT_LT(zipf.Next(), 37u);
}

TEST(ClusteredVectorsTest, ShapeAndDeterminism) {
  const auto a = GenerateClusteredVectors(100, 16, 4, 31);
  const auto b = GenerateClusteredVectors(100, 16, 4, 31);
  ASSERT_EQ(a.size(), 100u * 16u);
  EXPECT_EQ(a, b);
  const auto c = GenerateClusteredVectors(100, 16, 4, 32);
  EXPECT_NE(a, c);
}

TEST(ClusteredVectorsTest, ClusterStructureIsPresent) {
  // With tiny stddev, vectors collapse onto at most `num_clusters` distinct
  // points; verify pairwise distances are bimodal (near zero or not).
  const size_t dim = 8;
  const auto data = GenerateClusteredVectors(200, dim, 3, 37, 1e-4f);
  int near = 0, far = 0;
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = i + 1; j < 50; ++j) {
      double d2 = 0;
      for (size_t k = 0; k < dim; ++k) {
        const double diff = data[i * dim + k] - data[j * dim + k];
        d2 += diff * diff;
      }
      if (d2 < 1e-4) ++near;
      else ++far;
    }
  }
  EXPECT_GT(near, 0);
  EXPECT_GT(far, 0);
}

}  // namespace
}  // namespace fpgadp
