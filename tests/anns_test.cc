#include "src/anns/ivf.h"

#include <gtest/gtest.h>

#include "src/anns/dataset.h"
#include "src/anns/kmeans.h"
#include "src/anns/pq.h"

namespace fpgadp::anns {
namespace {

DatasetSpec SmallSpec() {
  DatasetSpec spec;
  spec.num_base = 2000;
  spec.num_queries = 20;
  spec.dim = 16;
  spec.num_clusters = 8;
  spec.ground_truth_k = 10;
  spec.seed = 51;
  return spec;
}

IvfPqIndex::Options SmallIndexOptions() {
  IvfPqIndex::Options opts;
  opts.nlist = 16;
  opts.pq.m = 4;
  opts.pq.ksub = 32;
  opts.pq.train_iters = 6;
  return opts;
}

TEST(DatasetTest, GroundTruthIsSortedByDistance) {
  Dataset data = MakeDataset(SmallSpec());
  ASSERT_EQ(data.num_queries(), 20u);
  for (size_t q = 0; q < data.num_queries(); ++q) {
    const auto& gt = data.ground_truth[q];
    ASSERT_EQ(gt.size(), 10u);
    float prev = -1;
    for (uint32_t id : gt) {
      const float d = SquaredL2(data.BaseVector(id), data.QueryVector(q),
                                data.dim);
      EXPECT_GE(d, prev);
      prev = d;
    }
  }
}

TEST(DatasetTest, QueriesAreNotBaseVectors) {
  Dataset data = MakeDataset(SmallSpec());
  // The pool split must not duplicate base vectors into the query set.
  for (size_t q = 0; q < 5; ++q) {
    const float d0 = SquaredL2(data.QueryVector(q),
                               data.BaseVector(data.ground_truth[q][0]),
                               data.dim);
    EXPECT_GT(d0, 0.0f);
  }
}

TEST(RecallTest, Boundaries) {
  EXPECT_DOUBLE_EQ(RecallAtK({1, 2, 3}, {1, 2, 3}, 3), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK({9, 8, 7}, {1, 2, 3}, 3), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK({1, 9, 8}, {1, 2, 3}, 3), 1.0 / 3.0);
  // Order within top-k doesn't matter.
  EXPECT_DOUBLE_EQ(RecallAtK({3, 1, 2}, {1, 2, 3}, 3), 1.0);
}

TEST(KMeansTest, RejectsBadInput) {
  std::vector<float> pts(10 * 4);
  EXPECT_FALSE(KMeans(pts, 3, {}).ok());  // size not multiple of dim
  KMeansOptions opts;
  opts.k = 100;
  EXPECT_FALSE(KMeans(pts, 4, opts).ok());  // fewer points than k
}

TEST(KMeansTest, PartitionsWellSeparatedClusters) {
  // Three tight clusters around distinct corners.
  std::vector<float> pts;
  Dataset dummy;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 50; ++i) {
      pts.push_back(float(c * 10) + 0.01f * float(i % 5));
      pts.push_back(float(c * 10));
    }
  }
  KMeansOptions opts;
  opts.k = 3;
  opts.max_iters = 20;
  auto res = KMeans(pts, 2, opts);
  ASSERT_TRUE(res.ok());
  // All points in the same tight cluster share an assignment.
  for (int c = 0; c < 3; ++c) {
    const uint32_t a0 = res->assignment[c * 50];
    for (int i = 1; i < 50; ++i) {
      EXPECT_EQ(res->assignment[c * 50 + i], a0);
    }
  }
  EXPECT_LT(res->inertia, 1.0);
}

TEST(KMeansTest, InertiaDecreasesWithIterations) {
  Dataset data = MakeDataset(SmallSpec());
  KMeansOptions one;
  one.k = 8;
  one.max_iters = 1;
  KMeansOptions many = one;
  many.max_iters = 15;
  auto r1 = KMeans(data.base, data.dim, one);
  auto r2 = KMeans(data.base, data.dim, many);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_LE(r2->inertia, r1->inertia);
}

TEST(PqTest, RejectsBadOptions) {
  std::vector<float> pts(1000 * 16);
  ProductQuantizer::Options bad_m;
  bad_m.m = 3;  // 16 % 3 != 0
  EXPECT_FALSE(ProductQuantizer::Train(pts, 16, bad_m).ok());
  ProductQuantizer::Options big_ksub;
  big_ksub.ksub = 300;
  EXPECT_FALSE(ProductQuantizer::Train(pts, 16, big_ksub).ok());
}

TEST(PqTest, EncodeDecodeReducesError) {
  Dataset data = MakeDataset(SmallSpec());
  ProductQuantizer::Options opts;
  opts.m = 4;
  opts.ksub = 64;
  auto pq = ProductQuantizer::Train(data.base, data.dim, opts);
  ASSERT_TRUE(pq.ok());
  // Quantization error must be far below the data scale for clustered data.
  double err = 0, norm = 0;
  for (size_t i = 0; i < 100; ++i) {
    const float* v = data.BaseVector(i);
    const auto codes = pq->Encode(v);
    ASSERT_EQ(codes.size(), 4u);
    const auto rec = pq->Decode(codes.data());
    err += SquaredL2(v, rec.data(), data.dim);
    norm += SquaredL2(v, std::vector<float>(data.dim, 0.0f).data(), data.dim);
  }
  EXPECT_LT(err, 0.2 * norm);
}

TEST(PqTest, AdcMatchesDecodedDistance) {
  // ADC(lut, codes) must equal the exact distance between the query and the
  // decoded vector (that's the algebra of the lookup table).
  Dataset data = MakeDataset(SmallSpec());
  ProductQuantizer::Options opts;
  opts.m = 4;
  opts.ksub = 32;
  auto pq = ProductQuantizer::Train(data.base, data.dim, opts);
  ASSERT_TRUE(pq.ok());
  const float* query = data.QueryVector(0);
  const auto lut = pq->BuildLut(query);
  for (size_t i = 0; i < 50; ++i) {
    const auto codes = pq->Encode(data.BaseVector(i));
    const auto decoded = pq->Decode(codes.data());
    const float exact = SquaredL2(query, decoded.data(), data.dim);
    const float adc = pq->AdcDistance(lut, codes.data());
    EXPECT_NEAR(adc, exact, 1e-3f);
  }
}

TEST(IvfTest, BuildPartitionsEverything) {
  Dataset data = MakeDataset(SmallSpec());
  auto index = IvfPqIndex::Build(data.base, data.dim, SmallIndexOptions());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->total_codes(), data.num_base());
  uint64_t sum = 0;
  std::vector<bool> seen(data.num_base(), false);
  for (size_t l = 0; l < index->nlist(); ++l) {
    const auto& list = index->list(l);
    EXPECT_EQ(list.codes.size(), list.ids.size() * index->pq().m());
    sum += list.ids.size();
    for (uint32_t id : list.ids) {
      EXPECT_FALSE(seen[id]) << "vector assigned twice";
      seen[id] = true;
    }
  }
  EXPECT_EQ(sum, data.num_base());
}

double MeasureRecall(const Dataset& data, const IvfPqIndex& index,
                     size_t nprobe, size_t k = 10) {
  IvfPqIndex::SearchParams params;
  params.nprobe = nprobe;
  params.k = k;
  double recall = 0;
  for (size_t q = 0; q < data.num_queries(); ++q) {
    const auto found = index.Search(data.QueryVector(q), params);
    std::vector<uint32_t> ids;
    for (const auto& nb : found) ids.push_back(nb.id);
    recall += RecallAtK(ids, data.ground_truth[q], k);
  }
  return recall / double(data.num_queries());
}

TEST(IvfTest, FullProbeRecallIsHighWithFinePq) {
  Dataset data = MakeDataset(SmallSpec());
  IvfPqIndex::Options opts = SmallIndexOptions();
  opts.pq.m = 8;     // 8 bytes per 16-dim vector: fine quantization
  opts.pq.ksub = 64;
  auto index = IvfPqIndex::Build(data.base, data.dim, opts);
  ASSERT_TRUE(index.ok());
  // Exhaustive probing: only PQ error remains.
  EXPECT_GT(MeasureRecall(data, *index, index->nlist()), 0.8);
}

TEST(IvfTest, LargerPqBudgetImprovesRecall) {
  Dataset data = MakeDataset(SmallSpec());
  IvfPqIndex::Options coarse = SmallIndexOptions();  // m=4, ksub=32
  IvfPqIndex::Options fine = SmallIndexOptions();
  fine.pq.m = 8;
  fine.pq.ksub = 64;
  auto ci = IvfPqIndex::Build(data.base, data.dim, coarse);
  auto fi = IvfPqIndex::Build(data.base, data.dim, fine);
  ASSERT_TRUE(ci.ok() && fi.ok());
  EXPECT_GT(MeasureRecall(data, *fi, ci->nlist()),
            MeasureRecall(data, *ci, ci->nlist()));
}

TEST(IvfTest, RecallGrowsWithNprobe) {
  Dataset data = MakeDataset(SmallSpec());
  auto index = IvfPqIndex::Build(data.base, data.dim, SmallIndexOptions());
  ASSERT_TRUE(index.ok());
  auto recall_at = [&](size_t nprobe) {
    IvfPqIndex::SearchParams params;
    params.nprobe = nprobe;
    params.k = 10;
    double recall = 0;
    for (size_t q = 0; q < data.num_queries(); ++q) {
      const auto found = index->Search(data.QueryVector(q), params);
      std::vector<uint32_t> ids;
      for (const auto& nb : found) ids.push_back(nb.id);
      recall += RecallAtK(ids, data.ground_truth[q], 10);
    }
    return recall / double(data.num_queries());
  };
  const double r1 = recall_at(1);
  const double r4 = recall_at(4);
  const double r16 = recall_at(16);
  EXPECT_LE(r1, r4 + 1e-9);
  EXPECT_LE(r4, r16 + 1e-9);
  EXPECT_GT(r16, r1);
}

TEST(IvfTest, ResultsSortedByDistance) {
  Dataset data = MakeDataset(SmallSpec());
  auto index = IvfPqIndex::Build(data.base, data.dim, SmallIndexOptions());
  ASSERT_TRUE(index.ok());
  IvfPqIndex::SearchParams params;
  params.nprobe = 8;
  params.k = 10;
  const auto found = index->Search(data.QueryVector(0), params);
  for (size_t i = 1; i < found.size(); ++i) {
    EXPECT_LE(found[i - 1].distance, found[i].distance);
  }
}

TEST(IvfTest, CodesScannedMatchesProbedListSizes) {
  Dataset data = MakeDataset(SmallSpec());
  auto index = IvfPqIndex::Build(data.base, data.dim, SmallIndexOptions());
  ASSERT_TRUE(index.ok());
  const float* query = data.QueryVector(3);
  const auto probes = index->SelectProbes(query, 4);
  uint64_t expect = 0;
  for (uint32_t p : probes) expect += index->list(p).ids.size();
  EXPECT_EQ(index->CodesScanned(query, 4), expect);
}

TEST(IvfTest, IndexBytesAccountsCodesAndIds) {
  Dataset data = MakeDataset(SmallSpec());
  auto index = IvfPqIndex::Build(data.base, data.dim, SmallIndexOptions());
  ASSERT_TRUE(index.ok());
  const uint64_t expected = data.num_base() * (4 + 4) /* m + id */ +
                            index->nlist() * data.dim * sizeof(float);
  EXPECT_EQ(index->index_bytes(), expected);
}

}  // namespace
}  // namespace fpgadp::anns
