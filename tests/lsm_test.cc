#include "src/lsm/lsm_tree.h"

#include <gtest/gtest.h>

#include <map>

#include "src/common/random.h"
#include "src/lsm/sstable.h"

namespace fpgadp::lsm {
namespace {

TEST(SsTableTest, FindHitsAndMisses) {
  SsTable t = SsTable::FromSorted({{1, 10, false}, {5, 50, false},
                                   {9, 90, false}});
  ASSERT_TRUE(t.Find(5).has_value());
  EXPECT_EQ(t.Find(5)->value, 50u);
  EXPECT_FALSE(t.Find(4).has_value());
  EXPECT_FALSE(t.Find(100).has_value());
  EXPECT_EQ(t.min_key(), 1u);
  EXPECT_EQ(t.max_key(), 9u);
  EXPECT_EQ(t.bytes(), 3 * sizeof(KvEntry));
}

TEST(MergeTest, FreshestRecordWins) {
  SsTable newer = SsTable::FromSorted({{1, 100, false}, {3, 300, false}});
  SsTable older = SsTable::FromSorted({{1, 1, false}, {2, 2, false},
                                       {3, 3, false}});
  SsTable merged = MergeTables({&newer, &older}, false);
  ASSERT_EQ(merged.num_entries(), 3u);
  EXPECT_EQ(merged.Find(1)->value, 100u);
  EXPECT_EQ(merged.Find(2)->value, 2u);
  EXPECT_EQ(merged.Find(3)->value, 300u);
}

TEST(MergeTest, TombstoneShadowsAndDrops) {
  SsTable newer = SsTable::FromSorted({{2, 0, true}});
  SsTable older = SsTable::FromSorted({{2, 22, false}, {4, 44, false}});
  SsTable kept = MergeTables({&newer, &older}, /*drop_tombstones=*/false);
  ASSERT_TRUE(kept.Find(2).has_value());
  EXPECT_TRUE(kept.Find(2)->tombstone);
  SsTable dropped = MergeTables({&newer, &older}, /*drop_tombstones=*/true);
  EXPECT_FALSE(dropped.Find(2).has_value());
  EXPECT_TRUE(dropped.Find(4).has_value());
}

TEST(MergeTest, ManyTablesStaySorted) {
  Rng rng(7);
  std::vector<SsTable> tables;
  for (int t = 0; t < 6; ++t) {
    std::map<uint64_t, KvEntry> m;
    for (int i = 0; i < 200; ++i) {
      const uint64_t k = rng.NextBounded(500);
      m[k] = {k, rng.Next(), false};
    }
    std::vector<KvEntry> sorted;
    for (auto& [k, e] : m) sorted.push_back(e);
    tables.push_back(SsTable::FromSorted(std::move(sorted)));
  }
  std::vector<const SsTable*> ptrs;
  for (auto& t : tables) ptrs.push_back(&t);
  SsTable merged = MergeTables(ptrs, false);
  for (size_t i = 1; i < merged.num_entries(); ++i) {
    EXPECT_LT(merged.entries()[i - 1].key, merged.entries()[i].key);
  }
}

TEST(LsmTreeTest, PutGetRoundTrip) {
  LsmTree tree;
  tree.Put(1, 11);
  tree.Put(2, 22);
  EXPECT_EQ(tree.Get(1), std::optional<uint64_t>(11));
  EXPECT_EQ(tree.Get(2), std::optional<uint64_t>(22));
  EXPECT_EQ(tree.Get(3), std::nullopt);
}

TEST(LsmTreeTest, OverwriteAndDeleteAcrossFlushes) {
  LsmOptions opts;
  opts.memtable_limit = 8;
  LsmTree tree(opts);
  tree.Put(5, 100);
  tree.Flush();
  tree.Put(5, 200);
  tree.Flush();
  EXPECT_EQ(tree.Get(5), std::optional<uint64_t>(200));
  tree.Delete(5);
  tree.Flush();
  EXPECT_EQ(tree.Get(5), std::nullopt);
}

TEST(LsmTreeTest, MatchesReferenceMapUnderRandomWorkload) {
  LsmOptions opts;
  opts.memtable_limit = 64;
  opts.tables_per_level = 3;
  LsmTree tree(opts);
  std::map<uint64_t, uint64_t> reference;
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.NextBounded(2000);
    if (rng.NextBounded(10) < 8) {
      const uint64_t value = rng.Next();
      tree.Put(key, value);
      reference[key] = value;
    } else {
      tree.Delete(key);
      reference.erase(key);
    }
  }
  for (uint64_t key = 0; key < 2000; ++key) {
    auto it = reference.find(key);
    if (it == reference.end()) {
      EXPECT_EQ(tree.Get(key), std::nullopt) << "key " << key;
    } else {
      EXPECT_EQ(tree.Get(key), std::optional<uint64_t>(it->second))
          << "key " << key;
    }
  }
  EXPECT_GT(tree.stats().compactions, 0u);
}

TEST(LsmTreeTest, CompactionKeepsLevelsBounded) {
  LsmOptions opts;
  opts.memtable_limit = 16;
  opts.tables_per_level = 4;
  LsmTree tree(opts);
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) tree.Put(rng.Next(), 1);
  for (size_t l = 0; l + 1 < tree.num_levels(); ++l) {
    EXPECT_LT(tree.level_tables(l), opts.tables_per_level);
  }
}

TEST(LsmTreeTest, WriteAmplificationIsTracked) {
  LsmOptions opts;
  opts.memtable_limit = 32;
  LsmTree tree(opts);
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) tree.Put(rng.Next(), 1);
  EXPECT_GT(tree.stats().WriteAmplification(), 1.0);
  EXPECT_GT(tree.stats().entries_compacted, tree.stats().puts);
}

TEST(CostModelTest, FpgaMergesOrdersOfMagnitudeFaster) {
  CompactionCostModel cost;
  const uint64_t entries = 10'000'000;
  const double cpu = cost.Seconds(CompactionEngine::kCpu, entries);
  const double fpga = cost.Seconds(CompactionEngine::kFpga, entries);
  EXPECT_GT(cpu / fpga, 10.0);
}

TEST(LsmTreeTest, OffloadLiftsSustainedThroughput) {
  // Same workload, two engines: identical functional stats, but the
  // sustained-ingest model shows the X-Engine offload win.
  auto run = [](CompactionEngine engine) {
    LsmOptions opts;
    opts.memtable_limit = 64;
    opts.engine = engine;
    LsmTree tree(opts);
    Rng rng(19);
    for (int i = 0; i < 30000; ++i) tree.Put(rng.Next(), 1);
    return tree.stats().SustainedPutsPerSec(engine, opts.cost, opts.put_ns);
  };
  const double cpu_rate = run(CompactionEngine::kCpu);
  const double fpga_rate = run(CompactionEngine::kFpga);
  EXPECT_GT(fpga_rate, 1.5 * cpu_rate);
}

}  // namespace
}  // namespace fpgadp::lsm
