#include "src/kvs/smart_kvs.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/sim/engine.h"

namespace fpgadp::kvs {
namespace {

struct Harness {
  net::Fabric fabric;
  SmartNicKvs server;
  KvClient client;
  sim::Engine engine;

  Harness()
      : fabric("fab", 2,
               [] {
                 net::Fabric::Config c;
                 c.clock_hz = 200e6;
                 return c;
               }()),
        server("kvs", 1, &fabric, SmartNicKvs::Config()),
        client("client", 0, 1, &fabric) {
    fabric.RegisterWith(engine);
    server.RegisterWith(engine);
    engine.AddModule(&client);
  }

  /// Steps until `count` responses arrived (or a generous deadline).
  void RunUntilResponses(uint64_t count) {
    uint64_t guard = 0;
    while (client.responses_received() < count && guard++ < (1ull << 24)) {
      engine.Step();
    }
  }
};

TEST(SmartKvsTest, PutThenGetReturnsValue) {
  Harness h;
  h.client.Put(42, 777, /*tag=*/1);
  h.RunUntilResponses(1);
  net::Packet resp;
  ASSERT_TRUE(h.client.PollResponse(&resp));
  EXPECT_EQ(resp.user, uint64_t(KvOp::kPutResp));

  h.client.Get(42, /*tag=*/2);
  h.RunUntilResponses(2);
  ASSERT_TRUE(h.client.PollResponse(&resp));
  EXPECT_EQ(resp.user, uint64_t(KvOp::kGetResp));
  EXPECT_EQ(resp.addr, 42u);
  EXPECT_EQ(resp.user2, 777u);
  EXPECT_GT(resp.bytes, 0u);
  EXPECT_EQ(h.server.hits(), 1u);
}

TEST(SmartKvsTest, MissReturnsEmpty) {
  Harness h;
  h.client.Get(999, 1);
  h.RunUntilResponses(1);
  net::Packet resp;
  ASSERT_TRUE(h.client.PollResponse(&resp));
  EXPECT_EQ(resp.bytes, 0u);
  EXPECT_EQ(h.server.hits(), 0u);
}

TEST(SmartKvsTest, OverwriteKeepsLatest) {
  Harness h;
  h.client.Put(5, 100, 1);
  h.client.Put(5, 200, 2);
  h.client.Get(5, 3);
  h.RunUntilResponses(3);
  net::Packet resp;
  // Drain the two put acks.
  ASSERT_TRUE(h.client.PollResponse(&resp));
  ASSERT_TRUE(h.client.PollResponse(&resp));
  ASSERT_TRUE(h.client.PollResponse(&resp));
  EXPECT_EQ(resp.user2, 200u);
  EXPECT_EQ(h.server.size(), 1u);
}

TEST(SmartKvsTest, ManyOpsAllAnswered) {
  Harness h;
  Rng rng(3);
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      h.client.Put(rng.NextBounded(100), i, uint64_t(i));
    } else {
      h.client.Get(rng.NextBounded(100), uint64_t(i));
    }
  }
  h.RunUntilResponses(n);
  EXPECT_EQ(h.client.responses_received(), uint64_t(n));
  EXPECT_EQ(h.server.gets() + h.server.puts(), uint64_t(n));
}

TEST(SmartKvsTest, ThroughputBeatsCpuBaseline) {
  // The KV-Direct headline: NIC-side processing sustains far more ops/s
  // than a software server, because each op costs one pipelined DRAM
  // access rather than a software-stack traversal.
  Harness h;
  const int n = 4000;
  Rng rng(5);
  for (int i = 0; i < n; ++i) {
    h.client.Get(rng.NextBounded(1000), uint64_t(i));
  }
  const sim::Cycle start = h.engine.now();
  h.RunUntilResponses(n);
  const double seconds = double(h.engine.now() - start) / 200e6;
  const double fpga_ops = double(n) / seconds;
  CpuKvsModel cpu;
  EXPECT_GT(fpga_ops, 2 * cpu.OpsPerSec())
      << "fpga " << fpga_ops << " vs cpu " << cpu.OpsPerSec();
}

TEST(SmartKvsTest, SmallOpLatencyIsMicroseconds) {
  Harness h;
  h.client.Get(1, 1);
  const sim::Cycle start = h.engine.now();
  h.RunUntilResponses(1);
  const double us = double(h.engine.now() - start) / 200e6 * 1e6;
  EXPECT_GT(us, 1.0);
  EXPECT_LT(us, 5.0);  // one network RTT + one DRAM access
}

}  // namespace
}  // namespace fpgadp::kvs
