// Determinism lockdown for the engine's performance modes: the parallel
// tick (Engine::SetThreads) and event-driven fast-forward must reproduce
// the serial cycle-stepped results bit-for-bit — cycle counts, per-module
// stall attribution, stream traffic, completion timestamps, and fault
// outcomes. Every test here runs the same workload under several
// (threads, fast_forward) configurations and diffs everything observable.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/accl/collectives.h"
#include "src/net/fabric.h"
#include "src/net/rdma.h"
#include "src/obs/metrics.h"
#include "src/relational/fpga_executor.h"
#include "src/relational/program.h"
#include "src/relational/table.h"
#include "src/sim/engine.h"
#include "src/sim/kernels.h"
#include "src/sim/stream.h"
#include "src/sim/thread_pool.h"

namespace fpgadp {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool sanity.
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  sim::ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<std::atomic<uint32_t>> hits(n);
  pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1u) << i;
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  sim::ThreadPool pool(3);
  std::atomic<uint64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(100, [&](size_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 50ull * (99 * 100 / 2));
}

TEST(ThreadPoolTest, EdgeCases) {
  sim::ThreadPool pool(8);
  std::atomic<uint32_t> count{0};
  pool.ParallelFor(0, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0u);
  pool.ParallelFor(1, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1u);
  pool.ParallelFor(3, [&](size_t) { count.fetch_add(1); });  // n < threads
  EXPECT_EQ(count.load(), 4u);
  sim::ThreadPool serial(1);  // no workers at all
  serial.ParallelFor(5, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 9u);
}

// ---------------------------------------------------------------------------
// Certified-module pipeline: everything observable must be bit-identical
// across thread counts.
// ---------------------------------------------------------------------------

struct ModuleCounters {
  uint64_t busy, starved, blocked, idle;
  bool operator==(const ModuleCounters& o) const {
    return busy == o.busy && starved == o.starved && blocked == o.blocked &&
           idle == o.idle;
  }
};

ModuleCounters Snapshot(const sim::Module& m) {
  return {m.busy_cycles(), m.starved_cycles(), m.blocked_cycles(),
          m.idle_cycles()};
}

struct PipelineResult {
  sim::Cycle cycles;
  std::vector<int64_t> collected;
  std::vector<ModuleCounters> counters;
  std::vector<std::pair<uint64_t, uint64_t>> stream_traffic;
};

PipelineResult RunKernelPipeline(uint32_t threads, bool fast_forward) {
  std::vector<int64_t> data(5000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = int64_t(i) * 3 - 1000;
  sim::Stream<int64_t> s0("s0", 8), s1("s1", 8), s2("s2", 8);
  sim::VectorSource<int64_t> src("src", data, &s0, /*lanes=*/2);
  sim::TransformKernel<int64_t, int64_t> map(
      "map", &s0, &s1,
      [](const int64_t& v) -> std::optional<int64_t> {
        if (v % 7 == 0) return std::nullopt;  // line-rate filter
        return v * 2;
      },
      sim::KernelTiming{1, 2, 12});
  sim::DelayLine<int64_t> wire("wire", &s1, &s2, /*latency=*/25, /*lanes=*/2);
  sim::VectorSink<int64_t> sink("sink", &s2, /*lanes=*/2);
  sim::Engine engine;
  engine.SetThreads(threads);
  engine.SetFastForward(fast_forward);
  engine.AddModule(&src);
  engine.AddModule(&map);
  engine.AddModule(&wire);
  engine.AddModule(&sink);
  engine.AddStream(&s0);
  engine.AddStream(&s1);
  engine.AddStream(&s2);
  auto run = engine.Run(1 << 22);
  EXPECT_TRUE(run.ok()) << run.status();
  PipelineResult r;
  r.cycles = run.ok() ? *run : 0;
  r.collected = sink.collected();
  for (const sim::Module* m :
       {static_cast<const sim::Module*>(&src),
        static_cast<const sim::Module*>(&map),
        static_cast<const sim::Module*>(&wire),
        static_cast<const sim::Module*>(&sink)}) {
    r.counters.push_back(Snapshot(*m));
  }
  for (const sim::StreamBase* s :
       {static_cast<const sim::StreamBase*>(&s0),
        static_cast<const sim::StreamBase*>(&s1),
        static_cast<const sim::StreamBase*>(&s2)}) {
    r.stream_traffic.push_back({s->TotalPushed(), s->TotalPopped()});
  }
  return r;
}

TEST(EngineParallelTest, KernelPipelineBitIdentical) {
  const PipelineResult serial = RunKernelPipeline(1, true);
  EXPECT_FALSE(serial.collected.empty());
  for (uint32_t threads : {2u, 8u}) {
    for (bool ff : {true, false}) {
      const PipelineResult other = RunKernelPipeline(threads, ff);
      EXPECT_EQ(serial.cycles, other.cycles)
          << "threads=" << threads << " ff=" << ff;
      EXPECT_EQ(serial.collected, other.collected);
      EXPECT_EQ(serial.counters, other.counters);
      EXPECT_EQ(serial.stream_traffic, other.stream_traffic);
    }
  }
}

// An uncertified module (no SetParallelSafe) must veto the parallel path,
// not break it: results stay identical, just computed serially.
class UncertifiedPassthrough : public sim::Module {
 public:
  UncertifiedPassthrough(std::string name, sim::Stream<int64_t>* in,
                         sim::Stream<int64_t>* out)
      : sim::Module(std::move(name)), in_(in), out_(out) {}
  void Tick(sim::Cycle) override {
    bool progressed = false;
    while (in_->CanRead() && out_->CanWrite()) {
      out_->Write(in_->Read());
      progressed = true;
    }
    if (progressed) MarkBusy();
  }
  bool Idle() const override { return true; }

 private:
  sim::Stream<int64_t>* in_;
  sim::Stream<int64_t>* out_;
};

TEST(EngineParallelTest, UncertifiedModuleFallsBackToSerial) {
  auto run = [](uint32_t threads) {
    std::vector<int64_t> data(1000);
    for (size_t i = 0; i < data.size(); ++i) data[i] = int64_t(i);
    sim::Stream<int64_t> s0("s0", 4), s1("s1", 4);
    sim::VectorSource<int64_t> src("src", data, &s0);
    UncertifiedPassthrough mid("mid", &s0, &s1);
    sim::VectorSink<int64_t> sink("sink", &s1);
    sim::Engine engine;
    engine.SetThreads(threads);
    engine.AddModule(&src);
    engine.AddModule(&mid);
    engine.AddModule(&sink);
    engine.AddStream(&s0);
    engine.AddStream(&s1);
    auto result = engine.Run(1 << 20);
    EXPECT_TRUE(result.ok());
    return std::make_pair(result.ok() ? *result : 0, sink.collected());
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
  EXPECT_EQ(serial.second.size(), 1000u);
}

// ---------------------------------------------------------------------------
// Full relational pipeline through ExecuteFpga, including the exported
// metrics registry: every instrument must read identically at 1 and 8
// threads.
// ---------------------------------------------------------------------------

TEST(EngineParallelTest, ExecuteFpgaCyclesAndMetricsIdentical) {
  rel::SyntheticTableSpec spec;
  spec.num_rows = 20000;
  spec.seed = 21;
  const rel::Table table = rel::MakeSyntheticTable(spec);
  rel::Program p;
  rel::FilterOp f;
  f.conjuncts.push_back(rel::Predicate{4, rel::CmpOp::kGe, 20});
  p.ops.push_back(f);
  rel::GroupByOp g;
  g.group_column = 2;
  g.agg = rel::AggregateOp{rel::AggKind::kSum, 4, false};
  p.ops.push_back(g);

  auto run = [&](uint32_t threads, std::string* metrics_dump) {
    sim::SetDefaultEngineThreads(threads);
    obs::MetricsRegistry registry;
    obs::SetGlobalMetrics(&registry);
    rel::FpgaOptions options;
    options.lanes = 2;
    options.stream_depth = 16;
    auto stats = rel::ExecuteFpga(p, table, options);
    obs::SetGlobalMetrics(nullptr);
    sim::SetDefaultEngineThreads(1);
    EXPECT_TRUE(stats.ok()) << stats.status();
    *metrics_dump = registry.ToString();
    return stats.ok() ? stats->cycles : 0;
  };
  std::string metrics1, metrics8;
  const uint64_t cycles1 = run(1, &metrics1);
  const uint64_t cycles8 = run(8, &metrics8);
  EXPECT_EQ(cycles1, cycles8);
  EXPECT_FALSE(metrics1.empty());
  EXPECT_EQ(metrics1, metrics8);
}

// ---------------------------------------------------------------------------
// Lossy RDMA: retransmission timers + injected faults are the adversarial
// case for both modes (fast-forward jumps between timer deadlines; the
// parallel tick must not reorder the injector's seeded draws). Completion
// tags, completion cycles, protocol counters, and final cycle counts must
// all match.
// ---------------------------------------------------------------------------

struct LossyRdmaResult {
  std::vector<std::pair<uint64_t, sim::Cycle>> completions;
  uint64_t retransmits_a, retransmits_b, dropped;
  sim::Cycle cycles;
  bool failed;
  bool operator==(const LossyRdmaResult& o) const {
    return completions == o.completions && retransmits_a == o.retransmits_a &&
           retransmits_b == o.retransmits_b && dropped == o.dropped &&
           cycles == o.cycles && failed == o.failed;
  }
};

LossyRdmaResult RunLossyRdma(uint32_t threads, bool fast_forward,
                             double drop_rate, uint32_t max_retries) {
  net::FaultInjector::Config fc;
  fc.seed = 7;
  fc.drop_rate = drop_rate;
  fc.corrupt_rate = 0.02;
  fc.duplicate_rate = 0.02;
  net::FaultInjector injector(fc);
  net::Fabric::Config cfg;
  cfg.clock_hz = 200e6;
  net::Fabric fab("fab", 2, cfg);
  fab.set_fault_injector(&injector);
  net::RdmaEndpoint::Reliability rel;
  rel.max_retries = max_retries;
  net::RdmaEndpoint a("a", 0, &fab, rel);
  net::RdmaEndpoint b("b", 1, &fab, rel);
  sim::Engine engine;
  engine.SetThreads(threads);
  engine.SetFastForward(fast_forward);
  fab.RegisterWith(engine);
  engine.AddModule(&a);
  engine.AddModule(&b);
  for (int i = 0; i < 40; ++i) {
    if (i % 2 == 0) {
      a.PostWrite(1, uint64_t(i) * 256, 1 + uint64_t(i) * 97 % 8192,
                  uint64_t(i));
    } else {
      a.PostRead(1, uint64_t(i) * 256, 1 + uint64_t(i) * 131 % 8192,
                 uint64_t(i));
    }
  }
  auto run = engine.Run(1 << 24);
  EXPECT_TRUE(run.ok()) << run.status();
  LossyRdmaResult r;
  r.cycles = run.ok() ? *run : 0;
  net::Completion c;
  while (a.PollCompletion(&c)) {
    r.completions.push_back({c.tag | (uint64_t(c.status == StatusCode::kOk
                                                   ? 0
                                                   : 1)
                                      << 32),
                             c.at});
  }
  r.retransmits_a = a.retransmits();
  r.retransmits_b = b.retransmits();
  r.dropped = fab.packets_dropped();
  r.failed = a.failed() || b.failed();
  return r;
}

TEST(EngineParallelTest, LossyRdmaDeterministicAcrossModes) {
  const LossyRdmaResult base = RunLossyRdma(1, true, 0.05, 8);
  EXPECT_EQ(base.completions.size(), 40u);
  EXPECT_FALSE(base.failed);
  EXPECT_GT(base.retransmits_a + base.retransmits_b, 0u);
  for (uint32_t threads : {1u, 8u}) {
    for (bool ff : {true, false}) {
      if (threads == 1 && ff) continue;  // the baseline itself
      const LossyRdmaResult other = RunLossyRdma(threads, ff, 0.05, 8);
      EXPECT_EQ(base, other) << "threads=" << threads << " ff=" << ff;
    }
  }
}

TEST(EngineParallelTest, FaultOutcomeIdenticalAcrossModes) {
  // A drop rate the retry cap cannot beat: the *failure* must also be
  // deterministic — same abandoned ops, same cycle counts.
  const LossyRdmaResult base = RunLossyRdma(1, true, 0.9, 2);
  EXPECT_TRUE(base.failed);
  for (uint32_t threads : {1u, 8u}) {
    for (bool ff : {true, false}) {
      if (threads == 1 && ff) continue;
      const LossyRdmaResult other = RunLossyRdma(threads, ff, 0.9, 2);
      EXPECT_EQ(base, other) << "threads=" << threads << " ff=" << ff;
    }
  }
}

// ---------------------------------------------------------------------------
// ACCL collectives build Step()-driven engines with uncertified driver
// modules — the parallel request must fall back serially and reproduce the
// exact collective timing.
// ---------------------------------------------------------------------------

TEST(EngineParallelTest, AcclCollectiveIdenticalAcrossThreadCounts) {
  auto run = [](uint32_t threads) {
    sim::SetDefaultEngineThreads(threads);
    accl::Communicator comm(4);
    std::vector<std::vector<float>> buffers(4, std::vector<float>(512));
    for (size_t i = 0; i < buffers[1].size(); ++i) {
      buffers[1][i] = float(i) * 0.25f;
    }
    auto stats = comm.Broadcast(1, buffers, accl::Algo::kTree);
    sim::SetDefaultEngineThreads(1);
    EXPECT_TRUE(stats.ok()) << stats.status();
    return std::make_pair(stats.ok() ? stats->cycles : 0, buffers);
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
}

}  // namespace
}  // namespace fpgadp
