// End-to-end integration scenarios chaining several subsystems, the way a
// deployment described in the tutorial would compose them.

#include <gtest/gtest.h>

#include "src/accl/collectives.h"
#include "src/anns/accel.h"
#include "src/anns/dataset.h"
#include "src/farview/farview.h"
#include "src/relational/cipher.h"
#include "src/relational/compression.h"
#include "src/relational/csv_parse.h"
#include "src/relational/cpu_executor.h"
#include "src/relational/queries.h"
#include "src/relational/table.h"

namespace fpgadp {
namespace {

TEST(IntegrationTest, CsvIngestToFarviewOffload) {
  // Raw CSV -> parse -> load into the smart-memory node (compressed) ->
  // offloaded Q6 -> same answer as local execution on the parsed table.
  rel::SyntheticTableSpec spec;
  spec.num_rows = 3000;
  spec.seed = 111;
  rel::Table original = rel::MakeSyntheticTable(spec);
  const std::string csv = rel::TableToCsv(original);

  auto parsed = rel::ParseCsv(original.schema(), csv);
  ASSERT_TRUE(parsed.ok());

  farview::FarviewSystem sys;
  const uint64_t tid = sys.LoadTableCompressed(*parsed);
  const uint64_t pid = sys.RegisterProgram(rel::MakeQ6Lite());
  auto offloaded = sys.RunOffloaded(tid, pid);
  ASSERT_TRUE(offloaded.ok()) << offloaded.status();

  auto local = rel::ExecuteCpu(rel::MakeQ6Lite(), original);
  ASSERT_TRUE(local.ok());
  EXPECT_DOUBLE_EQ(offloaded->result.row(0).GetDouble(0),
                   local->row(0).GetDouble(0));
}

TEST(IntegrationTest, SecureWireTransferOfQueryResult) {
  // Offload a filter on the memory node, then ship the surviving rows
  // compressed + encrypted (the HANA chain) and verify the client can
  // reconstruct them bit-exactly.
  farview::FarviewSystem sys;
  rel::SyntheticTableSpec spec;
  spec.num_rows = 4000;
  spec.seed = 113;
  rel::Table t = rel::MakeSyntheticTable(spec);
  const uint64_t tid = sys.LoadTable(t);
  rel::Program prog;
  rel::FilterOp f;
  f.conjuncts.push_back(rel::Predicate{4, rel::CmpOp::kGe, 40});
  prog.ops.push_back(f);
  const uint64_t pid = sys.RegisterProgram(prog);
  auto stats = sys.RunOffloaded(tid, pid);
  ASSERT_TRUE(stats.ok());

  // Server side: serialize -> compress -> encrypt.
  const auto plain = rel::SerializeRows(stats->result);
  const auto packed = rel::LzCompress(plain);
  std::array<uint8_t, 32> key{};
  key[0] = 0x42;
  const std::array<uint8_t, 12> nonce{9, 9, 9};
  rel::ChaCha20 enc(key, nonce);
  auto wire = enc.Transform(packed);

  // Client side: decrypt -> decompress -> deserialize.
  rel::ChaCha20 dec(key, nonce);
  auto unpacked = rel::LzDecompress(dec.Transform(wire));
  ASSERT_TRUE(unpacked.ok());
  auto restored = rel::DeserializeRows(t.schema(), *unpacked);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->num_rows(), stats->result.num_rows());
  for (size_t i = 0; i < restored->num_rows(); ++i) {
    EXPECT_EQ(restored->row(i), stats->result.row(i));
  }
}

TEST(IntegrationTest, DistributedAnnsViaAllGather) {
  // Two "search nodes" each answer a query batch on a shard; all-gather
  // redistributes per-node top-1 distances cluster-wide (the FleetRec/ACCL
  // composition for distributed vector search).
  anns::DatasetSpec spec;
  spec.num_base = 2000;
  spec.num_queries = 8;
  spec.dim = 16;
  spec.seed = 115;
  anns::Dataset data = anns::MakeDataset(spec);

  // Shard the corpus in half; build one index per node.
  const size_t half = data.num_base() / 2;
  std::vector<float> shard_a(data.base.begin(),
                             data.base.begin() + half * spec.dim);
  std::vector<float> shard_b(data.base.begin() + half * spec.dim,
                             data.base.end());
  anns::IvfPqIndex::Options opts;
  opts.nlist = 8;
  opts.pq.m = 4;
  opts.pq.ksub = 16;
  auto ia = anns::IvfPqIndex::Build(shard_a, spec.dim, opts);
  auto ib = anns::IvfPqIndex::Build(shard_b, spec.dim, opts);
  ASSERT_TRUE(ia.ok() && ib.ok());

  anns::IvfPqIndex::SearchParams params;
  params.nprobe = 8;
  params.k = 1;
  std::vector<std::vector<float>> contributions(2);
  for (size_t q = 0; q < data.num_queries(); ++q) {
    contributions[0].push_back(
        ia->Search(data.QueryVector(q), params)[0].distance);
    contributions[1].push_back(
        ib->Search(data.QueryVector(q), params)[0].distance);
  }
  accl::Communicator comm(2);
  std::vector<std::vector<float>> gathered;
  auto stats = comm.AllGather(contributions, &gathered);
  ASSERT_TRUE(stats.ok());
  // Every node now sees both shards' best distances; the global best is
  // the min — and it can never be worse than either shard's.
  for (size_t q = 0; q < data.num_queries(); ++q) {
    const float global =
        std::min(gathered[0][q], gathered[0][data.num_queries() + q]);
    EXPECT_LE(global, contributions[0][q]);
    EXPECT_LE(global, contributions[1][q]);
  }
}

}  // namespace
}  // namespace fpgadp
