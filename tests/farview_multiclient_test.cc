#include <gtest/gtest.h>

#include "src/farview/farview.h"
#include "src/relational/cpu_executor.h"
#include "src/relational/queries.h"
#include "src/relational/table.h"

namespace fpgadp::farview {
namespace {

rel::Table TestTable(uint64_t rows) {
  rel::SyntheticTableSpec spec;
  spec.num_rows = rows;
  spec.seed = 91;
  return rel::MakeSyntheticTable(spec);
}

TEST(FarviewMultiClientTest, SingleClientApiStillWorks) {
  FarviewSystem sys(FarviewConfig(), /*num_clients=*/3);
  const uint64_t tid = sys.LoadTable(TestTable(2000));
  const uint64_t pid = sys.RegisterProgram(rel::MakeQ1Lite());
  auto stats = sys.RunOffloaded(tid, pid);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->result.num_rows(), 0u);
}

TEST(FarviewMultiClientTest, ConcurrentQueriesAllCorrect) {
  FarviewSystem sys(FarviewConfig(), /*num_clients=*/4);
  rel::Table t = TestTable(4000);
  const uint64_t tid = sys.LoadTable(t);
  const uint64_t q1 = sys.RegisterProgram(rel::MakeQ1Lite());
  const uint64_t q6 = sys.RegisterProgram(rel::MakeQ6Lite());
  const uint64_t topn = sys.RegisterProgram(rel::MakeTopExpensive());
  std::vector<FarviewSystem::ConcurrentRequest> reqs = {
      {tid, q1}, {tid, q6}, {tid, topn}, {tid, q1}};
  double makespan = 0;
  auto stats = sys.RunOffloadedConcurrently(reqs, &makespan);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(stats->size(), 4u);
  auto expect_q1 = rel::ExecuteCpu(rel::MakeQ1Lite(), t);
  ASSERT_TRUE(expect_q1.ok());
  EXPECT_EQ((*stats)[0].result.num_rows(), expect_q1->num_rows());
  EXPECT_EQ((*stats)[3].result.num_rows(), expect_q1->num_rows());
  auto expect_q6 = rel::ExecuteCpu(rel::MakeQ6Lite(), t);
  ASSERT_TRUE(expect_q6.ok());
  EXPECT_DOUBLE_EQ((*stats)[1].result.row(0).GetDouble(0),
                   expect_q6->row(0).GetDouble(0));
  EXPECT_GT(makespan, 0);
}

TEST(FarviewMultiClientTest, SharedNodeSerializesScans) {
  // Four concurrent full-scan queries against one memory node take ~4x one
  // query's time: the node is a serialized resource (multi-tenancy queue).
  FarviewSystem sys(FarviewConfig(), /*num_clients=*/4);
  const uint64_t tid = sys.LoadTable(TestTable(50000));
  const uint64_t pid = sys.RegisterProgram(rel::MakeQ1Lite());
  double one = 0;
  {
    auto s = sys.RunOffloadedConcurrently({{tid, pid}}, &one);
    ASSERT_TRUE(s.ok());
  }
  double four = 0;
  {
    std::vector<FarviewSystem::ConcurrentRequest> reqs(4, {tid, pid});
    auto s = sys.RunOffloadedConcurrently(reqs, &four);
    ASSERT_TRUE(s.ok());
    // Later queries observe queueing delay: completion times increase.
    for (size_t i = 1; i < s->size(); ++i) {
      EXPECT_GE((*s)[i].cycles, (*s)[i - 1].cycles);
    }
  }
  EXPECT_GT(four, 3.0 * one);
  EXPECT_LT(four, 5.0 * one);
}

TEST(FarviewMultiClientTest, EmptyBatchIsError) {
  FarviewSystem sys;
  double m = 0;
  EXPECT_FALSE(sys.RunOffloadedConcurrently({}, &m).ok());
}

TEST(FarviewMultiClientTest, UnknownProgramInBatchIsError) {
  FarviewSystem sys;
  const uint64_t tid = sys.LoadTable(TestTable(100));
  double m = 0;
  EXPECT_EQ(sys.RunOffloadedConcurrently({{tid, 404}}, &m).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace fpgadp::farview
