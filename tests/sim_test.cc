#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/sim/kernels.h"
#include "src/sim/module.h"
#include "src/sim/stream.h"
#include "src/sim/tap.h"

namespace fpgadp::sim {
namespace {

TEST(StreamTest, WritesVisibleOnlyAfterCommit) {
  Stream<int> s("s", 4);
  EXPECT_TRUE(s.CanWrite());
  EXPECT_FALSE(s.CanRead());
  s.Write(1);
  EXPECT_FALSE(s.CanRead()) << "staged write must not be readable";
  s.Commit();
  ASSERT_TRUE(s.CanRead());
  EXPECT_EQ(s.Read(), 1);
}

TEST(StreamTest, CapacityCountsStagedItems) {
  Stream<int> s("s", 2);
  s.Write(1);
  s.Write(2);
  EXPECT_FALSE(s.CanWrite()) << "staged items must exert backpressure";
  s.Commit();
  EXPECT_FALSE(s.CanWrite());
  (void)s.Read();
  EXPECT_TRUE(s.CanWrite());
}

TEST(StreamTest, FifoOrderPreserved) {
  Stream<int> s("s", 8);
  for (int i = 0; i < 5; ++i) s.Write(i);
  s.Commit();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(s.Read(), i);
}

TEST(StreamTest, StatsTrackTraffic) {
  Stream<int> s("s", 8);
  for (int i = 0; i < 6; ++i) s.Write(i);
  s.Commit();
  (void)s.Read();
  EXPECT_EQ(s.total_pushed(), 6u);
  EXPECT_EQ(s.total_popped(), 1u);
  EXPECT_EQ(s.high_watermark(), 6u);
}

TEST(StreamTest, WatermarkSeesFullFifoIncludingStagedItems) {
  // Peak occupancy is committed + staged: reads that drain the committed
  // side before Commit() must not hide that the FIFO was full.
  Stream<int> s("s", 4);
  s.Write(1);
  s.Write(2);
  s.Commit();
  s.Write(3);
  s.Write(4);
  EXPECT_FALSE(s.CanWrite()) << "2 committed + 2 staged = full";
  (void)s.Read();
  (void)s.Read();
  s.Commit();
  EXPECT_EQ(s.high_watermark(), 4u)
      << "watermark must report the full FIFO, not just committed items";
  EXPECT_EQ(s.Depth(), 2u);
}

TEST(EngineTest, SourceToSinkMovesAllData) {
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  Stream<int> ch("ch", 4);
  VectorSource<int> src("src", data, &ch);
  VectorSink<int> sink("sink", &ch);
  Engine e;
  e.AddModule(&src);
  e.AddModule(&sink);
  e.AddStream(&ch);
  auto cycles = e.Run(10000);
  ASSERT_TRUE(cycles.ok()) << cycles.status();
  EXPECT_EQ(sink.collected(), data);
}

TEST(EngineTest, OneItemPerCycleThroughput) {
  // 1000 items at 1 lane through one FIFO: ~1 item/cycle steady state, so
  // total cycles ≈ N + small pipeline fill.
  const int n = 1000;
  std::vector<int> data(n, 7);
  Stream<int> ch("ch", 4);
  VectorSource<int> src("src", data, &ch);
  VectorSink<int> sink("sink", &ch);
  Engine e;
  e.AddModule(&src);
  e.AddModule(&sink);
  e.AddStream(&ch);
  auto cycles = e.Run(100000);
  ASSERT_TRUE(cycles.ok());
  EXPECT_GE(cycles.value(), uint64_t(n));
  EXPECT_LE(cycles.value(), uint64_t(n) + 10);
}

TEST(EngineTest, WideLanesScaleThroughput) {
  const int n = 1024;
  std::vector<int> data(n, 1);
  Stream<int> ch("ch", 32);
  VectorSource<int> src("src", data, &ch, /*lanes=*/8);
  VectorSink<int> sink("sink", &ch, /*lanes=*/8);
  Engine e;
  e.AddModule(&src);
  e.AddModule(&sink);
  e.AddStream(&ch);
  auto cycles = e.Run(100000);
  ASSERT_TRUE(cycles.ok());
  EXPECT_LE(cycles.value(), uint64_t(n / 8 + 10));
}

TEST(EngineTest, TimeoutWhenNotQuiescing) {
  // A source into a full, never-drained stream cannot quiesce.
  std::vector<int> data(10, 1);
  Stream<int> ch("ch", 2);
  VectorSource<int> src("src", data, &ch);
  Engine e;
  e.AddModule(&src);
  e.AddStream(&ch);
  auto r = e.Run(100);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

TEST(TransformKernelTest, MapsValues) {
  std::vector<int> data{1, 2, 3, 4, 5};
  Stream<int> in("in", 4);
  Stream<int> out("out", 4);
  VectorSource<int> src("src", data, &in);
  TransformKernel<int, int> k(
      "double", &in, &out,
      [](const int& v) { return std::optional<int>(v * 2); });
  VectorSink<int> sink("sink", &out);
  Engine e;
  e.AddModule(&src);
  e.AddModule(&k);
  e.AddModule(&sink);
  e.AddStream(&in);
  e.AddStream(&out);
  ASSERT_TRUE(e.Run(10000).ok());
  EXPECT_EQ(sink.collected(), (std::vector<int>{2, 4, 6, 8, 10}));
  EXPECT_EQ(k.consumed(), 5u);
}

TEST(TransformKernelTest, FilterDropsWithoutStalling) {
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);
  Stream<int> in("in", 4);
  Stream<int> out("out", 4);
  VectorSource<int> src("src", data, &in);
  TransformKernel<int, int> k(
      "odd", &in, &out, [](const int& v) {
        return v % 2 ? std::optional<int>(v) : std::nullopt;
      });
  VectorSink<int> sink("sink", &out);
  Engine e;
  e.AddModule(&src);
  e.AddModule(&k);
  e.AddModule(&sink);
  e.AddStream(&in);
  e.AddStream(&out);
  auto cycles = e.Run(100000);
  ASSERT_TRUE(cycles.ok());
  EXPECT_EQ(sink.collected().size(), 500u);
  // Line-rate consumption: the filter still absorbs ~1 item/cycle.
  EXPECT_LE(cycles.value(), 1030u);
}

TEST(TransformKernelTest, IiThrottlesThroughput) {
  const int n = 100;
  std::vector<int> data(n, 1);
  Stream<int> in("in", 8);
  Stream<int> out("out", 8);
  VectorSource<int> src("src", data, &in);
  TransformKernel<int, int> k(
      "slow", &in, &out, [](const int& v) { return std::optional<int>(v); },
      KernelTiming{/*ii=*/4, /*lanes=*/1, /*latency=*/1});
  VectorSink<int> sink("sink", &out);
  Engine e;
  e.AddModule(&src);
  e.AddModule(&k);
  e.AddModule(&sink);
  e.AddStream(&in);
  e.AddStream(&out);
  auto cycles = e.Run(100000);
  ASSERT_TRUE(cycles.ok());
  // II=4 means one item every 4 cycles.
  EXPECT_GE(cycles.value(), uint64_t(4 * n));
  EXPECT_LE(cycles.value(), uint64_t(4 * n) + 20);
}

TEST(TransformKernelTest, LatencyAddsPipelineFill) {
  std::vector<int> data{1};
  Stream<int> in("in", 4);
  Stream<int> out("out", 4);
  VectorSource<int> src("src", data, &in);
  TransformKernel<int, int> k(
      "deep", &in, &out, [](const int& v) { return std::optional<int>(v); },
      KernelTiming{1, 1, /*latency=*/50});
  VectorSink<int> sink("sink", &out);
  Engine e;
  e.AddModule(&src);
  e.AddModule(&k);
  e.AddModule(&sink);
  e.AddStream(&in);
  e.AddStream(&out);
  auto cycles = e.Run(10000);
  ASSERT_TRUE(cycles.ok());
  EXPECT_GE(cycles.value(), 50u);
}

TEST(ReduceKernelTest, SumsExpectedCount) {
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 1);
  Stream<int> in("in", 4);
  Stream<long> out("out", 2);
  VectorSource<int> src("src", data, &in);
  ReduceKernel<int, long> k(
      "sum", &in, &out, 0L,
      [](long& acc, const int& v) { acc += v; }, data.size());
  VectorSink<long> sink("sink", &out);
  Engine e;
  e.AddModule(&src);
  e.AddModule(&k);
  e.AddModule(&sink);
  e.AddStream(&in);
  e.AddStream(&out);
  ASSERT_TRUE(e.Run(10000).ok());
  ASSERT_EQ(sink.collected().size(), 1u);
  EXPECT_EQ(sink.collected()[0], 5050L);
}

TEST(DelayLineTest, AddsFixedLatency) {
  std::vector<int> data{42};
  Stream<int> in("in", 4);
  Stream<int> out("out", 4);
  VectorSource<int> src("src", data, &in);
  DelayLine<int> wire("wire", &in, &out, /*latency=*/100);
  VectorSink<int> sink("sink", &out);
  Engine e;
  e.AddModule(&src);
  e.AddModule(&wire);
  e.AddModule(&sink);
  e.AddStream(&in);
  e.AddStream(&out);
  auto cycles = e.Run(10000);
  ASSERT_TRUE(cycles.ok());
  EXPECT_EQ(sink.collected(), std::vector<int>{42});
  EXPECT_GE(cycles.value(), 100u);
  EXPECT_LE(cycles.value(), 110u);
}

TEST(StreamTapTest, ForwardsExactlyOneItemPerCycle) {
  // The tap is documented as a non-perturbing 1-item/cycle pass-through
  // wire: a tapped pipeline must cost exactly the tap's one-cycle latency
  // over the untapped pipeline, and nothing else.
  const int n = 200;
  std::vector<int> data(n);
  std::iota(data.begin(), data.end(), 0);

  Cycle untapped_cycles = 0;
  {
    Stream<int> ch("ch", 4);
    VectorSource<int> src("src", data, &ch);
    VectorSink<int> sink("sink", &ch);
    Engine e;
    e.AddModule(&src);
    e.AddModule(&sink);
    e.AddStream(&ch);
    auto cycles = e.Run(100000);
    ASSERT_TRUE(cycles.ok());
    untapped_cycles = cycles.value();
  }

  Stream<int> a("a", 4);
  Stream<int> b("b", 4);
  VectorSource<int> src("src", data, &a);
  StreamTap<int> tap("tap", &a, &b);
  VectorSink<int> sink("sink", &b);
  Engine e;
  e.AddModule(&src);
  e.AddModule(&tap);
  e.AddModule(&sink);
  e.AddStream(&a);
  e.AddStream(&b);
  auto cycles = e.Run(100000);
  ASSERT_TRUE(cycles.ok());
  EXPECT_EQ(cycles.value(), untapped_cycles + 1)
      << "tap must add exactly its one-cycle latency";
  EXPECT_EQ(sink.collected(), data);
  EXPECT_EQ(tap.forwarded(), static_cast<uint64_t>(n));
  // Burst shape is preserved: with a 1-lane source, consecutive captured
  // events are exactly one cycle apart (no multi-item bursts compressed
  // into one cycle).
  ASSERT_EQ(tap.events().size(), static_cast<size_t>(n));
  for (size_t i = 1; i < tap.events().size(); ++i) {
    EXPECT_EQ(tap.events()[i].cycle, tap.events()[i - 1].cycle + 1);
  }
}

TEST(EngineTest, UtilizationReportMentionsModules) {
  std::vector<int> data(10, 1);
  Stream<int> ch("ch", 4);
  VectorSource<int> src("mysource", data, &ch);
  VectorSink<int> sink("mysink", &ch);
  Engine e;
  e.AddModule(&src);
  e.AddModule(&sink);
  e.AddStream(&ch);
  ASSERT_TRUE(e.Run(1000).ok());
  const std::string report = e.UtilizationReport();
  EXPECT_NE(report.find("mysource"), std::string::npos);
  EXPECT_NE(report.find("mysink"), std::string::npos);
}

TEST(EngineTest, UtilizationReportPrintsOneDecimalAndStalls) {
  // 3 items through a depth-4 FIFO: 4 cycles total, source busy 3 of 4 =
  // 75.0%. Integer truncation would print 75% and hide fractions entirely.
  std::vector<int> data(3, 1);
  Stream<int> ch("ch", 4);
  VectorSource<int> src("src", data, &ch);
  VectorSink<int> sink("sink", &ch);
  Engine e;
  e.AddModule(&src);
  e.AddModule(&sink);
  e.AddStream(&ch);
  auto cycles = e.Run(1000);
  ASSERT_TRUE(cycles.ok());
  ASSERT_EQ(cycles.value(), 4u);
  const std::string report = e.UtilizationReport();
  EXPECT_NE(report.find("src: busy 3/4 (75.0%)"), std::string::npos) << report;
  EXPECT_NE(report.find("starved"), std::string::npos);
  EXPECT_NE(report.find("blocked"), std::string::npos);
  EXPECT_NE(report.find("idle"), std::string::npos);
}

TEST(EngineTest, ElapsedSecondsUsesClock) {
  Engine e(/*clock_hz=*/100e6);
  for (int i = 0; i < 100; ++i) e.Step();
  EXPECT_DOUBLE_EQ(e.ElapsedSeconds(), 100.0 / 100e6);
}

}  // namespace
}  // namespace fpgadp::sim
