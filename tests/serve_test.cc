#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/latency_histogram.h"
#include "src/serve/arrival.h"
#include "src/serve/front_door.h"
#include "src/serve/synthetic.h"
#include "src/shard/shard.h"

namespace fpgadp::serve {
namespace {

// ---------------------------------------------------------------------------
// Arrival processes

TEST(ArrivalTest, PoissonIsAscendingDeterministicAndHitsTheMean) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kPoisson;
  cfg.mean_interarrival_cycles = 500.0;
  const auto a = GenerateArrivals(cfg, 4000, 11);
  const auto b = GenerateArrivals(cfg, 4000, 11);
  ASSERT_EQ(a.size(), 4000u);
  EXPECT_EQ(a, b);  // bit-deterministic per seed
  EXPECT_NE(a, GenerateArrivals(cfg, 4000, 12));
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  // Law of large numbers: 4000 exponential gaps of mean 500 end near 2M.
  const double mean_gap = double(a.back()) / double(a.size());
  EXPECT_GT(mean_gap, 450.0);
  EXPECT_LT(mean_gap, 550.0);
}

TEST(ArrivalTest, BurstyMatchesConfiguredStatesAndStaysSorted) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kBursty;
  cfg.mean_interarrival_cycles = 1000.0;
  cfg.burst_rate_multiplier = 8.0;
  cfg.mean_burst_cycles = 4000.0;
  cfg.mean_gap_cycles = 16000.0;
  const auto a = GenerateArrivals(cfg, 2000, 17);
  ASSERT_EQ(a.size(), 2000u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_EQ(a, GenerateArrivals(cfg, 2000, 17));
  // Burstiness leaves a fat minimum-gap mode: a meaningful share of gaps
  // must be far below the base mean (drawn at 8x the base rate).
  size_t short_gaps = 0;
  for (size_t i = 1; i < a.size(); ++i) {
    if (a[i] - a[i - 1] < 250) ++short_gaps;
  }
  EXPECT_GT(short_gaps, a.size() / 10);
}

TEST(ArrivalTest, DiurnalModulatesTheRateOverThePeriod) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kDiurnal;
  cfg.mean_interarrival_cycles = 100.0;
  cfg.period_cycles = 200000.0;
  cfg.amplitude = 0.9;
  const auto a = GenerateArrivals(cfg, 3000, 23);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_EQ(a, GenerateArrivals(cfg, 3000, 23));
  // The first quarter-period (sin > 0, rate up to 1.9x base) must collect
  // visibly more arrivals than the third (sin < 0, rate down to 0.1x base).
  size_t peak = 0, trough = 0;
  for (sim::Cycle c : a) {
    const uint64_t phase = c % 200000;
    if (phase < 50000) ++peak;
    if (phase >= 100000 && phase < 150000) ++trough;
  }
  EXPECT_GT(peak, 2 * trough);
}

TEST(ArrivalTest, ClosedLoopSchedulesOnlyTheInitialWindow) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kClosedLoop;
  cfg.concurrency = 8;
  const auto a = GenerateArrivals(cfg, 100, 3);
  ASSERT_EQ(a.size(), 8u);  // the rest are response-driven
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], i);
  EXPECT_EQ(GenerateArrivals(cfg, 5, 3).size(), 5u);
}

// ---------------------------------------------------------------------------
// LatencyHistogram

TEST(LatencyHistogramTest, ExactBelowOneOctaveAndBoundedAbove) {
  obs::LatencyHistogram h(4);  // values < 16 recorded exactly
  for (uint64_t v : {0ull, 1ull, 7ull, 15ull}) {
    obs::LatencyHistogram one(4);
    one.Record(v);
    EXPECT_EQ(one.Quantile(1.0), v);
  }
  // Above one octave the bucket bound overshoots by < 2^-4 relative.
  for (uint64_t v = 16; v < 100000; v = v * 3 + 1) {
    obs::LatencyHistogram one(4);
    one.Record(v);
    const uint64_t q = one.Quantile(1.0);
    EXPECT_GE(q, v);
    EXPECT_LE(q - v, v / 16);
  }
}

TEST(LatencyHistogramTest, QuantilesOnAKnownDistribution) {
  obs::LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  // The p50 bucket holds observation #500; bounds overshoot by <= 6.25%.
  EXPECT_GE(h.p50(), 500u);
  EXPECT_LE(h.p50(), 532u);
  EXPECT_GE(h.p99(), 990u);
  EXPECT_LE(h.p99(), 1000u);  // clamped to observed max
  EXPECT_EQ(h.Quantile(1.0), 1000u);
  EXPECT_EQ(h.p999(), 1000u);
}

TEST(LatencyHistogramTest, MergeEqualsRecordingTheUnion) {
  obs::LatencyHistogram a, b, both;
  for (uint64_t v = 1; v < 500; v += 7) {
    a.Record(v * 13 % 10000);
    both.Record(v * 13 % 10000);
  }
  for (uint64_t v = 1; v < 500; v += 3) {
    b.Record(v * 977 % 100000);
    both.Record(v * 977 % 100000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.sum(), both.sum());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_EQ(a.bucket_counts(), both.bucket_counts());
  EXPECT_EQ(a.p50(), both.p50());
  EXPECT_EQ(a.p99(), both.p99());
  EXPECT_EQ(a.p999(), both.p999());
}

TEST(LatencyHistogramTest, EmptyHistogramIsAllZeros) {
  const obs::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.Quantile(1.0), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogramTest, MergeWithEmptyIsIdentityBothWays) {
  obs::LatencyHistogram full, empty;
  for (uint64_t v : {3ull, 90ull, 4097ull}) full.Record(v);
  const uint64_t count = full.count(), sum = full.sum();
  // Folding an empty histogram in must not disturb the extrema (the empty
  // side's sentinel min is ~0ull and its max is 0 — neither may leak).
  full.Merge(empty);
  EXPECT_EQ(full.count(), count);
  EXPECT_EQ(full.sum(), sum);
  EXPECT_EQ(full.min(), 3u);
  EXPECT_EQ(full.max(), 4097u);
  // And an empty histogram absorbing a full one becomes its exact copy.
  empty.Merge(full);
  EXPECT_EQ(empty.count(), count);
  EXPECT_EQ(empty.sum(), sum);
  EXPECT_EQ(empty.min(), 3u);
  EXPECT_EQ(empty.max(), 4097u);
  EXPECT_EQ(empty.bucket_counts(), full.bucket_counts());
  EXPECT_EQ(empty.p99(), full.p99());
}

TEST(LatencyHistogramTest, MergeSaturatedTopBucketStaysExact) {
  // The very top of the uint64 range lands in the last sub-bucket of the
  // last octave; merging histograms saturated there must neither overflow
  // the bucket index nor lose the clamp-to-observed-max in Quantile.
  const uint64_t top = ~uint64_t{0};
  obs::LatencyHistogram a, b;
  a.Record(top);
  a.Record(top - 1);
  b.Record(top);
  b.Record(5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), top);
  // The bucket's nominal upper bound would overshoot uint64; the quantile
  // must clamp to the observed max instead of wrapping.
  EXPECT_EQ(a.Quantile(1.0), top);
  EXPECT_EQ(a.p999(), top);
  const auto& counts = a.bucket_counts();
  EXPECT_EQ(counts.back(), 3u) << "both top observations share the last "
                                  "sub-bucket of the last octave";
}

TEST(LatencyHistogramTest, MergeDisjointRangesReflectsTheUnion) {
  // Mismatched recordings — one histogram all-fast, one all-slow — merged:
  // the union's quantiles must straddle the gap, not average across it.
  obs::LatencyHistogram fast, slow;
  for (uint64_t v = 1; v <= 100; ++v) fast.Record(v);
  for (uint64_t v = 100000; v < 100100; ++v) slow.Record(v);
  fast.Merge(slow);
  EXPECT_EQ(fast.count(), 200u);
  EXPECT_EQ(fast.min(), 1u);
  EXPECT_EQ(fast.max(), 100099u);
  EXPECT_LE(fast.p50(), 107u);      // median still in the fast mode
  EXPECT_GE(fast.p99(), 100000u);   // tail entirely in the slow mode
}

TEST(LatencyHistogramDeathTest, MergeRejectsMismatchedGeometry) {
  obs::LatencyHistogram four(4), five(5);
  four.Record(10);
  five.Record(10);
  // Different sub_bucket_bits means incompatible bucket layouts; merging
  // them silently would scramble every quantile.
  EXPECT_DEATH(four.Merge(five), "sub_bucket_bits");
}

// ---------------------------------------------------------------------------
// Admission at the coordinator

std::vector<shard::SubRequest> OneSlice(uint32_t shard, uint64_t est) {
  shard::SubRequest sub;
  sub.shard = shard;
  sub.request_bytes = 64;
  sub.est_service_cycles = est;
  return {sub};
}

TEST(AdmissionTest, QueueDepthPolicyShedsAtMaxPending) {
  SyntheticWorkload::Config wc;
  wc.num_shards = 2;
  SyntheticWorkload wl(wc);
  shard::ShardCluster::Config cc;
  cc.num_shards = 2;
  cc.coordinator.admission = shard::AdmissionPolicy::kQueueDepth;
  cc.coordinator.max_pending = 2;
  shard::ShardCluster cluster(&wl, cc);
  auto& coord = cluster.coordinator();
  EXPECT_TRUE(coord.TrySubmit(wl.AddRequest(100), OneSlice(0, 100), 0, 1000));
  EXPECT_TRUE(coord.TrySubmit(wl.AddRequest(100), OneSlice(1, 100), 0, 1000));
  EXPECT_FALSE(coord.TrySubmit(wl.AddRequest(100), OneSlice(0, 100), 0, 1000));
  EXPECT_EQ(coord.ingress_shed(), 1u);
}

TEST(AdmissionTest, DeadlineFeasibilityShedsWhenBacklogOverrunsTheBudget) {
  SyntheticWorkload::Config wc;
  wc.num_shards = 1;
  SyntheticWorkload wl(wc);
  shard::ShardCluster::Config cc;
  cc.num_shards = 1;
  cc.coordinator.admission = shard::AdmissionPolicy::kDeadlineFeasible;
  cc.coordinator.initial_wire_estimate_cycles = 100;
  cc.coordinator.feasibility_headroom_pct = 100;
  shard::ShardCluster cluster(&wl, cc);
  auto& coord = cluster.coordinator();
  // ETA of the first request: wire 100 + backlog 0 + service 400 = 500.
  EXPECT_FALSE(coord.TrySubmit(wl.AddRequest(400), OneSlice(0, 400), 0, 499));
  EXPECT_TRUE(coord.TrySubmit(wl.AddRequest(400), OneSlice(0, 400), 0, 500));
  EXPECT_EQ(coord.queued_cost(0), 400u);
  // Second request sits behind the first: ETA = 100 + 400 + 400 = 900.
  EXPECT_FALSE(coord.TrySubmit(wl.AddRequest(400), OneSlice(0, 400), 0, 899));
  EXPECT_TRUE(coord.TrySubmit(wl.AddRequest(400), OneSlice(0, 400), 0, 900));
  EXPECT_EQ(coord.queued_cost(0), 800u);
  EXPECT_EQ(coord.ingress_shed(), 2u);
}

TEST(AdmissionTest, HeadroomTightensTheBudget) {
  SyntheticWorkload::Config wc;
  wc.num_shards = 1;
  SyntheticWorkload wl(wc);
  shard::ShardCluster::Config cc;
  cc.num_shards = 1;
  cc.coordinator.admission = shard::AdmissionPolicy::kDeadlineFeasible;
  cc.coordinator.initial_wire_estimate_cycles = 100;
  cc.coordinator.feasibility_headroom_pct = 50;
  shard::ShardCluster cluster(&wl, cc);
  auto& coord = cluster.coordinator();
  // ETA 500 now needs a deadline of 1000 (only 50% may be planned into).
  EXPECT_FALSE(coord.TrySubmit(wl.AddRequest(400), OneSlice(0, 400), 0, 999));
  EXPECT_TRUE(coord.TrySubmit(wl.AddRequest(400), OneSlice(0, 400), 0, 1000));
}

TEST(AdmissionTest, ServedSlicesReleaseBacklogAndTrainTheEstimator) {
  SyntheticWorkload::Config wc;
  wc.num_shards = 1;
  wc.jitter_pct = 0;
  SyntheticWorkload wl(wc);
  shard::ShardCluster::Config cc;
  cc.num_shards = 1;
  cc.coordinator.admission = shard::AdmissionPolicy::kDeadlineFeasible;
  cc.coordinator.initial_service_estimate_cycles = 64;
  shard::ShardCluster cluster(&wl, cc);
  auto& coord = cluster.coordinator();
  const uint64_t before = coord.service_estimate(0);
  EXPECT_EQ(before, 64u);
  ASSERT_TRUE(coord.TrySubmit(wl.AddRequest(500), OneSlice(0, 500), 0,
                              1u << 20));
  ASSERT_TRUE(cluster.Run().ok());
  shard::PartialOutcome out;
  ASSERT_TRUE(cluster.PollOutcome(&out));
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(coord.queued_cost(0), 0u);  // backlog released on resolve
  // One EWMA step toward the observed 500-cycle service moved the estimate
  // up, and the response replaced the configured wire guess with the
  // measured round-trip-minus-service.
  EXPECT_GT(coord.service_estimate(0), before);
  EXPECT_GT(coord.wire_estimate(), 0u);
  EXPECT_NE(coord.wire_estimate(),
            shard::ShardCoordinator::Config{}.initial_wire_estimate_cycles);
}

// ---------------------------------------------------------------------------
// FrontDoor end to end

struct DoorRun {
  uint64_t cycles = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t p99 = 0;
  uint64_t count = 0;
  uint64_t sum = 0;
};

DoorRun RunDoor(shard::AdmissionPolicy policy, ArrivalKind kind, double rho,
                uint32_t threads, bool fast_forward) {
  SyntheticWorkload::Config wc;
  wc.num_shards = 2;
  SyntheticWorkload wl(wc);
  shard::ShardCluster::Config cc;
  cc.num_shards = 2;
  cc.coordinator.admission = policy;
  cc.coordinator.max_pending = 64;
  cc.coordinator.feasibility_headroom_pct = 80;
  shard::ShardCluster cluster(&wl, cc);

  FrontDoor::Config fd;
  fd.arrivals.kind = kind;
  fd.arrivals.mean_interarrival_cycles = 200.0 / (2.0 * rho);
  fd.arrivals.concurrency = 4;
  fd.classes = {{"only", 4000, 1.0}};
  fd.num_requests = 300;
  fd.seed = 5;
  FrontDoor door(
      "door", &cluster.coordinator(), &wl,
      [&wl](uint32_t, size_t) { return wl.AddRequest(200); }, fd);
  cluster.engine().AddModule(&door);
  cluster.engine().SetThreads(threads);
  cluster.engine().SetFastForward(fast_forward);

  auto cycles = cluster.Run();
  EXPECT_TRUE(cycles.ok());
  DoorRun r;
  r.cycles = cycles.ok() ? cycles.value() : 0;
  r.completed = door.total_completed();
  r.shed = door.total_shed();
  const ClassStats& s = door.class_stats(0);
  r.p99 = s.latency.p99();
  r.count = s.latency.count();
  r.sum = s.latency.sum();
  return r;
}

TEST(FrontDoorTest, OpenLoopServesEveryRequestUnderLightLoad) {
  const DoorRun r = RunDoor(shard::AdmissionPolicy::kDeadlineFeasible,
                            ArrivalKind::kPoisson, 0.4, 1, true);
  EXPECT_EQ(r.completed, 300u);
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(r.count, 300u);  // one latency sample per completion
  EXPECT_GT(r.p99, 0u);
  EXPECT_LE(r.p99, 4000u);
}

TEST(FrontDoorTest, OverloadShedsUnderFeasibilityButHoldsTheSlo) {
  const DoorRun r = RunDoor(shard::AdmissionPolicy::kDeadlineFeasible,
                            ArrivalKind::kPoisson, 2.0, 1, true);
  EXPECT_GT(r.shed, 0u);
  EXPECT_EQ(r.completed + r.shed, 300u);
  EXPECT_LE(r.p99, 4000u);  // served requests stay inside the budget
}

TEST(FrontDoorTest, ClosedLoopCompletesEverythingWithoutShedding) {
  const DoorRun r = RunDoor(shard::AdmissionPolicy::kDeadlineFeasible,
                            ArrivalKind::kClosedLoop, 1.0, 1, true);
  EXPECT_EQ(r.completed, 300u);
  EXPECT_EQ(r.shed, 0u);
}

TEST(FrontDoorTest, ResultsAreBitIdenticalAcrossEngineModes) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kBursty,
                           ArrivalKind::kClosedLoop}) {
    const DoorRun serial = RunDoor(shard::AdmissionPolicy::kDeadlineFeasible,
                                   kind, 1.5, 1, true);
    const DoorRun noff = RunDoor(shard::AdmissionPolicy::kDeadlineFeasible,
                                 kind, 1.5, 1, false);
    const DoorRun thr = RunDoor(shard::AdmissionPolicy::kDeadlineFeasible,
                                kind, 1.5, 4, true);
    for (const DoorRun* other : {&noff, &thr}) {
      EXPECT_EQ(serial.cycles, other->cycles);
      EXPECT_EQ(serial.completed, other->completed);
      EXPECT_EQ(serial.shed, other->shed);
      EXPECT_EQ(serial.p99, other->p99);
      EXPECT_EQ(serial.count, other->count);
      EXPECT_EQ(serial.sum, other->sum);
    }
  }
}

TEST(FrontDoorTest, MergedLatencyAggregatesAllClasses) {
  SyntheticWorkload::Config wc;
  wc.num_shards = 2;
  SyntheticWorkload wl(wc);
  shard::ShardCluster::Config cc;
  cc.num_shards = 2;
  shard::ShardCluster cluster(&wl, cc);
  FrontDoor::Config fd;
  fd.arrivals.mean_interarrival_cycles = 400.0;
  fd.classes = {{"a", 100000, 0.5}, {"b", 100000, 0.5}};
  fd.num_requests = 100;
  FrontDoor door(
      "door", &cluster.coordinator(), &wl,
      [&wl](uint32_t, size_t) { return wl.AddRequest(150); }, fd);
  cluster.engine().AddModule(&door);
  ASSERT_TRUE(cluster.Run().ok());
  const obs::LatencyHistogram merged = door.MergedLatency();
  EXPECT_EQ(merged.count(), 100u);
  EXPECT_EQ(merged.count(),
            door.class_stats(0).latency.count() +
                door.class_stats(1).latency.count());
  EXPECT_GT(door.class_stats(0).latency.count(), 0u);
  EXPECT_GT(door.class_stats(1).latency.count(), 0u);
}

}  // namespace
}  // namespace fpgadp::serve
