// Round-trips the bench Session's --json result writer through a strict
// JSON parser. The writer historically escaped only quotes and backslashes
// and streamed doubles raw, so a scenario name with a newline or a NaN
// field silently produced a file no conforming parser would accept — this
// test locks in RFC 8259 output: control characters escaped, non-finite
// numbers degraded to null.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_common.h"

namespace fpgadp {
namespace {

// ---------------------------------------------------------------------------
// A deliberately strict, minimal JSON parser: objects, arrays, strings with
// the RFC escapes, numbers, null. Anything else — raw control characters,
// bare nan/inf tokens, trailing garbage — fails the parse.

struct JsonValue {
  enum Kind { kNull, kNumber, kString, kArray, kObject } kind = kNull;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class StrictParser {
 public:
  explicit StrictParser(const std::string& text) : s_(text) {}

  std::optional<JsonValue> Parse() {
    JsonValue v;
    if (!ParseValue(&v)) return std::nullopt;
    SkipWs();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->string);
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out->kind = JsonValue::kNull;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::kObject;
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      SkipWs();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->object.emplace_back(std::move(key), std::move(v));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::kArray;
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->array.push_back(std::move(v));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // RFC 8259
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return false;
          }
          if (code > 0x7F) return false;  // ASCII is all the writer emits
          out->push_back(static_cast<char>(code));
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      out->number = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    out->kind = JsonValue::kNumber;
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// The name every field of this test abuses: quotes, backslash, the named
// control escapes, and a raw 0x01.
const char kHostileName[] = "a \"b\"\\c\nnewline\ttab\rcr\x01ctrl\b\f";

TEST(BenchJsonTest, HostileNamesAndNonFiniteValuesRoundTripStrictly) {
  const std::string path =
      ::testing::TempDir() + "/bench_json_test_out.json";
  std::remove(path.c_str());
  {
    const std::string flag = "--json=" + path;
    std::vector<char> flag_buf(flag.begin(), flag.end());
    flag_buf.push_back('\0');
    char prog[] = "bench_json_test";
    char* argv[] = {prog, flag_buf.data()};
    bench::Session session(2, argv);
    session.AddResult(kHostileName, {{"nan_field", std::nan("")},
                                     {"inf_field", HUGE_VAL},
                                     {"neg_inf", -HUGE_VAL},
                                     {kHostileName, 1.5}});
    session.AddResult("plain", {{"cycles", 123456789.0}, {"neg", -2.25}});
  }  // ~Session writes the file

  const std::string text = ReadFile(path);
  ASSERT_FALSE(text.empty());
  auto parsed = StrictParser(text).Parse();
  ASSERT_TRUE(parsed.has_value()) << "writer emitted invalid JSON:\n" << text;

  const JsonValue* rows = parsed->Find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->kind, JsonValue::kArray);
  ASSERT_EQ(rows->array.size(), 2u);

  const JsonValue& hostile = rows->array[0];
  const JsonValue* name = hostile.Find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->string, kHostileName);  // byte-exact round trip
  const JsonValue* hostile_field = hostile.Find(kHostileName);
  ASSERT_NE(hostile_field, nullptr);
  EXPECT_EQ(hostile_field->number, 1.5);
  for (const char* field : {"nan_field", "inf_field", "neg_inf"}) {
    const JsonValue* v = hostile.Find(field);
    ASSERT_NE(v, nullptr) << field;
    EXPECT_EQ(v->kind, JsonValue::kNull) << field;
  }

  const JsonValue& plain = rows->array[1];
  EXPECT_EQ(plain.Find("name")->string, "plain");
  EXPECT_EQ(plain.Find("cycles")->number, 123456789.0);
  EXPECT_EQ(plain.Find("neg")->number, -2.25);
  const JsonValue* wall = parsed->Find("wall_clock_sec");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->kind, JsonValue::kNumber);
}

TEST(BenchJsonTest, EmptyResultSetStillParses) {
  const std::string path =
      ::testing::TempDir() + "/bench_json_test_empty.json";
  std::remove(path.c_str());
  {
    const std::string flag = "--json=" + path;
    std::vector<char> flag_buf(flag.begin(), flag.end());
    flag_buf.push_back('\0');
    char prog[] = "bench_json_test";
    char* argv[] = {prog, flag_buf.data()};
    bench::Session session(2, argv);
  }
  auto parsed = StrictParser(ReadFile(path)).Parse();
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* rows = parsed->Find("rows");
  ASSERT_NE(rows, nullptr);
  EXPECT_TRUE(rows->array.empty());
}

}  // namespace
}  // namespace fpgadp
