#include "src/common/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace fpgadp {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "23456"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Every line before the value column has the same width for column 0.
  const size_t value_col = out.find("value");
  const size_t x_line = out.find("x ");
  ASSERT_NE(value_col, std::string::npos);
  ASSERT_NE(x_line, std::string::npos);
}

TEST(TablePrinterTest, CsvEscapesNothingButJoins) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, FmtRounds) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(3.145, 0), "3");
  EXPECT_EQ(TablePrinter::Fmt(-1.5, 1), "-1.5");
}

TEST(TablePrinterTest, FmtCountAddsSeparators) {
  EXPECT_EQ(TablePrinter::FmtCount(0), "0");
  EXPECT_EQ(TablePrinter::FmtCount(999), "999");
  EXPECT_EQ(TablePrinter::FmtCount(1000), "1,000");
  EXPECT_EQ(TablePrinter::FmtCount(1234567), "1,234,567");
  EXPECT_EQ(TablePrinter::FmtCount(1000000000ull), "1,000,000,000");
}

TEST(TablePrinterTest, NumRowsTracksAdds) {
  TablePrinter t({"h"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"r"});
  t.AddRow({"s"});
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace fpgadp
