#include "src/farview/farview.h"

#include <gtest/gtest.h>

#include "src/relational/cpu_executor.h"
#include "src/relational/table.h"

namespace fpgadp::farview {
namespace {

rel::Table TestTable(uint64_t rows) {
  rel::SyntheticTableSpec spec;
  spec.num_rows = rows;
  spec.num_categories = 16;
  spec.seed = 21;
  return rel::MakeSyntheticTable(spec);
}

rel::Program SelectiveProgram(int64_t qty_ge) {
  rel::Program prog;
  rel::FilterOp f;
  f.conjuncts.push_back(rel::Predicate{4, rel::CmpOp::kGe, qty_ge});
  prog.ops.push_back(f);
  return prog;
}

rel::Program CountProgram() {
  rel::Program prog;
  prog.ops.push_back(rel::AggregateOp{rel::AggKind::kCount, 0, false});
  return prog;
}

TEST(FarviewTest, OffloadedResultMatchesCpu) {
  FarviewSystem sys;
  rel::Table t = TestTable(5000);
  auto expected = rel::ExecuteCpu(SelectiveProgram(40), t);
  ASSERT_TRUE(expected.ok());
  const uint64_t tid = sys.LoadTable(t);
  const uint64_t pid = sys.RegisterProgram(SelectiveProgram(40));
  auto stats = sys.RunOffloaded(tid, pid);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(stats->result.num_rows(), expected->num_rows());
  for (size_t i = 0; i < expected->num_rows(); ++i) {
    EXPECT_EQ(stats->result.row(i), expected->row(i));
  }
}

TEST(FarviewTest, FetchAllResultMatchesCpu) {
  FarviewSystem sys;
  rel::Table t = TestTable(2000);
  auto expected = rel::ExecuteCpu(SelectiveProgram(25), t);
  ASSERT_TRUE(expected.ok());
  const uint64_t tid = sys.LoadTable(t);
  const uint64_t pid = sys.RegisterProgram(SelectiveProgram(25));
  auto stats = sys.RunFetchAll(tid, pid);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->result.num_rows(), expected->num_rows());
}

TEST(FarviewTest, OffloadMovesOnlyResultBytes) {
  FarviewSystem sys;
  rel::Table t = TestTable(8000);
  const uint64_t tid = sys.LoadTable(t);
  const uint64_t pid = sys.RegisterProgram(SelectiveProgram(48));  // ~6%
  auto off = sys.RunOffloaded(tid, pid);
  auto fetch = sys.RunFetchAll(tid, pid);
  ASSERT_TRUE(off.ok() && fetch.ok());
  EXPECT_EQ(fetch->wire_bytes, t.total_bytes());
  EXPECT_EQ(off->wire_bytes, off->result.total_bytes());
  EXPECT_LT(off->wire_bytes, fetch->wire_bytes / 10);
}

TEST(FarviewTest, AggregationOffloadIsTiny) {
  FarviewSystem sys;
  rel::Table t = TestTable(8000);
  const uint64_t tid = sys.LoadTable(t);
  const uint64_t pid = sys.RegisterProgram(CountProgram());
  auto off = sys.RunOffloaded(tid, pid);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->result.num_rows(), 1u);
  EXPECT_EQ(off->result.row(0).Get(0), 8000);
  EXPECT_EQ(off->wire_bytes, 8u);  // one 8-byte count
  // But the memory node still scanned the whole table locally.
  EXPECT_GE(off->dram_bytes, t.total_bytes());
}

TEST(FarviewTest, OffloadBeatsFetchAllOnSelectiveQueries) {
  FarviewSystem sys;
  rel::Table t = TestTable(20000);
  const uint64_t tid = sys.LoadTable(t);
  const uint64_t pid = sys.RegisterProgram(SelectiveProgram(45));
  auto off = sys.RunOffloaded(tid, pid);
  auto fetch = sys.RunFetchAll(tid, pid);
  ASSERT_TRUE(off.ok() && fetch.ok());
  EXPECT_LT(off->seconds, fetch->seconds)
      << "selective offload must beat moving the table";
}

TEST(FarviewTest, UnknownProgramIsError) {
  FarviewSystem sys;
  const uint64_t tid = sys.LoadTable(TestTable(10));
  EXPECT_EQ(sys.RunOffloaded(tid, 999).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(sys.RunFetchAll(tid, 999).status().code(), StatusCode::kNotFound);
}

TEST(FarviewTest, BackToBackQueriesReuseTheSystem) {
  FarviewSystem sys;
  const uint64_t tid = sys.LoadTable(TestTable(3000));
  const uint64_t p1 = sys.RegisterProgram(SelectiveProgram(10));
  const uint64_t p2 = sys.RegisterProgram(CountProgram());
  auto a = sys.RunOffloaded(tid, p1);
  auto b = sys.RunOffloaded(tid, p2);
  auto c = sys.RunOffloaded(tid, p1);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->result.num_rows(), c->result.num_rows());
  EXPECT_EQ(b->result.row(0).Get(0), 3000);
}

TEST(FarviewTest, MultipleTables) {
  FarviewSystem sys;
  const uint64_t small = sys.LoadTable(TestTable(100));
  const uint64_t big = sys.LoadTable(TestTable(5000));
  const uint64_t pid = sys.RegisterProgram(CountProgram());
  auto s = sys.RunOffloaded(small, pid);
  auto b = sys.RunOffloaded(big, pid);
  ASSERT_TRUE(s.ok() && b.ok());
  EXPECT_EQ(s->result.row(0).Get(0), 100);
  EXPECT_EQ(b->result.row(0).Get(0), 5000);
}

TEST(FarviewTest, ScanIsDramBandwidthBound) {
  // With 2 DDR channels @19.2 GB/s and a 200 MHz clock, the node ingests
  // ~192 B/cycle; a table of B bytes should scan in ~B/192 cycles plus
  // request/response overheads.
  FarviewConfig cfg;
  FarviewSystem sys(cfg);
  rel::Table t = TestTable(50000);  // 2 MB
  const uint64_t tid = sys.LoadTable(t);
  const uint64_t pid = sys.RegisterProgram(CountProgram());
  auto off = sys.RunOffloaded(tid, pid);
  ASSERT_TRUE(off.ok());
  const double bytes_per_cycle = 2 * 19.2e9 / 200e6;
  const uint64_t lower = uint64_t(t.total_bytes() / bytes_per_cycle);
  EXPECT_GE(off->cycles, lower);
  EXPECT_LE(off->cycles, 40 * lower)
      << "scan should be within a small factor of the bandwidth bound";
}

}  // namespace
}  // namespace fpgadp::farview
