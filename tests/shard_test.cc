#include "src/shard/shard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/anns/dataset.h"
#include "src/anns/ivf.h"
#include "src/net/fabric.h"
#include "src/obs/metrics.h"
#include "src/relational/cpu_executor.h"
#include "src/relational/table.h"
#include "src/shard/partitioner.h"
#include "src/shard/workloads.h"

namespace fpgadp::shard {
namespace {

// ---------------------------------------------------------------------------
// Partitioner

TEST(PartitionerTest, HashCoversAllShardsDeterministically) {
  Partitioner p = Partitioner::Hash(4);
  std::set<uint32_t> seen;
  for (uint64_t key = 0; key < 1000; ++key) {
    const uint32_t s = p.ShardOf(key);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, p.ShardOf(key));  // stable
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(PartitionerTest, ModuloMapsKeyValue) {
  Partitioner p = Partitioner::Modulo(3);
  EXPECT_EQ(p.ShardOf(0), 0u);
  EXPECT_EQ(p.ShardOf(1), 1u);
  EXPECT_EQ(p.ShardOf(2), 2u);
  EXPECT_EQ(p.ShardOf(3), 0u);
  EXPECT_EQ(p.ShardOf(3), 0u);  // stateless: same key, same shard
}

TEST(PartitionerTest, ModuloSkewsOnStridedKeys) {
  // The failure mode that motivated a true round-robin scheme: all-even
  // keys on two shards land entirely on shard 0 under modulo.
  Partitioner p = Partitioner::Modulo(2);
  for (uint64_t key = 0; key < 100; key += 2) {
    EXPECT_EQ(p.ShardOf(key), 0u);
  }
}

TEST(PartitionerTest, RoundRobinCyclesInCallOrderIgnoringKeys) {
  Partitioner p = Partitioner::RoundRobin(3);
  // Identical (and adversarially strided) keys still cycle the shards.
  EXPECT_EQ(p.ShardOf(42), 0u);
  EXPECT_EQ(p.ShardOf(42), 1u);
  EXPECT_EQ(p.ShardOf(42), 2u);
  EXPECT_EQ(p.ShardOf(42), 0u);
  EXPECT_EQ(p.ShardOf(1000), 1u);
  EXPECT_EQ(p.ShardOf(2000), 2u);
}

TEST(PartitionerTest, RangeRespectsBounds) {
  // Shard 0 owns [0, 10], shard 1 owns (10, 100], shard 2 the rest.
  Partitioner p = Partitioner::Range({10, 100, 1000});
  EXPECT_EQ(p.num_shards(), 3u);
  EXPECT_EQ(p.ShardOf(0), 0u);
  EXPECT_EQ(p.ShardOf(10), 0u);
  EXPECT_EQ(p.ShardOf(11), 1u);
  EXPECT_EQ(p.ShardOf(100), 1u);
  EXPECT_EQ(p.ShardOf(101), 2u);
  EXPECT_EQ(p.ShardOf(99999), 2u);  // overflow goes to the last shard
}

// ---------------------------------------------------------------------------
// A minimal workload with controllable costs, for failure-mode tests.

class TestWorkload : public Workload {
 public:
  TestWorkload(uint32_t num_shards, uint64_t serve_cycles)
      : num_shards_(num_shards), serve_cycles_(serve_cycles) {}

  std::vector<SubRequest> Scatter(uint64_t) override {
    std::vector<SubRequest> subs;
    for (uint32_t s = 0; s < num_shards_; ++s) subs.push_back({s, 64});
    return subs;
  }
  Service Serve(uint32_t, uint64_t) override {
    return {serve_cycles_, 64};
  }
  void Merge(uint64_t request_id, const PartialOutcome& outcome) override {
    merged_[request_id] = outcome;
  }

  const std::map<uint64_t, PartialOutcome>& merged() const { return merged_; }

 private:
  uint32_t num_shards_;
  uint64_t serve_cycles_;
  std::map<uint64_t, PartialOutcome> merged_;
};

// ---------------------------------------------------------------------------
// Loss-free happy path + merge correctness against single-node baselines.

anns::Dataset ShardDataset() {
  anns::DatasetSpec spec;
  spec.num_base = 4000;
  spec.num_queries = 16;
  spec.dim = 16;
  spec.num_clusters = 16;
  spec.cluster_stddev = 0.3f;
  spec.seed = 77;
  return anns::MakeDataset(spec);
}

anns::IvfPqIndex BuildShardIndex(const anns::Dataset& data) {
  anns::IvfPqIndex::Options opts;
  opts.nlist = 32;
  opts.pq.m = 4;
  opts.pq.ksub = 32;
  opts.pq.train_iters = 6;
  auto index = anns::IvfPqIndex::Build(data.base, data.dim, opts);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return std::move(index).value();
}

TEST(ShardAnnsTest, ShardedTopKMatchesSingleNodeSearch) {
  const anns::Dataset data = ShardDataset();
  const anns::IvfPqIndex index = BuildShardIndex(data);

  AnnsTopKWorkload::Config wc;
  wc.nprobe = 8;
  wc.k = 10;
  AnnsTopKWorkload wl(&index, Partitioner::Hash(4), wc);

  ShardCluster::Config cc;
  cc.num_shards = 4;
  ShardCluster cluster(&wl, cc);
  std::vector<uint64_t> ids;
  for (size_t q = 0; q < data.num_queries(); ++q) {
    const uint64_t id = wl.AddQuery(data.QueryVector(q));
    ids.push_back(id);
    cluster.Submit(id);
  }
  auto cycles = cluster.Run();
  ASSERT_TRUE(cycles.ok()) << cycles.status().ToString();

  PartialOutcome out;
  size_t finalized = 0;
  while (cluster.PollOutcome(&out)) {
    EXPECT_TRUE(out.status.ok()) << out.status.ToString();
    EXPECT_FALSE(out.degraded());
    ++finalized;
  }
  EXPECT_EQ(finalized, data.num_queries());

  anns::IvfPqIndex::SearchParams params;
  params.nprobe = wc.nprobe;
  params.k = wc.k;
  for (size_t q = 0; q < data.num_queries(); ++q) {
    const auto expected = index.Search(data.QueryVector(q), params);
    const auto& got = wl.result(ids[q]);
    ASSERT_EQ(got.size(), expected.size()) << "query " << q;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id) << "query " << q << " rank " << i;
      EXPECT_FLOAT_EQ(got[i].distance, expected[i].distance);
    }
  }
}

TEST(ShardKvsTest, MultiGetReturnsUnionOfShardStores) {
  KvsMultiGetWorkload::Config kc;
  KvsMultiGetWorkload wl(Partitioner::Hash(4), kc);
  for (uint64_t key = 0; key < 500; ++key) {
    if (key % 3 != 0) wl.Load(key, key * 1000 + 7);
  }

  ShardCluster::Config cc;
  cc.num_shards = 4;
  ShardCluster cluster(&wl, cc);
  std::vector<uint64_t> keys;
  for (uint64_t key = 0; key < 120; ++key) keys.push_back(key * 4 + 1);
  const uint64_t id = wl.AddMultiGet(keys);
  cluster.Submit(id);
  ASSERT_TRUE(cluster.Run().ok());

  PartialOutcome out;
  ASSERT_TRUE(cluster.PollOutcome(&out));
  EXPECT_TRUE(out.status.ok());
  const auto& results = wl.result(id);
  ASSERT_EQ(results.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(results[i].key, keys[i]);
    EXPECT_TRUE(results[i].served);
    const bool should_hit = keys[i] % 3 != 0;
    EXPECT_EQ(results[i].hit, should_hit) << "key " << keys[i];
    if (should_hit) EXPECT_EQ(results[i].value, keys[i] * 1000 + 7);
  }
}

rel::Table MakeKeyedTable(uint64_t rows, uint64_t key_mod, uint64_t seed) {
  rel::SyntheticTableSpec spec;
  spec.num_rows = rows;
  spec.key_cardinality = key_mod;
  spec.seed = seed;
  return rel::MakeSyntheticTable(spec);
}

std::multiset<std::vector<int64_t>> RowMultiset(const rel::Table& t) {
  std::multiset<std::vector<int64_t>> rows;
  const size_t cols = t.schema().num_columns();
  for (const rel::Row& r : t.rows()) {
    std::vector<int64_t> v(cols);
    for (size_t c = 0; c < cols; ++c) v[c] = r.Get(c);
    rows.insert(std::move(v));
  }
  return rows;
}

TEST(ShardJoinTest, PartitionedJoinMatchesSingleNodeJoin) {
  // Unique build keys (PK side); probe side reuses the key range.
  rel::Table build(rel::Schema{{{"k"}, {"payload"}}});
  for (int64_t i = 0; i < 300; ++i) {
    rel::Row r;
    r.Set(0, i);
    r.Set(1, i * 11);
    build.Append(r);
  }
  const rel::Table probe = MakeKeyedTable(2000, 400, 9);
  rel::JoinSpec spec;
  spec.left_key = 0;
  spec.right_key = 1;  // synthetic table: key column

  HashJoinWorkload::Config jc;
  HashJoinWorkload wl(&build, &probe, spec, Partitioner::Hash(4), jc);
  ShardCluster::Config cc;
  cc.num_shards = 4;
  ShardCluster cluster(&wl, cc);
  cluster.Submit(wl.request_id());
  ASSERT_TRUE(cluster.Run().ok());

  PartialOutcome out;
  ASSERT_TRUE(cluster.PollOutcome(&out));
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();

  auto expected = rel::HashJoinCpu(build, probe, spec);
  ASSERT_TRUE(expected.ok());
  EXPECT_GT(expected->num_rows(), 0u);
  EXPECT_EQ(RowMultiset(wl.result()), RowMultiset(*expected));

  // Co-partitioning routed every row somewhere.
  size_t build_total = 0, probe_total = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    build_total += wl.build_rows(s);
    probe_total += wl.probe_rows(s);
  }
  EXPECT_EQ(build_total, build.num_rows());
  EXPECT_EQ(probe_total, probe.num_rows());
}

// ---------------------------------------------------------------------------
// Failure modes

TEST(ShardFailureTest, DeadShardDegradesToPartialOutcome) {
  TestWorkload wl(4, 100);
  ShardCluster::Config cc;
  cc.num_shards = 4;
  cc.reliability.rto_cycles = 500;
  cc.reliability.max_retries = 2;
  ShardCluster cluster(&wl, cc);

  // Shard 2's ingress link goes down before any traffic and stays down
  // longer than the retry budget: every request copy is lost.
  net::FaultInjector::Config fc;
  fc.flap_down_cycles = 1u << 30;
  net::FaultInjector injector(fc);
  injector.Schedule({0, net::FaultInjector::kAnyNode, /*dst=*/3,
                     net::FaultKind::kLinkFlap});
  cluster.set_fault_injector(&injector);

  cluster.Submit(1);
  ASSERT_TRUE(cluster.Run().ok());

  PartialOutcome out;
  ASSERT_TRUE(cluster.PollOutcome(&out));
  EXPECT_TRUE(out.degraded());
  EXPECT_EQ(out.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(out.shards_done, 3u);
  for (const auto& slice : out.slices) {
    EXPECT_EQ(slice.outcome,
              slice.shard == 2 ? SubOutcome::kFailed : SubOutcome::kDone);
  }
  EXPECT_EQ(cluster.coordinator().gathers_degraded(), 1u);
  ASSERT_EQ(wl.merged().count(1), 1u);  // Merge still ran on the partials
}

TEST(ShardFailureTest, StragglerTimesOutAndLateResponseIsCounted) {
  TestWorkload wl(2, 100);
  ShardCluster::Config cc;
  cc.num_shards = 2;
  cc.coordinator.gather_deadline_cycles = 20000;
  // No retransmissions: the delayed response must arrive late, not be
  // raced by a retransmitted copy.
  cc.reliability.rto_cycles = 1u << 30;
  ShardCluster cluster(&wl, cc);

  // Shard 1's first offload *response* pays a 200k-cycle delay spike —
  // well past the gather deadline. The op filter spares the RDMA ACKs.
  net::FaultInjector::Config fc;
  fc.delay_spike_cycles = 200000;
  net::FaultInjector injector(fc);
  injector.Schedule({0, /*src=*/2, /*dst=*/0, net::FaultKind::kDelay,
                     int(net::OpKind::kOffloadResp)});
  cluster.set_fault_injector(&injector);

  cluster.Submit(1);
  ASSERT_TRUE(cluster.Run().ok());

  PartialOutcome out;
  ASSERT_TRUE(cluster.PollOutcome(&out));
  EXPECT_TRUE(out.degraded());
  EXPECT_EQ(out.status.code(), StatusCode::kTimeout);
  for (const auto& slice : out.slices) {
    EXPECT_EQ(slice.outcome,
              slice.shard == 1 ? SubOutcome::kTimedOut : SubOutcome::kDone);
  }
  // The delayed response eventually arrived for a gather already gone.
  EXPECT_EQ(cluster.coordinator().late_responses(), 1u);
}

TEST(ShardFailureTest, OverloadedShardShedsInsteadOfStalling) {
  // One slow shard (10k cycles per slice), a tiny admission queue and a
  // wide-open coordinator window: a burst must shed, not pile up.
  TestWorkload wl(1, 10000);
  ShardCluster::Config cc;
  cc.num_shards = 1;
  cc.coordinator.window = 8;
  cc.server.max_queue = 1;
  ShardCluster cluster(&wl, cc);
  for (uint64_t id = 0; id < 8; ++id) cluster.Submit(id);
  ASSERT_TRUE(cluster.Run().ok());

  size_t ok = 0, shed = 0;
  PartialOutcome out;
  while (cluster.PollOutcome(&out)) {
    if (out.status.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted);
      ASSERT_EQ(out.slices.size(), 1u);
      EXPECT_EQ(out.slices[0].outcome, SubOutcome::kRejected);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, 8u);
  EXPECT_GE(shed, 1u);
  EXPECT_GE(ok, 1u);
  EXPECT_EQ(cluster.server(0).rejected(), shed);
  EXPECT_EQ(cluster.server(0).served(), ok);
  EXPECT_EQ(wl.merged().size(), 8u);
}

// ---------------------------------------------------------------------------
// Engine-mode invariance: the same deployment must report bit-identical
// cycles and results under serial, threaded, and no-fast-forward execution.

struct ModeRun {
  sim::Cycle cycles = 0;
  std::vector<anns::Neighbor> first_result;
  uint64_t stall_cycles = 0;
};

ModeRun RunAnnsCluster(const anns::Dataset& data,
                       const anns::IvfPqIndex& index, uint32_t threads,
                       bool fast_forward) {
  AnnsTopKWorkload::Config wc;
  wc.nprobe = 8;
  wc.k = 10;
  AnnsTopKWorkload wl(&index, Partitioner::Hash(4), wc);
  ShardCluster::Config cc;
  cc.num_shards = 4;
  ShardCluster cluster(&wl, cc);
  cluster.engine().SetThreads(threads);
  cluster.engine().SetFastForward(fast_forward);
  std::vector<uint64_t> ids;
  for (size_t q = 0; q < data.num_queries(); ++q) {
    ids.push_back(wl.AddQuery(data.QueryVector(q)));
    cluster.Submit(ids.back());
  }
  auto cycles = cluster.Run();
  EXPECT_TRUE(cycles.ok());
  ModeRun r;
  r.cycles = *cycles;
  r.first_result = wl.result(ids[0]);
  r.stall_cycles = cluster.coordinator().gather_stall_cycles();
  return r;
}

TEST(ShardDeterminismTest, CyclesIdenticalAcrossEngineModes) {
  const anns::Dataset data = ShardDataset();
  const anns::IvfPqIndex index = BuildShardIndex(data);
  const ModeRun base = RunAnnsCluster(data, index, 1, true);
  EXPECT_GT(base.cycles, 0u);
  for (const auto& [threads, ff] :
       std::vector<std::pair<uint32_t, bool>>{{1, false}, {8, true},
                                              {8, false}}) {
    const ModeRun run = RunAnnsCluster(data, index, threads, ff);
    EXPECT_EQ(run.cycles, base.cycles)
        << "threads=" << threads << " ff=" << ff;
    EXPECT_EQ(run.stall_cycles, base.stall_cycles)
        << "threads=" << threads << " ff=" << ff;
    ASSERT_EQ(run.first_result.size(), base.first_result.size());
    for (size_t i = 0; i < run.first_result.size(); ++i) {
      EXPECT_EQ(run.first_result[i].id, base.first_result[i].id);
    }
  }
}

// ---------------------------------------------------------------------------
// Observability

TEST(ShardMetricsTest, ClusterExportsPerShardGauges) {
  TestWorkload wl(2, 50);
  ShardCluster::Config cc;
  cc.num_shards = 2;
  ShardCluster cluster(&wl, cc);
  obs::MetricsRegistry registry;
  cluster.engine().EnableMetrics(&registry);
  cluster.Submit(1);
  ASSERT_TRUE(cluster.Run().ok());

  EXPECT_EQ(registry.GetGauge("shard.coord.gathers_completed")->value(), 1.0);
  EXPECT_EQ(registry.GetGauge("shard.coord.gathers_degraded")->value(), 0.0);
  EXPECT_EQ(registry.GetGauge("shard.shard0.served")->value(), 1.0);
  EXPECT_EQ(registry.GetGauge("shard.shard1.served")->value(), 1.0);
  EXPECT_GT(registry.GetGauge("shard.coord.gather_stall_cycles")->value(), 0.0);
}

// ---------------------------------------------------------------------------
// Elastic operations: replica bookkeeping units.

TEST(ReplicaSetTest, PromoteAdvancesCyclicallyAndKillsOldPrimary) {
  ReplicaSet rs(2, 3);
  EXPECT_EQ(rs.Primary(0), 0u);
  EXPECT_EQ(rs.alive_count(0), 3u);
  EXPECT_TRUE(rs.CanPromote(0));
  EXPECT_TRUE(rs.Promote(0));
  EXPECT_EQ(rs.Primary(0), 1u);
  EXPECT_FALSE(rs.alive(0, 0));
  EXPECT_EQ(rs.alive_count(0), 2u);
  EXPECT_EQ(rs.Primary(1), 0u);  // other shards untouched
  EXPECT_TRUE(rs.Promote(0));
  EXPECT_EQ(rs.Primary(0), 2u);
  // Last replica standing: nothing left to promote to.
  EXPECT_FALSE(rs.CanPromote(0));
  EXPECT_FALSE(rs.Promote(0));
  EXPECT_EQ(rs.Primary(0), 2u);
  EXPECT_EQ(rs.promotions(), 2u);
}

TEST(ReplicaSetTest, MarkDeadStandbyIsSkippedByPromote) {
  ReplicaSet rs(1, 3);
  rs.MarkDead(0, 1);
  EXPECT_TRUE(rs.Promote(0));
  EXPECT_EQ(rs.Primary(0), 2u);  // replica 1 was dead, scan skipped it
}

TEST(ReplicaSetTest, BeaconsAreMonotonic) {
  ReplicaSet rs(1, 2);
  rs.ObserveBeacon(0, 1, 500);
  rs.ObserveBeacon(0, 1, 300);  // late delivery must not rewind liveness
  EXPECT_EQ(rs.last_beacon(0, 1), 500u);
}

TEST(ElasticStateTest, BusyTracksLiveMigrationsOnly) {
  ElasticState es(ReplicaConfig{}, 4);
  EXPECT_FALSE(es.Busy(0));
  Migration m;
  m.plan = {/*source=*/0, /*target=*/2, 0, 10, 1 << 12};
  m.seq = es.next_migration_seq++;
  es.migrations.push_back(m);
  EXPECT_TRUE(es.Busy(0));
  EXPECT_TRUE(es.Busy(2));
  EXPECT_FALSE(es.Busy(1));
  EXPECT_EQ(es.ActiveCopyFrom(0), &es.migrations[0]);
  es.migrations[0].phase = MigrationPhase::kDone;
  EXPECT_FALSE(es.Busy(0));
  EXPECT_EQ(es.ActiveCopyFrom(0), nullptr);
}

TEST(PartitionerTest, MoveRangeSplitsAndCoalescesSegments) {
  // Shard 0 owns [0, 10], shard 1 (10, 100], shard 2 the rest.
  Partitioner p = Partitioner::Range({10, 100, 1000});
  EXPECT_TRUE(p.RangeOwnedBy(20, 60, 1));
  EXPECT_FALSE(p.RangeOwnedBy(5, 60, 1));
  p.MoveRange(20, 60, 2);
  EXPECT_EQ(p.OwnerOf(19), 1u);
  EXPECT_EQ(p.OwnerOf(20), 2u);
  EXPECT_EQ(p.OwnerOf(60), 2u);
  EXPECT_EQ(p.OwnerOf(61), 1u);
  EXPECT_EQ(p.OwnerOf(100), 1u);
  EXPECT_EQ(p.OwnerOf(101), 2u);
  EXPECT_EQ(p.OwnerOf(1u << 20), 2u);  // tail above the last bound
  EXPECT_TRUE(p.RangeOwnedBy(20, 60, 2));
  // Move it back: the table re-coalesces to the original ownership.
  p.MoveRange(20, 60, 1);
  for (uint64_t k = 0; k <= 110; ++k) {
    const uint32_t expected = k <= 10 ? 0u : (k <= 100 ? 1u : 2u);
    EXPECT_EQ(p.OwnerOf(k), expected) << "key " << k;
  }
}

// ---------------------------------------------------------------------------
// Failover differential: a replicated cluster that loses a primary mid-run
// must deliver results id-identical to a fault-free run — across all three
// workloads and every engine mode (mirrors gather_equivalence_test.cc).

struct EngineMode {
  uint32_t threads = 1;
  bool fast_forward = true;
};
constexpr EngineMode kEngineModes[] = {{1, true}, {1, false}, {8, true}};

uint64_t Lcg(uint64_t& state) {
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  return state >> 33;
}

struct FailoverPlan {
  bool inject = false;       ///< false = fault-free reference run.
  uint32_t victim_shard = 0; ///< Primary to kill (both link directions).
  sim::Cycle death_cycle = 0;
  EngineMode mode;
};

ShardCluster::Config ElasticConfig(uint32_t num_shards, bool replicated) {
  ShardCluster::Config cc;
  cc.num_shards = num_shards;
  cc.reliability.rto_cycles = 300;
  cc.reliability.max_retries = 2;
  if (replicated) {
    cc.replica.replication_factor = 2;
    // Interval must exceed the control-packet flight time (~207 cycles at
    // the default fabric config), or the wire never drains between waves.
    cc.replica.beacon_interval_cycles = 600;
    cc.replica.beacon_timeout_cycles = 1500;
  }
  return cc;
}

/// Runs `wl` with the given requests submitted; when fp.inject, the victim
/// shard's primary drops off the fabric (both directions, permanently) at
/// fp.death_cycle. Returns the per-request outcomes; asserts every slice
/// resolved kDone when a standby existed.
std::vector<PartialOutcome> RunWithFailover(Workload* wl,
                                            const std::vector<uint64_t>& ids,
                                            uint32_t num_shards,
                                            const FailoverPlan& fp,
                                            uint64_t* failovers) {
  ShardCluster::Config cc = ElasticConfig(num_shards, fp.inject);
  ShardCluster cluster(wl, cc);
  cluster.engine().SetThreads(fp.mode.threads);
  cluster.engine().SetFastForward(fp.mode.fast_forward);
  net::FaultInjector::Config fc;
  fc.flap_down_cycles = 1u << 30;  // the node never comes back
  net::FaultInjector injector(fc);
  if (fp.inject) {
    const uint32_t node = cluster.gather_plan().ReplicaNode(fp.victim_shard, 0);
    injector.Schedule({fp.death_cycle, node, net::FaultInjector::kAnyNode,
                       net::FaultKind::kLinkFlap});
    injector.Schedule({fp.death_cycle, net::FaultInjector::kAnyNode, node,
                       net::FaultKind::kLinkFlap});
    cluster.set_fault_injector(&injector);
  }
  for (uint64_t id : ids) cluster.Submit(id);
  const auto cycles = cluster.Run();
  EXPECT_TRUE(cycles.ok()) << cycles.status().ToString();
  if (failovers != nullptr) *failovers = cluster.coordinator().failovers();
  std::map<uint64_t, PartialOutcome> by_id;
  PartialOutcome out;
  while (cluster.PollOutcome(&out)) by_id[out.request_id] = out;
  std::vector<PartialOutcome> outs;
  for (uint64_t id : ids) {
    EXPECT_EQ(by_id.count(id), 1u) << "request " << id << " never resolved";
    outs.push_back(by_id[id]);
  }
  return outs;
}

TEST(FailoverEquivalenceTest, AnnsIdenticalWithDeadPrimary100Seeds) {
  const anns::Dataset data = ShardDataset();
  const anns::IvfPqIndex index = BuildShardIndex(data);
  AnnsTopKWorkload::Config wc;
  wc.nprobe = 8;
  wc.k = 10;
  uint64_t rng = 41;
  size_t seeds_with_failover = 0;
  for (uint32_t seed = 0; seed < 100; ++seed) {
    const uint32_t shards = 2 + seed % 7;
    FailoverPlan fp;
    fp.mode = kEngineModes[seed % 3];
    const std::vector<size_t> queries = {seed % data.num_queries(),
                                         (seed * 7 + 3) % data.num_queries()};

    AnnsTopKWorkload ref_wl(&index, Partitioner::Hash(shards), wc);
    std::vector<uint64_t> ref_ids;
    for (size_t q : queries) ref_ids.push_back(ref_wl.AddQuery(data.QueryVector(q)));
    const auto ref = RunWithFailover(&ref_wl, ref_ids, shards, fp, nullptr);

    fp.inject = true;
    fp.victim_shard = seed % shards;
    fp.death_cycle = 20 + Lcg(rng) % 1500;
    AnnsTopKWorkload wl(&index, Partitioner::Hash(shards), wc);
    std::vector<uint64_t> ids;
    for (size_t q : queries) ids.push_back(wl.AddQuery(data.QueryVector(q)));
    uint64_t failovers = 0;
    const auto runs = RunWithFailover(&wl, ids, shards, fp, &failovers);
    seeds_with_failover += failovers > 0 ? 1 : 0;

    ASSERT_EQ(runs.size(), ref.size());
    for (size_t q = 0; q < ids.size(); ++q) {
      EXPECT_TRUE(runs[q].status.ok())
          << "seed " << seed << " query " << q << " degraded despite standby: "
          << runs[q].status.ToString();
      const auto& expect = ref_wl.result(ref_ids[q]);
      const auto& got = wl.result(ids[q]);
      ASSERT_EQ(got.size(), expect.size()) << "seed " << seed;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expect[i].id)
            << "seed " << seed << " query " << q << " rank " << i;
        EXPECT_EQ(got[i].distance, expect[i].distance);
      }
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
  // The sweep must actually exercise recovery, not just schedule faults
  // after quiesce.
  EXPECT_GE(seeds_with_failover, 30u);
}

TEST(FailoverEquivalenceTest, KvsIdenticalWithDeadPrimary100Seeds) {
  KvsMultiGetWorkload::Config kc;
  uint64_t rng = 97;
  size_t seeds_with_failover = 0;
  for (uint32_t seed = 0; seed < 100; ++seed) {
    const uint32_t shards = 2 + seed % 7;
    FailoverPlan fp;
    fp.mode = kEngineModes[seed % 3];
    std::vector<std::vector<uint64_t>> batches(2);
    for (auto& batch : batches) {
      for (size_t i = 0; i < 24; ++i) batch.push_back(Lcg(rng) % 4096);
    }

    const auto load = [&](KvsMultiGetWorkload& wl) {
      for (uint64_t key = 0; key < 4096; key += 3) wl.Load(key, key * 31 + 5);
    };
    KvsMultiGetWorkload ref_wl(Partitioner::Hash(shards), kc);
    load(ref_wl);
    std::vector<uint64_t> ref_ids;
    for (const auto& b : batches) ref_ids.push_back(ref_wl.AddMultiGet(b));
    const auto ref = RunWithFailover(&ref_wl, ref_ids, shards, fp, nullptr);

    fp.inject = true;
    fp.victim_shard = seed % shards;
    // Multi-gets resolve fast; keep the death window tight so most seeds
    // kill the primary while its slice is still outstanding.
    fp.death_cycle = 5 + Lcg(rng) % 400;
    KvsMultiGetWorkload wl(Partitioner::Hash(shards), kc);
    load(wl);
    std::vector<uint64_t> ids;
    for (const auto& b : batches) ids.push_back(wl.AddMultiGet(b));
    uint64_t failovers = 0;
    const auto runs = RunWithFailover(&wl, ids, shards, fp, &failovers);
    seeds_with_failover += failovers > 0 ? 1 : 0;

    for (size_t r = 0; r < ids.size(); ++r) {
      EXPECT_TRUE(runs[r].status.ok()) << "seed " << seed;
      const auto& expect = ref_wl.result(ref_ids[r]);
      const auto& got = wl.result(ids[r]);
      ASSERT_EQ(got.size(), expect.size()) << "seed " << seed;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].key, expect[i].key) << "seed " << seed;
        EXPECT_EQ(got[i].served, expect[i].served) << "seed " << seed;
        EXPECT_EQ(got[i].hit, expect[i].hit) << "seed " << seed;
        EXPECT_EQ(got[i].value, expect[i].value) << "seed " << seed;
      }
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GE(seeds_with_failover, 30u);
}

TEST(FailoverEquivalenceTest, HashJoinIdenticalWithDeadPrimary100Seeds) {
  // Smaller sweep per seed (the join runs nested pipeline simulations at
  // Scatter), full coverage of victim/mode/death-cycle combinations.
  rel::Table build(rel::Schema{{{"k"}, {"payload"}}});
  for (int64_t i = 0; i < 120; ++i) {
    rel::Row r;
    r.Set(0, i);
    r.Set(1, i * 11);
    build.Append(r);
  }
  const rel::Table probe = MakeKeyedTable(600, 160, 9);
  rel::JoinSpec spec;
  spec.left_key = 0;
  spec.right_key = 1;
  HashJoinWorkload::Config jc;
  uint64_t rng = 7;
  size_t seeds_with_failover = 0;
  for (uint32_t seed = 0; seed < 100; ++seed) {
    const uint32_t shards = 2 + seed % 5;
    FailoverPlan fp;
    fp.mode = kEngineModes[seed % 3];

    HashJoinWorkload ref_wl(&build, &probe, spec, Partitioner::Hash(shards),
                            jc);
    const auto ref = RunWithFailover(&ref_wl, {ref_wl.request_id()}, shards,
                                     fp, nullptr);

    fp.inject = true;
    fp.victim_shard = seed % shards;
    fp.death_cycle = 20 + Lcg(rng) % 1500;
    HashJoinWorkload wl(&build, &probe, spec, Partitioner::Hash(shards), jc);
    uint64_t failovers = 0;
    const auto runs = RunWithFailover(&wl, {wl.request_id()}, shards, fp,
                                      &failovers);
    seeds_with_failover += failovers > 0 ? 1 : 0;

    EXPECT_TRUE(runs[0].status.ok()) << "seed " << seed;
    EXPECT_EQ(RowMultiset(wl.result()), RowMultiset(ref_wl.result()))
        << "seed " << seed;
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GE(seeds_with_failover, 30u);
}

}  // namespace
}  // namespace fpgadp::shard
