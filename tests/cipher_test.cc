#include "src/relational/cipher.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace fpgadp::rel {
namespace {

std::array<uint8_t, 32> TestKey() {
  std::array<uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[i] = uint8_t(i);
  return key;
}

TEST(ChaCha20Test, Rfc8439BlockVector) {
  // RFC 8439 section 2.3.2 test vector: key 00..1f, nonce
  // 000000090000004a00000000, counter 1.
  const std::array<uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                                         0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  ChaCha20 c(TestKey(), nonce);
  const auto block = c.KeystreamBlock(1);
  const uint8_t expected[64] = {
      0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd,
      0x1f, 0xa3, 0x20, 0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0,
      0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a, 0xc3, 0xd4, 0x6c, 0x4e, 0xd2,
      0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2, 0xd7, 0x05,
      0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e,
      0xb9, 0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e};
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(block[i], expected[i]) << "byte " << i;
  }
}

TEST(ChaCha20Test, EncryptDecryptRoundTrip) {
  const std::array<uint8_t, 12> nonce{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  Rng rng(5);
  std::vector<uint8_t> plain(10000);
  for (auto& b : plain) b = uint8_t(rng.Next());

  ChaCha20 enc(TestKey(), nonce);
  std::vector<uint8_t> cipher = enc.Transform(plain);
  EXPECT_NE(cipher, plain);

  ChaCha20 dec(TestKey(), nonce);
  EXPECT_EQ(dec.Transform(cipher), plain);
}

TEST(ChaCha20Test, NonBlockAlignedLengths) {
  const std::array<uint8_t, 12> nonce{};
  for (size_t n : {1u, 63u, 64u, 65u, 127u, 129u}) {
    std::vector<uint8_t> plain(n, 0xAB);
    ChaCha20 enc(TestKey(), nonce);
    ChaCha20 dec(TestKey(), nonce);
    EXPECT_EQ(dec.Transform(enc.Transform(plain)), plain) << "len " << n;
  }
}

TEST(ChaCha20Test, DifferentNoncesDiverge) {
  std::vector<uint8_t> plain(256, 0);
  ChaCha20 a(TestKey(), {0});
  std::array<uint8_t, 12> n2{};
  n2[11] = 1;
  ChaCha20 b(TestKey(), n2);
  EXPECT_NE(a.Transform(plain), b.Transform(plain));
}

TEST(ChaCha20Test, CounterAdvancesAcrossCalls) {
  // Applying twice in sequence must equal applying once over the
  // concatenation (streaming semantics for chunked offload).
  const std::array<uint8_t, 12> nonce{9};
  std::vector<uint8_t> first(100, 0x11), second(100, 0x22);
  ChaCha20 streaming(TestKey(), nonce);
  auto c1 = streaming.Transform(first);
  auto c2 = streaming.Transform(second);

  std::vector<uint8_t> whole = first;
  whole.insert(whole.end(), second.begin(), second.end());
  ChaCha20 oneshot(TestKey(), nonce);
  auto cw = oneshot.Transform(whole);
  std::vector<uint8_t> concat = c1;
  concat.insert(concat.end(), c2.begin(), c2.end());
  EXPECT_EQ(concat, cw);
}

}  // namespace
}  // namespace fpgadp::rel
