// Differential gather-equivalence suite: tree-structured and in-network
// (switch) aggregation must be *indistinguishable* from flat gather in every
// functional respect — result payloads bit-identical, PartialOutcome slices
// identical — across 100 seeded deployments of all three workloads and all
// engine modes. The gather topology is a pure wire/timing optimization; any
// observable difference is a bug this suite is designed to catch.
//
// Also home to the gather-specific fault-injection tests: a dead interior
// merge shard degrades exactly its subtree, and a dead aggregating-switch
// port degrades exactly its port's shards — neither hangs the cluster.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/anns/dataset.h"
#include "src/anns/ivf.h"
#include "src/common/check.h"
#include "src/net/agg_switch.h"
#include "src/net/fabric.h"
#include "src/relational/cpu_executor.h"
#include "src/relational/table.h"
#include "src/shard/gather.h"
#include "src/shard/partitioner.h"
#include "src/shard/shard.h"
#include "src/shard/workloads.h"

namespace fpgadp::shard {
namespace {

// ---------------------------------------------------------------------------
// Shared fixtures

/// Minimal workload with controllable costs (mirrors shard_test's
/// TestWorkload): every shard gets one 64-byte slice, serving takes a fixed
/// cycle count, and Merge records the PartialOutcome for inspection.
class TestWorkloadForGather : public Workload {
 public:
  TestWorkloadForGather(uint32_t num_shards, uint64_t serve_cycles)
      : num_shards_(num_shards), serve_cycles_(serve_cycles) {}

  std::vector<SubRequest> Scatter(uint64_t) override {
    std::vector<SubRequest> subs;
    for (uint32_t s = 0; s < num_shards_; ++s) subs.push_back({s, 64});
    return subs;
  }
  Service Serve(uint32_t, uint64_t) override { return {serve_cycles_, 64}; }
  void Merge(uint64_t request_id, const PartialOutcome& outcome) override {
    merged_[request_id] = outcome;
  }

  const std::map<uint64_t, PartialOutcome>& merged() const { return merged_; }

 private:
  uint32_t num_shards_;
  uint64_t serve_cycles_;
  std::map<uint64_t, PartialOutcome> merged_;
};

struct EngineMode {
  uint32_t threads = 1;
  bool fast_forward = true;
};

// Rotated through the seed sweep so every (workload, topology, mode) triple
// gets coverage without tripling the runtime; the dedicated mode-invariance
// test below additionally pins bit-identical *cycles* per mode.
constexpr EngineMode kEngineModes[] = {{1, true}, {1, false}, {8, true}};

struct GatherVariant {
  const char* name;
  GatherConfig gather;
};

// Variant 0 is the reference (the historical flat single-port layout);
// every other variant must reproduce its results exactly.
std::vector<GatherVariant> GatherVariants() {
  std::vector<GatherVariant> v;
  v.push_back({"flat-1port", GatherConfig{}});
  GatherConfig flat4;
  flat4.coordinator_ports = 4;
  v.push_back({"flat-4port", flat4});
  GatherConfig tree2;
  tree2.topology = GatherTopology::kTree;
  tree2.coordinator_ports = 2;
  tree2.fanout = 2;
  v.push_back({"tree-2port-f2", tree2});
  GatherConfig tree3;
  tree3.topology = GatherTopology::kTree;
  tree3.fanout = 3;
  tree3.merge_cycles_per_input = 9;  // off-default: timing must not leak
  v.push_back({"tree-1port-f3", tree3});
  GatherConfig sw2;
  sw2.topology = GatherTopology::kSwitch;
  sw2.coordinator_ports = 2;
  v.push_back({"switch-2port", sw2});
  GatherConfig sw4;
  sw4.topology = GatherTopology::kSwitch;
  sw4.coordinator_ports = 4;
  sw4.switch_combine_cycles = 16;
  v.push_back({"switch-4port", sw4});
  // Scatter-side multicast: request slices ride the per-port tree as
  // subtree bundles. Orthogonal to the response topology, so it is
  // exercised against flat, switch, and tree gather (the last also with
  // pipelined interior merges — the full tree-both-ways configuration).
  GatherConfig scatter_flat = flat4;
  scatter_flat.fanout = 2;
  scatter_flat.scatter = ScatterMode::kTree;
  v.push_back({"scatter-flat-4port", scatter_flat});
  GatherConfig scatter_sw = sw2;
  scatter_sw.fanout = 3;
  scatter_sw.scatter = ScatterMode::kTree;
  scatter_sw.scatter_forward_cycles = 7;  // off-default: timing must not leak
  v.push_back({"scatter-switch-2port", scatter_sw});
  GatherConfig scatter_tree = tree2;
  scatter_tree.scatter = ScatterMode::kTree;
  scatter_tree.pipelined_merge = true;
  v.push_back({"scatter-tree-2port-f2-pm", scatter_tree});
  return v;
}

uint64_t Lcg(uint64_t& state) {
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  return state >> 33;
}

/// (shard, outcome) per slice, per request — the full degradation surface of
/// a run, comparable across topologies.
using OutcomeSig = std::vector<std::vector<std::pair<uint32_t, int>>>;

OutcomeSig SignatureOf(const std::vector<PartialOutcome>& outcomes) {
  OutcomeSig sig;
  sig.reserve(outcomes.size());
  for (const PartialOutcome& out : outcomes) {
    std::vector<std::pair<uint32_t, int>> slices;
    slices.reserve(out.slices.size());
    for (const PartialOutcome::Slice& s : out.slices) {
      slices.push_back({s.shard, int(s.outcome)});
    }
    sig.push_back(std::move(slices));
  }
  return sig;
}

/// Drains the cluster's outcomes in request-id order (PollOutcome order is
/// completion order, which legitimately differs across topologies).
std::vector<PartialOutcome> DrainOutcomes(ShardCluster& cluster,
                                          const std::vector<uint64_t>& ids) {
  std::map<uint64_t, PartialOutcome> by_id;
  PartialOutcome out;
  while (cluster.PollOutcome(&out)) by_id[out.request_id] = out;
  std::vector<PartialOutcome> ordered;
  for (uint64_t id : ids) {
    auto it = by_id.find(id);
    EXPECT_TRUE(it != by_id.end()) << "request " << id << " never finalized";
    if (it != by_id.end()) ordered.push_back(std::move(it->second));
  }
  return ordered;
}

const anns::Dataset& EquivDataset() {
  static const anns::Dataset* data = [] {
    anns::DatasetSpec spec;
    spec.num_base = 1600;
    spec.num_queries = 8;
    spec.dim = 12;
    spec.num_clusters = 12;
    spec.cluster_stddev = 0.3f;
    spec.seed = 123;
    return new anns::Dataset(anns::MakeDataset(spec));
  }();
  return *data;
}

const anns::IvfPqIndex& EquivIndex() {
  static const anns::IvfPqIndex* index = [] {
    anns::IvfPqIndex::Options opts;
    opts.nlist = 24;
    opts.pq.m = 4;
    opts.pq.ksub = 16;
    opts.pq.train_iters = 4;
    auto built =
        anns::IvfPqIndex::Build(EquivDataset().base, EquivDataset().dim, opts);
    FPGADP_CHECK(built.ok());
    return new anns::IvfPqIndex(std::move(built).value());
  }();
  return *index;
}

// ---------------------------------------------------------------------------
// ANNS top-k differential

struct AnnsRun {
  sim::Cycle cycles = 0;
  bool all_ok = true;
  OutcomeSig outcomes;
  std::vector<std::vector<anns::Neighbor>> results;  // per query
};

AnnsRun RunAnnsGather(const GatherConfig& gather, uint32_t num_shards,
                      size_t nprobe, size_t k,
                      const std::vector<size_t>& query_idx, EngineMode mode) {
  const anns::Dataset& data = EquivDataset();
  AnnsTopKWorkload::Config wc;
  wc.nprobe = nprobe;
  wc.k = k;
  AnnsTopKWorkload wl(&EquivIndex(), Partitioner::Hash(num_shards), wc);
  ShardCluster::Config cc;
  cc.num_shards = num_shards;
  cc.gather = gather;
  ShardCluster cluster(&wl, cc);
  cluster.engine().SetThreads(mode.threads);
  cluster.engine().SetFastForward(mode.fast_forward);
  std::vector<uint64_t> ids;
  for (size_t q : query_idx) {
    ids.push_back(wl.AddQuery(data.QueryVector(q)));
    cluster.Submit(ids.back());
  }
  auto cycles = cluster.Run();
  AnnsRun r;
  EXPECT_TRUE(cycles.ok()) << cycles.status().ToString();
  if (!cycles.ok()) return r;
  r.cycles = *cycles;
  const std::vector<PartialOutcome> outs = DrainOutcomes(cluster, ids);
  for (const PartialOutcome& out : outs) r.all_ok &= out.status.ok();
  r.outcomes = SignatureOf(outs);
  for (uint64_t id : ids) r.results.push_back(wl.result(id));
  return r;
}

void ExpectSameAnns(const AnnsRun& ref, const AnnsRun& run,
                    const std::string& label) {
  EXPECT_TRUE(run.all_ok) << label;
  EXPECT_EQ(run.outcomes, ref.outcomes) << label;
  ASSERT_EQ(run.results.size(), ref.results.size()) << label;
  for (size_t q = 0; q < ref.results.size(); ++q) {
    ASSERT_EQ(run.results[q].size(), ref.results[q].size())
        << label << " query " << q;
    for (size_t i = 0; i < ref.results[q].size(); ++i) {
      EXPECT_EQ(run.results[q][i].id, ref.results[q][i].id)
          << label << " query " << q << " rank " << i;
      EXPECT_EQ(run.results[q][i].distance, ref.results[q][i].distance)
          << label << " query " << q << " rank " << i;
    }
  }
}

TEST(GatherEquivalenceTest, AnnsTopKIdenticalAcrossTopologies100Seeds) {
  const std::vector<GatherVariant> variants = GatherVariants();
  const size_t nq = EquivDataset().num_queries();
  for (uint32_t seed = 0; seed < 100; ++seed) {
    const uint32_t shards = 1 + seed % 8;
    const size_t nprobe = 4 + seed % 9;
    const size_t k = 4 + seed % 8;
    const std::vector<size_t> queries = {seed % nq, (seed * 7 + 3) % nq};
    const EngineMode mode = kEngineModes[seed % 3];
    AnnsRun ref;
    for (size_t v = 0; v < variants.size(); ++v) {
      AnnsRun run = RunAnnsGather(variants[v].gather, shards, nprobe, k,
                                  queries, mode);
      if (v == 0) {
        EXPECT_TRUE(run.all_ok) << "seed " << seed << " reference";
        ref = std::move(run);
        continue;
      }
      ExpectSameAnns(ref, run,
                     "seed " + std::to_string(seed) + " " + variants[v].name);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// ---------------------------------------------------------------------------
// KVS multi-get differential

struct KvsRun {
  sim::Cycle cycles = 0;
  bool all_ok = true;
  OutcomeSig outcomes;
  /// (key, served, hit, value) per key per request.
  std::vector<std::vector<std::tuple<uint64_t, bool, bool, uint64_t>>> results;
};

KvsRun RunKvsGather(const GatherConfig& gather, uint32_t num_shards,
                    uint32_t seed, size_t num_requests, size_t keys_per_req,
                    EngineMode mode) {
  KvsMultiGetWorkload::Config kc;
  KvsMultiGetWorkload wl(Partitioner::Hash(num_shards), kc);
  uint64_t st = seed * 2654435761ull + 17;
  for (int i = 0; i < 300; ++i) {
    const uint64_t key = Lcg(st) % 5000;
    wl.Load(key, key * 31 + seed);
  }
  ShardCluster::Config cc;
  cc.num_shards = num_shards;
  cc.gather = gather;
  ShardCluster cluster(&wl, cc);
  cluster.engine().SetThreads(mode.threads);
  cluster.engine().SetFastForward(mode.fast_forward);
  std::vector<uint64_t> ids;
  for (size_t r = 0; r < num_requests; ++r) {
    std::vector<uint64_t> keys;
    for (size_t i = 0; i < keys_per_req; ++i) keys.push_back(Lcg(st) % 5000);
    ids.push_back(wl.AddMultiGet(std::move(keys)));
    cluster.Submit(ids.back());
  }
  auto cycles = cluster.Run();
  KvsRun r;
  EXPECT_TRUE(cycles.ok()) << cycles.status().ToString();
  if (!cycles.ok()) return r;
  r.cycles = *cycles;
  const std::vector<PartialOutcome> outs = DrainOutcomes(cluster, ids);
  for (const PartialOutcome& out : outs) r.all_ok &= out.status.ok();
  r.outcomes = SignatureOf(outs);
  for (uint64_t id : ids) {
    std::vector<std::tuple<uint64_t, bool, bool, uint64_t>> per_key;
    for (const KvsMultiGetWorkload::GetResult& g : wl.result(id)) {
      per_key.push_back({g.key, g.served, g.hit, g.value});
    }
    r.results.push_back(std::move(per_key));
  }
  return r;
}

TEST(GatherEquivalenceTest, KvsMultiGetIdenticalAcrossTopologies100Seeds) {
  const std::vector<GatherVariant> variants = GatherVariants();
  for (uint32_t seed = 0; seed < 100; ++seed) {
    const uint32_t shards = 1 + seed % 8;
    const EngineMode mode = kEngineModes[seed % 3];
    KvsRun ref;
    for (size_t v = 0; v < variants.size(); ++v) {
      KvsRun run = RunKvsGather(variants[v].gather, shards, seed,
                                /*num_requests=*/2, /*keys_per_req=*/30, mode);
      if (v == 0) {
        EXPECT_TRUE(run.all_ok) << "seed " << seed << " reference";
        ref = std::move(run);
        continue;
      }
      const std::string label =
          "seed " + std::to_string(seed) + " " + variants[v].name;
      EXPECT_TRUE(run.all_ok) << label;
      EXPECT_EQ(run.outcomes, ref.outcomes) << label;
      EXPECT_EQ(run.results, ref.results) << label;
    }
  }
}

// ---------------------------------------------------------------------------
// Partitioned hash join differential

rel::Table MakeKeyedTable(uint64_t rows, uint64_t key_mod, uint64_t seed) {
  rel::SyntheticTableSpec spec;
  spec.num_rows = rows;
  spec.key_cardinality = key_mod;
  spec.seed = seed;
  return rel::MakeSyntheticTable(spec);
}

std::multiset<std::vector<int64_t>> RowMultiset(const rel::Table& t) {
  std::multiset<std::vector<int64_t>> rows;
  const size_t cols = t.schema().num_columns();
  for (const rel::Row& r : t.rows()) {
    std::vector<int64_t> v(cols);
    for (size_t c = 0; c < cols; ++c) v[c] = r.Get(c);
    rows.insert(std::move(v));
  }
  return rows;
}

struct JoinRun {
  sim::Cycle cycles = 0;
  bool ok = true;
  OutcomeSig outcomes;
  std::multiset<std::vector<int64_t>> rows;
};

JoinRun RunJoinGather(const GatherConfig& gather, uint32_t num_shards,
                      uint32_t seed, EngineMode mode) {
  rel::Table build(rel::Schema{{{"k"}, {"payload"}}});
  const int64_t nbuild = 40 + seed % 30;
  for (int64_t i = 0; i < nbuild; ++i) {
    rel::Row r;
    r.Set(0, i);
    r.Set(1, i * 13 + seed);
    build.Append(r);
  }
  const rel::Table probe =
      MakeKeyedTable(150, uint64_t(nbuild) + 20, seed + 1);
  rel::JoinSpec spec;
  spec.left_key = 0;
  spec.right_key = 1;  // synthetic table: key column
  HashJoinWorkload::Config jc;
  HashJoinWorkload wl(&build, &probe, spec, Partitioner::Hash(num_shards), jc);
  ShardCluster::Config cc;
  cc.num_shards = num_shards;
  cc.gather = gather;
  ShardCluster cluster(&wl, cc);
  cluster.engine().SetThreads(mode.threads);
  cluster.engine().SetFastForward(mode.fast_forward);
  cluster.Submit(wl.request_id());
  auto cycles = cluster.Run();
  JoinRun r;
  EXPECT_TRUE(cycles.ok()) << cycles.status().ToString();
  if (!cycles.ok()) return r;
  r.cycles = *cycles;
  const std::vector<PartialOutcome> outs =
      DrainOutcomes(cluster, {wl.request_id()});
  for (const PartialOutcome& out : outs) r.ok &= out.status.ok();
  r.outcomes = SignatureOf(outs);
  r.rows = RowMultiset(wl.result());
  return r;
}

TEST(GatherEquivalenceTest, HashJoinIdenticalAcrossTopologies100Seeds) {
  const std::vector<GatherVariant> variants = GatherVariants();
  for (uint32_t seed = 0; seed < 100; ++seed) {
    const uint32_t shards = 1 + seed % 4;
    const EngineMode mode = kEngineModes[seed % 3];
    JoinRun ref;
    for (size_t v = 0; v < variants.size(); ++v) {
      JoinRun run = RunJoinGather(variants[v].gather, shards, seed, mode);
      if (v == 0) {
        EXPECT_TRUE(run.ok) << "seed " << seed << " reference";
        EXPECT_FALSE(run.rows.empty()) << "seed " << seed;
        ref = std::move(run);
        continue;
      }
      const std::string label =
          "seed " + std::to_string(seed) + " " + variants[v].name;
      EXPECT_TRUE(run.ok) << label;
      EXPECT_EQ(run.outcomes, ref.outcomes) << label;
      EXPECT_EQ(run.rows, ref.rows) << label;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine-mode invariance: per topology, cycles AND results must be
// bit-identical under serial, no-fast-forward, and threaded execution.

TEST(GatherEquivalenceTest, CyclesIdenticalAcrossEngineModesPerTopology) {
  const std::vector<std::pair<uint32_t, bool>> modes = {
      {1, false}, {8, true}, {8, false}};
  for (const GatherVariant& variant : GatherVariants()) {
    for (uint32_t seed : {0u, 7u}) {
      const KvsRun base =
          RunKvsGather(variant.gather, /*num_shards=*/8, seed,
                       /*num_requests=*/3, /*keys_per_req=*/24, {1, true});
      EXPECT_GT(base.cycles, 0u) << variant.name;
      for (const auto& [threads, ff] : modes) {
        const KvsRun run =
            RunKvsGather(variant.gather, /*num_shards=*/8, seed,
                         /*num_requests=*/3, /*keys_per_req=*/24,
                         {threads, ff});
        const std::string label = std::string(variant.name) + " seed " +
                                  std::to_string(seed) + " threads=" +
                                  std::to_string(threads) +
                                  (ff ? " ff" : " noff");
        EXPECT_EQ(run.cycles, base.cycles) << label;
        EXPECT_EQ(run.outcomes, base.outcomes) << label;
        EXPECT_EQ(run.results, base.results) << label;
      }
    }
  }
}

TEST(GatherEquivalenceTest, AnnsCyclesIdenticalAcrossEngineModes) {
  const std::vector<GatherVariant> variants = GatherVariants();
  for (const GatherVariant& variant : variants) {
    if (variant.gather.topology == GatherTopology::kFlat) continue;
    const AnnsRun base = RunAnnsGather(variant.gather, /*num_shards=*/6,
                                       /*nprobe=*/8, /*k=*/10, {0, 3, 5},
                                       {1, true});
    EXPECT_GT(base.cycles, 0u) << variant.name;
    for (const auto& [threads, ff] :
         std::vector<std::pair<uint32_t, bool>>{{1, false}, {8, true},
                                                {8, false}}) {
      const AnnsRun run = RunAnnsGather(variant.gather, 6, 8, 10, {0, 3, 5},
                                        {threads, ff});
      const std::string label = std::string(variant.name) + " threads=" +
                                std::to_string(threads) +
                                (ff ? " ff" : " noff");
      EXPECT_EQ(run.cycles, base.cycles) << label;
      ExpectSameAnns(base, run, label);
    }
  }
}

// ---------------------------------------------------------------------------
// The aggregation paths must actually engage (guards against a silent
// fall-back to flat, which would pass every differential above).

TEST(GatherEquivalenceTest, TreeForwardsMergesAndSwitchCombines) {
  {
    GatherConfig tree;
    tree.topology = GatherTopology::kTree;
    tree.fanout = 2;
    KvsMultiGetWorkload::Config kc;
    KvsMultiGetWorkload wl(Partitioner::Hash(8), kc);
    for (uint64_t key = 0; key < 200; ++key) wl.Load(key, key + 1);
    ShardCluster::Config cc;
    cc.num_shards = 8;
    cc.gather = tree;
    ShardCluster cluster(&wl, cc);
    std::vector<uint64_t> keys;
    for (uint64_t key = 0; key < 64; ++key) keys.push_back(key);
    cluster.Submit(wl.AddMultiGet(keys));
    ASSERT_TRUE(cluster.Run().ok());
    // Every participating shard emitted exactly one merged packet upstream.
    uint64_t forwarded = 0;
    for (uint32_t s = 0; s < 8; ++s) {
      forwarded += cluster.server(s).merges_forwarded();
    }
    EXPECT_EQ(forwarded, 8u);
    EXPECT_EQ(cluster.gather_plan().armed_requests(), 0u);  // released
  }
  {
    GatherConfig sw;
    sw.topology = GatherTopology::kSwitch;
    sw.coordinator_ports = 2;
    AnnsTopKWorkload::Config wc;
    wc.nprobe = 12;
    wc.k = 10;
    AnnsTopKWorkload wl(&EquivIndex(), Partitioner::Hash(8), wc);
    ShardCluster::Config cc;
    cc.num_shards = 8;
    cc.gather = sw;
    ShardCluster cluster(&wl, cc);
    cluster.Submit(wl.AddQuery(EquivDataset().QueryVector(0)));
    ASSERT_TRUE(cluster.Run().ok());
    net::AggregatingSwitch* agg = cluster.agg_switch();
    ASSERT_NE(agg, nullptr);
    EXPECT_GT(agg->combines(), 0u);
    EXPECT_GT(agg->releases(), 0u);
    EXPECT_LE(agg->releases(), 2u);  // at most one merged packet per port
    // Top-k is a shrinking merge: combining must have elided payload bytes.
    EXPECT_GT(agg->bytes_elided(), 0u);
    EXPECT_EQ(agg->held_responses(), 0u);
  }
}

TEST(GatherEquivalenceTest, ScatterTreeForwardsBundles) {
  // One port, 8 shards, fanout 2: the coordinator ships one bundle to root
  // shard 0; interiors 0 -> {1, 2}, 1 -> {3, 4}, 2 -> {5, 6}, 3 -> {7} peel
  // and forward — every non-root member arrives via exactly one bundle.
  {
    GatherConfig g;
    g.topology = GatherTopology::kTree;
    g.fanout = 2;
    g.scatter = ScatterMode::kTree;
    g.pipelined_merge = true;
    TestWorkloadForGather wl(8, 100);
    ShardCluster::Config cc;
    cc.num_shards = 8;
    cc.gather = g;
    ShardCluster cluster(&wl, cc);
    cluster.Submit(1);
    ASSERT_TRUE(cluster.Run().ok());
    uint64_t forwarded = 0, stale = 0;
    for (uint32_t s = 0; s < 8; ++s) {
      forwarded += cluster.server(s).bundles_forwarded();
      stale += cluster.server(s).stale_bundles_dropped();
    }
    EXPECT_EQ(forwarded, 7u);
    EXPECT_EQ(stale, 0u);
    EXPECT_EQ(cluster.gather_plan().armed_requests(), 0u);  // released
    ASSERT_EQ(wl.merged().count(1), 1u);
  }
  // Scatter trees are orthogonal to the response path: with flat gather on
  // 4 ports the groups are pairs, so each group root forwards one bundle.
  {
    GatherConfig g;
    g.coordinator_ports = 4;
    g.fanout = 2;
    g.scatter = ScatterMode::kTree;
    TestWorkloadForGather wl(8, 100);
    ShardCluster::Config cc;
    cc.num_shards = 8;
    cc.gather = g;
    ShardCluster cluster(&wl, cc);
    cluster.Submit(1);
    ASSERT_TRUE(cluster.Run().ok());
    uint64_t forwarded = 0;
    for (uint32_t s = 0; s < 8; ++s) {
      forwarded += cluster.server(s).bundles_forwarded();
    }
    EXPECT_EQ(forwarded, 4u);
  }
}

// ---------------------------------------------------------------------------
// Fault injection: a dead interior merge shard degrades exactly its subtree.

TEST(GatherFaultTest, DeadInteriorTreeShardDegradesSubtreeOnly) {
  // 8 shards, one port, fanout 2: the gather tree over shards 0..7 is the
  // array heap 0 -> {1, 2}, 1 -> {3, 4}, 2 -> {5, 6}, 3 -> {7}. Killing
  // shard 1's ingress link makes its slice kFailed (request retry cap) and
  // strands the contributions of its whole subtree {3, 4, 7} (kTimedOut),
  // while the root forwards {0, 2, 5, 6} after its merge timeout.
  TestWorkloadForGather wl(8, 100);
  ShardCluster::Config cc;
  cc.num_shards = 8;
  cc.gather.topology = GatherTopology::kTree;
  cc.gather.fanout = 2;
  cc.gather.merge_timeout_cycles = 3000;
  cc.coordinator.gather_deadline_cycles = 20000;
  cc.reliability.rto_cycles = 500;
  cc.reliability.max_retries = 2;
  ShardCluster cluster(&wl, cc);

  // Shard 1 sits at fabric node ports + 1 = 2; everything sent to it —
  // the coordinator's request AND its children's merged contributions —
  // is lost for longer than any retry budget.
  net::FaultInjector::Config fc;
  fc.flap_down_cycles = 1u << 30;
  net::FaultInjector injector(fc);
  injector.Schedule({0, net::FaultInjector::kAnyNode, /*dst=*/2,
                     net::FaultKind::kLinkFlap});
  cluster.set_fault_injector(&injector);

  cluster.Submit(1);
  ASSERT_TRUE(cluster.Run().ok());

  PartialOutcome out;
  ASSERT_TRUE(cluster.PollOutcome(&out));
  EXPECT_TRUE(out.degraded());
  // A dead shard outranks the timeouts in the status ranking.
  EXPECT_EQ(out.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(out.shards_done, 4u);
  const std::set<uint32_t> failed = {1};
  const std::set<uint32_t> timed_out = {3, 4, 7};  // shard 1's subtree
  for (const auto& slice : out.slices) {
    SubOutcome expected = SubOutcome::kDone;
    if (failed.count(slice.shard)) expected = SubOutcome::kFailed;
    if (timed_out.count(slice.shard)) expected = SubOutcome::kTimedOut;
    EXPECT_EQ(slice.outcome, expected) << "shard " << slice.shard;
  }
  // The root forwarded a partial merge instead of wedging on child 1.
  EXPECT_GE(cluster.server(0).merge_timeouts(), 1u);
  EXPECT_EQ(cluster.gather_plan().armed_requests(), 0u);
  ASSERT_EQ(wl.merged().count(1), 1u);  // Merge still ran on the partials
}

TEST(GatherFaultTest, DeadInteriorScatterShardStrandsSubtreeOnly) {
  // Same heap tree as above, but now the REQUEST path rides it too. Killing
  // shard 1's ingress loses the bundle carrying subtree {1, 3, 4, 7}: none
  // of those shards ever receives its slice, and because descendants are
  // not individually windowed there is no per-slice retry — only the gather
  // deadline resolves them, all as kTimedOut (shard 1 included: no
  // point-to-point request ever exhausted retries against it).
  TestWorkloadForGather wl(8, 100);
  ShardCluster::Config cc;
  cc.num_shards = 8;
  cc.gather.topology = GatherTopology::kTree;
  cc.gather.fanout = 2;
  cc.gather.scatter = ScatterMode::kTree;
  cc.gather.pipelined_merge = true;
  cc.gather.merge_timeout_cycles = 3000;
  cc.coordinator.gather_deadline_cycles = 20000;
  ShardCluster cluster(&wl, cc);

  net::FaultInjector::Config fc;
  fc.flap_down_cycles = 1u << 30;
  net::FaultInjector injector(fc);
  injector.Schedule({0, net::FaultInjector::kAnyNode, /*dst=*/2,
                     net::FaultKind::kLinkFlap});
  cluster.set_fault_injector(&injector);

  cluster.Submit(1);
  ASSERT_TRUE(cluster.Run().ok());

  PartialOutcome out;
  ASSERT_TRUE(cluster.PollOutcome(&out));
  EXPECT_TRUE(out.degraded());
  EXPECT_EQ(out.status.code(), StatusCode::kTimeout);
  EXPECT_EQ(out.shards_done, 4u);
  const std::set<uint32_t> stranded = {1, 3, 4, 7};  // shard 1's subtree
  for (const auto& slice : out.slices) {
    EXPECT_EQ(slice.outcome, stranded.count(slice.shard)
                                 ? SubOutcome::kTimedOut
                                 : SubOutcome::kDone)
        << "shard " << slice.shard;
  }
  // The root forwarded shards 0/2/5/6 after its merge timeout, and only the
  // live half of the tree ever forwarded bundles (0 -> {1, 2}, 2 -> {5, 6}).
  EXPECT_GE(cluster.server(0).merge_timeouts(), 1u);
  uint64_t forwarded = 0;
  for (uint32_t s = 0; s < 8; ++s) {
    forwarded += cluster.server(s).bundles_forwarded();
  }
  EXPECT_EQ(forwarded, 4u);
  EXPECT_EQ(cluster.gather_plan().armed_requests(), 0u);
  ASSERT_EQ(wl.merged().count(1), 1u);  // Merge still ran on the partials
}

TEST(GatherFaultTest, DeadSwitchPortDegradesItsShardsOnly) {
  // 8 shards on 2 coordinator ports: even shards gather through port 0,
  // odd shards through port 1. Request 1 proves both combiners work; then
  // port 1's combiner dies, and request 2's odd responses are consumed and
  // dropped in-switch — the gather deadline, not a hang, resolves them.
  TestWorkloadForGather wl(8, 100);
  ShardCluster::Config cc;
  cc.num_shards = 8;
  cc.gather.topology = GatherTopology::kSwitch;
  cc.gather.coordinator_ports = 2;
  cc.coordinator.gather_deadline_cycles = 20000;
  ShardCluster cluster(&wl, cc);

  cluster.Submit(1);
  ASSERT_TRUE(cluster.Run().ok());
  PartialOutcome out;
  ASSERT_TRUE(cluster.PollOutcome(&out));
  EXPECT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_EQ(cluster.agg_switch()->releases(), 2u);  // one per port

  cluster.agg_switch()->KillPort(/*port=*/1);
  cluster.Submit(2);
  ASSERT_TRUE(cluster.Run().ok());
  ASSERT_TRUE(cluster.PollOutcome(&out));
  EXPECT_TRUE(out.degraded());
  EXPECT_EQ(out.status.code(), StatusCode::kTimeout);
  EXPECT_EQ(out.shards_done, 4u);
  for (const auto& slice : out.slices) {
    EXPECT_EQ(slice.outcome, slice.shard % 2 == 1 ? SubOutcome::kTimedOut
                                                  : SubOutcome::kDone)
        << "shard " << slice.shard;
  }
  // All four odd responses reached the dead combiner and were dropped;
  // none are held (the engine was able to quiesce).
  EXPECT_EQ(cluster.agg_switch()->dropped_dead_port(), 4u);
  EXPECT_EQ(cluster.agg_switch()->held_responses(), 0u);
  ASSERT_EQ(wl.merged().count(2), 1u);
}

}  // namespace
}  // namespace fpgadp::shard
