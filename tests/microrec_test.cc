#include "src/microrec/engine.h"

#include <gtest/gtest.h>

#include "src/microrec/cartesian.h"
#include "src/microrec/model.h"

namespace fpgadp::microrec {
namespace {

RecModel SmallModel(size_t tables = 24) {
  RecModel m = MakeTypicalModel(tables, /*seed=*/7, /*min_rows=*/100,
                                /*max_rows=*/100000, /*dim=*/16);
  m.hidden_layers = {256, 128};
  return m;
}

TEST(ModelTest, ShapeAndAccounting) {
  RecModel m = SmallModel(10);
  ASSERT_EQ(m.tables.size(), 10u);
  EXPECT_EQ(m.ConcatDim(), 160u);
  EXPECT_EQ(m.LookupsPerInference(), 10u);
  // MACs: 160*256 + 256*128 + 128.
  EXPECT_EQ(m.MlpMacs(), 160u * 256 + 256 * 128 + 128);
  uint64_t bytes = 0;
  for (const auto& t : m.tables) bytes += t.rows * 32;
  EXPECT_EQ(m.EmbeddingBytes(), bytes);
}

TEST(ModelTest, DeterministicInSeed) {
  RecModel a = MakeTypicalModel(20, 3);
  RecModel b = MakeTypicalModel(20, 3);
  RecModel c = MakeTypicalModel(20, 4);
  for (size_t i = 0; i < 20; ++i) EXPECT_EQ(a.tables[i].rows, b.tables[i].rows);
  bool any_diff = false;
  for (size_t i = 0; i < 20; ++i) any_diff |= a.tables[i].rows != c.tables[i].rows;
  EXPECT_TRUE(any_diff);
}

TEST(CartesianTest, IdentityPlanKeepsEverything) {
  RecModel m = SmallModel();
  CartesianPlan plan = PlanWithoutCartesian(m);
  EXPECT_EQ(plan.groups.size(), m.tables.size());
  EXPECT_EQ(plan.total_bytes, m.EmbeddingBytes());
  for (size_t i = 0; i < plan.groups.size(); ++i) {
    EXPECT_EQ(plan.groups[i].members, std::vector<size_t>{i});
  }
}

TEST(CartesianTest, CombiningReducesLookups) {
  RecModel m = SmallModel();
  CartesianPlan plan = PlanCartesian(m);
  EXPECT_LT(plan.LookupsPerInference(), m.LookupsPerInference());
}

TEST(CartesianTest, EveryTableCoveredExactlyOnce) {
  RecModel m = SmallModel();
  CartesianPlan plan = PlanCartesian(m);
  std::vector<int> covered(m.tables.size(), 0);
  for (const auto& g : plan.groups) {
    uint64_t rows = 1;
    uint32_t dim = 0;
    for (size_t t : g.members) {
      ++covered[t];
      rows *= m.tables[t].rows;
      dim += m.tables[t].dim;
    }
    EXPECT_EQ(g.rows, rows);
    EXPECT_EQ(g.dim, dim);
  }
  for (int c : covered) EXPECT_EQ(c, 1);
}

TEST(CartesianTest, RespectsRowLimit) {
  RecModel m = SmallModel();
  CartesianOptions opts;
  opts.max_product_rows = 50000;
  CartesianPlan plan = PlanCartesian(m, opts);
  for (const auto& g : plan.groups) {
    if (g.members.size() > 1) {
      EXPECT_LE(g.rows, 50000u);
    }
  }
}

TEST(CartesianTest, RespectsMemoryBudget) {
  RecModel m = SmallModel();
  CartesianOptions opts;
  opts.max_extra_bytes = 1 << 20;
  CartesianPlan plan = PlanCartesian(m, opts);
  EXPECT_LE(plan.total_bytes, m.EmbeddingBytes() + (1 << 20));
}

TEST(CartesianTest, ZeroBudgetMeansNoCombining) {
  RecModel m = SmallModel();
  CartesianOptions opts;
  opts.max_extra_bytes = 0;
  opts.max_product_rows = 1;  // nothing qualifies
  CartesianPlan plan = PlanCartesian(m, opts);
  EXPECT_EQ(plan.groups.size(), m.tables.size());
}

TEST(PlacementTest, SmallTablesGoToSram) {
  RecModel m = SmallModel();
  CartesianPlan plan = PlanWithoutCartesian(m);
  auto layout = PlaceTables(plan, 32, /*sram=*/1 << 20, /*hbm=*/8ull << 30);
  ASSERT_TRUE(layout.ok());
  EXPECT_GT(layout->sram_groups, 0u);
  EXPECT_LE(layout->sram_bytes_used, 1u << 20);
  EXPECT_EQ(layout->sram_groups + layout->hbm_groups, plan.groups.size());
  // Every SRAM-resident group is no larger than every HBM-resident group.
  uint64_t max_sram = 0, min_hbm = UINT64_MAX;
  for (size_t g = 0; g < plan.groups.size(); ++g) {
    if (layout->placements[g].loc == Loc::kSram) {
      max_sram = std::max(max_sram, plan.groups[g].bytes());
    } else {
      min_hbm = std::min(min_hbm, plan.groups[g].bytes());
    }
  }
  if (layout->hbm_groups > 0) {
    EXPECT_LE(max_sram, min_hbm);
  }
}

TEST(PlacementTest, HbmLoadIsBalanced) {
  RecModel m = MakeTypicalModel(64, 9, 10000, 100000, 16);
  CartesianPlan plan = PlanWithoutCartesian(m);
  auto layout = PlaceTables(plan, 8, /*sram=*/0, /*hbm=*/8ull << 30);
  ASSERT_TRUE(layout.ok());
  uint64_t lo = UINT64_MAX, hi = 0;
  for (uint64_t b : layout->channel_bytes) {
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  EXPECT_LT(double(hi), 2.0 * double(lo) + 1e6);
}

TEST(PlacementTest, OverflowIsError) {
  RecModel m = MakeTypicalModel(4, 9, 1 << 20, 1 << 20, 16);
  CartesianPlan plan = PlanWithoutCartesian(m);
  auto layout = PlaceTables(plan, 2, 0, /*hbm=*/1 << 20);  // tiny capacity
  EXPECT_EQ(layout.status().code(), StatusCode::kResourceExhausted);
}

TEST(EngineTest, RunsAndAccountsLookups) {
  RecModel m = SmallModel();
  auto engine = MicroRecEngine::Create(&m, PlanWithoutCartesian(m),
                                       device::AlveoU280());
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto stats = engine->RunBatch(64, 13);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->hbm_lookups + stats->sram_lookups, 64u * m.tables.size());
  EXPECT_GT(stats->inferences_per_sec, 0);
  EXPECT_GT(stats->latency_us, 0);
  // Each HBM lookup moves one 32-byte granule (dim16 x fp16 = 32 B).
  EXPECT_EQ(stats->hbm_bytes, stats->hbm_lookups * 32);
}

TEST(EngineTest, CartesianPlanIsFaster) {
  RecModel m = MakeTypicalModel(48, 17, 50, 200000, 16);
  m.hidden_layers = {256, 128};
  MicroRecConfig cfg;
  cfg.sram_budget_bytes = 0;  // isolate the lookup-count effect
  auto base = MicroRecEngine::Create(&m, PlanWithoutCartesian(m),
                                     device::AlveoU280(), cfg);
  auto cart =
      MicroRecEngine::Create(&m, PlanCartesian(m), device::AlveoU280(), cfg);
  ASSERT_TRUE(base.ok() && cart.ok());
  ASSERT_LT(cart->plan().LookupsPerInference(),
            base->plan().LookupsPerInference());
  auto sb = base->RunBatch(128, 19);
  auto sc = cart->RunBatch(128, 19);
  ASSERT_TRUE(sb.ok() && sc.ok());
  EXPECT_LT(sc->hbm_lookups, sb->hbm_lookups);
  EXPECT_LE(sc->cycles, sb->cycles);
}

TEST(EngineTest, MoreChannelsMoreThroughput) {
  RecModel m = MakeTypicalModel(64, 23, 10000, 500000, 16);
  m.hidden_layers = {};  // output neuron only: lookups dominate
  MicroRecConfig few, many;
  few.sram_budget_bytes = many.sram_budget_bytes = 0;
  few.jobs_in_flight = many.jobs_in_flight = 16;
  few.override_hbm_channels = 2;
  many.override_hbm_channels = 32;
  auto e_few =
      MicroRecEngine::Create(&m, PlanWithoutCartesian(m), device::AlveoU280(), few);
  auto e_many = MicroRecEngine::Create(&m, PlanWithoutCartesian(m),
                                       device::AlveoU280(), many);
  ASSERT_TRUE(e_few.ok() && e_many.ok());
  auto s_few = e_few->RunBatch(64, 29);
  auto s_many = e_many->RunBatch(64, 29);
  ASSERT_TRUE(s_few.ok() && s_many.ok());
  EXPECT_GT(s_many->inferences_per_sec, 2 * s_few->inferences_per_sec);
}

TEST(EngineTest, SramBudgetReducesHbmTraffic) {
  RecModel m = SmallModel(32);
  MicroRecConfig none, lots;
  none.sram_budget_bytes = 0;
  lots.sram_budget_bytes = 16ull << 20;
  auto e0 = MicroRecEngine::Create(&m, PlanWithoutCartesian(m),
                                   device::AlveoU280(), none);
  auto e1 = MicroRecEngine::Create(&m, PlanWithoutCartesian(m),
                                   device::AlveoU280(), lots);
  ASSERT_TRUE(e0.ok() && e1.ok());
  auto s0 = e0->RunBatch(32, 31);
  auto s1 = e1->RunBatch(32, 31);
  ASSERT_TRUE(s0.ok() && s1.ok());
  EXPECT_LT(s1->hbm_lookups, s0->hbm_lookups);
  EXPECT_GT(s1->sram_lookups, 0u);
}

TEST(EngineTest, FpgaBeatsCpuBaselineByOrderOfMagnitude) {
  // The E5 headline in miniature: a lookup-heavy production-shaped model.
  RecModel m = MakeTypicalModel(96, 37, 1000, 1000000, 16);
  m.hidden_layers = {512, 256, 128};
  auto engine =
      MicroRecEngine::Create(&m, PlanCartesian(m), device::AlveoU280());
  ASSERT_TRUE(engine.ok());
  auto stats = engine->RunBatch(256, 41);
  ASSERT_TRUE(stats.ok());
  CpuRecBaseline cpu;
  const double cpu_ips =
      1.0 / cpu.SecondsPerInference(m, m.LookupsPerInference());
  EXPECT_GT(stats->inferences_per_sec, 5 * cpu_ips)
      << "fpga " << stats->inferences_per_sec << " vs cpu " << cpu_ips;
}

TEST(EngineTest, RejectsBadInput) {
  RecModel m = SmallModel();
  EXPECT_FALSE(MicroRecEngine::Create(nullptr, PlanWithoutCartesian(m),
                                      device::AlveoU280())
                   .ok());
  // U250 has no HBM.
  EXPECT_FALSE(MicroRecEngine::Create(&m, PlanWithoutCartesian(m),
                                      device::AlveoU250())
                   .ok());
  auto engine = MicroRecEngine::Create(&m, PlanWithoutCartesian(m),
                                       device::AlveoU280());
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->RunBatch(0, 1).ok());
}

}  // namespace
}  // namespace fpgadp::microrec
