#include "src/anns/biskm.h"

#include <gtest/gtest.h>

#include "src/anns/dataset.h"
#include "src/common/random.h"

namespace fpgadp::anns {
namespace {

std::vector<float> TestPoints(size_t n = 2000, size_t dim = 8) {
  return GenerateClusteredVectors(n, dim, 10, 61);
}

TEST(QuantizeTest, FullPrecisionIsIdentity) {
  const auto pts = TestPoints(100);
  EXPECT_EQ(QuantizeToBits(pts, 8, 32), pts);
}

TEST(QuantizeTest, OneBitCollapsesToTwoLevelsPerDim) {
  const auto pts = TestPoints(200, 4);
  const auto q = QuantizeToBits(pts, 4, 1);
  for (size_t d = 0; d < 4; ++d) {
    std::vector<float> values;
    for (size_t i = 0; i < 200; ++i) values.push_back(q[i * 4 + d]);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    EXPECT_LE(values.size(), 2u);
  }
}

TEST(QuantizeTest, ErrorShrinksWithBits) {
  const auto pts = TestPoints();
  double prev_err = 1e300;
  for (uint32_t bits : {1u, 2u, 4u, 8u, 16u}) {
    const auto q = QuantizeToBits(pts, 8, bits);
    double err = 0;
    for (size_t i = 0; i < pts.size(); ++i) {
      err += double(pts[i] - q[i]) * double(pts[i] - q[i]);
    }
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-3);
}

TEST(QuantizeTest, StaysWithinRange) {
  const auto pts = TestPoints(500, 4);
  const auto q = QuantizeToBits(pts, 4, 3);
  float lo = 1e30f, hi = -1e30f;
  for (float v : pts) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (float v : q) {
    EXPECT_GE(v, lo - 1e-5f);
    EXPECT_LE(v, hi + 1e-5f);
  }
}

TEST(BisKmTest, RejectsBadBits) {
  const auto pts = TestPoints();
  BisKmOptions opts;
  opts.bits = 0;
  EXPECT_FALSE(KMeansAnyPrecision(pts, 8, opts).ok());
  opts.bits = 33;
  EXPECT_FALSE(KMeansAnyPrecision(pts, 8, opts).ok());
}

TEST(BisKmTest, QualityDegradesGracefully) {
  // The BiS-KM result: 8-bit training is nearly as good as fp32, while
  // 1-bit is measurably worse but still clusters.
  const auto pts = TestPoints(3000);
  BisKmOptions opts;
  opts.k = 10;
  opts.max_iters = 12;
  auto full = KMeansAnyPrecision(pts, 8, opts);  // bits=8 default
  opts.bits = 32;
  auto exact = KMeansAnyPrecision(pts, 8, opts);
  opts.bits = 1;
  auto one_bit = KMeansAnyPrecision(pts, 8, opts);
  ASSERT_TRUE(full.ok() && exact.ok() && one_bit.ok());
  EXPECT_LT(full->full_inertia, 1.15 * exact->full_inertia)
      << "8-bit within 15% of full precision";
  EXPECT_GT(one_bit->full_inertia, exact->full_inertia);
}

TEST(BisKmTest, InertiaMonotoneInBitsOnAverage) {
  const auto pts = TestPoints(2500);
  BisKmOptions opts;
  opts.k = 8;
  opts.max_iters = 10;
  std::vector<double> inertia;
  for (uint32_t bits : {1u, 4u, 16u}) {
    opts.bits = bits;
    auto r = KMeansAnyPrecision(pts, 8, opts);
    ASSERT_TRUE(r.ok());
    inertia.push_back(r->full_inertia);
  }
  EXPECT_GT(inertia[0], inertia[2]);  // 1 bit worse than 16
}

TEST(BisKmTest, ThroughputScalesInverselyWithBits) {
  const double t32 = BisKmPointsPerSecond(16, 32);
  const double t8 = BisKmPointsPerSecond(16, 8);
  const double t1 = BisKmPointsPerSecond(16, 1);
  EXPECT_DOUBLE_EQ(t8, 4 * t32);
  EXPECT_DOUBLE_EQ(t1, 32 * t32);
}

TEST(BisKmTest, DeterministicInSeed) {
  const auto pts = TestPoints(1000);
  BisKmOptions opts;
  opts.bits = 4;
  auto a = KMeansAnyPrecision(pts, 8, opts);
  auto b = KMeansAnyPrecision(pts, 8, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->clustering.centroids, b->clustering.centroids);
  EXPECT_DOUBLE_EQ(a->full_inertia, b->full_inertia);
}

}  // namespace
}  // namespace fpgadp::anns
