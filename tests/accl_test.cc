#include "src/accl/collectives.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace fpgadp::accl {
namespace {

std::vector<std::vector<float>> RandomBuffers(uint32_t ranks, size_t n,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> buffers(ranks, std::vector<float>(n));
  for (auto& b : buffers) {
    for (auto& v : b) v = float(rng.NextDouble());
  }
  return buffers;
}

std::vector<float> ElementwiseSum(const std::vector<std::vector<float>>& b) {
  std::vector<float> sum = b[0];
  for (size_t r = 1; r < b.size(); ++r) {
    for (size_t i = 0; i < sum.size(); ++i) sum[i] += b[r][i];
  }
  return sum;
}

TEST(BroadcastTest, AllRanksGetRootData) {
  for (Algo algo : {Algo::kLinear, Algo::kTree}) {
    Communicator comm(5);
    auto buffers = RandomBuffers(5, 256, 1);
    const auto root_data = buffers[2];
    auto stats = comm.Broadcast(2, buffers, algo);
    ASSERT_TRUE(stats.ok()) << stats.status();
    for (const auto& b : buffers) EXPECT_EQ(b, root_data);
    EXPECT_GT(stats->cycles, 0u);
  }
}

TEST(BroadcastTest, TreeBeatsLinearAtScale) {
  const uint32_t p = 16;
  const size_t n = 1 << 16;  // 256 KiB
  Communicator comm(p);
  auto b1 = RandomBuffers(p, n, 2);
  auto b2 = b1;
  auto lin = comm.Broadcast(0, b1, Algo::kLinear);
  auto tree = comm.Broadcast(0, b2, Algo::kTree);
  ASSERT_TRUE(lin.ok() && tree.ok());
  // Linear: root serializes p-1 transfers. Tree: log2(p) rounds.
  EXPECT_LT(tree->cycles, lin->cycles);
}

TEST(BroadcastTest, WireBytesMatchAlgorithm) {
  const uint32_t p = 8;
  const size_t n = 1024;
  Communicator comm(p);
  auto b = RandomBuffers(p, n, 3);
  auto lin = comm.Broadcast(0, b, Algo::kLinear);
  ASSERT_TRUE(lin.ok());
  // Both algorithms move (p-1) copies in total; tree just parallelizes.
  EXPECT_EQ(lin->wire_bytes, (p - 1) * n * sizeof(float));
  auto tree = comm.Broadcast(0, b, Algo::kTree);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->wire_bytes, (p - 1) * n * sizeof(float));
}

TEST(ScatterGatherTest, RoundTripPreservesData) {
  const uint32_t p = 4;
  Communicator comm(p);
  std::vector<float> input(p * 100);
  for (size_t i = 0; i < input.size(); ++i) input[i] = float(i);
  std::vector<std::vector<float>> chunks;
  auto s = comm.Scatter(0, input, chunks);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(chunks.size(), p);
  for (uint32_t r = 0; r < p; ++r) {
    EXPECT_EQ(chunks[r][0], float(r * 100));
  }
  std::vector<float> gathered;
  auto g = comm.Gather(0, chunks, &gathered);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(gathered, input);
}

TEST(ScatterTest, RejectsIndivisibleInput) {
  Communicator comm(4);
  std::vector<float> input(10);  // not divisible by 4
  std::vector<std::vector<float>> out;
  EXPECT_FALSE(comm.Scatter(0, input, out).ok());
}

TEST(ReduceTest, RootHoldsSum) {
  for (Algo algo : {Algo::kLinear, Algo::kTree}) {
    Communicator comm(6);
    auto buffers = RandomBuffers(6, 128, 4);
    const auto expect = ElementwiseSum(buffers);
    auto stats = comm.Reduce(1, buffers, algo);
    ASSERT_TRUE(stats.ok());
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_FLOAT_EQ(buffers[1][i], expect[i]);
    }
  }
}

TEST(AllReduceTest, EveryRankHoldsSum) {
  for (Algo algo : {Algo::kRing, Algo::kTree}) {
    Communicator comm(7);
    auto buffers = RandomBuffers(7, 128, 5);
    const auto expect = ElementwiseSum(buffers);
    auto stats = comm.AllReduce(buffers, algo);
    ASSERT_TRUE(stats.ok()) << stats.status();
    for (const auto& b : buffers) {
      for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_FLOAT_EQ(b[i], expect[i]);
      }
    }
  }
}

TEST(AllReduceTest, RingBeatsTreeOnLargeBuffers) {
  // Ring moves 2(p-1)/p of the buffer per NIC; tree moves whole buffers
  // log(p) deep — for large n, ring wins on bandwidth.
  const uint32_t p = 8;
  const size_t n = 1 << 18;  // 1 MiB
  Communicator comm(p);
  auto b1 = RandomBuffers(p, n, 6);
  auto b2 = b1;
  auto ring = comm.AllReduce(b1, Algo::kRing);
  auto tree = comm.AllReduce(b2, Algo::kTree);
  ASSERT_TRUE(ring.ok() && tree.ok());
  EXPECT_LT(ring->cycles, tree->cycles);
}

TEST(AllReduceTest, SingleRankIsIdentityAndFast) {
  Communicator comm(1);
  auto buffers = RandomBuffers(1, 64, 7);
  const auto before = buffers[0];
  auto stats = comm.AllReduce(buffers);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(buffers[0], before);
}

TEST(BarrierTest, CompletesInMicroseconds) {
  Communicator comm(16);
  auto stats = comm.Barrier();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->wire_bytes, 0u);
  // 2*log2(16) = 8 wire hops at ~1 us each: well under 100 us.
  EXPECT_LT(stats->seconds, 100e-6);
  EXPECT_GT(stats->seconds, 1e-6);
}

TEST(CollectiveTest, LatencyGrowsWithWorldSizeLogarithmically) {
  // Tree broadcast rounds = ceil(log2 p): doubling p adds ~one round.
  const size_t n = 1024;
  std::vector<uint64_t> cycles;
  // Rounds go 2 -> 3 -> 4 over this sweep, so each doubling of p adds only
  // ~one round (ratio well under 2x, unlike a linear schedule's 2x).
  for (uint32_t p : {4u, 8u, 16u}) {
    Communicator comm(p);
    auto b = RandomBuffers(p, n, 8);
    auto stats = comm.Broadcast(0, b, Algo::kTree);
    ASSERT_TRUE(stats.ok());
    cycles.push_back(stats->cycles);
  }
  for (size_t i = 1; i < cycles.size(); ++i) {
    EXPECT_GT(cycles[i], cycles[i - 1]);
    EXPECT_LT(double(cycles[i]), 1.8 * double(cycles[i - 1]));
  }
}

TEST(CollectiveTest, ErrorsOnBadArguments) {
  Communicator comm(4);
  auto buffers = RandomBuffers(4, 16, 9);
  EXPECT_FALSE(comm.Broadcast(9, buffers).ok());
  auto short_buffers = RandomBuffers(3, 16, 9);
  EXPECT_FALSE(comm.AllReduce(short_buffers).ok());
  std::vector<std::vector<float>> ragged = buffers;
  ragged[2].resize(8);
  EXPECT_FALSE(comm.AllReduce(ragged).ok());
}

}  // namespace
}  // namespace fpgadp::accl
