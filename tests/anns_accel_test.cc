#include "src/anns/accel.h"

#include <gtest/gtest.h>

#include "src/anns/cpu_cost.h"
#include "src/anns/dataset.h"
#include "src/anns/topk.h"
#include "src/anns/tuner.h"
#include "src/common/random.h"

namespace fpgadp::anns {
namespace {

struct Fixture {
  Dataset data;
  IvfPqIndex index;

  static Fixture Make() {
    DatasetSpec spec;
    spec.num_base = 3000;
    spec.num_queries = 16;
    spec.dim = 16;
    spec.num_clusters = 12;
    spec.seed = 61;
    Dataset data = MakeDataset(spec);
    IvfPqIndex::Options opts;
    opts.nlist = 24;
    opts.pq.m = 4;
    opts.pq.ksub = 32;
    opts.pq.train_iters = 5;
    auto index = IvfPqIndex::Build(data.base, data.dim, opts);
    FPGADP_CHECK(index.ok());
    return Fixture{std::move(data), std::move(index).value()};
  }
};

TEST(SystolicTopKTest, KeepsKSmallest) {
  SystolicTopK topk(3);
  const float dists[] = {5, 1, 9, 3, 7, 2, 8};
  for (uint32_t i = 0; i < 7; ++i) topk.Insert(dists[i], i);
  const auto& res = topk.Results();
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].distance, 1);
  EXPECT_EQ(res[1].distance, 2);
  EXPECT_EQ(res[2].distance, 3);
  EXPECT_EQ(topk.inserts(), 7u);
}

TEST(SystolicTopKTest, MatchesHeapOnRandomStream) {
  Rng rng(71);
  SystolicTopK systolic(10);
  HeapTopK heap(10);
  for (uint32_t i = 0; i < 5000; ++i) {
    const float d = float(rng.NextDouble());
    systolic.Insert(d, i);
    heap.Insert(d, i);
  }
  const auto a = systolic.Results();
  const auto b = heap.Results();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].distance, b[i].distance);
  }
}

TEST(SystolicTopKTest, CyclesIndependentOfK) {
  // The hardware claim behind E12: inserts (cycles) depend only on the
  // stream length, never on K.
  for (size_t k : {1u, 10u, 100u}) {
    SystolicTopK topk(k);
    for (uint32_t i = 0; i < 1000; ++i) topk.Insert(float(i % 97), i);
    EXPECT_EQ(topk.inserts(), 1000u);
  }
}

TEST(HeapTopKTest, ComparesGrowWithK) {
  Rng rng(73);
  std::vector<float> stream(20000);
  for (auto& d : stream) d = float(rng.NextDouble());
  HeapTopK small(2), large(128);
  for (uint32_t i = 0; i < stream.size(); ++i) {
    small.Insert(stream[i], i);
    large.Insert(stream[i], i);
  }
  EXPECT_GT(large.compares(), small.compares());
}

TEST(FannsAcceleratorTest, ResultsMatchCpuSearch) {
  auto fx = Fixture::Make();
  FannsAccelerator accel(&fx.index, AccelConfig{});
  IvfPqIndex::SearchParams params;
  params.nprobe = 6;
  params.k = 10;
  auto stats = accel.SearchBatch(fx.data.queries, params);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(stats->results.size(), fx.data.num_queries());
  for (size_t q = 0; q < fx.data.num_queries(); ++q) {
    const auto cpu = fx.index.Search(fx.data.QueryVector(q), params);
    ASSERT_EQ(stats->results[q].size(), cpu.size());
    for (size_t i = 0; i < cpu.size(); ++i) {
      EXPECT_EQ(stats->results[q][i].id, cpu[i].id);
    }
  }
}

TEST(FannsAcceleratorTest, RejectsBadInput) {
  auto fx = Fixture::Make();
  FannsAccelerator accel(&fx.index, AccelConfig{});
  IvfPqIndex::SearchParams params;
  std::vector<float> misaligned(fx.data.dim + 1);
  EXPECT_FALSE(accel.SearchBatch(misaligned, params).ok());
  params.k = 0;
  EXPECT_FALSE(accel.SearchBatch(fx.data.queries, params).ok());
}

TEST(FannsAcceleratorTest, MoreScanLanesMoreQps) {
  auto fx = Fixture::Make();
  IvfPqIndex::SearchParams params;
  params.nprobe = 16;
  params.k = 10;
  AccelConfig narrow;
  narrow.scan_lanes = 1;
  AccelConfig wide;
  wide.scan_lanes = 16;
  auto s_narrow = FannsAccelerator(&fx.index, narrow)
                      .SearchBatch(fx.data.queries, params);
  auto s_wide =
      FannsAccelerator(&fx.index, wide).SearchBatch(fx.data.queries, params);
  ASSERT_TRUE(s_narrow.ok() && s_wide.ok());
  EXPECT_GT(s_wide->qps, s_narrow->qps);
}

TEST(FannsAcceleratorTest, ThroughputIsBottleneckBound) {
  auto fx = Fixture::Make();
  AccelConfig cfg;
  FannsAccelerator accel(&fx.index, cfg);
  IvfPqIndex::SearchParams params;
  params.nprobe = 8;
  params.k = 10;
  auto stats = accel.SearchBatch(fx.data.queries, params);
  ASSERT_TRUE(stats.ok());
  const auto costs =
      accel.CostModel(params, double(stats->codes_scanned) /
                                  double(fx.data.num_queries()));
  // Steady-state: cycles/query approaches the bottleneck stage cost.
  const double per_query =
      double(stats->cycles) / double(fx.data.num_queries());
  EXPECT_GT(per_query, 0.8 * double(costs.Bottleneck()));
  EXPECT_LT(per_query, 2.5 * double(costs.Bottleneck()));
}

TEST(FannsAcceleratorTest, ResourceEstimateScalesWithLanes) {
  auto fx = Fixture::Make();
  const auto dev = device::AlveoU55C();
  AccelConfig a, b;
  a.scan_lanes = 2;
  b.scan_lanes = 32;
  auto ra = FannsAccelerator(&fx.index, a).EstimateResources(dev);
  auto rb = FannsAccelerator(&fx.index, b).EstimateResources(dev);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_GT(rb->luts, ra->luts);
  EXPECT_GT(rb->bram36, ra->bram36);
  EXPECT_TRUE(dev.resources.Fits(*ra));
}

TEST(CpuSearchModelTest, MoreWorkCostsMore) {
  auto fx = Fixture::Make();
  CpuSearchModel model;
  IvfPqIndex::SearchParams low, high;
  low.nprobe = 1;
  high.nprobe = 16;
  EXPECT_LT(model.SecondsPerQuery(fx.index, low, 100),
            model.SecondsPerQuery(fx.index, high, 2000));
}

TEST(TunerTest, FindsFeasibleDesignAndRespectsTarget) {
  DatasetSpec spec;
  spec.num_base = 2000;
  spec.num_queries = 10;
  spec.dim = 16;
  spec.num_clusters = 8;
  spec.seed = 81;
  Dataset data = MakeDataset(spec);
  TunerRequest req;
  req.data = &data;
  req.recall_target = 0.5;
  req.nlist_choices = {8, 16};
  req.m_choices = {4};
  req.scan_lane_choices = {4, 16};
  req.ksub = 32;
  req.device = device::AlveoU55C();
  auto result = ExploreDesignSpace(req);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->explored.empty());
  ASSERT_TRUE(result->found);
  EXPECT_GE(result->best.recall, 0.5);
  EXPECT_TRUE(result->best.fits);
  // Best point must dominate every other feasible point meeting the target.
  for (const auto& p : result->explored) {
    if (p.fits && p.recall >= 0.5) {
      EXPECT_LE(p.qps, result->best.qps + 1e-9);
    }
  }
}

TEST(TunerTest, HigherRecallTargetNeedsMoreWork) {
  DatasetSpec spec;
  spec.num_base = 2000;
  spec.num_queries = 10;
  spec.dim = 16;
  spec.num_clusters = 8;
  spec.seed = 83;
  Dataset data = MakeDataset(spec);
  TunerRequest low, high;
  low.data = high.data = &data;
  low.recall_target = 0.3;
  high.recall_target = 0.9;
  low.nlist_choices = high.nlist_choices = {16};
  low.m_choices = high.m_choices = {4};
  low.scan_lane_choices = high.scan_lane_choices = {8};
  low.ksub = high.ksub = 32;
  low.device = high.device = device::AlveoU55C();
  auto rl = ExploreDesignSpace(low);
  auto rh = ExploreDesignSpace(high);
  ASSERT_TRUE(rl.ok() && rh.ok());
  if (rl->found && rh->found) {
    EXPECT_GE(rl->best.qps, rh->best.qps)
        << "relaxing the recall target can only help QPS";
  }
}

TEST(TunerTest, RejectsMissingDataset) {
  TunerRequest req;
  EXPECT_FALSE(ExploreDesignSpace(req).ok());
}

}  // namespace
}  // namespace fpgadp::anns
