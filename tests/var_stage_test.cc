#include "src/sim/var_stage.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/sim/engine.h"
#include "src/sim/kernels.h"

namespace fpgadp::sim {
namespace {

struct Harness {
  Stream<int> in{"in", 8};
  Stream<int> out{"out", 8};
  Engine engine;
};

TEST(VarStageTest, TransformsValues) {
  Harness h;
  std::vector<int> data{1, 2, 3};
  VectorSource<int> src("src", data, &h.in);
  VarStage<int, int> stage(
      "stage", &h.in, &h.out, [](const int& v) { return v * 10; },
      [](const int&) { return 1; });
  VectorSink<int> sink("sink", &h.out);
  h.engine.AddModule(&src);
  h.engine.AddModule(&stage);
  h.engine.AddModule(&sink);
  h.engine.AddStream(&h.in);
  h.engine.AddStream(&h.out);
  ASSERT_TRUE(h.engine.Run(1000).ok());
  EXPECT_EQ(sink.collected(), (std::vector<int>{10, 20, 30}));
}

TEST(VarStageTest, PerItemCostSerializesOccupancy) {
  // 5 items at 100 cycles each through a single shared engine: ~500 cycles.
  Harness h;
  std::vector<int> data(5, 1);
  VectorSource<int> src("src", data, &h.in);
  VarStage<int, int> stage(
      "stage", &h.in, &h.out, [](const int& v) { return v; },
      [](const int&) { return 100; });
  VectorSink<int> sink("sink", &h.out);
  h.engine.AddModule(&src);
  h.engine.AddModule(&stage);
  h.engine.AddModule(&sink);
  h.engine.AddStream(&h.in);
  h.engine.AddStream(&h.out);
  auto cycles = h.engine.Run(10000);
  ASSERT_TRUE(cycles.ok());
  EXPECT_GE(cycles.value(), 500u);
  EXPECT_LE(cycles.value(), 540u);
}

TEST(VarStageTest, CostCanDependOnItem) {
  Harness h;
  std::vector<int> data{1, 50, 1};
  VectorSource<int> src("src", data, &h.in);
  VarStage<int, int> stage(
      "stage", &h.in, &h.out, [](const int& v) { return v; },
      [](const int& v) { return uint64_t(v); });
  VectorSink<int> sink("sink", &h.out);
  h.engine.AddModule(&src);
  h.engine.AddModule(&stage);
  h.engine.AddModule(&sink);
  h.engine.AddStream(&h.in);
  h.engine.AddStream(&h.out);
  auto cycles = h.engine.Run(10000);
  ASSERT_TRUE(cycles.ok());
  EXPECT_GE(cycles.value(), 52u);
  EXPECT_LE(cycles.value(), 80u);
  EXPECT_EQ(sink.collected().size(), 3u);
}

TEST(VarStageTest, ZeroCostStillTakesACycle) {
  Harness h;
  std::vector<int> data(10, 1);
  VectorSource<int> src("src", data, &h.in);
  VarStage<int, int> stage(
      "stage", &h.in, &h.out, [](const int& v) { return v; },
      [](const int&) { return 0; });
  VectorSink<int> sink("sink", &h.out);
  h.engine.AddModule(&src);
  h.engine.AddModule(&stage);
  h.engine.AddModule(&sink);
  h.engine.AddStream(&h.in);
  h.engine.AddStream(&h.out);
  ASSERT_TRUE(h.engine.Run(1000).ok());
  EXPECT_EQ(sink.collected().size(), 10u);
}

TEST(VarStageTest, StallsOnFullDownstream) {
  // No sink drains `out` (capacity 8): the stage must stop after filling it
  // and the engine must time out (the stage holds an item it cannot emit).
  Harness h;
  std::vector<int> data(20, 1);
  VectorSource<int> src("src", data, &h.in);
  VarStage<int, int> stage(
      "stage", &h.in, &h.out, [](const int& v) { return v; },
      [](const int&) { return 1; });
  h.engine.AddModule(&src);
  h.engine.AddModule(&stage);
  h.engine.AddStream(&h.in);
  h.engine.AddStream(&h.out);
  auto r = h.engine.Run(500);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(h.out.Size(), 8u);
}

TEST(VarStageTest, PipelinesAcrossStages) {
  // Two 10-cycle stages: 8 items take ~8*10 + 10 (fill), not 8*20.
  Stream<int> a{"a", 8}, b{"b", 8}, c{"c", 8};
  std::vector<int> data(8, 1);
  VectorSource<int> src("src", data, &a);
  VarStage<int, int> s1(
      "s1", &a, &b, [](const int& v) { return v; },
      [](const int&) { return 10; });
  VarStage<int, int> s2(
      "s2", &b, &c, [](const int& v) { return v; },
      [](const int&) { return 10; });
  VectorSink<int> sink("sink", &c);
  Engine e;
  e.AddModule(&src);
  e.AddModule(&s1);
  e.AddModule(&s2);
  e.AddModule(&sink);
  e.AddStream(&a);
  e.AddStream(&b);
  e.AddStream(&c);
  auto cycles = e.Run(10000);
  ASSERT_TRUE(cycles.ok());
  EXPECT_LT(cycles.value(), 8u * 20u);
  EXPECT_GE(cycles.value(), 8u * 10u);
}

}  // namespace
}  // namespace fpgadp::sim
