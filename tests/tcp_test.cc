#include "src/net/tcp.h"

#include <gtest/gtest.h>

#include "src/accl/collectives.h"
#include "src/common/random.h"
#include "src/net/fabric.h"
#include "src/sim/engine.h"

namespace fpgadp::net {
namespace {

Fabric::Config FabConfig() {
  Fabric::Config c;
  c.clock_hz = 200e6;
  return c;
}

struct TcpPair {
  Fabric fabric{"fab", 2, FabConfig()};
  TcpStack a{"a", 0, &fabric};
  TcpStack b{"b", 1, &fabric};
  sim::Engine engine;

  TcpPair() {
    fabric.RegisterWith(engine);
    engine.AddModule(&a);
    engine.AddModule(&b);
  }

  /// Steps until `done()` or `max` cycles; returns cycles stepped.
  template <typename Pred>
  uint64_t StepUntil(Pred done, uint64_t max = 1 << 24) {
    uint64_t cycles = 0;
    while (!done() && cycles < max) {
      engine.Step();
      ++cycles;
    }
    return cycles;
  }
};

TEST(TcpTest, HandshakeEstablishesBothSides) {
  TcpPair p;
  p.a.Connect(1);
  EXPECT_FALSE(p.a.Connected(1));
  p.StepUntil([&] { return p.a.Connected(1) && p.b.Connected(0); });
  EXPECT_TRUE(p.a.Connected(1));
  EXPECT_TRUE(p.b.Connected(0));
}

TEST(TcpTest, HandshakeCostsOneRoundTrip) {
  TcpPair p;
  p.a.Connect(1);
  const uint64_t cycles = p.StepUntil([&] { return p.a.Connected(1); });
  // SYN + SYN-ACK: two wire traversals (~400 cycles) plus headers.
  EXPECT_GE(cycles, 400u);
  EXPECT_LE(cycles, 500u);
}

TEST(TcpTest, BytesArriveInOrderAndComplete) {
  TcpPair p;
  const uint64_t total = 1 << 20;
  p.a.Send(1, total);
  p.StepUntil([&] { return p.b.Readable(0) == total; });
  EXPECT_EQ(p.b.Readable(0), total);
  EXPECT_EQ(p.b.Read(0, total), total);
  EXPECT_EQ(p.b.Readable(0), 0u);
}

TEST(TcpTest, SegmentationMatchesMss) {
  TcpStack::Config cfg;
  cfg.mss_bytes = 1024;
  Fabric fabric("fab", 2, FabConfig());
  TcpStack a("a", 0, &fabric, cfg);
  TcpStack b("b", 1, &fabric, cfg);
  sim::Engine e;
  fabric.RegisterWith(e);
  e.AddModule(&a);
  e.AddModule(&b);
  a.Send(1, 10 * 1024 + 1);
  uint64_t cycles = 0;
  while (b.Readable(0) < 10 * 1024 + 1 && cycles++ < (1 << 22)) e.Step();
  EXPECT_EQ(a.segments_sent(), 11u);  // 10 full + 1 runt
}

TEST(TcpTest, WindowLimitsBandwidth) {
  // Throughput = window / RTT when the window is small: a 8 KiB window
  // over a ~2 us RTT cannot exceed ~4 GB/s regardless of the 12.5 GB/s
  // line rate.
  auto run = [&](uint64_t window) {
    TcpStack::Config cfg;
    cfg.window_bytes = window;
    Fabric fabric("fab", 2, FabConfig());
    TcpStack a("a", 0, &fabric, cfg);
    TcpStack b("b", 1, &fabric, cfg);
    sim::Engine e;
    fabric.RegisterWith(e);
    e.AddModule(&a);
    e.AddModule(&b);
    const uint64_t total = 4 << 20;
    a.Send(1, total);
    uint64_t cycles = 0;
    while (b.Readable(0) < total && cycles < (1ull << 26)) {
      e.Step();
      ++cycles;
    }
    return double(total) / (double(cycles) / 200e6);  // bytes/sec
  };
  const double small_bw = run(8 << 10);
  const double big_bw = run(1 << 20);
  EXPECT_GT(big_bw, 3 * small_bw);
  EXPECT_GT(big_bw, 9e9);   // near line rate with a BDP-sized window
  EXPECT_LT(small_bw, 5e9); // window-bound
}

TEST(TcpTest, BidirectionalStreamsDoNotInterfere) {
  TcpPair p;
  p.a.Send(1, 100000);
  p.b.Send(0, 50000);
  p.StepUntil([&] {
    return p.b.Readable(0) == 100000 && p.a.Readable(1) == 50000;
  });
  EXPECT_EQ(p.b.Readable(0), 100000u);
  EXPECT_EQ(p.a.Readable(1), 50000u);
}

TEST(TcpTest, AcksDrainInFlight) {
  TcpPair p;
  p.a.Send(1, 64 << 10);
  p.StepUntil([&] { return p.a.Idle() && p.b.Readable(0) == (64 << 10); });
  EXPECT_EQ(p.a.bytes_acked(), 64u << 10);
  EXPECT_TRUE(p.a.Idle());
}

TEST(TcpTest, PartialReadsKeepRemainder) {
  TcpPair p;
  p.a.Send(1, 1000);
  p.StepUntil([&] { return p.b.Readable(0) == 1000; });
  EXPECT_EQ(p.b.Read(0, 400), 400u);
  EXPECT_EQ(p.b.Readable(0), 600u);
  EXPECT_EQ(p.b.Read(0, 9999), 600u);
}

}  // namespace

}  // namespace fpgadp::net

namespace fpgadp::accl {
namespace {

std::vector<std::vector<float>> RandomBuffers(uint32_t ranks, size_t n,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> buffers(ranks, std::vector<float>(n));
  for (auto& b : buffers) {
    for (auto& v : b) v = float(rng.NextDouble());
  }
  return buffers;
}

TEST(TcpCollectivesTest, AllReduceCorrectOverTcp) {
  Communicator comm(4, {}, 200e6, Transport::kTcp);
  auto buffers = RandomBuffers(4, 256, 3);
  std::vector<float> expect = buffers[0];
  for (uint32_t r = 1; r < 4; ++r) {
    for (size_t i = 0; i < expect.size(); ++i) expect[i] += buffers[r][i];
  }
  auto stats = comm.AllReduce(buffers, Algo::kRing);
  ASSERT_TRUE(stats.ok()) << stats.status();
  for (const auto& b : buffers) {
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_FLOAT_EQ(b[i], expect[i]);
    }
  }
}

TEST(TcpCollectivesTest, BarrierCompletesOverTcp) {
  Communicator comm(8, {}, 200e6, Transport::kTcp);
  auto stats = comm.Barrier();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->cycles, 0u);
}

TEST(TcpCollectivesTest, TcpCostsMoreThanRdma) {
  // Same schedule, two transports: TCP pays the handshakes, segmentation
  // headers, and ACK traffic.
  const size_t n = 1 << 16;
  Communicator rdma(4, {}, 200e6, Transport::kRdma);
  Communicator tcp(4, {}, 200e6, Transport::kTcp);
  auto b1 = RandomBuffers(4, n, 5);
  auto b2 = b1;
  auto r = rdma.AllReduce(b1, Algo::kRing);
  auto t = tcp.AllReduce(b2, Algo::kRing);
  ASSERT_TRUE(r.ok() && t.ok());
  EXPECT_GT(t->cycles, r->cycles);
  // But the overhead is bounded (same order of magnitude).
  EXPECT_LT(t->cycles, 4 * r->cycles);
}

TEST(TcpCollectivesTest, BroadcastMatchesAcrossTransports) {
  const size_t n = 4096;
  Communicator rdma(8, {}, 200e6, Transport::kRdma);
  Communicator tcp(8, {}, 200e6, Transport::kTcp);
  auto b1 = RandomBuffers(8, n, 7);
  auto b2 = b1;
  auto r = rdma.Broadcast(0, b1, Algo::kTree);
  auto t = tcp.Broadcast(0, b2, Algo::kTree);
  ASSERT_TRUE(r.ok() && t.ok());
  for (uint32_t rank = 0; rank < 8; ++rank) {
    EXPECT_EQ(b1[rank], b2[rank]);
  }
}

}  // namespace
}  // namespace fpgadp::accl
